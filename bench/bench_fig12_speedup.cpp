/**
 * @file
 * Figure 12 reproduction:
 *  (a) attention-block speedup of ELSA / DOTA-C / DOTA-A over the GPU,
 *  (b) end-to-end speedup of DOTA over the GPU with the theoretical
 *      (Amdahl, peak-throughput) upper bound,
 *  (c) normalized latency breakdown of DOTA-F / DOTA-C / DOTA-A into
 *      Linear / Attention / Detection,
 * plus the dataflow ablation DESIGN.md §4 calls out (out-of-order vs
 * in-order vs row-by-row attention scheduling).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/dota.hpp"

using namespace dota;

namespace {

struct PaperRef
{
    double elsa, dota_c, dota_a;   // Fig 12a
    double e2e_c, e2e_ub;          // Fig 12b
};

PaperRef
paperRef(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::QA:
        return {63.1, 126.1, 210.2, 3.79, 3.80};
      case BenchmarkId::Image:
        return {31.2, 208.1, 312.1, 11.23, 11.41};
      case BenchmarkId::Text:
        return {27.3, 109.2, 545.8, 11.81, 11.95};
      case BenchmarkId::Retrieval:
        return {36.5, 243.3, 729.8, 38.08, 39.78};
      case BenchmarkId::LM:
        return {23.8, 119.1, 178.5, 4.05, 4.19};
    }
    return {};
}

} // namespace

int
main()
{
    bench::banner("Figure 12: speedup over GPU and ELSA",
                  "DOTA Figure 12 (a: attention, b: end-to-end + upper "
                  "bound, c: latency breakdown)");

    System sys;

    // ---- (a) attention-block speedup over the GPU.
    Table a("Figure 12(a): attention-block speedup over V100 "
            "(ours vs paper)");
    a.header({"benchmark", "ELSA", "paper", "DOTA-C", "paper", "DOTA-A",
              "paper"});
    double avg_c = 0.0, avg_ratio_elsa = 0.0;
    for (const Benchmark &b : allBenchmarks()) {
        const auto cmp = sys.compare(b.id);
        const PaperRef ref = paperRef(b.id);
        a.addRow({b.name, fmtSpeedup(cmp.attention_speedup_elsa),
                  fmtSpeedup(ref.elsa),
                  fmtSpeedup(cmp.attention_speedup_c),
                  fmtSpeedup(ref.dota_c),
                  fmtSpeedup(cmp.attention_speedup_a),
                  fmtSpeedup(ref.dota_a)});
        avg_c += cmp.attention_speedup_c;
        avg_ratio_elsa +=
            cmp.attention_speedup_c / cmp.attention_speedup_elsa;
    }
    a.print(std::cout);
    std::cout << "average DOTA-C attention speedup: "
              << fmtSpeedup(avg_c / 5.0)
              << "  (paper headline: 152.6x)\n";
    std::cout << "average DOTA-C over ELSA: "
              << fmtSpeedup(avg_ratio_elsa / 5.0)
              << "  (paper headline: 4.5x)\n\n";

    // ---- absolute attention-block time, every registered device.
    // All devices emit the same RunReport, so one table covers the fleet.
    Table abs("attention-block time per device (ms)");
    {
        std::vector<std::string> hdr{"benchmark"};
        for (const std::string &key : DeviceRegistry::keys())
            hdr.push_back(key);
        abs.header(hdr);
        for (const Benchmark &b : allBenchmarks()) {
            std::vector<std::string> row{b.name};
            for (const std::string &key : DeviceRegistry::keys())
                row.push_back(
                    fmtNum(sys.run(b.id, key).attentionTimeMs(), 3));
            abs.addRow(row);
        }
    }
    abs.print(std::cout);
    std::cout << "\n";

    // ---- (b) end-to-end speedup + upper bound.
    Table bt("Figure 12(b): end-to-end speedup over V100");
    bt.header({"benchmark", "DOTA-C", "paper", "DOTA-A", "upper bound",
               "paper UB"});
    for (const Benchmark &b : allBenchmarks()) {
        const auto cmp = sys.compare(b.id);
        const PaperRef ref = paperRef(b.id);
        bt.addRow({b.name, fmtSpeedup(cmp.e2e_speedup_c),
                   fmtSpeedup(ref.e2e_c), fmtSpeedup(cmp.e2e_speedup_a),
                   fmtSpeedup(cmp.e2e_upper_bound),
                   fmtSpeedup(ref.e2e_ub)});
    }
    bt.print(std::cout);
    std::cout << "\n";

    // ---- (c) latency breakdown.
    Table c("Figure 12(c): normalized latency breakdown "
            "(Linear / Attention / Detection)");
    c.header({"benchmark", "mode", "linear", "attention", "detection"});
    for (const Benchmark &b : allBenchmarks()) {
        for (DotaMode mode : {DotaMode::Full, DotaMode::Conservative,
                              DotaMode::Aggressive}) {
            const RunReport r = sys.run(b.id, mode);
            const double total =
                static_cast<double>(r.per_layer.totalCycles());
            c.addRow({b.name, dotaModeName(mode),
                      fmtPct(r.per_layer.linear.cycles / total),
                      fmtPct(r.per_layer.attention.cycles / total),
                      fmtPct(r.per_layer.detection.cycles / total)});
        }
    }
    c.print(std::cout);
    std::cout << "Paper claims reproduced when (i) detection is a small "
                 "slice and (ii) Linear\ndominates once detection+omission "
                 "shrink attention (Section 5.3).\n\n";

    // ---- Ablation: dataflow policy on the attention stage.
    Table d("Ablation: attention dataflow (DOTA-C operating points)");
    d.header({"benchmark", "dataflow", "key loads", "vs out-of-order",
              "attention time"});
    for (const Benchmark &b : allBenchmarks()) {
        const double retention = b.retention_conservative;
        Rng rng(99);
        const SparseMask mask =
            synthesizeMask(b.paper_shape.seq_len,
                           profileFor(b.id, retention), rng,
                           b.paper_shape.decoder);
        uint64_t ooo_loads = 0;
        for (Dataflow df : {Dataflow::TokenParallelOoO,
                            Dataflow::TokenParallelInOrder,
                            Dataflow::RowByRow}) {
            SimOptions opt;
            opt.mode = DotaMode::Conservative;
            opt.dataflow = df;
            const RunReport r =
                sys.accelerator().simulateWithMask(b, opt, mask);
            const auto stats = analyzeDataflow(
                mask, df, opt.token_parallelism);
            if (df == Dataflow::TokenParallelOoO)
                ooo_loads = stats.key_loads;
            d.addRow({b.name, dataflowName(df),
                      fmtNum(static_cast<double>(stats.key_loads), 0),
                      fmtNum(static_cast<double>(stats.key_loads) /
                                 static_cast<double>(ooo_loads),
                             2) + "x",
                      fmtNum(r.attentionTimeMs(), 4) + "ms"});
        }
    }
    d.print(std::cout);
    return 0;
}
