/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: consistent
 * banners, tables with a "paper" reference column, and a fast mode
 * (DOTA_BENCH_FAST=1) that trims training budgets for smoke runs.
 */
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace dota::bench {

/** True when DOTA_BENCH_FAST=1 is set: use reduced training budgets. */
inline bool
fastMode()
{
    const char *env = std::getenv("DOTA_BENCH_FAST");
    return env != nullptr && std::string(env) == "1";
}

/** Scale a step budget down in fast mode. */
inline size_t
budget(size_t full)
{
    return fastMode() ? std::max<size_t>(5, full / 8) : full;
}

/** Standard experiment header. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    printBanner(std::cout, what);
    std::cout << "reproduces: " << paper_ref << "\n";
    if (fastMode())
        std::cout << "(DOTA_BENCH_FAST=1: reduced training budgets; "
                     "expect noisier accuracy numbers)\n";
    std::cout << "\n";
}

} // namespace dota::bench
