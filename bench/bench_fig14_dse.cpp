/**
 * @file
 * Figure 14 reproduction (design-space exploration of the detector on
 * the Text benchmark at 10% retention):
 *  (a) accuracy vs. dimension-reduction factor sigma,
 *  (b) accuracy vs. detection quantization precision.
 *
 * Paper numbers for reference — (a) sigma 0.10/0.16/0.20/0.25/0.33 ->
 * 62.82/65.08/65.27/65.46/65.63 vs dense 65.12; (b) INT2/INT4/INT8/
 * INT16/FP32 -> 64.45/65.56/65.69/65.63/65.63. The reproduced claim:
 * accuracy saturates at small sigma and at INT4, so detection can be
 * cheap.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/dota.hpp"

using namespace dota;

namespace {

/** Run warmup + joint adaptation from a shared dense model. */
double
adaptedAccuracy(const TransformerClassifier &, TransformerClassifier &model,
                const SyntheticTask &task, DetectorConfig dc,
                const PipelineConfig &pc, size_t eval_n)
{
    DotaDetector det(model.config(), dc);
    warmupDetector(model, task, det, pc.warmup_steps, pc.warmup_batch,
                   pc.warmup_lr);
    det.config().apply_mask = true;
    det.config().train = true;
    model.setHook(&det);
    ClassifierTrainer joint(model, task, pc.adapt);
    std::vector<Parameter *> dps;
    det.collectParams(dps);
    joint.addExtraParams(dps);
    joint.train();
    det.config().train = false;
    const double acc = joint.evaluate(eval_n).metric;
    model.setHook(nullptr);
    return acc;
}

} // namespace

int
main()
{
    bench::banner("Figure 14: detector design-space exploration (Text, "
                  "retention 10%)",
                  "DOTA Figure 14(a) sigma sweep + 14(b) precision sweep");

    const Benchmark &b = benchmark(BenchmarkId::Text);
    TaskConfig tc;
    tc.in_dim = b.tiny.in_dim;
    tc.classes = b.tiny.classes;
    tc.seq_len = 64;
    tc.signal_count = 6;
    tc.locality = 0.5;
    tc.label_noise = 0.1;
    tc.signal_strength = 2.0;
    tc.seed = 133;
    const SyntheticTask task(tc);
    const size_t eval_n = bench::fastMode() ? 40 : 150;

    PipelineConfig pc;
    pc.pretrain.steps = bench::budget(120);
    pc.warmup_steps = bench::budget(60);
    pc.adapt.steps = bench::budget(100);

    TransformerClassifier dense_model(b.tiny);
    ClassifierTrainer pre(dense_model, task, pc.pretrain);
    pre.train();
    const double dense_acc = pre.evaluate(eval_n).metric;
    std::cout << "dense baseline accuracy: " << fmtPct(dense_acc)
              << "  (paper: 65.12)\n\n";

    // ---- (a) sigma sweep at INT4.
    {
        Table t("Figure 14(a): accuracy vs dimension-reduction sigma "
                "(INT4, retention 10%)");
        t.header({"sigma", "rank k (of head_dim 16)", "accuracy",
                  "paper (of 64-dim heads)"});
        const double paper[] = {62.82, 65.08, 65.27, 65.46, 65.63};
        const double sigmas[] = {0.10, 0.16, 0.20, 0.25, 0.33};
        const size_t seeds = bench::fastMode() ? 1 : 2;
        for (int i = 0; i < 5; ++i) {
            double acc = 0.0;
            for (size_t seed = 0; seed < seeds; ++seed) {
                TransformerClassifier model(b.tiny);
                copyParams(dense_model, model);
                DetectorConfig dc;
                dc.retention = 0.10;
                dc.sigma = sigmas[i];
                dc.bits = 4;
                dc.lambda = 1e-3;
                dc.seed = 17 + seed;
                acc += adaptedAccuracy(dense_model, model, task, dc, pc,
                                       eval_n);
            }
            acc /= static_cast<double>(seeds);
            const size_t k = std::max<size_t>(
                1, static_cast<size_t>(sigmas[i] *
                                       b.tiny.headDim()));
            t.addRow({fmtNum(sigmas[i], 2),
                      fmtNum(static_cast<double>(k), 0), fmtPct(acc),
                      fmtNum(paper[i], 2)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // ---- (b) precision sweep at sigma 0.5.
    {
        Table t("Figure 14(b): accuracy vs detection precision "
                "(sigma 0.5, retention 10%)");
        t.header({"precision", "accuracy", "paper"});
        struct Point { const char *name; int bits; bool quant; double paper; };
        const Point points[] = {
            {"INT2", 2, true, 64.45},  {"INT4", 4, true, 65.56},
            {"INT8", 8, true, 65.69},  {"INT16", 16, true, 65.63},
            {"FP32", 32, false, 65.63},
        };
        for (const Point &p : points) {
            TransformerClassifier model(b.tiny);
            copyParams(dense_model, model);
            DetectorConfig dc;
            dc.retention = 0.10;
            dc.sigma = 0.5;
            dc.bits = p.bits;
            dc.quantize = p.quant;
            dc.lambda = 1e-3;
            const double acc = adaptedAccuracy(dense_model, model, task,
                                               dc, pc, eval_n);
            t.addRow({p.name, fmtPct(acc), fmtNum(p.paper, 2)});
        }
        t.print(std::cout);
    }
    std::cout << "\nClaim reproduced when accuracy saturates by "
                 "sigma ~0.2-0.33 and by INT4.\n";
    return 0;
}
