/**
 * @file
 * Figure 15 reproduction: K/V memory-access cost and Scheduler buffer
 * requirement as token parallelism sweeps 1..6 (Text benchmark,
 * retention 10%). The reproduced claims: diminishing memory-access
 * returns beyond T ~ 4, exponential (2^T - 1) scheduler buffer growth,
 * and a total-cost sweet spot at T = 4.
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/dota.hpp"

using namespace dota;

int
main()
{
    bench::banner("Figure 15: token-parallelism design-space exploration",
                  "DOTA Figure 15 (Text benchmark, retention 10%; sweet "
                  "spot at T = 4)");

    const Benchmark &b = benchmark(BenchmarkId::Text);
    const double retention = 0.10;
    Rng rng(151);
    const SparseMask mask = synthesizeMask(
        b.paper_shape.seq_len, profileFor(b.id, retention), rng);
    const EnergyModel em = EnergyModel::tsmc22();
    const size_t dh = b.paper_shape.headDim();

    // Normalization: memory cost of T = 1 (row-by-row-equivalent).
    const auto base = analyzeDataflow(mask, Dataflow::TokenParallelOoO, 1);
    const double base_mem_pj =
        static_cast<double>(base.key_loads) * 2.0 * dh * 2.0 *
        em.sram_read_pj;

    Table t("K/V memory access and scheduler cost vs token parallelism");
    t.header({"T", "key loads", "normalized mem cost", "scheduler pJ/issue",
              "normalized sched cost", "total (norm)", "buffers (2^T-1)"});
    double best_total = 1e30;
    size_t best_t = 0;
    for (size_t t_par = 1; t_par <= 6; ++t_par) {
        const auto stats =
            analyzeDataflow(mask, Dataflow::TokenParallelOoO, t_par);
        const double mem_pj =
            static_cast<double>(stats.key_loads) * 2.0 * dh * 2.0 *
            em.sram_read_pj;
        const double sched_pj =
            static_cast<double>(stats.key_loads) *
            em.schedulerIssuePj(t_par);
        const double mem_norm = mem_pj / base_mem_pj;
        const double sched_norm = sched_pj / base_mem_pj;
        const double total = mem_norm + sched_norm;
        if (total < best_total) {
            best_total = total;
            best_t = t_par;
        }
        t.addRow({fmtNum(static_cast<double>(t_par), 0),
                  fmtNum(static_cast<double>(stats.key_loads), 0),
                  fmtNum(mem_norm, 3),
                  fmtNum(em.schedulerIssuePj(t_par), 3),
                  fmtNum(sched_norm, 3), fmtNum(total, 3),
                  fmtNum(static_cast<double>((1u << t_par) - 1), 0)});
    }
    t.print(std::cout);
    std::cout << "\nlowest total cost at T = " << best_t
              << "  (paper picks T = 4)\n";

    // Cross-benchmark check the paper mentions: "most benchmarks have an
    // optimal parallelism to be or around 4".
    Table x("Optimal T per benchmark (same methodology)");
    x.header({"benchmark", "optimal T"});
    for (const Benchmark &bb : allBenchmarks()) {
        Rng r2(152);
        const SparseMask m2 =
            synthesizeMask(std::min<size_t>(bb.paper_shape.seq_len, 2048),
                           profileFor(bb.id, bb.retention_conservative),
                           r2, bb.paper_shape.decoder);
        const size_t dh2 = bb.paper_shape.headDim();
        double best = 1e30;
        size_t arg = 0;
        const auto b1 =
            analyzeDataflow(m2, Dataflow::TokenParallelOoO, 1);
        const double norm = static_cast<double>(b1.key_loads) * 2.0 *
                            dh2 * 2.0 * em.sram_read_pj;
        for (size_t t_par = 1; t_par <= 6; ++t_par) {
            const auto stats =
                analyzeDataflow(m2, Dataflow::TokenParallelOoO, t_par);
            const double mem = static_cast<double>(stats.key_loads) *
                               2.0 * dh2 * 2.0 * em.sram_read_pj;
            const double sched = static_cast<double>(stats.key_loads) *
                                 em.schedulerIssuePj(t_par);
            const double total = (mem + sched) / norm;
            if (total < best) {
                best = total;
                arg = t_par;
            }
        }
        x.addRow({bb.name, fmtNum(static_cast<double>(arg), 0)});
    }
    x.print(std::cout);
    return 0;
}
