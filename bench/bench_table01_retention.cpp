/**
 * @file
 * Table 1 reproduction: model quality when omitting different portions
 * of attention with *post-hoc oracle* row-wise top-k selection (no
 * detector, no adaptation) — the motivating experiment of Section 2.2.
 *
 * The paper measures BERT-large F1 on SQuAD; we measure accuracy of a
 * trained proxy QA task (see DESIGN.md §1). The claim being reproduced:
 * ~90% of attention connections can be omitted with negligible
 * degradation.
 */
#include <iostream>

#include "bench_util.hpp"
#include "detect/oracle_detector.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/trainer.hpp"

using namespace dota;

int
main()
{
    bench::banner("Table 1: accuracy vs. oracle retention (no adaptation)",
                  "DOTA Table 1 (BERT-large/SQuAD F1: full 91.4, 20% "
                  "91.4, 15% 91.3, 10% 91.1, 5% 90.2)");

    const Benchmark &b = benchmark(BenchmarkId::QA);
    TaskConfig tc;
    tc.kind = TaskKind::Prototype;
    tc.seq_len = 96;
    tc.in_dim = b.tiny.in_dim;
    tc.classes = b.tiny.classes;
    tc.signal_count = 6;
    tc.locality = 0.2;
    tc.seed = 7;
    SyntheticTask task(tc);

    TransformerClassifier model(b.tiny);
    TrainConfig trc;
    trc.steps = bench::budget(150);
    trc.batch = 8;
    ClassifierTrainer trainer(model, task, trc);
    std::cout << "pre-training dense proxy model (" << trc.steps
              << " steps)...\n";
    trainer.train();

    const size_t eval_samples = bench::fastMode() ? 50 : 200;
    const EvalResult dense = trainer.evaluate(eval_samples);

    Table t("Proxy-QA accuracy vs. retention (oracle top-k)");
    t.header({"retention", "accuracy", "paper F1 (BERT-large)"});
    t.addRow({"full", fmtPct(dense.metric), "91.4"});

    // The paper's four points, plus two more aggressive extra points
    // that expose the knee on our (easier) proxy task.
    const double paper[] = {91.4, 91.3, 91.1, 90.2, 0.0, 0.0};
    const double retentions[] = {0.20, 0.15, 0.10, 0.05, 0.025, 0.01};
    OracleDetector oracle(1.0);
    model.setHook(&oracle);
    for (int i = 0; i < 6; ++i) {
        oracle.setRetention(retentions[i]);
        const EvalResult r = trainer.evaluate(eval_samples);
        t.addRow({fmtPct(retentions[i]) + (i >= 4 ? " (extra)" : ""),
                  fmtPct(r.metric),
                  paper[i] > 0 ? fmtNum(paper[i], 1) : "-"});
    }
    model.setHook(nullptr);
    t.print(std::cout);
    std::cout << "\nClaim reproduced when accuracy at 10% retention is "
                 "within ~1% of dense.\n";
    return 0;
}
