/**
 * @file
 * Table 2 reproduction: configuration, power and area of the DOTA
 * accelerator under 22nm / 1 GHz, from the energy/area model.
 */
#include <iostream>

#include "bench_util.hpp"
#include "sim/energy_model.hpp"

using namespace dota;

int
main()
{
    bench::banner("Table 2: DOTA configuration, power, and area",
                  "DOTA Table 2 (22nm, 1 GHz)");

    const HwConfig hw = HwConfig::dota();
    const EnergyModel em = EnergyModel::tsmc22();
    const auto rows = powerAreaBudget(hw, em);

    struct PaperRow { const char *module; double mw, mm2; };
    const PaperRow paper[] = {
        {"Lane (all)", 2878.33, 2.701},   {"Lane.RMMU", 645.98, 0.609},
        {"Lane.Filter", 9.13, 0.003},     {"Lane.MFU", 60.73, 0.060},
        {"Accumulator", 139.21, 0.045},
        {"DOTA (w/o SRAM)", 3017.54, 2.746},
        {"SRAM", 0.51, 1.690},
    };

    Table t("Module budget (ours vs paper Table 2)");
    t.header({"module", "configuration", "power (mW)", "paper",
              "area (mm^2)", "paper"});
    for (const ModuleBudget &r : rows) {
        double pmw = 0.0, pmm = 0.0;
        for (const PaperRow &p : paper)
            if (r.module == p.module) {
                pmw = p.mw;
                pmm = p.mm2;
            }
        t.addRow({r.module, r.configuration, fmtNum(r.power_mw, 2),
                  fmtNum(pmw, 2), fmtNum(r.area_mm2, 3),
                  fmtNum(pmm, 3)});
    }
    t.print(std::cout);

    std::cout << "\nfabric: " << hw.lanes << " lanes, "
              << hw.lane.rmmu.pe_rows << "x" << hw.lane.rmmu.pe_cols
              << " PEs/lane, " << fmtNum(hw.peakTops(), 3)
              << " TOPS peak, " << fmtBytes(double(hw.sramBytes()))
              << " SRAM\n";
    return 0;
}
