/**
 * @file
 * google-benchmark microbenchmarks of the performance-critical kernels:
 * reference GEMM, quantized detection GEMM, row-wise top-k selection,
 * the locality-aware scheduler, and the detector's score estimation.
 */
#include <benchmark/benchmark.h>

#include "common/thread_pool.hpp"
#include "detect/detector.hpp"
#include "sched/dataflow.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "tensor/topk.hpp"
#include "workloads/mask_synth.hpp"

using namespace dota;

namespace {

void
BM_Gemm(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(1);
    const Matrix a = Matrix::randomNormal(n, n, rng);
    const Matrix b = Matrix::randomNormal(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(matmul(a, b));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmBT(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(2);
    const Matrix a = Matrix::randomNormal(n, 64, rng);
    const Matrix b = Matrix::randomNormal(n, 64, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulBT(a, b));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n * n * 64));
}
BENCHMARK(BM_GemmBT)->Arg(128)->Arg(384);

void
BM_QuantizedDetectionGemm(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(3);
    const Matrix q = Matrix::randomNormal(n, 16, rng);
    const Matrix k = Matrix::randomNormal(n, 16, rng);
    const QuantizedMatrix qq = quantize(q, 8);
    const QuantizedMatrix qk = quantize(k, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(quantizedMatmulBT(qq, qk));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n * n * 16));
}
BENCHMARK(BM_QuantizedDetectionGemm)->Arg(128)->Arg(384);

void
BM_TopkMask(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(4);
    const Matrix s = Matrix::randomNormal(n, n, rng);
    const size_t k = n / 10;
    for (auto _ : state)
        benchmark::DoNotOptimize(topkMask(s, k));
}
BENCHMARK(BM_TopkMask)->Arg(128)->Arg(512);

void
BM_Softmax(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(5);
    const Matrix s = Matrix::randomNormal(n, n, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(rowSoftmax(s));
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(512);

void
BM_LocalityAwareScheduler(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(6);
    MaskProfile p = profileFor(BenchmarkId::Text, 0.1);
    const SparseMask mask = synthesizeMask(n, p, rng);
    for (auto _ : state) {
        const auto stats =
            analyzeDataflow(mask, Dataflow::TokenParallelOoO, 4);
        benchmark::DoNotOptimize(stats.key_loads);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(mask.nnz()));
}
BENCHMARK(BM_LocalityAwareScheduler)->Arg(512)->Arg(2048);

void
BM_DetectorEstimate(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    TransformerConfig mc;
    mc.in_dim = 16;
    mc.dim = 64;
    mc.heads = 4;
    mc.layers = 1;
    mc.ffn_dim = 128;
    DetectorConfig dc;
    dc.sigma = 0.25;
    DotaDetector det(mc, dc);
    Rng rng(7);
    const Matrix x = Matrix::randomNormal(n, 64, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(det.estimateScores(0, 0, x));
}
BENCHMARK(BM_DetectorEstimate)->Arg(128)->Arg(384);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // Surface the parallel-execution configuration in the report header
    // so GEMM numbers are attributable to a thread count.
    benchmark::AddCustomContext(
        "dota_threads",
        std::to_string(dota::ThreadPool::globalConcurrency()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
