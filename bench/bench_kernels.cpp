/**
 * @file
 * google-benchmark microbenchmarks of the performance-critical kernels:
 * reference GEMM, quantized detection GEMM, row-wise top-k selection,
 * the locality-aware scheduler, the detector's score estimation, and the
 * dense-vs-sparse attention retention sweep.
 *
 * Output: the human-readable table on stdout plus machine-readable JSON
 * in BENCH_kernels.json (auto-injected; pass your own --benchmark_out=
 * to override). The JSON context records dota_threads and simd_isa so a
 * number is always attributable to a configuration.
 *
 * `--smoke` runs a fixed-shape dense-vs-sparse attention comparison and
 * exits non-zero unless the sparse path is faster at 25% retention and
 * numerically identical on kept coordinates — the CI guard that the
 * Level-2 kernels actually deliver the omission speedup.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "detect/detector.hpp"
#include "sched/dataflow.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/int8_gemm.hpp"
#include "tensor/int_softmax.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "tensor/simd.hpp"
#include "tensor/sparse_mask.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/topk.hpp"
#include "workloads/mask_synth.hpp"

using namespace dota;

namespace {

void
BM_Gemm(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(1);
    const Matrix a = Matrix::randomNormal(n, n, rng);
    const Matrix b = Matrix::randomNormal(n, n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(matmul(a, b));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemmBT(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(2);
    const Matrix a = Matrix::randomNormal(n, 64, rng);
    const Matrix b = Matrix::randomNormal(n, 64, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulBT(a, b));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n * n * 64));
}
BENCHMARK(BM_GemmBT)->Arg(128)->Arg(384);

void
BM_Int8Gemm(benchmark::State &state)
{
    // End-to-end int8 GEMM C = A * B^T on pre-quantized codes (the
    // weight side is quantized once at plan build time), including the
    // fp32 dequantization of the output — directly comparable to
    // BM_Gemm's n^3 MACs.
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(9);
    const Matrix a = Matrix::randomNormal(n, n, rng);
    const Matrix b = Matrix::randomNormal(n, n, rng);
    const U8Tensor qa = quantizeU8(a, chooseSymmetricScale(a, 7).scale);
    const Int8Tensor qb = quantizeS8(b, chooseSymmetricScale(b, 8).scale);
    for (auto _ : state)
        benchmark::DoNotOptimize(int8MatmulBT(qa, qb));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Int8Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void
BM_QuantizedDetectionGemm(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(3);
    const Matrix q = Matrix::randomNormal(n, 16, rng);
    const Matrix k = Matrix::randomNormal(n, 16, rng);
    const QuantizedMatrix qq = quantize(q, 8);
    const QuantizedMatrix qk = quantize(k, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(quantizedMatmulBT(qq, qk));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n * n * 16));
}
BENCHMARK(BM_QuantizedDetectionGemm)->Arg(128)->Arg(384);

void
BM_TopkMask(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(4);
    const Matrix s = Matrix::randomNormal(n, n, rng);
    const size_t k = n / 10;
    for (auto _ : state)
        benchmark::DoNotOptimize(topkMask(s, k));
}
BENCHMARK(BM_TopkMask)->Arg(128)->Arg(512);

void
BM_Softmax(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(5);
    const Matrix s = Matrix::randomNormal(n, n, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(rowSoftmax(s));
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(512);

void
BM_LocalityAwareScheduler(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    Rng rng(6);
    MaskProfile p = profileFor(BenchmarkId::Text, 0.1);
    const SparseMask mask = synthesizeMask(n, p, rng);
    for (auto _ : state) {
        const auto stats =
            analyzeDataflow(mask, Dataflow::TokenParallelOoO, 4);
        benchmark::DoNotOptimize(stats.key_loads);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(mask.nnz()));
}
BENCHMARK(BM_LocalityAwareScheduler)->Arg(512)->Arg(2048);

void
BM_DetectorEstimate(benchmark::State &state)
{
    const auto n = static_cast<size_t>(state.range(0));
    TransformerConfig mc;
    mc.in_dim = 16;
    mc.dim = 64;
    mc.heads = 4;
    mc.layers = 1;
    mc.ffn_dim = 128;
    DetectorConfig dc;
    dc.sigma = 0.25;
    DotaDetector det(mc, dc);
    Rng rng(7);
    const Matrix x = Matrix::randomNormal(n, 64, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(det.estimateScores(0, 0, x));
}
BENCHMARK(BM_DetectorEstimate)->Arg(128)->Arg(384);

// ---------------------------------------------------------------------
// Retention sweep: the attention core (S = QK^T, masked softmax, A*V)
// computed densely vs with the Level-2 sparse kernels, for one head at
// n = 512, head_dim = 64. The benchmark argument is retention in
// per-mille (1000 = dense work on a full mask, 125 = 12.5% kept), the
// sweep the README's software-speedup table reports. Both variants see
// the SAME top-k mask, so the comparison isolates kernel work, not mask
// quality.
// ---------------------------------------------------------------------

constexpr size_t kAttnSeq = 512;
constexpr size_t kAttnHeadDim = 64;

struct AttentionProblem
{
    Matrix q, k, v;
    Matrix mask;      ///< dense 0/1 keep mask
    SparseMask smask; ///< same mask, sparse form
    float scale = 0.0f;
};

AttentionProblem
attentionProblem(size_t n, size_t d, double retention)
{
    Rng rng(8);
    AttentionProblem p;
    p.q = Matrix::randomNormal(n, d, rng);
    p.k = Matrix::randomNormal(n, d, rng);
    p.v = Matrix::randomNormal(n, d, rng);
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(retention * static_cast<double>(n)));
    const Matrix proxy_scores = Matrix::randomNormal(n, n, rng);
    p.mask = topkMask(proxy_scores, keep);
    p.smask = SparseMask::fromDense(p.mask);
    p.scale = 1.0f / std::sqrt(static_cast<float>(d));
    return p;
}

Matrix
denseMaskedAttention(const AttentionProblem &p)
{
    const Matrix s = matmulBT(p.q, p.k);
    const Matrix a = rowSoftmaxMasked(scale(s, p.scale), p.mask);
    return matmul(a, p.v);
}

void
BM_AttentionDense(benchmark::State &state)
{
    const AttentionProblem p = attentionProblem(
        kAttnSeq, kAttnHeadDim, state.range(0) / 1000.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(denseMaskedAttention(p));
}
BENCHMARK(BM_AttentionDense)->Arg(1000)->Arg(500)->Arg(250)->Arg(125);

void
BM_AttentionSparse(benchmark::State &state)
{
    const AttentionProblem p = attentionProblem(
        kAttnSeq, kAttnHeadDim, state.range(0) / 1000.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sparseMaskedAttention(p.q, p.k, p.v, p.smask, p.scale));
}
BENCHMARK(BM_AttentionSparse)->Arg(1000)->Arg(500)->Arg(250)->Arg(125);

/**
 * One head of dynamically-quantized integer attention (the Int8Backend
 * flow): per-tensor scales from the live Q/K/V, u8 x s8 maddubs score
 * GEMM, integer softmax, int8 A*V. Quantization rides inside the
 * measured region because the backend pays it per forward.
 */
Matrix
int8MaskedAttention(const AttentionProblem &p)
{
    const size_t n = p.q.rows();
    const U8Tensor qq =
        quantizeU8(p.q, chooseSymmetricScale(p.q, 7).scale);
    const Int8Tensor qk =
        quantizeS8(p.k, chooseSymmetricScale(p.k, 8).scale);
    const Int8Tensor vt =
        quantizeS8Transposed(p.v, chooseSymmetricScale(p.v, 8).scale);
    std::vector<int32_t> raw(n * n);
    int8GemmBT(qq, qk, raw.data());
    const IntSoftmaxLut lut(qq.scale * qk.scale * p.scale);
    U8Tensor probs;
    probs.rows = n;
    probs.k = n;
    probs.scale = lut.probScale();
    probs.zero_point = 0;
    probs.codes.resize(n * n);
    for (size_t i = 0; i < n; ++i)
        lut.softmaxRow(raw.data() + i * n, n, p.mask.row(i),
                       probs.codes.data() + i * n);
    return int8MatmulBT(probs, vt);
}

void
BM_AttentionInt8(benchmark::State &state)
{
    const AttentionProblem p = attentionProblem(
        kAttnSeq, kAttnHeadDim, state.range(0) / 1000.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(int8MaskedAttention(p));
}
BENCHMARK(BM_AttentionInt8)->Arg(1000)->Arg(500)->Arg(250)->Arg(125);

// ---------------------------------------------------------------------
// Smoke mode (CI guard)
// ---------------------------------------------------------------------

/** Best-of-reps wall time of @p fn, in seconds. */
template <typename Fn>
double
bestSeconds(Fn &&fn, int reps)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(fn());
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

int runInt8Smoke();

/**
 * Fixed-shape dense-vs-sparse comparison: sparse must be (a) bitwise
 * equal to the dense masked computation and (b) strictly faster at 25%
 * retention. Returns a process exit code. Chains into runInt8Smoke().
 */
int
runSmoke()
{
    const AttentionProblem p =
        attentionProblem(kAttnSeq, kAttnHeadDim, 0.25);
    const Matrix dense = denseMaskedAttention(p);
    const Matrix sparse =
        sparseMaskedAttention(p.q, p.k, p.v, p.smask, p.scale);
    if (dense.rows() != sparse.rows() || dense.cols() != sparse.cols()) {
        std::fprintf(stderr, "smoke: shape mismatch\n");
        return 1;
    }
    for (size_t i = 0; i < dense.size(); ++i) {
        if (dense.data()[i] != sparse.data()[i]) {
            std::fprintf(stderr,
                         "smoke: sparse attention diverges from the dense "
                         "masked computation at flat index %zu "
                         "(%.9g vs %.9g)\n",
                         i, static_cast<double>(dense.data()[i]),
                         static_cast<double>(sparse.data()[i]));
            return 1;
        }
    }
    const int reps = 20;
    const double td = bestSeconds([&] { return denseMaskedAttention(p); },
                                  reps);
    const double ts = bestSeconds(
        [&] {
            return sparseMaskedAttention(p.q, p.k, p.v, p.smask, p.scale);
        },
        reps);
    std::printf("smoke: n=%zu d=%zu retention=25%% isa=%s threads=%zu\n"
                "smoke: dense %.3f ms, sparse %.3f ms (%.2fx)\n",
                kAttnSeq, kAttnHeadDim, simdIsaName(activeSimdIsa()),
                ThreadPool::globalConcurrency(), td * 1e3, ts * 1e3,
                td / ts);
    if (ts >= td) {
        std::fprintf(stderr,
                     "smoke: FAIL — sparse attention is not faster than "
                     "dense at 25%% retention\n");
        return 1;
    }
    return runInt8Smoke();
}

/**
 * Int8 GEMM guard: every compiled kernel instantiation must agree
 * exactly (the saturation-free maddubs scheme makes the s32 sums exact,
 * so portable-vs-AVX2 parity is bitwise, not tolerance-level), and on
 * AVX2 the int8 path must beat the fp32 GEMM at 512^3.
 */
int
runInt8Smoke()
{
    const size_t n = 512;
    Rng rng(10);
    const Matrix a = Matrix::randomNormal(n, n, rng);
    const Matrix b = Matrix::randomNormal(n, n, rng);
    const U8Tensor qa = quantizeU8(a, chooseSymmetricScale(a, 7).scale);
    const Int8Tensor qb = quantizeS8(b, chooseSymmetricScale(b, 8).scale);

    // Exact agreement between the active and portable instantiations.
    std::vector<int32_t> c_active(n * n), c_portable(n * n);
    activeGemmKernels().int8GemmBTRows(qa.codes.data(), qb.codes.data(),
                                       c_active.data(), n, n, 0, n);
    detail::portableGemmKernels().int8GemmBTRows(
        qa.codes.data(), qb.codes.data(), c_portable.data(), n, n, 0, n);
    for (size_t i = 0; i < n * n; ++i) {
        if (c_active[i] != c_portable[i]) {
            std::fprintf(stderr,
                         "smoke: FAIL — int8 %s kernel diverges from the "
                         "portable kernel at flat index %zu (%d vs %d)\n",
                         simdIsaName(activeSimdIsa()), i, c_active[i],
                         c_portable[i]);
            return 1;
        }
    }

    const int reps = 20;
    const double tf = bestSeconds([&] { return matmulBT(a, b); }, reps);
    const double ti = bestSeconds([&] { return int8MatmulBT(qa, qb); },
                                  reps);
    const double gmacs = static_cast<double>(n) * static_cast<double>(n) *
                         static_cast<double>(n) * 1e-9;
    std::printf("smoke: int8 gemm n=%zu isa=%s threads=%zu\n"
                "smoke: fp32 %.3f ms (%.2f GMAC/s), int8 %.3f ms "
                "(%.2f GMAC/s) — %.2fx\n",
                n, simdIsaName(activeSimdIsa()),
                ThreadPool::globalConcurrency(), tf * 1e3, gmacs / tf,
                ti * 1e3, gmacs / ti, tf / ti);
    if (activeSimdIsa() == SimdIsa::Avx2 && ti >= tf) {
        std::fprintf(stderr,
                     "smoke: FAIL — int8 GEMM is not faster than fp32 "
                     "at 512^3 on AVX2\n");
        return 1;
    }
    std::printf("smoke: PASS\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool smoke = false;
    for (auto it = args.begin(); it != args.end();) {
        if (std::strcmp(*it, "--smoke") == 0) {
            smoke = true;
            it = args.erase(it);
        } else {
            ++it;
        }
    }
    if (smoke)
        return runSmoke();

    // Machine-readable output rides along by default (satellite of the
    // kernel-vectorization PR): inject a JSON --benchmark_out unless the
    // caller already chose one.
    bool has_out = false;
    for (char *a : args)
        if (std::strncmp(a, "--benchmark_out=", 16) == 0)
            has_out = true;
    std::string out_flag = "--benchmark_out=BENCH_kernels.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }

    int our_argc = static_cast<int>(args.size());
    benchmark::Initialize(&our_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(our_argc, args.data()))
        return 1;
    // Surface the parallel-execution configuration in the report header
    // so GEMM numbers are attributable to a thread count and ISA path.
    benchmark::AddCustomContext(
        "dota_threads",
        std::to_string(dota::ThreadPool::globalConcurrency()));
    benchmark::AddCustomContext("simd_isa",
                                simdIsaName(activeSimdIsa()));
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
