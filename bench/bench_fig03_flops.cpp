/**
 * @file
 * Figure 3 reproduction: breakdown of attention vs. other operations
 * (normalized FLOPs) for a BERT-large-shaped encoder as the sequence
 * length scales from 384 to 16K.
 */
#include <iostream>

#include "bench_util.hpp"
#include "workloads/benchmark.hpp"

using namespace dota;

int
main()
{
    bench::banner("Figure 3: attention vs. other FLOPs when scaling "
                  "sequence length",
                  "DOTA Figure 3 (BERT-large shape)");

    Table t;
    t.header({"seq_len", "attention FLOPs", "other FLOPs",
              "attention share", "other share"});
    for (size_t n : {384u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
        ModelShape s{24, 1024, 16, 4096, n, false};
        const double attn =
            2.0 * static_cast<double>(s.attentionMacs());
        const double other =
            2.0 * static_cast<double>(s.linearMacs() + s.ffnMacs());
        const double total = attn + other;
        t.addRow({n >= 1024 ? fmtNum(n / 1024.0, 0) + "K"
                            : fmtNum(static_cast<double>(n), 0),
                  fmtNum(attn / 1e9, 2) + "G", fmtNum(other / 1e9, 2) + "G",
                  fmtPct(attn / total), fmtPct(other / total)});
    }
    t.print(std::cout);
    std::cout << "\nPaper shape check: attention grows from a minority at "
                 "n=384 to the\ndominant cost beyond 4K (Figure 3 shows "
                 "the same crossover).\n";
    return 0;
}
