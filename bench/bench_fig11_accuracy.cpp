/**
 * @file
 * Figure 11 reproduction: model quality vs. retention ratio across the
 * five benchmarks, comparing the dense baseline, DOTA (jointly-optimized
 * detector + model adaptation) and ELSA (training-free sign-random-
 * projection detection).
 *
 * Proxy tasks stand in for SQuAD/LRA/WikiText (DESIGN.md §1); the claim
 * reproduced is the *shape*: DOTA tracks the dense baseline down to
 * 5-10% retention while ELSA degrades markedly at equal retention, and
 * the gap grows with sparsity. Also includes the two algorithm ablations
 * DESIGN.md §4 calls out (joint optimization, row-balance constraint).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/dota.hpp"
#include "nn/loss.hpp"

using namespace dota;

namespace {

/** Calibration batch: a few task samples from a fixed stream. */
std::vector<Matrix>
calibFeatures(const SyntheticTask &task, size_t n)
{
    Rng rng(31);
    std::vector<Matrix> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(task.sample(rng).features);
    return out;
}

/**
 * ClassifierTrainer::evaluate replicated on the int8 path: identical
 * eval stream (seed 4242), int8Forward instead of model.forward — so
 * the int8 column is the same samples scored by the quantized model.
 */
EvalResult
int8Evaluate(TransformerClassifier &model, const Int8Plan &plan,
             const SyntheticTask &task, size_t samples)
{
    Rng eval_rng(4242);
    size_t hits = 0;
    double loss_sum = 0.0;
    for (size_t i = 0; i < samples; ++i) {
        const Sample s = task.sample(eval_rng);
        const Matrix logits = int8Forward(model, plan, s.features);
        Matrix dlogits;
        loss_sum += softmaxCrossEntropy(logits, {s.label}, dlogits);
        hits += rowArgmax(logits)[0] == s.label;
    }
    EvalResult res;
    res.metric = static_cast<double>(hits) / static_cast<double>(samples);
    res.loss = loss_sum / static_cast<double>(samples);
    return res;
}

/** LMTrainer::evaluate replicated on the int8 path (same stream). */
EvalResult
int8EvaluateLM(CausalLM &model, const Int8Plan &plan,
               const SyntheticGrammar &grammar, size_t samples)
{
    Rng eval_rng(4242);
    double loss_sum = 0.0;
    for (size_t i = 0; i < samples; ++i) {
        const std::vector<int> ids = grammar.sample(eval_rng);
        const Matrix logits = int8Forward(model, plan, ids);
        std::vector<int> targets(ids.size(), -1);
        for (size_t t = 0; t + 1 < ids.size(); ++t)
            targets[t] = ids[t + 1];
        Matrix dlogits;
        loss_sum += softmaxCrossEntropy(logits, targets, dlogits);
    }
    EvalResult res;
    res.loss = loss_sum / static_cast<double>(samples);
    res.metric = perplexityFromLoss(res.loss);
    return res;
}

// Proxy task construction lives in workloads/benchmark.cpp
// (proxyTaskFor / proxyGrammarFor) so the CLI trainer and this
// reproduction share one definition.

PipelineConfig
pipelineBudget()
{
    PipelineConfig pc;
    pc.pretrain.steps = bench::budget(120);
    pc.warmup_steps = bench::budget(60);
    pc.adapt.steps = bench::budget(120);
    return pc;
}

DetectorConfig
detectorFor(const Benchmark &b, double retention)
{
    DetectorConfig dc;
    dc.retention = retention;
    dc.sigma = b.tiny_sigma;
    dc.bits = 4;
    // Small lambda: the detector tracks the drifting scores during
    // adaptation at full strength (Adam is scale-invariant), while the
    // dL_MSE/dS injection stays a gentle regularizer. See
    // EXPERIMENTS.md for the lambda sensitivity discussion.
    dc.lambda = 1e-3;
    return dc;
}

void
runClassificationBenchmark(const Benchmark &b)
{
    const SyntheticTask task(proxyTaskFor(b));
    const size_t eval_n = bench::fastMode() ? 40 : 150;
    const std::vector<double> retentions{0.10, 0.05, 0.025};

    // Dense baseline, trained once and reused as the starting point of
    // every sweep point via copyParams.
    TransformerClassifier dense_model(b.tiny);
    PipelineConfig pc = pipelineBudget();
    ClassifierTrainer pre(dense_model, task, pc.pretrain);
    pre.train();
    const EvalResult dense = pre.evaluate(eval_n);

    // Int8 series (DESIGN.md §16): calibrate the trained models on a
    // small fixed batch, quantize, evaluate the same eval stream.
    const std::vector<Matrix> calib = calibFeatures(task, 8);
    const Int8Plan dense_plan = quantizeClassifier(
        dense_model, calibrateClassifier(dense_model, calib));
    const EvalResult dense_i8 =
        int8Evaluate(dense_model, dense_plan, task, eval_n);

    Table t(format("{} — {}", b.name, b.description));
    t.header({"retention", "dense", "dense-int8", "DOTA", "DOTA-int8",
              "ELSA", "A3", "static", "token-prune", "paper trend"});

    for (double r : retentions) {
        // DOTA: fork the dense model, warm up, jointly adapt.
        TransformerClassifier model(b.tiny);
        copyParams(dense_model, model);
        DotaDetector det(b.tiny, detectorFor(b, r));
        warmupDetector(model, task, det, pc.warmup_steps,
                       pc.warmup_batch, pc.warmup_lr);
        det.config().apply_mask = true;
        det.config().train = true;
        model.setHook(&det);
        ClassifierTrainer joint(model, task, pc.adapt);
        std::vector<Parameter *> dps;
        det.collectParams(dps);
        joint.addExtraParams(dps);
        joint.train();
        det.config().train = false;
        const EvalResult dota = joint.evaluate(eval_n);

        // DOTA-int8: the jointly-adapted model quantized, with the
        // trained detector still gating the integer softmax (hooks are
        // honored on the int8 path). Calibration runs under the mask so
        // the recorded ranges match deployment.
        const Int8Plan dota_plan = quantizeClassifier(
            model, calibrateClassifier(model, calib));
        const EvalResult dota_i8 =
            int8Evaluate(model, dota_plan, task, eval_n);
        model.setHook(nullptr);

        // Training-free baselines on the dense model at equal
        // retention: ELSA (sign random projection), A^3 (sorted-dim
        // candidate search), a static window+global pattern, and
        // SpAtten-style whole-token pruning.
        ElsaDetectorConfig ec;
        ec.retention = r;
        // Budget-matched hash width: ELSA spends m*dh FX16 MACs per
        // hashed vector vs DOTA's k*d INT4 MACs per token; m = 8 at
        // head_dim 16 is already ~4x DOTA's detection cost.
        ec.hash_bits = 8;
        ElsaDetector elsa(ec);
        dense_model.setHook(&elsa);
        const EvalResult elsa_eval = pre.evaluate(eval_n);

        A3Config a3c;
        a3c.retention = r;
        a3c.iterations = 8;
        A3Detector a3(a3c);
        dense_model.setHook(&a3);
        const EvalResult a3_eval = pre.evaluate(eval_n);

        StaticPatternConfig spc;
        spc.retention = r;
        StaticPatternDetector stat(spc);
        dense_model.setHook(&stat);
        const EvalResult static_eval = pre.evaluate(eval_n);

        TokenPruningConfig tpc;
        tpc.retention = r;
        TokenPruningDetector prune(tpc);
        dense_model.setHook(&prune);
        const EvalResult prune_eval = pre.evaluate(eval_n);
        dense_model.setHook(nullptr);

        t.addRow({fmtPct(r), fmtPct(dense.metric),
                  fmtPct(dense_i8.metric), fmtPct(dota.metric),
                  fmtPct(dota_i8.metric), fmtPct(elsa_eval.metric),
                  fmtPct(a3_eval.metric), fmtPct(static_eval.metric),
                  fmtPct(prune_eval.metric),
                  "DOTA ~dense; others degrade"});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
runLmBenchmark(const Benchmark &b)
{
    SyntheticGrammar grammar(proxyGrammarFor(b));
    const size_t eval_n = bench::fastMode() ? 10 : 40;
    const std::vector<double> retentions{0.25, 0.10};

    TransformerConfig cfg = b.tiny;
    cfg.max_seq = 128;
    CausalLM dense_model(cfg);
    PipelineConfig pc = pipelineBudget();
    LMTrainer pre(dense_model, grammar, pc.pretrain);
    pre.train();
    const EvalResult dense = pre.evaluate(eval_n);

    // Int8 series: calibrate on a few grammar samples, quantize, score
    // the same eval stream through the integer path.
    std::vector<std::vector<int>> lm_calib;
    {
        Rng rng(31);
        for (size_t i = 0; i < 8; ++i)
            lm_calib.push_back(grammar.sample(rng));
    }
    const Int8Plan dense_plan =
        quantizeLM(dense_model, calibrateLM(dense_model, lm_calib));
    const EvalResult dense_i8 =
        int8EvaluateLM(dense_model, dense_plan, grammar, eval_n);

    Table t(format("{} — {} (perplexity, lower is better)", b.name,
                   b.description));
    t.header({"retention", "dense ppl", "dense-int8 ppl", "DOTA ppl",
              "DOTA-int8 ppl", "ELSA ppl", "paper trend"});
    for (double r : retentions) {
        CausalLM model(cfg);
        copyParams(dense_model, model);
        DotaDetector det(cfg, detectorFor(b, r));
        warmupDetectorLM(model, grammar, det, pc.warmup_steps,
                         pc.warmup_batch, pc.warmup_lr);
        det.config().apply_mask = true;
        det.config().train = true;
        model.setHook(&det);
        LMTrainer joint(model, grammar, pc.adapt);
        std::vector<Parameter *> dps;
        det.collectParams(dps);
        joint.addExtraParams(dps);
        joint.train();
        det.config().train = false;
        const EvalResult dota = joint.evaluate(eval_n);

        // DOTA-int8: quantize the adapted LM with the detector gating
        // the integer softmax (calibration and eval both run masked).
        const Int8Plan dota_plan =
            quantizeLM(model, calibrateLM(model, lm_calib));
        const EvalResult dota_i8 =
            int8EvaluateLM(model, dota_plan, grammar, eval_n);
        model.setHook(nullptr);

        ElsaDetectorConfig ec;
        ec.retention = r;
        ec.hash_bits = 8; // budget-matched, see classification path
        ElsaDetector elsa(ec);
        dense_model.setHook(&elsa);
        const EvalResult elsa_eval = pre.evaluate(eval_n);
        dense_model.setHook(nullptr);

        t.addRow({fmtPct(r), fmtNum(dense.metric, 2),
                  fmtNum(dense_i8.metric, 2), fmtNum(dota.metric, 2),
                  fmtNum(dota_i8.metric, 2), fmtNum(elsa_eval.metric, 2),
                  "DOTA ~dense; ELSA ppl blows up"});
    }
    t.print(std::cout);
    std::cout << "\n";
}

/** Ablations on the Text task (DESIGN.md §4). */
void
runAblations()
{
    printBanner(std::cout, "Ablations (Text task, retention 10%)");
    const Benchmark &b = benchmark(BenchmarkId::Text);
    const SyntheticTask task(proxyTaskFor(b));
    const size_t eval_n = bench::fastMode() ? 40 : 150;
    PipelineConfig pc = pipelineBudget();

    TransformerClassifier dense_model(b.tiny);
    ClassifierTrainer pre(dense_model, task, pc.pretrain);
    pre.train();

    struct Variant
    {
        std::string name;
        bool warmup;
        bool joint;       ///< detector trained during adaptation
        bool balanced;    ///< top-k (true) vs threshold (false)
    };
    const Variant variants[] = {
        {"full DOTA (warmup + joint + balanced)", true, true, true},
        {"no detector warmup", false, true, true},
        {"no joint optimization (frozen detector)", true, false, true},
        {"unbalanced threshold selection", true, true, false},
    };

    Table t;
    t.header({"variant", "accuracy @10%"});
    for (const Variant &v : variants) {
        TransformerClassifier model(b.tiny);
        copyParams(dense_model, model);
        DotaDetector det(b.tiny, detectorFor(b, 0.10));
        if (v.warmup)
            warmupDetector(model, task, det, pc.warmup_steps,
                           pc.warmup_batch, pc.warmup_lr);
        if (!v.balanced) {
            // Calibrate a comparator threshold to ~10% density from one
            // probe forward (masks disabled while probing).
            det.config().apply_mask = false;
            det.config().train = false;
            model.setHook(&det);
            Rng rng(7);
            model.forward(task.sample(rng).features);
            model.setHook(nullptr);
            det.config().use_threshold = true;
            det.config().threshold =
                thresholdForRetention(det.lastEstimate(0, 0), 0.10);
        }
        det.config().apply_mask = true;
        det.config().train = v.joint;
        model.setHook(&det);
        ClassifierTrainer joint(model, task, pc.adapt);
        if (v.joint) {
            std::vector<Parameter *> dps;
            det.collectParams(dps);
            joint.addExtraParams(dps);
        }
        joint.train();
        det.config().train = false;
        const EvalResult res = joint.evaluate(eval_n);
        model.setHook(nullptr);
        t.addRow({v.name, fmtPct(res.metric)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Figure 11: accuracy vs. retention — DOTA vs ELSA vs "
                  "dense",
                  "DOTA Figure 11 (all five benchmarks; paper shows DOTA "
                  "matching dense at 3-10% retention while ELSA falls "
                  "behind at equal retention)");

    for (const Benchmark &b : allBenchmarks()) {
        if (b.id == BenchmarkId::LM)
            runLmBenchmark(b);
        else
            runClassificationBenchmark(b);
    }
    runAblations();
    return 0;
}
