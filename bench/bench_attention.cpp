/**
 * @file
 * Attention-backend benchmark: wall time and peak RSS of the dense,
 * sparse-rows and streaming backends as the sequence length grows, on
 * the long-retrieval workload (DESIGN.md §13). Emits
 * BENCH_attention.json next to the binary.
 *
 * The headline claim measured here: the streaming backend's score
 * memory is O(n * tile), so a 32k-token prefill fits where the dense
 * path would need a 4 GiB score matrix. Peak RSS (getrusage RU_MAXRSS)
 * is a process-lifetime high-water mark, so rows record the mark
 * *after* each run and the schedule runs streaming before dense at
 * every length — the streaming rows are unpolluted by dense
 * allocations at larger n.
 *
 * `--smoke` runs ONLY the streaming backend at 32k (no dense run ever
 * happens in the process, keeping the high-water mark meaningful),
 * checks the output is finite, the planted-needle recall is ~1, and
 * peak RSS stays under a pinned budget (default 512 MiB,
 * --rss-budget-mb overrides). Exit 0/1 — the CI long-context gate.
 */
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "nn/attention_backend.hpp"
#include "workloads/long_retrieval.hpp"

using namespace dota;

namespace {

/** Process peak RSS in KiB (Linux RU_MAXRSS unit). */
long
peakRssKb()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;
}

struct RunRow
{
    size_t n = 0;
    std::string backend;
    double ms = 0.0;
    double recall = 0.0;
    long rss_peak_kb = 0;
    uint64_t mask_nnz = 0;
};

RunRow
runOne(const LongRetrievalCase &c, AttnBackendKind kind, bool use_mask)
{
    AttnHeadProblem p;
    p.q = &c.q;
    p.k = &c.k;
    p.v = &c.v;
    p.scale = c.scale;
    Matrix dense_mask;
    if (use_mask) {
        if (kind == AttnBackendKind::Dense) {
            dense_mask = c.mask.toDense();
            p.dense_mask = &dense_mask;
        } else {
            p.sparse_mask = &c.mask;
        }
    }
    const AttentionBackend &b = attentionBackend(kind);
    const auto t0 = std::chrono::steady_clock::now();
    AttnHeadResult r = b.runHead(p);
    const auto t1 = std::chrono::steady_clock::now();

    RunRow row;
    row.n = c.q.rows();
    row.backend = b.name();
    row.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    row.recall = needleRecall(c, r.z);
    row.rss_peak_kb = peakRssKb();
    row.mask_nnz = use_mask ? c.mask.nnz() : 0;
    return row;
}

bool
allFinite(const Matrix &m)
{
    for (size_t i = 0; i < m.size(); ++i)
        if (!std::isfinite(m.data()[i]))
            return false;
    return true;
}

int
smoke(size_t rss_budget_mb)
{
    // Streaming only: any dense run would push the high-water mark past
    // the budget for reasons unrelated to the streaming kernel.
    LongRetrievalConfig cfg;
    cfg.seq_len = 32768;
    const LongRetrievalCase c = makeLongRetrieval(cfg);

    AttnHeadProblem p;
    p.q = &c.q;
    p.k = &c.k;
    p.v = &c.v;
    p.scale = c.scale;
    p.sparse_mask = &c.mask;
    const auto t0 = std::chrono::steady_clock::now();
    AttnHeadResult r =
        attentionBackend(AttnBackendKind::Streaming).runHead(p);
    const auto t1 = std::chrono::steady_clock::now();

    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double recall = needleRecall(c, r.z);
    const long rss_kb = peakRssKb();
    const bool finite = allFinite(r.z);
    const bool rss_ok =
        static_cast<size_t>(rss_kb) <= rss_budget_mb * 1024;
    const bool recall_ok = recall >= 0.9;

    std::cout << "streaming 32k smoke: " << ms << " ms, recall "
              << recall << ", peak RSS " << rss_kb / 1024 << " MiB"
              << " (budget " << rss_budget_mb << " MiB)\n";
    if (!finite)
        std::cout << "FAIL: non-finite attention output\n";
    if (!recall_ok)
        std::cout << "FAIL: needle recall below 0.9\n";
    if (!rss_ok)
        std::cout << "FAIL: peak RSS over budget — streaming score "
                     "memory is no longer O(n * tile)\n";
    const bool ok = finite && recall_ok && rss_ok;
    std::cout << (ok ? "SMOKE PASS\n" : "SMOKE FAIL\n");
    return ok ? 0 : 1;
}

void
writeJson(const std::vector<RunRow> &rows, const std::string &path)
{
    std::ofstream out(path);
    out << "{\n  \"bench\": \"attention_backends\",\n"
        << "  \"rss_note\": \"rss_peak_kb is the process high-water "
           "mark after the run; streaming runs before dense at each "
           "n\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const RunRow &r = rows[i];
        out << "    {\"n\": " << r.n << ", \"backend\": \"" << r.backend
            << "\", \"ms\": " << r.ms << ", \"recall\": " << r.recall
            << ", \"rss_peak_kb\": " << r.rss_peak_kb
            << ", \"mask_nnz\": " << r.mask_nnz << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    size_t rss_budget_mb = 512;
    bool want_smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            want_smoke = true;
        } else if (std::strcmp(argv[i], "--rss-budget-mb") == 0 &&
                   i + 1 < argc) {
            rss_budget_mb = static_cast<size_t>(std::stoul(argv[++i]));
        } else {
            std::cerr << "usage: bench_attention [--smoke] "
                         "[--rss-budget-mb N]\n";
            return 2;
        }
    }
    if (want_smoke)
        return smoke(rss_budget_mb);

    bench::banner("Attention backends: time and peak RSS vs context",
                  "DESIGN.md §13 (streaming online-softmax, O(n * tile) "
                  "score memory)");

    const std::vector<size_t> lens =
        bench::fastMode() ? std::vector<size_t>{1024, 4096}
                          : std::vector<size_t>{1024, 2048, 4096, 8192};
    std::vector<RunRow> rows;
    Table t("per-backend attention forward (single head, d=64)");
    t.header({"n", "backend", "ms", "recall", "peak RSS MiB",
              "mask nnz"});
    auto add = [&](const RunRow &r) {
        rows.push_back(r);
        t.addRow({fmtNum(static_cast<double>(r.n), 0), r.backend,
                  fmtNum(r.ms, 2), fmtNum(r.recall, 3),
                  fmtNum(static_cast<double>(r.rss_peak_kb) / 1024.0, 1),
                  fmtNum(static_cast<double>(r.mask_nnz), 0)});
    };

    for (size_t n : lens) {
        LongRetrievalConfig cfg;
        cfg.seq_len = n;
        const LongRetrievalCase c = makeLongRetrieval(cfg);
        // Streaming first so its RSS row predates dense allocations.
        add(runOne(c, AttnBackendKind::Streaming, true));
        add(runOne(c, AttnBackendKind::Sparse, true));
        add(runOne(c, AttnBackendKind::Dense, false));
    }
    {
        // Long-context rows: streaming only (dense would need a 4 GiB
        // score matrix at 32k — that is the point of this bench).
        LongRetrievalConfig cfg;
        cfg.seq_len = bench::fastMode() ? 16384 : 32768;
        const LongRetrievalCase c = makeLongRetrieval(cfg);
        add(runOne(c, AttnBackendKind::Streaming, true));
    }
    t.print(std::cout);

    const std::string path = "BENCH_attention.json";
    writeJson(rows, path);
    std::cout << "\nwrote " << path << "\n";
    return 0;
}
