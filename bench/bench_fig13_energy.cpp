/**
 * @file
 * Figure 13 reproduction: attention-block energy-efficiency of ELSA,
 * DOTA-C and DOTA-A relative to the V100 GPU, plus the energy breakdown
 * statements of Section 5.4 (FC-dominated total energy, sub-percent
 * detection overhead).
 */
#include <iostream>

#include "bench_util.hpp"
#include "core/dota.hpp"

using namespace dota;

int
main()
{
    bench::banner("Figure 13: energy-efficiency over GPU",
                  "DOTA Figure 13 (paper: ELSA 146-2630x, DOTA-C "
                  "618-5185x, DOTA-A 1236-8642x)");

    System sys;

    struct PaperRef { double elsa, c, a; };
    auto ref = [](BenchmarkId id) -> PaperRef {
        switch (id) {
          case BenchmarkId::QA:        return {2630, 5185, 8642};
          case BenchmarkId::Image:     return {146, 782, 3947};
          case BenchmarkId::Text:      return {483, 1172, 5769};
          case BenchmarkId::Retrieval: return {655, 3284, 7989};
          case BenchmarkId::LM:        return {243, 618, 1236};
        }
        return {};
    };

    Table t("Attention-block energy-efficiency relative to V100");
    t.header({"benchmark", "ELSA", "paper", "DOTA-C", "paper", "DOTA-A",
              "paper"});
    for (const Benchmark &b : allBenchmarks()) {
        const auto cmp = sys.compare(b.id);
        const PaperRef p = ref(b.id);
        t.addRow({b.name, fmtSpeedup(cmp.energy_eff_elsa),
                  fmtSpeedup(p.elsa), fmtSpeedup(cmp.energy_eff_c),
                  fmtSpeedup(p.c), fmtSpeedup(cmp.energy_eff_a),
                  fmtSpeedup(p.a)});
    }
    t.print(std::cout);

    // Section 5.4 breakdown statements, plus the quantized-datapath
    // column (DESIGN.md §16): the same layer with the RMMU running
    // INT8 (4x MACs/PE, 1-byte operand/KV traffic, 0.27 pJ/MAC).
    System::Options i8_opt;
    i8_opt.sim.datapath = Precision::INT8;
    System sys_i8(i8_opt);

    Table e("Energy breakdown of DOTA-C (per benchmark)");
    e.header({"benchmark", "linear/FC share", "attention share",
              "detection share", "FX16/layer", "INT8/layer", "saving"});
    for (const Benchmark &b : allBenchmarks()) {
        const RunReport r = sys.run(b.id, DotaMode::Conservative);
        const RunReport r8 = sys_i8.run(b.id, DotaMode::Conservative);
        const double total = r.per_layer.totalEnergyPj();
        const double total_i8 = r8.per_layer.totalEnergyPj();
        e.addRow({b.name,
                  fmtPct(r.per_layer.linear.energy_pj / total),
                  fmtPct(r.per_layer.attention.energy_pj / total),
                  fmtPct(r.per_layer.detection.energy_pj / total),
                  fmtNum(total * 1e-9, 4) + "mJ",
                  fmtNum(total_i8 * 1e-9, 4) + "mJ",
                  fmtSpeedup(total / total_i8)});
    }
    e.print(std::cout);
    std::cout << "Paper (Section 5.4): FC layers consume 84.9-99.3% of "
                 "total energy;\nattention detection only 0.11-0.34%.\n"
                 "INT8 column: quantized datapath of DESIGN.md §16 "
                 "(same retention, lower-precision RMMU).\n";
    return 0;
}
