/**
 * @file
 * Autoregressive serving engine: continuous batching over a paged KV
 * cache with DOTA-guided eviction (DESIGN.md §12).
 *
 * Where the ServingSimulator (simulator.hpp) dispatches whole
 * independent requests, the GenerationEngine serves GenRequests at
 * token grain: each device of the fleet runs an iteration loop that
 * forms a fresh batch every step — continuing one decode token for
 * every running sequence and admitting queued prompts for prefill when
 * the batch-slot, step-token and KV-page budgets allow — so short
 * requests never wait behind long ones (continuous batching in the
 * Orca/vLLM sense, motivated by the prefill/decode phase split of
 * "Demystifying BERT").
 *
 * The DOTA detector is repurposed as the KV-eviction policy, the
 * RocketKV recipe at serving grain: after prefill, only the strongest
 * `evict_retention` fraction of the prompt's KV entries is kept (weak
 * attentions are omitted from memory, not just from compute), and each
 * decode step attends to a dynamic top-k of the surviving entries. Both
 * fractions are further tightened by the degradation ladder — under
 * queue pressure deeper ladder levels now shrink KV footprints as well
 * as service time. Only DOTA slots evict (a GPU slot has no detector).
 *
 * Determinism contract: one serial virtual-time event loop; service
 * costs come from the device cost cache and a per-(group, level)
 * linear per-token decode model calibrated from two probe lengths —
 * both warmed in parallel with a fixed-order merge — so the ServeReport
 * is bit-identical at every DOTA_THREADS.
 */
#pragma once

#include "serve/fault.hpp"
#include "serve/kv_cache.hpp"
#include "serve/simulator.hpp"

namespace dota {

/** Batch-formation knobs of the continuous-batching scheduler. */
struct BatchPolicy
{
    /** Concurrent sequences one device may hold (batch slots). */
    size_t max_batch_seqs = 8;

    /**
     * Token budget of one step: each decoding sequence costs one
     * token, a prefill costs its whole prompt. Prompts longer than
     * this can never be scheduled and fail deterministically —
     * unless streaming_prefill lifts the limit.
     */
    size_t max_step_tokens = 8192;

    /**
     * Chunked (streaming) prefill: prompts longer than the step-token
     * budget are admitted anyway (KV feasibility still required, all
     * pages reserved at admission) and prefilled across consecutive
     * steps, each step consuming up to the budget left after the
     * decodes — the serving-side face of the streaming attention
     * backend, whose O(tile) score memory is what makes a 32k-token
     * prefill pass feasible at all. The first output token (TTFT) and
     * the DOTA eviction pass happen when the last chunk lands. Off by
     * default so existing generation goldens are untouched.
     */
    bool streaming_prefill = false;

    /** Fixed per-step launch overhead (kernel dispatch, bookkeeping). */
    double step_overhead_ms = 0.05;

    /**
     * Preemptions one sequence may survive before it fails (restart
     * thrash guard). A sequence that OOMs alone on a device fails
     * immediately — retrying deterministically reproduces the OOM.
     */
    size_t max_preemptions = 2;

    /**
     * Fairness bound: no queued request may wait more than this many
     * engine steps before its prefill starts (0 disables the check).
     * Admission is strict FIFO, so this asserts the no-starvation
     * theorem rather than implementing a side channel around it.
     */
    size_t starve_step_budget = 0;

    /**
     * Chaos watchdog (0 disables): a device holding resident
     * sequences that completes no step for this long (breaker open,
     * repeated transient voids) has its residents force-migrated back
     * to the queue — bounding every request's decode stall at the
     * price of a re-prefill elsewhere.
     */
    double watchdog_stall_ms = 0.0;
};

/**
 * Live KV migration and device probation (DESIGN.md §15).
 *
 * When a device is killed, drained (`drain:<dev>@<ms>`), or flagged by
 * the watchdog, its resident sequences' sealed KV pages are copied to
 * a healthy device instead of being thrown away: each page's CRC32
 * seal is re-checked on arrival, admission on the target arena is
 * all-or-nothing, and a sequence whose transfer carries a poisoned
 * page (or finds no eligible target) falls back to the classic
 * re-prefill failover — so migration strictly reduces wasted work and
 * never serves a corrupted token. Victims depart in resident order and
 * targets are chosen by (most free pages, lowest index) inside the
 * serial event loop, so the run stays bit-identical at any
 * DOTA_THREADS.
 */
struct MigrationPolicy
{
    /** Master switch; off reproduces the re-prefill-only engine. */
    bool enabled = true;

    /** Transfer cost of one sealed KV page over the fabric. */
    double page_ms = 0.02;

    /**
     * Probation of revived devices: clean (transient-free) steps
     * required before a revived device returns to full duty. While on
     * probation it admits at most probation_seqs sequences and is
     * never a migration target, so a flapping device cannot repeatedly
     * absorb and kill migrations. Any transient failure resets the
     * clean-step count (a demotion); the existing circuit breakers
     * keep parking it between demotions. 0 disables probation.
     */
    size_t probation_steps = 8;

    /** Batch-slot cap while on probation (reduced concurrency). */
    size_t probation_seqs = 1;
};

/** KV-cache sizing and the DOTA eviction policy. */
struct KvPolicy
{
    /** Token slots per page. */
    size_t page_tokens = 16;

    /** Per-device KV byte budget. */
    size_t budget_bytes = 256ull << 20;

    /**
     * Bytes of K+V state per token; 0 derives 2 * layers * dim * 4
     * from the benchmark's paper shape.
     */
    size_t bytes_per_token = 0;

    /**
     * Post-prefill eviction: keep fraction of prompt KV entries at
     * ladder level 0 (deeper levels use min(evict_retention, ladder
     * retention)). 1.0 disables eviction.
     */
    double evict_retention = 0.5;

    /**
     * Dynamic top-k decode: fraction of the surviving KV entries each
     * decode step attends to (same ladder tightening). 1.0 disables.
     */
    double topk_retention = 0.5;

    bool evict_after_prefill = true;
    bool dynamic_topk = true;
};

/** Fleet + policy of a generation deployment. */
struct EngineConfig
{
    /** Same fleet description as ServeConfig. */
    std::vector<DeviceSpec> devices;
    size_t accelerators = 4;
    DotaMode mode = DotaMode::Full;
    DeviceOptions options = DeviceOptions::table2();

    /** queue_limit and degrade_depth_* are honored; the retry/breaker
     * knobs only apply to the fault-injecting ServingSimulator. */
    ServePolicy policy;

    BatchPolicy batch;
    KvPolicy kv;
    MigrationPolicy migrate;
};

/** Token-grain autoregressive serving engine over a device fleet. */
class GenerationEngine
{
  public:
    GenerationEngine(EngineConfig cfg, const Benchmark &bench);

    /**
     * Serve @p trace to completion. Deterministic: same (config,
     * trace) => bit-identical ServeReport at any thread count.
     */
    ServeReport run(const GenTrace &trace) const;

    /**
     * Serve @p trace under the chaos described by @p plan: kill/slow/
     * transient faults strike mid-prefill and mid-decode, corrupt
     * events flip bits in resident KV pages (detected by the per-page
     * CRC32 seals and quarantined before any token is served from
     * them), drain events gracefully evacuate a device for planned
     * maintenance, and victims recover deterministically — by live KV
     * migration when MigrationPolicy allows (sealed pages re-verified
     * on arrival, decode resumes without re-prefill), by re-prefill on
     * a healthy device under capped restarts otherwise. Replayable
     * bit-for-bit from (trace seed, plan, fault_seed) at any
     * DOTA_THREADS; an empty plan is exactly the fault-free run.
     */
    ServeReport run(const GenTrace &trace, const FaultPlan &plan,
                    uint64_t fault_seed) const;

    size_t size() const { return sim_.size(); }

    /** KV bytes one token occupies (config override or model-derived). */
    size_t bytesPerToken() const { return bytes_per_token_; }

    /** Prefill cost of a @p prompt_len prompt on @p accel at @p level. */
    double prefillMs(size_t accel, size_t level, size_t prompt_len) const;

    /**
     * Cost of one decode token attending to @p attended KV entries on
     * @p accel at @p level (calibrated linear per-token model).
     */
    double decodeTokenMs(size_t accel, size_t level,
                         size_t attended) const;

    /** Whether slot @p accel carries a DOTA detector (can evict). */
    bool slotHasDetector(size_t accel) const;

    /** Effective KV keep fraction of slot @p accel at ladder @p level. */
    double evictKeepFraction(size_t accel, size_t level) const;

    /** Effective decode top-k fraction of @p accel at @p level. */
    double topkFraction(size_t accel, size_t level) const;

    /** Pre-warm every cost and calibration entry (parallel inside). */
    void warm(const GenTrace &trace) const;

    const EngineConfig &config() const { return cfg_; }

    /** The cost/ladder substrate (retention, device names, ...). */
    const ServingSimulator &costModel() const { return sim_; }

  private:
    EngineConfig cfg_;
    ServingSimulator sim_; ///< ladder variants + (group, level, len) costs
    size_t bytes_per_token_ = 0;
};

} // namespace dota
