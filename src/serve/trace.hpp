/**
 * @file
 * Seeded arrival-trace generation for the online serving simulator.
 *
 * A RequestTrace is the input side of a serving experiment: a sequence
 * of timestamped inference requests (sequence length + optional
 * deadline) drawn from a stochastic arrival process. Three processes are
 * provided — Poisson (memoryless steady load), Burst (periodic load
 * spikes on a steady base), and Diurnal (sinusoidal rate modulation, a
 * compressed day/night cycle) — all generated from one explicit seed
 * through common/rng.hpp, so a trace is a pure function of its
 * TraceConfig and every chaos experiment is replayable bit-for-bit.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dota {

/** Arrival process shapes for generateTrace(). */
enum class ArrivalProcess { Poisson, Burst, Diurnal };

/** Display name, e.g. "poisson". */
std::string arrivalProcessName(ArrivalProcess process);

/** One inference request of the trace. */
struct Request
{
    size_t id = 0;           ///< dense index, also the tie-break key
    double arrival_ms = 0.0; ///< virtual arrival time
    size_t seq_len = 0;      ///< tokens to serve
    /** Absolute completion deadline; infinity when the trace has none. */
    double deadline_ms = 0.0;
};

/** Knobs of the arrival generator. */
struct TraceConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    double rate_per_s = 100.0; ///< mean arrival rate (requests/second)
    size_t requests = 128;
    uint64_t seed = 1;         ///< arrival seed (lengths + interarrivals)

    // Request lengths: heavy-tailed between len_min and len_max (the
    // serving_fleet request-mix shape), rounded up to len_round tokens.
    size_t len_min = 256;
    size_t len_max = 4096;
    size_t len_round = 128;
    double len_shape = 2.0; ///< tail exponent; higher = more short reqs

    /** Relative deadline per request; 0 disables deadlines. */
    double deadline_ms = 0.0;

    // Burst process: every burst_every_s seconds the rate jumps to
    // rate_per_s * burst_multiplier for burst_len_s seconds.
    double burst_every_s = 1.0;
    double burst_len_s = 0.25;
    double burst_multiplier = 4.0;

    // Diurnal process: rate(t) = rate_per_s * (1 + amplitude *
    // sin(2*pi*t / period_s)), clamped away from zero.
    double diurnal_period_s = 4.0;
    double diurnal_amplitude = 0.8;
};

/** A generated arrival trace (requests sorted by arrival time). */
struct RequestTrace
{
    TraceConfig config;
    std::vector<Request> requests;

    /** Arrival time of the last request (0 for an empty trace). */
    double horizonMs() const;

    /** Distinct sequence lengths, sorted (for cost-cache warming). */
    std::vector<size_t> distinctLengths() const;
};

/** Generate the trace described by @p cfg (deterministic in cfg). */
RequestTrace generateTrace(const TraceConfig &cfg);

// ------------------------------------------------------------ generation

/**
 * One autoregressive generation request: a prompt to prefill, then
 * `output_len` tokens to decode one by one (the GenerationEngine's
 * token-level counterpart of Request's whole-sequence grain).
 */
struct GenRequest
{
    size_t id = 0;           ///< dense index, also the tie-break key
    double arrival_ms = 0.0; ///< virtual arrival time
    size_t prompt_len = 0;   ///< tokens to prefill
    size_t output_len = 0;   ///< tokens to generate (>= 1)
    /** Absolute completion deadline; infinity when the trace has none. */
    double deadline_ms = 0.0;
};

/**
 * Knobs of the generation-trace generator. Arrival process and prompt
 * lengths reuse TraceConfig (len_* describe the prompt); output lengths
 * are drawn from an independent stream forked off the same seed with
 * the same heavy-tailed shape, so a GenTrace stays a pure function of
 * its config.
 */
struct GenTraceConfig
{
    TraceConfig arrivals; ///< process, rate, seed, prompt lengths

    // Output lengths: heavy-tailed in [out_min, out_max], rounded up
    // to out_round tokens.
    size_t out_min = 16;
    size_t out_max = 256;
    size_t out_round = 8;
    double out_shape = 1.5; ///< tail exponent; higher = more short outputs
};

/** A generated arrival trace of generation requests (sorted by time). */
struct GenTrace
{
    GenTraceConfig config;
    std::vector<GenRequest> requests;

    /** Arrival time of the last request (0 for an empty trace). */
    double horizonMs() const;

    /** Distinct prompt lengths, sorted (for cost-cache warming). */
    std::vector<size_t> distinctPromptLengths() const;

    /** Sum of output_len over all requests. */
    size_t totalOutputTokens() const;
};

/** Generate the generation trace described by @p cfg. */
GenTrace generateGenTrace(const GenTraceConfig &cfg);

} // namespace dota
