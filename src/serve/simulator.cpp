/**
 * @file
 * Event-driven serving simulator implementation.
 *
 * The event loop is strictly serial: one min-heap of (time, seq)
 * ordered events, where seq is the push order. All random draws
 * (transient failures) happen inside the loop from the fault seed, and
 * the only parallel section is warmCostCache()'s fixed-order cost
 * evaluation — which is what makes the ServeReport bit-identical at
 * every DOTA_THREADS.
 */
#include "serve/simulator.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "device/dota_device.hpp"

namespace dota {

namespace {

/** Degradation ladder: DOTA modes by decreasing retention. */
constexpr DotaMode kLadder[] = {DotaMode::Full, DotaMode::Conservative,
                                DotaMode::Aggressive};
constexpr size_t kLadderLen = sizeof(kLadder) / sizeof(kLadder[0]);

} // namespace

ServingSimulator::ServingSimulator(ServeConfig cfg,
                                   const Benchmark &bench)
    : bench_(bench), policy_(cfg.policy)
{
    std::vector<DeviceSpec> specs = std::move(cfg.devices);
    if (specs.empty()) {
        DeviceSpec spec;
        spec.key = dotaModeKey(cfg.mode);
        spec.count = cfg.accelerators;
        spec.opts = cfg.options;
        specs.push_back(std::move(spec));
    }
    for (const DeviceSpec &spec : specs) {
        DOTA_ASSERT(spec.count >= 1, "device spec needs count >= 1");
        DOTA_ASSERT(spec.speed > 0.0, "device speed must be positive");
        // The native device, plus — for DOTA parts — every ladder mode
        // below it in retention, as pre-built degradation variants.
        std::vector<std::unique_ptr<Device>> protos;
        std::vector<double> retention;
        size_t start = kLadderLen;
        for (size_t m = 0; m < kLadderLen; ++m)
            if (dotaModeKey(kLadder[m]) == spec.key)
                start = m;
        if (start < kLadderLen) {
            for (size_t m = start; m < kLadderLen; ++m) {
                protos.push_back(DeviceRegistry::create(
                    dotaModeKey(kLadder[m]), spec.opts));
                retention.push_back(modeRetention(bench_, kLadder[m]));
            }
        } else {
            protos.push_back(DeviceRegistry::create(spec.key,
                                                    spec.opts));
            retention.push_back(1.0); // no retention knob to turn
        }
        max_ladder_ = std::max(max_ladder_, protos.size());
        for (size_t i = 0; i < spec.count; ++i) {
            Slot slot;
            for (const auto &proto : protos)
                slot.variants.push_back(proto->clone());
            slot.retention = retention;
            slot.speed = spec.speed;
            slot.group = groups_;
            slots_.push_back(std::move(slot));
        }
        ++groups_;
    }
    DOTA_ASSERT(!slots_.empty(), "serving fleet needs at least one "
                                 "accelerator");
}

size_t
ServingSimulator::ladderDepth(size_t accel) const
{
    return slots_[accel].variants.size();
}

std::string
ServingSimulator::deviceName(size_t accel, size_t level) const
{
    const Slot &slot = slots_[accel];
    return slot.variants[std::min(level, slot.variants.size() - 1)]
        ->name();
}

double
ServingSimulator::retention(size_t accel, size_t level) const
{
    const Slot &slot = slots_[accel];
    return slot.retention[std::min(level, slot.retention.size() - 1)];
}

ServingSimulator::Cost
ServingSimulator::groupCost(size_t group, size_t level,
                            size_t seq_len) const
{
    const std::tuple<size_t, size_t, size_t> key{group, level, seq_len};
    {
        std::lock_guard<std::mutex> lk(cache_mu_);
        auto it = cost_cache_.find(key);
        if (it != cost_cache_.end())
            return it->second;
    }
    size_t rep = 0;
    while (slots_[rep].group != group)
        ++rep;
    Benchmark b = bench_;
    b.paper_shape.seq_len = seq_len;
    const RunReport r = slots_[rep].variants[level]->simulate(b);
    const Cost cost{r.timeMs(), r.totalEnergyJ()};
    std::lock_guard<std::mutex> lk(cache_mu_);
    cost_cache_[key] = cost;
    return cost;
}

double
ServingSimulator::serviceMs(size_t accel, size_t level,
                            size_t seq_len) const
{
    const Slot &slot = slots_[accel];
    const size_t lvl = std::min(level, slot.variants.size() - 1);
    return groupCost(slot.group, lvl, seq_len).ms / slot.speed;
}

void
ServingSimulator::warmCostCache(
    const std::vector<size_t> &seq_lens) const
{
    std::vector<size_t> rep_of(groups_);
    for (size_t a = slots_.size(); a-- > 0;)
        rep_of[slots_[a].group] = a;
    std::vector<std::tuple<size_t, size_t, size_t>> missing;
    {
        std::set<size_t> distinct(seq_lens.begin(), seq_lens.end());
        std::lock_guard<std::mutex> lk(cache_mu_);
        for (size_t g = 0; g < groups_; ++g) {
            const size_t levels =
                slots_[rep_of[g]].variants.size();
            for (size_t l = 0; l < levels; ++l)
                for (size_t n : distinct)
                    if (!cost_cache_.count({g, l, n}))
                        missing.push_back({g, l, n});
        }
    }
    if (missing.empty())
        return;
    // Independent simulations land in a fixed-index array, then merge
    // under the lock in deterministic order (the fleet-warming idiom).
    std::vector<Cost> costs(missing.size());
    parallelFor(0, missing.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            const auto [g, l, n] = missing[i];
            Benchmark b = bench_;
            b.paper_shape.seq_len = n;
            const RunReport r =
                slots_[rep_of[g]].variants[l]->simulate(b);
            costs[i] = Cost{r.timeMs(), r.totalEnergyJ()};
        }
    });
    std::lock_guard<std::mutex> lk(cache_mu_);
    for (size_t i = 0; i < missing.size(); ++i)
        cost_cache_[missing[i]] = costs[i];
}

namespace {

enum class EventType { Fault, Arrival, Retry, Probe, Completion };

enum class AttemptFate { Success, Transient, Timeout };

struct Event
{
    double t = 0.0;
    uint64_t seq = 0; ///< push order; the deterministic tie-break
    EventType type = EventType::Arrival;
    QueuedJob job;          // Arrival / Retry / Completion
    FaultEvent fault;       // Fault
    size_t device = 0;      // Completion
    uint64_t epoch = 0;     // Completion: device epoch at dispatch
    size_t level = 0;       // Completion: ladder level served
    double dispatch_t = 0.0;
    double energy_j = 0.0;  // Completion: attempt energy (prorated)
    AttemptFate fate = AttemptFate::Success;
};

struct EventLater
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        return a.seq > b.seq;
    }
};

/** Runtime state of one fleet slot during a run. */
struct DevState
{
    bool alive = true;
    bool busy = false;
    double slow = 1.0;       ///< straggler service-time multiplier
    uint64_t epoch = 0;      ///< bumped on death; invalidates in-flight
    double down_since = -1.0;
    // In-flight attempt (valid while busy).
    QueuedJob current;
    double current_start = 0.0;
    double current_end = 0.0;
    double current_energy = 0.0;
};

} // namespace

ServeReport
ServingSimulator::run(const RequestTrace &trace, const FaultPlan &plan,
                      uint64_t fault_seed) const
{
    const size_t n = slots_.size();
    ServeReport rep;
    rep.requests = trace.requests.size();
    rep.completed_by_level.assign(max_ladder_, 0);
    rep.devices.resize(n);
    for (size_t a = 0; a < n; ++a)
        rep.devices[a].name = slots_[a].variants[0]->name();
    rep.outcomes.resize(trace.requests.size());
    for (const Request &req : trace.requests) {
        RequestOutcome &out = rep.outcomes[req.id];
        out.id = req.id;
        out.arrival_ms = req.arrival_ms;
        out.seq_len = req.seq_len;
        out.status = RequestStatus::ShedStarved;
    }

    warmCostCache(trace.distinctLengths());

    // Random (MTBF) faults are generated out to twice the arrival
    // horizon plus slack, so the drain phase stays under chaos too.
    const double fault_horizon = trace.horizonMs() * 2.0 + 1000.0;
    const FaultInjector injector(plan, n, fault_horizon, fault_seed);
    // Transient draws use a stream forked off the same seed; the
    // injector's schedule and the per-attempt draws stay independent.
    Rng fault_rng(fault_seed ^ 0x9e3779b97f4a7c15ULL);

    RobustDispatcher disp(policy_, n);
    std::vector<DevState> dev(n);
    std::priority_queue<Event, std::vector<Event>, EventLater> heap;
    uint64_t seq = 0;
    auto push = [&](Event ev) {
        ev.seq = seq++;
        heap.push(std::move(ev));
    };

    // Faults before arrivals so that at equal timestamps a device dies
    // before it can accept newly arriving work.
    for (const FaultEvent &f : injector.schedule()) {
        Event ev;
        ev.t = f.t_ms;
        ev.type = EventType::Fault;
        ev.fault = f;
        push(std::move(ev));
    }
    for (const Request &req : trace.requests) {
        Event ev;
        ev.t = req.arrival_ms;
        ev.type = EventType::Arrival;
        ev.job = QueuedJob{req, 0};
        push(std::move(ev));
    }

    double horizon = 0.0;
    std::vector<double> latencies;
    double retention_sum = 0.0;

    auto aliveCount = [&] {
        size_t count = 0;
        for (const DevState &d : dev)
            count += d.alive ? 1 : 0;
        return count;
    };

    // Dispatch as many queued jobs as there are eligible idle devices.
    auto dispatchLoop = [&](double now) {
        for (;;) {
            std::optional<QueuedJob> head = disp.peek();
            if (!head)
                return;
            if (disp.expired(*head, now)) {
                const QueuedJob job = disp.pop();
                RequestOutcome &out = rep.outcomes[job.req.id];
                out.status = RequestStatus::ShedExpired;
                out.finish_ms = now;
                out.attempts = job.attempts;
                ++rep.shed_expired;
                continue;
            }
            const size_t level =
                disp.degradeLevel(disp.queueDepth(), aliveCount());
            // Earliest-completion-time among eligible devices; the
            // straggler multiplier is part of the choice, so dispatch
            // routes around slowed devices when a faster one is free.
            size_t target = n;
            double best = std::numeric_limits<double>::infinity();
            for (size_t a = 0; a < n; ++a) {
                if (!dev[a].alive || dev[a].busy ||
                    disp.breakerOpen(a, now))
                    continue;
                const double ms =
                    serviceMs(a, level, head->req.seq_len) *
                    dev[a].slow;
                if (ms < best) {
                    best = ms;
                    target = a;
                }
            }
            if (target == n)
                return; // nobody eligible; a later event re-triggers
            QueuedJob job = disp.pop();
            ++job.attempts;
            const Slot &slot = slots_[target];
            const size_t lvl =
                std::min(level, slot.variants.size() - 1);
            const Cost cost =
                groupCost(slot.group, lvl, job.req.seq_len);
            const double service =
                cost.ms / slot.speed * dev[target].slow;
            Event done;
            done.type = EventType::Completion;
            done.device = target;
            done.epoch = dev[target].epoch;
            done.level = lvl;
            done.dispatch_t = now;
            if (policy_.timeout_ms > 0.0 &&
                service > policy_.timeout_ms) {
                // The attempt is cut off at the timeout; only the work
                // actually performed burns energy.
                done.fate = AttemptFate::Timeout;
                done.t = now + policy_.timeout_ms;
                done.energy_j =
                    cost.energy_j * policy_.timeout_ms / service;
            } else {
                done.fate = injector.drawTransient(fault_rng)
                                ? AttemptFate::Transient
                                : AttemptFate::Success;
                done.t = now + service;
                done.energy_j = cost.energy_j;
            }
            done.job = job;
            DevState &d = dev[target];
            d.busy = true;
            d.current = job;
            d.current_start = now;
            d.current_end = done.t;
            d.current_energy = done.energy_j;
            push(std::move(done));
        }
    };

    while (!heap.empty()) {
        const Event ev = heap.top();
        heap.pop();
        const double now = ev.t;
        horizon = std::max(horizon, now);
        switch (ev.type) {
          case EventType::Arrival: {
            if (!disp.admit(ev.job, /*forced=*/false)) {
                RequestOutcome &out = rep.outcomes[ev.job.req.id];
                out.status = RequestStatus::ShedQueueFull;
                out.finish_ms = now;
                ++rep.shed_queue_full;
            }
            dispatchLoop(now);
            break;
          }
          case EventType::Retry: {
            disp.admit(ev.job, /*forced=*/true);
            dispatchLoop(now);
            break;
          }
          case EventType::Probe: {
            dispatchLoop(now);
            break;
          }
          case EventType::Fault: {
            DevState &d = dev[ev.fault.device];
            switch (ev.fault.kind) {
              case FaultKind::Kill:
                if (!d.alive)
                    break;
                d.alive = false;
                d.down_since = now;
                ++d.epoch; // invalidates the in-flight completion
                if (d.busy) {
                    // Fail-over: rescue the in-flight request onto the
                    // survivors. The partial work is still paid for.
                    DeviceServeStats &stats =
                        rep.devices[ev.fault.device];
                    stats.busy_ms += now - d.current_start;
                    const double span =
                        d.current_end - d.current_start;
                    if (span > 0.0)
                        rep.total_energy_j +=
                            d.current_energy *
                            (now - d.current_start) / span;
                    d.busy = false;
                    ++rep.failovers;
                    disp.admit(d.current, /*forced=*/true);
                }
                break;
              case FaultKind::Revive:
                if (d.alive)
                    break;
                d.alive = true;
                rep.devices[ev.fault.device].down_intervals.push_back(
                    {d.down_since, now});
                d.down_since = -1.0;
                break;
              case FaultKind::SlowStart:
                d.slow = ev.fault.factor;
                break;
              case FaultKind::SlowEnd:
                d.slow = 1.0;
                break;
              case FaultKind::Corrupt:
                // KV-page corruption only has meaning for the
                // generation engine; request-grain serving carries no
                // resident state to poison.
                break;
            }
            dispatchLoop(now);
            break;
          }
          case EventType::Completion: {
            DevState &d = dev[ev.device];
            if (ev.epoch != d.epoch)
                break; // stale: the device died mid-service
            DeviceServeStats &stats = rep.devices[ev.device];
            d.busy = false;
            stats.busy_ms += now - ev.dispatch_t;
            rep.total_energy_j += ev.energy_j;
            RequestOutcome &out = rep.outcomes[ev.job.req.id];
            if (ev.fate == AttemptFate::Success) {
                disp.onSuccess(ev.device);
                ++stats.completed;
                ++rep.completed;
                const double latency = now - ev.job.req.arrival_ms;
                latencies.push_back(latency);
                out.status = RequestStatus::Completed;
                out.device = static_cast<int>(ev.device);
                out.dispatch_ms = ev.dispatch_t;
                out.finish_ms = now;
                out.attempts = ev.job.attempts;
                out.level = ev.level;
                out.retention = slots_[ev.device].retention[ev.level];
                out.deadline_missed = now > ev.job.req.deadline_ms;
                if (out.deadline_missed)
                    ++rep.deadline_misses;
                ++rep.completed_by_level[ev.level];
                retention_sum += out.retention;
            } else {
                ++stats.failed_attempts;
                if (ev.fate == AttemptFate::Transient)
                    ++rep.transient_errors;
                else
                    ++rep.timeouts;
                if (disp.onFailure(ev.device, now)) {
                    ++rep.breaker_trips;
                    Event probe;
                    probe.t = disp.breakerOpenUntil(ev.device);
                    probe.type = EventType::Probe;
                    push(std::move(probe));
                }
                if (ev.job.attempts <= policy_.max_retries) {
                    ++rep.retries;
                    Event retry;
                    retry.t = now + disp.backoffMs(ev.job.attempts);
                    retry.type = EventType::Retry;
                    retry.job = ev.job;
                    push(std::move(retry));
                } else {
                    out.status = RequestStatus::Failed;
                    out.device = static_cast<int>(ev.device);
                    out.finish_ms = now;
                    out.attempts = ev.job.attempts;
                    ++rep.failed;
                }
            }
            dispatchLoop(now);
            break;
          }
        }
    }

    // Requests still queued when the event heap drained can never be
    // served (all remaining capacity is gone): account them as shed so
    // every admitted request has a terminal state.
    while (disp.queueDepth() > 0) {
        const QueuedJob job = disp.pop();
        RequestOutcome &out = rep.outcomes[job.req.id];
        out.status = RequestStatus::ShedStarved;
        out.finish_ms = horizon;
        out.attempts = job.attempts;
        ++rep.shed_starved;
    }
    for (size_t a = 0; a < n; ++a) {
        if (dev[a].down_since >= 0.0)
            rep.devices[a].down_intervals.push_back(
                {dev[a].down_since, std::max(horizon,
                                             dev[a].down_since)});
        rep.devices[a].breaker_trips = disp.breakerTrips(a);
    }

    std::sort(latencies.begin(), latencies.end());
    rep.p50_ms = percentileSorted(latencies, 0.50);
    rep.p95_ms = percentileSorted(latencies, 0.95);
    rep.p99_ms = percentileSorted(latencies, 0.99);
    if (!latencies.empty()) {
        double sum = 0.0;
        for (double l : latencies)
            sum += l;
        rep.mean_latency_ms =
            sum / static_cast<double>(latencies.size());
        rep.max_latency_ms = latencies.back();
    }
    rep.deadline_miss_rate =
        rep.completed > 0 ? static_cast<double>(rep.deadline_misses) /
                                static_cast<double>(rep.completed)
                          : 0.0;
    rep.horizon_ms = horizon;
    rep.goodput_seq_s =
        horizon > 0.0
            ? static_cast<double>(rep.completed - rep.deadline_misses) /
                  (horizon * 1e-3)
            : 0.0;
    rep.mean_retention =
        rep.completed > 0
            ? retention_sum / static_cast<double>(rep.completed)
            : 0.0;
    return rep;
}

} // namespace dota
