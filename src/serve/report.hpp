/**
 * @file
 * Outcome report of one online serving run.
 *
 * The ServeReport is the serving analogue of FleetReport: tail-latency
 * percentiles, deadline-miss rate, goodput, shed/retry/failover
 * counters, per-device health timelines (down intervals, breaker
 * trips), the degraded-mode fractions of the graceful-degradation
 * ladder, and a per-request outcome log that the chaos tests use to
 * check conservation ("no request lost") and isolation ("no request
 * served by a dead device"). Identical seeds produce a bit-identical
 * report at every DOTA_THREADS (see DESIGN.md §9).
 */
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dota {

/** Terminal state of one request. */
enum class RequestStatus
{
    Completed,    ///< served (possibly after retries/failover)
    ShedQueueFull,///< rejected at admission: queue over its bound
    ShedExpired,  ///< dropped at dispatch: waited past max queue age
    ShedStarved,  ///< never served: capacity gone for the rest of run
    ShedInfeasible,///< rejected at admission: prompt exceeds KV arena
    Failed,       ///< all retry attempts exhausted
};

/** Display name, e.g. "completed". */
std::string requestStatusName(RequestStatus status);

/** Terminal record of one request. */
struct RequestOutcome
{
    size_t id = 0;
    double arrival_ms = 0.0;
    size_t seq_len = 0;
    RequestStatus status = RequestStatus::Completed;
    /** Serving device of the final attempt; -1 when never dispatched. */
    int device = -1;
    double dispatch_ms = 0.0; ///< final attempt start (completed only)
    double finish_ms = 0.0;   ///< terminal time
    size_t attempts = 0;      ///< dispatch attempts consumed
    size_t level = 0;         ///< degradation ladder level served at
    double retention = 0.0;   ///< accuracy proxy actually served
    bool deadline_missed = false;

    // Generation-engine fields (zero for whole-request serving runs).
    size_t generated = 0;     ///< output tokens actually emitted
    double ttft_ms = 0.0;     ///< arrival -> first output token
    double tpot_ms = 0.0;     ///< mean time per subsequent output token
};

/** Health timeline of one device over the run. */
struct DeviceServeStats
{
    std::string name;
    double busy_ms = 0.0;
    size_t completed = 0;         ///< successful attempts
    size_t failed_attempts = 0;   ///< transient + timeout attempts
    size_t breaker_trips = 0;
    /** Fail-stop downtime intervals [down, up); up = horizon when the
     * device never revived. */
    std::vector<std::pair<double, double>> down_intervals;
};

/**
 * Token-level telemetry of a GenerationEngine run: time-to-first-token
 * and time-per-output-token tails, paged KV-cache occupancy, and the
 * activity of the DOTA eviction / preemption machinery. All zero (with
 * enabled == false) for whole-request ServingSimulator runs.
 */
struct GenMetrics
{
    bool enabled = false;

    // Phase activity.
    size_t steps = 0;          ///< engine steps executed (all devices)
    size_t prefill_steps = 0;  ///< steps containing >= 1 prefill
    size_t decode_steps = 0;   ///< steps containing >= 1 decode token
    size_t prefill_tokens = 0; ///< prompt tokens processed (incl. re-prefills)
    size_t decode_tokens = 0;  ///< decode tokens processed
    size_t output_tokens = 0;  ///< tokens emitted by completed requests

    // Token-level latency tails over completed requests.
    double ttft_p50_ms = 0.0;
    double ttft_p95_ms = 0.0;
    double ttft_p99_ms = 0.0;
    double tpot_p50_ms = 0.0;
    double tpot_p95_ms = 0.0;
    double tpot_p99_ms = 0.0;

    // Paged KV cache (fleet-wide; pages_total sums every device arena).
    size_t kv_page_tokens = 0;
    size_t kv_pages_total = 0;
    size_t kv_budget_bytes = 0;   ///< sum of per-device budgets
    size_t kv_peak_pages = 0;     ///< peak concurrent pages in use
    size_t kv_peak_bytes = 0;     ///< peak concurrent KV bytes in use
    double kv_peak_occupancy = 0.0; ///< kv_peak_pages / kv_pages_total

    // DOTA-guided eviction + admission-control activity.
    size_t evictions = 0;      ///< post-prefill eviction passes
    size_t evicted_tokens = 0; ///< KV entries dropped by eviction
    size_t preemptions = 0;    ///< sequences evicted whole under OOM
    size_t kv_ooms = 0;        ///< requests failed: KV demand infeasible

    // Fairness telemetry: longest queue wait in engine steps.
    size_t max_queue_wait_steps = 0;

    // Chaos telemetry (zero on fault-free runs; DESIGN.md §14).
    size_t prefill_failovers = 0; ///< victims killed mid-prefill
    size_t decode_failovers = 0;  ///< victims killed mid-decode
    size_t wasted_prefill_tokens = 0; ///< prefill work lost to faults
    size_t wasted_decode_tokens = 0;  ///< decode tokens lost to faults
    size_t transient_steps = 0;   ///< engine steps voided by transients
    size_t corrupted_pages_detected = 0; ///< seal checks that tripped
    size_t corruption_reprefills = 0; ///< requests re-prefilled after
                                      ///< KV quarantine
    size_t quarantined_pages = 0; ///< frames out of rotation at end
    size_t watchdog_migrations = 0; ///< stalled residents force-moved

    // Recovery latency: chaos eviction -> re-admission into prefill,
    // over every recovered victim (failover or corruption).
    size_t recoveries = 0;
    double recovery_p50_ms = 0.0;
    double recovery_p95_ms = 0.0;
    double recovery_max_ms = 0.0;

    // Live KV migration + graceful drain (zero with migration off or
    // on fault-free runs; DESIGN.md §15).
    size_t drains = 0;            ///< drain events honored
    size_t migrations = 0;        ///< sequences live-migrated intact
    size_t migrated_pages = 0;    ///< sealed pages copied and admitted
    size_t migrated_bytes = 0;    ///< KV bytes those pages carry
    size_t migration_no_target = 0; ///< arrivals with no eligible device
                                    ///< (fell back to re-prefill)
    size_t migration_poisoned = 0;  ///< arrivals refused by a seal
                                    ///< mismatch (re-prefill instead)
    size_t saved_prefill_tokens = 0; ///< prefill work migration kept
    size_t saved_decode_tokens = 0;  ///< decode work migration kept
    // Departure -> verified admission on the target, per migrated seq.
    double migration_p50_ms = 0.0;
    double migration_p95_ms = 0.0;
    double migration_max_ms = 0.0;

    // Probation of revived devices: reduced concurrency until N clean
    // steps, demoted (counter reset) by any transient failure.
    size_t probation_promotions = 0; ///< devices promoted to full duty
    size_t probation_demotions = 0;  ///< clean-step counters reset
};

/** Outcome of one serving run. */
struct ServeReport
{
    // Conservation: requests == completed + shed() + failed.
    size_t requests = 0;   ///< trace size
    size_t completed = 0;
    size_t failed = 0;     ///< exhausted retries
    size_t shed_queue_full = 0;
    size_t shed_expired = 0;
    size_t shed_starved = 0;
    size_t shed_infeasible = 0; ///< prompt can never fit the KV arena
    size_t shed() const;

    // Robustness activity.
    size_t retries = 0;          ///< re-dispatches after failed attempts
    size_t failovers = 0;        ///< in-flight jobs rescued from deaths
    size_t transient_errors = 0; ///< attempts failed by injected errors
    size_t timeouts = 0;         ///< attempts failed by the timeout
    size_t breaker_trips = 0;

    // Latency of completed requests (arrival -> completion).
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double mean_latency_ms = 0.0;
    double max_latency_ms = 0.0;

    // Service quality.
    size_t deadline_misses = 0;   ///< completed but past the deadline
    double deadline_miss_rate = 0.0; ///< misses / completed
    /** In-deadline completions per second of run horizon. */
    double goodput_seq_s = 0.0;
    double horizon_ms = 0.0;      ///< virtual time of the last event
    double total_energy_j = 0.0;  ///< energy of all attempts (prorated)

    // Graceful degradation: completions per ladder level (index 0 =
    // full-fidelity native mode) and the mean retention actually served.
    std::vector<size_t> completed_by_level;
    double mean_retention = 0.0;

    /** Token-level generation telemetry (GenerationEngine runs only). */
    GenMetrics gen;

    std::vector<DeviceServeStats> devices;
    std::vector<RequestOutcome> outcomes; ///< one per request, by id

    /** Render the headline table + per-device health table. */
    void print(std::ostream &os) const;
};

/**
 * Exact empirical percentile of @p sorted (ascending) at fraction
 * @p q in [0, 1]: the ceil(q*n)-th order statistic. 0 when empty.
 */
double percentileSorted(const std::vector<double> &sorted, double q);

} // namespace dota
