/**
 * @file
 * RobustDispatcher policy implementation.
 */
#include "serve/dispatcher.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dota {

RobustDispatcher::RobustDispatcher(ServePolicy policy, size_t n_devices)
    : policy_(policy), health_(n_devices)
{
    DOTA_ASSERT(n_devices >= 1, "dispatcher needs at least one device");
}

bool
RobustDispatcher::admit(const QueuedJob &job, bool forced)
{
    if (!forced && policy_.queue_limit > 0 &&
        queue_.size() >= policy_.queue_limit)
        return false;
    queue_.emplace(std::make_pair(job.req.arrival_ms, job.req.id), job);
    return true;
}

std::optional<QueuedJob>
RobustDispatcher::peek() const
{
    if (queue_.empty())
        return std::nullopt;
    return queue_.begin()->second;
}

QueuedJob
RobustDispatcher::pop()
{
    DOTA_ASSERT(!queue_.empty(), "pop from empty admission queue");
    QueuedJob job = queue_.begin()->second;
    queue_.erase(queue_.begin());
    return job;
}

bool
RobustDispatcher::expired(const QueuedJob &job, double now) const
{
    return policy_.max_queue_age_ms > 0.0 &&
           now - job.req.arrival_ms > policy_.max_queue_age_ms;
}

bool
RobustDispatcher::breakerOpen(size_t device, double now) const
{
    return now < health_[device].open_until;
}

double
RobustDispatcher::breakerOpenUntil(size_t device) const
{
    return health_[device].open_until;
}

void
RobustDispatcher::onSuccess(size_t device)
{
    health_[device].consecutive_failures = 0;
}

bool
RobustDispatcher::onFailure(size_t device, double now)
{
    Health &h = health_[device];
    ++h.consecutive_failures;
    if (policy_.breaker_threshold > 0 &&
        h.consecutive_failures >= policy_.breaker_threshold) {
        // Trip: cool the device down, then give it a fresh chance
        // (half-open) by resetting the failure streak.
        h.open_until = now + policy_.breaker_cooldown_ms;
        h.consecutive_failures = 0;
        ++h.trips;
        return true;
    }
    return false;
}

size_t
RobustDispatcher::breakerTrips(size_t device) const
{
    return health_[device].trips;
}

double
RobustDispatcher::backoffMs(size_t attempt) const
{
    DOTA_ASSERT(attempt >= 1, "backoff is for retry attempts");
    double delay = policy_.backoff_ms;
    for (size_t i = 1; i < attempt && delay < policy_.backoff_cap_ms;
         ++i)
        delay *= 2.0;
    return std::min(delay, policy_.backoff_cap_ms);
}

size_t
RobustDispatcher::degradeLevel(size_t queued, size_t alive) const
{
    if (!policy_.degradation)
        return 0;
    const double load = static_cast<double>(queued) /
                        static_cast<double>(std::max<size_t>(1, alive));
    if (load >= policy_.degrade_depth_2)
        return 2;
    if (load >= policy_.degrade_depth_1)
        return 1;
    return 0;
}

} // namespace dota
