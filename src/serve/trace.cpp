/**
 * @file
 * Arrival-trace generators for the serving simulator.
 */
#include "serve/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace dota {

std::string
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Burst:
        return "burst";
      case ArrivalProcess::Diurnal:
        return "diurnal";
    }
    DOTA_PANIC("unknown arrival process");
}

double
RequestTrace::horizonMs() const
{
    return requests.empty() ? 0.0 : requests.back().arrival_ms;
}

std::vector<size_t>
RequestTrace::distinctLengths() const
{
    std::vector<size_t> lens;
    lens.reserve(requests.size());
    for (const Request &r : requests)
        lens.push_back(r.seq_len);
    std::sort(lens.begin(), lens.end());
    lens.erase(std::unique(lens.begin(), lens.end()), lens.end());
    return lens;
}

namespace {

/**
 * Instantaneous arrival rate of @p cfg at virtual time @p t_s seconds.
 * Poisson is flat; Burst is a square wave; Diurnal a (clamped) sine.
 */
double
rateAt(const TraceConfig &cfg, double t_s)
{
    switch (cfg.process) {
      case ArrivalProcess::Poisson:
        return cfg.rate_per_s;
      case ArrivalProcess::Burst: {
        const double phase = std::fmod(t_s, cfg.burst_every_s);
        return phase < cfg.burst_len_s
                   ? cfg.rate_per_s * cfg.burst_multiplier
                   : cfg.rate_per_s;
      }
      case ArrivalProcess::Diurnal: {
        const double s =
            std::sin(2.0 * M_PI * t_s / cfg.diurnal_period_s);
        // Keep at least 5% of the base rate so interarrivals stay finite.
        return cfg.rate_per_s *
               std::max(0.05, 1.0 + cfg.diurnal_amplitude * s);
      }
    }
    DOTA_PANIC("unknown arrival process");
}

/** Heavy-tailed request length (serving_fleet's request-mix shape). */
size_t
drawLength(const TraceConfig &cfg, Rng &rng)
{
    const double u = rng.uniform();
    const double lo = static_cast<double>(cfg.len_min);
    const double hi = static_cast<double>(cfg.len_max);
    const double len =
        lo * std::pow(hi / lo, std::pow(u, cfg.len_shape));
    const size_t round = std::max<size_t>(1, cfg.len_round);
    const size_t q =
        ((static_cast<size_t>(len) + round - 1) / round) * round;
    return std::clamp(q, cfg.len_min, cfg.len_max);
}

} // namespace

RequestTrace
generateTrace(const TraceConfig &cfg)
{
    DOTA_ASSERT(cfg.rate_per_s > 0.0, "arrival rate must be positive");
    DOTA_ASSERT(cfg.len_min >= 1 && cfg.len_min <= cfg.len_max,
                "request length bounds must satisfy 1 <= min <= max");
    RequestTrace trace;
    trace.config = cfg;
    trace.requests.reserve(cfg.requests);
    Rng rng(cfg.seed);
    double t_s = 0.0;
    for (size_t i = 0; i < cfg.requests; ++i) {
        // Exponential interarrival at the instantaneous rate. For the
        // non-homogeneous processes this is a piecewise approximation
        // (the rate is sampled at the previous arrival), which keeps
        // generation one-pass and exactly seed-deterministic.
        double u;
        do {
            u = rng.uniform();
        } while (u >= 1.0 - 1e-12); // -log(1-u) must stay finite
        t_s += -std::log(1.0 - u) / rateAt(cfg, t_s);
        Request req;
        req.id = i;
        req.arrival_ms = t_s * 1e3;
        req.seq_len = drawLength(cfg, rng);
        req.deadline_ms =
            cfg.deadline_ms > 0.0
                ? req.arrival_ms + cfg.deadline_ms
                : std::numeric_limits<double>::infinity();
        trace.requests.push_back(req);
    }
    return trace;
}

} // namespace dota
