/**
 * @file
 * Arrival-trace generators for the serving simulator.
 */
#include "serve/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace dota {

std::string
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Burst:
        return "burst";
      case ArrivalProcess::Diurnal:
        return "diurnal";
    }
    DOTA_PANIC("unknown arrival process");
}

double
RequestTrace::horizonMs() const
{
    return requests.empty() ? 0.0 : requests.back().arrival_ms;
}

std::vector<size_t>
RequestTrace::distinctLengths() const
{
    std::vector<size_t> lens;
    lens.reserve(requests.size());
    for (const Request &r : requests)
        lens.push_back(r.seq_len);
    std::sort(lens.begin(), lens.end());
    lens.erase(std::unique(lens.begin(), lens.end()), lens.end());
    return lens;
}

namespace {

/**
 * Instantaneous arrival rate of @p cfg at virtual time @p t_s seconds.
 * Poisson is flat; Burst is a square wave; Diurnal a (clamped) sine.
 */
double
rateAt(const TraceConfig &cfg, double t_s)
{
    switch (cfg.process) {
      case ArrivalProcess::Poisson:
        return cfg.rate_per_s;
      case ArrivalProcess::Burst: {
        const double phase = std::fmod(t_s, cfg.burst_every_s);
        return phase < cfg.burst_len_s
                   ? cfg.rate_per_s * cfg.burst_multiplier
                   : cfg.rate_per_s;
      }
      case ArrivalProcess::Diurnal: {
        const double s =
            std::sin(2.0 * M_PI * t_s / cfg.diurnal_period_s);
        // Keep at least 5% of the base rate so interarrivals stay finite.
        return cfg.rate_per_s *
               std::max(0.05, 1.0 + cfg.diurnal_amplitude * s);
      }
    }
    DOTA_PANIC("unknown arrival process");
}

/** Heavy-tailed length in [lo_t, hi_t], rounded up to round_t tokens. */
size_t
drawTailLength(Rng &rng, size_t lo_t, size_t hi_t, size_t round_t,
               double shape)
{
    const double u = rng.uniform();
    const double lo = static_cast<double>(lo_t);
    const double hi = static_cast<double>(hi_t);
    const double len = lo * std::pow(hi / lo, std::pow(u, shape));
    const size_t round = std::max<size_t>(1, round_t);
    const size_t q =
        ((static_cast<size_t>(len) + round - 1) / round) * round;
    return std::clamp(q, lo_t, hi_t);
}

/** Heavy-tailed request length (serving_fleet's request-mix shape). */
size_t
drawLength(const TraceConfig &cfg, Rng &rng)
{
    return drawTailLength(rng, cfg.len_min, cfg.len_max, cfg.len_round,
                          cfg.len_shape);
}

} // namespace

RequestTrace
generateTrace(const TraceConfig &cfg)
{
    DOTA_ASSERT(cfg.rate_per_s > 0.0, "arrival rate must be positive");
    DOTA_ASSERT(cfg.len_min >= 1 && cfg.len_min <= cfg.len_max,
                "request length bounds must satisfy 1 <= min <= max");
    RequestTrace trace;
    trace.config = cfg;
    trace.requests.reserve(cfg.requests);
    Rng rng(cfg.seed);
    double t_s = 0.0;
    for (size_t i = 0; i < cfg.requests; ++i) {
        // Exponential interarrival at the instantaneous rate. For the
        // non-homogeneous processes this is a piecewise approximation
        // (the rate is sampled at the previous arrival), which keeps
        // generation one-pass and exactly seed-deterministic.
        double u;
        do {
            u = rng.uniform();
        } while (u >= 1.0 - 1e-12); // -log(1-u) must stay finite
        t_s += -std::log(1.0 - u) / rateAt(cfg, t_s);
        Request req;
        req.id = i;
        req.arrival_ms = t_s * 1e3;
        req.seq_len = drawLength(cfg, rng);
        req.deadline_ms =
            cfg.deadline_ms > 0.0
                ? req.arrival_ms + cfg.deadline_ms
                : std::numeric_limits<double>::infinity();
        trace.requests.push_back(req);
    }
    return trace;
}

double
GenTrace::horizonMs() const
{
    return requests.empty() ? 0.0 : requests.back().arrival_ms;
}

std::vector<size_t>
GenTrace::distinctPromptLengths() const
{
    std::vector<size_t> lens;
    lens.reserve(requests.size());
    for (const GenRequest &r : requests)
        lens.push_back(r.prompt_len);
    std::sort(lens.begin(), lens.end());
    lens.erase(std::unique(lens.begin(), lens.end()), lens.end());
    return lens;
}

size_t
GenTrace::totalOutputTokens() const
{
    size_t total = 0;
    for (const GenRequest &r : requests)
        total += r.output_len;
    return total;
}

GenTrace
generateGenTrace(const GenTraceConfig &cfg)
{
    DOTA_ASSERT(cfg.out_min >= 1 && cfg.out_min <= cfg.out_max,
                "output length bounds must satisfy 1 <= min <= max");
    const RequestTrace base = generateTrace(cfg.arrivals);
    GenTrace trace;
    trace.config = cfg;
    trace.requests.reserve(base.requests.size());
    // Output lengths come from a stream forked off the arrival seed, so
    // changing the output distribution never perturbs the arrivals.
    Rng out_rng(Rng(cfg.arrivals.seed ^ 0xd07a6e57a7e5ULL).next());
    for (const Request &req : base.requests) {
        GenRequest gen;
        gen.id = req.id;
        gen.arrival_ms = req.arrival_ms;
        gen.prompt_len = req.seq_len;
        gen.output_len = drawTailLength(out_rng, cfg.out_min,
                                        cfg.out_max, cfg.out_round,
                                        cfg.out_shape);
        gen.deadline_ms = req.deadline_ms;
        trace.requests.push_back(gen);
    }
    return trace;
}

} // namespace dota
