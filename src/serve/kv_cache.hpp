/**
 * @file
 * Paged KV-cache allocator for the autoregressive serving engine.
 *
 * Generation workloads hold per-sequence key/value state that grows by
 * one token per decode step and disappears when the sequence finishes —
 * the classic fragmentation problem paged attention solves: KV memory
 * is carved into fixed-size pages of `page_tokens` token slots, each
 * sequence owns a page table (logical token index -> page), and pages
 * return to a free list the moment a sequence finishes, is preempted,
 * or has its weak entries evicted by the DOTA policy.
 *
 * Determinism contract (DESIGN.md §12): the free list is ordered — an
 * allocation always takes the lowest-numbered free page — and every
 * operation is all-or-nothing, so two runs that issue the same
 * alloc/free/evict sequence see bit-identical page tables, occupancy
 * counters and OOM points. Admission control is a pure arithmetic
 * check (`canFit`), never a side effect.
 *
 * Integrity (DESIGN.md §14): every page carries a representative
 * payload word that is stamped on write and sealed with a CRC32. A
 * chaos run may corrupt resident pages in place (corruptPage); readers
 * verify seals before trusting a sequence (verifySeq) and quarantine
 * poisoned frames (quarantineSeq) — quarantined pages leave capacity
 * until the arena is rebuilt, modeling a suspect DRAM frame taken out
 * of rotation.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dota {

/** How a fault corrupts one resident KV page. */
enum class KvCorruption
{
    BitFlip,   ///< one bit of the payload flips (CRC catches all)
    ZeroPage,  ///< the payload is wiped to zeros, seal left stale
    TornWrite, ///< a new payload lands without updating the seal
};

/** Display name, e.g. "bit-flip". */
std::string kvCorruptionName(KvCorruption mode);

/**
 * One page's frame image in transit: payload and seal copied verbatim
 * (a stale seal travels too — verify-on-arrival is what catches it).
 */
struct KvPageImage
{
    uint64_t payload = 0;
    uint32_t seal = 0;
};

/**
 * Sealed snapshot of one sequence's KV state, the unit of live
 * migration (DESIGN.md §15): page images in logical order plus the
 * token count they back. Produced by exportSeq on the source arena,
 * admitted all-or-nothing by importSeq on the target.
 */
struct KvSeqExport
{
    uint64_t seq_id = 0;
    size_t tokens = 0;
    std::vector<KvPageImage> pages;
};

/** Sizing of one paged KV arena (one per serving device). */
struct KvCacheConfig
{
    /** Token slots per page (the paging granularity). */
    size_t page_tokens = 16;

    /**
     * Bytes of K+V state one token occupies across all layers
     * (2 * layers * dim * sizeof(float) for an fp32 model).
     */
    size_t bytes_per_token = 4096;

    /** Total KV byte budget of the arena. */
    size_t budget_bytes = 64ull << 20;
};

/**
 * Fixed-size-page KV allocator with per-sequence page tables.
 *
 * Logical model: a sequence holds `tokens` KV entries laid out densely
 * across its page table; entry i lives in (table[i / page_tokens],
 * i % page_tokens). Eviction compacts a sequence to its strongest
 * prefix length (the caller reindexes which tokens survive), so
 * `shrinkTo` simply truncates and frees whole trailing pages.
 */
class PagedKvAllocator
{
  public:
    explicit PagedKvAllocator(KvCacheConfig cfg);

    // Geometry ----------------------------------------------------------
    size_t pageTokens() const { return cfg_.page_tokens; }
    size_t pageBytes() const
    {
        return cfg_.page_tokens * cfg_.bytes_per_token;
    }
    size_t totalPages() const { return total_pages_; }
    size_t freePages() const { return free_.size(); }
    size_t usedPages() const
    {
        return total_pages_ - free_.size() - quarantined_.size();
    }
    size_t usedBytes() const { return usedPages() * pageBytes(); }
    size_t budgetBytes() const { return cfg_.budget_bytes; }

    /** Pages still trustworthy: total minus quarantined frames. */
    size_t effectivePages() const
    {
        return total_pages_ - quarantined_.size();
    }
    size_t quarantinedPages() const { return quarantined_.size(); }

    /** Pages needed to hold @p tokens KV entries. */
    size_t pagesFor(size_t tokens) const
    {
        return (tokens + cfg_.page_tokens - 1) / cfg_.page_tokens;
    }

    /** Whether @p tokens KV entries could be appended right now. */
    bool canFit(size_t tokens) const;

    /**
     * Whether @p tokens entries could ever fit in an empty arena
     * (quarantined frames excluded — they no longer hold anything).
     */
    bool feasible(size_t tokens) const
    {
        return pagesFor(tokens) <= effectivePages();
    }

    // Sequence lifecycle ------------------------------------------------
    /** Register an empty sequence. False when the id already exists. */
    bool createSeq(uint64_t seq_id);

    /**
     * Grow @p seq_id by @p tokens KV entries, allocating pages as
     * needed. All-or-nothing: returns false (and changes nothing) when
     * the free list cannot cover the growth.
     */
    bool appendTokens(uint64_t seq_id, size_t tokens);

    /**
     * Evict/compact: truncate @p seq_id to its strongest @p tokens
     * entries (caller guarantees the survivors were reindexed to the
     * prefix). Frees whole trailing pages; returns pages freed.
     * No-op when @p tokens >= the current length.
     */
    size_t shrinkTo(uint64_t seq_id, size_t tokens);

    /** Release every page of @p seq_id and forget it. */
    void freeSeq(uint64_t seq_id);

    bool contains(uint64_t seq_id) const
    {
        return seqs_.count(seq_id) != 0;
    }
    size_t seqTokens(uint64_t seq_id) const;
    const std::vector<uint32_t> &pageTable(uint64_t seq_id) const;

    /** Physical (page, slot) of logical token @p index of @p seq_id. */
    std::pair<uint32_t, uint32_t> lookup(uint64_t seq_id,
                                         size_t index) const;

    // Integrity ---------------------------------------------------------
    /** Every in-use page, ascending — victim pool for fault injection. */
    std::vector<uint32_t> usedPageList() const;

    /** Corrupt one in-use page in place. The seal is NOT updated. */
    void corruptPage(uint32_t page, KvCorruption mode);

    /** Whether @p page's payload still matches its CRC32 seal. */
    bool verifyPage(uint32_t page) const;

    /** Seal-check every page of @p seq_id; returns #corrupt pages. */
    size_t verifySeq(uint64_t seq_id) const;

    /**
     * Tear down @p seq_id after a failed verify: healthy pages return
     * to the free list, poisoned pages move to quarantine (capacity
     * shrinks). Returns the number of pages quarantined.
     */
    size_t quarantineSeq(uint64_t seq_id);

    // Live migration (DESIGN.md §15) -----------------------------------
    /**
     * Snapshot @p seq_id's page frames verbatim (seals included, even
     * stale ones) for transfer to another arena. Pure read: the source
     * sequence stays resident; the caller tears it down separately
     * (freeSeq, or quarantineSeq when a frame might be poisoned).
     */
    KvSeqExport exportSeq(uint64_t seq_id) const;

    /**
     * Verify-on-arrival: number of page images in @p exp whose payload
     * no longer matches its seal. Pure function of the export.
     */
    static size_t verifyExport(const KvSeqExport &exp);

    /**
     * All-or-nothing admission of a migrated sequence: allocates
     * exp.pages.size() frames (lowest-first, the usual determinism),
     * installs each image's payload AND seal verbatim, and registers
     * the sequence at exp.tokens entries. Returns false — with the
     * arena untouched — when the id is already resident, the free list
     * cannot cover the pages, or any image fails its seal check.
     */
    bool importSeq(const KvSeqExport &exp);

    // Telemetry ---------------------------------------------------------
    size_t peakUsedPages() const { return peak_used_pages_; }
    size_t peakUsedBytes() const { return peak_used_pages_ * pageBytes(); }

  private:
    struct Seq
    {
        size_t tokens = 0;
        std::vector<uint32_t> pages;
    };

    /** Physical frame state: representative payload + CRC32 seal. */
    struct Page
    {
        uint64_t payload = 0;
        uint32_t seal = 0;
    };

    uint32_t allocPage();
    void releasePage(uint32_t page);
    void notePeak();
    /** Stamp a fresh deterministic payload into @p page and seal it. */
    void stampPage(uint32_t page);

    KvCacheConfig cfg_;
    size_t total_pages_ = 0;
    std::set<uint32_t> free_; ///< ordered: lowest page allocated first
    std::set<uint32_t> quarantined_; ///< suspect frames out of rotation
    std::map<uint64_t, Seq> seqs_;
    std::vector<Page> pages_;
    uint64_t write_epoch_ = 0; ///< ticks per stamp: unique payloads
    size_t peak_used_pages_ = 0;
};

} // namespace dota
