/**
 * @file
 * Paged KV-cache allocator for the autoregressive serving engine.
 *
 * Generation workloads hold per-sequence key/value state that grows by
 * one token per decode step and disappears when the sequence finishes —
 * the classic fragmentation problem paged attention solves: KV memory
 * is carved into fixed-size pages of `page_tokens` token slots, each
 * sequence owns a page table (logical token index -> page), and pages
 * return to a free list the moment a sequence finishes, is preempted,
 * or has its weak entries evicted by the DOTA policy.
 *
 * Determinism contract (DESIGN.md §12): the free list is ordered — an
 * allocation always takes the lowest-numbered free page — and every
 * operation is all-or-nothing, so two runs that issue the same
 * alloc/free/evict sequence see bit-identical page tables, occupancy
 * counters and OOM points. Admission control is a pure arithmetic
 * check (`canFit`), never a side effect.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace dota {

/** Sizing of one paged KV arena (one per serving device). */
struct KvCacheConfig
{
    /** Token slots per page (the paging granularity). */
    size_t page_tokens = 16;

    /**
     * Bytes of K+V state one token occupies across all layers
     * (2 * layers * dim * sizeof(float) for an fp32 model).
     */
    size_t bytes_per_token = 4096;

    /** Total KV byte budget of the arena. */
    size_t budget_bytes = 64ull << 20;
};

/**
 * Fixed-size-page KV allocator with per-sequence page tables.
 *
 * Logical model: a sequence holds `tokens` KV entries laid out densely
 * across its page table; entry i lives in (table[i / page_tokens],
 * i % page_tokens). Eviction compacts a sequence to its strongest
 * prefix length (the caller reindexes which tokens survive), so
 * `shrinkTo` simply truncates and frees whole trailing pages.
 */
class PagedKvAllocator
{
  public:
    explicit PagedKvAllocator(KvCacheConfig cfg);

    // Geometry ----------------------------------------------------------
    size_t pageTokens() const { return cfg_.page_tokens; }
    size_t pageBytes() const
    {
        return cfg_.page_tokens * cfg_.bytes_per_token;
    }
    size_t totalPages() const { return total_pages_; }
    size_t freePages() const { return free_.size(); }
    size_t usedPages() const { return total_pages_ - free_.size(); }
    size_t usedBytes() const { return usedPages() * pageBytes(); }
    size_t budgetBytes() const { return cfg_.budget_bytes; }

    /** Pages needed to hold @p tokens KV entries. */
    size_t pagesFor(size_t tokens) const
    {
        return (tokens + cfg_.page_tokens - 1) / cfg_.page_tokens;
    }

    /** Whether @p tokens KV entries could be appended right now. */
    bool canFit(size_t tokens) const;

    /** Whether @p tokens entries could ever fit in an empty arena. */
    bool feasible(size_t tokens) const
    {
        return pagesFor(tokens) <= total_pages_;
    }

    // Sequence lifecycle ------------------------------------------------
    /** Register an empty sequence. False when the id already exists. */
    bool createSeq(uint64_t seq_id);

    /**
     * Grow @p seq_id by @p tokens KV entries, allocating pages as
     * needed. All-or-nothing: returns false (and changes nothing) when
     * the free list cannot cover the growth.
     */
    bool appendTokens(uint64_t seq_id, size_t tokens);

    /**
     * Evict/compact: truncate @p seq_id to its strongest @p tokens
     * entries (caller guarantees the survivors were reindexed to the
     * prefix). Frees whole trailing pages; returns pages freed.
     * No-op when @p tokens >= the current length.
     */
    size_t shrinkTo(uint64_t seq_id, size_t tokens);

    /** Release every page of @p seq_id and forget it. */
    void freeSeq(uint64_t seq_id);

    bool contains(uint64_t seq_id) const
    {
        return seqs_.count(seq_id) != 0;
    }
    size_t seqTokens(uint64_t seq_id) const;
    const std::vector<uint32_t> &pageTable(uint64_t seq_id) const;

    /** Physical (page, slot) of logical token @p index of @p seq_id. */
    std::pair<uint32_t, uint32_t> lookup(uint64_t seq_id,
                                         size_t index) const;

    // Telemetry ---------------------------------------------------------
    size_t peakUsedPages() const { return peak_used_pages_; }
    size_t peakUsedBytes() const { return peak_used_pages_ * pageBytes(); }

  private:
    struct Seq
    {
        size_t tokens = 0;
        std::vector<uint32_t> pages;
    };

    uint32_t allocPage();
    void releasePage(uint32_t page);
    void notePeak();

    KvCacheConfig cfg_;
    size_t total_pages_ = 0;
    std::set<uint32_t> free_; ///< ordered: lowest page allocated first
    std::map<uint64_t, Seq> seqs_;
    size_t peak_used_pages_ = 0;
};

} // namespace dota
