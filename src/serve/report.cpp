/**
 * @file
 * ServeReport rendering and percentile helper.
 */
#include "serve/report.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/strutil.hpp"
#include "common/table.hpp"

namespace dota {

std::string
requestStatusName(RequestStatus status)
{
    switch (status) {
      case RequestStatus::Completed:
        return "completed";
      case RequestStatus::ShedQueueFull:
        return "shed-queue-full";
      case RequestStatus::ShedExpired:
        return "shed-expired";
      case RequestStatus::ShedStarved:
        return "shed-starved";
      case RequestStatus::ShedInfeasible:
        return "shed-infeasible";
      case RequestStatus::Failed:
        return "failed";
    }
    DOTA_PANIC("unknown request status");
}

size_t
ServeReport::shed() const
{
    return shed_queue_full + shed_expired + shed_starved +
           shed_infeasible;
}

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    DOTA_ASSERT(q >= 0.0 && q <= 1.0, "percentile fraction in [0,1]");
    // Zero-event guard: a run with no recoveries/migrations still asks
    // for its percentiles — the answer is 0, never NaN or an
    // out-of-range index.
    if (sorted.empty())
        return 0.0;
    const double rank = q * static_cast<double>(sorted.size());
    size_t idx = static_cast<size_t>(std::ceil(rank));
    idx = idx > 0 ? idx - 1 : 0;
    return sorted[std::min(idx, sorted.size() - 1)];
}

void
ServeReport::print(std::ostream &os) const
{
    Table t("serving report");
    t.header({"metric", "value"});
    t.addRow({"requests", fmtNum(double(requests), 0)});
    t.addRow({"completed", fmtNum(double(completed), 0)});
    t.addRow({"failed (retries exhausted)", fmtNum(double(failed), 0)});
    t.addRow({"shed (full/expired/starved/infeasible)",
              format("{} ({}/{}/{}/{})", shed(), shed_queue_full,
                     shed_expired, shed_starved, shed_infeasible)});
    t.addRow({"retries", fmtNum(double(retries), 0)});
    t.addRow({"failovers", fmtNum(double(failovers), 0)});
    t.addRow({"transient errors", fmtNum(double(transient_errors), 0)});
    t.addRow({"timeouts", fmtNum(double(timeouts), 0)});
    t.addRow({"breaker trips", fmtNum(double(breaker_trips), 0)});
    t.addRow({"latency p50/p95/p99",
              format("{} / {} / {} ms", fmtNum(p50_ms, 2),
                     fmtNum(p95_ms, 2), fmtNum(p99_ms, 2))});
    t.addRow({"mean / max latency",
              format("{} / {} ms", fmtNum(mean_latency_ms, 2),
                     fmtNum(max_latency_ms, 2))});
    t.addRow({"deadline miss rate", fmtPct(deadline_miss_rate)});
    t.addRow({"goodput", fmtNum(goodput_seq_s, 1) + " seq/s"});
    t.addRow({"horizon", fmtNum(horizon_ms, 1) + " ms"});
    t.addRow({"energy", fmtNum(total_energy_j, 3) + " J"});
    std::vector<std::string> levels;
    for (size_t l = 0; l < completed_by_level.size(); ++l)
        levels.push_back(format("L{}:{}", l, completed_by_level[l]));
    t.addRow({"served by ladder level",
              levels.empty() ? "-" : join(levels, " ")});
    t.addRow({"mean retention served", fmtNum(mean_retention, 3)});
    t.print(os);

    if (gen.enabled) {
        Table g("generation report");
        g.header({"metric", "value"});
        g.addRow({"TTFT p50/p95/p99",
                  format("{} / {} / {} ms", fmtNum(gen.ttft_p50_ms, 2),
                         fmtNum(gen.ttft_p95_ms, 2),
                         fmtNum(gen.ttft_p99_ms, 2))});
        g.addRow({"TPOT p50/p95/p99",
                  format("{} / {} / {} ms", fmtNum(gen.tpot_p50_ms, 3),
                         fmtNum(gen.tpot_p95_ms, 3),
                         fmtNum(gen.tpot_p99_ms, 3))});
        g.addRow({"steps (prefill/decode)",
                  format("{} ({}/{})", gen.steps, gen.prefill_steps,
                         gen.decode_steps)});
        g.addRow({"tokens prefilled / decoded",
                  format("{} / {}", gen.prefill_tokens,
                         gen.decode_tokens)});
        g.addRow({"output tokens", fmtNum(double(gen.output_tokens), 0)});
        g.addRow({"KV peak",
                  format("{} / {} pages ({})", gen.kv_peak_pages,
                         gen.kv_pages_total,
                         fmtBytes(double(gen.kv_peak_bytes)))});
        g.addRow({"KV peak occupancy", fmtPct(gen.kv_peak_occupancy)});
        g.addRow({"KV page size",
                  format("{} tokens", gen.kv_page_tokens)});
        g.addRow({"evictions (tokens dropped)",
                  format("{} ({})", gen.evictions, gen.evicted_tokens)});
        g.addRow({"preemptions / KV OOM failures",
                  format("{} / {}", gen.preemptions, gen.kv_ooms)});
        g.addRow({"max queue wait",
                  format("{} steps", gen.max_queue_wait_steps)});
        const bool chaos = gen.prefill_failovers > 0 ||
                           gen.decode_failovers > 0 ||
                           gen.transient_steps > 0 ||
                           gen.corrupted_pages_detected > 0 ||
                           gen.watchdog_migrations > 0 ||
                           gen.recoveries > 0 || gen.drains > 0 ||
                           gen.migrations > 0 ||
                           gen.migration_no_target > 0 ||
                           gen.migration_poisoned > 0;
        if (chaos) {
            g.addRow({"failovers (prefill/decode)",
                      format("{} / {}", gen.prefill_failovers,
                             gen.decode_failovers)});
            g.addRow({"wasted tokens (prefill/decode)",
                      format("{} / {}", gen.wasted_prefill_tokens,
                             gen.wasted_decode_tokens)});
            g.addRow({"transient-voided steps",
                      fmtNum(double(gen.transient_steps), 0)});
            g.addRow({"corrupted pages detected",
                      fmtNum(double(gen.corrupted_pages_detected), 0)});
            g.addRow({"corruption re-prefills",
                      fmtNum(double(gen.corruption_reprefills), 0)});
            g.addRow({"quarantined pages",
                      fmtNum(double(gen.quarantined_pages), 0)});
            g.addRow({"watchdog migrations",
                      fmtNum(double(gen.watchdog_migrations), 0)});
            g.addRow({"recovery p50/p95/max",
                      format("{} / {} / {} ms ({} recoveries)",
                             fmtNum(gen.recovery_p50_ms, 2),
                             fmtNum(gen.recovery_p95_ms, 2),
                             fmtNum(gen.recovery_max_ms, 2),
                             gen.recoveries)});
            g.addRow({"drains honored",
                      fmtNum(double(gen.drains), 0)});
            g.addRow({"migrations (seqs/pages/bytes)",
                      format("{} / {} / {}", gen.migrations,
                             gen.migrated_pages,
                             fmtBytes(double(gen.migrated_bytes)))});
            g.addRow({"migration fallbacks (no-target/poisoned)",
                      format("{} / {}", gen.migration_no_target,
                             gen.migration_poisoned)});
            g.addRow({"tokens saved by migration (prefill/decode)",
                      format("{} / {}", gen.saved_prefill_tokens,
                             gen.saved_decode_tokens)});
            g.addRow({"migration p50/p95/max",
                      format("{} / {} / {} ms",
                             fmtNum(gen.migration_p50_ms, 2),
                             fmtNum(gen.migration_p95_ms, 2),
                             fmtNum(gen.migration_max_ms, 2))});
            g.addRow({"probation promotions / demotions",
                      format("{} / {}", gen.probation_promotions,
                             gen.probation_demotions)});
        }
        g.print(os);
    }

    Table d("per-device health");
    d.header({"device", "model", "busy", "served", "failed attempts",
              "breaker trips", "downtime"});
    for (size_t a = 0; a < devices.size(); ++a) {
        const DeviceServeStats &dev = devices[a];
        double down = 0.0;
        for (const auto &[lo, hi] : dev.down_intervals)
            down += hi - lo;
        d.addRow({fmtNum(double(a), 0), dev.name,
                  fmtNum(dev.busy_ms, 1) + "ms",
                  fmtNum(double(dev.completed), 0),
                  fmtNum(double(dev.failed_attempts), 0),
                  fmtNum(double(dev.breaker_trips), 0),
                  fmtNum(down, 1) + "ms"});
    }
    d.print(os);
}

} // namespace dota
