/**
 * @file
 * Fault-plan parsing and schedule materialization.
 */
#include "serve/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hpp"
#include "common/strutil.hpp"

namespace dota {

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Kill:
        return "kill";
      case FaultKind::Revive:
        return "revive";
      case FaultKind::SlowStart:
        return "slow-start";
      case FaultKind::SlowEnd:
        return "slow-end";
    }
    DOTA_PANIC("unknown fault kind");
}

namespace {

/** Parse a non-negative double; fatal() with context on junk. */
double
parseNum(const std::string &text, const std::string &token)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0.0)
        DOTA_FATAL("bad number '{}' in fault-plan token '{}'", text,
                   token);
    return v;
}

size_t
parseDev(const std::string &text, const std::string &token)
{
    for (char c : text)
        if (c < '0' || c > '9')
            DOTA_FATAL("bad device index '{}' in fault-plan token '{}'",
                       text, token);
    return static_cast<size_t>(parseNum(text, token));
}

} // namespace

FaultPlan
parseFaultPlan(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &raw : split(spec, ',')) {
        const std::string token = trim(raw);
        if (token.empty())
            continue;
        const size_t colon = token.find(':');
        if (colon == std::string::npos)
            DOTA_FATAL("fault-plan token '{}' has no ':' (expected "
                       "kill/revive/slow/transient/mtbf:<args>)",
                       token);
        const std::string verb = toLower(token.substr(0, colon));
        const std::string args = token.substr(colon + 1);
        if (verb == "transient") {
            plan.transient_prob = parseNum(args, token);
            if (plan.transient_prob > 1.0)
                DOTA_FATAL("transient probability {} > 1 in '{}'",
                           plan.transient_prob, token);
        } else if (verb == "mtbf") {
            const size_t x = args.find('x');
            if (x == std::string::npos)
                DOTA_FATAL("mtbf token '{}' needs <mtbf_ms>x<repair_ms>",
                           token);
            plan.mtbf_ms = parseNum(args.substr(0, x), token);
            plan.repair_ms = parseNum(args.substr(x + 1), token);
        } else if (verb == "kill" || verb == "revive") {
            const size_t at = args.find('@');
            if (at == std::string::npos)
                DOTA_FATAL("{} token '{}' needs <dev>@<ms>", verb,
                           token);
            FaultEvent ev;
            ev.device = parseDev(args.substr(0, at), token);
            ev.t_ms = parseNum(args.substr(at + 1), token);
            ev.kind = verb == "kill" ? FaultKind::Kill
                                     : FaultKind::Revive;
            plan.events.push_back(ev);
        } else if (verb == "slow") {
            const size_t at = args.find('@');
            const size_t dash = args.find('-', at);
            const size_t x = args.find('x', dash);
            if (at == std::string::npos || dash == std::string::npos ||
                x == std::string::npos)
                DOTA_FATAL("slow token '{}' needs "
                           "<dev>@<t0>-<t1>x<factor>",
                           token);
            const size_t dev = parseDev(args.substr(0, at), token);
            const double t0 =
                parseNum(args.substr(at + 1, dash - at - 1), token);
            const double t1 =
                parseNum(args.substr(dash + 1, x - dash - 1), token);
            const double factor = parseNum(args.substr(x + 1), token);
            if (t1 <= t0 || factor < 1.0)
                DOTA_FATAL("slow token '{}' needs t1 > t0 and factor "
                           ">= 1",
                           token);
            plan.events.push_back({t0, dev, FaultKind::SlowStart,
                                   factor});
            plan.events.push_back({t1, dev, FaultKind::SlowEnd, 1.0});
        } else {
            DOTA_FATAL("unknown fault-plan verb '{}' in '{}' (expected "
                       "kill, revive, slow, transient or mtbf)",
                       verb, token);
        }
    }
    return plan;
}

std::string
describeFaultPlan(const FaultPlan &plan)
{
    std::vector<std::string> parts;
    for (const FaultEvent &ev : plan.events) {
        switch (ev.kind) {
          case FaultKind::Kill:
          case FaultKind::Revive:
            parts.push_back(format("{}:{}@{}", faultKindName(ev.kind),
                                   ev.device, ev.t_ms));
            break;
          case FaultKind::SlowStart:
            parts.push_back(format("slow:{}@{}-?x{}", ev.device,
                                   ev.t_ms, ev.factor));
            break;
          case FaultKind::SlowEnd:
            parts.push_back(format("slow-end:{}@{}", ev.device,
                                   ev.t_ms));
            break;
        }
    }
    if (plan.transient_prob > 0.0)
        parts.push_back(format("transient:{}", plan.transient_prob));
    if (plan.mtbf_ms > 0.0)
        parts.push_back(format("mtbf:{}x{}", plan.mtbf_ms,
                               plan.repair_ms));
    return parts.empty() ? "none" : join(parts, ",");
}

FaultInjector::FaultInjector(const FaultPlan &plan, size_t n_devices,
                             double horizon_ms, uint64_t seed)
    : events_(plan.events), transient_prob_(plan.transient_prob)
{
    for (const FaultEvent &ev : events_)
        if (ev.device >= n_devices)
            DOTA_FATAL("fault event targets device {} but the fleet "
                       "has {} devices",
                       ev.device, n_devices);
    if (plan.mtbf_ms > 0.0) {
        // Expand random fail-stop faults per device from the fault
        // seed. Each device forks its own stream so the schedule does
        // not depend on iteration interleaving.
        Rng root(seed);
        for (size_t d = 0; d < n_devices; ++d) {
            Rng rng = root.fork();
            double t = 0.0;
            for (;;) {
                double u;
                do {
                    u = rng.uniform();
                } while (u >= 1.0 - 1e-12);
                t += -std::log(1.0 - u) * plan.mtbf_ms;
                if (t >= horizon_ms)
                    break;
                events_.push_back({t, d, FaultKind::Kill, 1.0});
                t += plan.repair_ms;
                events_.push_back({t, d, FaultKind::Revive, 1.0});
            }
        }
    }
    // Deterministic order: time, then device, then kind (Kill before
    // Revive, so an instantaneous kill+revive pair nets to "alive").
    std::sort(events_.begin(), events_.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  if (a.t_ms != b.t_ms)
                      return a.t_ms < b.t_ms;
                  if (a.device != b.device)
                      return a.device < b.device;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
}

} // namespace dota
