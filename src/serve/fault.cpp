/**
 * @file
 * Fault-plan parsing and schedule materialization.
 */
#include "serve/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hpp"
#include "common/strutil.hpp"

namespace dota {

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Kill:
        return "kill";
      case FaultKind::Revive:
        return "revive";
      case FaultKind::SlowStart:
        return "slow-start";
      case FaultKind::SlowEnd:
        return "slow-end";
      case FaultKind::Corrupt:
        return "corrupt";
      case FaultKind::Drain:
        return "drain";
    }
    DOTA_PANIC("unknown fault kind");
}

namespace {

/**
 * Parse a non-negative double into @p out; on junk, set the parse
 * error and return false.
 */
bool
parseNum(const std::string &text, const std::string &token,
         FaultPlanParse &res, double &out)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v < 0.0 ||
        !std::isfinite(v)) {
        res.ok = false;
        res.error = format("bad number '{}' in fault-plan token '{}'",
                           text, token);
        return false;
    }
    out = v;
    return true;
}

bool
parseDev(const std::string &text, const std::string &token,
         FaultPlanParse &res, size_t &out)
{
    if (text.empty()) {
        res.ok = false;
        res.error = format("empty device index in fault-plan token "
                           "'{}'",
                           token);
        return false;
    }
    for (char c : text)
        if (c < '0' || c > '9') {
            res.ok = false;
            res.error = format("bad device index '{}' in fault-plan "
                               "token '{}'",
                               text, token);
            return false;
        }
    double v = 0.0;
    if (!parseNum(text, token, res, v))
        return false;
    out = static_cast<size_t>(v);
    return true;
}

} // namespace

FaultPlanParse
tryParseFaultPlan(const std::string &spec)
{
    FaultPlanParse res;
    FaultPlan &plan = res.plan;
    for (const std::string &raw : split(spec, ',')) {
        const std::string token = trim(raw);
        if (token.empty())
            continue;
        const size_t colon = token.find(':');
        if (colon == std::string::npos) {
            res.ok = false;
            res.error = format("fault-plan token '{}' has no ':' "
                               "(expected kill/revive/slow/transient/"
                               "mtbf:<args>)",
                               token);
            return res;
        }
        const std::string verb = toLower(token.substr(0, colon));
        const std::string args = token.substr(colon + 1);
        if (verb == "transient") {
            if (!parseNum(args, token, res, plan.transient_prob))
                return res;
            if (plan.transient_prob > 1.0) {
                res.ok = false;
                res.error = format("transient probability {} > 1 in "
                                   "'{}'",
                                   plan.transient_prob, token);
                return res;
            }
        } else if (verb == "mtbf") {
            const size_t x = args.find('x');
            if (x == std::string::npos) {
                res.ok = false;
                res.error = format("mtbf token '{}' needs "
                                   "<mtbf_ms>x<repair_ms>",
                                   token);
                return res;
            }
            if (!parseNum(args.substr(0, x), token, res,
                          plan.mtbf_ms) ||
                !parseNum(args.substr(x + 1), token, res,
                          plan.repair_ms))
                return res;
        } else if (verb == "kill" || verb == "revive" ||
                   verb == "corrupt" || verb == "drain") {
            const size_t at = args.find('@');
            if (at == std::string::npos) {
                res.ok = false;
                res.error = format("{} token '{}' needs <dev>@<ms>",
                                   verb, token);
                return res;
            }
            FaultEvent ev;
            if (!parseDev(args.substr(0, at), token, res, ev.device) ||
                !parseNum(args.substr(at + 1), token, res, ev.t_ms))
                return res;
            ev.kind = verb == "kill"     ? FaultKind::Kill
                      : verb == "revive" ? FaultKind::Revive
                      : verb == "drain"  ? FaultKind::Drain
                                         : FaultKind::Corrupt;
            plan.events.push_back(ev);
        } else if (verb == "slow") {
            const size_t at = args.find('@');
            const size_t dash =
                at == std::string::npos ? std::string::npos
                                        : args.find('-', at);
            const size_t x = dash == std::string::npos
                                 ? std::string::npos
                                 : args.find('x', dash);
            if (at == std::string::npos || dash == std::string::npos ||
                x == std::string::npos) {
                res.ok = false;
                res.error = format("slow token '{}' needs "
                                   "<dev>@<t0>-<t1>x<factor>",
                                   token);
                return res;
            }
            size_t dev = 0;
            double t0 = 0.0, t1 = 0.0, factor = 1.0;
            if (!parseDev(args.substr(0, at), token, res, dev) ||
                !parseNum(args.substr(at + 1, dash - at - 1), token,
                          res, t0) ||
                !parseNum(args.substr(dash + 1, x - dash - 1), token,
                          res, t1) ||
                !parseNum(args.substr(x + 1), token, res, factor))
                return res;
            if (t1 <= t0 || factor < 1.0) {
                res.ok = false;
                res.error = format("slow token '{}' needs t1 > t0 and "
                                   "factor >= 1",
                                   token);
                return res;
            }
            plan.events.push_back({t0, dev, FaultKind::SlowStart,
                                   factor});
            plan.events.push_back({t1, dev, FaultKind::SlowEnd, 1.0});
        } else {
            res.ok = false;
            res.error = format("unknown fault-plan verb '{}' in '{}' "
                               "(expected kill, revive, slow, "
                               "transient, corrupt, drain or mtbf)",
                               verb, token);
            return res;
        }
    }
    return res;
}

FaultPlan
parseFaultPlan(const std::string &spec)
{
    FaultPlanParse res = tryParseFaultPlan(spec);
    if (!res.ok)
        DOTA_FATAL("{}", res.error);
    return res.plan;
}

std::string
faultPlanGrammar()
{
    return "fault-plan grammar (comma-separated tokens):\n"
           "  kill:<dev>@<ms>            fail-stop death of <dev> at "
           "<ms>\n"
           "  revive:<dev>@<ms>          revival of <dev> at <ms>\n"
           "  slow:<dev>@<t0>-<t1>x<f>   <dev> serves f-times slower "
           "in [t0, t1)\n"
           "  transient:<p>              per-attempt transient failure "
           "probability\n"
           "  corrupt:<dev>@<ms>         flip bits in one resident KV "
           "page of <dev> at <ms>\n"
           "  drain:<dev>@<ms>           graceful drain of <dev> at "
           "<ms>: finish the step,\n"
           "                             live-migrate residents "
           "(generation engine only)\n"
           "  mtbf:<mtbf_ms>x<repair_ms> random fail-stop faults per "
           "device\n"
           "example: kill:0@500,revive:0@900,transient:0.01";
}

std::string
describeFaultPlan(const FaultPlan &plan)
{
    std::vector<std::string> parts;
    for (const FaultEvent &ev : plan.events) {
        switch (ev.kind) {
          case FaultKind::Kill:
          case FaultKind::Revive:
          case FaultKind::Corrupt:
          case FaultKind::Drain:
            parts.push_back(format("{}:{}@{}", faultKindName(ev.kind),
                                   ev.device, ev.t_ms));
            break;
          case FaultKind::SlowStart:
            parts.push_back(format("slow:{}@{}-?x{}", ev.device,
                                   ev.t_ms, ev.factor));
            break;
          case FaultKind::SlowEnd:
            parts.push_back(format("slow-end:{}@{}", ev.device,
                                   ev.t_ms));
            break;
        }
    }
    if (plan.transient_prob > 0.0)
        parts.push_back(format("transient:{}", plan.transient_prob));
    if (plan.mtbf_ms > 0.0)
        parts.push_back(format("mtbf:{}x{}", plan.mtbf_ms,
                               plan.repair_ms));
    return parts.empty() ? "none" : join(parts, ",");
}

FaultInjector::FaultInjector(const FaultPlan &plan, size_t n_devices,
                             double horizon_ms, uint64_t seed)
    : events_(plan.events), transient_prob_(plan.transient_prob)
{
    for (const FaultEvent &ev : events_)
        if (ev.device >= n_devices)
            DOTA_FATAL("fault event targets device {} but the fleet "
                       "has {} devices",
                       ev.device, n_devices);
    if (plan.mtbf_ms > 0.0) {
        // Expand random fail-stop faults per device from the fault
        // seed. Each device forks its own stream so the schedule does
        // not depend on iteration interleaving.
        Rng root(seed);
        for (size_t d = 0; d < n_devices; ++d) {
            Rng rng = root.fork();
            double t = 0.0;
            for (;;) {
                double u;
                do {
                    u = rng.uniform();
                } while (u >= 1.0 - 1e-12);
                t += -std::log(1.0 - u) * plan.mtbf_ms;
                if (t >= horizon_ms)
                    break;
                events_.push_back({t, d, FaultKind::Kill, 1.0});
                t += plan.repair_ms;
                events_.push_back({t, d, FaultKind::Revive, 1.0});
            }
        }
    }
    // Deterministic order: time, then device, then kind (Kill before
    // Revive, so an instantaneous kill+revive pair nets to "alive";
    // Kill before Drain, so the harsher fault wins the tie), then the
    // slow factor. The sort is stable so exact duplicates keep plan
    // order — the schedule never depends on how the spec ordered its
    // tokens.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         if (a.t_ms != b.t_ms)
                             return a.t_ms < b.t_ms;
                         if (a.device != b.device)
                             return a.device < b.device;
                         if (a.kind != b.kind)
                             return static_cast<int>(a.kind) <
                                    static_cast<int>(b.kind);
                         return a.factor < b.factor;
                     });
}

} // namespace dota
