/**
 * @file
 * Seeded fault injection for the online serving simulator.
 *
 * A FaultPlan describes what goes wrong during a serving run: scheduled
 * fail-stop device deaths and revivals, straggler slowdown intervals,
 * a per-attempt transient-error probability, and (optionally) random
 * fail-stop faults drawn from an exponential MTBF. The FaultInjector
 * materializes the plan into a sorted, fully deterministic schedule of
 * FaultEvents for a given fleet size and horizon — all randomness comes
 * from the explicit fault seed, so a chaos run is replayable
 * bit-for-bit independent of thread count.
 *
 * The CLI's --fault-plan flag parses a compact spec (parseFaultPlan):
 *
 *   kill:<dev>@<ms>            fail-stop death of device <dev> at <ms>
 *   revive:<dev>@<ms>          revival of device <dev> at <ms>
 *   slow:<dev>@<t0>-<t1>x<f>   <dev> serves f-times slower in [t0, t1)
 *   transient:<p>              per-attempt transient failure probability
 *   corrupt:<dev>@<ms>         flip bits in one resident KV page of
 *                              <dev> at <ms> (generation engine only)
 *   drain:<dev>@<ms>           graceful drain of <dev> at <ms>: the
 *                              in-flight step completes, residents
 *                              live-migrate (generation engine only)
 *   mtbf:<mtbf_ms>x<repair_ms> random fail-stop: exponential MTBF with
 *                              fixed repair time (per device)
 *
 * tokens separated by commas, e.g. "kill:0@500,revive:0@900,transient:0.01".
 *
 * Same-timestamp events on the same device resolve by FaultKind enum
 * order, never by input order (see FaultInjector): kill < revive <
 * slow-start < slow-end < corrupt < drain. So "kill:0@500,drain:0@500"
 * kills first (the harsher fault wins; the drain is then a no-op on a
 * dead device), "revive:0@500,drain:0@500" revives first and then
 * drains (maintenance wins), and "corrupt:2@45,drain:2@45" poisons the
 * page first so the drain's migration catches it on arrival.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace dota {

/** What happens to a device at one point of the fault schedule. */
enum class FaultKind
{
    // Enum order doubles as the same-timestamp tie-break: events at one
    // instant on one device apply in this order, regardless of the
    // order the plan spelled them in.
    Kill,       ///< fail-stop: device dies, in-flight work is lost
    Revive,     ///< device returns to service
    SlowStart,  ///< straggler interval begins (factor-times slower)
    SlowEnd,    ///< straggler interval ends
    Corrupt,    ///< memory fault: bits flip in one resident KV page
    Drain,      ///< planned maintenance: finish the step, migrate out
};

/** Display name, e.g. "kill". */
std::string faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    double t_ms = 0.0;
    size_t device = 0;
    FaultKind kind = FaultKind::Kill;
    /** Service-time multiplier for SlowStart (> 1 = slower). */
    double factor = 1.0;
};

/** Declarative description of a chaos experiment. */
struct FaultPlan
{
    /** Explicit schedule (any order; the injector sorts it). */
    std::vector<FaultEvent> events;

    /** Per-attempt transient-failure probability in [0, 1]. */
    double transient_prob = 0.0;

    /**
     * When > 0, every device additionally suffers random fail-stop
     * faults: time-to-failure ~ Exponential(mtbf_ms), fixed
     * repair_ms downtime, repeated over the horizon.
     */
    double mtbf_ms = 0.0;
    double repair_ms = 0.0;
};

/** Outcome of tryParseFaultPlan: a plan or a diagnostic. */
struct FaultPlanParse
{
    FaultPlan plan;
    bool ok = true;
    /** Human-readable diagnostic naming the offending token when !ok. */
    std::string error;
};

/**
 * Parse the --fault-plan spec described above. Malformed input never
 * terminates the process: the result carries ok = false and a
 * diagnostic that names the bad token and what was expected.
 */
FaultPlanParse tryParseFaultPlan(const std::string &spec);

/** Parse the --fault-plan spec described above; fatal() on bad syntax. */
FaultPlan parseFaultPlan(const std::string &spec);

/** One-paragraph help text describing the --fault-plan grammar. */
std::string faultPlanGrammar();

/** Render @p plan back into the --fault-plan spec grammar. */
std::string describeFaultPlan(const FaultPlan &plan);

/**
 * Materialized fault schedule for one run: explicit events validated
 * against the fleet size plus random fail-stop events expanded from the
 * seed. Construction does all random draws, so the schedule is fixed
 * before the event loop starts.
 */
class FaultInjector
{
  public:
    /**
     * @param plan        the chaos description
     * @param n_devices   fleet size (events must target [0, n))
     * @param horizon_ms  random faults are generated up to this time
     * @param seed        fault seed for the random draws
     */
    FaultInjector(const FaultPlan &plan, size_t n_devices,
                  double horizon_ms, uint64_t seed);

    /**
     * Events sorted by (time, device, kind, factor) with a stable sort,
     * so same-timestamp events on one device apply in FaultKind enum
     * order and exact duplicates keep their plan order — the schedule
     * is a pure function of the plan, never of token order.
     */
    const std::vector<FaultEvent> &schedule() const { return events_; }

    double transientProb() const { return transient_prob_; }

    /** Draw one transient-failure decision from @p rng. */
    bool
    drawTransient(Rng &rng) const
    {
        return transient_prob_ > 0.0 && rng.bernoulli(transient_prob_);
    }

  private:
    std::vector<FaultEvent> events_;
    double transient_prob_ = 0.0;
};

} // namespace dota
