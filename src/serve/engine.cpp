/**
 * @file
 * Continuous-batching generation engine implementation.
 *
 * One serial virtual-time event loop (arrival and step-completion
 * events, push-order tie-break) drives a per-device iteration loop:
 * every step decodes one token for each running sequence and admits
 * queued prompts for prefill under three budgets — batch slots, step
 * tokens, and KV pages. All service costs come from the ServingSimulator
 * cost cache (warmed in parallel with a fixed-order merge), so the
 * report is bit-identical at every DOTA_THREADS.
 */
#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <queue>

#include "common/logging.hpp"

namespace dota {

namespace {

/** Probe lengths of the linear per-token decode-cost calibration. */
constexpr size_t kProbeLo = 128;
constexpr size_t kProbeHi = 1024;

ServeConfig
toServeConfig(const EngineConfig &cfg)
{
    ServeConfig sc;
    sc.devices = cfg.devices;
    sc.accelerators = cfg.accelerators;
    sc.mode = cfg.mode;
    sc.options = cfg.options;
    sc.policy = cfg.policy;
    return sc;
}

} // namespace

GenerationEngine::GenerationEngine(EngineConfig cfg,
                                   const Benchmark &bench)
    : cfg_(std::move(cfg)), sim_(toServeConfig(cfg_), bench)
{
    DOTA_ASSERT(cfg_.batch.max_batch_seqs >= 1,
                "batch needs at least one sequence slot");
    DOTA_ASSERT(cfg_.batch.max_step_tokens >= 1,
                "step token budget must be positive");
    DOTA_ASSERT(cfg_.kv.evict_retention > 0.0 &&
                    cfg_.kv.evict_retention <= 1.0,
                "evict_retention must be in (0, 1]");
    DOTA_ASSERT(cfg_.kv.topk_retention > 0.0 &&
                    cfg_.kv.topk_retention <= 1.0,
                "topk_retention must be in (0, 1]");
    const ModelShape &shape = bench.paper_shape;
    bytes_per_token_ =
        cfg_.kv.bytes_per_token > 0
            ? cfg_.kv.bytes_per_token
            : 2 * shape.layers * shape.dim * sizeof(float);
}

double
GenerationEngine::prefillMs(size_t accel, size_t level,
                            size_t prompt_len) const
{
    return sim_.serviceMs(accel, level, prompt_len);
}

double
GenerationEngine::decodeTokenMs(size_t accel, size_t level,
                                size_t attended) const
{
    // Per-token cost of a full pass grows linearly with the attended
    // context (attention is the quadratic term); fit through the two
    // probe lengths and extrapolate.
    const double lo =
        sim_.serviceMs(accel, level, kProbeLo) / double(kProbeLo);
    const double hi =
        sim_.serviceMs(accel, level, kProbeHi) / double(kProbeHi);
    const double slope = (hi - lo) / double(kProbeHi - kProbeLo);
    const double ms =
        lo + slope * (double(attended) - double(kProbeLo));
    return std::max(ms, 1e-6);
}

bool
GenerationEngine::slotHasDetector(size_t accel) const
{
    return sim_.ladderDepth(accel) > 1 || sim_.retention(accel, 0) < 1.0;
}

double
GenerationEngine::evictKeepFraction(size_t accel, size_t level) const
{
    if (!cfg_.kv.evict_after_prefill || !slotHasDetector(accel))
        return 1.0;
    return std::min(cfg_.kv.evict_retention,
                    sim_.retention(accel, level));
}

double
GenerationEngine::topkFraction(size_t accel, size_t level) const
{
    if (!cfg_.kv.dynamic_topk || !slotHasDetector(accel))
        return 1.0;
    return std::min(cfg_.kv.topk_retention,
                    sim_.retention(accel, level));
}

void
GenerationEngine::warm(const GenTrace &trace) const
{
    std::vector<size_t> lens = trace.distinctPromptLengths();
    lens.push_back(kProbeLo);
    lens.push_back(kProbeHi);
    sim_.warmCostCache(lens);
}

namespace {

enum class GenEventType
{
    Fault,
    Arrival,
    Step,
    Probe,
    Watchdog,
    Migration, ///< a sequence's sealed KV pages land on their target
};

struct GenEvent
{
    double t = 0.0;
    uint64_t seq = 0; ///< push order; the deterministic tie-break
    GenEventType type = GenEventType::Arrival;
    size_t id = 0;     // Arrival: request id; Migration: transfer id
    size_t device = 0; // Step / Fault / Probe / Watchdog
    uint64_t epoch = 0; // Step: device epoch; Watchdog: progress stamp
    FaultKind fkind = FaultKind::Kill; // Fault
    double factor = 1.0;               // Fault (SlowStart)
};

struct GenEventLater
{
    bool
    operator()(const GenEvent &a, const GenEvent &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        return a.seq > b.seq;
    }
};

/** One sequence resident on a device (prefilling or decoding). */
struct Running
{
    size_t id = 0;
    bool prefill = true;    ///< this step runs prompt tokens, not a token
    size_t level = 0;       ///< ladder level fixed at admission
    size_t kv_tokens = 0;   ///< KV entries currently held
    size_t generated = 0;   ///< output tokens emitted so far
    size_t prefill_done = 0; ///< prompt tokens prefilled (streaming)
    size_t step_chunk = 0;   ///< prompt tokens this step (streaming)
    double first_token_ms = 0.0;
    double dispatch_ms = 0.0; ///< latest prefill start
};

/** Runtime state of one device. */
struct DevGen
{
    bool busy = false;
    bool alive = true;
    bool draining = false;   ///< evacuating; down once residents leave
    bool probation = false;  ///< revived: reduced duty until proven
    size_t clean_steps = 0;  ///< transient-free steps since revival
    double slow = 1.0;       ///< straggler service-time multiplier
    double step_start = 0.0;
    double down_since = -1.0;
    uint64_t epoch = 0;      ///< bumps on death: voids in-flight steps
    uint64_t progress = 0;   ///< bumps per completed step (watchdog)
    uint64_t watchdog_armed = ~0ull; ///< progress stamp when armed
    std::vector<Running> running;
    /** Migrated sequences landed mid-step: joined at the next step
     * boundary so an in-flight step's bookkeeping never covers them. */
    std::vector<Running> inbox;
    std::unique_ptr<PagedKvAllocator> alloc;
};

/** Where a migration departed from — decides the fallback accounting. */
enum class MigOrigin
{
    Kill,    ///< fail-stop: fallback counts a failover
    Drain,   ///< planned evacuation degenerating into a failover
    Watchdog ///< stall rescue: already counted at departure
};

/** One sequence's sealed KV pages in flight between arenas. */
struct MigPending
{
    Running r;
    KvSeqExport exp;
    double depart_ms = 0.0;
    MigOrigin origin = MigOrigin::Kill;
};

} // namespace

ServeReport
GenerationEngine::run(const GenTrace &trace) const
{
    return run(trace, FaultPlan{}, 1);
}

ServeReport
GenerationEngine::run(const GenTrace &trace, const FaultPlan &plan,
                      uint64_t fault_seed) const
{
    const size_t n = sim_.size();
    const BatchPolicy &bp = cfg_.batch;
    ServeReport rep;
    rep.requests = trace.requests.size();
    size_t max_ladder = 1;
    for (size_t a = 0; a < n; ++a)
        max_ladder = std::max(max_ladder, sim_.ladderDepth(a));
    rep.completed_by_level.assign(max_ladder, 0);
    rep.devices.resize(n);
    for (size_t a = 0; a < n; ++a)
        rep.devices[a].name = sim_.deviceName(a, 0);
    rep.outcomes.resize(rep.requests);

    // Requests indexed by id (ids are dense by construction).
    std::vector<const GenRequest *> reqs(rep.requests, nullptr);
    for (const GenRequest &r : trace.requests) {
        DOTA_ASSERT(r.id < rep.requests && reqs[r.id] == nullptr,
                    "GenTrace ids must be dense and unique");
        DOTA_ASSERT(r.output_len >= 1,
                    "generation request needs output_len >= 1");
        reqs[r.id] = &r;
        RequestOutcome &out = rep.outcomes[r.id];
        out.id = r.id;
        out.arrival_ms = r.arrival_ms;
        out.seq_len = r.prompt_len;
        out.status = RequestStatus::ShedStarved;
    }

    warm(trace);

    KvCacheConfig kc;
    kc.page_tokens = cfg_.kv.page_tokens;
    kc.bytes_per_token = bytes_per_token_;
    kc.budget_bytes = cfg_.kv.budget_bytes;
    std::vector<DevGen> dev(n);
    for (DevGen &d : dev)
        d.alloc = std::make_unique<PagedKvAllocator>(kc);

    GenMetrics &gen = rep.gen;
    gen.enabled = true;
    gen.kv_page_tokens = kc.page_tokens;
    gen.kv_pages_total = n * dev[0].alloc->totalPages();
    gen.kv_budget_bytes = n * kc.budget_bytes;

    RobustDispatcher disp(cfg_.policy, n);
    std::vector<size_t> preemptions_of(rep.requests, 0);
    std::vector<size_t> restarts_of(rep.requests, 0);
    std::vector<size_t> queued_at_step(rep.requests, 0);
    std::vector<double> victim_since(rep.requests, -1.0);
    std::vector<double> recoveries_ms;
    size_t corrupt_cycle = 0;

    // Live KV migration (DESIGN.md §15): sealed pages in flight between
    // arenas, keyed by transfer id. Everything runs inside the serial
    // event loop, so victim order, target choice and landing times are
    // identical at every DOTA_THREADS.
    const MigrationPolicy &mp = cfg_.migrate;
    std::map<uint64_t, MigPending> migrating;
    uint64_t next_migration = 0;
    std::vector<double> migration_ms;

    // Random (MTBF) faults are generated out to twice the arrival
    // horizon plus slack, so the drain phase stays under chaos too.
    const double fault_horizon = trace.horizonMs() * 2.0 + 1000.0;
    const FaultInjector injector(plan, n, fault_horizon, fault_seed);
    // Transient draws and corruption victim picks use a stream forked
    // off the same seed; the serial event loop fixes the draw order,
    // so the run replays bit-for-bit at any thread count.
    Rng chaos_rng(fault_seed ^ 0x9e3779b97f4a7c15ULL);

    std::priority_queue<GenEvent, std::vector<GenEvent>, GenEventLater>
        heap;
    uint64_t seq = 0;
    auto push = [&](GenEvent ev) {
        ev.seq = seq++;
        heap.push(std::move(ev));
    };
    // Faults enter the heap first: a fault and an arrival at the same
    // instant resolve fault-first (the simulator's convention).
    for (const FaultEvent &f : injector.schedule()) {
        GenEvent ev;
        ev.t = f.t_ms;
        ev.type = GenEventType::Fault;
        ev.device = f.device;
        ev.fkind = f.kind;
        ev.factor = f.factor;
        push(std::move(ev));
    }
    for (const GenRequest &r : trace.requests) {
        GenEvent ev;
        ev.t = r.arrival_ms;
        ev.type = GenEventType::Arrival;
        ev.id = r.id;
        push(std::move(ev));
    }

    double horizon = 0.0;
    std::vector<double> latencies, ttfts, tpots;
    double retention_sum = 0.0;

    auto samplePeak = [&] {
        size_t pages = 0;
        for (const DevGen &d : dev)
            pages += d.alloc->usedPages();
        if (pages > gen.kv_peak_pages) {
            gen.kv_peak_pages = pages;
            gen.kv_peak_bytes = pages * dev[0].alloc->pageBytes();
        }
    };

    /** Alive devices (>= 1 so the degrade divisor never hits zero). */
    auto aliveCount = [&] {
        size_t c = 0;
        for (const DevGen &d : dev)
            c += d.alive ? 1 : 0;
        return std::max<size_t>(1, c);
    };

    /** Terminal failure of @p id (KV infeasible / preempt-exhausted). */
    auto failRequest = [&](size_t id, double now, bool oom) {
        RequestOutcome &out = rep.outcomes[id];
        out.status = RequestStatus::Failed;
        out.finish_ms = now;
        out.attempts = 1 + preemptions_of[id] + restarts_of[id];
        ++rep.failed;
        if (oom)
            ++gen.kv_ooms;
    };

    /**
     * Re-queue a chaos victim (device death, KV quarantine, watchdog
     * migration) for a full re-prefill on whatever device next has
     * room. Its KV pages are already released by the caller. Work done
     * so far is wasted; restarts are capped by the retry budget so a
     * cursed request fails instead of thrashing forever.
     */
    auto readmitVictim = [&](const Running &r, double now) {
        gen.wasted_prefill_tokens += r.prefill_done;
        gen.wasted_decode_tokens += r.generated;
        ++restarts_of[r.id];
        if (restarts_of[r.id] > cfg_.policy.max_retries) {
            failRequest(r.id, now, false);
            return;
        }
        ++rep.retries;
        const GenRequest &req = *reqs[r.id];
        QueuedJob job;
        job.req = Request{req.id, req.arrival_ms, req.prompt_len,
                          req.deadline_ms};
        job.attempts = restarts_of[r.id];
        disp.admit(job, /*forced=*/true);
        queued_at_step[r.id] = gen.steps;
        rep.outcomes[r.id].status = RequestStatus::ShedStarved;
        victim_since[r.id] = now;
    };

    /** Join migrated arrivals at a step boundary of device @p a. */
    auto mergeInbox = [&](size_t a) {
        DevGen &d = dev[a];
        for (const Running &r : d.inbox)
            d.running.push_back(r);
        d.inbox.clear();
    };

    /** Fallback accounting when a migration degrades to re-prefill. */
    auto failoverCounters = [&](const Running &r, MigOrigin origin) {
        if (origin == MigOrigin::Watchdog)
            return; // watchdog victims were counted at departure
        ++rep.failovers;
        if (r.prefill)
            ++gen.prefill_failovers;
        else
            ++gen.decode_failovers;
    };

    /**
     * Start the live migration of resident @p r off device @p a: its
     * sealed pages are copied into an in-transit image, the source copy
     * is torn down (healthy frames freed, poisoned ones quarantined —
     * poisoned images still travel so verify-on-arrival catches them),
     * and a Migration event lands pages * page_ms later. Returns false
     * with nothing done when migration is disabled — the caller then
     * takes the classic re-prefill path.
     */
    auto migrateOut = [&](size_t a, const Running &r, double now,
                          MigOrigin origin) {
        if (!mp.enabled)
            return false;
        DevGen &d = dev[a];
        MigPending p;
        p.r = r;
        p.exp = d.alloc->exportSeq(r.id);
        p.depart_ms = now;
        p.origin = origin;
        const size_t npages = p.exp.pages.size();
        gen.corrupted_pages_detected += d.alloc->quarantineSeq(r.id);
        const uint64_t mig = next_migration++;
        migrating.emplace(mig, std::move(p));
        GenEvent ev;
        ev.t = now + mp.page_ms * double(npages);
        ev.type = GenEventType::Migration;
        ev.id = static_cast<size_t>(mig);
        push(std::move(ev));
        return true;
    };

    /**
     * Complete the graceful drain of device @p a: every resident
     * live-migrates out (or re-prefills when migration is off), then
     * the device goes down for its planned maintenance — a later
     * revive brings it back through probation.
     */
    auto finishDrain = [&](size_t a, double now) {
        DevGen &d = dev[a];
        mergeInbox(a);
        for (const Running &r : d.running) {
            if (migrateOut(a, r, now, MigOrigin::Drain))
                continue;
            failoverCounters(r, MigOrigin::Drain);
            d.alloc->freeSeq(r.id);
            readmitVictim(r, now);
        }
        d.running.clear();
        d.draining = false;
        d.alive = false;
        d.down_since = now;
        ++d.epoch;    // voids any event addressed to the old life
        ++d.progress; // disarms any pending watchdog
    };

    /**
     * Integrity gate of device @p a: seal-check every resident
     * sequence; any with a poisoned page is quarantined (the bad
     * frames leave capacity) and re-prefilled — no token computed from
     * corrupted KV is ever served.
     */
    auto sweepCorruption = [&](size_t a, double now) {
        DevGen &d = dev[a];
        for (size_t i = 0; i < d.running.size();) {
            if (d.alloc->verifySeq(d.running[i].id) == 0) {
                ++i;
                continue;
            }
            const Running victim = d.running[i];
            gen.corrupted_pages_detected +=
                d.alloc->quarantineSeq(victim.id);
            ++gen.corruption_reprefills;
            d.running.erase(d.running.begin() +
                            static_cast<ptrdiff_t>(i));
            readmitVictim(victim, now);
        }
    };

    /** Bound the decode stall of @p a's residents (0 = disabled). */
    auto armWatchdog = [&](size_t a, double now) {
        if (bp.watchdog_stall_ms <= 0.0)
            return;
        DevGen &d = dev[a];
        if (d.running.empty() || d.watchdog_armed == d.progress)
            return; // nothing to guard / already armed for this stall
        d.watchdog_armed = d.progress;
        GenEvent ev;
        ev.t = now + bp.watchdog_stall_ms;
        ev.type = GenEventType::Watchdog;
        ev.device = a;
        ev.epoch = d.progress;
        push(std::move(ev));
    };

    /**
     * Preempt the running sequence at @p vi of device @p a: release its
     * pages and either re-queue it (it restarts from prefill, keyed by
     * its original arrival so FIFO order is preserved) or fail it once
     * it exhausts the preemption budget.
     */
    auto preempt = [&](size_t a, size_t vi, double now) {
        DevGen &d = dev[a];
        const Running victim = d.running[vi];
        d.alloc->freeSeq(victim.id);
        d.running.erase(d.running.begin() +
                        static_cast<ptrdiff_t>(vi));
        ++gen.preemptions;
        ++preemptions_of[victim.id];
        const GenRequest &req = *reqs[victim.id];
        if (preemptions_of[victim.id] > bp.max_preemptions) {
            failRequest(victim.id, now, false);
            return;
        }
        QueuedJob job;
        job.req = Request{req.id, req.arrival_ms, req.prompt_len,
                          req.deadline_ms};
        job.attempts = preemptions_of[victim.id];
        disp.admit(job, /*forced=*/true);
        queued_at_step[victim.id] = gen.steps;
        rep.outcomes[victim.id].status = RequestStatus::ShedStarved;
    };

    /** Dynamic-top-k context size of one decode token. */
    auto attendedOf = [&](size_t a, size_t level, size_t kv_tokens) {
        const double frac = topkFraction(a, level);
        if (frac >= 1.0)
            return kv_tokens;
        return std::max<size_t>(
            1, static_cast<size_t>(
                   std::ceil(frac * double(kv_tokens))));
    };

    /** Form and launch the next step of device @p a, if any. */
    auto formStep = [&](size_t a, double now) {
        DevGen &d = dev[a];
        if (!d.alive || d.busy || d.draining)
            return;
        mergeInbox(a);
        // Verify seals before the residents are read again this step —
        // migrated arrivals included, so a page poisoned in the arena
        // after landing is caught before any token reads it.
        sweepCorruption(a, now);
        if (disp.breakerOpen(a, now)) {
            armWatchdog(a, now); // residents stall while cooling down
            return;
        }
        const bool chunked = bp.streaming_prefill;
        size_t used_tokens = 0;
        for (Running &r : d.running)
            used_tokens += r.prefill ? 0 : 1; // one per decode
        // Resident unfinished prefills (streaming only — without
        // chunking a prefill always completes within its step) claim
        // their next chunk first, in resident order: whatever step
        // budget the decodes left, floored at one token so every
        // admitted prompt makes progress each step.
        for (Running &r : d.running) {
            if (!r.prefill)
                continue;
            const size_t remaining = r.kv_tokens - r.prefill_done;
            const size_t left = bp.max_step_tokens > used_tokens
                                    ? bp.max_step_tokens - used_tokens
                                    : 0;
            r.step_chunk = std::max<size_t>(1, std::min(remaining, left));
            used_tokens += r.step_chunk;
        }
        // Dead devices deepen the ladder: the same queue over less
        // capacity is more pressure, so fault-shrunk fleets shed
        // retention before they shed requests.
        const size_t level_now =
            disp.degradeLevel(disp.queueDepth(), aliveCount());
        // A device on probation runs at reduced concurrency until it
        // proves itself (floored at one slot so it can prove anything).
        const size_t slot_cap =
            d.probation
                ? std::min(bp.max_batch_seqs,
                           std::max<size_t>(1, mp.probation_seqs))
                : bp.max_batch_seqs;
        // Strict-FIFO admission: the head is never skipped, so no
        // queued request can starve while others are admitted.
        for (;;) {
            std::optional<QueuedJob> head = disp.peek();
            if (!head)
                break;
            const size_t id = head->req.id;
            const size_t prompt = head->req.seq_len;
            if (!chunked && prompt > bp.max_step_tokens) {
                // Deterministic fail-fast: this prompt can never be
                // scheduled under the step budget, and holding the
                // FIFO head would starve the queue. Streaming prefill
                // lifts the limit.
                disp.pop();
                failRequest(id, now, true);
                continue;
            }
            if (!d.alloc->feasible(prompt + 1)) {
                // This arena is too small even empty — possible only
                // after quarantine shrank it (pristine infeasibility
                // is shed at arrival). Another device may still hold
                // the prompt; fail fast only when none alive can.
                bool anywhere = false;
                for (size_t b = 0; b < n && !anywhere; ++b)
                    anywhere = dev[b].alive &&
                               dev[b].alloc->feasible(prompt + 1);
                if (anywhere)
                    break; // leave the head for the healthier arena
                disp.pop();
                failRequest(id, now, true);
                continue;
            }
            if (d.running.size() >= slot_cap)
                break;
            if (chunked ? used_tokens >= bp.max_step_tokens
                        : used_tokens + prompt > bp.max_step_tokens)
                break;
            if (!d.alloc->canFit(prompt))
                break; // wait for pages to free up
            disp.pop();
            const bool created = d.alloc->createSeq(id);
            DOTA_ASSERT(created, "sequence {} already resident", id);
            const bool ok = d.alloc->appendTokens(id, prompt);
            DOTA_ASSERT(ok, "prefill allocation failed after canFit");
            Running r;
            r.id = id;
            r.prefill = true;
            r.level = std::min(level_now, sim_.ladderDepth(a) - 1);
            r.kv_tokens = prompt;
            r.step_chunk =
                chunked ? std::min(prompt, bp.max_step_tokens - used_tokens)
                        : prompt;
            r.dispatch_ms = now;
            d.running.push_back(r);
            used_tokens += r.step_chunk;
            const size_t wait = gen.steps - queued_at_step[id];
            gen.max_queue_wait_steps =
                std::max(gen.max_queue_wait_steps, wait);
            if (bp.starve_step_budget > 0) {
                DOTA_ASSERT(wait <= bp.starve_step_budget,
                            "request {} starved {} steps (budget {})",
                            id, wait, bp.starve_step_budget);
            }
            if (victim_since[id] >= 0.0) {
                // A chaos victim is back in prefill: recovered.
                recoveries_ms.push_back(now - victim_since[id]);
                victim_since[id] = -1.0;
                ++gen.recoveries;
            }
            RequestOutcome &out = rep.outcomes[id];
            out.dispatch_ms = now;
            out.attempts = 1 + preemptions_of[id] + restarts_of[id];
        }
        if (d.running.empty())
            return;
        double dur = bp.step_overhead_ms;
        for (const Running &r : d.running) {
            if (r.prefill)
                // One chunk's cost under streaming prefill (the full
                // prompt in one piece otherwise — step_chunk == prompt).
                dur += prefillMs(a, r.level, r.step_chunk);
            else
                dur += decodeTokenMs(
                    a, r.level, attendedOf(a, r.level, r.kv_tokens));
        }
        d.busy = true;
        d.step_start = now;
        GenEvent ev;
        ev.t = now + dur * d.slow; // straggler interval, if any
        ev.type = GenEventType::Step;
        ev.device = a;
        ev.epoch = d.epoch;
        push(std::move(ev));
        samplePeak();
    };

    auto formAll = [&](double now) {
        for (size_t a = 0; a < n; ++a)
            formStep(a, now);
    };

    while (!heap.empty()) {
        const GenEvent ev = heap.top();
        heap.pop();
        const double now = ev.t;
        horizon = std::max(horizon, now);
        switch (ev.type) {
          case GenEventType::Fault: {
            DevGen &d = dev[ev.device];
            const size_t a = ev.device;
            switch (ev.fkind) {
              case FaultKind::Kill: {
                if (!d.alive)
                    break;
                d.alive = false;
                d.draining = false; // kill supersedes a pending drain
                d.down_since = now;
                ++d.epoch;    // voids the in-flight step event
                ++d.progress; // disarms any pending watchdog
                if (d.busy) {
                    // The partial step is still paid for.
                    rep.devices[a].busy_ms += now - d.step_start;
                    d.busy = false;
                }
                // Rescue every resident: sealed pages live-migrate to
                // a healthy arena when policy allows; otherwise pages
                // are released and the request re-prefills on whatever
                // device next has room.
                mergeInbox(a);
                for (const Running &r : d.running) {
                    if (migrateOut(a, r, now, MigOrigin::Kill))
                        continue;
                    failoverCounters(r, MigOrigin::Kill);
                    d.alloc->freeSeq(r.id);
                    readmitVictim(r, now);
                }
                d.running.clear();
                break;
              }
              case FaultKind::Revive:
                if (d.alive)
                    break;
                d.alive = true;
                rep.devices[a].down_intervals.push_back(
                    {d.down_since, now});
                d.down_since = -1.0;
                if (mp.probation_steps > 0) {
                    // Back from the dead: reduced duty until it runs
                    // probation_steps clean steps.
                    d.probation = true;
                    d.clean_steps = 0;
                }
                break;
              case FaultKind::SlowStart:
                d.slow = ev.factor;
                break;
              case FaultKind::SlowEnd:
                d.slow = 1.0;
                break;
              case FaultKind::Corrupt: {
                if (!d.alive)
                    break; // a dead device's arena is already empty
                const std::vector<uint32_t> used =
                    d.alloc->usedPageList();
                if (used.empty())
                    break;
                const uint32_t page = used[chaos_rng.uniformInt(
                    static_cast<uint64_t>(used.size()))];
                d.alloc->corruptPage(
                    page,
                    static_cast<KvCorruption>(corrupt_cycle++ % 3));
                break;
              }
              case FaultKind::Drain: {
                if (!d.alive || d.draining)
                    break; // dead / already evacuating: nothing to do
                ++gen.drains;
                d.draining = true;
                // Graceful: an in-flight step finishes and keeps its
                // tokens; the evacuation runs at that step boundary.
                if (!d.busy)
                    finishDrain(a, now);
                break;
              }
            }
            formAll(now);
            break;
          }
          case GenEventType::Probe: {
            formAll(now); // a breaker cooldown expired
            break;
          }
          case GenEventType::Watchdog: {
            DevGen &d = dev[ev.device];
            if (!d.alive || d.busy || d.running.empty() ||
                ev.epoch != d.progress)
                break; // progress was made since arming: false alarm
            // The device sat on residents for the whole stall budget:
            // migrate them so their decode stall stays bounded — live
            // (KV intact) when policy allows, by re-prefill otherwise.
            ++d.progress;
            mergeInbox(ev.device);
            for (const Running &r : d.running) {
                ++gen.watchdog_migrations;
                if (migrateOut(ev.device, r, now, MigOrigin::Watchdog))
                    continue;
                d.alloc->freeSeq(r.id);
                readmitVictim(r, now);
            }
            d.running.clear();
            formAll(now);
            break;
          }
          case GenEventType::Migration: {
            auto mit = migrating.find(static_cast<uint64_t>(ev.id));
            DOTA_ASSERT(mit != migrating.end(),
                        "unknown migration {}", ev.id);
            const MigPending p = std::move(mit->second);
            migrating.erase(mit);
            const size_t need = p.exp.pages.size();
            // Verify-on-arrival: every page's CRC32 seal is re-checked
            // against the image that travelled. A poisoned transfer is
            // refused whole — only this sequence re-prefills, and no
            // token is ever computed from the bad pages.
            if (PagedKvAllocator::verifyExport(p.exp) != 0) {
                ++gen.migration_poisoned;
                failoverCounters(p.r, p.origin);
                readmitVictim(p.r, now);
                formAll(now);
                break;
            }
            // Deterministic target choice: the eligible device with
            // the most free pages, lowest index on ties. Probation,
            // draining and breaker-open devices are never targets.
            size_t target = n;
            size_t best_free = 0;
            for (size_t b = 0; b < n; ++b) {
                const DevGen &t = dev[b];
                if (!t.alive || t.draining || t.probation)
                    continue;
                if (disp.breakerOpen(b, now))
                    continue;
                if (t.running.size() + t.inbox.size() >=
                    bp.max_batch_seqs)
                    continue;
                const size_t fp = t.alloc->freePages();
                if (fp < need)
                    continue;
                if (target == n || fp > best_free) {
                    target = b;
                    best_free = fp;
                }
            }
            if (target == n) {
                ++gen.migration_no_target;
                failoverCounters(p.r, p.origin);
                readmitVictim(p.r, now);
                formAll(now);
                break;
            }
            // All-or-nothing admission on the target arena.
            const bool ok = dev[target].alloc->importSeq(p.exp);
            DOTA_ASSERT(ok, "importSeq failed after eligibility check");
            Running r = p.r;
            r.level = std::min(r.level, sim_.ladderDepth(target) - 1);
            dev[target].inbox.push_back(r);
            ++gen.migrations;
            gen.migrated_pages += need;
            gen.migrated_bytes += need * dev[target].alloc->pageBytes();
            gen.saved_prefill_tokens += r.prefill_done;
            gen.saved_decode_tokens += r.generated;
            migration_ms.push_back(now - p.depart_ms);
            samplePeak();
            formAll(now);
            break;
          }
          case GenEventType::Arrival: {
            const GenRequest &req = *reqs[ev.id];
            if (dev[0].alloc->pagesFor(req.prompt_len + 1) >
                dev[0].alloc->totalPages()) {
                // The prompt (plus its first generated token) exceeds
                // a whole pristine arena: admitting it could only end
                // in a retry/preempt livelock, so it is shed up-front
                // as a counted rejection.
                RequestOutcome &out = rep.outcomes[req.id];
                out.status = RequestStatus::ShedInfeasible;
                out.finish_ms = now;
                ++rep.shed_infeasible;
                formAll(now);
                break;
            }
            QueuedJob job;
            job.req = Request{req.id, req.arrival_ms, req.prompt_len,
                              req.deadline_ms};
            if (!disp.admit(job, /*forced=*/false)) {
                RequestOutcome &out = rep.outcomes[req.id];
                out.status = RequestStatus::ShedQueueFull;
                out.finish_ms = now;
                ++rep.shed_queue_full;
            } else {
                queued_at_step[req.id] = gen.steps;
            }
            formAll(now);
            break;
          }
          case GenEventType::Step: {
            DevGen &d = dev[ev.device];
            const size_t a = ev.device;
            if (ev.epoch != d.epoch)
                break; // stale: the device died mid-step
            d.busy = false;
            rep.devices[a].busy_ms += now - d.step_start;
            // Integrity gate first: a sequence whose pages were
            // poisoned mid-step has this step's work discarded — no
            // corrupted token is ever served.
            sweepCorruption(a, now);
            if (injector.drawTransient(chaos_rng)) {
                // Transient fault: the whole step's work is voided.
                ++gen.steps;
                ++gen.transient_steps;
                ++rep.transient_errors;
                ++rep.devices[a].failed_attempts;
                if (d.probation) {
                    // Demotion: the clean-step counter restarts; the
                    // breakers keep parking the device in between.
                    d.clean_steps = 0;
                    ++gen.probation_demotions;
                }
                if (disp.onFailure(a, now)) {
                    ++rep.breaker_trips;
                    GenEvent probe;
                    probe.t = disp.breakerOpenUntil(a);
                    probe.type = GenEventType::Probe;
                    probe.device = a;
                    push(std::move(probe));
                }
                if (d.draining) {
                    // The voided step still counts as "finished": the
                    // drain proceeds at this step boundary.
                    finishDrain(a, now);
                }
                armWatchdog(a, now);
                formAll(now);
                break;
            }
            disp.onSuccess(a);
            ++d.progress;
            ++gen.steps;
            if (d.probation &&
                ++d.clean_steps >= mp.probation_steps) {
                d.probation = false;
                d.clean_steps = 0;
                ++gen.probation_promotions;
            }
            bool any_prefill = false, any_decode = false;

            // 1. Token bookkeeping: prefills emit their first output
            //    token and run the DOTA eviction pass; decodes emit
            //    one token each.
            for (Running &r : d.running) {
                if (r.prefill) {
                    any_prefill = true;
                    r.prefill_done += r.step_chunk;
                    gen.prefill_tokens += r.step_chunk;
                    if (r.prefill_done < r.kv_tokens)
                        continue; // mid-stream: no first token yet
                    r.first_token_ms = now;
                    r.generated = 1;
                    const double frac = evictKeepFraction(a, r.level);
                    const size_t keep = std::max<size_t>(
                        1, static_cast<size_t>(std::ceil(
                               frac * double(r.kv_tokens))));
                    if (keep < r.kv_tokens) {
                        d.alloc->shrinkTo(r.id, keep);
                        gen.evicted_tokens += r.kv_tokens - keep;
                        ++gen.evictions;
                        r.kv_tokens = keep;
                    }
                    r.prefill = false;
                } else {
                    any_decode = true;
                    ++gen.decode_tokens;
                    ++r.generated;
                }
            }
            gen.prefill_steps += any_prefill ? 1 : 0;
            gen.decode_steps += any_decode ? 1 : 0;

            // 2. Completions: emit outcomes, free KV.
            for (size_t i = 0; i < d.running.size();) {
                Running &r = d.running[i];
                const GenRequest &req = *reqs[r.id];
                if (r.generated < req.output_len) {
                    ++i;
                    continue;
                }
                RequestOutcome &out = rep.outcomes[r.id];
                out.status = RequestStatus::Completed;
                out.device = static_cast<int>(a);
                out.dispatch_ms = r.dispatch_ms;
                out.finish_ms = now;
                out.attempts =
                    1 + preemptions_of[r.id] + restarts_of[r.id];
                out.level = r.level;
                out.retention = sim_.retention(a, r.level);
                out.generated = r.generated;
                out.ttft_ms = r.first_token_ms - req.arrival_ms;
                out.tpot_ms =
                    req.output_len > 1
                        ? (now - r.first_token_ms) /
                              double(req.output_len - 1)
                        : 0.0;
                out.deadline_missed = now > req.deadline_ms;
                if (out.deadline_missed)
                    ++rep.deadline_misses;
                ++rep.completed;
                ++rep.completed_by_level[r.level];
                ++rep.devices[a].completed;
                retention_sum += out.retention;
                gen.output_tokens += req.output_len;
                latencies.push_back(now - req.arrival_ms);
                ttfts.push_back(out.ttft_ms);
                tpots.push_back(out.tpot_ms);
                d.alloc->freeSeq(r.id);
                d.running.erase(d.running.begin() +
                                static_cast<ptrdiff_t>(i));
            }

            // 3. KV growth: the token emitted this step is appended for
            //    the next one. On OOM, preempt the youngest resident
            //    sequence (latest arrival, id tie-break) — the oldest
            //    always makes progress, which is what bounds waiting.
            for (size_t i = 0; i < d.running.size();) {
                if (d.running[i].prefill) {
                    ++i; // mid-stream prefill emitted no token yet
                    continue;
                }
                const size_t cur_id = d.running[i].id;
                if (d.alloc->appendTokens(cur_id, 1)) {
                    ++i;
                    continue;
                }
                if (d.running.size() == 1) {
                    // Alone and still over budget: retrying would
                    // deterministically reproduce this OOM.
                    d.alloc->freeSeq(cur_id);
                    d.running.erase(d.running.begin());
                    failRequest(cur_id, now, true);
                    break;
                }
                size_t vi = 0;
                for (size_t j = 1; j < d.running.size(); ++j) {
                    const GenRequest &x = *reqs[d.running[j].id];
                    const GenRequest &v = *reqs[d.running[vi].id];
                    if (x.arrival_ms > v.arrival_ms ||
                        (x.arrival_ms == v.arrival_ms &&
                         x.id > v.id))
                        vi = j;
                }
                const bool self = d.running[vi].id == cur_id;
                preempt(a, vi, now);
                if (self)
                    continue; // current gone; i now names the next seq
                if (vi < i)
                    --i;
                // Retry the append with the victim's pages freed.
            }
            samplePeak();
            if (d.draining) {
                // The in-flight step kept its tokens (the graceful
                // part); now the survivors evacuate.
                finishDrain(a, now);
            }
            formAll(now);
            break;
          }
        }
    }

    // On a healthy fleet the queue drains by construction (an idle
    // device has an empty arena, and infeasible prompts fail fast at
    // the head); under chaos, capacity can be gone for the rest of the
    // run — whatever is still queued is shed as starved, so no request
    // is ever lost.
    while (disp.queueDepth() > 0) {
        const QueuedJob job = disp.pop();
        RequestOutcome &out = rep.outcomes[job.req.id];
        out.status = RequestStatus::ShedStarved;
        out.finish_ms = horizon;
        ++rep.shed_starved;
    }

    for (size_t a = 0; a < n; ++a) {
        if (dev[a].down_since >= 0.0)
            rep.devices[a].down_intervals.push_back(
                {dev[a].down_since,
                 std::max(horizon, dev[a].down_since)});
        rep.devices[a].breaker_trips = disp.breakerTrips(a);
        gen.quarantined_pages += dev[a].alloc->quarantinedPages();
    }

    std::sort(recoveries_ms.begin(), recoveries_ms.end());
    gen.recovery_p50_ms = percentileSorted(recoveries_ms, 0.50);
    gen.recovery_p95_ms = percentileSorted(recoveries_ms, 0.95);
    gen.recovery_max_ms =
        recoveries_ms.empty() ? 0.0 : recoveries_ms.back();

    // Every departed transfer landed (the heap only drains once all
    // Migration events have been handled) — no sequence is ever lost
    // in flight.
    DOTA_ASSERT(migrating.empty(), "{} migrations still in flight",
                migrating.size());
    std::sort(migration_ms.begin(), migration_ms.end());
    gen.migration_p50_ms = percentileSorted(migration_ms, 0.50);
    gen.migration_p95_ms = percentileSorted(migration_ms, 0.95);
    gen.migration_max_ms =
        migration_ms.empty() ? 0.0 : migration_ms.back();

    gen.kv_peak_occupancy =
        gen.kv_pages_total > 0
            ? double(gen.kv_peak_pages) / double(gen.kv_pages_total)
            : 0.0;

    std::sort(latencies.begin(), latencies.end());
    std::sort(ttfts.begin(), ttfts.end());
    std::sort(tpots.begin(), tpots.end());
    rep.p50_ms = percentileSorted(latencies, 0.50);
    rep.p95_ms = percentileSorted(latencies, 0.95);
    rep.p99_ms = percentileSorted(latencies, 0.99);
    gen.ttft_p50_ms = percentileSorted(ttfts, 0.50);
    gen.ttft_p95_ms = percentileSorted(ttfts, 0.95);
    gen.ttft_p99_ms = percentileSorted(ttfts, 0.99);
    gen.tpot_p50_ms = percentileSorted(tpots, 0.50);
    gen.tpot_p95_ms = percentileSorted(tpots, 0.95);
    gen.tpot_p99_ms = percentileSorted(tpots, 0.99);
    if (!latencies.empty()) {
        double sum = 0.0;
        for (double l : latencies)
            sum += l;
        rep.mean_latency_ms =
            sum / static_cast<double>(latencies.size());
        rep.max_latency_ms = latencies.back();
    }
    rep.deadline_miss_rate =
        rep.completed > 0 ? static_cast<double>(rep.deadline_misses) /
                                static_cast<double>(rep.completed)
                          : 0.0;
    rep.horizon_ms = horizon;
    rep.goodput_seq_s =
        horizon > 0.0
            ? static_cast<double>(rep.completed - rep.deadline_misses) /
                  (horizon * 1e-3)
            : 0.0;
    rep.mean_retention =
        rep.completed > 0
            ? retention_sum / static_cast<double>(rep.completed)
            : 0.0;
    return rep;
}

} // namespace dota
