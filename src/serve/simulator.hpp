/**
 * @file
 * Deterministic event-driven online serving simulator.
 *
 * Layered on the Device/DeviceRegistry substrate (DESIGN.md §8), the
 * ServingSimulator replays a seeded RequestTrace against a fleet of
 * simulated accelerators under a FaultInjector's chaos schedule, with
 * the RobustDispatcher's failover/retry/shedding/degradation policy:
 *
 *  - Virtual time. A serial min-heap event loop (arrival, completion,
 *    fault, retry-timer and breaker-probe events, ordered by time with
 *    an insertion sequence number as the tie-break) advances a double
 *    millisecond clock. No wall-clock anywhere.
 *  - Faults. Fail-stop deaths kill in-flight work (failover re-queues
 *    it on the survivors), revivals restore capacity, straggler
 *    intervals multiply the service time of attempts dispatched inside
 *    them, and transient errors fail individual attempts.
 *  - Robustness. Per-attempt timeout, capped exponential-backoff
 *    retries, consecutive-failure circuit breakers with cooldown, a
 *    bounded admission queue with depth- and age-based shedding.
 *  - Graceful degradation. Under queue pressure, DOTA slots downshift
 *    the detector retention ladder (Full -> Conservative -> Aggressive)
 *    — trading the accuracy proxy (retention) for service time, the
 *    knob the DOTA detector uniquely provides. The retention actually
 *    served is recorded per request.
 *
 * Determinism contract: the event loop is serial and all randomness is
 *  drawn from the two explicit seeds (arrival seed inside the trace,
 * fault seed passed to run()); only the (device, level, length) cost
 * cache is warmed in parallel, with a fixed-order merge — so the
 * ServeReport is bit-identical at every DOTA_THREADS.
 */
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "device/fleet.hpp"
#include "serve/dispatcher.hpp"
#include "serve/fault.hpp"
#include "serve/report.hpp"
#include "serve/trace.hpp"

namespace dota {

/** Fleet + policy of a serving deployment. */
struct ServeConfig
{
    /**
     * Fleet description (same DeviceSpec bins as FleetConfig). When
     * empty, `accelerators` DOTA devices of `mode` are built.
     */
    std::vector<DeviceSpec> devices;
    size_t accelerators = 4;
    DotaMode mode = DotaMode::Full;
    DeviceOptions options = DeviceOptions::table2();

    ServePolicy policy;
};

/** Online serving simulator over a fleet of registered devices. */
class ServingSimulator
{
  public:
    ServingSimulator(ServeConfig cfg, const Benchmark &bench);

    /**
     * Replay @p trace under @p plan. All random fault draws come from
     * @p fault_seed; the arrival randomness is already frozen inside
     * the trace. Deterministic: same (trace, plan, fault_seed) =>
     * bit-identical ServeReport at any thread count.
     */
    ServeReport run(const RequestTrace &trace, const FaultPlan &plan,
                    uint64_t fault_seed = 0x5eedfa017ULL) const;

    /** Convenience overload: no faults. */
    ServeReport
    run(const RequestTrace &trace) const
    {
        return run(trace, FaultPlan{});
    }

    size_t size() const { return slots_.size(); }

    /** Ladder depth of slot @p accel (1 for non-DOTA devices). */
    size_t ladderDepth(size_t accel) const;

    /** Device name of slot @p accel at ladder @p level (clamped). */
    std::string deviceName(size_t accel, size_t level) const;

    /** Retention proxy served by slot @p accel at @p level (clamped). */
    double retention(size_t accel, size_t level) const;

    /**
     * Service time of @p seq_len on @p accel at @p level, including the
     * slot speed but not fault slowdown (cached, thread-safe).
     */
    double serviceMs(size_t accel, size_t level, size_t seq_len) const;

    /** Pre-evaluate every (group, level, length) cost in parallel. */
    void warmCostCache(const std::vector<size_t> &seq_lens) const;

  private:
    /**
     * One fleet slot: the configured device plus its degradation
     * variants (DOTA modes of decreasing retention). variants[0] is
     * the native device; deeper levels only exist for DOTA slots.
     */
    struct Slot
    {
        std::vector<std::unique_ptr<Device>> variants;
        std::vector<double> retention; ///< per variant
        double speed = 1.0;
        size_t group = 0; ///< cost-cache group (clones share)
    };

    struct Cost
    {
        double ms = 0.0;
        double energy_j = 0.0;
    };

    /** Unscaled cost of (cache group, ladder level, length). */
    Cost groupCost(size_t group, size_t level, size_t seq_len) const;

    Benchmark bench_;
    ServePolicy policy_;
    std::vector<Slot> slots_;
    size_t groups_ = 0;
    size_t max_ladder_ = 1;
    mutable std::mutex cache_mu_;
    mutable std::map<std::tuple<size_t, size_t, size_t>, Cost>
        cost_cache_;
};

} // namespace dota
