/**
 * @file
 * Paged KV-cache allocator implementation.
 */
#include "serve/kv_cache.hpp"

#include "common/logging.hpp"

namespace dota {

PagedKvAllocator::PagedKvAllocator(KvCacheConfig cfg) : cfg_(cfg)
{
    DOTA_ASSERT(cfg_.page_tokens >= 1, "page needs at least one token");
    DOTA_ASSERT(cfg_.bytes_per_token >= 1,
                "KV bytes per token must be positive");
    total_pages_ = cfg_.budget_bytes / pageBytes();
    DOTA_ASSERT(total_pages_ >= 1,
                "KV budget {} B holds no page of {} B",
                cfg_.budget_bytes, pageBytes());
    for (size_t p = 0; p < total_pages_; ++p)
        free_.insert(static_cast<uint32_t>(p));
}

bool
PagedKvAllocator::canFit(size_t tokens) const
{
    return pagesFor(tokens) <= free_.size();
}

bool
PagedKvAllocator::createSeq(uint64_t seq_id)
{
    return seqs_.emplace(seq_id, Seq{}).second;
}

uint32_t
PagedKvAllocator::allocPage()
{
    DOTA_ASSERT(!free_.empty(), "allocPage on an exhausted arena");
    const uint32_t page = *free_.begin(); // lowest id: deterministic
    free_.erase(free_.begin());
    return page;
}

void
PagedKvAllocator::releasePage(uint32_t page)
{
    const bool inserted = free_.insert(page).second;
    DOTA_ASSERT(inserted, "double free of KV page {}", page);
}

void
PagedKvAllocator::notePeak()
{
    peak_used_pages_ = std::max(peak_used_pages_, usedPages());
}

bool
PagedKvAllocator::appendTokens(uint64_t seq_id, size_t tokens)
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "appendTokens: unknown sequence {}",
                seq_id);
    Seq &seq = it->second;
    const size_t want = pagesFor(seq.tokens + tokens);
    DOTA_ASSERT(want >= seq.pages.size(),
                "page table longer than its token count needs");
    const size_t grow = want - seq.pages.size();
    if (grow > free_.size())
        return false; // all-or-nothing: nothing allocated on OOM
    for (size_t p = 0; p < grow; ++p)
        seq.pages.push_back(allocPage());
    seq.tokens += tokens;
    notePeak();
    return true;
}

size_t
PagedKvAllocator::shrinkTo(uint64_t seq_id, size_t tokens)
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "shrinkTo: unknown sequence {}",
                seq_id);
    Seq &seq = it->second;
    if (tokens >= seq.tokens)
        return 0;
    const size_t keep_pages = pagesFor(tokens);
    size_t freed = 0;
    while (seq.pages.size() > keep_pages) {
        releasePage(seq.pages.back());
        seq.pages.pop_back();
        ++freed;
    }
    seq.tokens = tokens;
    return freed;
}

void
PagedKvAllocator::freeSeq(uint64_t seq_id)
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "freeSeq: unknown sequence {}",
                seq_id);
    for (uint32_t page : it->second.pages)
        releasePage(page);
    seqs_.erase(it);
}

size_t
PagedKvAllocator::seqTokens(uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "seqTokens: unknown sequence {}",
                seq_id);
    return it->second.tokens;
}

const std::vector<uint32_t> &
PagedKvAllocator::pageTable(uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "pageTable: unknown sequence {}",
                seq_id);
    return it->second.pages;
}

std::pair<uint32_t, uint32_t>
PagedKvAllocator::lookup(uint64_t seq_id, size_t index) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "lookup: unknown sequence {}",
                seq_id);
    DOTA_ASSERT(index < it->second.tokens,
                "lookup index {} past sequence length {}", index,
                it->second.tokens);
    return {it->second.pages[index / cfg_.page_tokens],
            static_cast<uint32_t>(index % cfg_.page_tokens)};
}

} // namespace dota
