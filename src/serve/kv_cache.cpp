/**
 * @file
 * Paged KV-cache allocator implementation.
 */
#include "serve/kv_cache.hpp"

#include "common/crc32.hpp"
#include "common/logging.hpp"

namespace dota {

std::string
kvCorruptionName(KvCorruption mode)
{
    switch (mode) {
      case KvCorruption::BitFlip:
        return "bit-flip";
      case KvCorruption::ZeroPage:
        return "zero-page";
      case KvCorruption::TornWrite:
        return "torn-write";
    }
    DOTA_PANIC("unknown KV corruption mode");
}

namespace {

/** SplitMix64 finalizer: spreads the write epoch into a payload. */
uint64_t
mixPayload(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

uint32_t
sealOf(uint64_t payload)
{
    return crc32(&payload, sizeof payload);
}

} // namespace

PagedKvAllocator::PagedKvAllocator(KvCacheConfig cfg) : cfg_(cfg)
{
    DOTA_ASSERT(cfg_.page_tokens >= 1, "page needs at least one token");
    DOTA_ASSERT(cfg_.bytes_per_token >= 1,
                "KV bytes per token must be positive");
    total_pages_ = cfg_.budget_bytes / pageBytes();
    DOTA_ASSERT(total_pages_ >= 1,
                "KV budget {} B holds no page of {} B",
                cfg_.budget_bytes, pageBytes());
    for (size_t p = 0; p < total_pages_; ++p)
        free_.insert(static_cast<uint32_t>(p));
    pages_.resize(total_pages_);
}

void
PagedKvAllocator::stampPage(uint32_t page)
{
    Page &pg = pages_[page];
    pg.payload = mixPayload(++write_epoch_ +
                            (static_cast<uint64_t>(page) << 40));
    pg.seal = sealOf(pg.payload);
}

bool
PagedKvAllocator::canFit(size_t tokens) const
{
    return pagesFor(tokens) <= free_.size();
}

bool
PagedKvAllocator::createSeq(uint64_t seq_id)
{
    return seqs_.emplace(seq_id, Seq{}).second;
}

uint32_t
PagedKvAllocator::allocPage()
{
    DOTA_ASSERT(!free_.empty(), "allocPage on an exhausted arena");
    const uint32_t page = *free_.begin(); // lowest id: deterministic
    free_.erase(free_.begin());
    return page;
}

void
PagedKvAllocator::releasePage(uint32_t page)
{
    const bool inserted = free_.insert(page).second;
    DOTA_ASSERT(inserted, "double free of KV page {}", page);
}

void
PagedKvAllocator::notePeak()
{
    peak_used_pages_ = std::max(peak_used_pages_, usedPages());
}

bool
PagedKvAllocator::appendTokens(uint64_t seq_id, size_t tokens)
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "appendTokens: unknown sequence {}",
                seq_id);
    Seq &seq = it->second;
    const size_t want = pagesFor(seq.tokens + tokens);
    DOTA_ASSERT(want >= seq.pages.size(),
                "page table longer than its token count needs");
    const size_t grow = want - seq.pages.size();
    if (grow > free_.size())
        return false; // all-or-nothing: nothing allocated on OOM
    // The former last page takes new token slots too: its contents
    // change, so it is re-stamped and re-sealed like the fresh pages.
    if (tokens > 0 && !seq.pages.empty() &&
        seq.tokens % cfg_.page_tokens != 0)
        stampPage(seq.pages.back());
    for (size_t p = 0; p < grow; ++p) {
        seq.pages.push_back(allocPage());
        stampPage(seq.pages.back());
    }
    seq.tokens += tokens;
    notePeak();
    return true;
}

size_t
PagedKvAllocator::shrinkTo(uint64_t seq_id, size_t tokens)
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "shrinkTo: unknown sequence {}",
                seq_id);
    Seq &seq = it->second;
    if (tokens >= seq.tokens)
        return 0;
    const size_t keep_pages = pagesFor(tokens);
    size_t freed = 0;
    while (seq.pages.size() > keep_pages) {
        releasePage(seq.pages.back());
        seq.pages.pop_back();
        ++freed;
    }
    seq.tokens = tokens;
    // Eviction compacts the survivors to the prefix — every surviving
    // page is rewritten, so each gets a fresh stamp and seal.
    for (uint32_t page : seq.pages)
        stampPage(page);
    return freed;
}

void
PagedKvAllocator::freeSeq(uint64_t seq_id)
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "freeSeq: unknown sequence {}",
                seq_id);
    for (uint32_t page : it->second.pages)
        releasePage(page);
    seqs_.erase(it);
}

size_t
PagedKvAllocator::seqTokens(uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "seqTokens: unknown sequence {}",
                seq_id);
    return it->second.tokens;
}

const std::vector<uint32_t> &
PagedKvAllocator::pageTable(uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "pageTable: unknown sequence {}",
                seq_id);
    return it->second.pages;
}

std::pair<uint32_t, uint32_t>
PagedKvAllocator::lookup(uint64_t seq_id, size_t index) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "lookup: unknown sequence {}",
                seq_id);
    DOTA_ASSERT(index < it->second.tokens,
                "lookup index {} past sequence length {}", index,
                it->second.tokens);
    return {it->second.pages[index / cfg_.page_tokens],
            static_cast<uint32_t>(index % cfg_.page_tokens)};
}

std::vector<uint32_t>
PagedKvAllocator::usedPageList() const
{
    std::vector<uint32_t> used;
    used.reserve(usedPages());
    for (size_t p = 0; p < total_pages_; ++p) {
        const uint32_t page = static_cast<uint32_t>(p);
        if (free_.count(page) == 0 && quarantined_.count(page) == 0)
            used.push_back(page);
    }
    return used;
}

void
PagedKvAllocator::corruptPage(uint32_t page, KvCorruption mode)
{
    DOTA_ASSERT(page < total_pages_, "corruptPage: page {} out of "
                "range",
                page);
    DOTA_ASSERT(free_.count(page) == 0 && quarantined_.count(page) == 0,
                "corruptPage: page {} is not in use", page);
    Page &pg = pages_[page];
    switch (mode) {
      case KvCorruption::BitFlip:
        // CRC32 detects every single-bit error by construction.
        pg.payload ^= 1ull << (page % 64);
        break;
      case KvCorruption::ZeroPage:
        pg.payload = 0;
        break;
      case KvCorruption::TornWrite:
        // New data landed but the seal write never completed.
        pg.payload = mixPayload(pg.payload);
        break;
    }
    // ZeroPage/TornWrite replace the payload wholesale; guard the
    // astronomically unlikely (but deterministic) CRC collision so
    // "corrupted implies detected" is an invariant, not a probability.
    while (sealOf(pg.payload) == pg.seal)
        pg.payload ^= 1;
}

bool
PagedKvAllocator::verifyPage(uint32_t page) const
{
    DOTA_ASSERT(page < total_pages_, "verifyPage: page {} out of "
                "range",
                page);
    const Page &pg = pages_[page];
    return sealOf(pg.payload) == pg.seal;
}

size_t
PagedKvAllocator::verifySeq(uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "verifySeq: unknown sequence {}",
                seq_id);
    size_t corrupt = 0;
    for (uint32_t page : it->second.pages)
        if (!verifyPage(page))
            ++corrupt;
    return corrupt;
}

KvSeqExport
PagedKvAllocator::exportSeq(uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "exportSeq: unknown sequence {}",
                seq_id);
    KvSeqExport exp;
    exp.seq_id = seq_id;
    exp.tokens = it->second.tokens;
    exp.pages.reserve(it->second.pages.size());
    for (uint32_t page : it->second.pages) {
        const Page &pg = pages_[page];
        exp.pages.push_back({pg.payload, pg.seal});
    }
    return exp;
}

size_t
PagedKvAllocator::verifyExport(const KvSeqExport &exp)
{
    size_t corrupt = 0;
    for (const KvPageImage &img : exp.pages)
        if (sealOf(img.payload) != img.seal)
            ++corrupt;
    return corrupt;
}

bool
PagedKvAllocator::importSeq(const KvSeqExport &exp)
{
    DOTA_ASSERT(exp.pages.size() == pagesFor(exp.tokens),
                "importSeq: {} pages cannot back {} tokens at {} "
                "tokens/page",
                exp.pages.size(), exp.tokens, cfg_.page_tokens);
    if (seqs_.count(exp.seq_id) != 0)
        return false;
    if (exp.pages.size() > free_.size())
        return false; // all-or-nothing: nothing allocated
    if (verifyExport(exp) != 0)
        return false; // poisoned in transit: refuse the whole sequence
    Seq seq;
    seq.tokens = exp.tokens;
    seq.pages.reserve(exp.pages.size());
    for (const KvPageImage &img : exp.pages) {
        const uint32_t page = allocPage();
        pages_[page].payload = img.payload;
        pages_[page].seal = img.seal;
        seq.pages.push_back(page);
    }
    seqs_.emplace(exp.seq_id, std::move(seq));
    notePeak();
    return true;
}

size_t
PagedKvAllocator::quarantineSeq(uint64_t seq_id)
{
    auto it = seqs_.find(seq_id);
    DOTA_ASSERT(it != seqs_.end(), "quarantineSeq: unknown sequence {}",
                seq_id);
    size_t quarantined = 0;
    for (uint32_t page : it->second.pages) {
        if (verifyPage(page)) {
            releasePage(page);
        } else {
            const bool inserted = quarantined_.insert(page).second;
            DOTA_ASSERT(inserted, "page {} quarantined twice", page);
            ++quarantined;
        }
    }
    seqs_.erase(it);
    return quarantined;
}

} // namespace dota
