/**
 * @file
 * Robust dispatch policy for the online serving simulator: bounded
 * admission with load shedding, per-request timeout and capped
 * exponential-backoff retries, per-device consecutive-failure circuit
 * breakers, and the graceful-degradation ladder trigger.
 *
 * The RobustDispatcher is the policy brain; the ServingSimulator
 * (simulator.hpp) owns virtual time and calls into it from the serial
 * event loop, so all dispatcher state transitions happen in a single
 * deterministic order regardless of DOTA_THREADS.
 */
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "serve/trace.hpp"

namespace dota {

/** Robustness and degradation knobs of a serving run. */
struct ServePolicy
{
    /** Per-attempt service timeout; 0 disables timeouts. */
    double timeout_ms = 0.0;

    /** Additional attempts after the first (0 = no retries). */
    size_t max_retries = 3;

    /** Retry backoff: min(backoff_cap_ms, backoff_ms * 2^(attempt-1)). */
    double backoff_ms = 2.0;
    double backoff_cap_ms = 64.0;

    /** Consecutive failures on one device that open its breaker. */
    size_t breaker_threshold = 3;

    /** How long an open breaker keeps the device unschedulable. */
    double breaker_cooldown_ms = 250.0;

    /** Admission-queue depth bound; arrivals beyond it are shed
     * (0 = unbounded). Retries and failovers are always re-admitted. */
    size_t queue_limit = 256;

    /** Shed queued requests older than this at dispatch time (0 = off). */
    double max_queue_age_ms = 0.0;

    /**
     * Graceful degradation: when the queue holds at least
     * degrade_depth_1 (resp. _2) requests per alive device, dispatch at
     * ladder level 1 (resp. 2) — trading detector retention (accuracy)
     * for latency. Only DOTA devices can downshift; see simulator.hpp.
     */
    bool degradation = true;
    double degrade_depth_1 = 4.0;
    double degrade_depth_2 = 8.0;
};

/** A request waiting in the admission queue (with retry state). */
struct QueuedJob
{
    Request req;
    size_t attempts = 0; ///< dispatch attempts consumed so far
};

/**
 * Policy state machine: admission queue ordered by (arrival, id),
 * per-device circuit breakers, backoff schedule and degradation level.
 */
class RobustDispatcher
{
  public:
    RobustDispatcher(ServePolicy policy, size_t n_devices);

    const ServePolicy &policy() const { return policy_; }

    /**
     * Admit @p job to the queue. New arrivals respect the queue bound
     * and return false when shed; retries and failovers (@p forced)
     * are always admitted so no in-flight request is silently lost.
     */
    bool admit(const QueuedJob &job, bool forced);

    /** Oldest queued job, if any (does not pop). */
    std::optional<QueuedJob> peek() const;

    /** Pop the oldest queued job. */
    QueuedJob pop();

    size_t queueDepth() const { return queue_.size(); }

    /** True when @p job has waited past max_queue_age_ms at @p now. */
    bool expired(const QueuedJob &job, double now) const;

    /** Whether @p device is schedulable breaker-wise at @p now. */
    bool breakerOpen(size_t device, double now) const;

    /** When the breaker of @p device re-closes (0 if closed). */
    double breakerOpenUntil(size_t device) const;

    /** Record a successful attempt on @p device. */
    void onSuccess(size_t device);

    /**
     * Record a failed attempt on @p device at @p now. Returns true when
     * this failure trips the breaker (device enters cooldown).
     */
    bool onFailure(size_t device, double now);

    /** Breaker trips recorded for @p device so far. */
    size_t breakerTrips(size_t device) const;

    /** Capped exponential backoff before retry @p attempt (1-based). */
    double backoffMs(size_t attempt) const;

    /**
     * Degradation ladder level for the current pressure: queued
     * requests per alive device against the degrade_depth thresholds.
     */
    size_t degradeLevel(size_t queued, size_t alive) const;

  private:
    struct Health
    {
        size_t consecutive_failures = 0;
        double open_until = 0.0;
        size_t trips = 0;
    };

    ServePolicy policy_;
    std::vector<Health> health_;
    /** (arrival_ms, id) -> job; ids are unique so keys never collide. */
    std::map<std::pair<double, size_t>, QueuedJob> queue_;
};

} // namespace dota
