/**
 * @file
 * Implementation of the synthetic tasks.
 */
#include "workloads/synthetic_task.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace dota {

SyntheticTask::SyntheticTask(TaskConfig cfg) : cfg_(cfg)
{
    DOTA_ASSERT(cfg_.in_dim >= 4, "task needs at least 4 feature dims");
    if (cfg_.kind == TaskKind::Match)
        cfg_.classes = 2;
    Rng proto_rng(cfg_.seed);
    // Prototypes occupy dims [1, in_dim); dim 0 is the signal marker.
    const size_t payload = cfg_.in_dim - 1;
    const size_t protos =
        cfg_.kind == TaskKind::Match ? 8 : cfg_.classes;
    prototypes_ = Matrix::randomNormal(protos, payload, proto_rng);
    // Normalize prototypes to unit norm so tasks are equally hard across
    // dimensions.
    for (size_t r = 0; r < prototypes_.rows(); ++r) {
        double norm = 0.0;
        for (size_t c = 0; c < payload; ++c)
            norm += static_cast<double>(prototypes_(r, c)) *
                    prototypes_(r, c);
        norm = std::sqrt(std::max(norm, 1e-12));
        for (size_t c = 0; c < payload; ++c)
            prototypes_(r, c) =
                static_cast<float>(prototypes_(r, c) / norm);
    }
}

size_t
SyntheticTask::numClasses() const
{
    return cfg_.classes;
}

std::vector<size_t>
SyntheticTask::placeSignals(size_t region_begin, size_t region_end,
                            size_t count, Rng &rng) const
{
    const size_t span = region_end - region_begin;
    count = std::min(count, span);
    std::vector<size_t> positions;
    if (rng.uniform() < cfg_.locality && span > count) {
        // Clustered: contiguous-ish window around a random center.
        const size_t window = std::min(span, count * 3);
        const size_t start = region_begin +
            static_cast<size_t>(rng.uniformInt(span - window + 1));
        auto offs = rng.sampleWithoutReplacement(window, count);
        positions.reserve(count);
        for (size_t o : offs)
            positions.push_back(start + o);
    } else {
        auto offs = rng.sampleWithoutReplacement(span, count);
        positions.reserve(count);
        for (size_t o : offs)
            positions.push_back(region_begin + o);
    }
    std::sort(positions.begin(), positions.end());
    return positions;
}

void
SyntheticTask::writeSignal(Matrix &features, size_t pos, size_t proto,
                           Rng &rng) const
{
    features(pos, 0) = static_cast<float>(cfg_.signal_strength);
    for (size_t c = 1; c < cfg_.in_dim; ++c)
        features(pos, c) = static_cast<float>(
            cfg_.signal_strength * prototypes_(proto, c - 1) +
            0.25 * cfg_.noise_std * rng.normal());
}

Sample
SyntheticTask::sample(Rng &rng) const
{
    Sample s;
    s.features = Matrix(cfg_.seq_len, cfg_.in_dim);
    // Noise background.
    for (size_t i = 0; i < s.features.size(); ++i)
        s.features.data()[i] =
            static_cast<float>(cfg_.noise_std * rng.normal());
    // Background tokens carry no marker.
    for (size_t i = 0; i < cfg_.seq_len; ++i)
        s.features(i, 0) = 0.0f;

    last_signal_.clear();
    if (cfg_.kind == TaskKind::Prototype) {
        const auto label = static_cast<size_t>(
            rng.uniformInt(cfg_.classes));
        const auto pos =
            placeSignals(0, cfg_.seq_len, cfg_.signal_count, rng);
        for (size_t p : pos)
            writeSignal(s.features, p, label, rng);
        last_signal_ = pos;
        s.label = static_cast<int>(label);
        if (cfg_.label_noise > 0.0 && rng.bernoulli(cfg_.label_noise))
            s.label = static_cast<int>(rng.uniformInt(cfg_.classes));
    } else { // Match
        const size_t half = cfg_.seq_len / 2;
        const bool match = rng.bernoulli(0.5);
        const auto pa = static_cast<size_t>(
            rng.uniformInt(prototypes_.rows()));
        size_t pb = pa;
        if (!match) {
            do {
                pb = static_cast<size_t>(
                    rng.uniformInt(prototypes_.rows()));
            } while (pb == pa);
        }
        const auto pos_a = placeSignals(0, half, cfg_.signal_count, rng);
        const auto pos_b =
            placeSignals(half, cfg_.seq_len, cfg_.signal_count, rng);
        for (size_t p : pos_a)
            writeSignal(s.features, p, pa, rng);
        for (size_t p : pos_b)
            writeSignal(s.features, p, pb, rng);
        last_signal_ = pos_a;
        last_signal_.insert(last_signal_.end(), pos_b.begin(),
                            pos_b.end());
        s.label = match ? 1 : 0;
        if (cfg_.label_noise > 0.0 && rng.bernoulli(cfg_.label_noise))
            s.label = static_cast<int>(rng.uniformInt(2));
    }
    return s;
}

std::vector<Sample>
SyntheticTask::batch(size_t count, Rng &rng) const
{
    std::vector<Sample> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(sample(rng));
    return out;
}

SyntheticGrammar::SyntheticGrammar(GrammarConfig cfg) : cfg_(cfg)
{
    DOTA_ASSERT(cfg_.vocab >= backbone_ + 2,
                "vocab {} too small for grammar", cfg_.vocab);
    // Sparse-ish random Markov backbone: each state prefers ~4 successors.
    Rng rng(cfg_.seed);
    cdf_.assign(backbone_, std::vector<double>(backbone_, 0.0));
    for (size_t s = 0; s < backbone_; ++s) {
        std::vector<double> w(backbone_, 0.01);
        for (int j = 0; j < 4; ++j)
            w[rng.uniformInt(backbone_)] += 1.0;
        double total = 0.0;
        for (double v : w)
            total += v;
        double acc = 0.0;
        for (size_t j = 0; j < backbone_; ++j) {
            acc += w[j] / total;
            cdf_[s][j] = acc;
        }
    }
}

std::vector<int>
SyntheticGrammar::sample(Rng &rng) const
{
    // Token layout: 0 = trigger, [1, 1+backbone) = backbone states,
    // the rest of the vocab appears as rare "payload" tokens copied
    // across triggers.
    std::vector<int> seq;
    seq.reserve(cfg_.seq_len);
    size_t state = static_cast<size_t>(rng.uniformInt(backbone_));
    int pending_copy = -1; // token that followed the previous trigger
    size_t since_trigger = 0;
    while (seq.size() < cfg_.seq_len) {
        const bool fire =
            since_trigger >= 4 &&
            rng.bernoulli(1.0 / static_cast<double>(cfg_.period));
        if (fire && seq.size() + 2 <= cfg_.seq_len) {
            seq.push_back(triggerToken());
            int payload;
            if (pending_copy >= 0) {
                payload = pending_copy; // long-range copy dependency
            } else {
                payload = static_cast<int>(
                    1 + backbone_ +
                    rng.uniformInt(cfg_.vocab - 1 - backbone_));
                pending_copy = payload;
            }
            seq.push_back(payload);
            since_trigger = 0;
            continue;
        }
        // Backbone step.
        const double u = rng.uniform();
        size_t next = 0;
        while (next + 1 < backbone_ && cdf_[state][next] < u)
            ++next;
        state = next;
        seq.push_back(static_cast<int>(1 + state));
        ++since_trigger;
    }
    return seq;
}

} // namespace dota
