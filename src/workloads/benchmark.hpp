/**
 * @file
 * The paper's five evaluation benchmarks (Section 5.1) as configuration
 * objects: QA (BERT-large / SQuAD, n=384), Image (LRA CIFAR10, n=1K),
 * Text (LRA IMDb, n=2K), Retrieval (LRA AAN, n=4K) and LM (GPT-2 /
 * WikiText-103, n=4K).
 *
 * Each benchmark carries two model descriptions:
 *  - paper_shape: the full-size model the paper ran, used by the
 *    performance/energy simulators (cycle counts need shapes, not
 *    weights);
 *  - tiny: a trainable proxy configuration used by the accuracy
 *    experiments (see DESIGN.md §1 for the substitution rationale).
 */
#pragma once

#include <string>
#include <vector>

#include "nn/transformer.hpp"
#include "workloads/synthetic_task.hpp"

namespace dota {

/** Identifier for the five paper benchmarks. */
enum class BenchmarkId { QA, Image, Text, Retrieval, LM };

/** Architecture of a full-size transformer, for the simulators. */
struct ModelShape
{
    size_t layers = 0;
    size_t dim = 0;     ///< model dimension d
    size_t heads = 0;
    size_t ffn_dim = 0; ///< FFN hidden dimension
    size_t seq_len = 0; ///< evaluation sequence length n
    bool decoder = false;

    size_t headDim() const { return dim / heads; }

    /** MACs of the three encoder stages for one layer (dense attention). */
    uint64_t linearMacs() const;    ///< QKV + output projection
    uint64_t attentionMacs() const; ///< QK^T and A*V, dense
    uint64_t ffnMacs() const;       ///< the two FC layers

    /** Dense MACs of the whole model (all layers). */
    uint64_t totalMacs() const;
};

/** One paper benchmark. */
struct Benchmark
{
    BenchmarkId id;
    std::string name;        ///< "QA", "Image", ...
    std::string description; ///< dataset/model the paper used
    ModelShape paper_shape;
    bool perplexity = false; ///< metric is perplexity (lower better)

    /** Retention ratios for the two operating points of Section 5.3. */
    double retention_conservative = 0.1; ///< DOTA-C (<0.5% degradation)
    double retention_aggressive = 0.05;  ///< DOTA-A (<1.5% degradation)

    /** Trainable proxy for the accuracy experiments. */
    TransformerConfig tiny;
    size_t tiny_seq = 128; ///< proxy sequence length

    /**
     * Per-benchmark detector rank factor (Section 5.5: "each benchmark
     * can use its own optimal sigma"). Retrieval's cross-document
     * matching attention is higher-rank and needs a larger sigma.
     */
    double tiny_sigma = 0.5;
};

/** All five benchmarks in paper order. */
const std::vector<Benchmark> &allBenchmarks();

/** Lookup a single benchmark. */
const Benchmark &benchmark(BenchmarkId id);

/** Benchmark by name ("QA", "Image", ...); fatal() on unknown. */
const Benchmark &benchmarkByName(const std::string &name);

/**
 * Synthetic proxy task for a classification benchmark (the stand-in
 * for SQuAD/LRA data, DESIGN.md §1): locality/kind mirror the
 * benchmark's attention structure. Not valid for LM — use
 * proxyGrammarFor.
 */
TaskConfig proxyTaskFor(const Benchmark &b);

/** Synthetic grammar for the LM benchmark's training stream. */
GrammarConfig proxyGrammarFor(const Benchmark &b);

} // namespace dota
