/**
 * @file
 * Synthetic attention-mask generation at paper-scale sequence lengths.
 *
 * The performance and energy experiments (Figures 12/13/15) need detected
 * attention graphs for n up to 4096 — too large to obtain by training
 * full-size models offline. Section 4.3 of the paper describes the two
 * structural properties of real attention graphs the dataflow exploits:
 * a few *important tokens* attended by many queries (shared/hub columns)
 * and *windowed locality* around the diagonal. This module generates
 * row-balanced sparse masks with those properties, with per-benchmark
 * profiles; the test suite cross-checks the synthetic statistics against
 * masks harvested from our trained tiny models.
 */
#pragma once

#include "common/rng.hpp"
#include "tensor/sparse_mask.hpp"
#include "workloads/benchmark.hpp"

namespace dota {

/** Structural profile of a detected attention graph. */
struct MaskProfile
{
    double retention = 0.1;  ///< per-row keep fraction (row-balanced)
    double frac_local = 0.4; ///< fraction of keys inside the local window
    double frac_hub = 0.3;   ///< fraction of keys on shared hub columns
    size_t window = 32;      ///< half-width of the local window
    size_t hub_count = 16;   ///< number of hub columns
    double hub_zipf = 1.1;   ///< hub popularity skew (Zipf exponent)
};

/**
 * Generate a row-balanced sparse mask with the given profile.
 *
 * @param n       sequence length (mask is n x n)
 * @param profile structural knobs
 * @param rng     randomness stream
 * @param causal  restrict row i to columns [0, i] (decoder)
 */
SparseMask synthesizeMask(size_t n, const MaskProfile &profile, Rng &rng,
                          bool causal = false);

/** Calibrated profile for one paper benchmark at a given retention. */
MaskProfile profileFor(BenchmarkId id, double retention);

/** Measured structural statistics of a mask (used for calibration). */
struct MaskStats
{
    double density = 0.0;         ///< nnz / n^2
    double local_fraction = 0.0;  ///< keys within `window` of the diagonal
    double top_column_share = 0.0;///< share of nnz on the hottest 1% cols
    double group_reuse = 0.0;     ///< mean (sum of row sizes) / (distinct
                                  ///< keys) over groups of `group` rows
};

/** Measure the statistics of @p mask (window/group as in Section 4.3). */
MaskStats measureMask(const SparseMask &mask, size_t window = 32,
                      size_t group = 4);

} // namespace dota
