/**
 * @file
 * Training and evaluation loops for the synthetic-task models.
 *
 * The trainers implement the paper's two-phase recipe: pre-train a dense
 * model, then "model adaptation" — continue training with the detector
 * hook installed so the model adapts to sparse attention while the
 * detector's parameters (passed in as extra parameters) are jointly
 * optimized (Section 3.2).
 *
 * Batch execution is parallel (common/thread_pool.hpp, DOTA_THREADS):
 * samples are drawn serially from the data stream, forward/backward runs
 * on weight-synchronized model replicas (one per pool slot), and the
 * per-sample gradients are reduced into the optimizer in **fixed batch
 * order**. Training is therefore bit-identical run-to-run for a given
 * seed at every thread count. Models with an installed attention hook or
 * jointly-trained extra parameters are not replicable and keep today's
 * serial batch loop (with the same fixed-order reduction, so their
 * numerics are thread-count independent too).
 *
 * Crash safety (src/train/): with TrainConfig::checkpoint configured the
 * loop periodically writes atomic, checksummed full-state checkpoints
 * (params + Adam moments + data-RNG + loss history + guard counters) and
 * can resume from the newest verifiable one; killing the process at any
 * step and resuming reproduces the uninterrupted trajectory bit-for-bit
 * at any thread count. TrainConfig::guard adds numerical guard rails:
 * non-finite loss/gradient steps are counted and skipped (the optimizer
 * update is withheld) instead of poisoning the weights.
 */
#pragma once

#include <functional>

#include "nn/transformer.hpp"
#include "train/checkpoint.hpp"
#include "train/guardrails.hpp"
#include "workloads/synthetic_task.hpp"

namespace dota {

/** Training-loop configuration. */
struct TrainConfig
{
    size_t steps = 300;        ///< optimizer steps
    size_t batch = 8;          ///< sequences per step (grad accumulation)
    uint64_t data_seed = 123;  ///< training-stream seed
    AdamConfig adam;
    bool verbose = false;
    size_t log_every = 100;

    CheckpointConfig checkpoint; ///< crash-safe checkpointing policy
    GuardRailConfig guard;       ///< numerical guard rails

    /**
     * Simulated preemption for tests: when > 0, train() returns after
     * this many steps have *completed* (checkpoints already on disk
     * stay), as if the process had been killed between steps.
     */
    size_t halt_after_step = 0;
};

/** Evaluation outcome. */
struct EvalResult
{
    double metric = 0.0; ///< accuracy (classifier) or perplexity (LM)
    double loss = 0.0;   ///< mean cross-entropy
};

/** Trainer for TransformerClassifier on a SyntheticTask. */
class ClassifierTrainer
{
  public:
    ClassifierTrainer(TransformerClassifier &model,
                      const SyntheticTask &task, TrainConfig cfg);

    /**
     * Jointly optimize additional parameters (e.g. the Detector's) with
     * the model. Must be called before train().
     */
    void addExtraParams(const std::vector<Parameter *> &params);

    /** Poll called once per step with the step index (for aux losses). */
    void setStepCallback(std::function<void(size_t)> cb)
    {
        step_cb_ = std::move(cb);
    }

    /**
     * Test hook: called after the fixed-order gradient reduction and
     * before the guard-rail check / optimizer update. Used to inject
     * non-finite gradients at chosen steps.
     */
    void setGradCallback(
        std::function<void(size_t, const std::vector<Parameter *> &)> cb)
    {
        grad_cb_ = std::move(cb);
    }

    /** Run the configured number of steps; returns final mean loss. */
    double train();

    /** Mean loss of every step of the most recent train() call. */
    const std::vector<double> &lossHistory() const { return loss_history_; }

    /** Guard-rail counters of the most recent train() call. */
    const GuardRailStats &guardStats() const { return guard_stats_; }

    /** Deterministic held-out evaluation (same seed -> same set). */
    EvalResult evaluate(size_t samples, uint64_t seed = 4242) const;

  private:
    TransformerClassifier &model_;
    const SyntheticTask &task_;
    TrainConfig cfg_;
    std::vector<Parameter *> params_;
    size_t model_param_count_ = 0; ///< params_ prefix owned by the model
    std::function<void(size_t)> step_cb_;
    std::function<void(size_t, const std::vector<Parameter *> &)> grad_cb_;
    std::vector<double> loss_history_;
    GuardRailStats guard_stats_;
};

/** Trainer for CausalLM on a SyntheticGrammar. */
class LMTrainer
{
  public:
    LMTrainer(CausalLM &model, const SyntheticGrammar &grammar,
              TrainConfig cfg);

    void addExtraParams(const std::vector<Parameter *> &params);

    /** Test hook: see ClassifierTrainer::setGradCallback. */
    void setGradCallback(
        std::function<void(size_t, const std::vector<Parameter *> &)> cb)
    {
        grad_cb_ = std::move(cb);
    }

    double train();

    /** Mean loss of every step of the most recent train() call. */
    const std::vector<double> &lossHistory() const { return loss_history_; }

    /** Guard-rail counters of the most recent train() call. */
    const GuardRailStats &guardStats() const { return guard_stats_; }

    /** Perplexity on a deterministic held-out stream. */
    EvalResult evaluate(size_t samples, uint64_t seed = 4242) const;

  private:
    CausalLM &model_;
    const SyntheticGrammar &grammar_;
    TrainConfig cfg_;
    std::vector<Parameter *> params_;
    size_t model_param_count_ = 0; ///< params_ prefix owned by the model
    std::function<void(size_t, const std::vector<Parameter *> &)> grad_cb_;
    std::vector<double> loss_history_;
    GuardRailStats guard_stats_;
};

} // namespace dota
