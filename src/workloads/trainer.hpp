/**
 * @file
 * Training and evaluation loops for the synthetic-task models.
 *
 * The trainers implement the paper's two-phase recipe: pre-train a dense
 * model, then "model adaptation" — continue training with the detector
 * hook installed so the model adapts to sparse attention while the
 * detector's parameters (passed in as extra parameters) are jointly
 * optimized (Section 3.2).
 *
 * Batch execution is parallel (common/thread_pool.hpp, DOTA_THREADS):
 * samples are drawn serially from the data stream, forward/backward runs
 * on weight-synchronized model replicas (one per pool slot), and the
 * per-sample gradients are reduced into the optimizer in **fixed batch
 * order**. Training is therefore bit-identical run-to-run for a given
 * seed at every thread count. Models with an installed attention hook or
 * jointly-trained extra parameters are not replicable and keep today's
 * serial batch loop (with the same fixed-order reduction, so their
 * numerics are thread-count independent too).
 */
#pragma once

#include <functional>

#include "nn/transformer.hpp"
#include "workloads/synthetic_task.hpp"

namespace dota {

/** Training-loop configuration. */
struct TrainConfig
{
    size_t steps = 300;        ///< optimizer steps
    size_t batch = 8;          ///< sequences per step (grad accumulation)
    uint64_t data_seed = 123;  ///< training-stream seed
    AdamConfig adam;
    bool verbose = false;
    size_t log_every = 100;
};

/** Evaluation outcome. */
struct EvalResult
{
    double metric = 0.0; ///< accuracy (classifier) or perplexity (LM)
    double loss = 0.0;   ///< mean cross-entropy
};

/** Trainer for TransformerClassifier on a SyntheticTask. */
class ClassifierTrainer
{
  public:
    ClassifierTrainer(TransformerClassifier &model,
                      const SyntheticTask &task, TrainConfig cfg);

    /**
     * Jointly optimize additional parameters (e.g. the Detector's) with
     * the model. Must be called before train().
     */
    void addExtraParams(const std::vector<Parameter *> &params);

    /** Poll called once per step with the step index (for aux losses). */
    void setStepCallback(std::function<void(size_t)> cb)
    {
        step_cb_ = std::move(cb);
    }

    /** Run the configured number of steps; returns final mean loss. */
    double train();

    /** Mean loss of every step of the most recent train() call. */
    const std::vector<double> &lossHistory() const { return loss_history_; }

    /** Deterministic held-out evaluation (same seed -> same set). */
    EvalResult evaluate(size_t samples, uint64_t seed = 4242) const;

  private:
    TransformerClassifier &model_;
    const SyntheticTask &task_;
    TrainConfig cfg_;
    std::vector<Parameter *> params_;
    size_t model_param_count_ = 0; ///< params_ prefix owned by the model
    std::function<void(size_t)> step_cb_;
    std::vector<double> loss_history_;
};

/** Trainer for CausalLM on a SyntheticGrammar. */
class LMTrainer
{
  public:
    LMTrainer(CausalLM &model, const SyntheticGrammar &grammar,
              TrainConfig cfg);

    void addExtraParams(const std::vector<Parameter *> &params);

    double train();

    /** Mean loss of every step of the most recent train() call. */
    const std::vector<double> &lossHistory() const { return loss_history_; }

    /** Perplexity on a deterministic held-out stream. */
    EvalResult evaluate(size_t samples, uint64_t seed = 4242) const;

  private:
    CausalLM &model_;
    const SyntheticGrammar &grammar_;
    TrainConfig cfg_;
    std::vector<Parameter *> params_;
    size_t model_param_count_ = 0; ///< params_ prefix owned by the model
    std::vector<double> loss_history_;
};

} // namespace dota
