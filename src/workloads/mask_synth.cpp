/**
 * @file
 * Implementation of synthetic attention-mask generation.
 */
#include "workloads/mask_synth.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hpp"

namespace dota {

SparseMask
synthesizeMask(size_t n, const MaskProfile &profile, Rng &rng, bool causal)
{
    DOTA_ASSERT(profile.retention > 0.0 && profile.retention <= 1.0,
                "retention {} out of range", profile.retention);
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               profile.retention * static_cast<double>(n))));

    // Draw hub columns once, with Zipf-skewed popularity.
    std::vector<uint32_t> hubs;
    const size_t hub_count = std::min(profile.hub_count, n);
    {
        auto picks = rng.sampleWithoutReplacement(n, hub_count);
        hubs.assign(picks.begin(), picks.end());
    }
    std::vector<double> hub_cdf(hub_count, 0.0);
    {
        double total = 0.0;
        for (size_t i = 0; i < hub_count; ++i)
            total += 1.0 / std::pow(static_cast<double>(i + 1),
                                    profile.hub_zipf);
        double acc = 0.0;
        for (size_t i = 0; i < hub_count; ++i) {
            acc += (1.0 / std::pow(static_cast<double>(i + 1),
                                   profile.hub_zipf)) / total;
            hub_cdf[i] = acc;
        }
    }
    auto draw_hub = [&]() -> uint32_t {
        const double u = rng.uniform();
        size_t i = 0;
        while (i + 1 < hub_count && hub_cdf[i] < u)
            ++i;
        return hubs[i];
    };

    SparseMask mask(n, n);
    std::vector<uint32_t> row;
    for (size_t r = 0; r < n; ++r) {
        const size_t limit = causal ? r + 1 : n; // visible key range
        const size_t kk = std::min(k, limit);
        std::set<uint32_t> chosen;
        // Always keep the diagonal (tokens attend to themselves).
        chosen.insert(static_cast<uint32_t>(r < limit ? r : limit - 1));

        const auto want_local = static_cast<size_t>(
            std::llround(profile.frac_local * static_cast<double>(kk)));
        const auto want_hub = static_cast<size_t>(
            std::llround(profile.frac_hub * static_cast<double>(kk)));

        // Local window keys.
        size_t guard = 0;
        while (chosen.size() < std::min(kk, 1 + want_local) &&
               guard++ < 16 * kk) {
            const long off = static_cast<long>(
                rng.uniformInt(2 * profile.window + 1)) -
                static_cast<long>(profile.window);
            const long c = static_cast<long>(r) + off;
            if (c < 0 || c >= static_cast<long>(limit))
                continue;
            chosen.insert(static_cast<uint32_t>(c));
        }
        // Hub keys.
        guard = 0;
        const size_t hub_target =
            std::min(kk, chosen.size() + want_hub);
        while (chosen.size() < hub_target && guard++ < 16 * kk) {
            const uint32_t c = draw_hub();
            if (c < limit)
                chosen.insert(c);
        }
        // Random fill to exactly kk (row balance constraint).
        guard = 0;
        while (chosen.size() < kk && guard++ < 64 * kk)
            chosen.insert(static_cast<uint32_t>(rng.uniformInt(limit)));
        // Deterministic fill in the (rare) case rejection stalled.
        for (uint32_t c = 0; chosen.size() < kk && c < limit; ++c)
            chosen.insert(c);

        row.assign(chosen.begin(), chosen.end());
        mask.setRow(r, row);
    }
    return mask;
}

MaskProfile
profileFor(BenchmarkId id, double retention)
{
    MaskProfile p;
    p.retention = retention;
    switch (id) {
      case BenchmarkId::QA:
        // Question tokens act as strong hubs; moderate locality.
        p.frac_local = 0.35;
        p.frac_hub = 0.40;
        p.window = 16;
        p.hub_count = 24;
        break;
      case BenchmarkId::Image:
        // 2D pixel locality dominates (row-major flattening).
        p.frac_local = 0.60;
        p.frac_hub = 0.15;
        p.window = 48;
        p.hub_count = 16;
        break;
      case BenchmarkId::Text:
        p.frac_local = 0.45;
        p.frac_hub = 0.30;
        p.window = 32;
        p.hub_count = 32;
        break;
      case BenchmarkId::Retrieval:
        // Cross-document matching: hubs in both halves, weaker locality.
        p.frac_local = 0.30;
        p.frac_hub = 0.40;
        p.window = 32;
        p.hub_count = 48;
        break;
      case BenchmarkId::LM:
        // Causal: recency window plus repeated-token hubs.
        p.frac_local = 0.55;
        p.frac_hub = 0.25;
        p.window = 64;
        p.hub_count = 32;
        break;
    }
    return p;
}

MaskStats
measureMask(const SparseMask &mask, size_t window, size_t group)
{
    MaskStats stats;
    stats.density = mask.density();
    const size_t n = mask.rows();
    if (n == 0)
        return stats;

    uint64_t local = 0, total = 0;
    std::vector<uint64_t> col_counts(mask.cols(), 0);
    for (size_t r = 0; r < n; ++r) {
        for (uint32_t c : mask.row(r)) {
            ++total;
            const auto dist = static_cast<long>(c) - static_cast<long>(r);
            if (static_cast<size_t>(std::abs(dist)) <= window)
                ++local;
            ++col_counts[c];
        }
    }
    stats.local_fraction =
        total ? static_cast<double>(local) / static_cast<double>(total)
              : 0.0;

    // Share of connections landing on the hottest 1% of columns.
    std::vector<uint64_t> sorted = col_counts;
    std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
    const size_t hot = std::max<size_t>(1, mask.cols() / 100);
    uint64_t hot_sum = 0;
    for (size_t i = 0; i < hot; ++i)
        hot_sum += sorted[i];
    stats.top_column_share =
        total ? static_cast<double>(hot_sum) / static_cast<double>(total)
              : 0.0;

    // Reuse factor within token-parallel groups.
    double reuse_sum = 0.0;
    size_t groups = 0;
    for (size_t g = 0; g + group <= n; g += group) {
        std::set<uint32_t> distinct;
        size_t loads = 0;
        for (size_t r = g; r < g + group; ++r) {
            distinct.insert(mask.row(r).begin(), mask.row(r).end());
            loads += mask.row(r).size();
        }
        if (!distinct.empty()) {
            reuse_sum += static_cast<double>(loads) /
                         static_cast<double>(distinct.size());
            ++groups;
        }
    }
    stats.group_reuse = groups ? reuse_sum / static_cast<double>(groups)
                               : 0.0;
    return stats;
}

} // namespace dota
