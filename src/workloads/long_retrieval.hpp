/**
 * @file
 * Long-context needle-retrieval workload (32k-128k tokens).
 *
 * The paper's figures stop at 4k tokens because a dense n x n score
 * matrix is the limiting factor. The streaming attention backend
 * (DESIGN.md §13) removes that limit, and this family exists to
 * exercise it at 32k+ where the dense path would need gigabytes of
 * score memory: a single attention head whose inputs are synthesized
 * directly (no model training at this scale), with a handful of
 * planted *needle* keys scattered through a long noise sequence.
 *
 * Every query is tuned to one specific needle: its query vector leans
 * toward that needle's key direction, and the needle's value row
 * carries a one-hot payload channel. Correct attention therefore
 * concentrates each row's softmax mass on its target needle and copies
 * the payload into the output, where `needleRecall` reads it back with
 * an argmax — near 1.0 for a faithful kernel, ~1/needles for a broken
 * one. Because the task is judged end-to-end on the attention *output*,
 * it validates any backend (dense, sparse rows, streaming) without ever
 * materializing dense scores.
 *
 * The companion mask keeps, per row, the needles plus a local window
 * plus optional random distractors — the hub + locality structure of
 * Section 4.3 — and is built natively as a SparseMask: at 128k a dense
 * mask would be 64 GiB, so no dense detour exists anywhere here.
 *
 * Determinism: every row of Q/K/V is filled from its own counter-based
 * child generator, so construction parallelizes over rows yet is
 * bit-identical at any DOTA_THREADS.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/sparse_mask.hpp"

namespace dota {

/** Shape and signal knobs of a long-retrieval case. */
struct LongRetrievalConfig
{
    size_t seq_len = 32768;   ///< tokens (the family spans 32k-128k)
    size_t head_dim = 64;     ///< single-head width
    size_t needles = 8;       ///< planted signal keys (payload channels
                              ///< live in [0, needles), so <= head_dim)
    double needle_gain = 6.0; ///< query/needle-key alignment strength
    double noise_std = 1.0;   ///< background Q/K/V noise
    size_t window = 64;       ///< local half-width kept by the mask
    size_t extra_keys = 0;    ///< random distractor keys per mask row
    uint64_t seed = 0x10e6;   ///< master seed
};

/** One synthesized retrieval instance. */
struct LongRetrievalCase
{
    Matrix q, k, v;                   ///< seq_len x head_dim each
    SparseMask mask;                  ///< needles + window (+ extras)
    std::vector<uint32_t> needle_pos; ///< ascending needle positions
    std::vector<uint32_t> target;     ///< per-row target needle index
    float scale = 1.0f;               ///< 1/sqrt(head_dim)
};

/** Synthesize one instance of @p cfg (parallel, bit-deterministic). */
LongRetrievalCase makeLongRetrieval(const LongRetrievalConfig &cfg);

/**
 * Fraction of rows of @p out (seq_len x head_dim attention output)
 * whose argmax payload channel matches the row's target needle.
 */
double needleRecall(const LongRetrievalCase &c, const Matrix &out);

} // namespace dota
