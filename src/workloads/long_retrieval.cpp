/**
 * @file
 * Implementation of the long-context needle-retrieval workload.
 */
#include "workloads/long_retrieval.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace dota {

namespace {

/** Child generator of row @p r — the parallel fill stays bit-identical
 * because every row draws from its own stream. */
Rng
rowRng(uint64_t seed, uint64_t stream, size_t r)
{
    return Rng(seed + stream * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(r) * 0xbf58476d1ce4e5b9ULL);
}

size_t
fillGrain(size_t rows)
{
    const size_t conc =
        std::max<size_t>(1, ThreadPool::globalConcurrency());
    return std::max<size_t>(1, rows / (4 * conc));
}

} // namespace

LongRetrievalCase
makeLongRetrieval(const LongRetrievalConfig &cfg)
{
    const size_t n = cfg.seq_len;
    const size_t d = cfg.head_dim;
    DOTA_ASSERT(n >= 1 && d >= 1, "empty retrieval case");
    DOTA_ASSERT(cfg.needles >= 1 && cfg.needles <= d &&
                    cfg.needles <= n,
                "needles {} must fit head_dim {} and seq_len {}",
                cfg.needles, d, n);

    LongRetrievalCase c;
    c.q = Matrix(n, d);
    c.k = Matrix(n, d);
    c.v = Matrix(n, d);
    c.mask = SparseMask(n, n);
    c.scale = 1.0f / std::sqrt(static_cast<float>(d));

    // Needle positions: distinct, ascending, from the master stream.
    {
        Rng master(cfg.seed);
        auto pos = master.sampleWithoutReplacement(n, cfg.needles);
        std::sort(pos.begin(), pos.end());
        c.needle_pos.assign(pos.begin(), pos.end());
    }

    // Alignment amplitude: the target logit after 1/sqrt(d) scaling is
    // needle_gain + ln(n), so the needle's softmax weight beats the sum
    // of ~n unit-variance noise logits by ~e^needle_gain regardless of
    // sequence length. Needle key directions are the coordinate axes
    // e_j (needles <= head_dim), which doubles as the payload channel.
    const double logit = cfg.needle_gain + std::log(static_cast<double>(n));
    const float kappa =
        std::sqrt(static_cast<float>(logit) / c.scale);
    const float payload = 6.0f * static_cast<float>(cfg.noise_std);

    // Every row is assigned a target needle round-robin; ties to the
    // noise streams are impossible since targets are position-derived.
    c.target.resize(n);
    for (size_t i = 0; i < n; ++i)
        c.target[i] = static_cast<uint32_t>(i % cfg.needles);

    float *qd = c.q.data();
    float *kd = c.k.data();
    float *vd = c.v.data();
    parallelFor(0, n, fillGrain(n), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            Rng rng = rowRng(cfg.seed, 1, i);
            float *qr = qd + i * d;
            float *kr = kd + i * d;
            float *vr = vd + i * d;
            for (size_t cix = 0; cix < d; ++cix) {
                qr[cix] = static_cast<float>(
                    rng.normal(0.0, cfg.noise_std));
                kr[cix] = static_cast<float>(
                    rng.normal(0.0, cfg.noise_std));
                vr[cix] = static_cast<float>(
                    rng.normal(0.0, cfg.noise_std));
            }
            qr[c.target[i]] += kappa;
        }
    });

    // Plant the needles after the noise pass (serial: cfg.needles rows).
    for (size_t j = 0; j < c.needle_pos.size(); ++j) {
        const size_t p = c.needle_pos[j];
        c.k(p, j) += kappa;
        c.v(p, j) += payload;
    }

    // Mask rows: hub structure (every needle) + windowed locality +
    // optional random distractors — built natively sparse; a dense mask
    // at 128k would be 64 GiB.
    const auto &needles = c.needle_pos;
    parallelFor(0, n, fillGrain(n), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            std::vector<uint32_t> ids(needles.begin(), needles.end());
            const size_t w0 = i >= cfg.window ? i - cfg.window : 0;
            const size_t w1 = std::min(n, i + cfg.window + 1);
            for (size_t t = w0; t < w1; ++t)
                ids.push_back(static_cast<uint32_t>(t));
            if (cfg.extra_keys > 0) {
                Rng rng = rowRng(cfg.seed, 2, i);
                for (size_t e = 0; e < cfg.extra_keys; ++e)
                    ids.push_back(static_cast<uint32_t>(
                        rng.uniformInt(n)));
            }
            c.mask.setRow(i, std::move(ids));
        }
    });

    return c;
}

double
needleRecall(const LongRetrievalCase &c, const Matrix &out)
{
    DOTA_ASSERT(out.rows() == c.q.rows() && out.cols() == c.q.cols(),
                "output shape {}x{} != {}x{}", out.rows(), out.cols(),
                c.q.rows(), c.q.cols());
    const size_t channels = c.needle_pos.size();
    size_t hits = 0;
    for (size_t i = 0; i < out.rows(); ++i) {
        const float *orow = out.row(i);
        size_t best = 0;
        for (size_t j = 1; j < channels; ++j)
            if (orow[j] > orow[best])
                best = j;
        if (best == c.target[i])
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(out.rows());
}

} // namespace dota
