/**
 * @file
 * Definitions of the five paper benchmarks.
 */
#include "workloads/benchmark.hpp"

#include "common/logging.hpp"

namespace dota {

uint64_t
ModelShape::linearMacs() const
{
    // Q, K, V projections plus the attention output projection: 4 * n*d*d.
    return 4ull * seq_len * dim * dim;
}

uint64_t
ModelShape::attentionMacs() const
{
    // S = QK^T and Z = A*V, per head n*n*hd, summed over heads: 2*n*n*d.
    return 2ull * seq_len * seq_len * dim;
}

uint64_t
ModelShape::ffnMacs() const
{
    return 2ull * seq_len * dim * ffn_dim;
}

uint64_t
ModelShape::totalMacs() const
{
    return static_cast<uint64_t>(layers) *
           (linearMacs() + attentionMacs() + ffnMacs());
}

namespace {

TransformerConfig
tinyConfig(size_t in_dim, size_t classes, uint64_t seed)
{
    TransformerConfig cfg;
    cfg.in_dim = in_dim;
    cfg.dim = 64;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.ffn_dim = 128;
    cfg.classes = classes;
    cfg.seed = seed;
    return cfg;
}

std::vector<Benchmark>
makeBenchmarks()
{
    std::vector<Benchmark> out;

    {
        Benchmark b;
        b.id = BenchmarkId::QA;
        b.name = "QA";
        b.description = "BERT-large on SQuAD v1.1 (question answering)";
        b.paper_shape = {24, 1024, 16, 4096, 384, false};
        b.retention_conservative = 0.10;
        b.retention_aggressive = 0.06;
        b.tiny = tinyConfig(24, 4, 11);
        b.tiny_seq = 128;
        out.push_back(b);
    }
    {
        Benchmark b;
        b.id = BenchmarkId::Image;
        b.name = "Image";
        b.description = "LRA image classification on CIFAR10 (n = 1K)";
        b.paper_shape = {4, 256, 4, 1024, 1024, false};
        b.retention_conservative = 0.05;
        b.retention_aggressive = 0.03;
        b.tiny = tinyConfig(16, 4, 22);
        b.tiny_seq = 128;
        out.push_back(b);
    }
    {
        Benchmark b;
        b.id = BenchmarkId::Text;
        b.name = "Text";
        b.description = "LRA text classification on IMDb (n = 2K)";
        b.paper_shape = {4, 256, 4, 1024, 2048, false};
        b.retention_conservative = 0.10;
        b.retention_aggressive = 0.01;
        b.tiny = tinyConfig(16, 2, 33);
        b.tiny_seq = 128;
        out.push_back(b);
    }
    {
        Benchmark b;
        b.id = BenchmarkId::Retrieval;
        b.name = "Retrieval";
        b.description = "LRA document retrieval on ACL-AAN (n = 4K)";
        b.paper_shape = {4, 256, 4, 1024, 4096, false};
        b.retention_conservative = 0.05;
        b.retention_aggressive = 0.01;
        b.tiny = tinyConfig(16, 2, 44);
        // Cross-document matching needs one more hop of reasoning than
        // the single-prototype tasks, and its (content-match) attention
        // is higher-rank than prototype attention.
        b.tiny.layers = 3;
        b.tiny_sigma = 1.0;
        b.tiny_seq = 128;
        out.push_back(b);
    }
    {
        Benchmark b;
        b.id = BenchmarkId::LM;
        b.name = "LM";
        b.description = "GPT-2 causal LM on WikiText-103 (n = 4K)";
        b.paper_shape = {12, 768, 12, 3072, 4096, true};
        b.perplexity = true;
        b.retention_conservative = 0.20;
        b.retention_aggressive = 0.10;
        b.tiny = tinyConfig(16, 2, 55); // vocab/max_seq set below
        b.tiny.vocab = 64;
        b.tiny.max_seq = 160;
        b.tiny_seq = 128;
        out.push_back(b);
    }
    return out;
}

} // namespace

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> benchmarks = makeBenchmarks();
    return benchmarks;
}

const Benchmark &
benchmark(BenchmarkId id)
{
    for (const Benchmark &b : allBenchmarks())
        if (b.id == id)
            return b;
    DOTA_PANIC("unknown benchmark id");
}

const Benchmark &
benchmarkByName(const std::string &name)
{
    for (const Benchmark &b : allBenchmarks())
        if (b.name == name)
            return b;
    DOTA_FATAL("unknown benchmark '{}'; expected QA, Image, Text, "
               "Retrieval, or LM", name);
}

TaskConfig
proxyTaskFor(const Benchmark &b)
{
    DOTA_ASSERT(b.id != BenchmarkId::LM,
                "the LM benchmark trains on a grammar, not a "
                "classification task (use proxyGrammarFor)");
    TaskConfig tc;
    tc.in_dim = b.tiny.in_dim;
    tc.classes = b.tiny.classes;
    tc.seq_len = 64;
    tc.signal_count = 6;
    // Keep L_model bounded away from zero at convergence (like real
    // data) and the signal non-trivial to detect.
    tc.label_noise = 0.1;
    tc.signal_strength = 2.0;
    tc.seed = 100 + static_cast<uint64_t>(b.id);
    switch (b.id) {
      case BenchmarkId::QA:
        tc.locality = 0.2;
        break;
      case BenchmarkId::Image:
        tc.locality = 1.0; // pixel neighbourhoods
        break;
      case BenchmarkId::Text:
        tc.locality = 0.5;
        break;
      case BenchmarkId::Retrieval:
        tc.kind = TaskKind::Match; // cross-document matching
        tc.locality = 0.3;
        break;
      case BenchmarkId::LM:
        break; // unreachable, asserted above
    }
    return tc;
}

GrammarConfig
proxyGrammarFor(const Benchmark &b)
{
    GrammarConfig gc;
    gc.seq_len = 96;
    gc.vocab = b.tiny.vocab;
    return gc;
}

} // namespace dota
