/**
 * @file
 * Implementation of the training loops.
 */
#include "workloads/trainer.hpp"

#include "common/logging.hpp"

namespace dota {

namespace {

/** Scale every accumulated gradient by 1/batch. */
void
scaleGrads(const std::vector<Parameter *> &params, double inv_batch)
{
    for (Parameter *p : params)
        for (size_t i = 0; i < p->grad.size(); ++i)
            p->grad.data()[i] =
                static_cast<float>(p->grad.data()[i] * inv_batch);
}

} // namespace

ClassifierTrainer::ClassifierTrainer(TransformerClassifier &model,
                                     const SyntheticTask &task,
                                     TrainConfig cfg)
    : model_(model), task_(task), cfg_(cfg)
{
    model_.collectParams(params_);
}

void
ClassifierTrainer::addExtraParams(const std::vector<Parameter *> &params)
{
    params_.insert(params_.end(), params.begin(), params.end());
}

double
ClassifierTrainer::train()
{
    Adam opt(params_, cfg_.adam);
    Rng data_rng(cfg_.data_seed);
    double last_loss = 0.0;
    for (size_t step = 0; step < cfg_.steps; ++step) {
        opt.zeroGrad();
        double loss_sum = 0.0;
        for (size_t b = 0; b < cfg_.batch; ++b) {
            const Sample s = task_.sample(data_rng);
            const Matrix logits = model_.forward(s.features);
            Matrix dlogits;
            loss_sum += softmaxCrossEntropy(logits, {s.label}, dlogits);
            model_.backward(dlogits);
        }
        scaleGrads(params_, 1.0 / static_cast<double>(cfg_.batch));
        opt.step();
        last_loss = loss_sum / static_cast<double>(cfg_.batch);
        if (step_cb_)
            step_cb_(step);
        if (cfg_.verbose && (step + 1) % cfg_.log_every == 0)
            inform("step {}/{} loss {}", step + 1, cfg_.steps, last_loss);
    }
    return last_loss;
}

EvalResult
ClassifierTrainer::evaluate(size_t samples, uint64_t seed) const
{
    Rng eval_rng(seed);
    size_t hits = 0;
    double loss_sum = 0.0;
    for (size_t i = 0; i < samples; ++i) {
        const Sample s = task_.sample(eval_rng);
        const Matrix logits = model_.forward(s.features);
        Matrix dlogits;
        loss_sum += softmaxCrossEntropy(logits, {s.label}, dlogits);
        hits += rowArgmax(logits)[0] == s.label;
    }
    EvalResult res;
    res.metric = static_cast<double>(hits) / static_cast<double>(samples);
    res.loss = loss_sum / static_cast<double>(samples);
    return res;
}

LMTrainer::LMTrainer(CausalLM &model, const SyntheticGrammar &grammar,
                     TrainConfig cfg)
    : model_(model), grammar_(grammar), cfg_(cfg)
{
    model_.collectParams(params_);
}

void
LMTrainer::addExtraParams(const std::vector<Parameter *> &params)
{
    params_.insert(params_.end(), params.begin(), params.end());
}

double
LMTrainer::train()
{
    Adam opt(params_, cfg_.adam);
    Rng data_rng(cfg_.data_seed);
    double last_loss = 0.0;
    for (size_t step = 0; step < cfg_.steps; ++step) {
        opt.zeroGrad();
        double loss_sum = 0.0;
        for (size_t b = 0; b < cfg_.batch; ++b)
            loss_sum += model_.lmLoss(grammar_.sample(data_rng), true);
        scaleGrads(params_, 1.0 / static_cast<double>(cfg_.batch));
        opt.step();
        last_loss = loss_sum / static_cast<double>(cfg_.batch);
        if (cfg_.verbose && (step + 1) % cfg_.log_every == 0)
            inform("LM step {}/{} loss {}", step + 1, cfg_.steps,
                   last_loss);
    }
    return last_loss;
}

EvalResult
LMTrainer::evaluate(size_t samples, uint64_t seed) const
{
    Rng eval_rng(seed);
    double loss_sum = 0.0;
    for (size_t i = 0; i < samples; ++i)
        loss_sum += model_.lmLoss(grammar_.sample(eval_rng), false);
    EvalResult res;
    res.loss = loss_sum / static_cast<double>(samples);
    res.metric = perplexityFromLoss(res.loss);
    return res;
}

} // namespace dota
