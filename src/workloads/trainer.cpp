/**
 * @file
 * Implementation of the training loops.
 *
 * The batch loop is data-parallel over weight-synchronized replicas with
 * a determinism contract (see trainer.hpp): every sample's gradient is
 * computed from a zeroed accumulator and the per-sample gradients are
 * summed into the optimizer in batch order, so a step's numerics do not
 * depend on DOTA_THREADS.
 */
#include "workloads/trainer.hpp"

#include <memory>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace dota {

namespace {

/** Scale every accumulated gradient by 1/batch. */
void
scaleGrads(const std::vector<Parameter *> &params, double inv_batch)
{
    for (Parameter *p : params)
        for (size_t i = 0; i < p->grad.size(); ++i)
            p->grad.data()[i] =
                static_cast<float>(p->grad.data()[i] * inv_batch);
}

void
zeroGrads(const std::vector<Parameter *> &params)
{
    for (Parameter *p : params)
        p->zeroGrad();
}

/** Copy every gradient of @p params into @p out (one Matrix each). */
void
captureGrads(const std::vector<Parameter *> &params,
             std::vector<Matrix> &out)
{
    out.clear();
    out.reserve(params.size());
    for (Parameter *p : params)
        out.push_back(p->grad);
}

/** grad[i] += captured[i]: the fixed-order reduction step. */
void
accumulateGrads(const std::vector<Parameter *> &params,
                const std::vector<Matrix> &captured)
{
    for (size_t i = 0; i < params.size(); ++i) {
        float *dst = params[i]->grad.data();
        const float *src = captured[i].data();
        const size_t sz = captured[i].size();
        for (size_t e = 0; e < sz; ++e)
            dst[e] += src[e];
    }
}

} // namespace

ClassifierTrainer::ClassifierTrainer(TransformerClassifier &model,
                                     const SyntheticTask &task,
                                     TrainConfig cfg)
    : model_(model), task_(task), cfg_(cfg)
{
    model_.collectParams(params_);
    model_param_count_ = params_.size();
}

void
ClassifierTrainer::addExtraParams(const std::vector<Parameter *> &params)
{
    params_.insert(params_.end(), params.begin(), params.end());
}

double
ClassifierTrainer::train()
{
    Adam opt(params_, cfg_.adam);
    Rng data_rng(cfg_.data_seed);
    loss_history_.clear();
    StepGuard guard(cfg_.guard);
    CheckpointManager ckpt(cfg_.checkpoint);
    // Resume restores params, Adam moments, the data-stream RNG, the
    // loss history and the guard counters — everything the remaining
    // steps depend on, so the continued trajectory is bit-identical to
    // an uninterrupted run.
    const size_t start_step =
        ckpt.resume(params_, opt, data_rng, loss_history_, guard);
    loss_history_.reserve(cfg_.steps);

    // Replicas carry neither the attention hook nor jointly-trained extra
    // parameters, so those configurations (the adaptation phase) run the
    // batch serially on the primary model; the fixed-order reduction below
    // is shared, keeping both paths thread-count independent.
    const bool replicable = params_.size() == model_param_count_ &&
                            !model_.hasHook() && cfg_.batch > 1;
    const size_t slots =
        replicable ? ThreadPool::globalConcurrency() : 1;
    std::vector<std::unique_ptr<TransformerClassifier>> replicas;
    std::vector<std::vector<Parameter *>> replica_params;
    for (size_t s = 1; s < slots; ++s) {
        replicas.push_back(
            std::make_unique<TransformerClassifier>(model_.config()));
        replica_params.emplace_back();
        replicas.back()->collectParams(replica_params.back());
    }

    double last_loss = loss_history_.empty() ? 0.0 : loss_history_.back();
    std::vector<Sample> batch(cfg_.batch);
    std::vector<std::vector<Matrix>> sample_grads(cfg_.batch);
    std::vector<double> sample_loss(cfg_.batch, 0.0);
    for (size_t step = start_step; step < cfg_.steps; ++step) {
        // Draw the whole batch serially: the data stream is identical to
        // the historical one for every thread count.
        for (size_t b = 0; b < cfg_.batch; ++b)
            batch[b] = task_.sample(data_rng);
        for (auto &rep : replicas)
            copyParams(model_, *rep);
        auto runRange = [&](size_t b0, size_t b1) {
            const int slot = ThreadPool::slot();
            TransformerClassifier *m =
                slot == 0 ? &model_ : replicas[slot - 1].get();
            const std::vector<Parameter *> &ps =
                slot == 0 ? params_ : replica_params[slot - 1];
            for (size_t b = b0; b < b1; ++b) {
                zeroGrads(ps);
                const Matrix logits = m->forward(batch[b].features);
                Matrix dlogits;
                sample_loss[b] = softmaxCrossEntropy(
                    logits, {batch[b].label}, dlogits);
                m->backward(dlogits);
                captureGrads(ps, sample_grads[b]);
            }
        };
        if (slots == 1)
            runRange(0, cfg_.batch);
        else
            parallelFor(0, cfg_.batch, 1, runRange);
        // Fixed-order reduction: per-sample gradients summed in batch
        // order regardless of which thread produced them.
        opt.zeroGrad();
        double loss_sum = 0.0;
        for (size_t b = 0; b < cfg_.batch; ++b) {
            loss_sum += sample_loss[b];
            accumulateGrads(params_, sample_grads[b]);
        }
        scaleGrads(params_, 1.0 / static_cast<double>(cfg_.batch));
        if (grad_cb_)
            grad_cb_(step, params_);
        last_loss = loss_sum / static_cast<double>(cfg_.batch);
        // Guard rail: a non-finite loss or gradient withholds the
        // update (params and moments keep pre-step values).
        if (!guard.shouldSkip(last_loss, params_)) {
            opt.step();
            guard.afterStep(opt);
        }
        loss_history_.push_back(last_loss);
        if (step_cb_)
            step_cb_(step);
        if (cfg_.verbose && (step + 1) % cfg_.log_every == 0)
            inform("step {}/{} loss {}", step + 1, cfg_.steps, last_loss);
        ckpt.onStepComplete(step + 1, params_, opt, data_rng,
                            loss_history_, guard);
        if (cfg_.halt_after_step > 0 && step + 1 >= cfg_.halt_after_step)
            break; // simulated preemption (tests)
    }
    guard_stats_ = guard.stats();
    return last_loss;
}

EvalResult
ClassifierTrainer::evaluate(size_t samples, uint64_t seed) const
{
    Rng eval_rng(seed);
    size_t hits = 0;
    double loss_sum = 0.0;
    for (size_t i = 0; i < samples; ++i) {
        const Sample s = task_.sample(eval_rng);
        const Matrix logits = model_.forward(s.features);
        Matrix dlogits;
        loss_sum += softmaxCrossEntropy(logits, {s.label}, dlogits);
        hits += rowArgmax(logits)[0] == s.label;
    }
    EvalResult res;
    res.metric = static_cast<double>(hits) / static_cast<double>(samples);
    res.loss = loss_sum / static_cast<double>(samples);
    return res;
}

LMTrainer::LMTrainer(CausalLM &model, const SyntheticGrammar &grammar,
                     TrainConfig cfg)
    : model_(model), grammar_(grammar), cfg_(cfg)
{
    model_.collectParams(params_);
    model_param_count_ = params_.size();
}

void
LMTrainer::addExtraParams(const std::vector<Parameter *> &params)
{
    params_.insert(params_.end(), params.begin(), params.end());
}

double
LMTrainer::train()
{
    Adam opt(params_, cfg_.adam);
    Rng data_rng(cfg_.data_seed);
    loss_history_.clear();
    StepGuard guard(cfg_.guard);
    CheckpointManager ckpt(cfg_.checkpoint);
    const size_t start_step =
        ckpt.resume(params_, opt, data_rng, loss_history_, guard);
    loss_history_.reserve(cfg_.steps);

    const bool replicable = params_.size() == model_param_count_ &&
                            !model_.hasHook() && cfg_.batch > 1;
    const size_t slots =
        replicable ? ThreadPool::globalConcurrency() : 1;
    std::vector<std::unique_ptr<CausalLM>> replicas;
    std::vector<std::vector<Parameter *>> replica_params;
    for (size_t s = 1; s < slots; ++s) {
        replicas.push_back(std::make_unique<CausalLM>(model_.config()));
        replica_params.emplace_back();
        replicas.back()->collectParams(replica_params.back());
    }

    double last_loss = loss_history_.empty() ? 0.0 : loss_history_.back();
    std::vector<std::vector<int>> batch(cfg_.batch);
    std::vector<std::vector<Matrix>> sample_grads(cfg_.batch);
    std::vector<double> sample_loss(cfg_.batch, 0.0);
    for (size_t step = start_step; step < cfg_.steps; ++step) {
        for (size_t b = 0; b < cfg_.batch; ++b)
            batch[b] = grammar_.sample(data_rng);
        for (auto &rep : replicas)
            copyParams(model_, *rep);
        auto runRange = [&](size_t b0, size_t b1) {
            const int slot = ThreadPool::slot();
            CausalLM *m = slot == 0 ? &model_ : replicas[slot - 1].get();
            const std::vector<Parameter *> &ps =
                slot == 0 ? params_ : replica_params[slot - 1];
            for (size_t b = b0; b < b1; ++b) {
                zeroGrads(ps);
                sample_loss[b] = m->lmLoss(batch[b], true);
                captureGrads(ps, sample_grads[b]);
            }
        };
        if (slots == 1)
            runRange(0, cfg_.batch);
        else
            parallelFor(0, cfg_.batch, 1, runRange);
        opt.zeroGrad();
        double loss_sum = 0.0;
        for (size_t b = 0; b < cfg_.batch; ++b) {
            loss_sum += sample_loss[b];
            accumulateGrads(params_, sample_grads[b]);
        }
        scaleGrads(params_, 1.0 / static_cast<double>(cfg_.batch));
        if (grad_cb_)
            grad_cb_(step, params_);
        last_loss = loss_sum / static_cast<double>(cfg_.batch);
        if (!guard.shouldSkip(last_loss, params_)) {
            opt.step();
            guard.afterStep(opt);
        }
        loss_history_.push_back(last_loss);
        if (cfg_.verbose && (step + 1) % cfg_.log_every == 0)
            inform("LM step {}/{} loss {}", step + 1, cfg_.steps,
                   last_loss);
        ckpt.onStepComplete(step + 1, params_, opt, data_rng,
                            loss_history_, guard);
        if (cfg_.halt_after_step > 0 && step + 1 >= cfg_.halt_after_step)
            break; // simulated preemption (tests)
    }
    guard_stats_ = guard.stats();
    return last_loss;
}

EvalResult
LMTrainer::evaluate(size_t samples, uint64_t seed) const
{
    Rng eval_rng(seed);
    double loss_sum = 0.0;
    for (size_t i = 0; i < samples; ++i)
        loss_sum += model_.lmLoss(grammar_.sample(eval_rng), false);
    EvalResult res;
    res.loss = loss_sum / static_cast<double>(samples);
    res.metric = perplexityFromLoss(res.loss);
    return res;
}

} // namespace dota
