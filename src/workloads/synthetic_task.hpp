/**
 * @file
 * Synthetic long-sequence tasks with planted sparse-attention structure.
 *
 * These stand in for SQuAD / LRA / WikiText-103 (see DESIGN.md §1). Every
 * task is constructed so that the label (or next token) depends on a small
 * number of *signal* positions scattered through a long, mostly-noise
 * sequence: a transformer solves it by attending to those positions, which
 * makes its attention graphs genuinely sparse and input-dependent — the
 * property DOTA's detector exploits. Task flavours mirror the structure of
 * the paper's datasets:
 *
 *  - Prototype: a handful of marked tokens carry one of C class
 *    prototypes; the label is the prototype index. Locality controls
 *    whether signal tokens cluster (Image-like) or scatter (Text/QA-like).
 *  - Match: signal tokens live in both halves of the sequence; the label
 *    is whether the two halves carry the same prototype (Retrieval-like).
 *  - Grammar (SyntheticGrammar): a token stream with long-range copy
 *    dependencies for the causal-LM benchmark.
 */
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace dota {

/** Flavour of classification task. */
enum class TaskKind { Prototype, Match };

/** Configuration of a synthetic classification task. */
struct TaskConfig
{
    TaskKind kind = TaskKind::Prototype;
    size_t seq_len = 128;
    size_t in_dim = 16;        ///< token feature dimension
    size_t classes = 4;        ///< Match tasks force this to 2
    size_t signal_count = 6;   ///< signal tokens per sequence (per half
                               ///< for Match)
    double locality = 0.0;     ///< 0 = scattered, 1 = tightly clustered
    double signal_strength = 3.0;
    double noise_std = 1.0;
    double label_noise = 0.0;  ///< probability of a uniformly random
                               ///< label (keeps L_model > 0 at
                               ///< convergence, like real data)
    uint64_t seed = 7;         ///< fixes the class prototypes
};

/** One labeled sequence. */
struct Sample
{
    Matrix features; ///< seq_len x in_dim
    int label = 0;
};

/** Generator of labeled synthetic sequences. */
class SyntheticTask
{
  public:
    explicit SyntheticTask(TaskConfig cfg);

    /** Draw one sample using @p rng. */
    Sample sample(Rng &rng) const;

    /** Draw @p count samples. */
    std::vector<Sample> batch(size_t count, Rng &rng) const;

    const TaskConfig &config() const { return cfg_; }
    size_t numClasses() const;

    /** Signal positions of the most recent sample (for tests). */
    const std::vector<size_t> &lastSignalPositions() const
    {
        return last_signal_;
    }

  private:
    std::vector<size_t> placeSignals(size_t region_begin, size_t region_end,
                                     size_t count, Rng &rng) const;
    void writeSignal(Matrix &features, size_t pos, size_t proto,
                     Rng &rng) const;

    TaskConfig cfg_;
    Matrix prototypes_; ///< classes x (in_dim - 1) fixed per task
    mutable std::vector<size_t> last_signal_;
};

/** Configuration of the synthetic LM grammar. */
struct GrammarConfig
{
    size_t vocab = 64;
    size_t seq_len = 128;
    size_t period = 16; ///< average spacing between trigger tokens
    uint64_t seed = 9;  ///< fixes the Markov backbone
};

/**
 * Token stream with long-range copy dependencies: a Markov backbone over
 * common tokens, plus trigger tokens; the token after each trigger repeats
 * the token after the previous trigger. Predicting it well requires
 * attending to the (arbitrarily distant) previous trigger.
 */
class SyntheticGrammar
{
  public:
    explicit SyntheticGrammar(GrammarConfig cfg);

    /** Draw one token sequence. */
    std::vector<int> sample(Rng &rng) const;

    const GrammarConfig &config() const { return cfg_; }

    /** The trigger token id. */
    int triggerToken() const { return 0; }

  private:
    GrammarConfig cfg_;
    std::vector<std::vector<double>> cdf_; ///< per-state transition CDF
    size_t backbone_ = 16; ///< number of common backbone tokens
};

} // namespace dota
