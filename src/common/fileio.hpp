/**
 * @file
 * Whole-file IO helpers with crash-safe (atomic) writes.
 *
 * A checkpoint that a crash can leave half-written is worse than no
 * checkpoint at all, so every durable file in DOTA goes through
 * writeFileAtomic: the bytes land in a sibling temp file which is then
 * rename(2)d over the destination. On POSIX the rename is atomic — a
 * reader (or a resumed trainer) sees either the old complete file or
 * the new complete file, never a torn mixture. The temp file is removed
 * on any failure path.
 */
#pragma once

#include <string>
#include <vector>

namespace dota {

/**
 * Write @p bytes to @p path atomically (temp file + fsync + rename).
 * Returns true on success; on failure returns false and, when
 * @p error is non-null, stores a human-readable reason.
 */
bool writeFileAtomic(const std::string &path, const std::string &bytes,
                     std::string *error = nullptr);

/**
 * Read all of @p path into @p out. Returns true on success; on failure
 * returns false and, when @p error is non-null, stores the reason.
 */
bool readFile(const std::string &path, std::string &out,
              std::string *error = nullptr);

/**
 * Names (not paths) of regular files directly under @p dir whose name
 * starts with @p prefix, sorted lexicographically. Missing or unreadable
 * directories yield an empty list.
 */
std::vector<std::string> listFiles(const std::string &dir,
                                   const std::string &prefix = "");

/** Create @p dir (and parents). Returns false if creation fails. */
bool ensureDir(const std::string &dir);

/** Remove a file if it exists; returns true when gone afterwards. */
bool removeFile(const std::string &path);

/** True when @p path exists (any file type). */
bool fileExists(const std::string &path);

} // namespace dota
