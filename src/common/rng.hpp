/**
 * @file
 * Deterministic pseudo-random number generation for all of DOTA.
 *
 * Everything in this repository (weight init, synthetic workloads, random
 * projections, trace generation) draws from Rng so every experiment is
 * reproducible from a single seed. The generator is xoshiro256** which is
 * fast, has a 256-bit state, and passes BigCrush.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace dota {

/**
 * Complete serializable state of an Rng: the four xoshiro words plus the
 * Box-Muller cache. Capturing and restoring this mid-stream reproduces
 * the exact draw sequence — the foundation of bit-identical
 * checkpoint/resume (train/checkpoint.hpp).
 */
struct RngState
{
    uint64_t s[4] = {};
    double cached = 0.0;
    bool has_cached = false;
};

/** Deterministic random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Seed with SplitMix64 expansion of @p seed so any seed is valid. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    uint64_t
    uniformInt(uint64_t n)
    {
        // Lemire's unbiased bounded generation (simple rejection variant).
        uint64_t x, r;
        do {
            x = next();
            r = x % n;
        } while (x - r > uint64_t(-n));
        return r;
    }

    /** Standard normal via Box-Muller (cached second value). */
    double
    normal()
    {
        if (has_cached_) {
            has_cached_ = false;
            return cached_;
        }
        double u1, u2;
        do {
            u1 = uniform();
        } while (u1 <= 1e-300);
        u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        cached_ = mag * std::sin(2.0 * M_PI * u2);
        has_cached_ = true;
        return mag * std::cos(2.0 * M_PI * u2);
    }

    /** Normal with mean/stddev. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Sample @p k distinct indices from [0, n) (Floyd's algorithm). */
    std::vector<size_t>
    sampleWithoutReplacement(size_t n, size_t k)
    {
        if (k > n)
            k = n;
        std::vector<size_t> out;
        out.reserve(k);
        // Floyd: for j in n-k..n-1, pick t in [0, j]; if taken, use j.
        for (size_t j = n - k; j < n; ++j) {
            size_t t = static_cast<size_t>(uniformInt(j + 1));
            bool taken = false;
            for (size_t v : out) {
                if (v == t) {
                    taken = true;
                    break;
                }
            }
            out.push_back(taken ? j : t);
        }
        return out;
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for per-module streams). */
    Rng
    fork()
    {
        return Rng(next());
    }

    /** Snapshot the full generator state (for checkpointing). */
    RngState
    getState() const
    {
        RngState st;
        for (int i = 0; i < 4; ++i)
            st.s[i] = state_[i];
        st.cached = cached_;
        st.has_cached = has_cached_;
        return st;
    }

    /** Restore a snapshot taken by getState(). */
    void
    setState(const RngState &st)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = st.s[i];
        cached_ = st.cached;
        has_cached_ = st.has_cached;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
    double cached_ = 0.0;
    bool has_cached_ = false;
};

} // namespace dota
