/**
 * @file
 * ASCII table and series printers shared by every bench harness.
 *
 * The bench binaries reproduce the paper's tables and figures as text; this
 * gives them one consistent, aligned rendering (and a CSV mode for plotting).
 */
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dota {

/** A simple column-aligned table builder. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. Must be called before addRow. */
    Table &header(std::vector<std::string> cols);

    /** Append a row of pre-rendered cells. */
    Table &addRow(std::vector<std::string> cells);

    /** Render with box-drawing alignment. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant decimals, trimming zeros. */
std::string fmtNum(double v, int digits = 3);

/** Format a double as a multiplier, e.g. "152.6x". */
std::string fmtSpeedup(double v);

/** Format a count of bytes as B/KB/MB/GB. */
std::string fmtBytes(double bytes);

/** Format a percentage with one decimal, e.g. "91.4%". */
std::string fmtPct(double fraction);

/** Print a section banner used between bench sub-experiments. */
void printBanner(std::ostream &os, const std::string &text);

} // namespace dota
