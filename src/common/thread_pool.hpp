/**
 * @file
 * Dependency-free bounded thread pool and deterministic parallelFor.
 *
 * Every parallel hot path in DOTA (dense GEMMs, the batch trainer, the
 * fleet simulator) runs through this pool. The design is deliberately
 * minimal — one mutex-protected FIFO, no work stealing — so the
 * concurrency story stays auditable:
 *
 *  - **Determinism contract.** parallelFor() partitions [begin, end) into
 *    fixed chunks of @p grain indices. Chunks are claimed dynamically but
 *    every index is processed by exactly one invocation of the body, so as
 *    long as the body writes only to outputs owned by its index range the
 *    result is bit-identical for every thread count (see DESIGN.md,
 *    "Parallel execution").
 *  - **Bounded queue.** submit() blocks once `queueCapacity()` tasks are
 *    pending, so producers cannot outrun the workers without limit.
 *  - **Nested-submit deadlock guard.** parallelFor() called from inside a
 *    pool worker runs the whole range inline (serial), and submit() from a
 *    worker whose queue is full executes the task inline instead of
 *    blocking — a worker can therefore never wait on queue space that only
 *    workers can free.
 *
 * The global pool's concurrency comes from the DOTA_THREADS environment
 * variable: total thread count including the caller, default
 * `std::thread::hardware_concurrency()`; `DOTA_THREADS=1` restores fully
 * serial execution.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dota {

/**
 * Total concurrency requested via DOTA_THREADS (callers + workers), or
 * hardware_concurrency() when unset/invalid. Always >= 1.
 */
size_t configuredThreads();

/** Fixed-size pool of worker threads feeding on one bounded FIFO. */
class ThreadPool
{
  public:
    /**
     * @param concurrency     total thread count including the calling
     *                        thread; the pool spawns `concurrency - 1`
     *                        workers. 0 means configuredThreads().
     * @param queue_capacity  bound on pending submitted tasks.
     */
    explicit ThreadPool(size_t concurrency = 0,
                        size_t queue_capacity = kDefaultQueueCapacity);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + the calling thread). */
    size_t concurrency() const
    {
        return concurrency_.load(std::memory_order_relaxed);
    }

    size_t queueCapacity() const { return queue_capacity_; }

    /**
     * Re-target the pool at a new total concurrency: drains pending
     * tasks, joins the current workers and spawns a fresh set. Must only
     * be called while no parallelFor() is in flight.
     */
    void resize(size_t concurrency);

    /**
     * Enqueue @p fn for asynchronous execution. Blocks while the queue is
     * full — unless called from a pool worker (runs @p fn inline, the
     * nested-submit deadlock guard) or the pool is serial / shutting down
     * (also inline).
     */
    void submit(std::function<void()> fn);

    /** The process-wide pool used by parallelFor() and the kernels. */
    static ThreadPool &global();

    /** Shorthand for global().concurrency(). */
    static size_t globalConcurrency();

    /**
     * Resize the global pool (e.g. tests pinning DOTA_THREADS=1 vs 8
     * behavior inside one process). Same idle-only caveat as resize().
     */
    static void setGlobalConcurrency(size_t n);

    /**
     * Slot of the calling thread: 0 for any non-pool thread (including
     * the thread driving a parallelFor), 1..concurrency-1 for workers.
     * Callers use this to index per-thread scratch (e.g. model replicas).
     */
    static int slot();

    /** True when called from a pool worker thread. */
    static bool inWorker() { return slot() > 0; }

    static constexpr size_t kDefaultQueueCapacity = 4096;

  private:
    void spawnWorkers();
    void joinWorkers();
    void workerMain(int slot);

    std::atomic<size_t> concurrency_{1};
    size_t queue_capacity_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    bool stop_ = false;
};

/**
 * Apply @p fn to [begin, end) in chunks of @p grain indices using
 * @p pool. @p fn receives half-open sub-ranges [lo, hi); each index is
 * covered exactly once. Runs inline (one call over the whole range) when
 * the pool is serial, the range fits one grain, or the caller is itself a
 * pool worker. The first exception thrown by @p fn is rethrown on the
 * calling thread after all chunks finish or are skipped.
 */
void parallelFor(ThreadPool &pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)> &fn);

/** parallelFor() on the global pool. */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)> &fn);

} // namespace dota
