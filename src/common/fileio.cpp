/**
 * @file
 * Implementation of the atomic file IO helpers.
 */
#include "common/fileio.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/logging.hpp"

namespace fs = std::filesystem;

namespace dota {

namespace {

void
setError(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &bytes,
                std::string *error)
{
    // The temp file must live on the same filesystem as the target so
    // the rename is atomic; a sibling name guarantees that.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            setError(error, format("cannot open '{}' for writing: {}",
                                   tmp, std::strerror(errno)));
            return false;
        }
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) {
            setError(error, format("write to '{}' failed: {}", tmp,
                                   std::strerror(errno)));
            os.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, format("rename '{}' -> '{}' failed: {}", tmp,
                               path, std::strerror(errno)));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out, std::string *error)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        setError(error, format("cannot open '{}' for reading: {}", path,
                               std::strerror(errno)));
        return false;
    }
    const std::streamsize size = is.tellg();
    is.seekg(0);
    out.resize(static_cast<size_t>(size));
    is.read(out.data(), size);
    if (!is) {
        setError(error, format("read from '{}' failed", path));
        return false;
    }
    return true;
}

std::vector<std::string>
listFiles(const std::string &dir, const std::string &prefix)
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) == 0)
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
ensureDir(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    return !ec && fs::is_directory(dir, ec);
}

bool
removeFile(const std::string &path)
{
    std::error_code ec;
    fs::remove(path, ec);
    return !fs::exists(path, ec);
}

bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return fs::exists(path, ec);
}

} // namespace dota
