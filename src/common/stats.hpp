/**
 * @file
 * Lightweight statistics package for the simulator, in the spirit of the
 * gem5 stats framework: named scalar counters and distributions that
 * register with a StatGroup and can be dumped as a formatted report.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dota {

/** A named, monotonically accumulating scalar statistic. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    Counter &operator+=(double v) { value_ += v; return *this; }
    Counter &operator++() { value_ += 1.0; return *this; }

    void reset() { value_ = 0.0; }
    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/** Running summary (count/mean/min/max/stddev) of a sampled quantity. */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    /** Record one sample using Welford's online update. */
    void
    sample(double v)
    {
        ++count_;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
        const double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
        sum_ += v;
    }

    void
    reset()
    {
        count_ = 0;
        mean_ = m2_ = sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    double stddev() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::string desc_;
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(std::string name, double lo, double hi, size_t buckets);

    void sample(double v, uint64_t weight = 1);
    void reset();

    uint64_t total() const { return total_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    double bucketLow(size_t i) const;
    double bucketHigh(size_t i) const;

    /** Value below which @p fraction of the mass lies (approximate). */
    double percentile(double fraction) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double lo_ = 0.0;
    double hi_ = 1.0;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * A named collection of statistics belonging to one simulated module.
 * Modules own their StatGroup and register pointers to member stats; the
 * group can render a human-readable dump.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(Counter *c) { counters_.push_back(c); }
    void addDistribution(Distribution *d) { dists_.push_back(d); }

    void dump(std::ostream &os) const;
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<Counter *> counters_;
    std::vector<Distribution *> dists_;
};

} // namespace dota
