/**
 * @file
 * Versioned, checksummed record-file container for checkpoints.
 *
 * Layout (all integers little-endian, as written by the host — DOTA
 * checkpoints are host-local artifacts, not an interchange format):
 *
 *   Header := magic "DOTC" | u32 container_version (=1)
 *           | u32 kind (caller fourcc) | u32 schema_version (caller's)
 *   Record := u32 name_len | name bytes
 *           | u64 payload_len | payload bytes
 *           | u32 record_crc        -- CRC32 of this record's
 *                                      name_len..payload bytes
 *   Footer := magic "CEND" | u64 record_count | u32 file_crc
 *                                  -- CRC32 of every byte before file_crc
 *
 * The double checksum distinguishes failure modes: a missing/garbled
 * footer means the file was truncated or torn mid-write, a failing
 * record or file CRC means bytes were corrupted in place. Readers never
 * trust a length field beyond the buffer, so arbitrary garbage parses
 * to a status instead of UB. The builder produces the complete byte
 * buffer in memory so callers can hand it to writeFileAtomic.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dota {

/** Outcome of parsing a record file. */
enum class RecordFileStatus
{
    Ok,         ///< structure and every checksum verified
    IoError,    ///< file missing or unreadable
    BadMagic,   ///< not a DOTA record file at all
    BadVersion, ///< container version newer than this build understands
    Truncated,  ///< footer missing/partial: truncated or torn write
    Corrupt,    ///< checksum or structural mismatch: bytes damaged
};

/** Display name, e.g. "corrupt". */
std::string recordFileStatusName(RecordFileStatus status);

/** Parsed record file: the header identity plus named byte records. */
struct RecordFile
{
    uint32_t kind = 0;           ///< caller fourcc from the header
    uint32_t schema_version = 0; ///< caller schema version

    std::vector<std::pair<std::string, std::string>> records;

    /** Payload of the first record named @p name, or nullptr. */
    const std::string *find(std::string_view name) const;
};

/** Pack a fourcc like "TRNS" into the header kind field. */
constexpr uint32_t
recordKind(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/** Incrementally build a record file byte buffer. */
class RecordFileBuilder
{
  public:
    RecordFileBuilder(uint32_t kind, uint32_t schema_version);

    /** Append one named record. */
    void add(std::string_view name, std::string_view payload);

    /** Append the footer and return the finished buffer. */
    std::string finish();

  private:
    std::string buf_;
    uint64_t count_ = 0;
    bool finished_ = false;
};

/**
 * Parse @p bytes into @p out, verifying structure, every record CRC and
 * the footer CRC. On any status other than Ok, @p error (when non-null)
 * receives a diagnostic and @p out is left unspecified.
 */
RecordFileStatus parseRecordFile(const std::string &bytes, RecordFile &out,
                                 std::string *error = nullptr);

/** readFile + parseRecordFile. */
RecordFileStatus readRecordFile(const std::string &path, RecordFile &out,
                                std::string *error = nullptr);

/**
 * Cheap sniff: true when @p path exists, is at least header-sized and
 * starts with the record-file magic and a known container version.
 * (Full integrity is only established by readRecordFile.)
 */
bool looksLikeRecordFile(const std::string &path);

} // namespace dota
