/**
 * @file
 * Implementation of the bounded thread pool and parallelFor.
 */
#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/logging.hpp"

namespace dota {

namespace {

/** 0 on every non-pool thread; workers carry 1..concurrency-1. */
thread_local int tl_slot = 0;

constexpr size_t kMaxThreads = 256;

} // namespace

size_t
configuredThreads()
{
    const size_t env = envSizeT("DOTA_THREADS", 0);
    if (env > 0)
        return std::min(env, kMaxThreads);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t concurrency, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(queue_capacity, 1))
{
    if (concurrency == 0)
        concurrency = configuredThreads();
    concurrency_.store(std::max<size_t>(concurrency, 1),
                       std::memory_order_relaxed);
    spawnWorkers();
}

ThreadPool::~ThreadPool()
{
    joinWorkers();
    // With zero workers, completed-job stubs can linger; run them so no
    // submitted task is silently dropped.
    for (auto &task : queue_)
        task();
    queue_.clear();
}

void
ThreadPool::spawnWorkers()
{
    const size_t n = concurrency();
    workers_.reserve(n > 0 ? n - 1 : 0);
    for (size_t s = 1; s < n; ++s)
        workers_.emplace_back(
            [this, s] { workerMain(static_cast<int>(s)); });
}

void
ThreadPool::joinWorkers()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;
}

void
ThreadPool::resize(size_t concurrency)
{
    concurrency = std::max<size_t>(std::min(concurrency, kMaxThreads), 1);
    if (concurrency == this->concurrency())
        return;
    joinWorkers(); // workers drain the queue before exiting
    std::deque<std::function<void()>> leftover;
    {
        std::lock_guard<std::mutex> lk(mu_);
        leftover.swap(queue_);
        concurrency_.store(concurrency, std::memory_order_relaxed);
    }
    for (auto &task : leftover)
        task();
    spawnWorkers();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    if (concurrency() <= 1) {
        fn(); // serial pool: nothing would ever drain the queue
        return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (inWorker() && queue_.size() >= queue_capacity_) {
        lk.unlock();
        fn(); // nested-submit deadlock guard
        return;
    }
    not_full_.wait(lk, [this] {
        return queue_.size() < queue_capacity_ || stop_;
    });
    if (stop_) {
        lk.unlock();
        fn(); // shutting down / resizing: degrade to inline execution
        return;
    }
    queue_.push_back(std::move(fn));
    lk.unlock();
    not_empty_.notify_one();
}

void
ThreadPool::workerMain(int slot)
{
    tl_slot = slot;
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            not_empty_.wait(lk,
                            [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop requested and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        not_full_.notify_one();
        task();
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(configuredThreads());
    return pool;
}

size_t
ThreadPool::globalConcurrency()
{
    return global().concurrency();
}

void
ThreadPool::setGlobalConcurrency(size_t n)
{
    global().resize(n);
}

int
ThreadPool::slot()
{
    return tl_slot;
}

namespace {

/** Shared state of one parallelFor invocation. */
struct ParallelJob
{
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t chunks = 0;
    const std::function<void(size_t, size_t)> *body = nullptr;
    std::atomic<size_t> next{0};    ///< next unclaimed chunk
    std::atomic<bool> failed{false};
    size_t done = 0;                ///< finished chunks, guarded by mu
    std::exception_ptr error;       ///< first exception, guarded by mu
    std::mutex mu;
    std::condition_variable all_done;
};

/**
 * Claim and run chunks until none remain. Safe to run from any number of
 * threads; each chunk is claimed exactly once. Once the caller observed
 * done == chunks every further claim fails immediately, so stale queued
 * helpers never touch the (by then dead) body.
 */
void
runParallelChunks(const std::shared_ptr<ParallelJob> &job)
{
    while (true) {
        const size_t c = job->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= job->chunks)
            return;
        const size_t lo = job->begin + c * job->grain;
        const size_t hi = std::min(job->end, lo + job->grain);
        if (!job->failed.load(std::memory_order_acquire)) {
            try {
                (*job->body)(lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> lk(job->mu);
                if (!job->error)
                    job->error = std::current_exception();
                job->failed.store(true, std::memory_order_release);
            }
        }
        std::lock_guard<std::mutex> lk(job->mu);
        if (++job->done == job->chunks)
            job->all_done.notify_all();
    }
}

} // namespace

void
parallelFor(ThreadPool &pool, size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const size_t n = end - begin;
    if (pool.concurrency() <= 1 || n <= grain || ThreadPool::inWorker()) {
        fn(begin, end); // serial fallback / nested-parallelism guard
        return;
    }
    auto job = std::make_shared<ParallelJob>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->chunks = (n + grain - 1) / grain;
    job->body = &fn;
    const size_t helpers =
        std::min(pool.concurrency() - 1, job->chunks - 1);
    for (size_t i = 0; i < helpers; ++i)
        pool.submit([job] { runParallelChunks(job); });
    runParallelChunks(job); // the caller works too
    std::unique_lock<std::mutex> lk(job->mu);
    job->all_done.wait(lk, [&] { return job->done == job->chunks; });
    if (job->error)
        std::rethrow_exception(job->error);
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &fn)
{
    parallelFor(ThreadPool::global(), begin, end, grain, fn);
}

} // namespace dota
