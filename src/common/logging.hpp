/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  - an internal invariant was violated; this is a bug in DOTA
 *            itself. Aborts (so a debugger/core dump can inspect state).
 * fatal()  - the simulation cannot continue because of a user error (bad
 *            configuration, invalid arguments). Exits with status 1.
 * warn()   - something works but maybe not the way the user expects.
 * inform() - normal operational status, no connotation of a problem.
 *
 * All take a printf-free "{}"-style format string, e.g.
 *   fatal("sequence length {} is not a multiple of tile size {}", n, t);
 */
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace dota {

namespace detail {

/** Terminal recursion: no arguments left, copy the rest verbatim. */
inline void
formatInto(std::ostringstream &os, std::string_view fmt)
{
    os << fmt;
}

/** Substitute the next "{}" in @p fmt with @p head, then recurse. */
template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, std::string_view fmt, const T &head,
           Rest &&...rest)
{
    auto pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        os << fmt;
        return;
    }
    os << fmt.substr(0, pos) << head;
    formatInto(os, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Render a "{}"-style format string to a std::string. */
template <typename... Args>
std::string
format(std::string_view fmt, Args &&...args)
{
    std::ostringstream os;
    detail::formatInto(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, std::string_view fmt, Args &&...args)
{
    detail::panicImpl(file, line, format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, std::string_view fmt, Args &&...args)
{
    detail::fatalImpl(file, line, format(fmt, std::forward<Args>(args)...));
}

/** Warn the user about suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    detail::warnImpl(format(fmt, std::forward<Args>(args)...));
}

/** Print a normal status message. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    detail::informImpl(format(fmt, std::forward<Args>(args)...));
}

} // namespace dota

#define DOTA_PANIC(...) ::dota::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define DOTA_FATAL(...) ::dota::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Cheap always-on invariant check; use for simulator-internal invariants. */
#define DOTA_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dota::panicAt(__FILE__, __LINE__,                             \
                            "assertion '" #cond "' failed: "                \
                            __VA_ARGS__);                                   \
        }                                                                   \
    } while (0)
