/**
 * @file
 * Implementation of the environment configuration helpers.
 */
#include "common/env.hpp"

#include <cstdlib>

namespace dota {

std::string
envString(const char *name, const std::string &fallback)
{
    const char *raw = std::getenv(name);
    return raw ? std::string(raw) : fallback;
}

size_t
envSizeT(const char *name, size_t fallback)
{
    const std::string s = envString(name);
    if (s.empty())
        return fallback;
    size_t pos = 0;
    unsigned long long v = 0;
    try {
        v = std::stoull(s, &pos);
    } catch (...) {
        return fallback;
    }
    if (pos != s.size())
        return fallback;
    return static_cast<size_t>(v);
}

bool
envFlag(const char *name)
{
    const std::string s = envString(name);
    return !s.empty() && s != "0" && s != "false";
}

} // namespace dota
