/**
 * @file
 * CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
 * integrity checking.
 *
 * Every checkpoint record and the whole-file footer carry a CRC so a
 * bit-flip, truncation or torn write is *detected* instead of silently
 * loading scrambled weights (see DESIGN.md §10). The implementation is
 * the classic byte-at-a-time table walk — integrity checking is far off
 * the training hot path, so clarity wins over slicing tricks.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dota {

/**
 * CRC32 of @p len bytes at @p data, continuing from @p seed (pass the
 * previous return value to checksum a stream incrementally; the default
 * 0 starts a fresh checksum).
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** Convenience overload for strings/byte buffers. */
inline uint32_t
crc32(std::string_view bytes, uint32_t seed = 0)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

} // namespace dota
