/**
 * @file
 * Implementation of the statistics package.
 */
#include "common/stats.hpp"

#include <cmath>
#include <iomanip>

#include "common/logging.hpp"

namespace dota {

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::string name, double lo, double hi, size_t buckets)
    : name_(std::move(name)), lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    DOTA_ASSERT(hi > lo, "histogram range must be non-empty");
    DOTA_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double v, uint64_t weight)
{
    total_ += weight;
    if (v < lo_) {
        underflow_ += weight;
        return;
    }
    if (v >= hi_) {
        overflow_ += weight;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    auto idx = static_cast<size_t>((v - lo_) / width);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    buckets_[idx] += weight;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::bucketLow(size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
    return lo_ + width * static_cast<double>(i);
}

double
Histogram::bucketHigh(size_t i) const
{
    return bucketLow(i + 1);
}

double
Histogram::percentile(double fraction) const
{
    if (total_ == 0)
        return lo_;
    const double target = fraction * static_cast<double>(total_);
    double seen = static_cast<double>(underflow_);
    if (seen >= target)
        return lo_;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        const double next = seen + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            // Linear interpolation inside the bucket.
            const double frac_in =
                (target - seen) / static_cast<double>(buckets_[i]);
            return bucketLow(i) + frac_in * (bucketHigh(i) - bucketLow(i));
        }
        seen = next;
    }
    return hi_;
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- stats: " << name_ << " ----\n";
    for (const Counter *c : counters_) {
        os << std::left << std::setw(40) << (name_ + "." + c->name())
           << std::right << std::setw(20) << c->value();
        if (!c->desc().empty())
            os << "  # " << c->desc();
        os << "\n";
    }
    for (const Distribution *d : dists_) {
        os << std::left << std::setw(40) << (name_ + "." + d->name())
           << " count=" << d->count() << " mean=" << d->mean()
           << " min=" << d->min() << " max=" << d->max()
           << " stddev=" << d->stddev() << "\n";
    }
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
    for (Distribution *d : dists_)
        d->reset();
}

} // namespace dota
