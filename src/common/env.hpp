/**
 * @file
 * Environment-variable configuration helpers.
 *
 * Runtime knobs that must be settable without recompiling (thread count,
 * golden-file regeneration, ...) are read through these helpers so every
 * subsystem parses them the same way and bad values degrade to documented
 * fallbacks instead of UB.
 */
#pragma once

#include <cstddef>
#include <string>

namespace dota {

/** Value of @p name, or @p fallback when unset. */
std::string envString(const char *name, const std::string &fallback = "");

/**
 * Non-negative integer value of @p name; @p fallback when unset, empty,
 * or not a valid decimal number.
 */
size_t envSizeT(const char *name, size_t fallback);

/** True when @p name is set to anything other than "", "0" or "false". */
bool envFlag(const char *name);

} // namespace dota
