/**
 * @file
 * Implementation of the checksummed record-file container.
 */
#include "common/recordfile.hpp"

#include <cstring>
#include <fstream>

#include "common/crc32.hpp"
#include "common/fileio.hpp"
#include "common/logging.hpp"

namespace dota {

namespace {

constexpr char kMagic[4] = {'D', 'O', 'T', 'C'};
constexpr char kFooterMagic[4] = {'C', 'E', 'N', 'D'};
constexpr uint32_t kContainerVersion = 1;
// magic + container version + kind + schema version.
constexpr size_t kHeaderSize = 4 + 4 + 4 + 4;
// footer magic + record count + file crc.
constexpr size_t kFooterSize = 4 + 8 + 4;

template <typename T>
void
appendInt(std::string &buf, T v)
{
    char raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    buf.append(raw, sizeof(T));
}

/** Bounds-checked integer read; false when the buffer is too short. */
template <typename T>
bool
readInt(const std::string &buf, size_t &off, T &v)
{
    if (off + sizeof(T) > buf.size())
        return false;
    std::memcpy(&v, buf.data() + off, sizeof(T));
    off += sizeof(T);
    return true;
}

void
setError(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
}

} // namespace

std::string
recordFileStatusName(RecordFileStatus status)
{
    switch (status) {
      case RecordFileStatus::Ok:
        return "ok";
      case RecordFileStatus::IoError:
        return "io-error";
      case RecordFileStatus::BadMagic:
        return "bad-magic";
      case RecordFileStatus::BadVersion:
        return "bad-version";
      case RecordFileStatus::Truncated:
        return "truncated";
      case RecordFileStatus::Corrupt:
        return "corrupt";
    }
    DOTA_PANIC("unknown record file status");
}

const std::string *
RecordFile::find(std::string_view name) const
{
    for (const auto &[n, payload] : records)
        if (n == name)
            return &payload;
    return nullptr;
}

RecordFileBuilder::RecordFileBuilder(uint32_t kind, uint32_t schema_version)
{
    buf_.append(kMagic, 4);
    appendInt(buf_, kContainerVersion);
    appendInt(buf_, kind);
    appendInt(buf_, schema_version);
}

void
RecordFileBuilder::add(std::string_view name, std::string_view payload)
{
    DOTA_ASSERT(!finished_, "add() after finish()");
    const size_t record_start = buf_.size();
    appendInt(buf_, static_cast<uint32_t>(name.size()));
    buf_.append(name.data(), name.size());
    appendInt(buf_, static_cast<uint64_t>(payload.size()));
    buf_.append(payload.data(), payload.size());
    appendInt(buf_, crc32(buf_.data() + record_start,
                          buf_.size() - record_start));
    ++count_;
}

std::string
RecordFileBuilder::finish()
{
    DOTA_ASSERT(!finished_, "finish() called twice");
    finished_ = true;
    buf_.append(kFooterMagic, 4);
    appendInt(buf_, count_);
    appendInt(buf_, crc32(buf_));
    return std::move(buf_);
}

RecordFileStatus
parseRecordFile(const std::string &bytes, RecordFile &out,
                std::string *error)
{
    out = RecordFile{};
    if (bytes.size() < 4 ||
        std::memcmp(bytes.data(), kMagic, 4) != 0) {
        setError(error, "not a DOTA record file (bad or missing magic)");
        return RecordFileStatus::BadMagic;
    }
    if (bytes.size() < kHeaderSize) {
        setError(error, format("header truncated: {} bytes < {}",
                               bytes.size(), kHeaderSize));
        return RecordFileStatus::Truncated;
    }
    size_t off = 4;
    uint32_t container = 0;
    readInt(bytes, off, container);
    if (container != kContainerVersion) {
        setError(error, format("container version {} unsupported "
                               "(this build reads version {})",
                               container, kContainerVersion));
        return RecordFileStatus::BadVersion;
    }
    readInt(bytes, off, out.kind);
    readInt(bytes, off, out.schema_version);

    // Verify the footer first: its absence means the write never
    // completed (truncation / torn write), in which case record CRCs
    // would misleadingly report corruption.
    if (bytes.size() < kHeaderSize + kFooterSize ||
        std::memcmp(bytes.data() + bytes.size() - kFooterSize,
                    kFooterMagic, 4) != 0) {
        setError(error, "footer missing: file truncated or write torn");
        return RecordFileStatus::Truncated;
    }
    size_t foot = bytes.size() - kFooterSize + 4;
    uint64_t footer_count = 0;
    uint32_t file_crc = 0;
    readInt(bytes, foot, footer_count);
    readInt(bytes, foot, file_crc);
    const uint32_t actual_crc = crc32(bytes.data(), bytes.size() - 4);
    if (actual_crc != file_crc) {
        setError(error, format("file checksum mismatch: stored {}, "
                               "computed {}", file_crc, actual_crc));
        return RecordFileStatus::Corrupt;
    }

    const size_t body_end = bytes.size() - kFooterSize;
    while (off < body_end) {
        const size_t record_start = off;
        uint32_t name_len = 0;
        if (!readInt(bytes, off, name_len) ||
            name_len > body_end - off) {
            setError(error, "record name overruns file body");
            return RecordFileStatus::Corrupt;
        }
        std::string name = bytes.substr(off, name_len);
        off += name_len;
        uint64_t payload_len = 0;
        if (!readInt(bytes, off, payload_len) ||
            payload_len > body_end - off) {
            setError(error, format("record '{}' payload overruns file "
                                   "body", name));
            return RecordFileStatus::Corrupt;
        }
        std::string payload = bytes.substr(off, payload_len);
        off += payload_len;
        uint32_t stored_crc = 0;
        if (off + 4 > body_end || !readInt(bytes, off, stored_crc)) {
            setError(error, format("record '{}' checksum missing", name));
            return RecordFileStatus::Corrupt;
        }
        const uint32_t record_crc = crc32(
            bytes.data() + record_start, off - 4 - record_start);
        if (record_crc != stored_crc) {
            setError(error, format("record '{}' checksum mismatch: "
                                   "stored {}, computed {}",
                                   name, stored_crc, record_crc));
            return RecordFileStatus::Corrupt;
        }
        out.records.emplace_back(std::move(name), std::move(payload));
    }
    if (out.records.size() != footer_count) {
        setError(error, format("footer records {} != parsed records {}",
                               footer_count, out.records.size()));
        return RecordFileStatus::Corrupt;
    }
    return RecordFileStatus::Ok;
}

RecordFileStatus
readRecordFile(const std::string &path, RecordFile &out,
               std::string *error)
{
    std::string bytes;
    if (!readFile(path, bytes, error))
        return RecordFileStatus::IoError;
    return parseRecordFile(bytes, out, error);
}

bool
looksLikeRecordFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    char header[kHeaderSize] = {};
    is.read(header, kHeaderSize);
    if (!is)
        return false; // shorter than a header cannot be a record file
    uint32_t container = 0;
    std::memcpy(&container, header + 4, 4);
    return std::memcmp(header, kMagic, 4) == 0 &&
           container == kContainerVersion;
}

} // namespace dota
