/**
 * @file
 * Small string helpers used across the codebase.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dota {

/** Split @p s on @p sep, dropping empty pieces if @p keep_empty is false. */
std::vector<std::string> split(std::string_view s, char sep,
                               bool keep_empty = false);

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view s);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** True if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Join a list of strings with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

} // namespace dota
