/**
 * @file
 * CRC32 implementation (table generated on first use).
 */
#include "common/crc32.hpp"

#include <array>

namespace dota {

namespace {

std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeTable();
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace dota
