/**
 * @file
 * Implementation of the table/series printers.
 */
#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace dota {

Table &
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
    return *this;
}

Table &
Table::addRow(std::vector<std::string> cells)
{
    DOTA_ASSERT(header_.empty() || cells.size() == header_.size(),
                "row width {} != header width {}", cells.size(),
                header_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto rule = [&os, &widths]() {
        os << "+";
        for (size_t w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto line = [&os, &widths](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            os << " " << std::left << std::setw(static_cast<int>(widths[i]))
               << c << " |";
        }
        os << "\n";
    };

    if (!title_.empty())
        os << title_ << "\n";
    rule();
    if (!header_.empty()) {
        line(header_);
        rule();
    }
    for (const auto &r : rows_)
        line(r);
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto line = [&os](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            os << (i ? "," : "") << cells[i];
        os << "\n";
    };
    if (!header_.empty())
        line(header_);
    for (const auto &r : rows_)
        line(r);
}

std::string
fmtNum(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    std::string s = os.str();
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s.empty() ? "0" : s;
}

std::string
fmtSpeedup(double v)
{
    return fmtNum(v, v >= 100 ? 1 : 2) + "x";
}

std::string
fmtBytes(double bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (std::abs(bytes) >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    return fmtNum(bytes, 2) + units[u];
}

std::string
fmtPct(double fraction)
{
    return fmtNum(fraction * 100.0, 2) + "%";
}

void
printBanner(std::ostream &os, const std::string &text)
{
    const std::string bar(std::max<size_t>(text.size() + 8, 40), '=');
    os << "\n" << bar << "\n==  " << text << "\n" << bar << "\n";
}

} // namespace dota
