/**
 * @file
 * Implementation of the three scheduling policies.
 */
#include "sched/scheduler.hpp"

#include <algorithm>
#include <map>

namespace dota {

std::vector<GroupSchedule>
Scheduler::scheduleAll(const SparseMask &mask) const
{
    std::vector<GroupSchedule> out;
    for (size_t base = 0; base < mask.rows(); base += parallelism_)
        out.push_back(scheduleGroup(mask, base));
    return out;
}

GroupSchedule
RowByRowScheduler::scheduleGroup(const SparseMask &mask, size_t base) const
{
    GroupSchedule sched;
    sched.base = base;
    sched.parallelism = 1;
    sched.active_rows = base < mask.rows() ? 1 : 0;
    if (!sched.active_rows)
        return sched;
    for (uint32_t key : mask.row(base)) {
        Round r;
        r.issues.push_back({key, 1u});
        sched.rounds.push_back(std::move(r));
    }
    return sched;
}

GroupSchedule
InOrderScheduler::scheduleGroup(const SparseMask &mask, size_t base) const
{
    GroupSchedule sched;
    sched.base = base;
    sched.parallelism = parallelism_;
    const size_t rows =
        base < mask.rows() ? std::min(parallelism_, mask.rows() - base)
                           : 0;
    sched.active_rows = rows;

    size_t max_len = 0;
    for (size_t q = 0; q < rows; ++q)
        max_len = std::max(max_len, mask.row(base + q).size());

    for (size_t step = 0; step < max_len; ++step) {
        Round round;
        // Group queries that need the same key at this position.
        std::map<uint32_t, uint32_t> key_to_mask;
        for (size_t q = 0; q < rows; ++q) {
            const auto &ids = mask.row(base + q);
            if (step < ids.size())
                key_to_mask[ids[step]] |= (1u << q);
        }
        for (const auto &[key, qmask] : key_to_mask)
            round.issues.push_back({key, qmask});
        if (!round.issues.empty())
            sched.rounds.push_back(std::move(round));
    }
    return sched;
}

GroupSchedule
LocalityAwareScheduler::scheduleGroup(const SparseMask &mask,
                                      size_t base) const
{
    GroupSchedule sched;
    sched.base = base;
    sched.parallelism = parallelism_;
    const size_t rows =
        base < mask.rows() ? std::min(parallelism_, mask.rows() - base)
                           : 0;
    sched.active_rows = rows;
    if (rows == 0)
        return sched;

    // The hardware ID buffers of Figure 10: buffer[m] holds the key IDs
    // still required by exactly the query subset m. All keys in one
    // buffer are interchangeable, so the greedy search of Algorithm 1
    // only ever inspects the (2^T - 1) buffers, never individual keys.
    const size_t num_buffers = size_t{1} << rows;
    std::vector<std::vector<uint32_t>> buffers(num_buffers);
    std::vector<size_t> head(num_buffers, 0); // FIFO consume pointer
    {
        // Build owner masks by merging the (sorted) row id lists.
        std::map<uint32_t, uint32_t> owners;
        for (size_t q = 0; q < rows; ++q)
            for (uint32_t key : mask.row(base + q))
                owners[key] |= (1u << q);
        for (const auto &[key, qmask] : owners)
            buffers[qmask].push_back(key);
    }
    std::vector<size_t> remaining(rows, 0);
    for (size_t q = 0; q < rows; ++q)
        remaining[q] = mask.row(base + q).size();

    auto buffer_empty = [&](size_t m) {
        return head[m] >= buffers[m].size();
    };
    auto any_remaining = [&]() {
        for (size_t q = 0; q < rows; ++q)
            if (remaining[q] > 0)
                return true;
        return false;
    };

    while (any_remaining()) {
        // One synchronized round: serve every query with work left
        // exactly once.
        uint32_t uncovered = 0;
        for (size_t q = 0; q < rows; ++q)
            if (remaining[q] > 0)
                uncovered |= (1u << q);

        Round round;
        while (uncovered != 0) {
            // Greedy buffer pick: most uncovered queries served; among
            // ties, fewest already-covered co-owners (don't split shared
            // buffers needlessly).
            size_t best_mask = 0;
            int best_cover = -1;
            int best_spill = 0;
            for (size_t m = 1; m < num_buffers; ++m) {
                if (buffer_empty(m))
                    continue;
                const uint32_t cover_mask =
                    static_cast<uint32_t>(m) & uncovered;
                if (!cover_mask)
                    continue;
                const int cover = __builtin_popcount(cover_mask);
                const int spill = __builtin_popcount(
                    static_cast<uint32_t>(m) & ~uncovered);
                if (cover > best_cover ||
                    (cover == best_cover && spill < best_spill)) {
                    best_mask = m;
                    best_cover = cover;
                    best_spill = spill;
                }
            }
            if (best_mask == 0)
                break; // no key can serve the remaining queries
            const uint32_t key = buffers[best_mask][head[best_mask]++];
            const uint32_t serve =
                static_cast<uint32_t>(best_mask) & uncovered;
            round.issues.push_back({key, serve});
            uncovered &= ~serve;
            for (size_t q = 0; q < rows; ++q)
                if (serve & (1u << q))
                    --remaining[q];
            // Move the ID to the buffer of its remaining owners
            // (B[xxx1] -> B[xxx0] in Algorithm 1), or retire it.
            const uint32_t rest =
                static_cast<uint32_t>(best_mask) & ~serve;
            if (rest)
                buffers[rest].push_back(key);
        }
        DOTA_ASSERT(!round.issues.empty(),
                    "scheduler made no progress with work remaining");
        sched.rounds.push_back(std::move(round));
    }
    return sched;
}

} // namespace dota
