/**
 * @file
 * Key/value issue schedulers for the Token-Parallel dataflow.
 *
 * Three policies, matching Figures 8/9 of the paper:
 *
 *  - RowByRowScheduler: prior work's dataflow — one query at a time, no
 *    sharing; every connection loads its key (Figure 8 top row).
 *  - InOrderScheduler: token parallel, left-to-right key order per query;
 *    keys shared within a round but locality across rounds is broken
 *    (Figure 9, "w/o Out-of-order Execution").
 *  - LocalityAwareScheduler: Algorithm 1 — out-of-order issue from ID
 *    buffers keyed by query bit-mask, most-shared keys first, complement
 *    queries served from their least-shared remaining keys. This is the
 *    hardware Scheduler of Figure 10.
 */
#pragma once

#include "sched/schedule.hpp"
#include "tensor/sparse_mask.hpp"

namespace dota {

/** Common interface: schedule one group or a whole mask. */
class Scheduler
{
  public:
    explicit Scheduler(size_t parallelism) : parallelism_(parallelism) {}
    virtual ~Scheduler() = default;

    /**
     * Schedule rows [base, base + parallelism) of @p mask (clamped to the
     * mask's row count).
     */
    virtual GroupSchedule scheduleGroup(const SparseMask &mask,
                                        size_t base) const = 0;

    /** Schedule every group of the mask. */
    std::vector<GroupSchedule> scheduleAll(const SparseMask &mask) const;

    size_t parallelism() const { return parallelism_; }

  protected:
    size_t parallelism_;
};

/** Prior work: query-serial processing, no key sharing. */
class RowByRowScheduler : public Scheduler
{
  public:
    RowByRowScheduler() : Scheduler(1) {}
    GroupSchedule scheduleGroup(const SparseMask &mask,
                                size_t base) const override;
};

/** Token-parallel, in-order (left-to-right) key issue. */
class InOrderScheduler : public Scheduler
{
  public:
    explicit InOrderScheduler(size_t parallelism)
        : Scheduler(parallelism)
    {}
    GroupSchedule scheduleGroup(const SparseMask &mask,
                                size_t base) const override;
};

/** Algorithm 1: locality-aware out-of-order scheduling. */
class LocalityAwareScheduler : public Scheduler
{
  public:
    /**
     * @param parallelism  T; the hardware Scheduler needs 2^T - 1 ID
     *                     buffers (Figure 15's right axis)
     */
    explicit LocalityAwareScheduler(size_t parallelism)
        : Scheduler(parallelism)
    {
        DOTA_ASSERT(parallelism >= 1 && parallelism <= 16,
                    "parallelism {} out of [1, 16]", parallelism);
    }

    GroupSchedule scheduleGroup(const SparseMask &mask,
                                size_t base) const override;

    /** ID buffers the hardware needs for this T (2^T - 1). */
    size_t bufferCount() const { return (size_t{1} << parallelism_) - 1; }
};

} // namespace dota
