/**
 * @file
 * Implementation of schedule structures.
 */
#include "sched/schedule.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace dota {

int
Round::served() const
{
    int total = 0;
    for (const Issue &i : issues)
        total += i.popcount();
    return total;
}

uint64_t
GroupSchedule::keyLoads() const
{
    uint64_t total = 0;
    for (const Round &r : rounds)
        total += r.loads();
    return total;
}

uint64_t
GroupSchedule::connections() const
{
    uint64_t total = 0;
    for (const Round &r : rounds)
        total += static_cast<uint64_t>(r.served());
    return total;
}

double
GroupSchedule::utilization() const
{
    if (rounds.empty() || active_rows == 0)
        return 1.0;
    const double slots =
        static_cast<double>(rounds.size()) *
        static_cast<double>(active_rows);
    return static_cast<double>(connections()) / slots;
}

bool
GroupSchedule::covers(const std::vector<std::vector<uint32_t>> &rows) const
{
    // Gather issued connections per query.
    std::vector<std::multiset<uint32_t>> issued(rows.size());
    for (const Round &r : rounds) {
        std::set<uint32_t> in_round; // a query may appear once per round
        for (const Issue &is : r.issues) {
            for (size_t q = 0; q < rows.size(); ++q) {
                if (is.query_mask & (1u << q)) {
                    if (in_round.count(static_cast<uint32_t>(q)))
                        return false; // query served twice in one round
                    in_round.insert(static_cast<uint32_t>(q));
                    issued[q].insert(is.key);
                }
            }
        }
    }
    for (size_t q = 0; q < rows.size(); ++q) {
        std::multiset<uint32_t> want(rows[q].begin(), rows[q].end());
        if (issued[q] != want)
            return false;
    }
    return true;
}

} // namespace dota
