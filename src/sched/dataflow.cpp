/**
 * @file
 * Implementation of the dataflow analysis.
 */
#include "sched/dataflow.hpp"

#include <memory>
#include <set>

namespace dota {

std::string
dataflowName(Dataflow d)
{
    switch (d) {
      case Dataflow::RowByRow:
        return "row-by-row";
      case Dataflow::TokenParallelInOrder:
        return "token-parallel (in-order)";
      case Dataflow::TokenParallelOoO:
        return "token-parallel (out-of-order)";
    }
    DOTA_PANIC("unknown dataflow");
}

DataflowStats
analyzeDataflow(const SparseMask &mask, Dataflow dataflow, size_t t)
{
    std::unique_ptr<Scheduler> sched;
    switch (dataflow) {
      case Dataflow::RowByRow:
        sched = std::make_unique<RowByRowScheduler>();
        break;
      case Dataflow::TokenParallelInOrder:
        sched = std::make_unique<InOrderScheduler>(t);
        break;
      case Dataflow::TokenParallelOoO:
        sched = std::make_unique<LocalityAwareScheduler>(t);
        break;
    }

    DataflowStats stats;
    double util_weighted = 0.0;
    uint64_t util_rounds = 0;
    const size_t group = sched->parallelism();
    for (size_t base = 0; base < mask.rows(); base += group) {
        const GroupSchedule gs = sched->scheduleGroup(mask, base);
        stats.key_loads += gs.keyLoads();
        stats.rounds += gs.rounds.size();
        stats.connections += gs.connections();

        // Ideal lower bound: each distinct key in the group loads once.
        std::set<uint32_t> distinct;
        const size_t rows = std::min(group, mask.rows() - base);
        for (size_t q = 0; q < rows; ++q)
            distinct.insert(mask.row(base + q).begin(),
                            mask.row(base + q).end());
        stats.ideal_loads += distinct.size();

        util_weighted += gs.utilization() *
                         static_cast<double>(gs.rounds.size());
        util_rounds += gs.rounds.size();
    }
    // The computation order is reused verbatim for the A*V stage, so
    // value traffic mirrors key traffic (Section 4.3).
    stats.value_loads = stats.key_loads;
    stats.utilization =
        util_rounds ? util_weighted / static_cast<double>(util_rounds)
                    : 1.0;
    return stats;
}

SparseMask
figure8Mask()
{
    // q1: k2,k3 | q2: k1,k2,k5 | q3: k2,k3 | q4: k1,k3,k5  (1-indexed in
    // the paper; stored 0-indexed here).
    SparseMask m(4, 5);
    m.setRow(0, {1, 2});
    m.setRow(1, {0, 1, 4});
    m.setRow(2, {1, 2});
    m.setRow(3, {0, 2, 4});
    return m;
}

SparseMask
figure9Mask()
{
    // q1: k1,k2,k3 | q2: k2,k3,k4 | q3: k2,k5,k6 | q4: k3,k4,k5.
    SparseMask m(4, 6);
    m.setRow(0, {0, 1, 2});
    m.setRow(1, {1, 2, 3});
    m.setRow(2, {1, 4, 5});
    m.setRow(3, {2, 3, 4});
    return m;
}

} // namespace dota
