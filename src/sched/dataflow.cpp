/**
 * @file
 * Implementation of the dataflow analysis.
 */
#include "sched/dataflow.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

namespace dota {

namespace {

/**
 * The streaming tiled dataflow: no Scheduler instance — the issue order
 * is fixed (ascending keys, one KV tile at a time). Per group of @p t
 * query rows and per tile, every kept key of the tile loads once and
 * occupies one broadcast round; a tile nobody keeps is skipped; every
 * contributing tile adds one accumulator flush.
 */
DataflowStats
analyzeStreaming(const SparseMask &mask, size_t t, size_t tile)
{
    DOTA_ASSERT(t >= 1, "token parallelism must be >= 1");
    tile = std::max<size_t>(1, tile);
    DataflowStats stats;
    double util_weighted = 0.0;
    uint64_t util_rounds = 0;
    for (size_t base = 0; base < mask.rows(); base += t) {
        const size_t rows = std::min(t, mask.rows() - base);
        // Per-row cursors into the (ascending) kept-id lists.
        std::vector<size_t> cur(rows, 0);
        for (size_t c0 = 0; c0 < mask.cols(); c0 += tile) {
            const size_t c1 = std::min(mask.cols(), c0 + tile);
            // Kept keys of this tile: union across the group (each
            // distinct key loads/issues once), connections per row.
            std::set<uint32_t> tile_keys;
            uint64_t tile_conns = 0;
            for (size_t q = 0; q < rows; ++q) {
                const auto &ids = mask.row(base + q);
                size_t &i = cur[q];
                while (i < ids.size() && ids[i] < c1) {
                    tile_keys.insert(ids[i]);
                    ++tile_conns;
                    ++i;
                }
            }
            if (tile_keys.empty())
                continue; // omitted tile: skipped entirely
            const uint64_t issues = tile_keys.size();
            stats.key_loads += issues;
            stats.rounds += issues;
            stats.connections += tile_conns;
            ++stats.tile_flushes;
            util_weighted +=
                static_cast<double>(tile_conns) /
                static_cast<double>(issues * t) *
                static_cast<double>(issues);
            util_rounds += issues;
        }
        // Tiles partition the key axis, so the per-group distinct-key
        // lower bound is reached by construction.
        std::set<uint32_t> distinct;
        for (size_t q = 0; q < rows; ++q)
            distinct.insert(mask.row(base + q).begin(),
                            mask.row(base + q).end());
        stats.ideal_loads += distinct.size();
    }
    stats.value_loads = stats.key_loads;
    stats.utilization =
        util_rounds ? util_weighted / static_cast<double>(util_rounds)
                    : 1.0;
    return stats;
}

} // namespace

std::string
dataflowName(Dataflow d)
{
    switch (d) {
      case Dataflow::RowByRow:
        return "row-by-row";
      case Dataflow::TokenParallelInOrder:
        return "token-parallel (in-order)";
      case Dataflow::TokenParallelOoO:
        return "token-parallel (out-of-order)";
      case Dataflow::StreamingTiled:
        return "streaming (tiled online-softmax)";
    }
    DOTA_PANIC("unknown dataflow");
}

DataflowStats
analyzeDataflow(const SparseMask &mask, Dataflow dataflow, size_t t,
                size_t tile)
{
    std::unique_ptr<Scheduler> sched;
    switch (dataflow) {
      case Dataflow::RowByRow:
        sched = std::make_unique<RowByRowScheduler>();
        break;
      case Dataflow::TokenParallelInOrder:
        sched = std::make_unique<InOrderScheduler>(t);
        break;
      case Dataflow::TokenParallelOoO:
        sched = std::make_unique<LocalityAwareScheduler>(t);
        break;
      case Dataflow::StreamingTiled:
        return analyzeStreaming(mask, t, tile);
    }

    DataflowStats stats;
    double util_weighted = 0.0;
    uint64_t util_rounds = 0;
    const size_t group = sched->parallelism();
    for (size_t base = 0; base < mask.rows(); base += group) {
        const GroupSchedule gs = sched->scheduleGroup(mask, base);
        stats.key_loads += gs.keyLoads();
        stats.rounds += gs.rounds.size();
        stats.connections += gs.connections();

        // Ideal lower bound: each distinct key in the group loads once.
        std::set<uint32_t> distinct;
        const size_t rows = std::min(group, mask.rows() - base);
        for (size_t q = 0; q < rows; ++q)
            distinct.insert(mask.row(base + q).begin(),
                            mask.row(base + q).end());
        stats.ideal_loads += distinct.size();

        util_weighted += gs.utilization() *
                         static_cast<double>(gs.rounds.size());
        util_rounds += gs.rounds.size();
    }
    // The computation order is reused verbatim for the A*V stage, so
    // value traffic mirrors key traffic (Section 4.3).
    stats.value_loads = stats.key_loads;
    stats.utilization =
        util_rounds ? util_weighted / static_cast<double>(util_rounds)
                    : 1.0;
    return stats;
}

SparseMask
figure8Mask()
{
    // q1: k2,k3 | q2: k1,k2,k5 | q3: k2,k3 | q4: k1,k3,k5  (1-indexed in
    // the paper; stored 0-indexed here).
    SparseMask m(4, 5);
    m.setRow(0, {1, 2});
    m.setRow(1, {0, 1, 4});
    m.setRow(2, {1, 2});
    m.setRow(3, {0, 2, 4});
    return m;
}

SparseMask
figure9Mask()
{
    // q1: k1,k2,k3 | q2: k2,k3,k4 | q3: k2,k5,k6 | q4: k3,k4,k5.
    SparseMask m(4, 6);
    m.setRow(0, {0, 1, 2});
    m.setRow(1, {1, 2, 3});
    m.setRow(2, {1, 4, 5});
    m.setRow(3, {2, 3, 4});
    return m;
}

} // namespace dota
