/**
 * @file
 * Dataflow analysis: memory traffic and utilization of a sparse attention
 * computation under the three scheduling policies (Figures 8/9/15).
 */
#pragma once

#include <string>

#include "sched/scheduler.hpp"

namespace dota {

/** Scheduling policy selector. */
enum class Dataflow { RowByRow, TokenParallelInOrder, TokenParallelOoO };

/** Human-readable dataflow name. */
std::string dataflowName(Dataflow d);

/** Aggregate dataflow statistics over a whole mask. */
struct DataflowStats
{
    uint64_t key_loads = 0;    ///< key-vector loads (SRAM reads)
    uint64_t value_loads = 0;  ///< value-vector loads (schedule is reused
                               ///< for A*V, Section 4.3)
    uint64_t rounds = 0;       ///< synchronized compute rounds
    uint64_t connections = 0;  ///< total (query, key) pairs computed
    uint64_t ideal_loads = 0;  ///< lower bound: distinct keys per group
    double utilization = 0.0;  ///< mean PE-slot utilization
};

/**
 * Analyze @p mask under @p dataflow with token parallelism @p t
 * (ignored for RowByRow).
 */
DataflowStats analyzeDataflow(const SparseMask &mask, Dataflow dataflow,
                              size_t t = 4);

/** Build the worked example of Figure 8 (4 queries x 5 keys, 10 nnz). */
SparseMask figure8Mask();

/** Build the worked example of Figure 9 (4 queries x 6 keys, 12 nnz). */
SparseMask figure9Mask();

} // namespace dota
