/**
 * @file
 * Dataflow analysis: memory traffic and utilization of a sparse attention
 * computation under the scheduling policies (Figures 8/9/15), plus the
 * streaming tiled dataflow of the software backend (DESIGN.md §13).
 */
#pragma once

#include <string>

#include "sched/scheduler.hpp"
#include "tensor/streaming_attention.hpp"

namespace dota {

/** Scheduling policy selector. */
enum class Dataflow
{
    RowByRow,
    TokenParallelInOrder,
    TokenParallelOoO,

    /**
     * Online-softmax streaming: query groups of T lanes walk the keys
     * one KV tile at a time in ascending order, issuing each kept key
     * of the tile once to the group (tile-bounded score buffer instead
     * of row-length). Tiles with no kept key are skipped entirely, and
     * every contributing tile costs one extra accumulator-rescale
     * round (the FLASH-D recurrence) — the accelerator-model twin of
     * tensor/streaming_attention.hpp.
     */
    StreamingTiled,
};

/** Human-readable dataflow name. */
std::string dataflowName(Dataflow d);

/** Aggregate dataflow statistics over a whole mask. */
struct DataflowStats
{
    uint64_t key_loads = 0;    ///< key-vector loads (SRAM reads)
    uint64_t value_loads = 0;  ///< value-vector loads (schedule is reused
                               ///< for A*V, Section 4.3)
    uint64_t rounds = 0;       ///< synchronized compute rounds
    uint64_t connections = 0;  ///< total (query, key) pairs computed
    uint64_t ideal_loads = 0;  ///< lower bound: distinct keys per group
    double utilization = 0.0;  ///< mean PE-slot utilization

    /**
     * StreamingTiled only (0 otherwise): contributing (group, tile)
     * pairs. Each costs one lock-step rescale of the group's d_h-wide
     * accumulators, charged by the accelerator's attention phase.
     */
    uint64_t tile_flushes = 0;
};

/**
 * Analyze @p mask under @p dataflow with token parallelism @p t
 * (ignored for RowByRow). @p tile is the KV-tile width of the
 * StreamingTiled dataflow (ignored by the others).
 */
DataflowStats analyzeDataflow(const SparseMask &mask, Dataflow dataflow,
                              size_t t = 4,
                              size_t tile = kStreamingAttnTile);

/** Build the worked example of Figure 8 (4 queries x 5 keys, 10 nnz). */
SparseMask figure8Mask();

/** Build the worked example of Figure 9 (4 queries x 6 keys, 12 nnz). */
SparseMask figure9Mask();

} // namespace dota
