/**
 * @file
 * Schedule data structures for the Token-Parallel dataflow (Section 4.3).
 *
 * The attention-output stage processes T query rows in parallel (one
 * "Header" per Lane, T = 4 in DOTA). A GroupSchedule records, for one
 * group of T consecutive queries, the order in which key/value vectors
 * are issued: a sequence of rounds, where each round gives every active
 * query exactly one key (the synchronization property Algorithm 1
 * maintains) and each distinct key issued in a round is loaded from SRAM
 * once and broadcast to the queries it serves.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dota {

/** One key issue: load key @p key, serve the queries in @p query_mask. */
struct Issue
{
    uint32_t key = 0;
    uint32_t query_mask = 0; ///< bit i = query (group_base + i)

    int popcount() const { return __builtin_popcount(query_mask); }
};

/** One synchronized round: each active query receives exactly one key. */
struct Round
{
    std::vector<Issue> issues;

    /** Number of key-vector loads this round (one per issue). */
    size_t loads() const { return issues.size(); }

    /** Number of queries served this round. */
    int served() const;
};

/** Complete schedule for one group of up to T query rows. */
struct GroupSchedule
{
    size_t base = 0;        ///< first query row of the group
    size_t parallelism = 4; ///< T
    size_t active_rows = 0; ///< rows in this group (may be < T at edges)
    std::vector<Round> rounds;

    /** Total key-vector loads across all rounds. */
    uint64_t keyLoads() const;

    /** Sum over rounds of queries served (== total connections). */
    uint64_t connections() const;

    /**
     * Compute utilization: served query-slots over issued query-slots
     * (rounds * active_rows). 1.0 = perfectly balanced.
     */
    double utilization() const;

    /**
     * Validate against a per-query requirement list: every (query, key)
     * connection appears exactly once and nothing extra is issued.
     * Returns false with no diagnostics on failure (tests report).
     */
    bool covers(const std::vector<std::vector<uint32_t>> &rows) const;
};

} // namespace dota
