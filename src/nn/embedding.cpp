/**
 * @file
 * Implementation of the embedding layer.
 */
#include "nn/embedding.hpp"

namespace dota {

EmbeddingLayer::EmbeddingLayer(const std::string &name, size_t vocab,
                               size_t dim, Rng &rng)
    : table_(name + ".table",
             Matrix::randomNormal(vocab, dim, rng, 0.0f, 0.02f))
{}

Matrix
EmbeddingLayer::forward(const std::vector<int> &ids)
{
    cached_ids_ = ids;
    Matrix out(ids.size(), table_.value.cols());
    for (size_t i = 0; i < ids.size(); ++i) {
        const auto id = static_cast<size_t>(ids[i]);
        DOTA_ASSERT(id < table_.value.rows(), "token id {} out of vocab {}",
                    ids[i], table_.value.rows());
        std::copy(table_.value.row(id),
                  table_.value.row(id) + table_.value.cols(), out.row(i));
    }
    return out;
}

void
EmbeddingLayer::backward(const Matrix &dy)
{
    DOTA_ASSERT(dy.rows() == cached_ids_.size(),
                "embedding backward shape mismatch");
    for (size_t i = 0; i < cached_ids_.size(); ++i) {
        const auto id = static_cast<size_t>(cached_ids_[i]);
        for (size_t j = 0; j < dy.cols(); ++j)
            table_.grad(id, j) += dy(i, j);
    }
}

void
EmbeddingLayer::collectParams(std::vector<Parameter *> &out)
{
    out.push_back(&table_);
}

} // namespace dota
