/**
 * @file
 * Training losses: softmax cross-entropy (classification and language
 * modeling) and helpers to convert between loss and perplexity.
 */
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace dota {

/**
 * Mean softmax cross-entropy over rows of @p logits.
 *
 * @param logits     (n x C)
 * @param labels     n class indices; an index of -1 skips that row
 *                   (used to ignore positions in LM training)
 * @param[out] dlogits  gradient of the mean loss w.r.t. logits
 * @return the mean loss over the non-ignored rows
 */
double softmaxCrossEntropy(const Matrix &logits,
                           const std::vector<int> &labels, Matrix &dlogits);

/** Argmax of each row. */
std::vector<int> rowArgmax(const Matrix &logits);

/** Classification accuracy of argmax predictions vs labels (ignores -1). */
double accuracy(const Matrix &logits, const std::vector<int> &labels);

/** Perplexity = exp(mean cross-entropy). */
double perplexityFromLoss(double mean_ce);

} // namespace dota
