/**
 * @file
 * Implementation of training losses.
 */
#include "nn/loss.hpp"

#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace dota {

double
softmaxCrossEntropy(const Matrix &logits, const std::vector<int> &labels,
                    Matrix &dlogits)
{
    DOTA_ASSERT(logits.rows() == labels.size(),
                "{} rows vs {} labels", logits.rows(), labels.size());
    const size_t n = logits.rows(), c = logits.cols();
    dlogits = Matrix(n, c);
    double total = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < n; ++i) {
        if (labels[i] < 0)
            continue;
        ++counted;
    }
    DOTA_ASSERT(counted > 0, "no labeled rows in cross-entropy");
    const double inv = 1.0 / static_cast<double>(counted);

    for (size_t i = 0; i < n; ++i) {
        if (labels[i] < 0)
            continue;
        const float *row = logits.row(i);
        float mx = -std::numeric_limits<float>::infinity();
        for (size_t j = 0; j < c; ++j)
            mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (size_t j = 0; j < c; ++j)
            denom += std::exp(static_cast<double>(row[j]) - mx);
        const auto label = static_cast<size_t>(labels[i]);
        DOTA_ASSERT(label < c, "label {} out of {} classes", label, c);
        const double logp =
            (static_cast<double>(row[label]) - mx) - std::log(denom);
        total += -logp;
        for (size_t j = 0; j < c; ++j) {
            const double p =
                std::exp(static_cast<double>(row[j]) - mx) / denom;
            dlogits(i, j) = static_cast<float>(
                (p - (j == label ? 1.0 : 0.0)) * inv);
        }
    }
    return total * inv;
}

std::vector<int>
rowArgmax(const Matrix &logits)
{
    std::vector<int> out(logits.rows());
    for (size_t i = 0; i < logits.rows(); ++i) {
        const float *row = logits.row(i);
        size_t best = 0;
        for (size_t j = 1; j < logits.cols(); ++j)
            if (row[j] > row[best])
                best = j;
        out[i] = static_cast<int>(best);
    }
    return out;
}

double
accuracy(const Matrix &logits, const std::vector<int> &labels)
{
    DOTA_ASSERT(logits.rows() == labels.size(), "accuracy shape mismatch");
    const auto preds = rowArgmax(logits);
    size_t hit = 0, counted = 0;
    for (size_t i = 0; i < preds.size(); ++i) {
        if (labels[i] < 0)
            continue;
        ++counted;
        hit += preds[i] == labels[i];
    }
    return counted ? static_cast<double>(hit) / counted : 0.0;
}

double
perplexityFromLoss(double mean_ce)
{
    return std::exp(mean_ce);
}

} // namespace dota
