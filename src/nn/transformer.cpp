/**
 * @file
 * Implementation of the end-to-end transformer models.
 */
#include "nn/transformer.hpp"

namespace dota {

TransformerClassifier::TransformerClassifier(const TransformerConfig &cfg)
    : cfg_(cfg), init_rng_(cfg.seed),
      input_("input", cfg.in_dim, cfg.dim, init_rng_),
      head_("head", cfg.dim, cfg.classes, init_rng_)
{
    blocks_.reserve(cfg.layers);
    for (size_t l = 0; l < cfg.layers; ++l)
        blocks_.push_back(std::make_unique<EncoderBlock>(
            format("enc{}", l), l, cfg.dim, cfg.heads, cfg.ffn_dim,
            init_rng_, cfg.act, /*causal=*/false));
}

Matrix
TransformerClassifier::forward(const Matrix &features)
{
    last_n_ = features.rows();
    Matrix h = input_.forward(features);
    for (auto &blk : blocks_)
        h = blk->forward(h);
    // Mean pooling over tokens.
    Matrix pooled(1, cfg_.dim);
    const float inv = 1.0f / static_cast<float>(last_n_);
    for (size_t i = 0; i < h.rows(); ++i)
        for (size_t j = 0; j < h.cols(); ++j)
            pooled(0, j) += h(i, j) * inv;
    return head_.forward(pooled);
}

void
TransformerClassifier::backward(const Matrix &dlogits)
{
    const Matrix dpooled = head_.backward(dlogits);
    // Broadcast pooling gradient back over tokens.
    Matrix dh(last_n_, cfg_.dim);
    const float inv = 1.0f / static_cast<float>(last_n_);
    for (size_t i = 0; i < last_n_; ++i)
        for (size_t j = 0; j < cfg_.dim; ++j)
            dh(i, j) = dpooled(0, j) * inv;
    for (size_t l = blocks_.size(); l-- > 0;)
        dh = blocks_[l]->backward(dh);
    input_.backward(dh);
}

void
TransformerClassifier::setHook(AttentionHook *hook)
{
    for (auto &blk : blocks_)
        blk->attention().setHook(hook);
}

void
TransformerClassifier::setForceDense(bool force)
{
    for (auto &blk : blocks_)
        blk->attention().setForceDense(force);
}

bool
TransformerClassifier::hasHook() const
{
    for (const auto &blk : blocks_)
        if (blk->attention().hook())
            return true;
    return false;
}

void
TransformerClassifier::collectParams(std::vector<Parameter *> &out)
{
    input_.collectParams(out);
    for (auto &blk : blocks_)
        blk->collectParams(out);
    head_.collectParams(out);
}

CausalLM::CausalLM(const TransformerConfig &cfg)
    : cfg_(cfg), init_rng_(cfg.seed),
      tok_("tok", cfg.vocab, cfg.dim, init_rng_),
      pos_("pos", Matrix::randomNormal(cfg.max_seq, cfg.dim, init_rng_,
                                       0.0f, 0.02f)),
      head_("lm_head", cfg.dim, cfg.vocab, init_rng_, /*bias=*/false)
{
    blocks_.reserve(cfg.layers);
    for (size_t l = 0; l < cfg.layers; ++l)
        blocks_.push_back(std::make_unique<EncoderBlock>(
            format("dec{}", l), l, cfg.dim, cfg.heads, cfg.ffn_dim,
            init_rng_, cfg.act, /*causal=*/true));
}

Matrix
CausalLM::forward(const std::vector<int> &ids)
{
    DOTA_ASSERT(ids.size() <= cfg_.max_seq,
                "sequence length {} exceeds max {}", ids.size(),
                cfg_.max_seq);
    last_n_ = ids.size();
    Matrix h = tok_.forward(ids);
    for (size_t i = 0; i < h.rows(); ++i)
        for (size_t j = 0; j < h.cols(); ++j)
            h(i, j) += pos_.value(i, j);
    for (auto &blk : blocks_)
        h = blk->forward(h);
    return head_.forward(h);
}

void
CausalLM::backward(const Matrix &dlogits)
{
    Matrix dh = head_.backward(dlogits);
    for (size_t l = blocks_.size(); l-- > 0;)
        dh = blocks_[l]->backward(dh);
    for (size_t i = 0; i < last_n_; ++i)
        for (size_t j = 0; j < cfg_.dim; ++j)
            pos_.grad(i, j) += dh(i, j);
    tok_.backward(dh);
}

double
CausalLM::lmLoss(const std::vector<int> &ids, bool train)
{
    const Matrix logits = forward(ids);
    // Position i predicts token i+1; last position is ignored.
    std::vector<int> targets(ids.size(), -1);
    for (size_t i = 0; i + 1 < ids.size(); ++i)
        targets[i] = ids[i + 1];
    Matrix dlogits;
    const double loss = softmaxCrossEntropy(logits, targets, dlogits);
    if (train)
        backward(dlogits);
    return loss;
}

void
CausalLM::setHook(AttentionHook *hook)
{
    for (auto &blk : blocks_)
        blk->attention().setHook(hook);
}

void
CausalLM::setForceDense(bool force)
{
    for (auto &blk : blocks_)
        blk->attention().setForceDense(force);
}

bool
CausalLM::hasHook() const
{
    for (const auto &blk : blocks_)
        if (blk->attention().hook())
            return true;
    return false;
}

void
CausalLM::collectParams(std::vector<Parameter *> &out)
{
    tok_.collectParams(out);
    out.push_back(&pos_);
    for (auto &blk : blocks_)
        blk->collectParams(out);
    head_.collectParams(out);
}

} // namespace dota
