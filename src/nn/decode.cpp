/**
 * @file
 * Implementation of incremental decoding.
 */
#include "nn/decode.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/crc32.hpp"
#include "nn/attention_backend.hpp"
#include "tensor/streaming_attention.hpp"
#include "tensor/topk.hpp"

namespace dota {

void
KvCache::append(const Matrix &k_row, const Matrix &v_row)
{
    DOTA_ASSERT(k_row.rows() == 1 && v_row.rows() == 1,
                "cache rows must be single vectors");
    if (k.empty()) {
        k = k_row;
        v = v_row;
        mass.assign(1, 0.0);
        return;
    }
    Matrix nk(k.rows() + 1, k.cols());
    std::copy(k.data(), k.data() + k.size(), nk.data());
    std::copy(k_row.data(), k_row.data() + k_row.size(),
              nk.row(k.rows()));
    Matrix nv(v.rows() + 1, v.cols());
    std::copy(v.data(), v.data() + v.size(), nv.data());
    std::copy(v_row.data(), v_row.data() + v_row.size(),
              nv.row(v.rows()));
    k = std::move(nk);
    v = std::move(nv);
    mass.push_back(0.0);
}

size_t
evictWeak(KvCache &cache, size_t keep)
{
    const size_t t = cache.length();
    DOTA_ASSERT(cache.mass.size() == t,
                "attention-mass telemetry out of sync with cache");
    if (keep >= t || t == 0)
        return 0;
    DOTA_ASSERT(keep >= 1, "eviction must keep at least one entry");

    // Survivors: the `keep` highest-mass positions, older position
    // winning ties, compacted back in original (causal) order.
    std::vector<size_t> order(t);
    for (size_t i = 0; i < t; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (cache.mass[a] != cache.mass[b])
            return cache.mass[a] > cache.mass[b];
        return a < b;
    });
    order.resize(keep);
    std::sort(order.begin(), order.end());

    Matrix nk(keep, cache.k.cols());
    Matrix nv(keep, cache.v.cols());
    std::vector<double> nm(keep);
    for (size_t i = 0; i < keep; ++i) {
        const size_t src = order[i];
        std::copy(cache.k.row(src), cache.k.row(src) + cache.k.cols(),
                  nk.row(i));
        std::copy(cache.v.row(src), cache.v.row(src) + cache.v.cols(),
                  nv.row(i));
        nm[i] = cache.mass[src];
    }
    cache.k = std::move(nk);
    cache.v = std::move(nv);
    cache.mass = std::move(nm);
    return t - keep;
}

size_t
evictWeak(DecodeState &state, double keep_fraction)
{
    DOTA_ASSERT(keep_fraction > 0.0 && keep_fraction <= 1.0,
                "keep_fraction must be in (0, 1]");
    size_t evicted = 0;
    for (KvCache &cache : state.layers) {
        const size_t t = cache.length();
        if (t == 0)
            continue;
        const size_t keep = std::max<size_t>(
            1, static_cast<size_t>(
                   std::ceil(keep_fraction * static_cast<double>(t))));
        evicted += evictWeak(cache, keep);
    }
    return evicted;
}

size_t
kvBytes(const DecodeState &state)
{
    size_t bytes = 0;
    for (const KvCache &cache : state.layers)
        bytes += cache.bytes();
    return bytes;
}

std::vector<uint32_t>
sealKv(const DecodeState &state)
{
    std::vector<uint32_t> seals;
    seals.reserve(state.layers.size());
    for (const KvCache &cache : state.layers) {
        uint32_t crc = crc32(cache.k.data(),
                             cache.k.size() * sizeof(float));
        crc = crc32(cache.v.data(), cache.v.size() * sizeof(float),
                    crc);
        seals.push_back(crc);
    }
    return seals;
}

bool
verifyKv(const DecodeState &state, const std::vector<uint32_t> &seals)
{
    return sealKv(state) == seals;
}

void
corruptKv(DecodeState &state, size_t layer, KvFault mode)
{
    DOTA_ASSERT(layer < state.layers.size(),
                "corruptKv: layer {} out of range", layer);
    KvCache &cache = state.layers[layer];
    DOTA_ASSERT(cache.length() > 0, "corruptKv: empty cache");
    switch (mode) {
      case KvFault::BitFlip: {
        float &x = cache.k.data()[0];
        uint32_t bits;
        std::memcpy(&bits, &x, sizeof bits);
        bits ^= 1u << 12; // a mantissa bit: value changes, stays finite
        std::memcpy(&x, &bits, sizeof bits);
        break;
      }
      case KvFault::ZeroRow:
        std::fill(cache.k.row(0), cache.k.row(0) + cache.k.cols(),
                  0.0f);
        break;
      case KvFault::TornWrite:
        // Half of the last V row gets plausible-looking new values;
        // only the stale seal betrays the torn update.
        for (size_t j = 0; j < cache.v.cols() / 2 + 1; ++j)
            cache.v.row(cache.v.rows() - 1)[j] += 0.0625f;
        break;
    }
}

KvTransfer
exportKv(const DecodeState &state)
{
    KvTransfer transfer;
    transfer.seals = sealKv(state);
    transfer.state = state; // deep copy: the source may die after this
    return transfer;
}

bool
importKv(const KvTransfer &transfer, DecodeState &dst)
{
    // Verify-on-arrival: the payload must still match the seals taken
    // at departure. On mismatch the receiver keeps its own state — the
    // caller falls back to re-decoding the prefix.
    if (!verifyKv(transfer.state, transfer.seals))
        return false;
    dst = transfer.state;
    return true;
}

namespace {

/** Incremental attention for one new token against a cache. */
Matrix
attentionStep(MultiHeadAttention &attn, const Matrix &x_row,
              KvCache &cache, double retention)
{
    const size_t dh = attn.headDim();
    const size_t heads = attn.heads();
    const Matrix q = matmul(x_row, attn.wq());
    const Matrix k_new = matmul(x_row, attn.wk());
    const Matrix v_new = matmul(x_row, attn.wv());
    cache.append(k_new, v_new);

    const size_t t = cache.length();
    const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(dh));
    Matrix z(1, q.cols());

    // Streaming single-query path: the same dispatch policy as the
    // layer forward (explicit DOTA_ATTN=streaming, or auto once the
    // cache outgrows the streaming threshold), dense-only semantics
    // (retention == 1: dynamic top-k needs the full score row). The
    // second tile pass feeds the same attention-mass telemetry.
    const AttnChoice choice = attnChoice();
    const bool stream =
        retention >= 1.0 &&
        (choice == AttnChoice::Streaming ||
         (choice == AttnChoice::Auto && t >= kStreamingAutoSeqLen));
    if (stream) {
        std::vector<float> probs;
        for (size_t h = 0; h < heads; ++h) {
            const size_t off = h * dh;
            streamingAttentionQuery(q.row(0) + off, cache.k, cache.v, off,
                                    dh, inv_sqrt_dk, z.row(0) + off,
                                    &probs);
            for (size_t j = 0; j < t; ++j)
                if (probs[j] != 0.0f)
                    cache.mass[j] += probs[j];
        }
        return matmul(z, attn.wo());
    }

    for (size_t h = 0; h < heads; ++h) {
        const size_t off = h * dh;
        // Scores of the new query against all cached keys of this head.
        Matrix scores(1, t);
        for (size_t j = 0; j < t; ++j) {
            float acc = 0.0f;
            const float *kr = cache.k.row(j) + off;
            const float *qr = q.row(0) + off;
            for (size_t c = 0; c < dh; ++c)
                acc += qr[c] * kr[c];
            scores(0, j) = acc * inv_sqrt_dk;
        }
        Matrix probs;
        if (retention < 1.0) {
            const size_t keep = std::max<size_t>(
                1, static_cast<size_t>(std::llround(
                       retention * static_cast<double>(t))));
            probs = rowSoftmaxMasked(scores, topkMask(scores, keep));
        } else {
            probs = rowSoftmax(scores);
        }
        for (size_t j = 0; j < t; ++j) {
            const float w = probs(0, j);
            if (w == 0.0f)
                continue;
            cache.mass[j] += w; // detector signal for evictWeak()
            const float *vr = cache.v.row(j) + off;
            for (size_t c = 0; c < dh; ++c)
                z(0, off + c) += w * vr[c];
        }
    }
    return matmul(z, attn.wo());
}

/** One encoder block, incrementally. */
Matrix
blockStep(EncoderBlock &blk, const Matrix &x_row, KvCache &cache,
          double retention)
{
    const Matrix a = attentionStep(blk.attention(), x_row, cache,
                                   retention);
    Matrix mean, rstd;
    const Matrix h1 = layerNorm(add(x_row, a), blk.ln1().gamma(),
                                blk.ln1().beta(), mean, rstd);
    const Matrix pre = addRowBroadcast(matmul(h1, blk.fc1().weight().value),
                                       blk.fc1().bias().value);
    const Matrix hidden =
        blk.activation() == Activation::ReLU ? relu(pre) : gelu(pre);
    const Matrix f = addRowBroadcast(
        matmul(hidden, blk.fc2().weight().value),
        blk.fc2().bias().value);
    return layerNorm(add(h1, f), blk.ln2().gamma(), blk.ln2().beta(),
                     mean, rstd);
}

} // namespace

Matrix
decodeStep(CausalLM &model, DecodeState &state, int token,
           double retention)
{
    const TransformerConfig &cfg = model.config();
    if (state.layers.size() != cfg.layers)
        state.reset(cfg.layers);
    DOTA_ASSERT(state.position < cfg.max_seq,
                "decode position {} exceeds max_seq {}", state.position,
                cfg.max_seq);

    Matrix h = model.tokenEmbedding().forward({token});
    for (size_t c = 0; c < cfg.dim; ++c)
        h(0, c) += model.positionTable()(state.position, c);
    for (size_t l = 0; l < cfg.layers; ++l)
        h = blockStep(*model.blocks()[l], h, state.layers[l], retention);
    ++state.position;
    return matmul(h, model.lmHead().weight().value);
}

std::vector<int>
generate(CausalLM &model, const std::vector<int> &prefix, size_t steps,
         double retention, double temperature, uint64_t seed)
{
    DOTA_ASSERT(!prefix.empty(), "generation needs a non-empty prefix");
    DecodeState state;
    state.reset(model.config().layers);
    Matrix logits;
    for (int tok : prefix)
        logits = decodeStep(model, state, tok, retention);

    Rng rng(seed);
    std::vector<int> out;
    out.reserve(steps);
    for (size_t s = 0; s < steps; ++s) {
        int next;
        if (temperature <= 0.0) {
            next = rowArgmax(logits)[0];
        } else {
            Matrix scaled = scale(logits,
                                  static_cast<float>(1.0 / temperature));
            const Matrix probs = rowSoftmax(scaled);
            const double u = rng.uniform();
            double acc = 0.0;
            next = static_cast<int>(probs.cols()) - 1;
            for (size_t c = 0; c < probs.cols(); ++c) {
                acc += probs(0, c);
                if (u < acc) {
                    next = static_cast<int>(c);
                    break;
                }
            }
        }
        out.push_back(next);
        if (state.position >= model.config().max_seq)
            break;
        logits = decodeStep(model, state, next, retention);
    }
    return out;
}

} // namespace dota
