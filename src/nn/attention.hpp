/**
 * @file
 * Multi-head self-attention with detector interception.
 *
 * Implements Eq. 1-3 of the paper: Q,K,V = X W_Q, X W_K, X W_V;
 * A = SoftMax(QK^T / sqrt(d_k)) (optionally masked by a hook and/or a
 * causal constraint); Z = A V; out = Z W_O. Backward is hand-derived and
 * verified by finite differences in the test suite.
 */
#pragma once

#include <vector>

#include "nn/attention_hook.hpp"
#include "nn/param.hpp"
#include "tensor/ops.hpp"

namespace dota {

/** Multi-head self-attention layer. */
class MultiHeadAttention : public Module
{
  public:
    /**
     * @param name    parameter prefix
     * @param layer   layer index reported to the hook
     * @param dim     model dimension d
     * @param heads   number of attention heads (must divide d)
     * @param rng     weight initializer
     * @param causal  apply autoregressive masking (decoder blocks)
     */
    MultiHeadAttention(const std::string &name, size_t layer, size_t dim,
                       size_t heads, Rng &rng, bool causal = false);

    /** Install (or clear, with nullptr) the attention interceptor. */
    void setHook(AttentionHook *hook) { hook_ = hook; }

    /** Currently installed interceptor (nullptr when none). */
    AttentionHook *hook() const { return hook_; }

    /** Forward over (n x d); returns (n x d). */
    Matrix forward(const Matrix &x);

    /** Backward; returns dL/dx. Invalid after a sparse forward. */
    Matrix backward(const Matrix &dy);

    /**
     * Force the dense per-head computation even when the installed hook
     * permits the sparse path (wantsFullScores() == false). Measurement
     * code that reads lastScores()/lastAttention() — detection-quality
     * metrics, score-distribution probes — sets this around its forwards.
     */
    void setForceDense(bool force) { force_dense_ = force; }

    /** True when the last forward ran any head through the sparse path. */
    bool lastForwardSparse() const { return sparse_forward_; }

    void collectParams(std::vector<Parameter *> &out) override;

    size_t heads() const { return heads_; }
    size_t headDim() const { return head_dim_; }
    bool causal() const { return causal_; }

    /**
     * Attention-probability matrices from the last forward, per head.
     * Empty for heads that took the sparse inference path.
     */
    const std::vector<Matrix> &lastAttention() const { return a_; }

    /**
     * Raw score matrices S = QK^T from the last forward, per head.
     * Empty for heads that took the sparse inference path.
     */
    const std::vector<Matrix> &lastScores() const { return s_raw_; }

    /** Masks applied in the last forward (empty matrices when dense). */
    const std::vector<Matrix> &lastMasks() const { return masks_; }

    /** Weight accessors (used by the incremental decode path). */
    const Matrix &wq() const { return wq_.value; }
    const Matrix &wk() const { return wk_.value; }
    const Matrix &wv() const { return wv_.value; }
    const Matrix &wo() const { return wo_.value; }

  private:
    Matrix headSlice(const Matrix &m, size_t h) const;
    void addHeadSlice(Matrix &dst, const Matrix &src, size_t h) const;
    Matrix causalMask(size_t n) const;

    size_t layer_;
    size_t dim_;
    size_t heads_;
    size_t head_dim_;
    bool causal_;
    Parameter wq_, wk_, wv_, wo_;
    AttentionHook *hook_ = nullptr;
    bool force_dense_ = false;
    bool sparse_forward_ = false;

    // Cached activations for backward.
    Matrix x_, q_, k_, v_, z_;
    std::vector<Matrix> s_raw_; ///< per-head raw scores QK^T
    std::vector<Matrix> a_;     ///< per-head attention probabilities
    std::vector<Matrix> masks_; ///< per-head keep masks (may be empty)
};

} // namespace dota
