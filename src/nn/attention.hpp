/**
 * @file
 * Multi-head self-attention with detector interception.
 *
 * Implements Eq. 1-3 of the paper: Q,K,V = X W_Q, X W_K, X W_V;
 * A = SoftMax(QK^T / sqrt(d_k)) (optionally masked by a hook and/or a
 * causal constraint); Z = A V; out = Z W_O. Backward is hand-derived and
 * verified by finite differences in the test suite.
 *
 * Execution is delegated per head to a pluggable AttentionBackend
 * (nn/attention_backend.hpp): dense, CSR-sparse, or tiled streaming,
 * selected at runtime from the hook's needs, the sequence length and
 * the DOTA_ATTN override. forward() prepares each head's problem
 * (slices, masks, scale) and dispatches; only the dense backend
 * materializes S/A, so the probe accessors below are a backend
 * capability, not a layer guarantee.
 */
#pragma once

#include <vector>

#include "nn/attention_backend.hpp"
#include "nn/attention_hook.hpp"
#include "nn/param.hpp"
#include "tensor/ops.hpp"

namespace dota {

/** Multi-head self-attention layer. */
class MultiHeadAttention : public Module
{
  public:
    /**
     * @param name    parameter prefix
     * @param layer   layer index reported to the hook
     * @param dim     model dimension d
     * @param heads   number of attention heads (must divide d)
     * @param rng     weight initializer
     * @param causal  apply autoregressive masking (decoder blocks)
     */
    MultiHeadAttention(const std::string &name, size_t layer, size_t dim,
                       size_t heads, Rng &rng, bool causal = false);

    /** Install (or clear, with nullptr) the attention interceptor. */
    void setHook(AttentionHook *hook) { hook_ = hook; }

    /** Currently installed interceptor (nullptr when none). */
    AttentionHook *hook() const { return hook_; }

    /** Forward over (n x d); returns (n x d). */
    Matrix forward(const Matrix &x);

    /** Backward; returns dL/dx. Invalid after a non-dense forward. */
    Matrix backward(const Matrix &dy);

    /**
     * Force the dense backend even when the installed hook permits a
     * non-dense path (wantsFullScores() == false). Measurement code
     * that reads lastScores()/lastAttention() — detection-quality
     * metrics, score-distribution probes — sets this around its
     * forwards. Overrides any DOTA_ATTN choice.
     */
    void setForceDense(bool force) { force_dense_ = force; }

    /**
     * True when the last forward ran any head through a non-dense
     * backend (sparse or streaming): S/A are not cached for those
     * heads and backward() is invalid.
     */
    bool lastForwardSparse() const { return sparse_forward_; }

    void collectParams(std::vector<Parameter *> &out) override;

    size_t heads() const { return heads_; }
    size_t headDim() const { return head_dim_; }
    bool causal() const { return causal_; }

    /**
     * Attention-probability matrices from the last forward, per head.
     * Empty for heads whose backend does not capture scores.
     */
    const std::vector<Matrix> &lastAttention() const { return a_; }

    /**
     * Raw score matrices S = QK^T from the last forward, per head.
     * Empty for heads whose backend does not capture scores.
     */
    const std::vector<Matrix> &lastScores() const { return s_raw_; }

    /**
     * Hook-selected masks applied in the last forward (empty matrices
     * when the hook kept everything). The causal constraint is not
     * recorded here — it is implicit (see causal()) and, on the dense
     * path, applied from the per-length cache below.
     */
    const std::vector<Matrix> &lastMasks() const { return masks_; }

    /** Backend each head of the last forward dispatched to. */
    const std::vector<AttnBackendKind> &lastBackends() const
    {
        return head_backends_;
    }

    /**
     * The cached dense causal triangle for length @p n, rebuilt only
     * when the length changes (two same-length forwards share one
     * allocation — see causalMaskBuilds()).
     */
    const Matrix &cachedCausalMask(size_t n);

    /** Number of times the causal mask was (re)built (regression). */
    size_t causalMaskBuilds() const { return causal_builds_; }

    /** Weight accessors (used by the incremental decode path). */
    const Matrix &wq() const { return wq_.value; }
    const Matrix &wk() const { return wk_.value; }
    const Matrix &wv() const { return wv_.value; }
    const Matrix &wo() const { return wo_.value; }

  private:
    Matrix headSlice(const Matrix &m, size_t h) const;
    void addHeadSlice(Matrix &dst, const Matrix &src, size_t h) const;

    size_t layer_;
    size_t dim_;
    size_t heads_;
    size_t head_dim_;
    bool causal_;
    Parameter wq_, wk_, wv_, wo_;
    AttentionHook *hook_ = nullptr;
    bool force_dense_ = false;
    bool sparse_forward_ = false;

    Matrix causal_cache_;      ///< dense causal triangle, per-length
    size_t causal_builds_ = 0; ///< rebuild counter (tests)

    // Cached activations for backward.
    Matrix x_, q_, k_, v_, z_;
    std::vector<Matrix> s_raw_; ///< per-head raw scores QK^T
    std::vector<Matrix> a_;     ///< per-head attention probabilities
    std::vector<Matrix> masks_; ///< per-head hook masks (may be empty)
    std::vector<AttnBackendKind> head_backends_; ///< per-head dispatch
};

} // namespace dota
