/**
 * @file
 * Trainable parameter and module base for the from-scratch NN stack.
 *
 * DOTA's algorithmic contribution (the jointly-optimized Detector,
 * Section 3) requires *training* transformers with attention omission in
 * the loop. No framework is available offline, so this directory implements
 * a compact reverse-mode stack: concrete layer classes with explicit
 * forward/backward, parameters collected into a flat list for the
 * optimizer. Modules are stateful — forward caches exactly the activations
 * its backward needs — and process one sequence at a time; mini-batching is
 * gradient accumulation across sequences.
 */
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace dota {

/** One trainable tensor with its gradient accumulator. */
struct Parameter
{
    Parameter() = default;
    Parameter(std::string n, Matrix v)
        : name(std::move(n)), value(std::move(v)),
          grad(value.rows(), value.cols())
    {}

    void zeroGrad() { grad.zero(); }

    std::string name;
    Matrix value;
    Matrix grad;
};

/** Base for anything that owns Parameters. */
class Module
{
  public:
    virtual ~Module() = default;

    /** Append raw pointers to every trainable parameter. */
    virtual void collectParams(std::vector<Parameter *> &out) = 0;

    /** Zero every owned gradient. */
    void
    zeroGrad()
    {
        std::vector<Parameter *> ps;
        collectParams(ps);
        for (Parameter *p : ps)
            p->zeroGrad();
    }

    /** Total number of trainable scalars. */
    size_t
    numParams()
    {
        std::vector<Parameter *> ps;
        collectParams(ps);
        size_t total = 0;
        for (Parameter *p : ps)
            total += p->value.size();
        return total;
    }
};

/**
 * Copy parameter values from @p src into @p dst. Both modules must have
 * identical architecture (same parameter order and shapes). Used to fork
 * a pre-trained model into several sweep points (Figure 14).
 */
void copyParams(Module &src, Module &dst);

} // namespace dota
