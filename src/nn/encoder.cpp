/**
 * @file
 * Implementation of the encoder block.
 */
#include "nn/encoder.hpp"

namespace dota {

EncoderBlock::EncoderBlock(const std::string &name, size_t layer, size_t dim,
                           size_t heads, size_t ffn_dim, Rng &rng,
                           Activation act, bool causal)
    : attn_(name + ".attn", layer, dim, heads, rng, causal),
      ln1_(name + ".ln1", dim), fc1_(name + ".fc1", dim, ffn_dim, rng),
      fc2_(name + ".fc2", ffn_dim, dim, rng), ln2_(name + ".ln2", dim),
      act_(act)
{}

Matrix
EncoderBlock::forward(const Matrix &x)
{
    // Multi-Head Attention stage with residual + LayerNorm.
    const Matrix a = attn_.forward(x);
    const Matrix h1 = ln1_.forward(add(x, a));

    // FFN stage with residual + LayerNorm.
    ffn_pre_act_ = fc1_.forward(h1);
    const Matrix hidden =
        act_ == Activation::ReLU ? relu(ffn_pre_act_) : gelu(ffn_pre_act_);
    const Matrix f = fc2_.forward(hidden);
    return ln2_.forward(add(h1, f));
}

Matrix
EncoderBlock::backward(const Matrix &dy)
{
    // ln2(h1 + f)
    const Matrix d_sum2 = ln2_.backward(dy);

    // f = fc2(act(fc1(h1)))
    const Matrix d_hidden = fc2_.backward(d_sum2);
    const Matrix d_pre = act_ == Activation::ReLU
                             ? reluBackward(ffn_pre_act_, d_hidden)
                             : geluBackward(ffn_pre_act_, d_hidden);
    Matrix dh1 = fc1_.backward(d_pre);
    dh1 = add(dh1, d_sum2); // residual path

    // ln1(x + a)
    const Matrix d_sum1 = ln1_.backward(dh1);
    Matrix dx = attn_.backward(d_sum1);
    dx = add(dx, d_sum1); // residual path
    return dx;
}

void
EncoderBlock::collectParams(std::vector<Parameter *> &out)
{
    attn_.collectParams(out);
    ln1_.collectParams(out);
    fc1_.collectParams(out);
    fc2_.collectParams(out);
    ln2_.collectParams(out);
}

} // namespace dota
