/**
 * @file
 * Implementation of finite-difference gradient checking.
 */
#include "nn/gradcheck.hpp"

#include <cmath>

namespace dota {

GradCheckResult
checkGradient(const std::function<double()> &loss_fn, Parameter &param,
              size_t probes, double eps, Rng &rng)
{
    GradCheckResult res;
    const size_t total = param.value.size();
    probes = std::min(probes, total);
    const auto picks = rng.sampleWithoutReplacement(total, probes);
    for (size_t idx : picks) {
        float *slot = param.value.data() + idx;
        const float saved = *slot;

        *slot = saved + static_cast<float>(eps);
        const double up = loss_fn();
        *slot = saved - static_cast<float>(eps);
        const double down = loss_fn();
        *slot = saved;

        const double numeric = (up - down) / (2.0 * eps);
        const double analytic = param.grad.data()[idx];
        const double abs_err = std::abs(numeric - analytic);
        res.max_abs_err = std::max(res.max_abs_err, abs_err);
        const double denom =
            std::max(std::abs(numeric), std::abs(analytic));
        if (denom > 1e-4)
            res.max_rel_err = std::max(res.max_rel_err, abs_err / denom);
        ++res.checked;
    }
    return res;
}

} // namespace dota
