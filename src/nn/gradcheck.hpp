/**
 * @file
 * Finite-difference gradient checking used by the test suite to verify
 * every hand-derived backward pass.
 */
#pragma once

#include <functional>

#include "nn/param.hpp"

namespace dota {

/** Result of a gradient check over one parameter. */
struct GradCheckResult
{
    double max_abs_err = 0.0; ///< worst |analytic - numeric|
    double max_rel_err = 0.0; ///< worst relative error among large grads
    size_t checked = 0;       ///< number of probed elements
};

/**
 * Compare the accumulated analytic gradient of @p param against central
 * finite differences of @p loss_fn.
 *
 * @param loss_fn   recomputes the scalar loss from current parameter
 *                  values (must be deterministic)
 * @param param     parameter whose .grad holds the analytic gradient
 * @param probes    number of randomly chosen elements to probe
 * @param eps       finite-difference step
 * @param rng       probe-position stream
 */
GradCheckResult checkGradient(const std::function<double()> &loss_fn,
                              Parameter &param, size_t probes, double eps,
                              Rng &rng);

} // namespace dota
