/**
 * @file
 * Implementation of the attention backends and their dispatch policy.
 */
#include "nn/attention_backend.hpp"

#include <cstdio>
#include <ostream>

#include "common/env.hpp"
#include "tensor/ops.hpp"
#include "tensor/sparse_ops.hpp"

namespace dota {

namespace {

AttnChoice
resolveChoiceFromEnv()
{
    const std::string v = envString("DOTA_ATTN", "auto");
    AttnChoice c = AttnChoice::Auto;
    if (!v.empty() && !parseAttnChoice(v, c))
        std::fprintf(stderr,
                     "dota: unknown DOTA_ATTN value '%s' "
                     "(expected auto|dense|sparse|streaming); using auto\n",
                     v.c_str());
    return c;
}

AttnChoice &
choiceSlot()
{
    static AttnChoice c = resolveChoiceFromEnv();
    return c;
}

/** Full scores + masked softmax + dense A*V (the pre-refactor path). */
class DenseBackend final : public AttentionBackend
{
  public:
    AttnBackendKind kind() const override { return AttnBackendKind::Dense; }
    bool capturesScores() const override { return true; }

    AttnHeadResult
    runHead(const AttnHeadProblem &p) const override
    {
        AttnHeadResult r;
        // Raw scores S = Q K^T (pre-scaling, matching Eq. 5's target).
        r.scores = matmulBT(*p.q, *p.k);
        const Matrix scaled = scale(r.scores, p.scale);
        const bool masked = p.dense_mask && !p.dense_mask->empty();
        r.probs = masked ? rowSoftmaxMasked(scaled, *p.dense_mask)
                         : rowSoftmax(scaled);
        r.z = matmul(r.probs, *p.v);
        return r;
    }
};

/** CSR kernels at mask-kept coordinates (tensor/sparse_ops.hpp). */
class SparseRowsBackend final : public AttentionBackend
{
  public:
    AttnBackendKind kind() const override { return AttnBackendKind::Sparse; }
    bool capturesScores() const override { return false; }

    AttnHeadResult
    runHead(const AttnHeadProblem &p) const override
    {
        DOTA_ASSERT(p.sparse_mask,
                    "sparse backend dispatched without a hook mask");
        AttnHeadResult r;
        r.z = sparseMaskedAttention(*p.q, *p.k, *p.v, *p.sparse_mask,
                                    p.scale);
        return r;
    }
};

/** Tiled online-softmax kernel (tensor/streaming_attention.hpp). */
class StreamingBackend final : public AttentionBackend
{
  public:
    AttnBackendKind
    kind() const override
    {
        return AttnBackendKind::Streaming;
    }
    bool capturesScores() const override { return false; }

    AttnHeadResult
    runHead(const AttnHeadProblem &p) const override
    {
        AttnHeadResult r;
        r.z = streamingAttention(*p.q, *p.k, *p.v, p.sparse_mask, p.causal,
                                 p.scale, p.tile);
        return r;
    }
};

} // namespace

const char *
attnBackendName(AttnBackendKind kind)
{
    switch (kind) {
    case AttnBackendKind::Sparse:
        return "sparse";
    case AttnBackendKind::Streaming:
        return "streaming";
    case AttnBackendKind::Dense:
        break;
    }
    return "dense";
}

const char *
attnChoiceName(AttnChoice choice)
{
    switch (choice) {
    case AttnChoice::Dense:
        return "dense";
    case AttnChoice::Sparse:
        return "sparse";
    case AttnChoice::Streaming:
        return "streaming";
    case AttnChoice::Auto:
        break;
    }
    return "auto";
}

bool
parseAttnChoice(const std::string &v, AttnChoice &out)
{
    if (v == "auto")
        out = AttnChoice::Auto;
    else if (v == "dense")
        out = AttnChoice::Dense;
    else if (v == "sparse")
        out = AttnChoice::Sparse;
    else if (v == "streaming")
        out = AttnChoice::Streaming;
    else
        return false;
    return true;
}

AttnChoice
attnChoice()
{
    return choiceSlot();
}

void
setAttnChoice(AttnChoice choice)
{
    choiceSlot() = choice;
}

void
listAttnBackends(std::ostream &os)
{
    os << "attention backends (DOTA_ATTN / --attn):\n"
       << "  auto       pick per head: streaming at n >= "
       << kStreamingAutoSeqLen
       << ", sparse when an inference hook masks, else dense\n"
       << "  dense      full n x n scores; S/A probes and backward; "
          "O(n^2) score memory\n"
       << "  sparse     CSR kernels at mask-kept coordinates; needs a "
          "hook mask; O(nnz) score memory\n"
       << "  streaming  tiled online softmax; O(tile) scores per "
          "thread; 32k+ contexts; tolerance-level numerics\n";
}

AttnBackendKind
resolveAttnBackend(AttnChoice choice, bool has_hook, bool wants_full_scores,
                   bool force_dense, bool has_hook_mask, size_t n)
{
    // Hard dense requirements: probes and training hooks need S and A
    // materialized; no override may take them away.
    if (force_dense || (has_hook && wants_full_scores))
        return AttnBackendKind::Dense;

    // Streaming drops the S/A probes; hook-free short forwards keep
    // them (and their backward path) under any DOTA_ATTN value.
    const bool streaming_legal = has_hook || n >= kStreamingAutoSeqLen;

    switch (choice) {
    case AttnChoice::Dense:
        return AttnBackendKind::Dense;
    case AttnChoice::Sparse:
        return has_hook_mask ? AttnBackendKind::Sparse
                             : AttnBackendKind::Dense;
    case AttnChoice::Streaming:
        return streaming_legal ? AttnBackendKind::Streaming
                               : AttnBackendKind::Dense;
    case AttnChoice::Auto:
        break;
    }
    if (n >= kStreamingAutoSeqLen)
        return AttnBackendKind::Streaming;
    if (has_hook_mask)
        return AttnBackendKind::Sparse;
    return AttnBackendKind::Dense;
}

const AttentionBackend &
attentionBackend(AttnBackendKind kind)
{
    static const DenseBackend dense;
    static const SparseRowsBackend sparse;
    static const StreamingBackend streaming;
    switch (kind) {
    case AttnBackendKind::Sparse:
        return sparse;
    case AttnBackendKind::Streaming:
        return streaming;
    case AttnBackendKind::Dense:
        break;
    }
    return dense;
}

} // namespace dota
