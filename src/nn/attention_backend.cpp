/**
 * @file
 * Implementation of the attention backends and their dispatch policy.
 */
#include "nn/attention_backend.hpp"

#include <cstdio>
#include <ostream>

#include "common/env.hpp"
#include "tensor/int8_gemm.hpp"
#include "tensor/int_softmax.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "tensor/sparse_ops.hpp"

namespace dota {

namespace {

AttnChoice
resolveChoiceFromEnv()
{
    const std::string v = envString("DOTA_ATTN", "auto");
    AttnChoice c = AttnChoice::Auto;
    if (!v.empty() && !parseAttnChoice(v, c))
        std::fprintf(stderr,
                     "dota: unknown DOTA_ATTN value '%s' (expected "
                     "auto|dense|sparse|streaming|int8); using auto\n",
                     v.c_str());
    return c;
}

AttnChoice &
choiceSlot()
{
    static AttnChoice c = resolveChoiceFromEnv();
    return c;
}

/** Full scores + masked softmax + dense A*V (the pre-refactor path). */
class DenseBackend final : public AttentionBackend
{
  public:
    AttnBackendKind kind() const override { return AttnBackendKind::Dense; }
    bool capturesScores() const override { return true; }

    AttnHeadResult
    runHead(const AttnHeadProblem &p) const override
    {
        AttnHeadResult r;
        // Raw scores S = Q K^T (pre-scaling, matching Eq. 5's target).
        r.scores = matmulBT(*p.q, *p.k);
        const Matrix scaled = scale(r.scores, p.scale);
        const bool masked = p.dense_mask && !p.dense_mask->empty();
        r.probs = masked ? rowSoftmaxMasked(scaled, *p.dense_mask)
                         : rowSoftmax(scaled);
        r.z = matmul(r.probs, *p.v);
        return r;
    }
};

/** CSR kernels at mask-kept coordinates (tensor/sparse_ops.hpp). */
class SparseRowsBackend final : public AttentionBackend
{
  public:
    AttnBackendKind kind() const override { return AttnBackendKind::Sparse; }
    bool capturesScores() const override { return false; }

    AttnHeadResult
    runHead(const AttnHeadProblem &p) const override
    {
        DOTA_ASSERT(p.sparse_mask,
                    "sparse backend dispatched without a hook mask");
        AttnHeadResult r;
        r.z = sparseMaskedAttention(*p.q, *p.k, *p.v, *p.sparse_mask,
                                    p.scale);
        return r;
    }
};

/** Tiled online-softmax kernel (tensor/streaming_attention.hpp). */
class StreamingBackend final : public AttentionBackend
{
  public:
    AttnBackendKind
    kind() const override
    {
        return AttnBackendKind::Streaming;
    }
    bool capturesScores() const override { return false; }

    AttnHeadResult
    runHead(const AttnHeadProblem &p) const override
    {
        AttnHeadResult r;
        r.z = streamingAttention(*p.q, *p.k, *p.v, p.sparse_mask, p.causal,
                                 p.scale, p.tile);
        return r;
    }
};

/**
 * Dynamically-quantized integer attention: per-head scales from the
 * live tensors, u8 x s8 maddubs GEMMs, ITA-style integer softmax. The
 * mask contract matches Dense (a dense 0/1 keep mask covering both the
 * hook mask and the causal triangle).
 */
class Int8Backend final : public AttentionBackend
{
  public:
    AttnBackendKind kind() const override { return AttnBackendKind::Int8; }
    bool capturesScores() const override { return false; }

    AttnHeadResult
    runHead(const AttnHeadProblem &p) const override
    {
        const size_t n = p.q->rows();
        const size_t t = p.k->rows();
        // Per-head dynamic scales: 7-bit grid for the u8 query side,
        // full s8 for keys/values (saturation-free maddubs operands).
        const U8Tensor qq =
            quantizeU8(*p.q, chooseSymmetricScale(*p.q, 7).scale);
        const Int8Tensor kk =
            quantizeS8(*p.k, chooseSymmetricScale(*p.k, 8).scale);
        const Int8Tensor vt = quantizeS8Transposed(
            *p.v, chooseSymmetricScale(*p.v, 8).scale);

        std::vector<int32_t> raw(n * t);
        int8GemmBT(qq, kk, raw.data());

        const IntSoftmaxLut lut(qq.scale * kk.scale * p.scale);
        const bool masked = p.dense_mask && !p.dense_mask->empty();
        U8Tensor probs;
        probs.rows = n;
        probs.k = t;
        probs.scale = lut.probScale();
        probs.zero_point = 0;
        probs.codes.resize(n * t);
        for (size_t i = 0; i < n; ++i)
            lut.softmaxRow(raw.data() + i * t, t,
                           masked ? p.dense_mask->row(i) : nullptr,
                           probs.codes.data() + i * t);

        AttnHeadResult r;
        r.z = int8MatmulBT(probs, vt);
        return r;
    }
};

} // namespace

const char *
attnBackendName(AttnBackendKind kind)
{
    switch (kind) {
    case AttnBackendKind::Sparse:
        return "sparse";
    case AttnBackendKind::Streaming:
        return "streaming";
    case AttnBackendKind::Int8:
        return "int8";
    case AttnBackendKind::Dense:
        break;
    }
    return "dense";
}

const char *
attnChoiceName(AttnChoice choice)
{
    switch (choice) {
    case AttnChoice::Dense:
        return "dense";
    case AttnChoice::Sparse:
        return "sparse";
    case AttnChoice::Streaming:
        return "streaming";
    case AttnChoice::Int8:
        return "int8";
    case AttnChoice::Auto:
        break;
    }
    return "auto";
}

bool
parseAttnChoice(const std::string &v, AttnChoice &out)
{
    if (v == "auto")
        out = AttnChoice::Auto;
    else if (v == "dense")
        out = AttnChoice::Dense;
    else if (v == "sparse")
        out = AttnChoice::Sparse;
    else if (v == "streaming")
        out = AttnChoice::Streaming;
    else if (v == "int8")
        out = AttnChoice::Int8;
    else
        return false;
    return true;
}

AttnChoice
attnChoice()
{
    return choiceSlot();
}

void
setAttnChoice(AttnChoice choice)
{
    choiceSlot() = choice;
}

void
listAttnBackends(std::ostream &os)
{
    os << "attention backends (DOTA_ATTN / --attn):\n"
       << "  auto       pick per head: streaming at n >= "
       << kStreamingAutoSeqLen
       << ", sparse when an inference hook masks, else dense\n"
       << "  dense      full n x n scores; S/A probes and backward; "
          "O(n^2) score memory\n"
       << "  sparse     CSR kernels at mask-kept coordinates; needs a "
          "hook mask; O(nnz) score memory\n"
       << "  streaming  tiled online softmax; O(tile) scores per "
          "thread; 32k+ contexts; tolerance-level numerics\n"
       << "  int8       dynamically-quantized u8 x s8 attention with "
          "integer softmax; opt-in only; quantization-level numerics\n";
}

AttnBackendKind
resolveAttnBackend(AttnChoice choice, bool has_hook, bool wants_full_scores,
                   bool force_dense, bool has_hook_mask, size_t n)
{
    // Hard dense requirements: probes and training hooks need S and A
    // materialized; no override may take them away.
    if (force_dense || (has_hook && wants_full_scores))
        return AttnBackendKind::Dense;

    // Streaming drops the S/A probes; hook-free short forwards keep
    // them (and their backward path) under any DOTA_ATTN value.
    const bool streaming_legal = has_hook || n >= kStreamingAutoSeqLen;

    switch (choice) {
    case AttnChoice::Dense:
        return AttnBackendKind::Dense;
    case AttnChoice::Sparse:
        return has_hook_mask ? AttnBackendKind::Sparse
                             : AttnBackendKind::Dense;
    case AttnChoice::Streaming:
        return streaming_legal ? AttnBackendKind::Streaming
                               : AttnBackendKind::Dense;
    case AttnChoice::Int8:
        // Same legality rule as streaming: the integer path drops S/A
        // probes and backward, so hook-free short forwards stay dense
        // (the full test suite remains green under DOTA_ATTN=int8).
        return streaming_legal ? AttnBackendKind::Int8
                               : AttnBackendKind::Dense;
    case AttnChoice::Auto:
        break;
    }
    if (n >= kStreamingAutoSeqLen)
        return AttnBackendKind::Streaming;
    if (has_hook_mask)
        return AttnBackendKind::Sparse;
    return AttnBackendKind::Dense;
}

const AttentionBackend &
attentionBackend(AttnBackendKind kind)
{
    static const DenseBackend dense;
    static const SparseRowsBackend sparse;
    static const StreamingBackend streaming;
    static const Int8Backend int8;
    switch (kind) {
    case AttnBackendKind::Sparse:
        return sparse;
    case AttnBackendKind::Streaming:
        return streaming;
    case AttnBackendKind::Int8:
        return int8;
    case AttnBackendKind::Dense:
        break;
    }
    return dense;
}

} // namespace dota
