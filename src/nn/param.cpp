/**
 * @file
 * Module utilities.
 */
#include "nn/param.hpp"

namespace dota {

void
copyParams(Module &src, Module &dst)
{
    std::vector<Parameter *> from, to;
    src.collectParams(from);
    dst.collectParams(to);
    DOTA_ASSERT(from.size() == to.size(),
                "copyParams: {} vs {} parameters", from.size(), to.size());
    for (size_t i = 0; i < from.size(); ++i) {
        DOTA_ASSERT(from[i]->value.rows() == to[i]->value.rows() &&
                        from[i]->value.cols() == to[i]->value.cols(),
                    "copyParams: shape mismatch at '{}'", from[i]->name);
        to[i]->value = from[i]->value;
    }
}

} // namespace dota
