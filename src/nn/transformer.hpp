/**
 * @file
 * End-to-end transformer models built from the layer stack: a sequence
 * classifier (the LRA-style benchmarks and the QA proxy task) and a causal
 * language model (the GPT-2 / WikiText-103 proxy task).
 */
#pragma once

#include <memory>
#include <vector>

#include "nn/adam.hpp"
#include "nn/embedding.hpp"
#include "nn/encoder.hpp"
#include "nn/loss.hpp"

namespace dota {

/** Shape of a transformer stack. */
struct TransformerConfig
{
    size_t in_dim = 16;    ///< input feature dim (classifier only)
    size_t dim = 64;       ///< model dimension d
    size_t heads = 4;      ///< attention heads
    size_t layers = 2;     ///< encoder blocks
    size_t ffn_dim = 128;  ///< FFN hidden dim
    size_t classes = 2;    ///< output classes (classifier only)
    size_t vocab = 64;     ///< vocabulary (LM only)
    size_t max_seq = 512;  ///< max sequence length (LM positional table)
    Activation act = Activation::GELU;
    uint64_t seed = 1;     ///< weight-init seed

    size_t headDim() const { return dim / heads; }
};

/**
 * Encoder-based sequence classifier: input projection, L encoder blocks,
 * mean pooling, linear head. Inputs are continuous token feature vectors
 * (the synthetic workloads emit these directly).
 */
class TransformerClassifier : public Module
{
  public:
    explicit TransformerClassifier(const TransformerConfig &cfg);

    /** Forward over (n x in_dim) features; returns logits (1 x classes). */
    Matrix forward(const Matrix &features);

    /** Backward from dL/dlogits (1 x classes). */
    void backward(const Matrix &dlogits);

    /** Install an attention hook into every block. */
    void setHook(AttentionHook *hook);

    /**
     * Force dense attention in every block (see
     * MultiHeadAttention::setForceDense): measurement code that reads
     * lastScores()/lastAttention() sets this around its forwards.
     */
    void setForceDense(bool force);

    /**
     * True when any block carries an attention hook. Hooked models are
     * not replicable for batch parallelism (the hook is installed on this
     * instance only), so the trainer falls back to serial batches.
     */
    bool hasHook() const;

    void collectParams(std::vector<Parameter *> &out) override;

    const TransformerConfig &config() const { return cfg_; }
    std::vector<std::unique_ptr<EncoderBlock>> &blocks() { return blocks_; }

    /** Accessors for the int8 inference path (nn/int8_infer.hpp). */
    LinearLayer &inputLayer() { return input_; }
    LinearLayer &headLayer() { return head_; }

  private:
    TransformerConfig cfg_;
    Rng init_rng_;
    LinearLayer input_;
    std::vector<std::unique_ptr<EncoderBlock>> blocks_;
    LinearLayer head_;
    size_t last_n_ = 0;
};

/**
 * Decoder-only causal language model: token + learned positional
 * embeddings, L causal blocks, tied-free output head. Perplexity on a
 * synthetic grammar stands in for WikiText-103 (see DESIGN.md).
 */
class CausalLM : public Module
{
  public:
    explicit CausalLM(const TransformerConfig &cfg);

    /** Forward over token ids; returns logits (n x vocab). */
    Matrix forward(const std::vector<int> &ids);

    /** Backward from dL/dlogits (n x vocab). */
    void backward(const Matrix &dlogits);

    /**
     * Convenience: mean next-token cross-entropy of @p ids (position i
     * predicts token i+1) plus gradient injection when @p train is true.
     */
    double lmLoss(const std::vector<int> &ids, bool train);

    void setHook(AttentionHook *hook);

    /** Force dense attention in every block (see above). */
    void setForceDense(bool force);

    /** True when any block carries an attention hook (see above). */
    bool hasHook() const;

    void collectParams(std::vector<Parameter *> &out) override;

    const TransformerConfig &config() const { return cfg_; }
    std::vector<std::unique_ptr<EncoderBlock>> &blocks() { return blocks_; }

    /** Accessors for the incremental decode path. */
    EmbeddingLayer &tokenEmbedding() { return tok_; }
    const Matrix &positionTable() const { return pos_.value; }
    LinearLayer &lmHead() { return head_; }

  private:
    TransformerConfig cfg_;
    Rng init_rng_;
    EmbeddingLayer tok_;
    Parameter pos_; ///< max_seq x dim learned positional table
    std::vector<std::unique_ptr<EncoderBlock>> blocks_;
    LinearLayer head_;
    size_t last_n_ = 0;
};

} // namespace dota
