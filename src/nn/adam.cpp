/**
 * @file
 * Implementation of the Adam optimizer.
 */
#include "nn/adam.hpp"

#include <cmath>

namespace dota {

Adam::Adam(std::vector<Parameter *> params, AdamConfig cfg)
    : params_(std::move(params)), cfg_(cfg)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Parameter *p : params_) {
        m_.emplace_back(p->value.rows(), p->value.cols());
        v_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
Adam::step()
{
    ++t_;
    // Global norm for clipping.
    double norm_sq = 0.0;
    for (Parameter *p : params_)
        for (size_t i = 0; i < p->grad.size(); ++i)
            norm_sq += static_cast<double>(p->grad.data()[i]) *
                       p->grad.data()[i];
    last_grad_norm_ = std::sqrt(norm_sq);
    double scale = 1.0;
    last_step_clipped_ =
        cfg_.clip_norm > 0.0 && last_grad_norm_ > cfg_.clip_norm;
    if (last_step_clipped_)
        scale = cfg_.clip_norm / (last_grad_norm_ + 1e-12);

    const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));

    for (size_t pi = 0; pi < params_.size(); ++pi) {
        Parameter *p = params_[pi];
        float *val = p->value.data();
        const float *grad = p->grad.data();
        float *m = m_[pi].data();
        float *v = v_[pi].data();
        for (size_t i = 0; i < p->value.size(); ++i) {
            const double g = static_cast<double>(grad[i]) * scale;
            m[i] = static_cast<float>(cfg_.beta1 * m[i] +
                                      (1.0 - cfg_.beta1) * g);
            v[i] = static_cast<float>(cfg_.beta2 * v[i] +
                                      (1.0 - cfg_.beta2) * g * g);
            const double mhat = m[i] / bc1;
            const double vhat = v[i] / bc2;
            double update = cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
            if (cfg_.weight_decay > 0.0)
                update += cfg_.lr * cfg_.weight_decay * val[i];
            val[i] -= static_cast<float>(update);
        }
    }
}

void
Adam::setState(std::vector<Matrix> m, std::vector<Matrix> v, uint64_t t)
{
    DOTA_ASSERT(m.size() == params_.size() && v.size() == params_.size(),
                "Adam state has {}/{} moment tensors for {} parameters",
                m.size(), v.size(), params_.size());
    for (size_t i = 0; i < params_.size(); ++i)
        DOTA_ASSERT(m[i].rows() == params_[i]->value.rows() &&
                        m[i].cols() == params_[i]->value.cols() &&
                        v[i].rows() == params_[i]->value.rows() &&
                        v[i].cols() == params_[i]->value.cols(),
                    "Adam moment shape mismatch for parameter '{}'",
                    params_[i]->name);
    m_ = std::move(m);
    v_ = std::move(v);
    t_ = t;
}

void
Adam::zeroGrad()
{
    for (Parameter *p : params_)
        p->zeroGrad();
}

} // namespace dota
