/**
 * @file
 * Token and learned positional embeddings for the causal LM model.
 */
#pragma once

#include <vector>

#include "nn/param.hpp"

namespace dota {

/** Lookup-table embedding with scatter-add backward. */
class EmbeddingLayer : public Module
{
  public:
    EmbeddingLayer(const std::string &name, size_t vocab, size_t dim,
                   Rng &rng);

    /** Gather rows for @p ids; output is (ids.size() x dim). */
    Matrix forward(const std::vector<int> &ids);

    /** Scatter-add @p dy back into the table gradient. */
    void backward(const Matrix &dy);

    void collectParams(std::vector<Parameter *> &out) override;

    size_t vocab() const { return table_.value.rows(); }
    Parameter &table() { return table_; }

  private:
    Parameter table_; ///< vocab x dim
    std::vector<int> cached_ids_;
};

} // namespace dota
