/**
 * @file
 * Implementation of parameter checkpointing.
 */
#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/logging.hpp"

namespace dota {

namespace {

constexpr char kMagic[4] = {'D', 'O', 'T', 'A'};
constexpr uint32_t kVersion = 1;

void
writeU64(std::ofstream &os, uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

uint64_t
readU64(std::ifstream &is)
{
    uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

void
writeString(std::ofstream &os, const std::string &s)
{
    writeU64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::ifstream &is)
{
    const uint64_t len = readU64(is);
    DOTA_ASSERT(len < (1u << 20), "implausible string length {}", len);
    std::string s(len, '\0');
    is.read(s.data(), static_cast<std::streamsize>(len));
    return s;
}

} // namespace

void
saveCheckpoint(Module &module, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        DOTA_FATAL("cannot open '{}' for writing", path);

    std::vector<Parameter *> params;
    module.collectParams(params);

    os.write(kMagic, 4);
    uint32_t version = kVersion;
    os.write(reinterpret_cast<const char *>(&version), sizeof(version));
    writeU64(os, params.size());
    for (Parameter *p : params) {
        writeString(os, p->name);
        writeU64(os, p->value.rows());
        writeU64(os, p->value.cols());
        os.write(reinterpret_cast<const char *>(p->value.data()),
                 static_cast<std::streamsize>(p->value.size() *
                                              sizeof(float)));
    }
    if (!os)
        DOTA_FATAL("write to '{}' failed", path);
}

void
loadCheckpoint(Module &module, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        DOTA_FATAL("cannot open '{}' for reading", path);

    char magic[4] = {};
    is.read(magic, 4);
    if (std::string(magic, 4) != std::string(kMagic, 4))
        DOTA_FATAL("'{}' is not a DOTA checkpoint", path);
    uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (version != kVersion)
        DOTA_FATAL("checkpoint version {} unsupported (expected {})",
                   version, kVersion);

    std::vector<Parameter *> params;
    module.collectParams(params);
    const uint64_t count = readU64(is);
    if (count != params.size())
        DOTA_FATAL("checkpoint has {} parameters, module has {}", count,
                   params.size());
    for (Parameter *p : params) {
        const std::string name = readString(is);
        if (name != p->name)
            DOTA_FATAL("checkpoint parameter '{}' does not match module "
                       "parameter '{}'", name, p->name);
        const uint64_t rows = readU64(is);
        const uint64_t cols = readU64(is);
        if (rows != p->value.rows() || cols != p->value.cols())
            DOTA_FATAL("shape mismatch for '{}': checkpoint {}x{}, "
                       "module {}x{}", name, rows, cols, p->value.rows(),
                       p->value.cols());
        is.read(reinterpret_cast<char *>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() *
                                             sizeof(float)));
    }
    if (!is)
        DOTA_FATAL("read from '{}' failed or truncated", path);
}

bool
isCheckpoint(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    char magic[4] = {};
    is.read(magic, 4);
    return is && std::string(magic, 4) == std::string(kMagic, 4);
}

} // namespace dota
