/**
 * @file
 * Implementation of parameter checkpointing (record-file format v2).
 */
#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/fileio.hpp"
#include "common/logging.hpp"
#include "common/recordfile.hpp"

namespace dota {

namespace {

constexpr uint32_t kModelKind = recordKind('M', 'O', 'D', 'L');
constexpr uint32_t kSchemaVersion = 2;

void
setError(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
}

LoadStatus
fromRecordStatus(RecordFileStatus status)
{
    switch (status) {
      case RecordFileStatus::Ok:
        return LoadStatus::Ok;
      case RecordFileStatus::IoError:
        return LoadStatus::IoError;
      case RecordFileStatus::BadMagic:
        return LoadStatus::NotACheckpoint;
      case RecordFileStatus::BadVersion:
        return LoadStatus::BadVersion;
      case RecordFileStatus::Truncated:
        return LoadStatus::Truncated;
      case RecordFileStatus::Corrupt:
        return LoadStatus::Corrupt;
    }
    DOTA_PANIC("unknown record file status");
}

std::string
shapeStr(size_t rows, size_t cols)
{
    return format("{}x{}", rows, cols);
}

} // namespace

std::string
loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::Ok:
        return "ok";
      case LoadStatus::IoError:
        return "io-error";
      case LoadStatus::NotACheckpoint:
        return "not-a-checkpoint";
      case LoadStatus::BadVersion:
        return "bad-version";
      case LoadStatus::Truncated:
        return "truncated";
      case LoadStatus::Corrupt:
        return "corrupt";
      case LoadStatus::ArchMismatch:
        return "arch-mismatch";
    }
    DOTA_PANIC("unknown load status");
}

std::string
encodeMatrix(const Matrix &m)
{
    std::string payload;
    payload.reserve(16 + m.size() * sizeof(float));
    const uint64_t rows = m.rows(), cols = m.cols();
    payload.append(reinterpret_cast<const char *>(&rows), 8);
    payload.append(reinterpret_cast<const char *>(&cols), 8);
    payload.append(reinterpret_cast<const char *>(m.data()),
                   m.size() * sizeof(float));
    return payload;
}

bool
decodeMatrix(const std::string &payload, Matrix &out)
{
    if (payload.size() < 16)
        return false;
    uint64_t rows = 0, cols = 0;
    std::memcpy(&rows, payload.data(), 8);
    std::memcpy(&cols, payload.data() + 8, 8);
    // Guard the multiplication: a corrupt header must not allocate TBs.
    if (rows > (1u << 24) || cols > (1u << 24))
        return false;
    const size_t count = static_cast<size_t>(rows * cols);
    if (payload.size() != 16 + count * sizeof(float))
        return false;
    out = Matrix(static_cast<size_t>(rows), static_cast<size_t>(cols));
    std::memcpy(out.data(), payload.data() + 16, count * sizeof(float));
    return true;
}

void
saveCheckpoint(Module &module, const std::string &path)
{
    std::vector<Parameter *> params;
    module.collectParams(params);

    RecordFileBuilder builder(kModelKind, kSchemaVersion);
    for (Parameter *p : params)
        builder.add(p->name, encodeMatrix(p->value));

    std::string error;
    if (!writeFileAtomic(path, builder.finish(), &error))
        DOTA_FATAL("saving checkpoint failed: {}", error);
}

LoadStatus
tryLoadCheckpoint(Module &module, const std::string &path,
                  std::string *error)
{
    RecordFile file;
    const RecordFileStatus rs = readRecordFile(path, file, error);
    if (rs != RecordFileStatus::Ok)
        return fromRecordStatus(rs);
    if (file.kind != kModelKind) {
        setError(error, format("'{}' is a DOTA record file but not a "
                               "model checkpoint", path));
        return LoadStatus::NotACheckpoint;
    }
    if (file.schema_version != kSchemaVersion) {
        setError(error, format("checkpoint schema version {} unsupported "
                               "(expected {})",
                               file.schema_version, kSchemaVersion));
        return LoadStatus::BadVersion;
    }

    std::vector<Parameter *> params;
    module.collectParams(params);
    if (file.records.size() != params.size()) {
        setError(error,
                 format("checkpoint has {} parameter records, module "
                        "expects {}", file.records.size(), params.size()));
        return LoadStatus::ArchMismatch;
    }

    // Decode and validate everything before touching the module, so a
    // mismatch never leaves it half-loaded.
    std::vector<Matrix> values(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
        const auto &[name, payload] = file.records[i];
        if (!decodeMatrix(payload, values[i])) {
            setError(error, format("parameter record '{}' has a "
                                   "malformed payload", name));
            return LoadStatus::Corrupt;
        }
        const Parameter *p = params[i];
        if (name != p->name || values[i].rows() != p->value.rows() ||
            values[i].cols() != p->value.cols()) {
            setError(error,
                     format("parameter #{}: checkpoint has '{}' ({}), "
                            "module expects '{}' ({})",
                            i, name,
                            shapeStr(values[i].rows(), values[i].cols()),
                            p->name,
                            shapeStr(p->value.rows(), p->value.cols())));
            return LoadStatus::ArchMismatch;
        }
    }
    for (size_t i = 0; i < params.size(); ++i)
        params[i]->value = std::move(values[i]);
    return LoadStatus::Ok;
}

void
loadCheckpoint(Module &module, const std::string &path)
{
    std::string error;
    const LoadStatus status = tryLoadCheckpoint(module, path, &error);
    if (status != LoadStatus::Ok)
        DOTA_FATAL("loading checkpoint '{}' failed ({}): {}", path,
                   loadStatusName(status), error);
}

bool
isCheckpoint(const std::string &path)
{
    if (!looksLikeRecordFile(path))
        return false;
    std::ifstream is(path, std::ios::binary);
    char header[16] = {};
    is.read(header, sizeof(header));
    if (!is)
        return false;
    uint32_t kind = 0;
    std::memcpy(&kind, header + 8, 4);
    return kind == kModelKind;
}

} // namespace dota
