/**
 * @file
 * Adam optimizer over a flat list of Parameters.
 */
#pragma once

#include <vector>

#include "nn/param.hpp"

namespace dota {

/** Adam configuration. */
struct AdamConfig
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0; ///< decoupled (AdamW-style)
    double clip_norm = 1.0;    ///< global grad-norm clip; <= 0 disables
};

/** Adam with optional decoupled weight decay and global-norm clipping. */
class Adam
{
  public:
    Adam(std::vector<Parameter *> params, AdamConfig cfg = {});

    /** Apply one update using the accumulated gradients. */
    void step();

    /** Zero the gradients of every registered parameter. */
    void zeroGrad();

    /** Global gradient L2 norm before clipping (of the last step). */
    double lastGradNorm() const { return last_grad_norm_; }

    /** True when the last step() clipped the gradient. */
    bool lastStepClipped() const { return last_step_clipped_; }

    AdamConfig &config() { return cfg_; }

    // --- optimizer-state access for checkpointing (train/checkpoint) ---

    /** First-moment estimates, one Matrix per registered parameter. */
    const std::vector<Matrix> &firstMoments() const { return m_; }

    /** Second-moment estimates, one Matrix per registered parameter. */
    const std::vector<Matrix> &secondMoments() const { return v_; }

    /** Number of step() calls applied so far (bias-correction clock). */
    uint64_t stepCount() const { return t_; }

    /**
     * Restore optimizer state captured from an identically-shaped Adam.
     * Shapes of @p m / @p v must match the registered parameters;
     * panics otherwise (the checkpoint layer validates first).
     */
    void setState(std::vector<Matrix> m, std::vector<Matrix> v,
                  uint64_t t);

  private:
    std::vector<Parameter *> params_;
    std::vector<Matrix> m_;
    std::vector<Matrix> v_;
    AdamConfig cfg_;
    uint64_t t_ = 0;
    double last_grad_norm_ = 0.0;
    bool last_step_clipped_ = false;
};

} // namespace dota
