/**
 * @file
 * Adam optimizer over a flat list of Parameters.
 */
#pragma once

#include <vector>

#include "nn/param.hpp"

namespace dota {

/** Adam configuration. */
struct AdamConfig
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0; ///< decoupled (AdamW-style)
    double clip_norm = 1.0;    ///< global grad-norm clip; <= 0 disables
};

/** Adam with optional decoupled weight decay and global-norm clipping. */
class Adam
{
  public:
    Adam(std::vector<Parameter *> params, AdamConfig cfg = {});

    /** Apply one update using the accumulated gradients. */
    void step();

    /** Zero the gradients of every registered parameter. */
    void zeroGrad();

    /** Global gradient L2 norm before clipping (of the last step). */
    double lastGradNorm() const { return last_grad_norm_; }

    AdamConfig &config() { return cfg_; }

  private:
    std::vector<Parameter *> params_;
    std::vector<Matrix> m_;
    std::vector<Matrix> v_;
    AdamConfig cfg_;
    uint64_t t_ = 0;
    double last_grad_norm_ = 0.0;
};

} // namespace dota
