/**
 * @file
 * Implementation of layer normalization.
 */
#include "nn/layer_norm.hpp"

namespace dota {

LayerNormLayer::LayerNormLayer(const std::string &name, size_t dim)
    : gamma_(name + ".gamma", Matrix(1, dim, 1.0f)),
      beta_(name + ".beta", Matrix(1, dim))
{}

Matrix
LayerNormLayer::forward(const Matrix &x)
{
    cached_x_ = x;
    return layerNorm(x, gamma_.value, beta_.value, mean_, rstd_);
}

Matrix
LayerNormLayer::backward(const Matrix &dy)
{
    DOTA_ASSERT(!cached_x_.empty(), "backward before forward");
    return layerNormBackward(cached_x_, gamma_.value, mean_, rstd_, dy,
                             gamma_.grad, beta_.grad);
}

void
LayerNormLayer::collectParams(std::vector<Parameter *> &out)
{
    out.push_back(&gamma_);
    out.push_back(&beta_);
}

} // namespace dota
