/**
 * @file
 * Hook interface through which a Detector intercepts self-attention.
 *
 * The multi-head attention layer knows nothing about DOTA's detection
 * algorithm: it simply asks an installed AttentionHook for a sparsity mask
 * before computing attention weights, lets the hook observe the true raw
 * scores S = QK^T (so the hook can maintain its estimation loss), and adds
 * whatever score-gradient the hook reports into its own backward pass.
 * That is exactly the structure of the joint optimization in Section 3.2:
 * L = L_model + lambda * L_MSE, where the lambda * dL_MSE/dS term enters
 * the model's backward through this interface.
 */
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"

namespace dota {

/** Interceptor installed into MultiHeadAttention layers. */
class AttentionHook
{
  public:
    virtual ~AttentionHook() = default;

    /**
     * Called once per layer forward with the layer input (n x d), before
     * any head is processed. Detectors compute X*P (and its quantized
     * form) here so all heads share it.
     */
    virtual void beginLayer(size_t layer, const Matrix &x) = 0;

    /**
     * Observe the projected query/key matrices (n x head_dim) of one head
     * before mask selection. DOTA's detector ignores this — its estimate
     * may only use X (Section 3.1) — but the ELSA baseline hashes the
     * real Q/K here, and the oracle "detector" uses them to compute true
     * scores. Default: no-op.
     */
    virtual void
    observeQK(size_t layer, size_t head, const Matrix &q, const Matrix &k)
    {
        (void)layer;
        (void)head;
        (void)q;
        (void)k;
    }

    /**
     * Produce the 0/1 keep-mask (n x n) for one head. Must not look at the
     * true scores — only at whatever state beginLayer derived from X. An
     * empty matrix means "no omission" (dense attention).
     *
     * @param causal  when true the mask must additionally be lower
     *                triangular (decoder processing).
     */
    virtual Matrix selectMask(size_t layer, size_t head, bool causal) = 0;

    /**
     * Observe the true raw scores S = QK^T for one head (post-mask
     * computation). Detectors accumulate L_MSE = ||S - S_est||^2 here.
     */
    virtual void observeScores(size_t layer, size_t head,
                               const Matrix &s_true) = 0;

    /**
     * Whether this hook needs the full dense score matrix every forward.
     * When a hook returns false and selectMask() produced a mask, the
     * attention layer is free to take the sparse inference path: scores
     * are computed only at kept coordinates (tensor/sparse_ops.hpp),
     * observeScores() is skipped, and lastScores()/lastAttention() stay
     * empty for that head. This is the software analogue of the
     * accelerator's omission stage — work the detector rules out is never
     * issued. Hooks that maintain a training-time estimation loss (or
     * otherwise inspect S) must return true. Default: true (conservative).
     */
    virtual bool wantsFullScores() const { return true; }

    /**
     * Gradient of the hook's auxiliary loss w.r.t. the true raw scores S
     * of this head (already weighted by lambda), or an empty matrix when
     * the hook is not training. Consumed by the attention backward.
     */
    virtual Matrix scoreGradient(size_t layer, size_t head) = 0;
};

} // namespace dota
