/**
 * @file
 * Binary checkpointing of Module parameters.
 *
 * Format (version 2): a checksummed record-file container
 * (common/recordfile.hpp, kind "MODL") with one record per parameter —
 * name, shape and raw float payload, in collectParams order — a CRC32
 * per record and a whole-file footer checksum. Files are written
 * atomically (temp + rename) so a crash mid-save never destroys the
 * previous checkpoint.
 *
 * Loading verifies checksums, names and shapes, and reports *what* is
 * wrong through LoadStatus instead of killing the process: corruption,
 * truncation, a version from a different build, and architecture
 * mismatches are all distinguishable so recovery code (e.g.
 * resumeLatest in train/checkpoint.hpp) can fall back to an older file.
 * The fatal() wrappers remain for callers that have no fallback.
 */
#pragma once

#include <string>

#include "nn/param.hpp"

namespace dota {

/** Outcome of loading a checkpoint. */
enum class LoadStatus
{
    Ok,             ///< parameters restored, all checksums verified
    IoError,        ///< file missing or unreadable
    NotACheckpoint, ///< not a DOTA checkpoint file
    BadVersion,     ///< written by an incompatible format version
    Truncated,      ///< footer missing: truncated or torn write
    Corrupt,        ///< a checksum failed: bytes damaged in place
    ArchMismatch,   ///< parameter names/shapes differ from the module
};

/** Display name, e.g. "arch-mismatch". */
std::string loadStatusName(LoadStatus status);

/**
 * Save every parameter of @p module to @p path, atomically. fatal() on
 * IO error.
 */
void saveCheckpoint(Module &module, const std::string &path);

/**
 * Load a checkpoint saved by saveCheckpoint into @p module. On any
 * status other than Ok the module's parameters are left untouched and
 * @p error (when non-null) receives a diagnostic; an ArchMismatch
 * diagnostic names both the expected and the found parameter
 * name/shape.
 */
LoadStatus tryLoadCheckpoint(Module &module, const std::string &path,
                             std::string *error = nullptr);

/**
 * Load a checkpoint saved by saveCheckpoint into @p module. fatal() on
 * IO error, format error, or architecture mismatch.
 */
void loadCheckpoint(Module &module, const std::string &path);

/**
 * True when @p path exists and carries a complete, well-formed model
 * checkpoint header (magic, container version and checkpoint kind).
 * Short, empty or foreign files are rejected; payload integrity is only
 * established by tryLoadCheckpoint.
 */
bool isCheckpoint(const std::string &path);

// --- Matrix payload codec (shared with train/checkpoint) ---

/** Encode rows, cols and raw float data into a byte payload. */
std::string encodeMatrix(const Matrix &m);

/** Decode an encodeMatrix payload; false when malformed. */
bool decodeMatrix(const std::string &payload, Matrix &out);

} // namespace dota
