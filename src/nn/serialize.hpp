/**
 * @file
 * Binary checkpointing of Module parameters.
 *
 * Format: magic "DOTA" + version, then for each parameter the name,
 * shape and raw float payload, in collectParams order. Loading verifies
 * names and shapes so an incompatible architecture fails loudly rather
 * than silently scrambling weights.
 */
#pragma once

#include <string>

#include "nn/param.hpp"

namespace dota {

/** Save every parameter of @p module to @p path. fatal() on IO error. */
void saveCheckpoint(Module &module, const std::string &path);

/**
 * Load a checkpoint saved by saveCheckpoint into @p module. fatal() on
 * IO error, format error, or architecture mismatch.
 */
void loadCheckpoint(Module &module, const std::string &path);

/** True when @p path exists and starts with the checkpoint magic. */
bool isCheckpoint(const std::string &path);

} // namespace dota
