/**
 * @file
 * Implementation of multi-head self-attention.
 */
#include "nn/attention.hpp"

#include <cmath>

#include "tensor/sparse_mask.hpp"

namespace dota {

MultiHeadAttention::MultiHeadAttention(const std::string &name, size_t layer,
                                       size_t dim, size_t heads, Rng &rng,
                                       bool causal)
    : layer_(layer), dim_(dim), heads_(heads), head_dim_(dim / heads),
      causal_(causal), wq_(name + ".wq", Matrix::xavier(dim, dim, rng)),
      wk_(name + ".wk", Matrix::xavier(dim, dim, rng)),
      wv_(name + ".wv", Matrix::xavier(dim, dim, rng)),
      wo_(name + ".wo", Matrix::xavier(dim, dim, rng))
{
    DOTA_ASSERT(dim % heads == 0, "dim {} not divisible by heads {}", dim,
                heads);
}

Matrix
MultiHeadAttention::headSlice(const Matrix &m, size_t h) const
{
    Matrix out(m.rows(), head_dim_);
    const size_t off = h * head_dim_;
    for (size_t i = 0; i < m.rows(); ++i)
        std::copy(m.row(i) + off, m.row(i) + off + head_dim_, out.row(i));
    return out;
}

void
MultiHeadAttention::addHeadSlice(Matrix &dst, const Matrix &src,
                                 size_t h) const
{
    const size_t off = h * head_dim_;
    for (size_t i = 0; i < src.rows(); ++i)
        for (size_t j = 0; j < head_dim_; ++j)
            dst(i, off + j) += src(i, j);
}

const Matrix &
MultiHeadAttention::cachedCausalMask(size_t n)
{
    if (causal_cache_.rows() != n) {
        Matrix m(n, n);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j <= i; ++j)
                m(i, j) = 1.0f;
        causal_cache_ = std::move(m);
        ++causal_builds_;
    }
    return causal_cache_;
}

Matrix
MultiHeadAttention::forward(const Matrix &x)
{
    const size_t n = x.rows();
    x_ = x;
    q_ = matmul(x, wq_.value);
    k_ = matmul(x, wk_.value);
    v_ = matmul(x, wv_.value);

    if (hook_)
        hook_->beginLayer(layer_, x);

    s_raw_.assign(heads_, Matrix());
    a_.assign(heads_, Matrix());
    masks_.assign(heads_, Matrix());
    head_backends_.assign(heads_, AttnBackendKind::Dense);
    z_ = Matrix(n, dim_);
    sparse_forward_ = false;

    // Per-head backend dispatch (nn/attention_backend.hpp). Non-dense
    // backends compute scores only at mask-kept coordinates — the
    // software analogue of the accelerator omitting weak attentions —
    // and are only legal when the hook does not need the full S (no
    // estimation loss to maintain) and no measurement code forced the
    // dense path. Sparse kept entries are bit-identical to the dense
    // masked computation; streaming is tolerance-level (DESIGN.md §13).
    const AttnChoice choice = attnChoice();
    const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    for (size_t h = 0; h < heads_; ++h) {
        const Matrix qh = headSlice(q_, h);
        const Matrix kh = headSlice(k_, h);
        const Matrix vh = headSlice(v_, h);

        Matrix mask;
        if (hook_) {
            hook_->observeQK(layer_, h, qh, kh);
            mask = hook_->selectMask(layer_, h, causal_);
        }
        const bool hook_mask = !mask.empty();
        masks_[h] = std::move(mask);

        const AttnBackendKind kind = resolveAttnBackend(
            choice, hook_ != nullptr, hook_ && hook_->wantsFullScores(),
            force_dense_, hook_mask, n);
        head_backends_[h] = kind;
        const AttentionBackend &backend = attentionBackend(kind);

        AttnHeadProblem p;
        p.q = &qh;
        p.k = &kh;
        p.v = &vh;
        p.scale = inv_sqrt_dk;
        SparseMask smask;
        if (kind == AttnBackendKind::Dense ||
            kind == AttnBackendKind::Int8) {
            // A hook mask replaces the causal constraint; otherwise the
            // cached triangle (no per-forward n x n rebuild). The int8
            // backend shares the dense mask contract (its integer
            // softmax consumes the dense 0/1 keep mask directly).
            if (hook_mask)
                p.dense_mask = &masks_[h];
            else if (causal_)
                p.dense_mask = &cachedCausalMask(n);
        } else {
            if (hook_mask) {
                smask = SparseMask::fromDense(masks_[h]);
                p.sparse_mask = &smask;
            }
            p.causal = causal_ && !hook_mask;
        }

        AttnHeadResult r = backend.runHead(p);
        if (backend.capturesScores()) {
            s_raw_[h] = std::move(r.scores);
            a_[h] = std::move(r.probs);
            if (hook_)
                hook_->observeScores(layer_, h, s_raw_[h]);
        } else {
            // s_raw_[h]/a_[h] stay empty; observeScores skipped.
            sparse_forward_ = true;
        }
        addHeadSlice(z_, r.z, h);
    }
    return matmul(z_, wo_.value);
}

Matrix
MultiHeadAttention::backward(const Matrix &dy)
{
    DOTA_ASSERT(!x_.empty(), "backward before forward");
    DOTA_ASSERT(!sparse_forward_,
                "backward after a non-dense inference forward: the "
                "sparse/streaming backends do not cache S/A (training "
                "hooks must return wantsFullScores() == true)");
    const size_t n = x_.rows();
    const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    // out = Z Wo
    Matrix dwo = matmulAT(z_, dy);
    for (size_t i = 0; i < dwo.size(); ++i)
        wo_.grad.data()[i] += dwo.data()[i];
    const Matrix dz = matmulBT(dy, wo_.value);

    Matrix dq(n, dim_), dk(n, dim_), dv(n, dim_);
    for (size_t h = 0; h < heads_; ++h) {
        const Matrix qh = headSlice(q_, h);
        const Matrix kh = headSlice(k_, h);
        const Matrix vh = headSlice(v_, h);
        const Matrix dzh = headSlice(dz, h);

        // Z_h = A_h V_h
        const Matrix da = matmulBT(dzh, vh);
        const Matrix dvh = matmulAT(a_[h], dzh);

        // Masked softmax backward: masked entries have A == 0, so the
        // dense formula already yields zero gradient there.
        Matrix ds = rowSoftmaxBackward(a_[h], da);
        ds = scale(ds, inv_sqrt_dk); // through S/sqrt(dk)

        // Joint optimization: add lambda * dL_MSE/dS from the hook.
        if (hook_) {
            const Matrix ds_aux = hook_->scoreGradient(layer_, h);
            if (!ds_aux.empty()) {
                DOTA_ASSERT(ds_aux.rows() == n && ds_aux.cols() == n,
                            "hook score gradient has wrong shape");
                ds = add(ds, ds_aux);
            }
        }

        // S = Q_h K_h^T
        const Matrix dqh = matmul(ds, kh);
        const Matrix dkh = matmulAT(ds, qh);

        addHeadSlice(dq, dqh, h);
        addHeadSlice(dk, dkh, h);
        addHeadSlice(dv, dvh, h);
    }

    // Q = X Wq etc.
    Matrix dwq = matmulAT(x_, dq);
    Matrix dwk = matmulAT(x_, dk);
    Matrix dwv = matmulAT(x_, dv);
    for (size_t i = 0; i < dwq.size(); ++i) {
        wq_.grad.data()[i] += dwq.data()[i];
        wk_.grad.data()[i] += dwk.data()[i];
        wv_.grad.data()[i] += dwv.data()[i];
    }

    Matrix dx = matmulBT(dq, wq_.value);
    dx = add(dx, matmulBT(dk, wk_.value));
    dx = add(dx, matmulBT(dv, wv_.value));
    return dx;
}

void
MultiHeadAttention::collectParams(std::vector<Parameter *> &out)
{
    out.push_back(&wq_);
    out.push_back(&wk_);
    out.push_back(&wv_);
    out.push_back(&wo_);
}

} // namespace dota
