/**
 * @file
 * Implementation of multi-head self-attention.
 */
#include "nn/attention.hpp"

#include <cmath>

#include "tensor/sparse_mask.hpp"
#include "tensor/sparse_ops.hpp"

namespace dota {

MultiHeadAttention::MultiHeadAttention(const std::string &name, size_t layer,
                                       size_t dim, size_t heads, Rng &rng,
                                       bool causal)
    : layer_(layer), dim_(dim), heads_(heads), head_dim_(dim / heads),
      causal_(causal), wq_(name + ".wq", Matrix::xavier(dim, dim, rng)),
      wk_(name + ".wk", Matrix::xavier(dim, dim, rng)),
      wv_(name + ".wv", Matrix::xavier(dim, dim, rng)),
      wo_(name + ".wo", Matrix::xavier(dim, dim, rng))
{
    DOTA_ASSERT(dim % heads == 0, "dim {} not divisible by heads {}", dim,
                heads);
}

Matrix
MultiHeadAttention::headSlice(const Matrix &m, size_t h) const
{
    Matrix out(m.rows(), head_dim_);
    const size_t off = h * head_dim_;
    for (size_t i = 0; i < m.rows(); ++i)
        std::copy(m.row(i) + off, m.row(i) + off + head_dim_, out.row(i));
    return out;
}

void
MultiHeadAttention::addHeadSlice(Matrix &dst, const Matrix &src,
                                 size_t h) const
{
    const size_t off = h * head_dim_;
    for (size_t i = 0; i < src.rows(); ++i)
        for (size_t j = 0; j < head_dim_; ++j)
            dst(i, off + j) += src(i, j);
}

Matrix
MultiHeadAttention::causalMask(size_t n) const
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j <= i; ++j)
            m(i, j) = 1.0f;
    return m;
}

Matrix
MultiHeadAttention::forward(const Matrix &x)
{
    const size_t n = x.rows();
    x_ = x;
    q_ = matmul(x, wq_.value);
    k_ = matmul(x, wk_.value);
    v_ = matmul(x, wv_.value);

    if (hook_)
        hook_->beginLayer(layer_, x);

    s_raw_.assign(heads_, Matrix());
    a_.assign(heads_, Matrix());
    masks_.assign(heads_, Matrix());
    z_ = Matrix(n, dim_);
    sparse_forward_ = false;

    // The sparse inference path (tensor/sparse_ops.hpp) computes scores
    // only at mask-kept coordinates — the software analogue of the
    // accelerator omitting weak attentions. It is only legal when the
    // hook does not need the full S (no estimation loss to maintain) and
    // no measurement code forced the dense path. Kept entries are
    // bit-identical to the dense masked computation, so this is a pure
    // work reduction, not an approximation beyond the mask itself.
    const bool may_sparsify =
        hook_ && !force_dense_ && !hook_->wantsFullScores();

    const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    for (size_t h = 0; h < heads_; ++h) {
        const Matrix qh = headSlice(q_, h);
        const Matrix kh = headSlice(k_, h);
        const Matrix vh = headSlice(v_, h);

        Matrix mask;
        if (hook_) {
            hook_->observeQK(layer_, h, qh, kh);
            mask = hook_->selectMask(layer_, h, causal_);
        }
        const bool hook_mask = !mask.empty();
        if (!hook_mask && causal_)
            mask = causalMask(n);
        masks_[h] = mask;

        if (may_sparsify && hook_mask) {
            sparse_forward_ = true;
            addHeadSlice(z_,
                         sparseMaskedAttention(qh, kh, vh,
                                               SparseMask::fromDense(mask),
                                               inv_sqrt_dk),
                         h);
            continue; // s_raw_[h]/a_[h] stay empty; observeScores skipped
        }

        // Raw scores S = Q K^T (pre-scaling, matching Eq. 5's target).
        s_raw_[h] = matmulBT(qh, kh);

        const Matrix scaled = scale(s_raw_[h], inv_sqrt_dk);
        a_[h] = mask.empty() ? rowSoftmax(scaled)
                             : rowSoftmaxMasked(scaled, mask);

        if (hook_)
            hook_->observeScores(layer_, h, s_raw_[h]);

        addHeadSlice(z_, matmul(a_[h], vh), h);
    }
    return matmul(z_, wo_.value);
}

Matrix
MultiHeadAttention::backward(const Matrix &dy)
{
    DOTA_ASSERT(!x_.empty(), "backward before forward");
    DOTA_ASSERT(!sparse_forward_,
                "backward after a sparse inference forward: the sparse "
                "path does not cache S/A (training hooks must return "
                "wantsFullScores() == true)");
    const size_t n = x_.rows();
    const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));

    // out = Z Wo
    Matrix dwo = matmulAT(z_, dy);
    for (size_t i = 0; i < dwo.size(); ++i)
        wo_.grad.data()[i] += dwo.data()[i];
    const Matrix dz = matmulBT(dy, wo_.value);

    Matrix dq(n, dim_), dk(n, dim_), dv(n, dim_);
    for (size_t h = 0; h < heads_; ++h) {
        const Matrix qh = headSlice(q_, h);
        const Matrix kh = headSlice(k_, h);
        const Matrix vh = headSlice(v_, h);
        const Matrix dzh = headSlice(dz, h);

        // Z_h = A_h V_h
        const Matrix da = matmulBT(dzh, vh);
        const Matrix dvh = matmulAT(a_[h], dzh);

        // Masked softmax backward: masked entries have A == 0, so the
        // dense formula already yields zero gradient there.
        Matrix ds = rowSoftmaxBackward(a_[h], da);
        ds = scale(ds, inv_sqrt_dk); // through S/sqrt(dk)

        // Joint optimization: add lambda * dL_MSE/dS from the hook.
        if (hook_) {
            const Matrix ds_aux = hook_->scoreGradient(layer_, h);
            if (!ds_aux.empty()) {
                DOTA_ASSERT(ds_aux.rows() == n && ds_aux.cols() == n,
                            "hook score gradient has wrong shape");
                ds = add(ds, ds_aux);
            }
        }

        // S = Q_h K_h^T
        const Matrix dqh = matmul(ds, kh);
        const Matrix dkh = matmulAT(ds, qh);

        addHeadSlice(dq, dqh, h);
        addHeadSlice(dk, dkh, h);
        addHeadSlice(dv, dvh, h);
    }

    // Q = X Wq etc.
    Matrix dwq = matmulAT(x_, dq);
    Matrix dwk = matmulAT(x_, dk);
    Matrix dwv = matmulAT(x_, dv);
    for (size_t i = 0; i < dwq.size(); ++i) {
        wq_.grad.data()[i] += dwq.data()[i];
        wk_.grad.data()[i] += dwk.data()[i];
        wv_.grad.data()[i] += dwv.data()[i];
    }

    Matrix dx = matmulBT(dq, wq_.value);
    dx = add(dx, matmulBT(dk, wk_.value));
    dx = add(dx, matmulBT(dv, wv_.value));
    return dx;
}

void
MultiHeadAttention::collectParams(std::vector<Parameter *> &out)
{
    out.push_back(&wq_);
    out.push_back(&wk_);
    out.push_back(&wv_);
    out.push_back(&wo_);
}

} // namespace dota
