/**
 * @file
 * Layer normalization module (trainable gamma/beta).
 */
#pragma once

#include "nn/param.hpp"
#include "tensor/ops.hpp"

namespace dota {

/** Row-wise layer normalization with trainable scale and shift. */
class LayerNormLayer : public Module
{
  public:
    LayerNormLayer(const std::string &name, size_t dim);

    /** Forward over an (n x dim) input. */
    Matrix forward(const Matrix &x);

    /** Backward; returns dL/dx, accumulates dgamma/dbeta. */
    Matrix backward(const Matrix &dy);

    void collectParams(std::vector<Parameter *> &out) override;

    const Matrix &gamma() const { return gamma_.value; }
    const Matrix &beta() const { return beta_.value; }

  private:
    Parameter gamma_;
    Parameter beta_;
    Matrix cached_x_;
    Matrix mean_;
    Matrix rstd_;
};

} // namespace dota
