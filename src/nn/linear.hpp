/**
 * @file
 * Fully-connected layer with explicit forward/backward.
 */
#pragma once

#include "nn/param.hpp"
#include "tensor/ops.hpp"

namespace dota {

/** y = x W + b, with cached input for backward. */
class LinearLayer : public Module
{
  public:
    /**
     * @param name    parameter name prefix
     * @param in      input feature dimension
     * @param out     output feature dimension
     * @param rng     weight initializer stream
     * @param bias    whether to include the additive bias
     */
    LinearLayer(const std::string &name, size_t in, size_t out, Rng &rng,
                bool bias = true);

    /** Forward; caches @p x. Input is (n x in), output (n x out). */
    Matrix forward(const Matrix &x);

    /** Backward; returns dL/dx and accumulates dW/db. */
    Matrix backward(const Matrix &dy);

    void collectParams(std::vector<Parameter *> &out) override;

    Parameter &weight() { return w_; }
    Parameter &bias() { return b_; }
    bool hasBias() const { return has_bias_; }

  private:
    Parameter w_; ///< in x out
    Parameter b_; ///< 1 x out (only if has_bias_)
    bool has_bias_;
    Matrix cached_x_;
};

} // namespace dota
