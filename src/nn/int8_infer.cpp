/**
 * @file
 * Implementation of the int8 inference path: calibration, plan
 * quantization, full-sequence and incremental forwards.
 */
#include "nn/int8_infer.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace dota {

namespace {

/** Copy columns [h*dh, (h+1)*dh) of @p m (the per-head slice). */
Matrix
colSlice(const Matrix &m, size_t h, size_t dh)
{
    Matrix s(m.rows(), dh);
    const size_t off = h * dh;
    for (size_t i = 0; i < m.rows(); ++i) {
        const float *src = m.row(i) + off;
        std::copy(src, src + dh, s.row(i));
    }
    return s;
}

/** Fold the finite max |x| of @p m into a running range. */
void
observeRange(float &range, const Matrix &m)
{
    for (size_t i = 0; i < m.size(); ++i) {
        const float a = std::abs(m.data()[i]);
        if (std::isfinite(a))
            range = std::max(range, a);
    }
}

/**
 * fp32 replication of one encoder block (the dense path of
 * EncoderBlock::forward, hook-free), recording max |x| at each int8
 * quantization site. The same accessor-based re-implementation pattern
 * as the incremental decode path (nn/decode.cpp).
 */
Matrix
calibrateBlock(EncoderBlock &blk, Int8LayerRanges &r, const Matrix &x,
               bool causal)
{
    MultiHeadAttention &attn = blk.attention();
    const size_t n = x.rows();
    const size_t dh = attn.headDim();
    const size_t heads = attn.heads();
    observeRange(r.x, x);

    const Matrix q = matmul(x, attn.wq());
    const Matrix k = matmul(x, attn.wk());
    const Matrix v = matmul(x, attn.wv());
    observeRange(r.q, q);
    observeRange(r.k, k);
    observeRange(r.v, v);

    const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(dh));
    Matrix z(n, attn.heads() * dh);
    for (size_t h = 0; h < heads; ++h) {
        const Matrix qh = colSlice(q, h, dh);
        const Matrix kh = colSlice(k, h, dh);
        const Matrix vh = colSlice(v, h, dh);
        const Matrix scores = scale(matmulBT(qh, kh), inv_sqrt_dk);
        const Matrix probs =
            causal ? rowSoftmaxMasked(scores, attn.cachedCausalMask(n))
                   : rowSoftmax(scores);
        const Matrix zh = matmul(probs, vh);
        for (size_t i = 0; i < n; ++i)
            std::copy(zh.row(i), zh.row(i) + dh, z.row(i) + h * dh);
    }
    observeRange(r.z, z);

    const Matrix a = matmul(z, attn.wo());
    Matrix mean, rstd;
    const Matrix h1 = layerNorm(add(x, a), blk.ln1().gamma(),
                                blk.ln1().beta(), mean, rstd);
    observeRange(r.h1, h1);
    const Matrix pre = addRowBroadcast(
        matmul(h1, blk.fc1().weight().value), blk.fc1().bias().value);
    const Matrix hidden =
        blk.activation() == Activation::ReLU ? relu(pre) : gelu(pre);
    observeRange(r.hidden, hidden);
    const Matrix f = addRowBroadcast(
        matmul(hidden, blk.fc2().weight().value), blk.fc2().bias().value);
    return layerNorm(add(h1, f), blk.ln2().gamma(), blk.ln2().beta(),
                     mean, rstd);
}

/** Quantize one block's weights and freeze its activation scales. */
Int8BlockPlan
buildBlockPlan(EncoderBlock &blk, const Int8LayerRanges &r)
{
    MultiHeadAttention &attn = blk.attention();
    auto wscale = [](const Matrix &w) {
        return chooseSymmetricScale(w, 8).scale;
    };
    Int8BlockPlan bp;
    bp.wq = quantizeS8Transposed(attn.wq(), wscale(attn.wq()));
    bp.wk = quantizeS8Transposed(attn.wk(), wscale(attn.wk()));
    bp.wv = quantizeS8Transposed(attn.wv(), wscale(attn.wv()));
    bp.wo = quantizeS8Transposed(attn.wo(), wscale(attn.wo()));
    const Matrix &w1 = blk.fc1().weight().value;
    const Matrix &w2 = blk.fc2().weight().value;
    bp.fc1 = quantizeS8Transposed(w1, wscale(w1));
    bp.fc2 = quantizeS8Transposed(w2, wscale(w2));
    bp.x_scale = symmetricScaleFromMaxAbs(r.x, kU8ActQmax);
    bp.q_scale = symmetricScaleFromMaxAbs(r.q, kU8ActQmax);
    bp.k_scale = symmetricScaleFromMaxAbs(r.k, kS8Qmax);
    bp.v_scale = symmetricScaleFromMaxAbs(r.v, kS8Qmax);
    bp.z_scale = symmetricScaleFromMaxAbs(r.z, kU8ActQmax);
    bp.h1_scale = symmetricScaleFromMaxAbs(r.h1, kU8ActQmax);
    bp.hidden_scale = symmetricScaleFromMaxAbs(r.hidden, kU8ActQmax);
    const float inv_sqrt_dk =
        1.0f / std::sqrt(static_cast<float>(attn.headDim()));
    bp.softmax =
        IntSoftmaxLut(bp.q_scale * bp.k_scale * inv_sqrt_dk);
    return bp;
}

/**
 * One int8 encoder block forward. @p hook is the attention hook
 * installed on this block's layer (nullptr for none): selectMask gates
 * the integer softmax exactly as it gates the fp path, so detector-
 * driven sparsity composes with the integer datapath.
 */
Matrix
int8Block(EncoderBlock &blk, const Int8BlockPlan &bp, const Matrix &x,
          size_t layer, bool causal)
{
    MultiHeadAttention &attn = blk.attention();
    AttentionHook *hook = attn.hook();
    const size_t n = x.rows();
    const size_t dh = attn.headDim();
    const size_t heads = attn.heads();
    const size_t d = heads * dh;

    const U8Tensor xq = quantizeU8(x, bp.x_scale);
    const Matrix q = int8MatmulBT(xq, bp.wq);
    const Matrix k = int8MatmulBT(xq, bp.wk);
    const Matrix v = int8MatmulBT(xq, bp.wv);

    if (hook)
        hook->beginLayer(layer, x);

    Matrix z(n, d);
    std::vector<int32_t> raw(n * n);
    for (size_t h = 0; h < heads; ++h) {
        const Matrix qh = colSlice(q, h, dh);
        const Matrix kh = colSlice(k, h, dh);
        const Matrix vh = colSlice(v, h, dh);

        Matrix mask;
        if (hook) {
            hook->observeQK(layer, h, qh, kh);
            mask = hook->selectMask(layer, h, causal);
        }
        // A hook mask replaces the causal constraint (same rule as the
        // fp attention layer).
        const Matrix *keep = nullptr;
        if (!mask.empty())
            keep = &mask;
        else if (causal)
            keep = &attn.cachedCausalMask(n);

        const U8Tensor qq = quantizeU8(qh, bp.q_scale);
        const Int8Tensor kk = quantizeS8(kh, bp.k_scale);
        const Int8Tensor vt = quantizeS8Transposed(vh, bp.v_scale);

        int8GemmBT(qq, kk, raw.data());

        U8Tensor probs;
        probs.rows = n;
        probs.k = n;
        probs.scale = bp.softmax.probScale();
        probs.zero_point = 0;
        probs.codes.resize(n * n);
        for (size_t i = 0; i < n; ++i)
            bp.softmax.softmaxRow(raw.data() + i * n, n,
                                  keep ? keep->row(i) : nullptr,
                                  probs.codes.data() + i * n);

        if (hook && hook->wantsFullScores()) {
            // Estimation-loss hooks observe the dequantized raw scores
            // (the integer path's view of S = QK^T).
            Matrix s(n, n);
            const float ss = qq.scale * kk.scale;
            for (size_t i = 0; i < s.size(); ++i)
                s.data()[i] = static_cast<float>(raw[i]) * ss;
            hook->observeScores(layer, h, s);
        }

        const Matrix zh = int8MatmulBT(probs, vt);
        for (size_t i = 0; i < n; ++i)
            std::copy(zh.row(i), zh.row(i) + dh, z.row(i) + h * dh);
    }

    const U8Tensor zq = quantizeU8(z, bp.z_scale);
    const Matrix a = int8MatmulBT(zq, bp.wo);

    Matrix mean, rstd;
    const Matrix h1 = layerNorm(add(x, a), blk.ln1().gamma(),
                                blk.ln1().beta(), mean, rstd);
    const U8Tensor h1q = quantizeU8(h1, bp.h1_scale);
    const Matrix pre =
        int8MatmulBT(h1q, bp.fc1, &blk.fc1().bias().value);
    const Matrix hidden =
        blk.activation() == Activation::ReLU ? relu(pre) : gelu(pre);
    const U8Tensor hq = quantizeU8(hidden, bp.hidden_scale);
    const Matrix f = int8MatmulBT(hq, bp.fc2, &blk.fc2().bias().value);
    return layerNorm(add(h1, f), blk.ln2().gamma(), blk.ln2().beta(),
                     mean, rstd);
}

} // namespace

Int8Calibration
calibrateClassifier(TransformerClassifier &model,
                    const std::vector<Matrix> &samples)
{
    const TransformerConfig &cfg = model.config();
    Int8Calibration calib;
    calib.layers.resize(cfg.layers);
    for (const Matrix &features : samples) {
        observeRange(calib.input, features);
        Matrix h = model.inputLayer().forward(features);
        for (size_t l = 0; l < cfg.layers; ++l)
            h = calibrateBlock(*model.blocks()[l], calib.layers[l], h,
                               /*causal=*/false);
        Matrix pooled(1, cfg.dim);
        const float inv = 1.0f / static_cast<float>(h.rows());
        for (size_t i = 0; i < h.rows(); ++i)
            for (size_t j = 0; j < h.cols(); ++j)
                pooled(0, j) += h(i, j) * inv;
        observeRange(calib.final_h, pooled);
    }
    return calib;
}

Int8Calibration
calibrateLM(CausalLM &model,
            const std::vector<std::vector<int>> &samples)
{
    const TransformerConfig &cfg = model.config();
    Int8Calibration calib;
    calib.layers.resize(cfg.layers);
    for (const std::vector<int> &ids : samples) {
        Matrix h = model.tokenEmbedding().forward(ids);
        for (size_t i = 0; i < h.rows(); ++i)
            for (size_t j = 0; j < h.cols(); ++j)
                h(i, j) += model.positionTable()(i, j);
        for (size_t l = 0; l < cfg.layers; ++l)
            h = calibrateBlock(*model.blocks()[l], calib.layers[l], h,
                               /*causal=*/true);
        observeRange(calib.final_h, h);
    }
    return calib;
}

Int8Plan
quantizeClassifier(TransformerClassifier &model,
                   const Int8Calibration &calib)
{
    const TransformerConfig &cfg = model.config();
    DOTA_ASSERT(calib.layers.size() == cfg.layers,
                "calibration covers {} layers, model has {}",
                calib.layers.size(), cfg.layers);
    Int8Plan plan;
    const Matrix &wi = model.inputLayer().weight().value;
    plan.input = quantizeS8Transposed(wi, chooseSymmetricScale(wi, 8).scale);
    const Matrix &wh = model.headLayer().weight().value;
    plan.head = quantizeS8Transposed(wh, chooseSymmetricScale(wh, 8).scale);
    plan.input_scale = symmetricScaleFromMaxAbs(calib.input, kU8ActQmax);
    plan.final_scale = symmetricScaleFromMaxAbs(calib.final_h, kU8ActQmax);
    plan.blocks.reserve(cfg.layers);
    for (size_t l = 0; l < cfg.layers; ++l)
        plan.blocks.push_back(
            buildBlockPlan(*model.blocks()[l], calib.layers[l]));
    return plan;
}

Int8Plan
quantizeLM(CausalLM &model, const Int8Calibration &calib)
{
    const TransformerConfig &cfg = model.config();
    DOTA_ASSERT(calib.layers.size() == cfg.layers,
                "calibration covers {} layers, model has {}",
                calib.layers.size(), cfg.layers);
    Int8Plan plan;
    const Matrix &wh = model.lmHead().weight().value;
    plan.head = quantizeS8Transposed(wh, chooseSymmetricScale(wh, 8).scale);
    plan.final_scale = symmetricScaleFromMaxAbs(calib.final_h, kU8ActQmax);
    plan.blocks.reserve(cfg.layers);
    for (size_t l = 0; l < cfg.layers; ++l)
        plan.blocks.push_back(
            buildBlockPlan(*model.blocks()[l], calib.layers[l]));
    return plan;
}

Matrix
int8Forward(TransformerClassifier &model, const Int8Plan &plan,
            const Matrix &features)
{
    const TransformerConfig &cfg = model.config();
    DOTA_ASSERT(plan.blocks.size() == cfg.layers,
                "plan covers {} layers, model has {}", plan.blocks.size(),
                cfg.layers);
    const U8Tensor fq = quantizeU8(features, plan.input_scale);
    LinearLayer &input = model.inputLayer();
    Matrix h = int8MatmulBT(
        fq, plan.input, input.hasBias() ? &input.bias().value : nullptr);
    for (size_t l = 0; l < cfg.layers; ++l)
        h = int8Block(*model.blocks()[l], plan.blocks[l], h, l,
                      /*causal=*/false);
    Matrix pooled(1, cfg.dim);
    const float inv = 1.0f / static_cast<float>(h.rows());
    for (size_t i = 0; i < h.rows(); ++i)
        for (size_t j = 0; j < h.cols(); ++j)
            pooled(0, j) += h(i, j) * inv;
    const U8Tensor pq = quantizeU8(pooled, plan.final_scale);
    LinearLayer &head = model.headLayer();
    return int8MatmulBT(pq, plan.head,
                        head.hasBias() ? &head.bias().value : nullptr);
}

Matrix
int8Forward(CausalLM &model, const Int8Plan &plan,
            const std::vector<int> &ids)
{
    const TransformerConfig &cfg = model.config();
    DOTA_ASSERT(plan.blocks.size() == cfg.layers,
                "plan covers {} layers, model has {}", plan.blocks.size(),
                cfg.layers);
    DOTA_ASSERT(ids.size() <= cfg.max_seq,
                "sequence length {} exceeds max {}", ids.size(),
                cfg.max_seq);
    Matrix h = model.tokenEmbedding().forward(ids);
    for (size_t i = 0; i < h.rows(); ++i)
        for (size_t j = 0; j < h.cols(); ++j)
            h(i, j) += model.positionTable()(i, j);
    for (size_t l = 0; l < cfg.layers; ++l)
        h = int8Block(*model.blocks()[l], plan.blocks[l], h, l,
                      /*causal=*/true);
    const U8Tensor hq = quantizeU8(h, plan.final_scale);
    LinearLayer &head = model.lmHead();
    return int8MatmulBT(hq, plan.head,
                        head.hasBias() ? &head.bias().value : nullptr);
}

void
Int8KvCache::append(const float *k_row, const float *v_row, size_t d,
                    size_t n_heads)
{
    DOTA_ASSERT(len == 0 || (dim == d && heads == n_heads),
                "KV cache shape changed mid-stream");
    dim = d;
    heads = n_heads;
    const size_t dh = d / n_heads;
    const float k_inv =
        (std::isfinite(k_scale) && k_scale > 0.0f) ? 1.0f / k_scale : 1.0f;
    const float v_inv =
        (std::isfinite(v_scale) && v_scale > 0.0f) ? 1.0f / v_scale : 1.0f;
    auto roundS8 = [](float x) {
        if (std::isnan(x))
            return 0;
        if (x >= 127.0f)
            return 127;
        if (x <= -127.0f)
            return -127;
        return static_cast<int>(std::lround(x));
    };
    k_codes.reserve(k_codes.size() + d);
    v_codes.reserve(v_codes.size() + d);
    for (size_t c = 0; c < d; ++c) {
        k_codes.push_back(static_cast<int8_t>(roundS8(k_row[c] * k_inv)));
        v_codes.push_back(static_cast<int8_t>(roundS8(v_row[c] * v_inv)));
    }
    const int8_t *krow = k_codes.data() + len * d;
    for (size_t h = 0; h < n_heads; ++h) {
        int32_t sum = 0;
        for (size_t c = 0; c < dh; ++c)
            sum += krow[h * dh + c];
        k_head_sums.push_back(sum);
    }
    ++len;
}

namespace {

/** One int8 encoder block, incrementally (cf. blockStep, decode.cpp). */
Matrix
int8BlockStep(EncoderBlock &blk, const Int8BlockPlan &bp,
              const Matrix &x_row, Int8KvCache &cache)
{
    MultiHeadAttention &attn = blk.attention();
    const size_t dh = attn.headDim();
    const size_t heads = attn.heads();
    const size_t d = heads * dh;

    const U8Tensor xq = quantizeU8(x_row, bp.x_scale);
    const Matrix q = int8MatmulBT(xq, bp.wq);
    const Matrix k_new = int8MatmulBT(xq, bp.wk);
    const Matrix v_new = int8MatmulBT(xq, bp.wv);
    cache.k_scale = bp.k_scale;
    cache.v_scale = bp.v_scale;
    cache.append(k_new.row(0), v_new.row(0), d, heads);

    const size_t t = cache.len;
    const U8Tensor qq = quantizeU8(q, bp.q_scale);
    Matrix z(1, d);
    std::vector<int32_t> scores(t);
    std::vector<uint8_t> probs(t);
    std::vector<int32_t> acc(dh);
    const auto &kt = activeGemmKernels();
    for (size_t h = 0; h < heads; ++h) {
        const size_t off = h * dh;
        // Scores of the new query against all cached keys of this head:
        // same codes, same compensation, same s32 sums as the full-
        // sequence int8 forward's last row.
        const uint8_t *qrow = qq.codes.data() + off;
        for (size_t j = 0; j < t; ++j) {
            const int32_t raw = kt.int8Dot(
                qrow, cache.k_codes.data() + j * d + off, dh);
            scores[j] =
                raw - kU8ZeroPoint * cache.k_head_sums[j * heads + h];
        }
        bp.softmax.softmaxRow(scores.data(), t, nullptr, probs.data());
        std::fill(acc.begin(), acc.end(), 0);
        for (size_t j = 0; j < t; ++j) {
            const int32_t w = probs[j];
            if (w == 0)
                continue;
            const int8_t *vrow = cache.v_codes.data() + j * d + off;
            for (size_t c = 0; c < dh; ++c)
                acc[c] += w * static_cast<int32_t>(vrow[c]);
        }
        const float out_scale = bp.softmax.probScale() * bp.v_scale;
        for (size_t c = 0; c < dh; ++c)
            z(0, off + c) = static_cast<float>(acc[c]) * out_scale;
    }

    const U8Tensor zq = quantizeU8(z, bp.z_scale);
    const Matrix a = int8MatmulBT(zq, bp.wo);
    Matrix mean, rstd;
    const Matrix h1 = layerNorm(add(x_row, a), blk.ln1().gamma(),
                                blk.ln1().beta(), mean, rstd);
    const U8Tensor h1q = quantizeU8(h1, bp.h1_scale);
    const Matrix pre =
        int8MatmulBT(h1q, bp.fc1, &blk.fc1().bias().value);
    const Matrix hidden =
        blk.activation() == Activation::ReLU ? relu(pre) : gelu(pre);
    const U8Tensor hq = quantizeU8(hidden, bp.hidden_scale);
    const Matrix f = int8MatmulBT(hq, bp.fc2, &blk.fc2().bias().value);
    return layerNorm(add(h1, f), blk.ln2().gamma(), blk.ln2().beta(),
                     mean, rstd);
}

} // namespace

Matrix
int8DecodeStep(CausalLM &model, const Int8Plan &plan,
               Int8DecodeState &state, int token)
{
    const TransformerConfig &cfg = model.config();
    DOTA_ASSERT(plan.blocks.size() == cfg.layers,
                "plan covers {} layers, model has {}", plan.blocks.size(),
                cfg.layers);
    if (state.layers.size() != cfg.layers)
        state.reset(cfg.layers);
    DOTA_ASSERT(state.position < cfg.max_seq,
                "decode position {} exceeds max_seq {}", state.position,
                cfg.max_seq);

    Matrix h = model.tokenEmbedding().forward({token});
    for (size_t c = 0; c < cfg.dim; ++c)
        h(0, c) += model.positionTable()(state.position, c);
    for (size_t l = 0; l < cfg.layers; ++l)
        h = int8BlockStep(*model.blocks()[l], plan.blocks[l], h,
                          state.layers[l]);
    ++state.position;
    const U8Tensor hq = quantizeU8(h, plan.final_scale);
    LinearLayer &head = model.lmHead();
    return int8MatmulBT(hq, plan.head,
                        head.hasBias() ? &head.bias().value : nullptr);
}

std::vector<int>
int8Generate(CausalLM &model, const Int8Plan &plan,
             const std::vector<int> &prefix, size_t steps,
             double temperature, uint64_t seed)
{
    DOTA_ASSERT(!prefix.empty(), "generation needs a non-empty prefix");
    Int8DecodeState state;
    state.reset(model.config().layers);
    Matrix logits;
    for (int tok : prefix)
        logits = int8DecodeStep(model, plan, state, tok);

    Rng rng(seed);
    std::vector<int> out;
    out.reserve(steps);
    for (size_t s = 0; s < steps; ++s) {
        int next;
        if (temperature <= 0.0) {
            next = rowArgmax(logits)[0];
        } else {
            Matrix scaled =
                scale(logits, static_cast<float>(1.0 / temperature));
            const Matrix probs = rowSoftmax(scaled);
            const double u = rng.uniform();
            double acc = 0.0;
            next = static_cast<int>(probs.cols()) - 1;
            for (size_t c = 0; c < probs.cols(); ++c) {
                acc += probs(0, c);
                if (u < acc) {
                    next = static_cast<int>(c);
                    break;
                }
            }
        }
        out.push_back(next);
        if (state.position >= model.config().max_seq)
            break;
        logits = int8DecodeStep(model, plan, state, next);
    }
    return out;
}

} // namespace dota
