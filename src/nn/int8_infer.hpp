/**
 * @file
 * Integer-only int8 inference path (DESIGN.md §16): per-tensor symmetric
 * calibration over a trained fp32 model, a quantized execution plan, and
 * full-sequence / incremental-decode forwards whose GEMMs all run on the
 * u8 x s8 kernels of tensor/int8_gemm.hpp with ITA-style integer softmax
 * between QK^T and A*V.
 *
 * Structure of the quantized block (LinearLayer weights W are held as
 * s8 W^T codes so every GEMM is the kernel's C = A * B^T shape):
 *
 *     x  --u8-->  [x Wq] [x Wk] [x Wv]        (int8 GEMM, fp32 out)
 *     per head:  q --u8--, k --s8--  ->  raw s32 scores
 *                integer softmax     ->  u8 probs in [0, 127]
 *                probs --u8--, v^T --s8--  ->  fp32 z
 *     z  --u8-->  [z Wo]  -> +x -> LayerNorm (fp32)
 *     h1 --u8-->  [h1 W1] -> +b -> GELU/ReLU (fp32)
 *     hid --u8--> [hid W2] -> +b -> +h1 -> LayerNorm (fp32)
 *
 * LayerNorm, residual adds, biases and activations stay fp32 — the
 * standard int8-transformer split: they are O(n*d) next to the O(n*d^2)
 * GEMMs and O(n^2*d) attention that dominate runtime, and keeping them
 * in float preserves accuracy without touching the integer hot loops.
 *
 * Determinism contract: all scales are fixed at calibration time, every
 * integer GEMM is exact (tensor/int8_gemm.hpp), and the fp32 glue is
 * elementwise/per-row. Outputs are therefore bit-identical across
 * SIMD ISAs and DOTA_THREADS values, and the incremental decode path
 * reproduces the full-sequence forward's last row exactly — a stronger
 * contract than the fp path, where only matched reduction orders hold
 * it together.
 */
#pragma once

#include <vector>

#include "nn/transformer.hpp"
#include "tensor/int8_gemm.hpp"
#include "tensor/int_softmax.hpp"

namespace dota {

/** Calibrated max |x| per quantization site of one block. */
struct Int8LayerRanges
{
    float x = 0.0f;      ///< block input (Wq/Wk/Wv GEMM A-side)
    float q = 0.0f;      ///< projected queries (u8 grid)
    float k = 0.0f;      ///< projected keys (s8 grid)
    float v = 0.0f;      ///< projected values (s8 grid)
    float z = 0.0f;      ///< concatenated head outputs (Wo A-side)
    float h1 = 0.0f;     ///< post-LN1 (FC1 A-side)
    float hidden = 0.0f; ///< post-activation (FC2 A-side)
};

/** Max |x| statistics from a calibration pass over a trained fp model. */
struct Int8Calibration
{
    float input = 0.0f;   ///< input-projection / first-block A-side
    float final_h = 0.0f; ///< head-GEMM A-side (pooled / last hidden)
    std::vector<Int8LayerRanges> layers;
};

/**
 * Run @p samples (token feature matrices) through the classifier in
 * fp32, recording max |x| at every quantization site.
 */
Int8Calibration calibrateClassifier(TransformerClassifier &model,
                                    const std::vector<Matrix> &samples);

/** LM calibration over token-id sequences (causal attention). */
Int8Calibration calibrateLM(CausalLM &model,
                            const std::vector<std::vector<int>> &samples);

/** One block's quantized weights, activation scales and softmax LUT. */
struct Int8BlockPlan
{
    Int8Tensor wq, wk, wv, wo; ///< d x d weights as s8 W^T codes
    Int8Tensor fc1, fc2;       ///< FFN weights as s8 W^T codes
    float x_scale = 1.0f;      ///< u8 grid (qmax 63)
    float q_scale = 1.0f;      ///< u8 grid
    float k_scale = 1.0f;      ///< s8 grid (qmax 127)
    float v_scale = 1.0f;      ///< s8 grid
    float z_scale = 1.0f;      ///< u8 grid
    float h1_scale = 1.0f;     ///< u8 grid
    float hidden_scale = 1.0f; ///< u8 grid
    IntSoftmaxLut softmax;     ///< built from q_scale*k_scale/sqrt(dh)
};

/**
 * Quantized execution plan: everything int8Forward needs besides the
 * fp32 model itself (which still supplies LayerNorm parameters, biases
 * and embeddings). Built once after calibration; scales never change
 * afterwards (the determinism contract above).
 */
struct Int8Plan
{
    Int8Tensor input;  ///< classifier input projection (empty for LM)
    Int8Tensor head;   ///< classifier head / LM head, s8 W^T codes
    float input_scale = 1.0f;   ///< u8 grid for the first GEMM's A-side
    float final_scale = 1.0f;   ///< u8 grid for the head GEMM's A-side
    std::vector<Int8BlockPlan> blocks;
};

/** Quantize a trained classifier against its calibration. */
Int8Plan quantizeClassifier(TransformerClassifier &model,
                            const Int8Calibration &calib);

/** Quantize a trained LM against its calibration. */
Int8Plan quantizeLM(CausalLM &model, const Int8Calibration &calib);

/**
 * Int8 classifier forward; returns logits (1 x classes). Honors an
 * installed attention hook exactly like the fp path: beginLayer /
 * observeQK see the int8-computed fp activations, selectMask gates the
 * integer softmax (so DOTA-style detectors drive sparsity on the
 * integer path too), and observeScores receives dequantized raw scores
 * when the hook wants them.
 */
Matrix int8Forward(TransformerClassifier &model, const Int8Plan &plan,
                   const Matrix &features);

/** Int8 LM forward over token ids; returns logits (n x vocab). */
Matrix int8Forward(CausalLM &model, const Int8Plan &plan,
                   const std::vector<int> &ids);

/** Per-layer integer KV cache for incremental int8 decoding. */
struct Int8KvCache
{
    size_t dim = 0;   ///< model dim (row width of the code arrays)
    size_t heads = 0;
    float k_scale = 1.0f;
    float v_scale = 1.0f;
    std::vector<int8_t> k_codes; ///< t x dim
    std::vector<int8_t> v_codes; ///< t x dim
    /**
     * Per-position, per-head sums of K codes (t x heads): zero-point
     * compensation for the u8 query x s8 key score dot needs the sum
     * over exactly the head's slice of the row.
     */
    std::vector<int32_t> k_head_sums;
    size_t len = 0;

    /** Quantize and append one fp K/V row pair. */
    void append(const float *k_row, const float *v_row, size_t dim,
                size_t heads);
};

/** Decoding state for the int8 path. */
struct Int8DecodeState
{
    std::vector<Int8KvCache> layers;
    size_t position = 0;

    void reset(size_t n_layers)
    {
        layers.assign(n_layers, Int8KvCache());
        position = 0;
    }
};

/**
 * Feed one token through the int8 LM incrementally; returns logits
 * (1 x vocab). Bit-identical to row `position` of the full-sequence
 * int8Forward (static scales + exact integer GEMMs — see the header
 * comment).
 */
Matrix int8DecodeStep(CausalLM &model, const Int8Plan &plan,
                      Int8DecodeState &state, int token);

/**
 * Autoregressive int8 generation: greedy at temperature <= 0, seeded
 * softmax sampling otherwise (same policy as the fp generate()).
 */
std::vector<int> int8Generate(CausalLM &model, const Int8Plan &plan,
                              const std::vector<int> &prefix, size_t steps,
                              double temperature = 0.0, uint64_t seed = 1);

} // namespace dota
