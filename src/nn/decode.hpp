/**
 * @file
 * Incremental (KV-cached) autoregressive decoding — the software
 * counterpart of the decoder processing in Section 4.4.
 *
 * forwardIncremental() processes one new token against cached key/value
 * matrices, optionally keeping only the strongest `retention` fraction
 * of past connections (row-balanced top-k, as the hardware comparator
 * would after detection). The dense incremental path is bit-equivalent
 * to the last row of the full causal forward, which the test suite
 * asserts.
 */
#pragma once

#include <vector>

#include "nn/transformer.hpp"

namespace dota {

/** Per-layer key/value cache (rows append per generated token). */
struct KvCache
{
    Matrix k; ///< t x dim
    Matrix v; ///< t x dim

    /**
     * Accumulated attention mass per cached position (softmax
     * probability summed over heads and query steps) — the DOTA
     * detector signal at cache grain: entries that keep receiving
     * weak attention accumulate little mass and are the eviction
     * victims of evictWeak().
     */
    std::vector<double> mass;

    size_t length() const { return k.rows(); }

    /** KV bytes held (K + V payload, excluding the mass telemetry). */
    size_t bytes() const { return (k.size() + v.size()) * sizeof(float); }

    /** Append one projected row to both caches. */
    void append(const Matrix &k_row, const Matrix &v_row);
};

/**
 * Evict the weakest cache entries of @p cache, keeping the @p keep
 * positions with the highest accumulated attention mass (ties keep the
 * older position) compacted in their original order — the RocketKV
 * recipe: weak attentions are omitted from memory, not just compute.
 * Returns the number of entries evicted (0 when keep >= length).
 */
size_t evictWeak(KvCache &cache, size_t keep);

/** Decoding session state for a CausalLM. */
struct DecodeState
{
    std::vector<KvCache> layers;
    size_t position = 0;

    /** Prepare for a model with @p num_layers layers. */
    void
    reset(size_t num_layers)
    {
        layers.assign(num_layers, KvCache{});
        position = 0;
    }
};

/**
 * Evict every layer of @p state down to ceil(keep_fraction * length)
 * entries (at least one). Returns total entries evicted across layers.
 */
size_t evictWeak(DecodeState &state, double keep_fraction);

/** Total KV bytes held by @p state across all layers. */
size_t kvBytes(const DecodeState &state);

/**
 * Feed one token through @p model incrementally; returns the logits row
 * (1 x vocab). @p retention < 1 keeps only the top fraction of cached
 * connections per head (1.0 = dense).
 */
Matrix decodeStep(CausalLM &model, DecodeState &state, int token,
                  double retention = 1.0);

/**
 * Greedy (temperature == 0) or temperature sampling continuation of
 * @p prefix for @p steps tokens. Returns only the generated tokens.
 */
std::vector<int> generate(CausalLM &model, const std::vector<int> &prefix,
                          size_t steps, double retention = 1.0,
                          double temperature = 0.0, uint64_t seed = 1);

} // namespace dota
