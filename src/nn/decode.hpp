/**
 * @file
 * Incremental (KV-cached) autoregressive decoding — the software
 * counterpart of the decoder processing in Section 4.4.
 *
 * forwardIncremental() processes one new token against cached key/value
 * matrices, optionally keeping only the strongest `retention` fraction
 * of past connections (row-balanced top-k, as the hardware comparator
 * would after detection). The dense incremental path is bit-equivalent
 * to the last row of the full causal forward, which the test suite
 * asserts.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/transformer.hpp"

namespace dota {

/** Per-layer key/value cache (rows append per generated token). */
struct KvCache
{
    Matrix k; ///< t x dim
    Matrix v; ///< t x dim

    /**
     * Accumulated attention mass per cached position (softmax
     * probability summed over heads and query steps) — the DOTA
     * detector signal at cache grain: entries that keep receiving
     * weak attention accumulate little mass and are the eviction
     * victims of evictWeak().
     */
    std::vector<double> mass;

    size_t length() const { return k.rows(); }

    /** KV bytes held (K + V payload, excluding the mass telemetry). */
    size_t bytes() const { return (k.size() + v.size()) * sizeof(float); }

    /** Append one projected row to both caches. */
    void append(const Matrix &k_row, const Matrix &v_row);
};

/**
 * Evict the weakest cache entries of @p cache, keeping the @p keep
 * positions with the highest accumulated attention mass (ties keep the
 * older position) compacted in their original order — the RocketKV
 * recipe: weak attentions are omitted from memory, not just compute.
 * Returns the number of entries evicted (0 when keep >= length).
 */
size_t evictWeak(KvCache &cache, size_t keep);

/** Decoding session state for a CausalLM. */
struct DecodeState
{
    std::vector<KvCache> layers;
    size_t position = 0;

    /** Prepare for a model with @p num_layers layers. */
    void
    reset(size_t num_layers)
    {
        layers.assign(num_layers, KvCache{});
        position = 0;
    }
};

/**
 * Evict every layer of @p state down to ceil(keep_fraction * length)
 * entries (at least one). Returns total entries evicted across layers.
 */
size_t evictWeak(DecodeState &state, double keep_fraction);

/** Total KV bytes held by @p state across all layers. */
size_t kvBytes(const DecodeState &state);

// KV integrity (DESIGN.md §14) ------------------------------------------
//
// The serving engine's paged allocator tracks page seals at arena
// grain; these helpers give the same contract to a real DecodeState:
// seal the K/V payload after a write, verify before trusting it, and
// recover by re-decoding the prefix — which, decoding being
// deterministic and greedy, reproduces the continuation bit-for-bit.

/** How corruptKv poisons one layer's cache (chaos-testing hook). */
enum class KvFault
{
    BitFlip,   ///< one mantissa bit of one cached key flips
    ZeroRow,   ///< a whole cached K row is wiped to zeros
    TornWrite, ///< new values land in a V row without a re-seal
};

/** CRC32 seal per layer over the K then V payload of @p state. */
std::vector<uint32_t> sealKv(const DecodeState &state);

/** Whether @p state still matches @p seals (layer count included). */
bool verifyKv(const DecodeState &state,
              const std::vector<uint32_t> &seals);

/**
 * Corrupt layer @p layer of @p state in place (deterministically).
 * The seals taken before are NOT updated — verifyKv must catch it.
 */
void corruptKv(DecodeState &state, size_t layer, KvFault mode);

// Live KV migration (DESIGN.md §15) -------------------------------------
//
// Model-grain counterpart of the serving arena's exportSeq/importSeq:
// a decode session's whole K/V state travels with its per-layer seals,
// and the receiver re-verifies before adopting it — so a migrated
// continuation is bit-identical to the uninterrupted run, and a
// transfer corrupted in flight is refused whole.

/** A decode session in transit: per-layer seals + the K/V payload. */
struct KvTransfer
{
    std::vector<uint32_t> seals; ///< sealKv() at departure
    DecodeState state;           ///< deep copy of the session
};

/** Package @p state for migration (seals taken at departure). */
KvTransfer exportKv(const DecodeState &state);

/**
 * Adopt @p transfer into @p dst after re-verifying every layer seal
 * (verify-on-arrival). Returns false — with @p dst untouched — when
 * any seal mismatches; true once @p dst holds the migrated session.
 */
bool importKv(const KvTransfer &transfer, DecodeState &dst);

/**
 * Feed one token through @p model incrementally; returns the logits row
 * (1 x vocab). @p retention < 1 keeps only the top fraction of cached
 * connections per head (1.0 = dense).
 */
Matrix decodeStep(CausalLM &model, DecodeState &state, int token,
                  double retention = 1.0);

/**
 * Greedy (temperature == 0) or temperature sampling continuation of
 * @p prefix for @p steps tokens. Returns only the generated tokens.
 */
std::vector<int> generate(CausalLM &model, const std::vector<int> &prefix,
                          size_t steps, double retention = 1.0,
                          double temperature = 0.0, uint64_t seed = 1);

} // namespace dota
