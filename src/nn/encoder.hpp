/**
 * @file
 * Transformer encoder block: the three-stage structure of Figure 2 /
 * Section 4.1 (Linear Transformation + Multi-Head Attention, then FFN),
 * with residual connections and layer normalization.
 */
#pragma once

#include <memory>

#include "nn/attention.hpp"
#include "nn/layer_norm.hpp"
#include "nn/linear.hpp"

namespace dota {

/** Activation used inside the FFN. */
enum class Activation { ReLU, GELU };

/** One encoder (or, with causal attention, decoder) block. */
class EncoderBlock : public Module
{
  public:
    /**
     * @param name      parameter prefix
     * @param layer     layer index (reported to the attention hook)
     * @param dim       model dimension d
     * @param heads     attention head count
     * @param ffn_dim   hidden dimension of the FFN (paper uses 4d)
     * @param rng       weight initializer
     * @param act       FFN activation
     * @param causal    autoregressive attention (decoder processing)
     */
    EncoderBlock(const std::string &name, size_t layer, size_t dim,
                 size_t heads, size_t ffn_dim, Rng &rng,
                 Activation act = Activation::GELU, bool causal = false);

    Matrix forward(const Matrix &x);
    Matrix backward(const Matrix &dy);

    void collectParams(std::vector<Parameter *> &out) override;

    MultiHeadAttention &attention() { return attn_; }
    const MultiHeadAttention &attention() const { return attn_; }

    /** Sub-layer accessors (used by the incremental decode path). */
    LayerNormLayer &ln1() { return ln1_; }
    LayerNormLayer &ln2() { return ln2_; }
    LinearLayer &fc1() { return fc1_; }
    LinearLayer &fc2() { return fc2_; }
    Activation activation() const { return act_; }

  private:
    MultiHeadAttention attn_;
    LayerNormLayer ln1_;
    LinearLayer fc1_;
    LinearLayer fc2_;
    LayerNormLayer ln2_;
    Activation act_;

    Matrix ffn_pre_act_; ///< fc1 output, cached for activation backward
};

} // namespace dota
