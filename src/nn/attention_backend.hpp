/**
 * @file
 * Pluggable attention-execution backends (DESIGN.md §13).
 *
 * MultiHeadAttention::forward used to hard-code two execution paths
 * (dense, CSR-sparse). This layer factors each path into an
 * AttentionBackend so new paths (the tiled streaming kernel here;
 * int8/ITA-style or token-routing paths later) slot in without touching
 * every caller:
 *
 *  - DenseBackend: full n x n scores + masked softmax + dense A*V.
 *    The only backend that materializes S and A — required whenever a
 *    hook needs full scores (training) or measurement code forces it.
 *    Bit-identical to the pre-refactor dense path.
 *  - SparseRowsBackend: CSR kernels of tensor/sparse_ops.hpp; scores
 *    only at mask-kept coordinates, bit-identical to the dense masked
 *    path at those coordinates. Needs a hook-selected mask.
 *  - StreamingBackend: tiled online-softmax kernel of
 *    tensor/streaming_attention.hpp; O(tile) score memory per thread,
 *    mask-kept tiles only. Matches dense within pinned tolerances.
 *  - Int8Backend: dynamically-quantized integer attention — u8 x s8
 *    maddubs GEMMs (tensor/int8_gemm.hpp) with ITA-style integer
 *    softmax (tensor/int_softmax.hpp); per-head scales from the live
 *    Q/K/V tensors. Opt-in only (never auto); quantization-level
 *    numerics. The calibrated end-to-end path lives in
 *    nn/int8_infer.hpp — this backend is the drop-in experiment knob.
 *
 * Selection is runtime-dispatched per head by resolveAttnBackend()
 * from: the hook's wantsFullScores() / setForceDense (hard dense
 * requirements), the sequence length (long contexts auto-stream), and
 * the DOTA_ATTN=auto|dense|sparse|streaming|int8 override (env or CLI,
 * mirroring DOTA_SIMD). Overrides never win over a hard dense
 * requirement and never select an illegal backend — they degrade to
 * dense, so DOTA_ATTN can be flipped under the whole test suite.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/matrix.hpp"
#include "tensor/sparse_mask.hpp"
#include "tensor/streaming_attention.hpp"

namespace dota {

/** The attention execution paths. */
enum class AttnBackendKind { Dense, Sparse, Streaming, Int8 };

/** User-facing backend selection (DOTA_ATTN / --attn). */
enum class AttnChoice { Auto, Dense, Sparse, Streaming, Int8 };

/** Sequence length at or above which auto-selection streams. */
constexpr size_t kStreamingAutoSeqLen = 4096;

/** Stable lowercase name ("dense" / "sparse" / "streaming" / "int8"). */
const char *attnBackendName(AttnBackendKind kind);

/** Stable lowercase name, including "auto". */
const char *attnChoiceName(AttnChoice choice);

/**
 * Parse a DOTA_ATTN / --attn value. Returns false (leaving @p out
 * untouched) for anything outside auto|dense|sparse|streaming|int8.
 */
bool parseAttnChoice(const std::string &v, AttnChoice &out);

/**
 * The process-wide backend choice: the last setAttnChoice() value, or
 * on first use the DOTA_ATTN environment variable (unknown values warn
 * on stderr and degrade to auto, like DOTA_SIMD; the CLI validates
 * before this point and exits instead).
 */
AttnChoice attnChoice();

/** Override the process-wide choice (CLI --attn, tests). */
void setAttnChoice(AttnChoice choice);

/**
 * RAII pin of the process-wide choice. Tests asserting properties of
 * one specific backend (e.g. the sparse path's bitwise identity, the
 * dense incremental-decode equivalence) wrap their forwards in this so
 * they keep testing that backend under any DOTA_ATTN CI value.
 */
class ScopedAttnChoice
{
  public:
    explicit ScopedAttnChoice(AttnChoice choice) : prev_(attnChoice())
    {
        setAttnChoice(choice);
    }
    ~ScopedAttnChoice() { setAttnChoice(prev_); }
    ScopedAttnChoice(const ScopedAttnChoice &) = delete;
    ScopedAttnChoice &operator=(const ScopedAttnChoice &) = delete;

  private:
    AttnChoice prev_;
};

/** Print the backend table (one row per --attn value) to @p os. */
void listAttnBackends(std::ostream &os);

/**
 * Pick the backend for one head.
 *
 * Hard requirements first: a hook that wants full scores or a
 * force-dense probe always gets Dense (S and A must exist). Otherwise
 * the choice applies where legal: Sparse needs a hook mask; Streaming
 * needs either an inference hook or — hook-free — a long sequence
 * (n >= kStreamingAutoSeqLen), so short hook-free forwards keep their
 * dense S/A probes and backward path under any DOTA_ATTN value. Auto
 * streams long sequences, takes the CSR path when a hook mask exists,
 * and stays dense otherwise.
 *
 * @param choice            attnChoice() or an explicit override
 * @param has_hook          a hook is installed
 * @param wants_full_scores hook_->wantsFullScores() (false when no hook)
 * @param force_dense       setForceDense(true) is active
 * @param has_hook_mask     the hook selected a non-empty mask
 * @param n                 sequence length (query rows)
 */
AttnBackendKind resolveAttnBackend(AttnChoice choice, bool has_hook,
                                   bool wants_full_scores, bool force_dense,
                                   bool has_hook_mask, size_t n);

/** One head's inputs, prepared by MultiHeadAttention::forward. */
struct AttnHeadProblem
{
    const Matrix *q = nullptr; ///< queries, n x dh
    const Matrix *k = nullptr; ///< keys,    n x dh
    const Matrix *v = nullptr; ///< values,  n x dh
    float scale = 1.0f;        ///< 1/sqrt(d_k)

    /**
     * Dense keep mask for the dense backend (hook mask, or the cached
     * causal triangle); nullptr/empty = unmasked softmax.
     */
    const Matrix *dense_mask = nullptr;

    /**
     * Hook mask in sparse form for the sparse/streaming backends;
     * nullptr when the hook kept everything (dense semantics).
     */
    const SparseMask *sparse_mask = nullptr;

    /**
     * Implicit causal bound for the streaming backend. False whenever
     * a hook mask is present — a hook mask replaces the causal
     * constraint, exactly as in the dense path.
     */
    bool causal = false;

    size_t tile = kStreamingAttnTile; ///< streaming KV-tile width
};

/** One head's outputs. scores/probs are filled by Dense only. */
struct AttnHeadResult
{
    Matrix z;      ///< context, n x dh
    Matrix scores; ///< raw S = QK^T (dense backend only)
    Matrix probs;  ///< attention probabilities A (dense backend only)
};

/** Stateless execution strategy for one attention head. */
class AttentionBackend
{
  public:
    virtual ~AttentionBackend() = default;

    virtual AttnBackendKind kind() const = 0;
    const char *name() const { return attnBackendName(kind()); }

    /**
     * True when runHead() materializes scores/probs — the probe
     * accessors lastScores()/lastAttention() are a capability of the
     * backend, not of the layer: only capturing backends feed them
     * (and trigger the hook's observeScores()).
     */
    virtual bool capturesScores() const = 0;

    virtual AttnHeadResult runHead(const AttnHeadProblem &p) const = 0;
};

/** The singleton backend instance for @p kind. */
const AttentionBackend &attentionBackend(AttnBackendKind kind);

} // namespace dota
