/**
 * @file
 * Implementation of the fully-connected layer.
 */
#include "nn/linear.hpp"

namespace dota {

LinearLayer::LinearLayer(const std::string &name, size_t in, size_t out,
                         Rng &rng, bool bias)
    : w_(name + ".w", Matrix::xavier(in, out, rng)),
      b_(name + ".b", Matrix(1, out)), has_bias_(bias)
{}

Matrix
LinearLayer::forward(const Matrix &x)
{
    cached_x_ = x;
    Matrix y = matmul(x, w_.value);
    if (has_bias_)
        y = addRowBroadcast(y, b_.value);
    return y;
}

Matrix
LinearLayer::backward(const Matrix &dy)
{
    DOTA_ASSERT(!cached_x_.empty(), "backward before forward");
    // dW += x^T dy
    Matrix dw = matmulAT(cached_x_, dy);
    for (size_t i = 0; i < dw.size(); ++i)
        w_.grad.data()[i] += dw.data()[i];
    if (has_bias_) {
        for (size_t i = 0; i < dy.rows(); ++i)
            for (size_t j = 0; j < dy.cols(); ++j)
                b_.grad(0, j) += dy(i, j);
    }
    // dx = dy W^T
    return matmulBT(dy, w_.value);
}

void
LinearLayer::collectParams(std::vector<Parameter *> &out)
{
    out.push_back(&w_);
    if (has_bias_)
        out.push_back(&b_);
}

} // namespace dota
