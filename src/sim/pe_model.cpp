/**
 * @file
 * Implementation of the bit-exact PE model.
 */
#include "sim/pe_model.hpp"

#include "common/logging.hpp"

namespace dota {

int8_t
int2Multiply(int8_t a, int8_t b)
{
    DOTA_ASSERT(a >= -2 && a <= 1 && b >= -2 && b <= 1,
                "INT2 operands out of range: {} * {}", a, b);
    return static_cast<int8_t>(a * b); // in [-2, 4]: fits 4 bits
}

namespace {

/**
 * Split a signed @p bits-wide value into base-4 digits, least
 * significant first: lower digits unsigned in [0, 3], the top digit
 * signed in [-2, 1] (two's complement weighting).
 */
std::vector<int8_t>
toDigits(int32_t v, int bits)
{
    const int digits = bits / 2;
    // Two's-complement encode, then reinterpret digit-wise.
    const auto mask = static_cast<uint32_t>((int64_t{1} << bits) - 1);
    uint32_t enc = static_cast<uint32_t>(v) & mask;
    std::vector<int8_t> out(digits);
    for (int i = 0; i < digits; ++i) {
        out[i] = static_cast<int8_t>(enc & 0x3u);
        enc >>= 2;
    }
    // Top digit carries the sign weight (-2 for bit pattern 1x).
    if (out[digits - 1] >= 2)
        out[digits - 1] = static_cast<int8_t>(out[digits - 1] - 4);
    return out;
}

} // namespace

int64_t
composedMultiply(int32_t a, int32_t b, int bits, size_t *unit_ops)
{
    DOTA_ASSERT(bits == 4 || bits == 8 || bits == 16,
                "composed multiply supports 4/8/16 bits, got {}", bits);
    const int64_t lo = -(int64_t{1} << (bits - 1));
    const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
    DOTA_ASSERT(a >= lo && a <= hi && b >= lo && b <= hi,
                "operand out of {}-bit range", bits);

    const auto da = toDigits(a, bits);
    const auto db = toDigits(b, bits);
    int64_t acc = 0;
    size_t ops = 0;
    for (size_t i = 0; i < da.size(); ++i) {
        for (size_t j = 0; j < db.size(); ++j) {
            // One unit-cell product per digit pair, shifted into place
            // by the accumulate network (Figure 7c's <<4 / <<2 / <<0).
            const int32_t partial =
                static_cast<int32_t>(da[i]) * static_cast<int32_t>(db[j]);
            acc += static_cast<int64_t>(partial) << (2 * (i + j));
            ++ops;
        }
    }
    if (unit_ops)
        *unit_ops = ops;
    return acc;
}

size_t
MultiPrecisionPe::macsPerCycle() const
{
    return static_cast<size_t>(rmmuMacsPerPe(mode_));
}

void
MultiPrecisionPe::cycle(
    const std::vector<std::pair<int32_t, int32_t>> &pairs)
{
    const size_t capacity = macsPerCycle();
    DOTA_ASSERT(capacity > 0, "mode not executable on the PE");
    DOTA_ASSERT(pairs.size() <= capacity,
                "{} operand pairs exceed the mode's {} MACs/cycle",
                pairs.size(), capacity);
    const int bits = precisionBits(mode_);
    for (const auto &[a, b] : pairs) {
        if (bits == 2) {
            // Native unit-cell mode: one cell per MAC.
            psum_ += int2Multiply(static_cast<int8_t>(a),
                                  static_cast<int8_t>(b));
            unit_ops_ += 1;
        } else {
            size_t ops = 0;
            psum_ += composedMultiply(a, b, bits, &ops);
            unit_ops_ += ops;
        }
    }
    ++cycles_;
}

double
MultiPrecisionPe::utilization() const
{
    if (cycles_ == 0)
        return 0.0;
    // The PE owns (16/2)^2 = 64 INT2 unit cells; each cycle offers all
    // of them.
    const double offered = static_cast<double>(cycles_) * 64.0;
    return static_cast<double>(unit_ops_) / offered;
}

} // namespace dota
