/**
 * @file
 * Implementation of the scale-out fleet simulator.
 */
#include "sim/fleet.hpp"

#include <algorithm>

namespace dota {

FleetSimulator::FleetSimulator(FleetConfig cfg, const Benchmark &bench,
                               SimOptions opt)
    : cfg_(cfg), bench_(bench), opt_(opt),
      accel_(cfg.accelerator, cfg.energy)
{
    DOTA_ASSERT(cfg_.accelerators >= 1, "fleet needs at least one "
                                        "accelerator");
}

double
FleetSimulator::sequenceLatencyMs(size_t seq_len) const
{
    auto it = latency_cache_.find(seq_len);
    if (it != latency_cache_.end())
        return it->second;

    Benchmark b = bench_;
    b.paper_shape.seq_len = seq_len;
    const RunReport report = accel_.simulate(b, opt_);
    const double ms = report.timeMs();
    latency_cache_[seq_len] = ms;
    return ms;
}

FleetReport
FleetSimulator::run(const std::vector<size_t> &seq_lens) const
{
    FleetReport report;
    report.accel_busy_ms.assign(cfg_.accelerators, 0.0);
    if (seq_lens.empty())
        return report;

    // LPT list scheduling: longest service time first, each job to the
    // accelerator that frees up earliest.
    std::vector<double> service;
    service.reserve(seq_lens.size());
    for (size_t n : seq_lens)
        service.push_back(sequenceLatencyMs(n));
    std::vector<size_t> order(seq_lens.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&service](size_t a, size_t b) {
        return service[a] > service[b];
    });

    double latency_sum = 0.0;
    for (size_t idx : order) {
        const auto target = static_cast<size_t>(
            std::min_element(report.accel_busy_ms.begin(),
                             report.accel_busy_ms.end()) -
            report.accel_busy_ms.begin());
        report.accel_busy_ms[target] += service[idx];
        const double completion = report.accel_busy_ms[target];
        latency_sum += completion;
        report.latency.sample(completion);
        report.max_latency_ms =
            std::max(report.max_latency_ms, completion);
        report.total_work_ms += service[idx];
    }
    report.makespan_ms = *std::max_element(report.accel_busy_ms.begin(),
                                           report.accel_busy_ms.end());
    report.mean_latency_ms =
        latency_sum / static_cast<double>(seq_lens.size());
    report.utilization =
        report.total_work_ms /
        (report.makespan_ms * static_cast<double>(cfg_.accelerators));
    report.throughput_seq_s =
        static_cast<double>(seq_lens.size()) /
        (report.makespan_ms * 1e-3);
    return report;
}

} // namespace dota
