/**
 * @file
 * Implementation of the scale-out fleet simulator.
 */
#include "sim/fleet.hpp"

#include <algorithm>
#include <set>

#include "common/thread_pool.hpp"

namespace dota {

FleetSimulator::FleetSimulator(FleetConfig cfg, const Benchmark &bench,
                               SimOptions opt)
    : cfg_(cfg), bench_(bench), opt_(opt),
      accel_(cfg.accelerator, cfg.energy)
{
    DOTA_ASSERT(cfg_.accelerators >= 1, "fleet needs at least one "
                                        "accelerator");
}

double
FleetSimulator::sequenceLatencyMs(size_t seq_len) const
{
    {
        std::lock_guard<std::mutex> lk(cache_mu_);
        auto it = latency_cache_.find(seq_len);
        if (it != latency_cache_.end())
            return it->second;
    }
    Benchmark b = bench_;
    b.paper_shape.seq_len = seq_len;
    const double ms = accel_.simulate(b, opt_).timeMs();
    std::lock_guard<std::mutex> lk(cache_mu_);
    latency_cache_[seq_len] = ms;
    return ms;
}

void
FleetSimulator::warmLatencyCache(const std::vector<size_t> &seq_lens) const
{
    std::vector<size_t> missing;
    {
        const std::set<size_t> distinct(seq_lens.begin(), seq_lens.end());
        std::lock_guard<std::mutex> lk(cache_mu_);
        for (size_t n : distinct)
            if (!latency_cache_.count(n))
                missing.push_back(n);
    }
    if (missing.empty())
        return;
    // Each distinct length is an independent cycle-level simulation.
    std::vector<double> ms(missing.size());
    parallelFor(0, missing.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            Benchmark b = bench_;
            b.paper_shape.seq_len = missing[i];
            ms[i] = accel_.simulate(b, opt_).timeMs();
        }
    });
    std::lock_guard<std::mutex> lk(cache_mu_);
    for (size_t i = 0; i < missing.size(); ++i)
        latency_cache_[missing[i]] = ms[i];
}

FleetReport
FleetSimulator::run(const std::vector<size_t> &seq_lens) const
{
    FleetReport report;
    report.accel_busy_ms.assign(cfg_.accelerators, 0.0);
    if (seq_lens.empty())
        return report;

    warmLatencyCache(seq_lens);
    std::vector<double> service;
    service.reserve(seq_lens.size());
    for (size_t n : seq_lens)
        service.push_back(sequenceLatencyMs(n));

    // LPT list scheduling: longest service time first, each job to the
    // accelerator that frees up earliest.
    std::vector<size_t> order(seq_lens.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&service](size_t a, size_t b) {
        return service[a] > service[b];
    });

    // Phase 1 (serial): greedy earliest-available assignment. The running
    // busy totals drive every target choice, so this stays sequential.
    std::vector<std::vector<double>> assigned(cfg_.accelerators);
    std::vector<double> busy(cfg_.accelerators, 0.0);
    for (size_t idx : order) {
        const auto target = static_cast<size_t>(
            std::min_element(busy.begin(), busy.end()) - busy.begin());
        busy[target] += service[idx];
        assigned[target].push_back(service[idx]);
        report.total_work_ms += service[idx];
    }

    // Phase 2 (parallel): per-accelerator completion timelines — once
    // jobs are assigned each accelerator's prefix sums are independent.
    std::vector<std::vector<double>> completion(cfg_.accelerators);
    parallelFor(0, cfg_.accelerators, 1, [&](size_t lo, size_t hi) {
        for (size_t a = lo; a < hi; ++a) {
            completion[a].reserve(assigned[a].size());
            double t = 0.0;
            for (double svc : assigned[a]) {
                t += svc;
                completion[a].push_back(t);
            }
        }
    });

    // Phase 3 (serial, fixed accelerator order): merge the statistics.
    double latency_sum = 0.0;
    for (size_t a = 0; a < cfg_.accelerators; ++a) {
        report.accel_busy_ms[a] =
            completion[a].empty() ? 0.0 : completion[a].back();
        for (double done : completion[a]) {
            latency_sum += done;
            report.latency.sample(done);
            report.max_latency_ms = std::max(report.max_latency_ms, done);
        }
    }
    report.makespan_ms = *std::max_element(report.accel_busy_ms.begin(),
                                           report.accel_busy_ms.end());
    report.mean_latency_ms =
        latency_sum / static_cast<double>(seq_lens.size());
    report.utilization =
        report.total_work_ms /
        (report.makespan_ms * static_cast<double>(cfg_.accelerators));
    report.throughput_seq_s =
        static_cast<double>(seq_lens.size()) /
        (report.makespan_ms * 1e-3);
    return report;
}

} // namespace dota
