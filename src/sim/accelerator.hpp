/**
 * @file
 * Cycle-level (tile-granular) simulator of the DOTA accelerator
 * (Section 4, Figure 5/6).
 *
 * The simulator executes a transformer layer as the paper's three
 * sequential GEMM stages, with the detection pipeline inserted between
 * Linear Transformation and Multi-Head Attention:
 *
 *   Linear:    Q,K,V = X W (FX16, RMMU), plus output projection and the
 *              two FFN FC layers (all "Linear" in Figure 12c).
 *   Detection: X*P, (XP)W~Q / (XP)W~K at INT4, S~ = Q~K~^T at INT8,
 *              comparator thresholding, Scheduler reordering.
 *   Attention: sparse S = QK^T (FX16, Token-Parallel rounds from the
 *              Scheduler), MFU softmax (dequant -> exp/div -> requant),
 *              sparse A*V reusing the same schedule.
 *
 * Phase latency is max(compute cycles, SRAM-bandwidth cycles, DRAM
 * cycles); energies come from the EnergyModel. Decoder benchmarks run the
 * autoregressive GEMV path of Section 4.4.
 */
#pragma once

#include "sched/dataflow.hpp"
#include "sim/energy_model.hpp"
#include "sim/report.hpp"
#include "sim/rmmu.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/mask_synth.hpp"

namespace dota {

/** Operating modes of Section 5.3. */
enum class DotaMode { Full, Conservative, Aggressive };

/** "DOTA-F" / "DOTA-C" / "DOTA-A". */
std::string dotaModeName(DotaMode mode);

/** Retention ratio a benchmark uses in a mode (1.0 for Full). */
double modeRetention(const Benchmark &bench, DotaMode mode);

/** Simulation options. */
struct SimOptions
{
    DotaMode mode = DotaMode::Conservative;
    Dataflow dataflow = Dataflow::TokenParallelOoO;
    size_t token_parallelism = 4;
    double detector_sigma = 0.25; ///< k = floor(sigma * head_dim)
    int detector_bits = 4;        ///< INT4 detection (products at INT8)
    /**
     * Overlap the detection pipeline with the attention stage by
     * configuring a slice of RMMU rows to low precision while the rest
     * compute FX16 attention (the row-wise reconfiguration of
     * Section 4.2). Detection latency hides behind attention;
     * energy is unchanged.
     */
    bool overlap_detection = false;
    uint64_t mask_seed = 99;      ///< representative-mask generation
    /**
     * Numeric precision of the model datapath — the Linear and
     * Attention GEMMs and their operand/KV/weight traffic. FX16 is the
     * paper's baseline; INT8 models the quantized inference path of
     * DESIGN.md §16 (4x MACs/PE on the RMMU sub-multipliers, 1-byte
     * operands, 0.27 pJ/MAC vs 1.00). Detection precision is separate
     * (detector_bits). FP32 has no RMMU mapping (rmmuMacsPerPe() == 0)
     * and is treated as FX16 — the accelerator's native float format.
     */
    Precision datapath = Precision::FX16;
};

/** The DOTA accelerator simulator. */
class DotaAccelerator
{
  public:
    explicit DotaAccelerator(HwConfig hw = HwConfig::dota(),
                             EnergyModel em = EnergyModel::tsmc22());

    /**
     * Simulate a full benchmark (encoder stack or decoder generation).
     * The attention graph statistics come from a representative
     * synthesized mask with the benchmark's structural profile
     * (DESIGN.md §2); pass your own via simulateWithMask for masks
     * harvested from trained models.
     */
    RunReport simulate(const Benchmark &bench,
                       const SimOptions &opt) const;

    /** Simulate with an explicit per-head-representative mask. */
    RunReport simulateWithMask(const Benchmark &bench,
                               const SimOptions &opt,
                               const SparseMask &mask) const;

    /**
     * Simulate autoregressive *generation* of a causal benchmark: the
     * strict-token-dependency GEMV path of Section 4.4, with the K/V
     * cache in DRAM and detection filtering the fetched vectors.
     * (simulate() evaluates causal benchmarks as single-pass scoring.)
     */
    RunReport simulateGeneration(const Benchmark &bench,
                                 const SimOptions &opt) const;

    /** One encoder layer; exposed for unit tests and ablations. */
    LayerReport encoderLayer(const ModelShape &shape,
                             const SimOptions &opt, double retention,
                             const DataflowStats &dataflow) const;

    /** One decoder layer over the full generation loop (Section 4.4). */
    LayerReport decoderLayer(const ModelShape &shape,
                             const SimOptions &opt,
                             double retention) const;

    const HwConfig &hw() const { return hw_; }
    const EnergyModel &energyModel() const { return em_; }

  private:
    PhaseCost linearPhase(const ModelShape &shape,
                          const SimOptions &opt) const;
    PhaseCost detectionPhase(const ModelShape &shape,
                             const SimOptions &opt,
                             const DataflowStats &dataflow) const;
    PhaseCost attentionPhase(const ModelShape &shape,
                             const SimOptions &opt, double retention,
                             const DataflowStats &dataflow) const;

    /** Apply memory-boundedness: cycles = max(compute, sram, dram). */
    void finalizePhase(PhaseCost &phase, uint64_t compute_cycles) const;

    /** Per-lane share of a quantity split across lanes. */
    uint64_t perLane(uint64_t total) const;

    HwConfig hw_;
    EnergyModel em_;
    Rmmu rmmu_; ///< one lane's RMMU
};

} // namespace dota
