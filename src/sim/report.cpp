/**
 * @file
 * Implementation of the report arithmetic.
 */
#include "sim/report.hpp"

namespace dota {

PhaseCost &
PhaseCost::operator+=(const PhaseCost &o)
{
    cycles += o.cycles;
    macs += o.macs;
    sram_bytes += o.sram_bytes;
    dram_bytes += o.dram_bytes;
    energy_pj += o.energy_pj;
    return *this;
}

uint64_t
LayerReport::totalCycles() const
{
    return linear.cycles + detection.cycles + attention.cycles;
}

double
LayerReport::totalEnergyPj() const
{
    return linear.energy_pj + detection.energy_pj + attention.energy_pj;
}

uint64_t
RunReport::totalCycles() const
{
    return per_layer.totalCycles() * layers;
}

double
RunReport::timeMs() const
{
    return static_cast<double>(totalCycles()) / (freq_ghz * 1e6);
}

double
RunReport::attentionTimeMs() const
{
    return static_cast<double>(
               (per_layer.attention.cycles + per_layer.detection.cycles) *
               layers) /
           (freq_ghz * 1e6);
}

double
RunReport::detectionTimeMs() const
{
    return static_cast<double>(per_layer.detection.cycles * layers) /
           (freq_ghz * 1e6);
}

double
RunReport::linearTimeMs() const
{
    return static_cast<double>(per_layer.linear.cycles * layers) /
           (freq_ghz * 1e6);
}

double
RunReport::totalEnergyJ() const
{
    return per_layer.totalEnergyPj() * static_cast<double>(layers) * 1e-12 +
           leakage_j;
}

uint64_t
RunReport::totalDramBytes() const
{
    return (per_layer.linear.dram_bytes + per_layer.detection.dram_bytes +
            per_layer.attention.dram_bytes) *
           layers;
}

uint64_t
RunReport::totalSramBytes() const
{
    return (per_layer.linear.sram_bytes + per_layer.detection.sram_bytes +
            per_layer.attention.sram_bytes) *
           layers;
}

} // namespace dota
