/**
 * @file
 * Scale-out (sequence-level parallel) simulation — Section 4.1:
 * "Different input sequences share the same weights while requiring
 * duplicated hardware resources to be processed in parallel. Therefore,
 * we can scale-out multiple DOTA accelerators to improve sequence-level
 * parallelism."
 *
 * The FleetSimulator dispatches a batch of variable-length sequences
 * onto N accelerators with greedy earliest-available scheduling and
 * reports makespan, latency distribution and per-accelerator
 * utilization. Per-length single-sequence latencies come from the
 * cycle-level DotaAccelerator model (cached per distinct length).
 *
 * run() itself is parallel (common/thread_pool.hpp, DOTA_THREADS): the
 * per-length latency evaluations and the per-accelerator completion
 * timelines are computed concurrently, while job-to-accelerator
 * assignment and the final statistics merge stay serial in a fixed
 * order, so a dispatch is bit-identical at every thread count.
 */
#pragma once

#include <map>
#include <mutex>

#include "common/stats.hpp"
#include "sim/accelerator.hpp"

namespace dota {

/** Fleet configuration. */
struct FleetConfig
{
    size_t accelerators = 4;
    HwConfig accelerator = HwConfig::dota();
    EnergyModel energy = EnergyModel::tsmc22();
};

/** Outcome of one batch dispatch. */
struct FleetReport
{
    double makespan_ms = 0.0;      ///< time until the last job finishes
    double total_work_ms = 0.0;    ///< sum of job service times
    double mean_latency_ms = 0.0;  ///< mean completion time
    double max_latency_ms = 0.0;
    double utilization = 0.0;      ///< total_work / (N * makespan)
    double throughput_seq_s = 0.0; ///< jobs / makespan
    std::vector<double> accel_busy_ms; ///< per-accelerator busy time
    Distribution latency;          ///< completion-time distribution
};

/** Batch simulator over identical-model, variable-length sequences. */
class FleetSimulator
{
  public:
    /**
     * @param cfg    fleet size and per-accelerator hardware
     * @param bench  model/benchmark every sequence runs
     * @param opt    DOTA simulation options (mode, dataflow, ...)
     */
    FleetSimulator(FleetConfig cfg, const Benchmark &bench,
                   SimOptions opt);

    /**
     * Single-sequence service time for a sequence of @p seq_len tokens
     * (cached per distinct length; thread-safe).
     */
    double sequenceLatencyMs(size_t seq_len) const;

    /**
     * Evaluate (in parallel) and cache the service time of every
     * distinct length in @p seq_lens. run() calls this first; exposed so
     * callers can pre-warm the cache explicitly.
     */
    void warmLatencyCache(const std::vector<size_t> &seq_lens) const;

    /**
     * Dispatch @p seq_lens greedily: longest job first onto the
     * earliest-available accelerator (LPT list scheduling).
     */
    FleetReport run(const std::vector<size_t> &seq_lens) const;

    const FleetConfig &config() const { return cfg_; }

  private:
    FleetConfig cfg_;
    Benchmark bench_;
    SimOptions opt_;
    DotaAccelerator accel_;
    mutable std::mutex cache_mu_;
    mutable std::map<size_t, double> latency_cache_;
};

} // namespace dota
