/**
 * @file
 * Energy, power, and area model of the DOTA accelerator.
 *
 * Per-operation energies are anchored to 22nm/1GHz literature values
 * (Horowitz ISSCC'14 scaled from 45nm, plus the CACTI-style SRAM numbers
 * the paper used) and chosen so module-level power at full utilization
 * reproduces Table 2. The multi-precision MAC energies follow the
 * composable-multiplier structure of Figure 7: an INT2 sub-multiplier is
 * the unit cell, an FX16 MAC spends ~the energy of the 64 cells plus the
 * shift/accumulate network.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/hw_config.hpp"
#include "tensor/quant.hpp"

namespace dota {

/** Per-op/access energies in picojoules, plus leakage in watts. */
struct EnergyModel
{
    // Datapath (per MAC).
    double mac_fx16_pj = 1.00;
    double mac_int8_pj = 0.27;
    double mac_int4_pj = 0.08;
    double mac_int2_pj = 0.025;

    // Memory (per byte).
    double sram_read_pj = 0.12;
    double sram_write_pj = 0.15;
    double dram_pj = 20.0;

    // Multi-Function Unit (per element).
    double mfu_exp_pj = 4.0;
    double mfu_div_pj = 3.0;
    double quant_pj = 0.4;   ///< (de)quantize one element

    // Detector / Scheduler.
    double comparator_pj = 0.05;        ///< threshold compare per score
    double scheduler_issue_pj = 0.30;   ///< per issued ID at T = 4
    double accumulator_pj = 0.15;       ///< per accumulation

    // Leakage (whole accelerator, watts).
    double leakage_w = 0.020; ///< logic + SRAM leakage (Table 2: SRAM
                              ///< leakage alone is 0.51 mW)

    /** MAC energy for a precision. */
    double macPj(Precision p) const;

    /**
     * Scheduler energy per issued ID at token parallelism @p t. The ID
     * buffer count grows as 2^t - 1 and each issue searches/updates the
     * buffers, so per-issue energy scales with the buffer count
     * (normalized so t = 4 gives scheduler_issue_pj — Figure 15).
     */
    double schedulerIssuePj(size_t t) const;

    /** Default 22nm model. */
    static EnergyModel tsmc22();
};

/** One row of the Table 2 reproduction. */
struct ModuleBudget
{
    std::string module;
    std::string configuration;
    double power_mw = 0.0;
    double area_mm2 = 0.0;
};

/**
 * The accelerator's power/area budget table (reproduces Table 2): module
 * powers at full utilization from the energy model, areas from the 22nm
 * density assumptions documented in DESIGN.md.
 */
std::vector<ModuleBudget> powerAreaBudget(const HwConfig &hw,
                                          const EnergyModel &em);

} // namespace dota
