/**
 * @file
 * Hardware configuration of the DOTA accelerator (Table 2).
 *
 * One DOTA accelerator = 4 compute Lanes + a standalone Accumulator,
 * clocked at 1 GHz in 22nm. Each Lane holds a 32x16 multi-precision PE
 * array (the RMMU), a Detector unit with the Scheduler, a Multi-Function
 * Unit (16 Exp, 16 Div, 16x16 adder tree) and a 640 KB banked SRAM
 * (10 x 64 KB). Peak throughput is 2 TOPS (counting one MAC as one op);
 * the GPU comparison scales the fabric to 12 TOPS as in Section 5.1.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace dota {

/** Geometry of the Reconfigurable Matrix Multiplication Unit. */
struct RmmuConfig
{
    size_t pe_rows = 32;
    size_t pe_cols = 16;

    size_t pes() const { return pe_rows * pe_cols; }
};

/** One compute Lane (Figure 6). */
struct LaneConfig
{
    RmmuConfig rmmu;
    size_t token_parallelism = 4; ///< queries processed in parallel
    size_t sram_banks = 10;
    size_t sram_bank_kb = 64;
    size_t sram_bank_bytes_per_cycle = 32; ///< 256-bit bank ports
    size_t mfu_exp_units = 16;
    size_t mfu_div_units = 16;
    size_t mfu_adder_tree = 256; ///< 16x16 adder tree inputs

    size_t sramBytes() const { return sram_banks * sram_bank_kb * 1024; }
};

/** Whole-accelerator configuration. */
struct HwConfig
{
    size_t lanes = 4;
    double freq_ghz = 1.0;
    LaneConfig lane;
    size_t accumulator_width = 512; ///< accumulations per cycle

    /** Off-chip memory. */
    double dram_gb_per_s = 64.0;

    /** Table 2 configuration (one accelerator, 2 TOPS). */
    static HwConfig dota();

    /**
     * Fabric scaled to ~12 TOPS (6 accelerators / 24 lanes) for the
     * V100 comparison of Section 5.1, with proportionally more DRAM
     * bandwidth (HBM-class part).
     */
    static HwConfig dotaScaledForGpu();

    /** FX16 MACs per cycle across the whole fabric. */
    uint64_t
    fabricMacsPerCycle() const
    {
        return static_cast<uint64_t>(lanes) * lane.rmmu.pes();
    }

    /** Peak TOPS at FX16 (1 MAC = 1 op). */
    double
    peakTops() const
    {
        return static_cast<double>(fabricMacsPerCycle()) * freq_ghz / 1e3;
    }

    /** Cycle time in nanoseconds. */
    double cycleNs() const { return 1.0 / freq_ghz; }

    /** DRAM bytes deliverable per cycle. */
    double
    dramBytesPerCycle() const
    {
        return dram_gb_per_s / freq_ghz; // GB/s / (Gcycle/s) = B/cycle
    }

    /** Total on-chip SRAM bytes. */
    size_t sramBytes() const { return lanes * lane.sramBytes(); }
};

} // namespace dota
