/**
 * @file
 * Implementation of the energy/power/area model.
 */
#include "sim/energy_model.hpp"

#include "common/logging.hpp"

namespace dota {

double
EnergyModel::macPj(Precision p) const
{
    switch (p) {
      case Precision::FX16:
        return mac_fx16_pj;
      case Precision::INT8:
        return mac_int8_pj;
      case Precision::INT4:
        return mac_int4_pj;
      case Precision::INT2:
        return mac_int2_pj;
      case Precision::FP32:
        DOTA_PANIC("FP32 MACs do not execute on the RMMU");
    }
    DOTA_PANIC("unknown precision");
}

double
EnergyModel::schedulerIssuePj(size_t t) const
{
    // 2^t - 1 ID buffers are searched/updated per issue; normalize so
    // the configured per-issue energy is the T = 4 value.
    const double buffers =
        static_cast<double>((uint64_t{1} << t) - 1);
    return scheduler_issue_pj * buffers / 15.0;
}

EnergyModel
EnergyModel::tsmc22()
{
    EnergyModel em;
    // Chosen so module power at full utilization reproduces Table 2:
    //   RMMU: 512 PEs * 1 GHz * 1.26 pJ = 645 mW      (Table 2: 645.98)
    //   MFU: 16 exp * 2.4 + 16 div * 1.2 + 256 * 0.02 (Table 2: 60.73)
    //   Accumulator: 512 * 0.27 pJ                    (Table 2: 139.21)
    em.mac_fx16_pj = 1.26;
    em.mac_int8_pj = 0.34;
    em.mac_int4_pj = 0.10;
    em.mac_int2_pj = 0.03;
    em.mfu_exp_pj = 2.4;
    em.mfu_div_pj = 1.2;
    em.quant_pj = 0.4;
    em.comparator_pj = 0.003;
    // Each issue searches/updates the 15 ID buffers at T = 4; a few
    // SRAM-word touches => ~3 pJ. This makes the Figure 15 total-cost
    // minimum land at T = 4 and the Filter row match Table 2.
    em.scheduler_issue_pj = 3.0;
    em.accumulator_pj = 0.27;
    em.sram_read_pj = 0.12;
    em.sram_write_pj = 0.15;
    em.dram_pj = 20.0;
    em.leakage_w = 0.020;
    return em;
}

std::vector<ModuleBudget>
powerAreaBudget(const HwConfig &hw, const EnergyModel &em)
{
    const double ghz = hw.freq_ghz;
    const auto pes = static_cast<double>(hw.lane.rmmu.pes());

    // Per-lane module powers (mW) at full utilization.
    const double rmmu_mw = pes * em.mac_fx16_pj * ghz;
    const double mfu_mw =
        (static_cast<double>(hw.lane.mfu_exp_units) * em.mfu_exp_pj +
         static_cast<double>(hw.lane.mfu_div_units) * em.mfu_div_pj +
         static_cast<double>(hw.lane.mfu_adder_tree) * 0.02) *
        ghz;
    // Detector/Filter: estimated scores stream through the comparator at
    // the INT8 RMMU rate (4 per PE per cycle); the Scheduler FSM issues
    // one ID per cycle.
    const double filter_mw =
        (4.0 * pes * em.comparator_pj + em.scheduler_issue_pj) * ghz;
    const double accum_mw =
        static_cast<double>(hw.accumulator_width) * em.accumulator_pj *
        ghz;

    // Areas (mm^2, 22nm): densities fitted to Table 2.
    const double rmmu_area = pes * 0.00119;
    const double filter_area = 0.003;
    const double mfu_area = 0.060;
    const double accum_area = 0.045;
    const double sram_area =
        static_cast<double>(hw.sramBytes()) / (1024.0 * 1024.0) * 0.676;

    const auto lanes = static_cast<double>(hw.lanes);
    const double lane_mw = rmmu_mw + filter_mw + mfu_mw;
    const double lane_area = rmmu_area + filter_area + mfu_area;

    std::vector<ModuleBudget> rows;
    rows.push_back({"Lane (all)",
                    format("{} Lanes per accelerator", hw.lanes),
                    lanes * lane_mw, lanes * lane_area});
    rows.push_back({"Lane.RMMU",
                    format("{}*{} FX-16", hw.lane.rmmu.pe_rows,
                           hw.lane.rmmu.pe_cols),
                    rmmu_mw, rmmu_area});
    rows.push_back({"Lane.Filter",
                    format("Token Paral. = {}",
                           hw.lane.token_parallelism),
                    filter_mw, filter_area});
    rows.push_back({"Lane.MFU",
                    format("{} Exp, {} Div, 16*16 Adder Tree",
                           hw.lane.mfu_exp_units, hw.lane.mfu_div_units),
                    mfu_mw, mfu_area});
    rows.push_back({"Accumulator",
                    format("{} accu/cycle", hw.accumulator_width),
                    accum_mw, accum_area});
    rows.push_back({"DOTA (w/o SRAM)",
                    format("{}TOPS", hw.peakTops()),
                    lanes * lane_mw + accum_mw,
                    lanes * lane_area + accum_area});
    rows.push_back({"SRAM",
                    format("{}MB", static_cast<double>(hw.sramBytes()) /
                                       (1024.0 * 1024.0)),
                    0.51 /* leakage, CACTI-style */, sram_area});
    return rows;
}

} // namespace dota
