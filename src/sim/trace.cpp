/**
 * @file
 * Implementation of the attention-group tracer.
 */
#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <map>

#include "common/logging.hpp"

namespace dota {

GroupTrace
traceAttentionGroup(const GroupSchedule &schedule, const LaneConfig &lane,
                    size_t head_dim)
{
    GroupTrace trace;
    const uint64_t fetch_lat = std::max<uint64_t>(
        1, (head_dim * 2 + lane.sram_bank_bytes_per_cycle - 1) /
               lane.sram_bank_bytes_per_cycle);
    // One PE row (pe_cols MACs) per served query per issue.
    const uint64_t dot_lat = std::max<uint64_t>(
        1, (head_dim + lane.rmmu.pe_cols - 1) / lane.rmmu.pe_cols);

    uint64_t round_start = 0;      ///< when the current round may compute
    uint64_t prev_fetch_done = 0;  ///< double buffering horizon
    for (size_t ri = 0; ri < schedule.rounds.size(); ++ri) {
        const Round &round = schedule.rounds[ri];

        // Fetch phase: issues hitting the same bank serialize.
        std::map<size_t, uint64_t> bank_free; // bank -> next free cycle
        uint64_t fetch_done = prev_fetch_done;
        uint64_t serial_penalty = 0;
        for (const Issue &is : round.issues) {
            const size_t bank = is.key % lane.sram_banks;
            uint64_t start = std::max(prev_fetch_done, bank_free[bank]);
            if (bank_free.count(bank) && bank_free[bank] > prev_fetch_done)
                serial_penalty += fetch_lat;
            const uint64_t end = start + fetch_lat;
            bank_free[bank] = end;
            fetch_done = std::max(fetch_done, end);
            trace.events.push_back({start, end,
                                    format("sram.bank{}", bank),
                                    format("fetch k{}", is.key)});
        }

        // Compute phase: starts when both the fetches and the previous
        // round's compute are done; all served queries proceed in
        // parallel on their own PE rows.
        const uint64_t compute_start = std::max(fetch_done, round_start);
        const uint64_t compute_end = compute_start + dot_lat;
        for (const Issue &is : round.issues) {
            for (size_t q = 0; q < schedule.parallelism; ++q) {
                if (is.query_mask & (1u << q))
                    trace.events.push_back(
                        {compute_start, compute_end,
                         format("pe.row{}", q),
                         format("dot q{}*k{}", schedule.base + q,
                                is.key)});
            }
        }

        trace.fetch_cycles += fetch_done - prev_fetch_done;
        trace.compute_cycles += dot_lat;
        trace.bank_conflict_cycles += serial_penalty;
        prev_fetch_done = fetch_done;
        round_start = compute_end;
    }
    trace.total_cycles = round_start;
    return trace;
}

void
GroupTrace::print(std::ostream &os, size_t max_events) const
{
    os << "cycle     unit           op\n";
    size_t shown = 0;
    for (const TraceEvent &e : events) {
        if (shown++ >= max_events) {
            os << "... (" << events.size() - max_events
               << " more events)\n";
            break;
        }
        os << std::left << std::setw(4) << e.start << "-"
           << std::setw(5) << e.end << std::setw(15) << e.unit << e.what
           << "\n";
    }
    os << "total " << total_cycles << " cycles (fetch " << fetch_cycles
       << ", compute " << compute_cycles << ", bank-conflict stalls "
       << bank_conflict_cycles << ")\n";
}

} // namespace dota
