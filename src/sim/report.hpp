/**
 * @file
 * Performance/energy reports produced by the simulators.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dota {

/** Cost of one pipeline phase of one layer. */
struct PhaseCost
{
    std::string name;
    uint64_t cycles = 0;
    uint64_t macs = 0;        ///< real MACs retired
    uint64_t sram_bytes = 0;  ///< on-chip traffic
    uint64_t dram_bytes = 0;  ///< off-chip traffic
    double energy_pj = 0.0;   ///< dynamic energy

    PhaseCost &operator+=(const PhaseCost &o);
};

/** Costs of one transformer layer, split as in Figure 12(c). */
struct LayerReport
{
    PhaseCost linear;    ///< QKV + output projection + FFN FCs
    PhaseCost detection; ///< low-rank estimate + comparator + scheduler
    PhaseCost attention; ///< sparse S = QK^T, softmax, A*V

    uint64_t totalCycles() const;
    double totalEnergyPj() const;
};

/** Full-model simulation outcome. */
struct RunReport
{
    std::string device;        ///< "DOTA-C", "GPU", "ELSA", ...
    std::string benchmark;
    /**
     * Datapath precision the run was modelled at ("FX16" / "INT8");
     * empty for devices without the knob (GPU, ELSA).
     */
    std::string datapath;
    double freq_ghz = 1.0;
    LayerReport per_layer;     ///< one layer (all layers identical)
    size_t layers = 0;

    uint64_t totalCycles() const;
    double timeMs() const;
    double attentionTimeMs() const;  ///< detection + attention phases
    double detectionTimeMs() const;
    double linearTimeMs() const;
    double totalEnergyJ() const;     ///< dynamic + leakage
    double leakage_j = 0.0;

    uint64_t totalDramBytes() const;
    uint64_t totalSramBytes() const;
};

} // namespace dota
