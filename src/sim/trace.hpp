/**
 * @file
 * Cycle-annotated execution trace of one Token-Parallel attention group
 * on a compute Lane — the microscope view of the dataflow in Figures
 * 6/9/10: per round, which key vectors are fetched from which SRAM
 * banks (with bank-conflict serialization), and when the PE rows
 * consume them.
 *
 * The trace is illustrative (the top-level performance model is
 * tile-granular), but it is cycle-consistent: its total latency uses the
 * same bank width and PE geometry as the LayerReport model, and the test
 * suite checks the two agree on aggregate throughput.
 */
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "sim/hw_config.hpp"

namespace dota {

/** One traced micro-operation. */
struct TraceEvent
{
    uint64_t start = 0;   ///< first cycle (inclusive)
    uint64_t end = 0;     ///< last cycle (exclusive)
    std::string unit;     ///< "sram.bank3", "pe.row0", ...
    std::string what;     ///< "fetch k17", "dot q2*k17", ...
};

/** Trace of one scheduled group. */
struct GroupTrace
{
    std::vector<TraceEvent> events;
    uint64_t total_cycles = 0;
    uint64_t fetch_cycles = 0;         ///< cycles spent fetching
    uint64_t compute_cycles = 0;       ///< cycles spent in the PEs
    uint64_t bank_conflict_cycles = 0; ///< serialization from conflicts

    /** Render a gantt-style text view. */
    void print(std::ostream &os, size_t max_events = 64) const;
};

/**
 * Trace the execution of @p schedule on one Lane: key fetches map to
 * banks by (key mod banks); fetches within a round serialize per bank;
 * each issue's dot products run on one PE row per served query with the
 * next round's fetches overlapped (double buffering).
 *
 * @param schedule  output of a Scheduler for one group
 * @param lane      lane geometry (banks, bank width, PE array)
 * @param head_dim  key/query vector length
 */
GroupTrace traceAttentionGroup(const GroupSchedule &schedule,
                               const LaneConfig &lane, size_t head_dim);

} // namespace dota
