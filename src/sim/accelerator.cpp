/**
 * @file
 * Implementation of the DOTA accelerator simulator.
 */
#include "sim/accelerator.hpp"

#include <algorithm>
#include <cmath>

namespace dota {

namespace {

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Operand precision of the detection GEMMs for a configured bit width. */
Precision
detectOperandPrecision(int bits)
{
    switch (bits) {
      case 2:
        return Precision::INT2;
      case 4:
        return Precision::INT4;
      case 8:
        return Precision::INT8;
      default:
        DOTA_FATAL("detector bits must be 2, 4, or 8 (got {})", bits);
    }
}

/** The S~ GEMM runs at twice the operand width (Section 5.5). */
Precision
detectScorePrecision(int bits)
{
    switch (bits) {
      case 2:
        return Precision::INT4;
      case 4:
        return Precision::INT8;
      case 8:
        return Precision::FX16;
      default:
        DOTA_FATAL("detector bits must be 2, 4, or 8 (got {})", bits);
    }
}

/**
 * RMMU-executable datapath precision: INT8 runs on the PE
 * sub-multipliers; everything else (FX16, and FP32 which has no RMMU
 * mapping) runs as FX16, the array's native float format.
 */
Precision
datapathPrecision(const SimOptions &opt)
{
    return opt.datapath == Precision::INT8 ? Precision::INT8
                                           : Precision::FX16;
}

/** Bytes per datapath element (2 at FX16, 1 at INT8). */
uint64_t
datapathBytes(const SimOptions &opt)
{
    return static_cast<uint64_t>(precisionBits(datapathPrecision(opt))) /
           8;
}

/** SRAM bytes a lane can move per cycle. */
double
laneSramBytesPerCycle(const HwConfig &hw)
{
    return static_cast<double>(hw.lane.sram_banks) *
           static_cast<double>(hw.lane.sram_bank_bytes_per_cycle);
}

} // namespace

std::string
dotaModeName(DotaMode mode)
{
    switch (mode) {
      case DotaMode::Full:
        return "DOTA-F";
      case DotaMode::Conservative:
        return "DOTA-C";
      case DotaMode::Aggressive:
        return "DOTA-A";
    }
    DOTA_PANIC("unknown mode");
}

double
modeRetention(const Benchmark &bench, DotaMode mode)
{
    switch (mode) {
      case DotaMode::Full:
        return 1.0;
      case DotaMode::Conservative:
        return bench.retention_conservative;
      case DotaMode::Aggressive:
        return bench.retention_aggressive;
    }
    DOTA_PANIC("unknown mode");
}

DotaAccelerator::DotaAccelerator(HwConfig hw, EnergyModel em)
    : hw_(hw), em_(em), rmmu_(hw.lane.rmmu, &em_)
{}

uint64_t
DotaAccelerator::perLane(uint64_t total) const
{
    return ceilDiv(total, hw_.lanes);
}

void
DotaAccelerator::finalizePhase(PhaseCost &phase,
                               uint64_t compute_cycles) const
{
    const double sram_cycles =
        static_cast<double>(phase.sram_bytes) /
        (laneSramBytesPerCycle(hw_) * static_cast<double>(hw_.lanes));
    const double dram_cycles =
        static_cast<double>(phase.dram_bytes) / hw_.dramBytesPerCycle();
    phase.cycles = std::max<uint64_t>(
        compute_cycles,
        static_cast<uint64_t>(std::max(sram_cycles, dram_cycles)));
}

PhaseCost
DotaAccelerator::linearPhase(const ModelShape &shape,
                             const SimOptions &opt) const
{
    const uint64_t n = shape.seq_len, d = shape.dim, ffn = shape.ffn_dim;
    const Precision prec = datapathPrecision(opt);
    const uint64_t eb = datapathBytes(opt);
    PhaseCost phase;
    phase.name = "linear";

    struct Gemm { uint64_t m, k, nout; };
    const Gemm gemms[] = {
        {n, d, 3 * d}, // QKV projection
        {n, d, d},     // attention output projection
        {n, d, ffn},   // FC1
        {n, ffn, d},   // FC2
    };

    uint64_t compute = 0;
    for (const Gemm &g : gemms) {
        compute += rmmu_.gemmCycles(g.m, g.k, perLane(g.nout), prec);
        phase.macs += g.m * g.k * g.nout;
        // Operand traffic with output-stationary tiling: A re-read per
        // column tile, B re-read per row tile, C written once.
        const uint64_t col_tiles =
            ceilDiv(perLane(g.nout), hw_.lane.rmmu.pe_cols);
        const uint64_t row_tiles = ceilDiv(g.m, hw_.lane.rmmu.pe_rows);
        phase.sram_bytes += eb * (g.m * g.k * col_tiles * hw_.lanes +
                                  g.k * g.nout * row_tiles) +
                            eb * g.m * g.nout;
    }

    // Weights stream from DRAM once per layer (they exceed on-chip SRAM
    // for every evaluated model).
    phase.dram_bytes = eb * (4 * d * d + 2 * d * ffn);

    // Cross-lane partial-sum accumulation (Figure 5b).
    const uint64_t accums = n * (2 * d + ffn);
    compute += ceilDiv(accums, hw_.accumulator_width);

    // INT8 requantizes every GEMM output back to the activation grid in
    // the MFU (DESIGN.md §16's inter-layer requantization points).
    const uint64_t requants =
        prec == Precision::INT8 ? n * (3 * d + d + ffn + d) : 0;

    phase.energy_pj =
        static_cast<double>(phase.macs) * em_.macPj(prec) +
        static_cast<double>(phase.sram_bytes) * em_.sram_read_pj +
        static_cast<double>(phase.dram_bytes) * em_.dram_pj +
        static_cast<double>(accums) * em_.accumulator_pj +
        static_cast<double>(requants) * em_.quant_pj;

    finalizePhase(phase, compute);
    return phase;
}

PhaseCost
DotaAccelerator::detectionPhase(const ModelShape &shape,
                                const SimOptions &opt,
                                const DataflowStats &dataflow) const
{
    const uint64_t n = shape.seq_len, d = shape.dim, h = shape.heads;
    const uint64_t dh = shape.headDim();
    const uint64_t k = std::max<uint64_t>(
        1, static_cast<uint64_t>(opt.detector_sigma *
                                 static_cast<double>(dh)));

    const Precision op_prec = detectOperandPrecision(opt.detector_bits);
    const Precision score_prec = detectScorePrecision(opt.detector_bits);

    PhaseCost phase;
    phase.name = "detection";

    // Work parallelizes across the whole fabric (heads map to lanes and,
    // when heads < lanes, query-row chunks split further): per-head
    // single-array cycles scaled by heads/lanes.
    // X*P (shared across heads), rows split across lanes.
    uint64_t compute = rmmu_.gemmCycles(perLane(n), d, k, op_prec);
    uint64_t macs_low = n * d * k;

    // Per-head low-rank transforms Q~ and K~.
    compute += ceilDiv(h * 2 * rmmu_.gemmCycles(n, k, k, op_prec),
                       hw_.lanes);
    macs_low += h * 2 * n * k * k;

    // Estimated scores S~ = Q~ K~^T at the doubled width.
    compute += ceilDiv(h * rmmu_.gemmCycles(n, k, n, score_prec),
                       hw_.lanes);
    const uint64_t macs_score = h * n * n * k;

    phase.macs = macs_low + macs_score;

    // Quantize X and requantize the Q~/K~ products in the MFU.
    const uint64_t quants = n * d + h * 2 * n * k;

    // Comparator scans every estimated score; Scheduler issues run ahead
    // of the attention phase (pipelined), so they cost energy here but
    // no additional latency.
    const uint64_t compares = h * n * n;
    const uint64_t issues = h * dataflow.key_loads;

    // S~ is written to and re-read from SRAM at 1 byte (INT8), plus the
    // low-rank operand traffic.
    phase.sram_bytes = 2 * h * n * n + 2 * (n * d + h * 2 * n * k);

    phase.energy_pj =
        static_cast<double>(macs_low) * em_.macPj(op_prec) +
        static_cast<double>(macs_score) * em_.macPj(score_prec) +
        static_cast<double>(quants) * em_.quant_pj +
        static_cast<double>(compares) * em_.comparator_pj +
        static_cast<double>(issues) *
            em_.schedulerIssuePj(opt.token_parallelism) +
        static_cast<double>(phase.sram_bytes) * em_.sram_read_pj;

    finalizePhase(phase, compute);
    return phase;
}

PhaseCost
DotaAccelerator::attentionPhase(const ModelShape &shape,
                                const SimOptions &opt, double retention,
                                const DataflowStats &dataflow) const
{
    const uint64_t n = shape.seq_len, h = shape.heads;
    const uint64_t dh = shape.headDim();
    const size_t t = opt.token_parallelism;
    const bool dense = retention >= 1.0;
    const Precision prec = datapathPrecision(opt);
    const uint64_t eb = datapathBytes(opt);

    PhaseCost phase;
    phase.name = "attention";

    uint64_t compute = 0;
    uint64_t connections; ///< per-head (query, key) pairs computed
    uint64_t key_loads;   ///< per-head key-vector loads
    if (dense) {
        connections = n * n;
        key_loads = ceilDiv(n, t) * n; // every group streams all keys
        compute += ceilDiv(
            h * (rmmu_.gemmCycles(n, dh, n, prec) +
                 rmmu_.gemmCycles(n, n, dh, prec)),
            hw_.lanes);
    } else {
        connections = dataflow.connections;
        key_loads = dataflow.key_loads;
        // S = QK^T then A*V reuse the same schedule (Section 4.3);
        // query groups distribute across lanes. INT8 shortens each
        // T-slot dot product by the PE micro-MAC factor (4x).
        compute += ceilDiv(
            h * 2 * rmmu_.sparseAttentionCycles(dataflow.rounds, t, dh),
            hw_.lanes * rmmuMacsPerPe(prec));
    }
    phase.macs = 2 * h * connections * dh;

    // Streaming tiled dataflow only (tile_flushes == 0 otherwise):
    // every contributing (group, tile) pair rescales the group's
    // d_h-wide accumulators in lock-step — one extra T-slot round per
    // flush, the FLASH-D recurrence that buys the tile-bounded score
    // buffer.
    if (dataflow.tile_flushes > 0) {
        compute += ceilDiv(
            h * rmmu_.sparseAttentionCycles(dataflow.tile_flushes, t, dh),
            hw_.lanes * rmmuMacsPerPe(prec));
        phase.macs += h * dataflow.tile_flushes * t * dh;
    }

    // MFU softmax: dequant -> exp -> sum -> div -> requant per kept score.
    const uint64_t sm_elems = h * connections;
    compute += ceilDiv(sm_elems,
                       hw_.lane.mfu_exp_units * hw_.lanes) +
               ceilDiv(sm_elems,
                       hw_.lane.mfu_div_units * hw_.lanes);

    // Key and value vector traffic at the datapath element width.
    const uint64_t kv_bytes = h * 2 * key_loads * dh * eb;
    phase.sram_bytes = kv_bytes + eb * n * shape.dim /* output write */ +
                       eb * sm_elems /* scores through MFU */;

    // When the K/V working set exceeds the SRAM budget, the layer runs
    // key-stationary: K and V stream from DRAM once per layer and every
    // scheduled load is then SRAM-served from the resident tile.
    const double kv_resident = static_cast<double>(
        n * dh * ceilDiv(h, hw_.lanes) * 2 * eb);
    const double budget = 0.7 * static_cast<double>(hw_.lane.sramBytes());
    if (kv_resident > budget)
        phase.dram_bytes = h * n * dh * 2 * eb;

    phase.energy_pj =
        static_cast<double>(phase.macs) * em_.macPj(prec) +
        static_cast<double>(sm_elems) *
            (em_.mfu_exp_pj + em_.mfu_div_pj + 2.0 * em_.quant_pj) +
        static_cast<double>(phase.sram_bytes) * em_.sram_read_pj +
        static_cast<double>(phase.dram_bytes) * em_.dram_pj;

    finalizePhase(phase, compute);
    return phase;
}

LayerReport
DotaAccelerator::encoderLayer(const ModelShape &shape,
                              const SimOptions &opt, double retention,
                              const DataflowStats &dataflow) const
{
    LayerReport report;
    report.linear = linearPhase(shape, opt);
    if (retention < 1.0)
        report.detection = detectionPhase(shape, opt, dataflow);
    else
        report.detection.name = "detection";
    report.attention = attentionPhase(shape, opt, retention, dataflow);

    if (opt.overlap_detection && report.detection.cycles > 0) {
        // Row-wise RMMU reconfiguration runs detection for the *next*
        // tile alongside the current attention tile: the slower of the
        // two sets the stage latency and detection contributes none of
        // its own (Section 4.2's motivation for reconfigurability).
        report.attention.cycles = std::max(report.attention.cycles,
                                           report.detection.cycles);
        report.detection.cycles = 0;
    }
    return report;
}

LayerReport
DotaAccelerator::decoderLayer(const ModelShape &shape,
                              const SimOptions &opt,
                              double retention) const
{
    const uint64_t n = shape.seq_len, d = shape.dim, h = shape.heads;
    const uint64_t ffn = shape.ffn_dim, dh = shape.headDim();
    const uint64_t k = std::max<uint64_t>(
        1, static_cast<uint64_t>(opt.detector_sigma *
                                 static_cast<double>(dh)));
    const bool dense = retention >= 1.0;
    const Precision prec = datapathPrecision(opt);
    const uint64_t eb = datapathBytes(opt);

    LayerReport report;
    report.linear.name = "linear";
    report.detection.name = "detection";
    report.attention.name = "attention";

    // Per-token GEMV compute is identical for every step.
    const uint64_t linear_cycles_tok =
        rmmu_.gemmCycles(1, d, perLane(3 * d), prec) +
        rmmu_.gemmCycles(1, d, perLane(d), prec) +
        rmmu_.gemmCycles(1, d, perLane(ffn), prec) +
        rmmu_.gemmCycles(1, ffn, perLane(d), prec);
    const uint64_t linear_macs_tok = 4 * d * d + 2 * d * ffn;
    const uint64_t weight_bytes_tok = eb * (4 * d * d + 2 * d * ffn);

    uint64_t linear_compute = n * linear_cycles_tok;
    report.linear.macs = n * linear_macs_tok;
    report.linear.dram_bytes = n * weight_bytes_tok; // streamed per token
    report.linear.sram_bytes = n * eb * (3 * d + d + ffn + d);
    report.linear.energy_pj =
        static_cast<double>(report.linear.macs) * em_.macPj(prec) +
        static_cast<double>(report.linear.dram_bytes) * em_.dram_pj +
        static_cast<double>(report.linear.sram_bytes) * em_.sram_read_pj;
    finalizePhase(report.linear, linear_compute);

    // Attention + detection over the generation loop.
    uint64_t det_compute = 0, att_compute = 0;
    uint64_t det_macs_i4 = 0, det_macs_i8 = 0;
    uint64_t kept_total = 0, visible_total = 0;
    const uint64_t h_lane = ceilDiv(h, hw_.lanes);
    for (uint64_t tok = 1; tok <= n; ++tok) {
        const uint64_t keep =
            dense ? tok
                  : std::max<uint64_t>(
                        1, static_cast<uint64_t>(std::llround(
                               retention * static_cast<double>(tok))));
        kept_total += keep;
        visible_total += tok;
        if (!dense) {
            // Project the new token, score it against the K~ cache.
            det_compute +=
                rmmu_.gemmCycles(1, d, k,
                                 detectOperandPrecision(
                                     opt.detector_bits)) +
                h_lane * 2 *
                    rmmu_.gemmCycles(1, k, k, detectOperandPrecision(
                                                  opt.detector_bits)) +
                h_lane * rmmu_.gemmCycles(1, k, tok,
                                          detectScorePrecision(
                                              opt.detector_bits));
            det_macs_i4 += d * k + h * 2 * k * k;
            det_macs_i8 += h * k * tok;
        }
        // Sparse GEMV against kept keys, then kept values.
        att_compute +=
            h_lane * 2 * rmmu_.gemmCycles(1, dh, keep, prec);
        att_compute += ceilDiv(h_lane * keep, hw_.lane.mfu_exp_units) +
                       ceilDiv(h_lane * keep, hw_.lane.mfu_div_units);
    }

    report.detection.macs = det_macs_i4 + det_macs_i8;
    report.detection.sram_bytes = h * visible_total * 1; // S~ bytes
    report.detection.energy_pj =
        static_cast<double>(det_macs_i4) *
            em_.macPj(detectOperandPrecision(opt.detector_bits)) +
        static_cast<double>(det_macs_i8) *
            em_.macPj(detectScorePrecision(opt.detector_bits)) +
        static_cast<double>(h * visible_total) * em_.comparator_pj +
        static_cast<double>(report.detection.sram_bytes) *
            em_.sram_read_pj;
    finalizePhase(report.detection, det_compute);

    report.attention.macs = 2 * h * kept_total * dh;
    // The K/V cache lives in DRAM at these lengths; only selected
    // vectors are fetched — the decoder's memory saving (Section 4.4).
    // An INT8 datapath halves the fetched bytes per kept vector.
    report.attention.dram_bytes = h * 2 * kept_total * dh * eb;
    report.attention.sram_bytes = h * 2 * kept_total * dh * eb;
    report.attention.energy_pj =
        static_cast<double>(report.attention.macs) * em_.macPj(prec) +
        static_cast<double>(h * kept_total) *
            (em_.mfu_exp_pj + em_.mfu_div_pj + 2.0 * em_.quant_pj) +
        static_cast<double>(report.attention.dram_bytes) * em_.dram_pj +
        static_cast<double>(report.attention.sram_bytes) *
            em_.sram_read_pj;
    finalizePhase(report.attention, att_compute);

    return report;
}

RunReport
DotaAccelerator::simulate(const Benchmark &bench,
                          const SimOptions &opt) const
{
    const double retention = modeRetention(bench, opt.mode);
    if (retention < 1.0) {
        Rng rng(opt.mask_seed);
        const SparseMask mask = synthesizeMask(
            bench.paper_shape.seq_len, profileFor(bench.id, retention),
            rng, bench.paper_shape.decoder /* causal */);
        return simulateWithMask(bench, opt, mask);
    }
    return simulateWithMask(bench, opt, SparseMask());
}

RunReport
DotaAccelerator::simulateGeneration(const Benchmark &bench,
                                    const SimOptions &opt) const
{
    DOTA_ASSERT(bench.paper_shape.decoder,
                "simulateGeneration needs a causal benchmark");
    const double retention = modeRetention(bench, opt.mode);
    RunReport report;
    report.device = dotaModeName(opt.mode) + " (generation)";
    report.benchmark = bench.name;
    report.datapath = precisionName(datapathPrecision(opt));
    report.freq_ghz = hw_.freq_ghz;
    report.layers = bench.paper_shape.layers;
    report.per_layer = decoderLayer(bench.paper_shape, opt, retention);
    const double scale = static_cast<double>(hw_.lanes) / 4.0;
    report.leakage_j = em_.leakage_w * scale * report.timeMs() * 1e-3;
    return report;
}

RunReport
DotaAccelerator::simulateWithMask(const Benchmark &bench,
                                  const SimOptions &opt,
                                  const SparseMask &mask) const
{
    const double retention = modeRetention(bench, opt.mode);
    const ModelShape &shape = bench.paper_shape;

    RunReport report;
    report.device = dotaModeName(opt.mode);
    report.benchmark = bench.name;
    report.datapath = precisionName(datapathPrecision(opt));
    report.freq_ghz = hw_.freq_ghz;
    report.layers = shape.layers;

    // Causal (decoder) benchmarks are evaluated as single-pass scoring
    // (perplexity workloads process the whole sequence at once with a
    // causal mask); autoregressive *generation* uses decoderLayer via
    // simulateGeneration().
    DataflowStats ds;
    if (retention < 1.0) {
        DOTA_ASSERT(mask.rows() == shape.seq_len,
                    "mask rows {} != sequence length {}", mask.rows(),
                    shape.seq_len);
        ds = analyzeDataflow(mask, opt.dataflow, opt.token_parallelism);
    } else if (shape.decoder) {
        // Dense causal: row i sees i+1 keys.
        const uint64_t n = shape.seq_len;
        ds.connections = n * (n + 1) / 2;
        ds.rounds = 0;
        ds.key_loads = 0;
    }
    report.per_layer = encoderLayer(shape, opt, retention, ds);

    // Leakage scales with the instantiated fabric.
    const double scale =
        static_cast<double>(hw_.lanes) / 4.0;
    report.leakage_j =
        em_.leakage_w * scale * report.timeMs() * 1e-3;
    return report;
}

} // namespace dota
