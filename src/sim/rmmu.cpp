/**
 * @file
 * Implementation of the RMMU model.
 */
#include "sim/rmmu.hpp"

namespace dota {

namespace {

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

uint64_t
Rmmu::gemmCycles(uint64_t m, uint64_t k, uint64_t n, Precision p) const
{
    if (m == 0 || k == 0 || n == 0)
        return 0;
    const uint64_t row_tiles = ceilDiv(m, cfg_.pe_rows);
    const uint64_t col_tiles = ceilDiv(n, cfg_.pe_cols);
    const uint64_t per_pe =
        static_cast<uint64_t>(rmmuMacsPerPe(p));
    DOTA_ASSERT(per_pe > 0, "precision not executable on the RMMU");
    return row_tiles * col_tiles * ceilDiv(k, per_pe);
}

uint64_t
Rmmu::sparseAttentionCycles(uint64_t rounds, size_t t,
                            size_t head_dim) const
{
    // Each round = t dot products of length head_dim; the array packs as
    // many round-slots per cycle as it has PEs.
    const uint64_t slot_macs =
        rounds * static_cast<uint64_t>(t) *
        static_cast<uint64_t>(head_dim);
    return ceilDiv(slot_macs, macsPerCycle(Precision::FX16));
}

} // namespace dota
