/**
 * @file
 * Cycle and energy model of the Reconfigurable Matrix Multiplication
 * Unit (Section 4.2, Figure 7).
 *
 * The RMMU is a 2-D array of multi-precision MAC PEs. Each PE retires one
 * FX16 MAC per cycle, or — using its four INT2 sub-multipliers as an
 * input-stationary micro-MAC — 4x at INT8, 16x at INT4 and 64x at INT2
 * (quadratic throughput scaling with precision, Figure 7c). GEMMs are
 * executed with output-stationary tiling: each pe_rows x pe_cols output
 * tile accumulates over the reduction dimension.
 */
#pragma once

#include "sim/energy_model.hpp"
#include "sim/hw_config.hpp"

namespace dota {

/** Tile-granular RMMU model. */
class Rmmu
{
  public:
    Rmmu(RmmuConfig cfg, const EnergyModel *em) : cfg_(cfg), em_(em) {}

    /** MACs retired per cycle at @p p with the whole array configured. */
    uint64_t
    macsPerCycle(Precision p) const
    {
        return static_cast<uint64_t>(cfg_.pes()) *
               static_cast<uint64_t>(rmmuMacsPerPe(p));
    }

    /**
     * Cycles of a tiled (m x k) * (k x n) GEMM at precision @p p,
     * including edge-tile underutilization.
     */
    uint64_t gemmCycles(uint64_t m, uint64_t k, uint64_t n,
                        Precision p) const;

    /** Energy of the same GEMM (real MACs only). */
    double
    gemmEnergyPj(uint64_t m, uint64_t k, uint64_t n, Precision p) const
    {
        return static_cast<double>(m * k * n) * em_->macPj(p);
    }

    /**
     * Cycles to execute sparse-attention rounds in Token-Parallel mode:
     * every round occupies T dot-product slots of length @p head_dim
     * (idle slots from imbalance are busy-but-wasted), at FX16.
     */
    uint64_t sparseAttentionCycles(uint64_t rounds, size_t t,
                                   size_t head_dim) const;

    const RmmuConfig &config() const { return cfg_; }

  private:
    RmmuConfig cfg_;
    const EnergyModel *em_;
};

} // namespace dota
