/**
 * @file
 * Hardware configuration presets.
 */
#include "sim/hw_config.hpp"

namespace dota {

HwConfig
HwConfig::dota()
{
    return HwConfig{}; // defaults are the Table 2 configuration
}

HwConfig
HwConfig::dotaScaledForGpu()
{
    HwConfig cfg;
    cfg.lanes = 24; // 6 accelerators x 4 lanes ~= 12 TOPS
    cfg.dram_gb_per_s = 384.0;
    return cfg;
}

} // namespace dota
