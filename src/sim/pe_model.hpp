/**
 * @file
 * Bit-exact functional model of the multi-precision PE (Figure 7).
 *
 * The RMMU PE builds high-precision multipliers out of INT2 sub-
 * multipliers: each operand is split into 2-bit digits, every digit pair
 * is multiplied by one INT2 unit, and the partial products are shifted
 * and accumulated (Figure 7c shows the FX4 = 4 x INT2 case). In INT2
 * mode the same four units retire four independent MACs per cycle
 * against pre-stored (input-stationary) weights.
 *
 * This model reproduces the composition *digit by digit* so the test
 * suite can verify — exhaustively for 4- and partially for 8-bit
 * operands — that the composed datapath equals a reference multiply,
 * and that the throughput accounting of rmmuMacsPerPe() follows from
 * the unit counts.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/quant.hpp"

namespace dota {

/**
 * The INT2 unit cell: signed 2-bit x signed 2-bit -> signed 4-bit.
 * Operands must be in [-2, 1].
 */
int8_t int2Multiply(int8_t a, int8_t b);

/**
 * Compose a signed @p bits x @p bits multiply from INT2 unit cells,
 * exactly as the shift/accumulate network of Figure 7(c) does:
 * operands are split into one signed top digit and unsigned lower
 * digits (radix-4 Booth-free decomposition), all digit pairs multiply
 * on INT2-cell-sized hardware, and partial products accumulate with
 * their shifts.
 *
 * @param a, b   signed operands in the @p bits range
 * @param bits   4, 8, or 16
 * @param[out] unit_ops  number of INT2-cell operations consumed
 *                       (optional; (bits/2)^2 when provided)
 */
int64_t composedMultiply(int32_t a, int32_t b, int bits,
                         size_t *unit_ops = nullptr);

/**
 * One PE in a given precision mode: a multiply-accumulate register plus
 * the throughput bookkeeping of the mode (how many independent MACs the
 * (bits=16)/2-digit cell array retires per cycle).
 */
class MultiPrecisionPe
{
  public:
    explicit MultiPrecisionPe(Precision mode) : mode_(mode) {}

    /** Independent MACs this PE retires per cycle in this mode. */
    size_t macsPerCycle() const;

    /**
     * Execute one cycle: consume up to macsPerCycle() operand pairs and
     * accumulate into the PSUM register. Fewer pairs leave unit cells
     * idle (utilization accounting). Operand values must fit the mode.
     */
    void cycle(const std::vector<std::pair<int32_t, int32_t>> &pairs);

    int64_t psum() const { return psum_; }
    void reset() { psum_ = 0; }

    uint64_t cyclesElapsed() const { return cycles_; }
    uint64_t unitOpsUsed() const { return unit_ops_; }

    /** Fraction of INT2 unit-cell slots doing useful work so far. */
    double utilization() const;

    Precision mode() const { return mode_; }

  private:
    Precision mode_;
    int64_t psum_ = 0;
    uint64_t cycles_ = 0;
    uint64_t unit_ops_ = 0;
};

} // namespace dota
