/**
 * @file
 * Numerical guard rails for the training loops.
 *
 * Real training fleets hit NaN/Inf blow-ups — bad batches, fp32
 * overflow, bit flips — and an unguarded optimizer step propagates the
 * poison into every weight, wasting the run. The StepGuard inspects the
 * reduced batch loss and gradients *after* the fixed-order reduction
 * and *before* the optimizer update, so its verdict is a pure function
 * of deterministic values and therefore identical at any DOTA_THREADS.
 *
 * Policy (skip-step-and-rollback): a non-finite loss or gradient
 * withholds the optimizer update entirely — parameters and Adam moments
 * keep their pre-step values (nothing to roll back because nothing was
 * applied) and training continues with the next batch. A long run of
 * consecutive skips means the model state itself is poisoned (e.g. NaN
 * weights, which no skip can heal) and aborts loudly. Gradient-norm
 * clipping lives in Adam (AdamConfig::clip_norm); the guard counts
 * clipped steps so reports surface how often the rail engaged.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/adam.hpp"
#include "nn/param.hpp"

namespace dota {

/** Guard-rail policy knobs. */
struct GuardRailConfig
{
    /** Master switch; off restores the unguarded historical loop. */
    bool enabled = true;

    /**
     * Abort (fatal) after this many *consecutive* skipped steps: the
     * model state is unrecoverable by skipping alone.
     */
    size_t max_consecutive_skips = 25;
};

/** Counters of every guard-rail intervention (checkpointed). */
struct GuardRailStats
{
    uint64_t nonfinite_loss_steps = 0; ///< batch loss was NaN/Inf
    uint64_t nonfinite_grad_steps = 0; ///< a reduced gradient was NaN/Inf
    uint64_t skipped_steps = 0;        ///< optimizer updates withheld
    uint64_t clipped_steps = 0;        ///< gradient-norm clip engaged
    uint64_t consecutive_skips = 0;    ///< current skip streak
};

/** Per-run guard instance owned by a trainer. */
class StepGuard
{
  public:
    explicit StepGuard(GuardRailConfig cfg) : cfg_(cfg) {}

    /**
     * Decide the fate of the step whose reduced batch loss is @p loss
     * and whose reduced gradients live in @p params. Returns true when
     * the optimizer update must be skipped. fatal() when the
     * consecutive-skip limit is exceeded.
     */
    bool shouldSkip(double loss, const std::vector<Parameter *> &params);

    /** Record post-update facts (clip counter) from the optimizer. */
    void
    afterStep(const Adam &opt)
    {
        if (cfg_.enabled && opt.lastStepClipped())
            ++stats_.clipped_steps;
    }

    const GuardRailStats &stats() const { return stats_; }

    /** Restore counters from a checkpoint (bit-identical resume). */
    void restore(const GuardRailStats &stats) { stats_ = stats; }

  private:
    GuardRailConfig cfg_;
    GuardRailStats stats_;
};

} // namespace dota
