/**
 * @file
 * Full training-state checkpoints with crash-safe write and verified
 * recovery.
 *
 * A model-only checkpoint (nn/serialize.hpp) cannot resume training
 * bit-identically: Adam's moment estimates, its bias-correction clock,
 * the data-stream RNG position, the loss history and the guard-rail
 * counters all shape subsequent steps. A TrainingSnapshot captures
 * every one of those, and the checkpoint file (record-file container,
 * kind "TRNS") stores them with a CRC32 per record plus a whole-file
 * footer checksum, written atomically (temp + rename).
 *
 * The recovery contract: kill the trainer at *any* point and
 * resumeLatest() restores the newest checkpoint that verifies, skipping
 * corrupt/truncated/torn files, and the continued run reproduces the
 * uninterrupted run's trajectory bit-for-bit at any DOTA_THREADS (see
 * tests/test_crash_resume.cpp and DESIGN.md §10).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/serialize.hpp"
#include "train/guardrails.hpp"

namespace dota {

/** Everything needed to continue a training run bit-identically. */
struct TrainingSnapshot
{
    uint64_t step = 0; ///< optimizer steps completed so far

    /** Parameter (name, value) pairs in collectParams order. */
    std::vector<std::pair<std::string, Matrix>> params;

    /** Adam state, aligned with params. */
    std::vector<Matrix> adam_m;
    std::vector<Matrix> adam_v;
    uint64_t adam_t = 0;

    RngState data_rng;                ///< data-stream position
    std::vector<double> loss_history; ///< per-step losses of [0, step)
    GuardRailStats guard;             ///< guard-rail counters
};

/** Checkpoint policy for a training run. */
struct CheckpointConfig
{
    std::string dir;      ///< checkpoint directory; empty disables
    size_t every = 0;     ///< save every N completed steps; 0 disables
    size_t keep_last = 3; ///< retention: newest N checkpoints kept
    bool resume = false;  ///< resumeLatest(dir) before training

    bool savingEnabled() const { return !dir.empty() && every > 0; }
    bool resumeEnabled() const { return !dir.empty() && resume; }
};

/** Capture a snapshot from live training objects. */
TrainingSnapshot captureSnapshot(uint64_t step,
                                 const std::vector<Parameter *> &params,
                                 const Adam &opt, const Rng &data_rng,
                                 const std::vector<double> &loss_history,
                                 const GuardRailStats &guard);

/**
 * Apply @p snap to live training objects. Returns Ok, or ArchMismatch
 * (with a diagnostic naming both the expected and found parameter
 * name/shape in @p error) when the snapshot belongs to a different
 * architecture. Nothing is modified on failure.
 */
LoadStatus applySnapshot(const TrainingSnapshot &snap,
                         const std::vector<Parameter *> &params,
                         Adam &opt, Rng &data_rng,
                         std::string *error = nullptr);

/**
 * Serialize @p snap to @p path atomically. Returns false and sets
 * @p error on IO failure (the previous file, if any, is preserved).
 */
bool trySaveTrainCheckpoint(const TrainingSnapshot &snap,
                            const std::string &path,
                            std::string *error = nullptr);

/** trySaveTrainCheckpoint that fatal()s on failure. */
void saveTrainCheckpoint(const TrainingSnapshot &snap,
                         const std::string &path);

/**
 * Load and verify a training checkpoint. Every failure mode is a
 * status, never a crash: IoError, NotACheckpoint, BadVersion,
 * Truncated, Corrupt.
 */
LoadStatus tryLoadTrainCheckpoint(const std::string &path,
                                  TrainingSnapshot &out,
                                  std::string *error = nullptr);

/** Canonical file name for the checkpoint after @p step steps. */
std::string checkpointFileName(uint64_t step);

/**
 * Checkpoint files (names, not paths) under @p dir, sorted by step
 * ascending. Non-checkpoint names are ignored.
 */
std::vector<std::string> listTrainCheckpoints(const std::string &dir);

/** Outcome of a resumeLatest scan. */
struct ResumeResult
{
    bool resumed = false;      ///< a verified checkpoint was loaded
    std::string path;          ///< the file that verified
    size_t skipped_bad = 0;    ///< newer files rejected by verification
    std::vector<std::string> diagnostics; ///< one line per rejected file
};

/**
 * Scan @p dir for the newest checkpoint that passes full verification,
 * walking backwards past corrupt/truncated/unreadable files. When every
 * candidate fails (or none exists) the result has resumed=false and the
 * caller starts fresh — a damaged checkpoint directory degrades to lost
 * progress, never to a crash or silently wrong weights.
 */
ResumeResult resumeLatest(const std::string &dir, TrainingSnapshot &out);

/**
 * Delete all but the newest @p keep_last checkpoints in @p dir.
 * keep_last == 0 is treated as 1 (never delete the only copy).
 */
void pruneCheckpoints(const std::string &dir, size_t keep_last);

/**
 * Glue object owned by a training loop: resume() restores state at the
 * start of train(), onStepComplete() saves/prunes on the configured
 * cadence. Keeps the checkpoint policy identical across trainers.
 */
class CheckpointManager
{
  public:
    explicit CheckpointManager(CheckpointConfig cfg) : cfg_(std::move(cfg)) {}

    /**
     * Attempt resume per config; applies the snapshot to the live
     * objects and returns the step to continue from (0 when starting
     * fresh). fatal() when a verified snapshot does not fit the model
     * (wrong checkpoint directory for this architecture).
     */
    size_t resume(const std::vector<Parameter *> &params, Adam &opt,
                  Rng &data_rng, std::vector<double> &loss_history,
                  StepGuard &guard);

    /** Save + prune when @p completed_steps hits the cadence. */
    void onStepComplete(uint64_t completed_steps,
                        const std::vector<Parameter *> &params,
                        const Adam &opt, const Rng &data_rng,
                        const std::vector<double> &loss_history,
                        const StepGuard &guard);

  private:
    CheckpointConfig cfg_;
};

} // namespace dota
