/**
 * @file
 * Seeded checkpoint-corruption injection harness.
 *
 * The recovery path is only trustworthy if it is exercised against the
 * failure modes real storage produces. This injector damages a
 * checkpoint file in four representative ways, all driven by an
 * explicit Rng so every corruption experiment is replayable:
 *
 *  - BitFlip:   one random bit inverted in place (media/DRAM bit rot)
 *  - Truncate:  the file cut short at a random offset (crash mid-write
 *               on filesystems without atomic rename, disk-full)
 *  - ZeroFill:  a random span overwritten with zeros (lost sectors)
 *  - TornWrite: the tail replaced by random bytes from a random offset
 *               (interrupted in-place rewrite)
 *
 * Every mode must be *detected* by checkpoint verification — the
 * property tests in tests/test_checkpoint.cpp assert that no corrupted
 * file ever loads as Ok.
 */
#pragma once

#include <string>

#include "common/rng.hpp"

namespace dota {

/** Storage failure mode to inject. */
enum class CorruptionMode
{
    BitFlip,
    Truncate,
    ZeroFill,
    TornWrite,
};

/** All modes, for parameterized tests. */
inline constexpr CorruptionMode kAllCorruptionModes[] = {
    CorruptionMode::BitFlip,
    CorruptionMode::Truncate,
    CorruptionMode::ZeroFill,
    CorruptionMode::TornWrite,
};

/** Display name, e.g. "bit-flip". */
std::string corruptionModeName(CorruptionMode mode);

/**
 * Damage the file at @p path in place with @p mode, drawing offsets and
 * bytes from @p rng. Guarantees the stored bytes differ from the
 * original. Returns false when the file cannot be read or rewritten.
 */
bool corruptFile(const std::string &path, CorruptionMode mode, Rng &rng);

} // namespace dota
