/**
 * @file
 * Implementation of the corruption injector.
 */
#include "train/corrupt.hpp"

#include <algorithm>
#include <fstream>

#include "common/fileio.hpp"
#include "common/logging.hpp"

namespace dota {

std::string
corruptionModeName(CorruptionMode mode)
{
    switch (mode) {
      case CorruptionMode::BitFlip:
        return "bit-flip";
      case CorruptionMode::Truncate:
        return "truncate";
      case CorruptionMode::ZeroFill:
        return "zero-fill";
      case CorruptionMode::TornWrite:
        return "torn-write";
    }
    DOTA_PANIC("unknown corruption mode");
}

bool
corruptFile(const std::string &path, CorruptionMode mode, Rng &rng)
{
    std::string bytes;
    if (!readFile(path, bytes) || bytes.empty())
        return false;
    const size_t n = bytes.size();

    switch (mode) {
      case CorruptionMode::BitFlip: {
        const size_t byte = static_cast<size_t>(rng.uniformInt(n));
        const int bit = static_cast<int>(rng.uniformInt(8));
        bytes[byte] = static_cast<char>(
            static_cast<unsigned char>(bytes[byte]) ^ (1u << bit));
        break;
      }
      case CorruptionMode::Truncate: {
        // Keep a strict prefix; possibly empty.
        bytes.resize(static_cast<size_t>(rng.uniformInt(n)));
        break;
      }
      case CorruptionMode::ZeroFill: {
        const size_t span = 1 + static_cast<size_t>(
            rng.uniformInt(std::min<size_t>(n, 64)));
        const size_t start = static_cast<size_t>(
            rng.uniformInt(n - span + 1));
        bool all_zero = true;
        for (size_t i = start; i < start + span; ++i)
            all_zero = all_zero && bytes[i] == 0;
        std::fill(bytes.begin() + static_cast<ptrdiff_t>(start),
                  bytes.begin() + static_cast<ptrdiff_t>(start + span),
                  '\0');
        // Zeroing an already-zero span changes nothing; flip a bit in
        // the span instead so the damage guarantee holds.
        if (all_zero)
            bytes[start] = 1;
        break;
      }
      case CorruptionMode::TornWrite: {
        // An interrupted in-place rewrite: everything past a random
        // offset is garbage instead of the intended bytes.
        const size_t torn_at = static_cast<size_t>(rng.uniformInt(n));
        for (size_t i = torn_at; i < n; ++i)
            bytes[i] = static_cast<char>(rng.uniformInt(256));
        // Random bytes can coincide with the original tail (always,
        // when torn_at == n); force at least one differing byte.
        bytes[torn_at == n ? n - 1 : torn_at] ^= 0x55;
        break;
      }
    }

    // Deliberately a plain non-atomic rewrite: the injector *is* the
    // storage failure.
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return false;
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(os.flush());
}

} // namespace dota
