/**
 * @file
 * Implementation of the numerical guard rails.
 */
#include "train/guardrails.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dota {

namespace {

bool
allFinite(const Matrix &m)
{
    const float *p = m.data();
    for (size_t i = 0; i < m.size(); ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

} // namespace

bool
StepGuard::shouldSkip(double loss, const std::vector<Parameter *> &params)
{
    if (!cfg_.enabled)
        return false;
    bool bad = false;
    if (!std::isfinite(loss)) {
        ++stats_.nonfinite_loss_steps;
        bad = true;
    }
    // Check the gradients even when the loss already failed: the
    // counters tell apart "loss overflowed" from "gradients poisoned",
    // which matters when diagnosing a blown-up run.
    bool grads_ok = true;
    for (const Parameter *p : params)
        if (!allFinite(p->grad)) {
            grads_ok = false;
            break;
        }
    if (!grads_ok) {
        ++stats_.nonfinite_grad_steps;
        bad = true;
    }
    if (!bad) {
        stats_.consecutive_skips = 0;
        return false;
    }
    ++stats_.skipped_steps;
    ++stats_.consecutive_skips;
    if (stats_.consecutive_skips > cfg_.max_consecutive_skips)
        DOTA_FATAL("numerical guard rail: {} consecutive steps with "
                   "non-finite loss/gradients (limit {}) — the model "
                   "state is poisoned beyond skip-step recovery; restart "
                   "from an earlier checkpoint with a lower learning "
                   "rate",
                   stats_.consecutive_skips, cfg_.max_consecutive_skips);
    return true;
}

} // namespace dota
