/**
 * @file
 * Implementation of full training-state checkpoints.
 */
#include "train/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/fileio.hpp"
#include "common/logging.hpp"
#include "common/recordfile.hpp"

namespace dota {

namespace {

constexpr uint32_t kTrainKind = recordKind('T', 'R', 'N', 'S');
constexpr uint32_t kSchemaVersion = 1;
constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".dota";

template <typename T>
void
appendInt(std::string &buf, T v)
{
    char raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    buf.append(raw, sizeof(T));
}

template <typename T>
bool
readInt(const std::string &buf, size_t &off, T &v)
{
    if (off + sizeof(T) > buf.size())
        return false;
    std::memcpy(&v, buf.data() + off, sizeof(T));
    off += sizeof(T);
    return true;
}

void
setError(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
}

std::string
encodeMeta(const TrainingSnapshot &snap)
{
    std::string buf;
    appendInt(buf, snap.step);
    appendInt(buf, snap.adam_t);
    appendInt(buf, static_cast<uint64_t>(snap.params.size()));
    appendInt(buf, snap.guard.nonfinite_loss_steps);
    appendInt(buf, snap.guard.nonfinite_grad_steps);
    appendInt(buf, snap.guard.skipped_steps);
    appendInt(buf, snap.guard.clipped_steps);
    appendInt(buf, snap.guard.consecutive_skips);
    return buf;
}

bool
decodeMeta(const std::string &buf, TrainingSnapshot &snap,
           uint64_t &param_count)
{
    size_t off = 0;
    return readInt(buf, off, snap.step) &&
           readInt(buf, off, snap.adam_t) &&
           readInt(buf, off, param_count) &&
           readInt(buf, off, snap.guard.nonfinite_loss_steps) &&
           readInt(buf, off, snap.guard.nonfinite_grad_steps) &&
           readInt(buf, off, snap.guard.skipped_steps) &&
           readInt(buf, off, snap.guard.clipped_steps) &&
           readInt(buf, off, snap.guard.consecutive_skips) &&
           off == buf.size();
}

std::string
encodeRng(const RngState &st)
{
    std::string buf;
    for (uint64_t word : st.s)
        appendInt(buf, word);
    appendInt(buf, st.cached);
    appendInt(buf, static_cast<uint8_t>(st.has_cached));
    return buf;
}

bool
decodeRng(const std::string &buf, RngState &st)
{
    size_t off = 0;
    for (uint64_t &word : st.s)
        if (!readInt(buf, off, word))
            return false;
    uint8_t flag = 0;
    if (!readInt(buf, off, st.cached) || !readInt(buf, off, flag) ||
        off != buf.size())
        return false;
    st.has_cached = flag != 0;
    return true;
}

std::string
encodeLosses(const std::vector<double> &losses)
{
    std::string buf;
    buf.reserve(losses.size() * sizeof(double));
    for (double v : losses)
        appendInt(buf, v);
    return buf;
}

bool
decodeLosses(const std::string &buf, std::vector<double> &out)
{
    if (buf.size() % sizeof(double) != 0)
        return false;
    out.resize(buf.size() / sizeof(double));
    std::memcpy(out.data(), buf.data(), buf.size());
    return true;
}

/** Step number encoded in a checkpoint file name, or false. */
bool
parseCheckpointName(const std::string &name, uint64_t &step)
{
    const size_t prefix_len = sizeof(kFilePrefix) - 1;
    const size_t suffix_len = sizeof(kFileSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len ||
        name.rfind(kFilePrefix, 0) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len, kFileSuffix)
            != 0)
        return false;
    step = 0;
    for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
        const char c = name[i];
        if (c < '0' || c > '9')
            return false;
        step = step * 10 + static_cast<uint64_t>(c - '0');
    }
    return true;
}

} // namespace

TrainingSnapshot
captureSnapshot(uint64_t step, const std::vector<Parameter *> &params,
                const Adam &opt, const Rng &data_rng,
                const std::vector<double> &loss_history,
                const GuardRailStats &guard)
{
    DOTA_ASSERT(opt.firstMoments().size() == params.size(),
                "optimizer tracks {} parameters, trainer has {}",
                opt.firstMoments().size(), params.size());
    TrainingSnapshot snap;
    snap.step = step;
    snap.params.reserve(params.size());
    for (const Parameter *p : params)
        snap.params.emplace_back(p->name, p->value);
    snap.adam_m = opt.firstMoments();
    snap.adam_v = opt.secondMoments();
    snap.adam_t = opt.stepCount();
    snap.data_rng = data_rng.getState();
    snap.loss_history = loss_history;
    snap.guard = guard;
    return snap;
}

LoadStatus
applySnapshot(const TrainingSnapshot &snap,
              const std::vector<Parameter *> &params, Adam &opt,
              Rng &data_rng, std::string *error)
{
    if (snap.params.size() != params.size()) {
        setError(error,
                 format("snapshot has {} parameters, model expects {}",
                        snap.params.size(), params.size()));
        return LoadStatus::ArchMismatch;
    }
    for (size_t i = 0; i < params.size(); ++i) {
        const auto &[name, value] = snap.params[i];
        const Parameter *p = params[i];
        if (name != p->name || value.rows() != p->value.rows() ||
            value.cols() != p->value.cols()) {
            setError(error,
                     format("parameter #{}: snapshot has '{}' ({}x{}), "
                            "model expects '{}' ({}x{})",
                            i, name, value.rows(), value.cols(),
                            p->name, p->value.rows(), p->value.cols()));
            return LoadStatus::ArchMismatch;
        }
    }
    for (size_t i = 0; i < params.size(); ++i)
        params[i]->value = snap.params[i].second;
    opt.setState(snap.adam_m, snap.adam_v, snap.adam_t);
    data_rng.setState(snap.data_rng);
    return LoadStatus::Ok;
}

bool
trySaveTrainCheckpoint(const TrainingSnapshot &snap,
                       const std::string &path, std::string *error)
{
    DOTA_ASSERT(snap.adam_m.size() == snap.params.size() &&
                    snap.adam_v.size() == snap.params.size(),
                "snapshot moments ({}, {}) misaligned with {} params",
                snap.adam_m.size(), snap.adam_v.size(),
                snap.params.size());
    RecordFileBuilder builder(kTrainKind, kSchemaVersion);
    builder.add("meta", encodeMeta(snap));
    builder.add("rng", encodeRng(snap.data_rng));
    builder.add("loss", encodeLosses(snap.loss_history));
    for (size_t i = 0; i < snap.params.size(); ++i) {
        const auto &[name, value] = snap.params[i];
        builder.add("param/" + name, encodeMatrix(value));
        builder.add("adam.m/" + name, encodeMatrix(snap.adam_m[i]));
        builder.add("adam.v/" + name, encodeMatrix(snap.adam_v[i]));
    }
    return writeFileAtomic(path, builder.finish(), error);
}

void
saveTrainCheckpoint(const TrainingSnapshot &snap, const std::string &path)
{
    std::string error;
    if (!trySaveTrainCheckpoint(snap, path, &error))
        DOTA_FATAL("saving training checkpoint failed: {}", error);
}

LoadStatus
tryLoadTrainCheckpoint(const std::string &path, TrainingSnapshot &out,
                       std::string *error)
{
    RecordFile file;
    const RecordFileStatus rs = readRecordFile(path, file, error);
    switch (rs) {
      case RecordFileStatus::Ok:
        break;
      case RecordFileStatus::IoError:
        return LoadStatus::IoError;
      case RecordFileStatus::BadMagic:
        return LoadStatus::NotACheckpoint;
      case RecordFileStatus::BadVersion:
        return LoadStatus::BadVersion;
      case RecordFileStatus::Truncated:
        return LoadStatus::Truncated;
      case RecordFileStatus::Corrupt:
        return LoadStatus::Corrupt;
    }
    if (file.kind != kTrainKind) {
        setError(error, format("'{}' is a DOTA record file but not a "
                               "training checkpoint", path));
        return LoadStatus::NotACheckpoint;
    }
    if (file.schema_version != kSchemaVersion) {
        setError(error, format("training-checkpoint schema version {} "
                               "unsupported (expected {})",
                               file.schema_version, kSchemaVersion));
        return LoadStatus::BadVersion;
    }

    out = TrainingSnapshot{};
    uint64_t param_count = 0;
    // Structural layout: meta, rng, loss, then (param, m, v) triplets.
    // The container CRCs already verified byte integrity, so any
    // structural surprise below means a buggy writer or a damaged file
    // that happened to keep its checksums — report Corrupt, don't crash.
    if (file.records.size() < 3 ||
        file.records[0].first != "meta" ||
        !decodeMeta(file.records[0].second, out, param_count)) {
        setError(error, "meta record missing or malformed");
        return LoadStatus::Corrupt;
    }
    if (file.records[1].first != "rng" ||
        !decodeRng(file.records[1].second, out.data_rng)) {
        setError(error, "rng record missing or malformed");
        return LoadStatus::Corrupt;
    }
    if (file.records[2].first != "loss" ||
        !decodeLosses(file.records[2].second, out.loss_history)) {
        setError(error, "loss record missing or malformed");
        return LoadStatus::Corrupt;
    }
    if (file.records.size() != 3 + 3 * param_count) {
        setError(error,
                 format("checkpoint declares {} parameters but carries "
                        "{} records", param_count,
                        file.records.size()));
        return LoadStatus::Corrupt;
    }
    out.params.reserve(param_count);
    out.adam_m.reserve(param_count);
    out.adam_v.reserve(param_count);
    for (uint64_t i = 0; i < param_count; ++i) {
        const auto &[pname, pbytes] = file.records[3 + 3 * i];
        const auto &[mname, mbytes] = file.records[4 + 3 * i];
        const auto &[vname, vbytes] = file.records[5 + 3 * i];
        if (pname.rfind("param/", 0) != 0 ||
            mname.rfind("adam.m/", 0) != 0 ||
            vname.rfind("adam.v/", 0) != 0) {
            setError(error, format("parameter triplet #{} mislabeled "
                                   "('{}', '{}', '{}')",
                                   i, pname, mname, vname));
            return LoadStatus::Corrupt;
        }
        Matrix value, m, v;
        if (!decodeMatrix(pbytes, value) || !decodeMatrix(mbytes, m) ||
            !decodeMatrix(vbytes, v)) {
            setError(error, format("parameter '{}' has a malformed "
                                   "payload", pname));
            return LoadStatus::Corrupt;
        }
        if (m.rows() != value.rows() || m.cols() != value.cols() ||
            v.rows() != value.rows() || v.cols() != value.cols()) {
            setError(error, format("parameter '{}' moments disagree "
                                   "with its shape", pname));
            return LoadStatus::Corrupt;
        }
        out.params.emplace_back(pname.substr(6), std::move(value));
        out.adam_m.push_back(std::move(m));
        out.adam_v.push_back(std::move(v));
    }
    if (out.loss_history.size() != out.step) {
        setError(error, format("loss history has {} entries for {} "
                               "completed steps", out.loss_history.size(),
                               out.step));
        return LoadStatus::Corrupt;
    }
    return LoadStatus::Ok;
}

std::string
checkpointFileName(uint64_t step)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%08llu%s", kFilePrefix,
                  static_cast<unsigned long long>(step), kFileSuffix);
    return buf;
}

std::vector<std::string>
listTrainCheckpoints(const std::string &dir)
{
    std::vector<std::string> names;
    for (const std::string &name : listFiles(dir, kFilePrefix)) {
        uint64_t step = 0;
        if (parseCheckpointName(name, step))
            names.push_back(name);
    }
    // Zero-padded fixed-width names sort lexicographically == by step,
    // but sort numerically anyway so >8-digit steps stay ordered.
    std::sort(names.begin(), names.end(),
              [](const std::string &a, const std::string &b) {
                  uint64_t sa = 0, sb = 0;
                  parseCheckpointName(a, sa);
                  parseCheckpointName(b, sb);
                  return sa < sb;
              });
    return names;
}

ResumeResult
resumeLatest(const std::string &dir, TrainingSnapshot &out)
{
    ResumeResult res;
    const std::vector<std::string> names = listTrainCheckpoints(dir);
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
        const std::string path = dir + "/" + *it;
        std::string error;
        const LoadStatus status =
            tryLoadTrainCheckpoint(path, out, &error);
        if (status == LoadStatus::Ok) {
            res.resumed = true;
            res.path = path;
            return res;
        }
        ++res.skipped_bad;
        res.diagnostics.push_back(format("{}: {} ({})", *it,
                                         loadStatusName(status), error));
    }
    return res;
}

void
pruneCheckpoints(const std::string &dir, size_t keep_last)
{
    if (keep_last == 0)
        keep_last = 1;
    const std::vector<std::string> names = listTrainCheckpoints(dir);
    if (names.size() <= keep_last)
        return;
    for (size_t i = 0; i + keep_last < names.size(); ++i)
        removeFile(dir + "/" + names[i]);
}

size_t
CheckpointManager::resume(const std::vector<Parameter *> &params,
                          Adam &opt, Rng &data_rng,
                          std::vector<double> &loss_history,
                          StepGuard &guard)
{
    if (!cfg_.resumeEnabled())
        return 0;
    TrainingSnapshot snap;
    const ResumeResult res = resumeLatest(cfg_.dir, snap);
    for (const std::string &diag : res.diagnostics)
        warn("skipping unusable checkpoint {}", diag);
    if (!res.resumed) {
        inform("no usable checkpoint in '{}', starting fresh", cfg_.dir);
        return 0;
    }
    std::string error;
    const LoadStatus status =
        applySnapshot(snap, params, opt, data_rng, &error);
    if (status != LoadStatus::Ok)
        DOTA_FATAL("checkpoint '{}' verified but does not fit this "
                   "model ({}): {} — is --checkpoint-dir pointing at a "
                   "different run?",
                   res.path, loadStatusName(status), error);
    loss_history = snap.loss_history;
    guard.restore(snap.guard);
    inform("resumed from '{}' at step {}", res.path, snap.step);
    return static_cast<size_t>(snap.step);
}

void
CheckpointManager::onStepComplete(uint64_t completed_steps,
                                  const std::vector<Parameter *> &params,
                                  const Adam &opt, const Rng &data_rng,
                                  const std::vector<double> &loss_history,
                                  const StepGuard &guard)
{
    if (!cfg_.savingEnabled() || completed_steps % cfg_.every != 0)
        return;
    if (!ensureDir(cfg_.dir))
        DOTA_FATAL("cannot create checkpoint directory '{}'", cfg_.dir);
    const TrainingSnapshot snap =
        captureSnapshot(completed_steps, params, opt, data_rng,
                        loss_history, guard.stats());
    saveTrainCheckpoint(snap,
                        cfg_.dir + "/" + checkpointFileName(completed_steps));
    pruneCheckpoints(cfg_.dir, cfg_.keep_last);
}

} // namespace dota
