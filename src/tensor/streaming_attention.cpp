/**
 * @file
 * Implementation of the tiled streaming attention kernel.
 *
 * Parallelization mirrors the sparse kernels in sparse_ops.cpp: query
 * rows are partitioned into chunks and every row is produced by exactly
 * one chunk in a fixed ascending tile order, so results are
 * bit-identical for every DOTA_THREADS value. The serial/parallel
 * crossover reuses the measured GEMM MAC threshold with the work
 * estimated as kept-connections * head-dim.
 */
#include "tensor/streaming_attention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/ops.hpp"

namespace dota {

namespace {

/** Same chunking policy as the sparse kernels (sparse_ops.cpp). */
size_t
rowGrain(size_t rows)
{
    const size_t conc = ThreadPool::globalConcurrency();
    return std::max<size_t>(1, rows / (4 * conc));
}

/**
 * Fold the keys listed in cols[0..cnt) into one query row's running
 * state. Scores and per-tile probabilities live in the caller's
 * tile-sized scratch; `first` distinguishes the initial contributing
 * tile (no rescale of an all-zero accumulator).
 */
struct RowState
{
    float m = -std::numeric_limits<float>::infinity();
    double l = 0.0;
    bool first = true;
};

void
foldTile(const float *qrow, const Matrix &k, const Matrix &v,
         const uint32_t *cols, size_t cnt, float scale,
         const GemmKernelTable &kt, RowState &st, float *s, float *tmp,
         float *acc)
{
    // Scores at kept coordinates: dot-family contract, one rounding for
    // the scaling — identical per-element numerics to the CSR path.
    float tile_max = -std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < cnt; ++i) {
        s[i] = kt.dot(qrow, k.row(cols[i]), k.cols()) * scale;
        tile_max = std::max(tile_max, s[i]);
    }
    const float m_new = std::max(st.m, tile_max);

    // exp terms and their double-accumulated sum, ascending key order.
    double tile_sum = 0.0;
    for (size_t i = 0; i < cnt; ++i) {
        s[i] = std::exp(s[i] - m_new);
        tile_sum += s[i];
    }

    // One tile of probabilities against V (broadcast-FMA contract).
    kt.sparseAvRow(s, cols, cnt, v, tmp);

    const size_t d = v.cols();
    if (st.first) {
        std::copy(tmp, tmp + d, acc);
        st.l = tile_sum;
        st.first = false;
    } else {
        const float corr = std::exp(st.m - m_new);
        for (size_t c = 0; c < d; ++c)
            acc[c] = std::fma(corr, acc[c], tmp[c]);
        st.l = st.l * static_cast<double>(corr) + tile_sum;
    }
    st.m = m_new;
}

} // namespace

Matrix
streamingAttention(const Matrix &q, const Matrix &k, const Matrix &v,
                   const SparseMask *mask, bool causal, float scale,
                   size_t tile)
{
    DOTA_ASSERT(q.cols() == k.cols(), "streamingAttention {} vs {} keys",
                q.shapeStr(), k.shapeStr());
    DOTA_ASSERT(k.rows() == v.rows(), "streamingAttention {} keys vs {}",
                k.shapeStr(), v.shapeStr());
    if (mask) {
        DOTA_ASSERT(mask->rows() == q.rows() && mask->cols() == k.rows(),
                    "streamingAttention mask {}x{} over {}x{} scores",
                    mask->rows(), mask->cols(), q.rows(), k.rows());
    }
    const size_t n = q.rows();
    const size_t m = k.rows();
    const size_t d = v.cols();
    tile = std::max<size_t>(1, tile);

    Matrix out(n, d);
    if (n == 0 || m == 0)
        return out;
    const auto &kt = activeGemmKernels();

    auto rowBlock = [&](size_t r0, size_t r1) {
        // Per-chunk scratch: one KV tile of scores + ids, one d-wide
        // tile context and the d-wide accumulator — the whole transient
        // footprint of this thread (streamingAttnScratchBytes()).
        std::vector<uint32_t> cols(tile);
        std::vector<float> s(tile);
        std::vector<float> tmp(d);
        std::vector<float> acc(d);
        for (size_t r = r0; r < r1; ++r) {
            const size_t bound = causal ? std::min(m, r + 1) : m;
            const std::vector<uint32_t> *ids =
                mask ? &mask->row(r) : nullptr;
            size_t cursor = 0; // walks ids across tiles (ascending)
            RowState st;
            for (size_t t0 = 0; t0 < bound; t0 += tile) {
                const size_t t1 = std::min(bound, t0 + tile);
                size_t cnt = 0;
                if (ids) {
                    while (cursor < ids->size() && (*ids)[cursor] < t1) {
                        const uint32_t c = (*ids)[cursor++];
                        if (c >= t0) // ids below t0 were already folded
                            cols[cnt++] = c;
                    }
                } else {
                    for (size_t c = t0; c < t1; ++c)
                        cols[cnt++] = static_cast<uint32_t>(c);
                }
                if (cnt == 0)
                    continue; // omitted tile: no memory, no work
                foldTile(q.row(r), k, v, cols.data(), cnt, scale, kt, st,
                         s.data(), tmp.data(), acc.data());
            }
            float *orow = out.row(r);
            if (st.first)
                continue; // no kept keys: the dense path's all-zero row
            const float inv = static_cast<float>(1.0 / st.l);
            for (size_t c = 0; c < d; ++c)
                orow[c] = acc[c] * inv;
        }
    };

    const uint64_t kept =
        mask ? mask->nnz()
             : (causal ? static_cast<uint64_t>(m) * (m + 1) / 2
                       : static_cast<uint64_t>(n) * m);
    const uint64_t macs = kept * q.cols();
    if (macs < gemmParallelMacThreshold())
        rowBlock(0, n);
    else
        parallelFor(0, n, rowGrain(n), rowBlock);
    return out;
}

void
streamingAttentionQuery(const float *qrow, const Matrix &k, const Matrix &v,
                        size_t off, size_t dh, float scale, float *out,
                        std::vector<float> *probs, size_t tile)
{
    DOTA_ASSERT(k.rows() == v.rows(), "streamingAttentionQuery {} vs {}",
                k.shapeStr(), v.shapeStr());
    DOTA_ASSERT(off + dh <= k.cols(), "head slice [{} .. {}) out of {}",
                off, off + dh, k.cols());
    const size_t t = k.rows();
    tile = std::max<size_t>(1, tile);
    const auto &kt = activeGemmKernels();

    std::vector<float> s(tile);
    std::vector<float> tmp(dh);
    std::vector<float> acc(dh, 0.0f);
    float m = -std::numeric_limits<float>::infinity();
    double l = 0.0;
    bool first = true;

    for (size_t t0 = 0; t0 < t; t0 += tile) {
        const size_t t1 = std::min(t, t0 + tile);
        const size_t cnt = t1 - t0;
        float tile_max = -std::numeric_limits<float>::infinity();
        for (size_t i = 0; i < cnt; ++i) {
            s[i] = kt.dot(qrow, k.row(t0 + i) + off, dh) * scale;
            tile_max = std::max(tile_max, s[i]);
        }
        const float m_new = std::max(m, tile_max);
        double tile_sum = 0.0;
        for (size_t i = 0; i < cnt; ++i) {
            s[i] = std::exp(s[i] - m_new);
            tile_sum += s[i];
        }
        // Strided AV fold (cache rows are dim-wide, this head is a
        // dh-slice): broadcast-FMA over kept keys ascending.
        std::fill(tmp.begin(), tmp.end(), 0.0f);
        for (size_t i = 0; i < cnt; ++i) {
            const float *vr = v.row(t0 + i) + off;
            for (size_t c = 0; c < dh; ++c)
                tmp[c] = std::fma(s[i], vr[c], tmp[c]);
        }
        if (first) {
            std::copy(tmp.begin(), tmp.end(), acc.begin());
            l = tile_sum;
            first = false;
        } else {
            const float corr = std::exp(m - m_new);
            for (size_t c = 0; c < dh; ++c)
                acc[c] = std::fma(corr, acc[c], tmp[c]);
            l = l * static_cast<double>(corr) + tile_sum;
        }
        m = m_new;
    }

    if (first || l == 0.0) {
        std::fill(out, out + dh, 0.0f);
        if (probs)
            probs->assign(t, 0.0f);
        return;
    }
    const float inv = static_cast<float>(1.0 / l);
    for (size_t c = 0; c < dh; ++c)
        out[c] = acc[c] * inv;

    // Second tile pass with the converged max/denominator: the final
    // per-position probabilities (attention-mass telemetry) without
    // ever holding more than one tile of scores.
    if (probs) {
        probs->resize(t);
        for (size_t t0 = 0; t0 < t; t0 += tile) {
            const size_t t1 = std::min(t, t0 + tile);
            for (size_t j = t0; j < t1; ++j) {
                const float sc = kt.dot(qrow, k.row(j) + off, dh) * scale;
                (*probs)[j] = std::exp(sc - m) * inv;
            }
        }
    }
}

size_t
streamingAttnScratchBytes(size_t d, size_t tile, size_t threads)
{
    const size_t per_thread = tile * (sizeof(uint32_t) + sizeof(float)) +
                              2 * d * sizeof(float);
    return std::max<size_t>(1, threads) * per_thread;
}

} // namespace dota
