/**
 * @file
 * Implementation of the spectral helpers.
 */
#include "tensor/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "tensor/ops.hpp"

namespace dota {

namespace {

/** Modified Gram-Schmidt orthonormalization of the columns of @p v. */
void
orthonormalize(Matrix &v, Rng &rng)
{
    const size_t n = v.rows(), k = v.cols();
    for (size_t j = 0; j < k; ++j) {
        for (int attempt = 0; attempt < 8; ++attempt) {
            double pre = 0.0;
            for (size_t i = 0; i < n; ++i)
                pre += static_cast<double>(v(i, j)) * v(i, j);
            pre = std::sqrt(pre);
            for (size_t p = 0; p < j; ++p) {
                double dot = 0.0;
                for (size_t i = 0; i < n; ++i)
                    dot += static_cast<double>(v(i, p)) * v(i, j);
                for (size_t i = 0; i < n; ++i)
                    v(i, j) -= static_cast<float>(dot) * v(i, p);
            }
            double norm = 0.0;
            for (size_t i = 0; i < n; ++i)
                norm += static_cast<double>(v(i, j)) * v(i, j);
            norm = std::sqrt(norm);
            // Degeneracy must be judged *relative* to the column's
            // pre-projection norm: when the matrix has rank r < k, one
            // Gram multiply maps every column into the r-dimensional
            // range, and surplus columns collapse to float rounding
            // noise of the projection (|residual| ~ eps * |column|),
            // which is far above any absolute epsilon.
            if (norm >= 1e-5 * pre && norm >= 1e-30) {
                for (size_t i = 0; i < n; ++i)
                    v(i, j) = static_cast<float>(v(i, j) / norm);
                break;
            }
            // Restart from fresh randomness and re-project: the column
            // converges to a null-space direction with a ~zero Rayleigh
            // quotient, as it should.
            for (size_t i = 0; i < n; ++i)
                v(i, j) = static_cast<float>(rng.normal());
        }
    }
}

} // namespace

std::vector<double>
topSingularValues(const Matrix &a, size_t k, size_t iters, uint64_t seed)
{
    DOTA_ASSERT(!a.empty(), "spectrum of an empty matrix");
    const size_t dim = std::min(a.rows(), a.cols());
    k = std::min(k, dim);

    // Subspace iteration on the Gram matrix G = a^T a (cols x cols) or
    // a a^T, whichever is smaller.
    const bool use_cols = a.cols() <= a.rows();
    const size_t n = use_cols ? a.cols() : a.rows();
    Rng rng(seed);
    Matrix v = Matrix::randomNormal(n, k, rng);
    orthonormalize(v, rng);

    Matrix gv;
    for (size_t it = 0; it < iters; ++it) {
        if (use_cols) {
            // G v = a^T (a v)
            gv = matmulAT(a, matmul(a, v));
        } else {
            gv = matmul(a, matmulAT(a, v));
        }
        v = gv;
        orthonormalize(v, rng);
    }

    // Rayleigh quotients give the eigenvalues of G = singular values^2.
    std::vector<double> out(k, 0.0);
    const Matrix av = use_cols ? matmul(a, v) : matmulAT(a, v);
    for (size_t j = 0; j < k; ++j) {
        double norm = 0.0;
        for (size_t i = 0; i < av.rows(); ++i)
            norm += static_cast<double>(av(i, j)) * av(i, j);
        out[j] = std::sqrt(norm);
    }
    std::sort(out.begin(), out.end(), std::greater<double>());
    return out;
}

double
effectiveRank(const Matrix &a, size_t k, size_t iters)
{
    const auto sv = topSingularValues(a, k, iters);
    double s2 = 0.0, s4 = 0.0;
    for (double s : sv) {
        s2 += s * s;
        s4 += s * s * s * s;
    }
    if (s4 <= 0.0)
        return 0.0;
    return s2 * s2 / s4;
}

double
spectralEnergyTopK(const Matrix &a, size_t k, size_t iters)
{
    const auto sv = topSingularValues(a, k, iters);
    double captured = 0.0;
    for (double s : sv)
        captured += s * s;
    const double total = a.frobeniusNorm() * a.frobeniusNorm();
    return total > 0.0 ? std::min(1.0, captured / total) : 0.0;
}

} // namespace dota
