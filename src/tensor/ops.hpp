/**
 * @file
 * Dense linear-algebra and NN kernels over Matrix.
 *
 * These are the reference (bit-exact) implementations that both the
 * trainable transformer stack and the accelerator simulator's functional
 * model call into. Each kernel corresponds to an operation the DOTA
 * hardware executes, so cycle/energy models reference these names.
 *
 * The three GEMM kernels dispatch to ISA-specific micro-kernels
 * (tensor/gemm_kernels.hpp — AVX2/FMA with a portable fallback, both
 * honoring the same per-element reduction contracts so the paths are
 * bit-identical) and are row-block parallel above a size threshold
 * (common/thread_pool.hpp, DOTA_THREADS): each output row is produced by
 * exactly one thread with a fixed per-element reduction order, so results
 * are bit-identical to serial execution for every thread count.
 */
#pragma once

#include "tensor/matrix.hpp"

namespace dota {

/** C = A * B. Shapes: (m x k) * (k x n) -> (m x n). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A * B^T. Shapes: (m x k) * (n x k) -> (m x n). */
Matrix matmulBT(const Matrix &a, const Matrix &b);

/** C = A^T * B. Shapes: (k x m) * (k x n) -> (m x n). */
Matrix matmulAT(const Matrix &a, const Matrix &b);

/** Transpose of @p a. */
Matrix transpose(const Matrix &a);

/** Elementwise sum; shapes must match. */
Matrix add(const Matrix &a, const Matrix &b);

/** Elementwise difference a - b. */
Matrix sub(const Matrix &a, const Matrix &b);

/** Elementwise (Hadamard) product. */
Matrix hadamard(const Matrix &a, const Matrix &b);

/** Scale every element by @p s. */
Matrix scale(const Matrix &a, float s);

/** Add row-vector @p bias (1 x cols) to every row of @p a. */
Matrix addRowBroadcast(const Matrix &a, const Matrix &bias);

/** Row-wise softmax. */
Matrix rowSoftmax(const Matrix &a);

/**
 * Row-wise masked softmax: entries with mask == 0 are treated as -inf
 * (omitted connections). Rows whose mask is entirely zero produce all-zero
 * probability (no incoming edges).
 *
 * @param a     raw scores, n x m
 * @param mask  same shape; nonzero = keep.
 */
Matrix rowSoftmaxMasked(const Matrix &a, const Matrix &mask);

/**
 * Backward of row-wise softmax. Given y = softmax(x) per row and dL/dy,
 * returns dL/dx = y * (dy - sum(dy * y)).
 */
Matrix rowSoftmaxBackward(const Matrix &y, const Matrix &dy);

/** ReLU forward. */
Matrix relu(const Matrix &a);

/** ReLU backward: dx = dy * (x > 0). */
Matrix reluBackward(const Matrix &x, const Matrix &dy);

/** GELU forward (tanh approximation). */
Matrix gelu(const Matrix &a);

/** GELU backward (tanh approximation). */
Matrix geluBackward(const Matrix &x, const Matrix &dy);

/**
 * Layer normalization forward over each row.
 *
 * @param x      n x d input
 * @param gamma  1 x d scale
 * @param beta   1 x d shift
 * @param[out] mean    per-row mean (n x 1), for backward
 * @param[out] rstd    per-row reciprocal stddev (n x 1), for backward
 */
Matrix layerNorm(const Matrix &x, const Matrix &gamma, const Matrix &beta,
                 Matrix &mean, Matrix &rstd, float eps = 1e-5f);

/**
 * Layer normalization backward.
 *
 * @param x       forward input
 * @param gamma   scale parameter
 * @param mean    saved per-row mean
 * @param rstd    saved per-row reciprocal stddev
 * @param dy      upstream gradient
 * @param[out] dgamma  gradient for gamma (accumulated into, 1 x d)
 * @param[out] dbeta   gradient for beta (accumulated into, 1 x d)
 * @return dx
 */
Matrix layerNormBackward(const Matrix &x, const Matrix &gamma,
                         const Matrix &mean, const Matrix &rstd,
                         const Matrix &dy, Matrix &dgamma, Matrix &dbeta);

/** Row-wise mean squared error between equal-shaped matrices. */
double mse(const Matrix &a, const Matrix &b);

/** Number of multiply-accumulate ops of matmul (m x k)*(k x n). */
uint64_t gemmMacs(size_t m, size_t k, size_t n);

/**
 * MAC count below which a GEMM-shaped kernel runs serially (the
 * measured fork/join crossover; see ops.cpp). Shared with the sparse
 * attention kernels so both layers parallelize consistently.
 */
uint64_t gemmParallelMacThreshold();

} // namespace dota
