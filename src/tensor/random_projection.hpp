/**
 * @file
 * Random projections used by the two detection mechanisms.
 *
 * DOTA's detector reduces the model dimension with an Achlioptas sparse
 * random projection P in sqrt(3/k) * {-1, 0, +1}^{d x k} (Section 3.1);
 * ELSA's detector uses dense sign random projection hashes. Both live here
 * so the detection libraries share one audited implementation.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace dota {

/**
 * Achlioptas sparse random projection matrix, d x k, entries
 * sqrt(3/k) * {+1 w.p. 1/6, 0 w.p. 2/3, -1 w.p. 1/6}.
 */
Matrix sparseRandomProjection(size_t d, size_t k, Rng &rng);

/** Dense Gaussian random projection, d x k, entries N(0, 1/sqrt(k)). */
Matrix gaussianRandomProjection(size_t d, size_t k, Rng &rng);

/**
 * Sign-random-projection hashes (ELSA-style): project each row of @p x
 * onto @p m random hyperplanes and keep the sign bits, packed into u64
 * words (m <= 64 per word group).
 */
class SignHashes
{
  public:
    /** Hash every row of @p x with @p m hyperplanes drawn from @p rng. */
    SignHashes(const Matrix &x, size_t m, Rng &rng);

    /** Hash rows of @p x with a shared, pre-drawn hyperplane matrix. */
    SignHashes(const Matrix &x, const Matrix &hyperplanes);

    size_t numRows() const { return hashes_.size(); }
    size_t numBits() const { return m_; }

    /** Hamming distance between the hashes of rows @p i and @p j. */
    uint32_t hamming(size_t i, size_t j) const;

    /**
     * ELSA's angular similarity estimate between hashed vectors:
     * cos(pi * hamming / m). Larger means the query-key angle is smaller,
     * i.e. a likely-strong connection.
     */
    double similarity(size_t i, size_t j) const;

    /** The hyperplane matrix used (d x m), for hashing other tensors. */
    const Matrix &hyperplanes() const { return planes_; }

    /** Cross-set similarity: this (queries) against @p keys. */
    double crossSimilarity(size_t qi, const SignHashes &keys,
                           size_t kj) const;

  private:
    void hashRows(const Matrix &x);

    size_t m_ = 0;
    Matrix planes_;
    std::vector<std::vector<uint64_t>> hashes_;
};

} // namespace dota
