/**
 * @file
 * Portable instantiation of the micro-kernel table, plus the dispatch
 * glue. The loops here are deliberately simple: they spell out the
 * per-element reduction contracts of gemm_kernels.hpp in the most
 * literal form, serve as the reference the AVX2 path is tested against
 * bit-for-bit, and run on any architecture. Throughput is secondary —
 * platforms with AVX2/FMA never take this path unless DOTA_SIMD
 * overrides it.
 */
#include "tensor/gemm_kernels.hpp"

#include <cmath>

namespace dota {

namespace detail {
namespace {

/**
 * Dot-family reduction (see gemm_kernels.hpp): 8 lane accumulators over
 * the main body, the fixed pairwise horizontal sum, then the scalar
 * tail folded in ascending order.
 */
float
dotPortable(const float *x, const float *y, size_t k)
{
    float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    const size_t kb = k - k % 8;
    for (size_t p = 0; p < kb; p += 8)
        for (size_t l = 0; l < 8; ++l)
            lane[l] = std::fma(x[p + l], y[p + l], lane[l]);
    const float s0 = lane[0] + lane[4];
    const float s1 = lane[1] + lane[5];
    const float s2 = lane[2] + lane[6];
    const float s3 = lane[3] + lane[7];
    float r = (s0 + s2) + (s1 + s3);
    for (size_t p = kb; p < k; ++p)
        r = std::fma(x[p], y[p], r);
    return r;
}

/** Broadcast-FMA fold, p outer so B streams row-wise; C rows zeroed. */
void
matmulRowsPortable(const Matrix &a, const Matrix &b, Matrix &c, size_t i0,
                   size_t i1)
{
    const size_t k = a.cols(), n = b.cols();
    for (size_t i = i0; i < i1; ++i) {
        float *crow = c.row(i);
        const float *arow = a.row(i);
        for (size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            const float *brow = b.row(p);
            for (size_t j = 0; j < n; ++j)
                crow[j] = std::fma(av, brow[j], crow[j]);
        }
    }
}

/** As matmulRowsPortable but A is indexed transposed: av = a(p, i). */
void
matmulATRowsPortable(const Matrix &a, const Matrix &b, Matrix &c,
                     size_t i0, size_t i1)
{
    const size_t k = a.rows(), n = b.cols();
    for (size_t i = i0; i < i1; ++i) {
        float *crow = c.row(i);
        for (size_t p = 0; p < k; ++p) {
            const float av = a.row(p)[i];
            const float *brow = b.row(p);
            for (size_t j = 0; j < n; ++j)
                crow[j] = std::fma(av, brow[j], crow[j]);
        }
    }
}

void
matmulBTRowsPortable(const Matrix &a, const Matrix &b, Matrix &c,
                     size_t i0, size_t i1)
{
    const size_t k = a.cols(), n = b.rows();
    for (size_t i = i0; i < i1; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < n; ++j)
            crow[j] = dotPortable(arow, b.row(j), k);
    }
}

void
sparseScoreRowPortable(const float *q, const Matrix &keys,
                       const uint32_t *cols, size_t nnz, float *out)
{
    const size_t k = keys.cols();
    for (size_t t = 0; t < nnz; ++t)
        out[t] = dotPortable(q, keys.row(cols[t]), k);
}

void
sparseAvRowPortable(const float *vals, const uint32_t *cols, size_t nnz,
                    const Matrix &v, float *out)
{
    const size_t d = v.cols();
    for (size_t c = 0; c < d; ++c)
        out[c] = 0.0f;
    for (size_t t = 0; t < nnz; ++t) {
        const float av = vals[t];
        const float *vrow = v.row(cols[t]);
        for (size_t c = 0; c < d; ++c)
            out[c] = std::fma(av, vrow[c], out[c]);
    }
}

/**
 * Exact s32 dot of u8 x s8 codes. Plain ascending loop — integer
 * addition is associative, so no lane-split mimicry is needed for
 * parity with the AVX2 maddubs path (see gemm_kernels.hpp).
 */
int32_t
int8DotPortable(const uint8_t *x, const int8_t *y, size_t k)
{
    int32_t acc = 0;
    for (size_t p = 0; p < k; ++p)
        acc += static_cast<int32_t>(x[p]) * static_cast<int32_t>(y[p]);
    return acc;
}

void
int8GemmBTRowsPortable(const uint8_t *a, const int8_t *b, int32_t *c,
                       size_t k, size_t n, size_t i0, size_t i1)
{
    for (size_t i = i0; i < i1; ++i) {
        const uint8_t *arow = a + i * k;
        int32_t *crow = c + i * n;
        for (size_t j = 0; j < n; ++j)
            crow[j] = int8DotPortable(arow, b + j * k, k);
    }
}

} // namespace

const GemmKernelTable &
portableGemmKernels()
{
    static const GemmKernelTable table = {
        matmulRowsPortable,   matmulATRowsPortable,
        matmulBTRowsPortable, dotPortable,
        sparseScoreRowPortable, sparseAvRowPortable,
        int8GemmBTRowsPortable, int8DotPortable,
    };
    return table;
}

} // namespace detail

const GemmKernelTable &
gemmKernels(SimdIsa isa)
{
#ifdef DOTA_SIMD_AVX2
    if (isa == SimdIsa::Avx2 && simdIsaSupported(SimdIsa::Avx2))
        return detail::avx2GemmKernels();
#else
    (void)isa;
#endif
    return detail::portableGemmKernels();
}

const GemmKernelTable &
activeGemmKernels()
{
    static const GemmKernelTable &table = gemmKernels(activeSimdIsa());
    return table;
}

} // namespace dota
