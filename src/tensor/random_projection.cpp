/**
 * @file
 * Implementation of random projections.
 */
#include "tensor/random_projection.hpp"

#include <bit>
#include <cmath>

namespace dota {

Matrix
sparseRandomProjection(size_t d, size_t k, Rng &rng)
{
    DOTA_ASSERT(k > 0, "projection rank must be positive");
    const float mag = std::sqrt(3.0f / static_cast<float>(k));
    Matrix p(d, k);
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = 0; j < k; ++j) {
            const double u = rng.uniform();
            if (u < 1.0 / 6.0)
                p(i, j) = mag;
            else if (u < 2.0 / 6.0)
                p(i, j) = -mag;
            // else 0 with probability 2/3.
        }
    }
    return p;
}

Matrix
gaussianRandomProjection(size_t d, size_t k, Rng &rng)
{
    const float stddev = 1.0f / std::sqrt(static_cast<float>(k));
    return Matrix::randomNormal(d, k, rng, 0.0f, stddev);
}

SignHashes::SignHashes(const Matrix &x, size_t m, Rng &rng)
    : m_(m), planes_(Matrix::randomNormal(x.cols(), m, rng))
{
    hashRows(x);
}

SignHashes::SignHashes(const Matrix &x, const Matrix &hyperplanes)
    : m_(hyperplanes.cols()), planes_(hyperplanes)
{
    DOTA_ASSERT(x.cols() == planes_.rows(),
                "hash input dim {} != hyperplane dim {}", x.cols(),
                planes_.rows());
    hashRows(x);
}

void
SignHashes::hashRows(const Matrix &x)
{
    const size_t words = (m_ + 63) / 64;
    hashes_.assign(x.rows(), std::vector<uint64_t>(words, 0));
    for (size_t r = 0; r < x.rows(); ++r) {
        const float *row = x.row(r);
        for (size_t b = 0; b < m_; ++b) {
            double dot = 0.0;
            for (size_t c = 0; c < x.cols(); ++c)
                dot += static_cast<double>(row[c]) * planes_(c, b);
            if (dot >= 0.0)
                hashes_[r][b / 64] |= (uint64_t{1} << (b % 64));
        }
    }
}

uint32_t
SignHashes::hamming(size_t i, size_t j) const
{
    uint32_t dist = 0;
    for (size_t w = 0; w < hashes_[i].size(); ++w)
        dist += static_cast<uint32_t>(
            std::popcount(hashes_[i][w] ^ hashes_[j][w]));
    return dist;
}

double
SignHashes::similarity(size_t i, size_t j) const
{
    const double theta =
        M_PI * static_cast<double>(hamming(i, j)) / static_cast<double>(m_);
    return std::cos(theta);
}

double
SignHashes::crossSimilarity(size_t qi, const SignHashes &keys,
                            size_t kj) const
{
    DOTA_ASSERT(m_ == keys.m_, "hash width mismatch {} vs {}", m_, keys.m_);
    uint32_t dist = 0;
    for (size_t w = 0; w < hashes_[qi].size(); ++w)
        dist += static_cast<uint32_t>(
            std::popcount(hashes_[qi][w] ^ keys.hashes_[kj][w]));
    const double theta =
        M_PI * static_cast<double>(dist) / static_cast<double>(m_);
    return std::cos(theta);
}

} // namespace dota
