/**
 * @file
 * Compact representation of a detected sparse attention graph.
 *
 * A SparseMask stores, for each query row, the list of selected key
 * column indices. It is the hand-off format between the Detector (which
 * produces it), the Scheduler (which orders its IDs for the token-parallel
 * dataflow), and the accelerator simulator (which derives cycle counts and
 * memory traffic from it). Dense n x n masks are impractical at the
 * paper's 4K sequence lengths, so everything performance-related uses this
 * type.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace dota {

/** Row-indexed sparse attention selection. */
class SparseMask
{
  public:
    SparseMask() = default;

    /** Empty mask over an @p rows x @p cols attention matrix. */
    SparseMask(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), ids_(rows)
    {}

    /** Convert a dense 0/1 mask. */
    static SparseMask fromDense(const Matrix &mask);

    /** Back to a dense 0/1 matrix (small n only; asserts on huge masks). */
    Matrix toDense() const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Selected key ids of one query row (sorted ascending). */
    const std::vector<uint32_t> &row(size_t r) const { return ids_[r]; }

    /** Replace one row's selection (kept sorted). */
    void setRow(size_t r, std::vector<uint32_t> ids);

    /** Append one connection; caller must finish with sortRows(). */
    void addConnection(size_t r, uint32_t c) { ids_[r].push_back(c); }

    /** Sort and deduplicate every row. */
    void sortRows();

    /** Total number of selected connections. */
    uint64_t nnz() const;

    /** nnz / (rows * cols). */
    double density() const;

    /** True when every row selects the same number of keys. */
    bool rowBalanced() const;

    /** Number of *distinct* keys selected by any row. */
    size_t distinctKeys() const;

    /** True if the connection (r, c) is selected (binary search). */
    bool contains(size_t r, uint32_t c) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<std::vector<uint32_t>> ids_;
};

} // namespace dota
