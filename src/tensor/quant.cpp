/**
 * @file
 * Implementation of quantization support.
 */
#include "tensor/quant.hpp"

#include <cmath>

namespace dota {

int
precisionBits(Precision p)
{
    switch (p) {
      case Precision::FP32:
        return 32;
      case Precision::FX16:
        return 16;
      case Precision::INT8:
        return 8;
      case Precision::INT4:
        return 4;
      case Precision::INT2:
        return 2;
    }
    DOTA_PANIC("unknown precision");
}

std::string
precisionName(Precision p)
{
    switch (p) {
      case Precision::FP32:
        return "FP32";
      case Precision::FX16:
        return "FX16";
      case Precision::INT8:
        return "INT8";
      case Precision::INT4:
        return "INT4";
      case Precision::INT2:
        return "INT2";
    }
    DOTA_PANIC("unknown precision");
}

Precision
precisionFromName(const std::string &name)
{
    if (name == "FP32")
        return Precision::FP32;
    if (name == "FX16")
        return Precision::FX16;
    if (name == "INT8")
        return Precision::INT8;
    if (name == "INT4")
        return Precision::INT4;
    if (name == "INT2")
        return Precision::INT2;
    DOTA_FATAL("unknown precision name '{}'", name);
}

int
rmmuMacsPerPe(Precision p)
{
    switch (p) {
      case Precision::FP32:
        return 0; // not executable on the RMMU
      case Precision::FX16:
        return 1;
      case Precision::INT8:
        return 4;
      case Precision::INT4:
        return 16;
      case Precision::INT2:
        return 64;
    }
    DOTA_PANIC("unknown precision");
}

float
symmetricScaleFromMaxAbs(float max_abs, int qmax)
{
    DOTA_ASSERT(qmax > 0, "symmetric grid needs a positive qmax");
    if (!std::isfinite(max_abs) || max_abs <= 0.0f)
        return 1.0f;
    return max_abs / static_cast<float>(qmax);
}

QuantParams
chooseSymmetricScale(const Matrix &m, int bits)
{
    DOTA_ASSERT(bits >= 2 && bits <= 16, "unsupported bit width {}", bits);
    float max_abs = 0.0f;
    for (size_t i = 0; i < m.size(); ++i) {
        const float a = std::abs(m.data()[i]);
        if (std::isfinite(a))
            max_abs = std::max(max_abs, a);
    }
    QuantParams p;
    p.bits = bits;
    p.scale = symmetricScaleFromMaxAbs(max_abs, p.qmax());
    return p;
}

namespace {

/**
 * Round x/scale to the nearest code in [qmin, qmax]. Saturates out-of-
 * range and infinite values; NaN (from a NaN input) maps to 0. A
 * degenerate scale would make the quotient Inf/NaN and std::lround of
 * that is undefined behavior, so the guard runs on the quotient itself.
 */
int
quantizeOne(float x, float scale, int qmin, int qmax)
{
    const float safe_scale =
        (std::isfinite(scale) && scale > 0.0f) ? scale : 1.0f;
    const float v = x / safe_scale;
    if (std::isnan(v))
        return 0;
    if (v >= static_cast<float>(qmax))
        return qmax;
    if (v <= static_cast<float>(qmin))
        return qmin;
    return static_cast<int>(std::lround(v));
}

} // namespace

QuantizedMatrix
quantize(const Matrix &m, QuantParams params)
{
    QuantizedMatrix q(m.rows(), m.cols(), params);
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            q.at(r, c) = static_cast<int16_t>(quantizeOne(
                m(r, c), params.scale, params.qmin(), params.qmax()));
    return q;
}

QuantizedMatrix
quantize(const Matrix &m, int bits)
{
    return quantize(m, chooseSymmetricScale(m, bits));
}

Matrix
dequantize(const QuantizedMatrix &q)
{
    Matrix m(q.rows(), q.cols());
    for (size_t r = 0; r < q.rows(); ++r)
        for (size_t c = 0; c < q.cols(); ++c)
            m(r, c) = static_cast<float>(q.at(r, c)) * q.params().scale;
    return m;
}

Matrix
fakeQuant(const Matrix &m, int bits)
{
    if (bits >= 32)
        return m;
    return dequantize(quantize(m, bits));
}

size_t
QuantizedMatrix::packedBytes() const
{
    const size_t bits = static_cast<size_t>(params_.bits) * rows_ * cols_;
    return (bits + 7) / 8;
}

Matrix
quantizedMatmulBT(const QuantizedMatrix &a, const QuantizedMatrix &b)
{
    DOTA_ASSERT(a.cols() == b.cols(), "quantizedMatmulBT {}x{} * {}x{}^T",
                a.rows(), a.cols(), b.rows(), b.cols());
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    const float out_scale = a.params().scale * b.params().scale;
    Matrix c(m, n);
    for (size_t i = 0; i < m; ++i) {
        const int16_t *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < n; ++j) {
            const int16_t *brow = b.row(j);
            int64_t acc = 0; // hardware uses a wide PSUM accumulator
            for (size_t p = 0; p < k; ++p)
                acc += static_cast<int32_t>(arow[p]) * brow[p];
            crow[j] = static_cast<float>(acc) * out_scale;
        }
    }
    return c;
}

} // namespace dota
