/**
 * @file
 * AVX2/FMA instantiation of the micro-kernel table. This translation
 * unit is the only one compiled with -mavx2 -mfma (CMake option
 * DOTA_SIMD); it is entered only after a runtime cpuid check, so the
 * rest of the binary stays runnable on any x86-64.
 *
 * Every kernel honors the per-element reduction contracts of
 * gemm_kernels.hpp, which makes the outputs bit-identical to the
 * portable table:
 *
 *  - broadcast-FMA kernels put adjacent output *columns* in vector
 *    lanes and run the p-fold in ascending order with vfmadd, exactly
 *    the fold std::fma performs per element in the portable path;
 *  - dot-family kernels keep one YMM accumulator (the 8-way lane
 *    split), reduce it with the canonical extract/movehl/shuffle
 *    horizontal sum — the pairwise order the contract fixes — and fold
 *    the scalar tail last.
 *
 * The GEMM driver is cache-blocked and register-tiled: output tiles of
 * 4 rows x 16 columns (8 YMM accumulators) are computed per k-sweep,
 * and the j-panel loop is outermost so the 16-column panel of B stays
 * L1-resident while A streams. See DESIGN.md §11 for the measured
 * throughput.
 */
#include "tensor/gemm_kernels.hpp"

#include <cmath>
#include <immintrin.h>
#include <type_traits>

namespace dota {
namespace detail {
namespace {

/** Contract-fixed horizontal sum: (l0+l4 + l2+l6) + (l1+l5 + l3+l7). */
inline float
hsum8(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    const __m128 q = _mm_add_ps(lo, hi); // s_l = lane[l] + lane[l+4]
    const __m128 h = _mm_add_ps(q, _mm_movehl_ps(q, q)); // s0+s2, s1+s3
    const __m128 t = _mm_add_ss(h, _mm_shuffle_ps(h, h, 0x55));
    return _mm_cvtss_f32(t);
}

float
dotAvx2(const float *x, const float *y, size_t k)
{
    __m256 acc = _mm256_setzero_ps();
    const size_t kb = k - k % 8;
    for (size_t p = 0; p < kb; p += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + p),
                              _mm256_loadu_ps(y + p), acc);
    float r = hsum8(acc);
    for (size_t p = kb; p < k; ++p)
        r = std::fma(x[p], y[p], r);
    return r;
}

/**
 * Four dot products sharing the query vector loads: out[c] =
 * dot(x, y[c]) with the exact same per-element sequence as dotAvx2.
 */
inline void
dot4Avx2(const float *x, const float *const y[4], size_t k, float *out)
{
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    const size_t kb = k - k % 8;
    for (size_t p = 0; p < kb; p += 8) {
        const __m256 xv = _mm256_loadu_ps(x + p);
        a0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y[0] + p), a0);
        a1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y[1] + p), a1);
        a2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y[2] + p), a2);
        a3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(y[3] + p), a3);
    }
    out[0] = hsum8(a0);
    out[1] = hsum8(a1);
    out[2] = hsum8(a2);
    out[3] = hsum8(a3);
    for (size_t p = kb; p < k; ++p) {
        out[0] = std::fma(x[p], y[0][p], out[0]);
        out[1] = std::fma(x[p], y[1][p], out[1]);
        out[2] = std::fma(x[p], y[2][p], out[2]);
        out[3] = std::fma(x[p], y[3][p], out[3]);
    }
}

/**
 * MR x 16 register tile of the broadcast-FMA GEMM. The A element for
 * output row r at reduction step p sits at a[r * ra + p * pa]: ra=lda,
 * pa=1 expresses C = A*B; ra=1, pa=lda expresses C = A^T*B.
 */
template <int MR>
inline void
micro16(const float *a, size_t ra, size_t pa, const float *b, size_t ldb,
        float *c, size_t ldc, size_t k)
{
    __m256 acc[MR][2];
    for (int r = 0; r < MR; ++r)
        acc[r][0] = acc[r][1] = _mm256_setzero_ps();
    for (size_t p = 0; p < k; ++p) {
        const float *brow = b + p * ldb;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (int r = 0; r < MR; ++r) {
            const __m256 av = _mm256_set1_ps(a[r * ra + p * pa]);
            acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
            acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
    }
    for (int r = 0; r < MR; ++r) {
        _mm256_storeu_ps(c + r * ldc, acc[r][0]);
        _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
    }
}

/** MR x 8 edge tile (single-vector column panel). */
template <int MR>
inline void
micro8(const float *a, size_t ra, size_t pa, const float *b, size_t ldb,
       float *c, size_t ldc, size_t k)
{
    __m256 acc[MR];
    for (int r = 0; r < MR; ++r)
        acc[r] = _mm256_setzero_ps();
    for (size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * ldb);
        for (int r = 0; r < MR; ++r)
            acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(a[r * ra + p * pa]),
                                     bv, acc[r]);
    }
    for (int r = 0; r < MR; ++r)
        _mm256_storeu_ps(c + r * ldc, acc[r]);
}

/**
 * Shared broadcast-FMA GEMM driver over output rows [i0, i1). The
 * 16-wide j-panel loop is outermost so B's panel stays hot in L1 while
 * the i loop streams A; scalar tail columns replay the identical
 * per-element fold with std::fma (compiled to vfmadd in this TU).
 */
void
gemmBroadcastRows(const float *a, size_t ra, size_t pa, const Matrix &b,
                  Matrix &c, size_t i0, size_t i1, size_t k)
{
    const size_t n = b.cols();
    const size_t ldb = n, ldc = n;
    const float *bd = b.data();
    float *cd = c.data();
    const size_t n16 = n - n % 16;
    const size_t n8 = n - n % 8;

    auto rowTiles = [&](auto &&tile, size_t j0) {
        size_t i = i0;
        for (; i + 4 <= i1; i += 4)
            tile(std::integral_constant<int, 4>{}, i, j0);
        switch (i1 - i) {
        case 3:
            tile(std::integral_constant<int, 3>{}, i, j0);
            break;
        case 2:
            tile(std::integral_constant<int, 2>{}, i, j0);
            break;
        case 1:
            tile(std::integral_constant<int, 1>{}, i, j0);
            break;
        default:
            break;
        }
    };

    for (size_t j0 = 0; j0 < n16; j0 += 16)
        rowTiles(
            [&](auto mr, size_t i, size_t j) {
                micro16<decltype(mr)::value>(a + i * ra, ra, pa, bd + j,
                                             ldb, cd + i * ldc + j, ldc,
                                             k);
            },
            j0);
    if (n8 > n16)
        rowTiles(
            [&](auto mr, size_t i, size_t j) {
                micro8<decltype(mr)::value>(a + i * ra, ra, pa, bd + j,
                                            ldb, cd + i * ldc + j, ldc,
                                            k);
            },
            n16);
    // Scalar tail columns: same ascending-p fold per element.
    for (size_t i = i0; i < i1; ++i) {
        float *crow = cd + i * ldc;
        const float *ai = a + i * ra;
        for (size_t j = n8; j < n; ++j) {
            float acc = 0.0f;
            for (size_t p = 0; p < k; ++p)
                acc = std::fma(ai[p * pa], bd[p * ldb + j], acc);
            crow[j] = acc;
        }
    }
}

void
matmulRowsAvx2(const Matrix &a, const Matrix &b, Matrix &c, size_t i0,
               size_t i1)
{
    gemmBroadcastRows(a.data(), a.cols(), 1, b, c, i0, i1, a.cols());
}

void
matmulATRowsAvx2(const Matrix &a, const Matrix &b, Matrix &c, size_t i0,
                 size_t i1)
{
    gemmBroadcastRows(a.data(), 1, a.cols(), b, c, i0, i1, a.rows());
}

void
matmulBTRowsAvx2(const Matrix &a, const Matrix &b, Matrix &c, size_t i0,
                 size_t i1)
{
    const size_t k = a.cols(), n = b.rows();
    for (size_t i = i0; i < i1; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const float *rows[4] = {b.row(j), b.row(j + 1), b.row(j + 2),
                                    b.row(j + 3)};
            dot4Avx2(arow, rows, k, crow + j);
        }
        for (; j < n; ++j)
            crow[j] = dotAvx2(arow, b.row(j), k);
    }
}

void
sparseScoreRowAvx2(const float *q, const Matrix &keys,
                   const uint32_t *cols, size_t nnz, float *out)
{
    const size_t k = keys.cols();
    size_t t = 0;
    for (; t + 4 <= nnz; t += 4) {
        const float *rows[4] = {keys.row(cols[t]), keys.row(cols[t + 1]),
                                keys.row(cols[t + 2]),
                                keys.row(cols[t + 3])};
        dot4Avx2(q, rows, k, out + t);
    }
    for (; t < nnz; ++t)
        out[t] = dotAvx2(q, keys.row(cols[t]), k);
}

void
sparseAvRowAvx2(const float *vals, const uint32_t *cols, size_t nnz,
                const Matrix &v, float *out)
{
    const size_t d = v.cols();
    const size_t ldv = d;
    const float *vd = v.data();
    size_t c0 = 0;
    // 64-column register panel: the whole output slice lives in 8 YMM
    // accumulators across the t-fold, so V rows are touched once each.
    for (; c0 + 64 <= d; c0 += 64) {
        __m256 acc[8];
        for (int u = 0; u < 8; ++u)
            acc[u] = _mm256_setzero_ps();
        for (size_t t = 0; t < nnz; ++t) {
            const __m256 av = _mm256_set1_ps(vals[t]);
            const float *vrow = vd + cols[t] * ldv + c0;
            for (int u = 0; u < 8; ++u)
                acc[u] = _mm256_fmadd_ps(
                    av, _mm256_loadu_ps(vrow + 8 * u), acc[u]);
        }
        for (int u = 0; u < 8; ++u)
            _mm256_storeu_ps(out + c0 + 8 * u, acc[u]);
    }
    for (; c0 + 8 <= d; c0 += 8) {
        __m256 acc = _mm256_setzero_ps();
        for (size_t t = 0; t < nnz; ++t)
            acc = _mm256_fmadd_ps(
                _mm256_set1_ps(vals[t]),
                _mm256_loadu_ps(vd + cols[t] * ldv + c0), acc);
        _mm256_storeu_ps(out + c0, acc);
    }
    for (; c0 < d; ++c0) {
        float acc = 0.0f;
        for (size_t t = 0; t < nnz; ++t)
            acc = std::fma(vals[t], vd[cols[t] * ldv + c0], acc);
        out[c0] = acc;
    }
}

/*
 * ---- int8 family -------------------------------------------------------
 *
 * u8 x s8 codes, exact s32 sums. One k-step consumes 32 bytes per
 * operand row: vpmaddubsw forms 16 s16 pair products a_p*b_p + a_{p+1}*
 * b_{p+1} (saturating, but the quantizer bounds u8 codes to [0, 127] so
 * the pair sum tops out at 32258 and never saturates — the kernel is
 * exact), then vpmaddwd against ones widens pairs to 8 s32 partials
 * which accumulate with vpaddd. Integer addition is associative, so no
 * reduction-order contract is needed for portable parity.
 */

/** Sum the 8 s32 lanes of @p v. */
inline int32_t
hsumEpi32(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
    return _mm_cvtsi128_si32(s);
}

/** One maddubs k-step: 32 u8 x s8 products folded into 8 s32 lanes. */
inline __m256i
maddStep(__m256i acc, const uint8_t *x, const int8_t *y, size_t p)
{
    const __m256i ones = _mm256_set1_epi16(1);
    const __m256i xv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + p));
    const __m256i yv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(y + p));
    const __m256i pair = _mm256_maddubs_epi16(xv, yv);
    return _mm256_add_epi32(acc, _mm256_madd_epi16(pair, ones));
}

int32_t
int8DotAvx2(const uint8_t *x, const int8_t *y, size_t k)
{
    __m256i acc = _mm256_setzero_si256();
    const size_t kb = k - k % 32;
    for (size_t p = 0; p < kb; p += 32)
        acc = maddStep(acc, x, y, p);
    int32_t r = hsumEpi32(acc);
    for (size_t p = kb; p < k; ++p)
        r += static_cast<int32_t>(x[p]) * static_cast<int32_t>(y[p]);
    return r;
}

/**
 * Reduce four 8-lane s32 accumulators to their lane sums packed as
 * [sum v0, sum v1, sum v2, sum v3].
 */
inline __m128i
hsum4Epi32(__m256i v0, __m256i v1, __m256i v2, __m256i v3)
{
    const __m256i s01 = _mm256_hadd_epi32(v0, v1);
    const __m256i s23 = _mm256_hadd_epi32(v2, v3);
    const __m256i s = _mm256_hadd_epi32(s01, s23);
    return _mm_add_epi32(_mm256_castsi256_si128(s),
                         _mm256_extracti128_si256(s, 1));
}

/**
 * 2 x 4 register tile: 2 A rows against 4 B rows, 8 YMM accumulators,
 * 6 loads per 32-element k-step. Tails fall back to int8DotAvx2 —
 * exactness makes any decomposition equivalent.
 */
void
int8GemmBTRowsAvx2(const uint8_t *a, const int8_t *b, int32_t *c,
                   size_t k, size_t n, size_t i0, size_t i1)
{
    const __m256i ones = _mm256_set1_epi16(1);
    const size_t kb = k - k % 32;
    size_t i = i0;
    for (; i + 2 <= i1; i += 2) {
        const uint8_t *a0 = a + i * k;
        const uint8_t *a1 = a0 + k;
        int32_t *c0 = c + i * n;
        int32_t *c1 = c0 + n;
        size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const int8_t *b0 = b + j * k;
            const int8_t *b1 = b0 + k;
            const int8_t *b2 = b1 + k;
            const int8_t *b3 = b2 + k;
            __m256i acc[2][4];
            for (int r = 0; r < 2; ++r)
                for (int s = 0; s < 4; ++s)
                    acc[r][s] = _mm256_setzero_si256();
            for (size_t p = 0; p < kb; p += 32) {
                const __m256i av0 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a0 + p));
                const __m256i av1 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a1 + p));
                const int8_t *brows[4] = {b0 + p, b1 + p, b2 + p, b3 + p};
                for (int s = 0; s < 4; ++s) {
                    const __m256i bv = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(brows[s]));
                    acc[0][s] = _mm256_add_epi32(
                        acc[0][s],
                        _mm256_madd_epi16(_mm256_maddubs_epi16(av0, bv),
                                          ones));
                    acc[1][s] = _mm256_add_epi32(
                        acc[1][s],
                        _mm256_madd_epi16(_mm256_maddubs_epi16(av1, bv),
                                          ones));
                }
            }
            __m128i r0 = hsum4Epi32(acc[0][0], acc[0][1], acc[0][2],
                                    acc[0][3]);
            __m128i r1 = hsum4Epi32(acc[1][0], acc[1][1], acc[1][2],
                                    acc[1][3]);
            if (kb < k) {
                alignas(16) int32_t t0[4], t1[4];
                _mm_storeu_si128(reinterpret_cast<__m128i *>(t0), r0);
                _mm_storeu_si128(reinterpret_cast<__m128i *>(t1), r1);
                const int8_t *brows[4] = {b0, b1, b2, b3};
                for (size_t p = kb; p < k; ++p)
                    for (int s = 0; s < 4; ++s) {
                        t0[s] += static_cast<int32_t>(a0[p]) * brows[s][p];
                        t1[s] += static_cast<int32_t>(a1[p]) * brows[s][p];
                    }
                r0 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(t0));
                r1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(t1));
            }
            _mm_storeu_si128(reinterpret_cast<__m128i *>(c0 + j), r0);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(c1 + j), r1);
        }
        for (; j < n; ++j) {
            const int8_t *brow = b + j * k;
            c0[j] = int8DotAvx2(a0, brow, k);
            c1[j] = int8DotAvx2(a1, brow, k);
        }
    }
    for (; i < i1; ++i) {
        const uint8_t *arow = a + i * k;
        int32_t *crow = c + i * n;
        for (size_t j = 0; j < n; ++j)
            crow[j] = int8DotAvx2(arow, b + j * k, k);
    }
}

} // namespace

const GemmKernelTable &
avx2GemmKernels()
{
    static const GemmKernelTable table = {
        matmulRowsAvx2,   matmulATRowsAvx2, matmulBTRowsAvx2,
        dotAvx2,          sparseScoreRowAvx2, sparseAvRowAvx2,
        int8GemmBTRowsAvx2, int8DotAvx2,
    };
    return table;
}

} // namespace detail
} // namespace dota
