/**
 * @file
 * Implementation of the dense matrix type.
 */
#include "tensor/matrix.hpp"

#include <cmath>

namespace dota {

Matrix
Matrix::randomNormal(size_t rows, size_t cols, Rng &rng, float mean,
                     float stddev)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(mean, stddev));
    return m;
}

Matrix
Matrix::randomUniform(size_t rows, size_t cols, Rng &rng, float lo, float hi)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.uniform(lo, hi));
    return m;
}

Matrix
Matrix::xavier(size_t fan_in, size_t fan_out, Rng &rng)
{
    const float limit =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    return randomUniform(fan_in, fan_out, rng, -limit, limit);
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0f;
    return m;
}

Matrix
Matrix::rowCopy(size_t r) const
{
    DOTA_ASSERT(r < rows_, "row {} out of {}", r, rows_);
    Matrix out(1, cols_);
    std::copy(row(r), row(r) + cols_, out.data());
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += static_cast<double>(v) * static_cast<double>(v);
    return std::sqrt(acc);
}

double
Matrix::sum() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += v;
    return acc;
}

double
Matrix::maxAbsDiff(const Matrix &a, const Matrix &b)
{
    DOTA_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                "shape mismatch {} vs {}", a.shapeStr(), b.shapeStr());
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = std::abs(static_cast<double>(a.data()[i]) -
                                  static_cast<double>(b.data()[i]));
        worst = std::max(worst, d);
    }
    return worst;
}

bool
Matrix::allClose(const Matrix &a, const Matrix &b, double tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return maxAbsDiff(a, b) <= tol;
}

std::string
Matrix::shapeStr() const
{
    return format("Matrix({}x{})", rows_, cols_);
}

} // namespace dota
