/**
 * @file
 * Implementation of the dense kernels.
 */
#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.hpp"
#include "tensor/gemm_kernels.hpp"

namespace dota {

namespace {

/**
 * Below this many MACs a GEMM stays serial: the fork/join cost of
 * parallelFor outweighs the arithmetic. Re-derived for the vectorized
 * kernels (the scalar kernels that set the old 2^18 boundary retired
 * ~1.6 GMAC/s single-thread; the AVX2/FMA kernels measure ~8-13 GMAC/s
 * via bench_kernels, an ~8x faster inner loop), so the crossover moves
 * up by the same factor: 2^21 MACs is ~250 us of serial work on the
 * reference box — still ~25x the measured fork/join cost — and keeps
 * the 64^3 layer-sized products (2^18) comfortably serial while every
 * 512-token attention product (>= 2^24) stays parallel.
 */
constexpr uint64_t kParallelMacThreshold = 1ull << 21;

/**
 * Row-block grain: ~4 chunks per thread so dynamic chunk claiming evens
 * out load without creating per-row scheduling overhead. Re-checked for
 * the vectorized kernels: at the new threshold the smallest parallel
 * GEMM (128^3) still gives each of the 4 chunks/thread >= 4 rows of
 * ~16k MACs each (~2 us), two orders of magnitude above the per-chunk
 * claim cost, so the policy carries over unchanged. Each output row is
 * written by exactly one chunk, so results are bit-identical for every
 * thread count (the determinism contract in common/thread_pool.hpp).
 */
size_t
gemmGrain(size_t rows)
{
    const size_t conc = ThreadPool::globalConcurrency();
    return std::max<size_t>(1, rows / (4 * conc));
}

} // namespace

uint64_t
gemmParallelMacThreshold()
{
    return kParallelMacThreshold;
}

/*
 * The three GEMMs route through the ISA-dispatched micro-kernel tables
 * (tensor/gemm_kernels.hpp). The dense inner loops deliberately do NOT
 * skip zero multiplicands: the old `av == 0.0f` shortcut silently
 * turned 0 * Inf/NaN into 0 instead of NaN and put an unpredictable
 * branch in the hot loop. Sparsity now lives in the Level-2 kernels
 * (tensor/sparse_ops.hpp), which skip *coordinates*, not values.
 */

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    DOTA_ASSERT(a.cols() == b.rows(), "matmul {} * {}", a.shapeStr(),
                b.shapeStr());
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    Matrix c(m, n);
    const auto &kt = activeGemmKernels();
    auto rowBlock = [&](size_t i0, size_t i1) {
        kt.matmulRows(a, b, c, i0, i1);
    };
    if (gemmMacs(m, k, n) < kParallelMacThreshold)
        rowBlock(0, m);
    else
        parallelFor(0, m, gemmGrain(m), rowBlock);
    return c;
}

Matrix
matmulBT(const Matrix &a, const Matrix &b)
{
    DOTA_ASSERT(a.cols() == b.cols(), "matmulBT {} * {}^T", a.shapeStr(),
                b.shapeStr());
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    Matrix c(m, n);
    const auto &kt = activeGemmKernels();
    auto rowBlock = [&](size_t i0, size_t i1) {
        kt.matmulBTRows(a, b, c, i0, i1);
    };
    if (gemmMacs(m, k, n) < kParallelMacThreshold)
        rowBlock(0, m);
    else
        parallelFor(0, m, gemmGrain(m), rowBlock);
    return c;
}

Matrix
matmulAT(const Matrix &a, const Matrix &b)
{
    DOTA_ASSERT(a.rows() == b.rows(), "matmulAT {}^T * {}", a.shapeStr(),
                b.shapeStr());
    const size_t m = a.cols(), k = a.rows(), n = b.cols();
    Matrix c(m, n);
    const auto &kt = activeGemmKernels();
    auto rowBlock = [&](size_t i0, size_t i1) {
        kt.matmulATRows(a, b, c, i0, i1);
    };
    if (gemmMacs(m, k, n) < kParallelMacThreshold)
        rowBlock(0, m);
    else
        parallelFor(0, m, gemmGrain(m), rowBlock);
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

namespace {

void
assertSameShape(const Matrix &a, const Matrix &b, const char *what)
{
    DOTA_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                "{}: shape mismatch {} vs {}", what, a.shapeStr(),
                b.shapeStr());
}

} // namespace

Matrix
add(const Matrix &a, const Matrix &b)
{
    assertSameShape(a, b, "add");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] + b.data()[i];
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    assertSameShape(a, b, "sub");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] - b.data()[i];
    return c;
}

Matrix
hadamard(const Matrix &a, const Matrix &b)
{
    assertSameShape(a, b, "hadamard");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * b.data()[i];
    return c;
}

Matrix
scale(const Matrix &a, float s)
{
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * s;
    return c;
}

Matrix
addRowBroadcast(const Matrix &a, const Matrix &bias)
{
    DOTA_ASSERT(bias.rows() == 1 && bias.cols() == a.cols(),
                "bias {} incompatible with {}", bias.shapeStr(),
                a.shapeStr());
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            c(i, j) = a(i, j) + bias(0, j);
    return c;
}

Matrix
rowSoftmax(const Matrix &a)
{
    Matrix y(a.rows(), a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *x = a.row(i);
        float *out = y.row(i);
        float mx = -std::numeric_limits<float>::infinity();
        for (size_t j = 0; j < a.cols(); ++j)
            mx = std::max(mx, x[j]);
        double denom = 0.0;
        for (size_t j = 0; j < a.cols(); ++j) {
            out[j] = std::exp(x[j] - mx);
            denom += out[j];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (size_t j = 0; j < a.cols(); ++j)
            out[j] *= inv;
    }
    return y;
}

Matrix
rowSoftmaxMasked(const Matrix &a, const Matrix &mask)
{
    assertSameShape(a, mask, "rowSoftmaxMasked");
    Matrix y(a.rows(), a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *x = a.row(i);
        const float *m = mask.row(i);
        float *out = y.row(i);
        float mx = -std::numeric_limits<float>::infinity();
        bool any = false;
        for (size_t j = 0; j < a.cols(); ++j) {
            if (m[j] != 0.0f) {
                mx = std::max(mx, x[j]);
                any = true;
            }
        }
        if (!any)
            continue; // row stays zero: no incoming edges.
        double denom = 0.0;
        for (size_t j = 0; j < a.cols(); ++j) {
            if (m[j] != 0.0f) {
                out[j] = std::exp(x[j] - mx);
                denom += out[j];
            }
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (size_t j = 0; j < a.cols(); ++j)
            out[j] *= inv;
    }
    return y;
}

Matrix
rowSoftmaxBackward(const Matrix &y, const Matrix &dy)
{
    assertSameShape(y, dy, "rowSoftmaxBackward");
    Matrix dx(y.rows(), y.cols());
    for (size_t i = 0; i < y.rows(); ++i) {
        const float *yr = y.row(i);
        const float *dyr = dy.row(i);
        double dot = 0.0;
        for (size_t j = 0; j < y.cols(); ++j)
            dot += static_cast<double>(yr[j]) * dyr[j];
        float *dxr = dx.row(i);
        for (size_t j = 0; j < y.cols(); ++j)
            dxr[j] = yr[j] * (dyr[j] - static_cast<float>(dot));
    }
    return dx;
}

Matrix
relu(const Matrix &a)
{
    Matrix y(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        y.data()[i] = a.data()[i] > 0.0f ? a.data()[i] : 0.0f;
    return y;
}

Matrix
reluBackward(const Matrix &x, const Matrix &dy)
{
    assertSameShape(x, dy, "reluBackward");
    Matrix dx(x.rows(), x.cols());
    for (size_t i = 0; i < x.size(); ++i)
        dx.data()[i] = x.data()[i] > 0.0f ? dy.data()[i] : 0.0f;
    return dx;
}

namespace {

constexpr float kGeluC = 0.7978845608028654f; // sqrt(2/pi)

} // namespace

Matrix
gelu(const Matrix &a)
{
    Matrix y(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i) {
        const float x = a.data()[i];
        const float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
        y.data()[i] = 0.5f * x * (1.0f + t);
    }
    return y;
}

Matrix
geluBackward(const Matrix &xin, const Matrix &dy)
{
    assertSameShape(xin, dy, "geluBackward");
    Matrix dx(xin.rows(), xin.cols());
    for (size_t i = 0; i < xin.size(); ++i) {
        const float x = xin.data()[i];
        const float u = kGeluC * (x + 0.044715f * x * x * x);
        const float t = std::tanh(u);
        const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
        const float grad =
            0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
        dx.data()[i] = dy.data()[i] * grad;
    }
    return dx;
}

Matrix
layerNorm(const Matrix &x, const Matrix &gamma, const Matrix &beta,
          Matrix &mean, Matrix &rstd, float eps)
{
    const size_t n = x.rows(), d = x.cols();
    DOTA_ASSERT(gamma.cols() == d && beta.cols() == d,
                "layerNorm params must be 1x{}", d);
    Matrix y(n, d);
    mean = Matrix(n, 1);
    rstd = Matrix(n, 1);
    for (size_t i = 0; i < n; ++i) {
        const float *xr = x.row(i);
        double mu = 0.0;
        for (size_t j = 0; j < d; ++j)
            mu += xr[j];
        mu /= static_cast<double>(d);
        double var = 0.0;
        for (size_t j = 0; j < d; ++j) {
            const double c = xr[j] - mu;
            var += c * c;
        }
        var /= static_cast<double>(d);
        const float rs = static_cast<float>(1.0 / std::sqrt(var + eps));
        mean(i, 0) = static_cast<float>(mu);
        rstd(i, 0) = rs;
        float *yr = y.row(i);
        for (size_t j = 0; j < d; ++j)
            yr[j] = (xr[j] - static_cast<float>(mu)) * rs * gamma(0, j) +
                    beta(0, j);
    }
    return y;
}

Matrix
layerNormBackward(const Matrix &x, const Matrix &gamma, const Matrix &mean,
                  const Matrix &rstd, const Matrix &dy, Matrix &dgamma,
                  Matrix &dbeta)
{
    const size_t n = x.rows(), d = x.cols();
    if (dgamma.cols() != d)
        dgamma = Matrix(1, d);
    if (dbeta.cols() != d)
        dbeta = Matrix(1, d);
    Matrix dx(n, d);
    for (size_t i = 0; i < n; ++i) {
        const float *xr = x.row(i);
        const float *dyr = dy.row(i);
        const float mu = mean(i, 0);
        const float rs = rstd(i, 0);
        // xhat_j = (x_j - mu) * rs; dy_j flows through gamma.
        double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
        for (size_t j = 0; j < d; ++j) {
            const float xhat = (xr[j] - mu) * rs;
            const float dxhat = dyr[j] * gamma(0, j);
            sum_dxhat += dxhat;
            sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
            dgamma(0, j) += dyr[j] * xhat;
            dbeta(0, j) += dyr[j];
        }
        float *dxr = dx.row(i);
        const double inv_d = 1.0 / static_cast<double>(d);
        for (size_t j = 0; j < d; ++j) {
            const float xhat = (xr[j] - mu) * rs;
            const float dxhat = dyr[j] * gamma(0, j);
            dxr[j] = static_cast<float>(
                rs * (dxhat - inv_d * sum_dxhat - xhat * inv_d *
                      sum_dxhat_xhat));
        }
    }
    return dx;
}

double
mse(const Matrix &a, const Matrix &b)
{
    assertSameShape(a, b, "mse");
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a.data()[i]) - b.data()[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

uint64_t
gemmMacs(size_t m, size_t k, size_t n)
{
    return static_cast<uint64_t>(m) * k * n;
}

} // namespace dota
