/**
 * @file
 * Level-1 dense micro-kernels: the ISA-dispatched inner loops behind
 * matmul / matmulBT / matmulAT and the Level-2 sparse attention kernels
 * (DESIGN.md §11).
 *
 * Each kernel exists once per SimdIsa (portable C++ and AVX2/FMA). The
 * two instantiations are bit-identical by construction because every
 * kernel honors a fixed **per-element reduction contract** — vector
 * lanes never interact across output elements, so only the per-element
 * order of operations matters, and that order is part of the interface:
 *
 *  - **Broadcast-FMA family** (matmulRows, matmulATRows, sparseAvRow):
 *    each output element is an independent fold over the reduction
 *    index p in ascending order,
 *        acc_0 = 0;  acc_{p+1} = fma(a_p, b_p, acc_p)
 *    with fma the correctly-rounded fused multiply-add (std::fma in the
 *    portable path, vfmadd in AVX2). Tiling/blocking only reorders
 *    *which* elements are in flight, never the fold inside one element.
 *
 *  - **Dot family** (dot, matmulBTRows, sparseScoreRow): the reduction
 *    over p is lane-split exactly 8 ways. With kb = k - k % 8:
 *        lane[l] = fold of fma over p in {l, l+8, ...} ∩ [0, kb)
 *        s_l = lane[l] + lane[l+4]          (l = 0..3)
 *        r   = (s_0 + s_2) + (s_1 + s_3)
 *        r   = fma(x[p], y[p], r)           for p in [kb, k) ascending
 *    This mirrors one YMM accumulator plus the canonical 128-bit
 *    horizontal sum, and the portable path replays the identical
 *    sequence with 8 scalar accumulators.
 *
 * Because each element is produced by exactly one kernel invocation and
 * the row-block partitioning of tensor/ops.cpp assigns every output row
 * to exactly one chunk, results are additionally bit-identical across
 * every DOTA_THREADS value (the PR 1 determinism contract).
 *
 * These entry points are consumed by tensor/ops.cpp and
 * tensor/sparse_ops.cpp; application code should keep calling the
 * Matrix-level kernels in tensor/ops.hpp.
 */
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"
#include "tensor/simd.hpp"

namespace dota {

/** One ISA's instantiation of the micro-kernel entry points. */
struct GemmKernelTable
{
    /**
     * C rows [i0, i1) of C = A * B, overwriting rows assumed zeroed.
     * Per element: broadcast-FMA fold over p ascending.
     */
    void (*matmulRows)(const Matrix &a, const Matrix &b, Matrix &c,
                       size_t i0, size_t i1);

    /** C rows [i0, i1) of C = A^T * B (same contract as matmulRows). */
    void (*matmulATRows)(const Matrix &a, const Matrix &b, Matrix &c,
                         size_t i0, size_t i1);

    /**
     * C rows [i0, i1) of C = A * B^T. Per element: dot-family lane-split
     * reduction over the shared dimension.
     */
    void (*matmulBTRows)(const Matrix &a, const Matrix &b, Matrix &c,
                         size_t i0, size_t i1);

    /** Lane-split dot product of x[0..k) and y[0..k) (dot family). */
    float (*dot)(const float *x, const float *y, size_t k);

    /**
     * One query row of the sparse score kernel: out[t] = dot(q, keys row
     * cols[t]) for t in [0, nnz), each element following the dot-family
     * contract with k = keys.cols().
     */
    void (*sparseScoreRow)(const float *q, const Matrix &keys,
                           const uint32_t *cols, size_t nnz, float *out);

    /**
     * One output row of the sparse A*V kernel: for c in [0, v.cols()),
     * out[c] = broadcast-FMA fold over t ascending of
     * fma(vals[t], v(cols[t], c), acc), overwriting out.
     */
    void (*sparseAvRow)(const float *vals, const uint32_t *cols,
                        size_t nnz, const Matrix &v, float *out);

    /**
     * Integer GEMM rows [i0, i1) of C = A * B^T on quantized codes:
     * A is m x k unsigned 8-bit codes (row-major, lda = k), B is n x k
     * signed 8-bit codes (row-major, ldb = k), C is m x n raw sums
     *     C[i*n + j] = sum_p a[i*k + p] * b[j*k + p]
     * in 32-bit integers, overwriting C rows.
     *
     * Unlike the float families above, no reduction-order contract is
     * needed: s32 addition is associative and the operand ranges are
     * chosen so the AVX2 maddubs path cannot saturate (u8 codes stay in
     * [0, 127] and s8 codes in [-127, 127], so a maddubs pair sum is at
     * most 127*127*2 = 32258 < 32767). Every instantiation is therefore
     * exact — portable/AVX2/any-thread-count parity holds by arithmetic,
     * not by convention. Caller guarantees k*16129 < 2^31 (k <= ~133k).
     * Zero-point compensation is the caller's job (tensor/quant.cpp).
     */
    void (*int8GemmBTRows)(const uint8_t *a, const int8_t *b, int32_t *c,
                           size_t k, size_t n, size_t i0, size_t i1);

    /** Exact s32 dot of u8 codes x[0..k) and s8 codes y[0..k). */
    int32_t (*int8Dot)(const uint8_t *x, const int8_t *y, size_t k);
};

/**
 * Kernel table for @p isa; degrades to the portable table when the
 * requested instantiation is not compiled into the binary.
 */
const GemmKernelTable &gemmKernels(SimdIsa isa);

/** Table for activeSimdIsa(), resolved once per process. */
const GemmKernelTable &activeGemmKernels();

namespace detail {

/** Portable (plain C++, std::fma) instantiation. */
const GemmKernelTable &portableGemmKernels();

#ifdef DOTA_SIMD_AVX2
/** AVX2/FMA instantiation (gemm_avx2.cpp, compiled with -mavx2 -mfma). */
const GemmKernelTable &avx2GemmKernels();
#endif

} // namespace detail

} // namespace dota
