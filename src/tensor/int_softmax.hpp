/**
 * @file
 * Integer-only softmax over raw int32 attention scores, following the
 * shifted-exponential construction of ITA (PAPERS.md): softmax is
 * computed entirely in integer arithmetic by rewriting each exponential
 * relative to the row maximum in base 2,
 *
 *     exp(-(max - s_j) * scale) = 2^(-z_j),
 *     z_j = (max - s_j) * scale / ln 2  >=  0,
 *
 * splitting z_j into an integer part (a right shift) and an 8-bit
 * fractional part (a 256-entry Q15 lookup of 2^-f/256). The row sum of
 * the resulting Q15 exponentials renormalizes each entry onto the u8
 * probability grid [0, 127] (scale 1/127, zero point 0) — exactly the
 * A-side operand shape the u8 x s8 probs * V GEMM expects
 * (tensor/int8_gemm.hpp).
 *
 * Everything after LUT construction is integer arithmetic on values
 * derived from the calibrated score scale, so given the same scores
 * the output bytes are identical on every ISA and thread count.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace dota {

/**
 * Shifted-exponential softmax tables for one attention score scale
 * (q_scale * k_scale * 1/sqrt(d_k) — the real value of one raw int32
 * score unit). Built once per layer at plan-quantization time.
 */
class IntSoftmaxLut
{
  public:
    explicit IntSoftmaxLut(float score_scale = 1.0f);

    /**
     * Integer softmax of scores[0..n) into probs[0..n) on the u8 grid
     * [0, 127]. @p mask, when non-null, is the usual 0/1 float keep-
     * mask: dropped coordinates get probability 0 and do not contribute
     * to the max or the normalizer. An all-masked (or empty) row
     * produces all zeros.
     */
    void softmaxRow(const int32_t *scores, size_t n, const float *mask,
                    uint8_t *probs) const;

    /** Real probability represented by output code 127 is ~1: 1/127. */
    float probScale() const { return 1.0f / 127.0f; }

    float scoreScale() const { return score_scale_; }

  private:
    float score_scale_ = 1.0f;
    int64_t factor_q24_ = 0; ///< round(score_scale / ln2 * 2^24)
    uint16_t lut_[256];      ///< Q15 codes of 2^(-f/256), f = 0..255
};

} // namespace dota
