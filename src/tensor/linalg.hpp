/**
 * @file
 * Small dense linear-algebra extras: top singular values via subspace
 * iteration and spectral summary statistics. Used to *measure* the
 * low-rank structure the joint optimization induces in attention scores
 * (the Section 3.3 claim).
 */
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace dota {

/**
 * Approximate the @p k largest singular values of @p a by subspace
 * iteration on a^T a (with orthonormalization), descending order.
 *
 * @param iters  iteration count; 30 is plenty for well-separated spectra
 */
std::vector<double> topSingularValues(const Matrix &a, size_t k,
                                      size_t iters = 30,
                                      uint64_t seed = 1234);

/**
 * Effective rank (participation ratio of the squared spectrum):
 * (sum s_i^2)^2 / sum s_i^4, computed over the top @p k singular
 * values (pass k >= min(rows, cols) for the full spectrum). A matrix
 * with r equal singular values and the rest zero has effective rank r.
 */
double effectiveRank(const Matrix &a, size_t k, size_t iters = 30);

/**
 * Fraction of squared spectral mass captured by the top @p k singular
 * values relative to the full Frobenius mass: 1.0 means the matrix is
 * (numerically) rank-k.
 */
double spectralEnergyTopK(const Matrix &a, size_t k, size_t iters = 30);

} // namespace dota
