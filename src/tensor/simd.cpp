/**
 * @file
 * Implementation of the SIMD dispatch policy.
 */
#include "tensor/simd.hpp"

#include <cstdio>
#include <string>

#include "common/env.hpp"

namespace dota {

namespace {

bool
cpuHasAvx2Fma()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

SimdIsa
resolveIsa()
{
    const SimdIsa best =
        simdIsaSupported(SimdIsa::Avx2) ? SimdIsa::Avx2 : SimdIsa::Portable;
    const std::string v = envString("DOTA_SIMD", "auto");
    if (v.empty() || v == "auto")
        return best;
    if (v == "portable" || v == "off" || v == "scalar" || v == "0")
        return SimdIsa::Portable;
    if (v == "avx2") {
        if (simdIsaSupported(SimdIsa::Avx2))
            return SimdIsa::Avx2;
        std::fprintf(stderr,
                     "dota: DOTA_SIMD=avx2 requested but AVX2/FMA is %s; "
                     "falling back to the portable kernels\n",
                     simdIsaCompiled(SimdIsa::Avx2)
                         ? "not supported by this CPU"
                         : "not compiled into this binary");
        return SimdIsa::Portable;
    }
    std::fprintf(stderr,
                 "dota: unknown DOTA_SIMD value '%s' "
                 "(expected auto|portable|avx2); using auto\n",
                 v.c_str());
    return best;
}

} // namespace

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Avx2:
        return "avx2";
    case SimdIsa::Portable:
        break;
    }
    return "portable";
}

bool
simdIsaCompiled(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Avx2:
#ifdef DOTA_SIMD_AVX2
        return true;
#else
        return false;
#endif
    case SimdIsa::Portable:
        break;
    }
    return true;
}

bool
simdIsaSupported(SimdIsa isa)
{
    if (!simdIsaCompiled(isa))
        return false;
    return isa == SimdIsa::Portable || cpuHasAvx2Fma();
}

SimdIsa
activeSimdIsa()
{
    static const SimdIsa isa = resolveIsa();
    return isa;
}

} // namespace dota
