/**
 * @file
 * Dense row-major float matrix — the numeric workhorse of DOTA.
 *
 * Everything numerical in the repository (the transformer stack, the
 * detector, the attention-graph experiments) operates on this type. It is
 * deliberately simple: contiguous float32 storage, bounds-checked element
 * access in debug paths, and no expression templates — kernels live in
 * tensor/ops.hpp where they can be reasoned about (and cycle-modeled)
 * individually.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace dota {

/** Dense row-major matrix of float32. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** @p rows x @p cols matrix initialized to @p fill. */
    Matrix(size_t rows, size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    /** Build from explicit row-major data (size must match). */
    Matrix(size_t rows, size_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        DOTA_ASSERT(data_.size() == rows_ * cols_,
                    "data size {} != {}x{}", data_.size(), rows_, cols_);
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    operator()(size_t r, size_t c)
    {
        DOTA_ASSERT(r < rows_ && c < cols_,
                    "index ({}, {}) out of {}x{}", r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    float
    operator()(size_t r, size_t c) const
    {
        DOTA_ASSERT(r < rows_ && c < cols_,
                    "index ({}, {}) out of {}x{}", r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    float *row(size_t r) { return data_.data() + r * cols_; }
    const float *row(size_t r) const { return data_.data() + r * cols_; }

    /** Set every element to @p v. */
    void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

    /** Zero all elements (keeps the shape). */
    void zero() { fill(0.0f); }

    /** Reshape in place; element count must be preserved. */
    void
    reshape(size_t rows, size_t cols)
    {
        DOTA_ASSERT(rows * cols == data_.size(),
                    "reshape {}x{} incompatible with {} elements", rows,
                    cols, data_.size());
        rows_ = rows;
        cols_ = cols;
    }

    /** Gaussian init with given stddev (used for weight matrices). */
    static Matrix randomNormal(size_t rows, size_t cols, Rng &rng,
                               float mean = 0.0f, float stddev = 1.0f);

    /** Uniform init in [lo, hi). */
    static Matrix randomUniform(size_t rows, size_t cols, Rng &rng,
                                float lo = -1.0f, float hi = 1.0f);

    /** Xavier/Glorot init for a fan_in x fan_out weight. */
    static Matrix xavier(size_t fan_in, size_t fan_out, Rng &rng);

    /** Identity matrix of size n. */
    static Matrix identity(size_t n);

    /** Copy of one row as a 1 x cols matrix. */
    Matrix rowCopy(size_t r) const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Sum of all elements. */
    double sum() const;

    /** Max |a_ij - b_ij| between two equal-shaped matrices. */
    static double maxAbsDiff(const Matrix &a, const Matrix &b);

    /** True when shapes match and all elements are within @p tol. */
    static bool allClose(const Matrix &a, const Matrix &b,
                         double tol = 1e-5);

    /** Short human-readable description, e.g. "Matrix(384x64)". */
    std::string shapeStr() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace dota
