/**
 * @file
 * Quantization and multi-precision arithmetic support.
 *
 * The DOTA RMMU computes important attention at FX16 and attention
 * *detection* at INT8/INT4/INT2 (Section 4.2). This module provides:
 *
 *  - the Precision enum shared by the algorithm and the simulator,
 *  - symmetric linear quantization to b-bit integers (scale from max-abs),
 *  - integer storage (QuantizedMatrix) plus an integer GEMM whose
 *    accumulation behaves like the hardware datapath, and
 *  - "fake quantization" (quantize-dequantize in float) used when training
 *    the detector under quantization constraints.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace dota {

/** Compute precisions supported by the RMMU (plus FP32 for references). */
enum class Precision { FP32, FX16, INT8, INT4, INT2 };

/** Bit width of a precision (FP32 -> 32). */
int precisionBits(Precision p);

/** Human-readable name, e.g. "INT4". */
std::string precisionName(Precision p);

/** Parse a precision name; fatal() on unknown names. */
Precision precisionFromName(const std::string &name);

/**
 * MACs per PE per cycle relative to the FX16 baseline (Fig. 7): the
 * composable multiplier gives quadratic throughput scaling, so
 * FX16 -> 1, INT8 -> 4, INT4 -> 16, INT2 -> 64. FP32 is not executable on
 * the RMMU and returns 0.
 */
int rmmuMacsPerPe(Precision p);

/** Symmetric quantization parameters for one tensor. */
struct QuantParams
{
    float scale = 1.0f; ///< real value = scale * integer code
    int bits = 8;       ///< signed two's-complement width

    int qmin() const { return -(1 << (bits - 1)); }
    int qmax() const { return (1 << (bits - 1)) - 1; }
};

/**
 * Pick the symmetric scale so max |x| maps onto the integer range.
 * Non-finite elements are ignored when scanning for max |x| (a NaN or
 * Inf in the tensor must not poison the scale of every other element),
 * and an all-zero / all-non-finite tensor degrades to scale 1 so the
 * identity `code = round(x / scale)` stays well defined.
 */
QuantParams chooseSymmetricScale(const Matrix &m, int bits);

/**
 * Scale for a symmetric grid with integer range [-qmax, qmax] given a
 * calibrated max |x|: max_abs / qmax, degrading to 1 when max_abs is
 * zero or non-finite. This is the scalar core of chooseSymmetricScale,
 * exposed for calibration passes that track running max |x| per tensor
 * site instead of holding the tensor itself.
 */
float symmetricScaleFromMaxAbs(float max_abs, int qmax);

/** A matrix stored as b-bit signed integer codes plus one scale. */
class QuantizedMatrix
{
  public:
    QuantizedMatrix() = default;
    QuantizedMatrix(size_t rows, size_t cols, QuantParams params)
        : rows_(rows), cols_(cols), params_(params),
          codes_(rows * cols, 0)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    const QuantParams &params() const { return params_; }

    int16_t &at(size_t r, size_t c) { return codes_[r * cols_ + c]; }
    int16_t at(size_t r, size_t c) const { return codes_[r * cols_ + c]; }
    const int16_t *row(size_t r) const { return codes_.data() + r * cols_; }

    /** Bytes the codes occupy at their true bit width (packed). */
    size_t packedBytes() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    QuantParams params_;
    std::vector<int16_t> codes_;
};

/** Quantize @p m to @p bits with a tensor-wide symmetric scale. */
QuantizedMatrix quantize(const Matrix &m, int bits);

/**
 * Quantize @p m with explicit (e.g. calibrated) parameters. Values
 * beyond the representable range saturate to qmin/qmax; NaN maps to
 * code 0 and a degenerate scale (zero or non-finite) is treated as 1.
 */
QuantizedMatrix quantize(const Matrix &m, QuantParams params);

/** Dequantize back to float. */
Matrix dequantize(const QuantizedMatrix &q);

/** Quantize-dequantize in float (straight-through estimator forward). */
Matrix fakeQuant(const Matrix &m, int bits);

/**
 * Integer GEMM C = A * B^T with 32-bit accumulation, dequantized to float
 * on output — the exact datapath of the detection GEMM in the Lane
 * (quantized operands in, float estimated scores out via the MFU
 * dequantizer).
 */
Matrix quantizedMatmulBT(const QuantizedMatrix &a, const QuantizedMatrix &b);

} // namespace dota
