/**
 * @file
 * Level-2 sparsity-aware attention kernels (DESIGN.md §11).
 *
 * The dense path of MultiHeadAttention computes the full n x n score
 * matrix, masks most of it away, and then multiplies the mostly-zero
 * probability matrix densely against V — paying quadratic cost for work
 * the detector already decided to omit. These kernels realize the
 * omission as *skipped computation*, mirroring the accelerator's
 * omission stage: scores, softmax and the A*V product are evaluated
 * only at the coordinates a SparseMask keeps, so FLOPs and wall-clock
 * scale with the retention ratio (paper Figure 3).
 *
 * Numerics: every kernel replays the dense masked computation's exact
 * per-element operation order (see gemm_kernels.hpp for the reduction
 * contracts), so kept entries are bit-identical to the dense masked
 * path and results are bit-identical across SIMD/portable kernels and
 * every DOTA_THREADS value.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/sparse_mask.hpp"

namespace dota {

/**
 * CSR matrix over a SparseMask's structure: row r's values live at
 * val[row_ptr[r] .. row_ptr[r+1]) and belong to key columns
 * col[row_ptr[r] .. row_ptr[r+1]) (ascending within a row).
 */
struct CsrMatrix
{
    size_t rows = 0;
    size_t cols = 0;
    std::vector<uint32_t> row_ptr; ///< rows + 1 offsets into col/val
    std::vector<uint32_t> col;     ///< kept column ids, row-major CSR
    std::vector<float> val;        ///< one value per kept coordinate

    size_t nnz() const { return col.size(); }

    /** Dense expansion with zeros at omitted coordinates (tests/small n). */
    Matrix toDense() const;
};

/** CSR skeleton of @p mask with all values zero. */
CsrMatrix csrFromMask(const SparseMask &mask);

/**
 * Sparse raw-score kernel: S[r][c] = dot(A row r, B row c) evaluated
 * only at the coordinates @p mask keeps (A = queries n x k, B = keys
 * m x k, mask n x m). Kept entries are bit-identical to
 * matmulBT(a, b) at the same coordinates.
 */
CsrMatrix sparseRowsMatmulBT(const Matrix &a, const Matrix &b,
                             const SparseMask &mask);

/**
 * Masked softmax over CSR scores: per row, values are first scaled by
 * @p scale (one rounding, mirroring scale() in the dense path), then
 * soft-maxed over the kept entries exactly as rowSoftmaxMasked does
 * (max subtraction, float exp, double-accumulated denominator). Rows
 * with no kept entries stay empty — the dense path's all-zero row.
 */
CsrMatrix maskedSoftmax(const CsrMatrix &s, float scale);

/**
 * Sparse probability-times-values kernel: out = A_sparse * V where A is
 * CSR (n x m) and V is dense (m x d). Each output element folds only
 * the kept coordinates of its row, in ascending column order — the
 * dense matmul fold with the omitted (exactly zero) terms skipped.
 */
Matrix sparseRowsMatmul(const CsrMatrix &a, const Matrix &v);

/**
 * One attention head through the sparse path:
 * softmax(scale * (Q K^T restricted to mask)) * V. Composition of the
 * three kernels above; returns the n x d context matrix.
 */
Matrix sparseMaskedAttention(const Matrix &q, const Matrix &k,
                             const Matrix &v, const SparseMask &mask,
                             float scale);

} // namespace dota
