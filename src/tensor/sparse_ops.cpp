/**
 * @file
 * Implementation of the sparse attention kernels.
 *
 * Parallelization mirrors the dense GEMMs in tensor/ops.cpp: output
 * rows are partitioned into chunks and every row is produced by exactly
 * one chunk, so results are bit-identical for every DOTA_THREADS value.
 * The serial/parallel crossover reuses the same measured MAC threshold
 * (see ops.cpp), with the work estimated as nnz * reduction-depth.
 */
#include "tensor/sparse_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/ops.hpp"

namespace dota {

namespace {

/** Same chunking policy as the dense GEMMs (ops.cpp gemmGrain). */
size_t
rowGrain(size_t rows)
{
    const size_t conc = ThreadPool::globalConcurrency();
    return std::max<size_t>(1, rows / (4 * conc));
}

} // namespace

Matrix
CsrMatrix::toDense() const
{
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (uint32_t t = row_ptr[r]; t < row_ptr[r + 1]; ++t)
            m(r, col[t]) = val[t];
    return m;
}

CsrMatrix
csrFromMask(const SparseMask &mask)
{
    CsrMatrix out;
    out.rows = mask.rows();
    out.cols = mask.cols();
    out.row_ptr.resize(out.rows + 1);
    out.row_ptr[0] = 0;
    const uint64_t nnz = mask.nnz();
    DOTA_ASSERT(nnz <= std::numeric_limits<uint32_t>::max(),
                "mask nnz {} overflows CSR offsets", nnz);
    out.col.reserve(static_cast<size_t>(nnz));
    for (size_t r = 0; r < out.rows; ++r) {
        const auto &ids = mask.row(r);
        out.col.insert(out.col.end(), ids.begin(), ids.end());
        out.row_ptr[r + 1] = static_cast<uint32_t>(out.col.size());
    }
    out.val.assign(out.col.size(), 0.0f);
    return out;
}

CsrMatrix
sparseRowsMatmulBT(const Matrix &a, const Matrix &b, const SparseMask &mask)
{
    DOTA_ASSERT(a.cols() == b.cols(), "sparseRowsMatmulBT {} * {}^T",
                a.shapeStr(), b.shapeStr());
    DOTA_ASSERT(mask.rows() == a.rows() && mask.cols() == b.rows(),
                "sparseRowsMatmulBT mask {}x{} over {}x{} scores",
                mask.rows(), mask.cols(), a.rows(), b.rows());
    CsrMatrix s = csrFromMask(mask);
    const auto &kt = activeGemmKernels();
    auto rowBlock = [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
            const uint32_t t0 = s.row_ptr[r];
            kt.sparseScoreRow(a.row(r), b, s.col.data() + t0,
                              s.row_ptr[r + 1] - t0, s.val.data() + t0);
        }
    };
    const uint64_t macs = static_cast<uint64_t>(s.nnz()) * a.cols();
    if (macs < gemmParallelMacThreshold())
        rowBlock(0, s.rows);
    else
        parallelFor(0, s.rows, rowGrain(s.rows), rowBlock);
    return s;
}

CsrMatrix
maskedSoftmax(const CsrMatrix &s, float scale)
{
    CsrMatrix y = s;
    for (size_t r = 0; r < y.rows; ++r) {
        const uint32_t t0 = y.row_ptr[r], t1 = y.row_ptr[r + 1];
        if (t0 == t1)
            continue; // no kept entries: the dense path's all-zero row
        float *v = y.val.data();
        // One rounding for the scaling, as scale() does in the dense
        // path, then the exact rowSoftmaxMasked operation sequence.
        float mx = -std::numeric_limits<float>::infinity();
        for (uint32_t t = t0; t < t1; ++t) {
            v[t] = s.val[t] * scale;
            mx = std::max(mx, v[t]);
        }
        double denom = 0.0;
        for (uint32_t t = t0; t < t1; ++t) {
            v[t] = std::exp(v[t] - mx);
            denom += v[t];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (uint32_t t = t0; t < t1; ++t)
            v[t] *= inv;
    }
    return y;
}

Matrix
sparseRowsMatmul(const CsrMatrix &a, const Matrix &v)
{
    DOTA_ASSERT(a.cols == v.rows(), "sparseRowsMatmul {}x{} * {}", a.rows,
                a.cols, v.shapeStr());
    Matrix out(a.rows, v.cols());
    const auto &kt = activeGemmKernels();
    auto rowBlock = [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
            const uint32_t t0 = a.row_ptr[r];
            kt.sparseAvRow(a.val.data() + t0, a.col.data() + t0,
                           a.row_ptr[r + 1] - t0, v, out.row(r));
        }
    };
    const uint64_t macs = static_cast<uint64_t>(a.nnz()) * v.cols();
    if (macs < gemmParallelMacThreshold())
        rowBlock(0, a.rows);
    else
        parallelFor(0, a.rows, rowGrain(a.rows), rowBlock);
    return out;
}

Matrix
sparseMaskedAttention(const Matrix &q, const Matrix &k, const Matrix &v,
                      const SparseMask &mask, float scale)
{
    const CsrMatrix s = sparseRowsMatmulBT(q, k, mask);
    const CsrMatrix p = maskedSoftmax(s, scale);
    return sparseRowsMatmul(p, v);
}

} // namespace dota
