/**
 * @file
 * Implementation of the sparse attention mask.
 */
#include "tensor/sparse_mask.hpp"

#include <algorithm>
#include <set>

namespace dota {

SparseMask
SparseMask::fromDense(const Matrix &mask)
{
    SparseMask out(mask.rows(), mask.cols());
    for (size_t r = 0; r < mask.rows(); ++r) {
        const float *row = mask.row(r);
        for (size_t c = 0; c < mask.cols(); ++c)
            if (row[c] != 0.0f)
                out.ids_[r].push_back(static_cast<uint32_t>(c));
    }
    return out;
}

Matrix
SparseMask::toDense() const
{
    DOTA_ASSERT(rows_ * cols_ <= (size_t{1} << 24),
                "toDense on a {}x{} mask would be enormous", rows_, cols_);
    Matrix m(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (uint32_t c : ids_[r])
            m(r, c) = 1.0f;
    return m;
}

void
SparseMask::setRow(size_t r, std::vector<uint32_t> ids)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    DOTA_ASSERT(ids.empty() || ids.back() < cols_,
                "key id {} out of {} columns", ids.back(), cols_);
    ids_[r] = std::move(ids);
}

void
SparseMask::sortRows()
{
    for (auto &row : ids_) {
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
    }
}

uint64_t
SparseMask::nnz() const
{
    uint64_t total = 0;
    for (const auto &row : ids_)
        total += row.size();
    return total;
}

double
SparseMask::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

bool
SparseMask::rowBalanced() const
{
    if (rows_ == 0)
        return true;
    const size_t k = ids_[0].size();
    for (const auto &row : ids_)
        if (row.size() != k)
            return false;
    return true;
}

size_t
SparseMask::distinctKeys() const
{
    std::set<uint32_t> keys;
    for (const auto &row : ids_)
        keys.insert(row.begin(), row.end());
    return keys.size();
}

bool
SparseMask::contains(size_t r, uint32_t c) const
{
    const auto &row = ids_[r];
    return std::binary_search(row.begin(), row.end(), c);
}

} // namespace dota
