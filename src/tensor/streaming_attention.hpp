/**
 * @file
 * Tiled streaming (online-softmax) attention kernel — O(n · tile) score
 * memory for arbitrarily long contexts (ROADMAP item 1, DESIGN.md §13).
 *
 * The dense and CSR attention paths materialize the full n x n score
 * matrix (or its kept coordinates) before softmax, which makes 32k+
 * contexts memory-infeasible. This kernel processes the keys in fixed
 * KV tiles and folds each tile into a FlashAttention-style recurrence —
 * per query row it keeps only a running max `m`, a running denominator
 * `l` and the unnormalized context accumulator `acc`:
 *
 *     m'   = max(m, max of the tile's scores)
 *     corr = exp(m - m')
 *     l'   = l * corr + sum of exp(score - m') over the tile
 *     acc' = corr * acc + exp(score - m') @ V_tile
 *     out  = acc / l          (one division at the very end, FLASH-D)
 *
 * so at no point does more than one tile of scores exist per thread.
 * The DOTA sparse-row mask composes per tile: a tile contributes only
 * its kept columns, and tiles with no kept columns are skipped entirely
 * — omission saves both memory and work, exactly as in the CSR path.
 *
 * Determinism contract (DESIGN.md §7): tiles are folded in ascending
 * key order, per-tile score/probability reductions follow the fixed
 * dot-family / broadcast-FMA contracts of gemm_kernels.hpp, and
 * parallelism is one-owner-per-query-row — results are bit-identical
 * across every DOTA_THREADS value and across AVX2/portable kernels.
 * Divergence from the dense path is bounded (different summation
 * grouping of the same exp terms) and pinned by tolerance goldens in
 * tests/test_streaming_attention.cpp.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/sparse_mask.hpp"

namespace dota {

/** Default KV-tile width (keys per tile) of the streaming kernel. */
constexpr size_t kStreamingAttnTile = 64;

/**
 * One attention head through the streaming path:
 * softmax(scale * Q K^T restricted to @p mask / the causal bound) * V.
 *
 * @param q       queries, n x d
 * @param k       keys,    m x d
 * @param v       values,  m x d
 * @param mask    kept connections (n x m), or nullptr for no mask
 * @param causal  restrict row r to keys [0, r] (composes with @p mask)
 * @param scale   score scaling (1/sqrt(d_k)), one rounding per score
 * @param tile    KV-tile width (clamped to >= 1)
 * @return        n x d context matrix; rows with no kept keys are zero
 */
Matrix streamingAttention(const Matrix &q, const Matrix &k, const Matrix &v,
                          const SparseMask *mask, bool causal, float scale,
                          size_t tile = kStreamingAttnTile);

/**
 * Single-query streaming attention against a strided KV cache — the
 * decode-time variant. Keys/values live in t x dim matrices where this
 * head occupies columns [off, off + dh); the query is a dh-vector.
 *
 * Writes the context into out[0 .. dh) (overwriting). When @p probs is
 * non-null it receives the final per-position probability of every
 * cached key (probs[0 .. t)), produced by a second tile pass with the
 * converged max/denominator — the attention-mass telemetry feed for
 * evictWeak() — still never holding more than one tile of scores.
 */
void streamingAttentionQuery(const float *qrow, const Matrix &k,
                             const Matrix &v, size_t off, size_t dh,
                             float scale, float *out,
                             std::vector<float> *probs = nullptr,
                             size_t tile = kStreamingAttnTile);

/**
 * Peak transient score memory of one streamingAttention() call in
 * bytes: every active thread holds one tile of scores plus one tile of
 * column ids and a d-wide accumulator pair. Used by the bench harness
 * to report the analytic footprint next to the measured peak RSS.
 */
size_t streamingAttnScratchBytes(size_t d, size_t tile, size_t threads);

} // namespace dota
