/**
 * @file
 * Implementation of row-wise selection kernels.
 */
#include "tensor/topk.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/ops.hpp"

namespace dota {

std::vector<uint32_t>
rowTopK(const Matrix &scores, size_t r, size_t k)
{
    const size_t n = scores.cols();
    k = std::min(k, n);
    std::vector<uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    const float *row = scores.row(r);
    std::nth_element(idx.begin(), idx.begin() + static_cast<long>(k),
                     idx.end(), [row](uint32_t a, uint32_t b) {
                         if (row[a] != row[b])
                             return row[a] > row[b];
                         return a < b; // deterministic tie-break
                     });
    idx.resize(k);
    return idx;
}

Matrix
topkMask(const Matrix &scores, size_t k)
{
    Matrix mask(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r)
        for (uint32_t c : rowTopK(scores, r, k))
            mask(r, c) = 1.0f;
    return mask;
}

Matrix
topkMaskCausal(const Matrix &scores, size_t k)
{
    Matrix mask(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r) {
        const size_t visible = std::min(r + 1, scores.cols());
        const size_t kk = std::min(k, visible);
        // Select among columns [0, visible) only.
        std::vector<uint32_t> idx(visible);
        std::iota(idx.begin(), idx.end(), 0u);
        const float *row = scores.row(r);
        std::nth_element(idx.begin(), idx.begin() + static_cast<long>(kk),
                         idx.end(), [row](uint32_t a, uint32_t b) {
                             if (row[a] != row[b])
                                 return row[a] > row[b];
                             return a < b;
                         });
        for (size_t i = 0; i < kk; ++i)
            mask(r, idx[i]) = 1.0f;
    }
    return mask;
}

Matrix
thresholdMask(const Matrix &scores, float threshold)
{
    Matrix mask(scores.rows(), scores.cols());
    for (size_t i = 0; i < scores.size(); ++i)
        mask.data()[i] = scores.data()[i] >= threshold ? 1.0f : 0.0f;
    return mask;
}

float
thresholdForRetention(const Matrix &scores, double retention)
{
    DOTA_ASSERT(retention > 0.0 && retention <= 1.0,
                "retention {} out of (0, 1]", retention);
    std::vector<float> vals(scores.data(), scores.data() + scores.size());
    const auto keep = std::max<size_t>(
        1, static_cast<size_t>(retention *
                               static_cast<double>(vals.size())));
    std::nth_element(vals.begin(), vals.begin() + static_cast<long>(keep - 1),
                     vals.end(), std::greater<float>());
    return vals[keep - 1];
}

double
maskDensity(const Matrix &mask)
{
    if (mask.empty())
        return 0.0;
    size_t nnz = 0;
    for (size_t i = 0; i < mask.size(); ++i)
        nnz += mask.data()[i] != 0.0f;
    return static_cast<double>(nnz) / static_cast<double>(mask.size());
}

size_t
maskRowCount(const Matrix &mask, size_t r)
{
    size_t nnz = 0;
    const float *row = mask.row(r);
    for (size_t c = 0; c < mask.cols(); ++c)
        nnz += row[c] != 0.0f;
    return nnz;
}

double
attentionMassRecall(const Matrix &scaled_scores, const Matrix &mask)
{
    DOTA_ASSERT(scaled_scores.rows() == mask.rows() &&
                    scaled_scores.cols() == mask.cols(),
                "attentionMassRecall shape mismatch");
    const Matrix probs = rowSoftmax(scaled_scores);
    double total = 0.0;
    for (size_t r = 0; r < probs.rows(); ++r) {
        double kept = 0.0;
        for (size_t c = 0; c < probs.cols(); ++c)
            if (mask(r, c) != 0.0f)
                kept += probs(r, c);
        total += kept;
    }
    return total / static_cast<double>(probs.rows());
}

double
topkRecall(const Matrix &exact, const Matrix &mask, size_t k)
{
    DOTA_ASSERT(exact.rows() == mask.rows() && exact.cols() == mask.cols(),
                "topkRecall shape mismatch");
    double total = 0.0;
    for (size_t r = 0; r < exact.rows(); ++r) {
        const auto truth = rowTopK(exact, r, k);
        size_t hit = 0;
        for (uint32_t c : truth)
            hit += mask(r, c) != 0.0f;
        total += static_cast<double>(hit) /
                 static_cast<double>(std::min(k, exact.cols()));
    }
    return total / static_cast<double>(exact.rows());
}

} // namespace dota
