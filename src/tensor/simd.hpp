/**
 * @file
 * SIMD instruction-set detection and dispatch policy for the kernel
 * layer (DESIGN.md §11).
 *
 * The dense micro-kernels in gemm_kernels.hpp exist in one portable
 * instantiation (plain C++, std::fma) and, when the toolchain supports
 * it, an AVX2/FMA instantiation compiled into a dedicated translation
 * unit. Which one runs is decided once per process:
 *
 *   1. compile-time: the AVX2 unit is built only under the DOTA_SIMD
 *      CMake option (default ON) on x86 toolchains that accept
 *      -mavx2 -mfma;
 *   2. runtime: the CPU must report avx2+fma support (cpuid);
 *   3. override: the DOTA_SIMD environment variable forces a path —
 *      "auto" (default) picks the best supported ISA, "portable" (also
 *      "off", "scalar", "0") forces the fallback, "avx2" requests AVX2
 *      and degrades to portable with a warning when unavailable.
 *
 * Both instantiations follow the same per-element reduction contracts
 * (gemm_kernels.hpp), so switching paths never changes results — only
 * throughput. Tests pin this by running both tables and comparing bits.
 */
#pragma once

namespace dota {

/** Kernel instruction-set paths, ordered slowest to fastest. */
enum class SimdIsa
{
    Portable = 0, ///< plain C++ fallback (std::fma per element)
    Avx2 = 1,     ///< AVX2 + FMA intrinsics (x86-64)
};

/** Short lowercase name ("portable", "avx2") for reports and logs. */
const char *simdIsaName(SimdIsa isa);

/** True when the instantiation for @p isa was compiled into the binary. */
bool simdIsaCompiled(SimdIsa isa);

/** True when @p isa is compiled in AND the running CPU supports it. */
bool simdIsaSupported(SimdIsa isa);

/**
 * The ISA the dispatched kernels use, resolved once per process from
 * hardware support and the DOTA_SIMD environment override (see file
 * comment).
 */
SimdIsa activeSimdIsa();

} // namespace dota
