/**
 * @file
 * Int8 tensor types and the threaded u8 x s8 GEMM driver behind the
 * integer inference path (DESIGN.md §16).
 *
 * The CPU int8 datapath is built around one kernel shape: C = A * B^T
 * with A held as unsigned 8-bit codes and B as signed 8-bit codes, so
 * the AVX2 `vpmaddubsw` instruction applies directly. The operand
 * ranges are chosen so that instruction's s16 pair sums cannot
 * saturate, which makes every instantiation *exact*:
 *
 *  - the A side (activations, attention probabilities) is quantized to
 *    a 7-bit symmetric grid, codes in [-63, 63], stored u8 with zero
 *    point kU8ZeroPoint = 64 (so bytes lie in [1, 127]); integer
 *    softmax probabilities are already unsigned and use zero point 0
 *    with codes in [0, 127];
 *  - the B side (weights, cached K/V) is full signed 8-bit symmetric,
 *    codes in [-127, 127].
 *
 * Max pair sum = 127 * 127 * 2 = 32258 < 32767. The zero point is
 * removed after the raw GEMM via precomputed B row sums:
 *     sum_p (q_a[p] + zp) * q_b[j][p] = raw  =>
 *     sum_p q_a[p] * q_b[j][p]        = raw - zp * row_sum[j]
 * and the float result is scale_a * scale_b * compensated.
 *
 * Because s32 addition is associative and exact, results are
 * bit-identical across SIMD ISAs and every DOTA_THREADS value with no
 * reduction-order contract (contrast gemm_kernels.hpp's float
 * families). Scales are *static* (from calibration), so incremental
 * decode reproduces full-sequence results exactly as well.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace dota {

/** Zero point of the u8 activation encoding. */
constexpr int kU8ZeroPoint = 64;
/** Largest activation code magnitude on the 7-bit grid. */
constexpr int kU8ActQmax = 63;
/** Largest weight / K/V code magnitude on the signed 8-bit grid. */
constexpr int kS8Qmax = 127;

/**
 * B-side operand: rows x k signed 8-bit codes (each row contiguous
 * along the reduction axis) plus per-row code sums for zero-point
 * compensation. Covers both weights (row = output channel, i.e. W^T of
 * a LinearLayer's in x out matrix) and cached K/V activations.
 */
struct Int8Tensor
{
    size_t rows = 0;
    size_t k = 0;
    float scale = 1.0f;
    std::vector<int8_t> codes;     ///< rows * k, row-major
    std::vector<int32_t> row_sums; ///< per-row sum of codes

    const int8_t *row(size_t r) const { return codes.data() + r * k; }
    bool empty() const { return rows == 0; }

    /** Append one quantized row (decode-time KV growth). */
    void appendRow(const float *x, size_t n);
};

/** A-side operand: rows x k unsigned codes, zero point + scale. */
struct U8Tensor
{
    size_t rows = 0;
    size_t k = 0;
    float scale = 1.0f;
    int zero_point = kU8ZeroPoint;
    std::vector<uint8_t> codes; ///< rows * k, row-major

    const uint8_t *row(size_t r) const { return codes.data() + r * k; }
};

/**
 * Quantize @p m row-for-row onto the s8 grid with the calibrated
 * @p scale (out-of-range values saturate at ±127, NaN maps to 0).
 */
Int8Tensor quantizeS8(const Matrix &m, float scale);

/** As quantizeS8 but encodes m^T (row r of the result = column r of m). */
Int8Tensor quantizeS8Transposed(const Matrix &m, float scale);

/**
 * Quantize @p m onto the 7-bit activation grid with the calibrated
 * @p scale, stored u8 with zero point 64 (saturation at ±63).
 */
U8Tensor quantizeU8(const Matrix &m, float scale);

/** Dequantize an A-side operand (round-trip checks, hook observers). */
Matrix dequantize(const U8Tensor &a);

/** Dequantize a B-side operand. */
Matrix dequantize(const Int8Tensor &b);

/**
 * Raw integer GEMM: c[i*b.rows + j] = sum_p a[i][p] * b[j][p] -
 * a.zero_point * b.row_sums[j], threaded over output rows with the
 * same serial-below-threshold policy as the float GEMMs. @p c must
 * hold a.rows * b.rows elements.
 */
void int8GemmBT(const U8Tensor &a, const Int8Tensor &b, int32_t *c);

/**
 * Dequantized GEMM: float C = a.scale * b.scale * int8GemmBT(a, b),
 * optionally adding a fp32 bias row broadcast over output rows.
 */
Matrix int8MatmulBT(const U8Tensor &a, const Int8Tensor &b,
                    const Matrix *bias = nullptr);

/**
 * Exact s32 dot of one u8 code row against one s8 code row with zero-
 * point compensation — the decode-time single-query score kernel.
 */
int32_t int8DotCompensated(const uint8_t *a, int zero_point,
                           const Int8Tensor &b, size_t j, size_t k);

} // namespace dota
