/**
 * @file
 * Row-wise top-k selection and thresholding over score matrices.
 *
 * These kernels implement the Detector's selection step (Section 3.1):
 * given (estimated) attention scores, keep the k largest entries per row —
 * the row-balance constraint of Section 4.3 falls out naturally because
 * every row keeps exactly k connections — or compare against a preset
 * threshold as the hardware comparator does.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace dota {

/** Indices of the k largest entries of row @p r of @p scores (unsorted). */
std::vector<uint32_t> rowTopK(const Matrix &scores, size_t r, size_t k);

/**
 * Row-balanced top-k selection: a 0/1 mask with exactly
 * min(k, cols) ones per row. This is the DOTA selection rule.
 */
Matrix topkMask(const Matrix &scores, size_t k);

/**
 * Causal variant: row i may only select from columns 0..i. Each row keeps
 * min(k, i+1) connections (decoder processing, Section 4.4).
 */
Matrix topkMaskCausal(const Matrix &scores, size_t k);

/** Unbalanced thresholding: keep entries with score >= threshold. */
Matrix thresholdMask(const Matrix &scores, float threshold);

/**
 * Find the global threshold whose mask retains approximately
 * @p retention * size entries (used to map retention ratios onto the
 * hardware comparator's preset threshold).
 */
float thresholdForRetention(const Matrix &scores, double retention);

/** Fraction of nonzero entries in a 0/1 mask. */
double maskDensity(const Matrix &mask);

/** Number of nonzeros in row @p r of a 0/1 mask. */
size_t maskRowCount(const Matrix &mask, size_t r);

/**
 * Detection quality metric: average over rows of
 * |selected ∩ true top-k| / k, where "true" is taken from @p exact scores
 * and "selected" from @p mask.
 */
double topkRecall(const Matrix &exact, const Matrix &mask, size_t k);

/**
 * Attention-mass recall: the fraction of each row's true softmax
 * probability mass that falls on selected connections, averaged over
 * rows. @p scaled_scores must already include the 1/sqrt(d_k) factor.
 * This is the quantity omission actually loses — strict top-k overlap
 * over-penalizes ties among near-uniform weak connections.
 */
double attentionMassRecall(const Matrix &scaled_scores, const Matrix &mask);

} // namespace dota
