/**
 * @file
 * Implementation of the integer shifted-exponential softmax.
 */
#include "tensor/int_softmax.hpp"

#include <cmath>

namespace dota {

IntSoftmaxLut::IntSoftmaxLut(float score_scale)
    : score_scale_(score_scale)
{
    // One raw score unit in nats, converted to base-2 Q24. A degenerate
    // scale (calibration never saw a score) degrades to scale 1 like
    // the quantizer does.
    const double s =
        (std::isfinite(score_scale) && score_scale > 0.0f)
            ? static_cast<double>(score_scale)
            : 1.0;
    factor_q24_ = static_cast<int64_t>(
        std::llround(s / 0.6931471805599453 * 16777216.0));
    if (factor_q24_ < 1)
        factor_q24_ = 1; // keep monotonicity even for microscopic scales
    // Q15 codes of 2^(-f/256), inclusive top: lut_[0] = 32768 encodes
    // exactly 1.0 so the row-max entry always survives; the value range
    // [16384, 32768] fits uint16_t.
    for (int f = 0; f < 256; ++f)
        lut_[f] = static_cast<uint16_t>(
            std::llround(std::exp2(-f / 256.0) * 32768.0));
}

void
IntSoftmaxLut::softmaxRow(const int32_t *scores, size_t n,
                          const float *mask, uint8_t *probs) const
{
    // Row max over kept coordinates.
    bool any = false;
    int32_t max = 0;
    for (size_t j = 0; j < n; ++j) {
        if (mask != nullptr && mask[j] == 0.0f)
            continue;
        if (!any || scores[j] > max)
            max = scores[j];
        any = true;
    }
    if (!any) {
        for (size_t j = 0; j < n; ++j)
            probs[j] = 0;
        return;
    }

    // e_j = 2^15 * 2^(-z_j) via shift + fractional LUT.
    uint64_t sum = 0;
    // Stack buffer for typical rows, heap for very long ones.
    uint32_t stack_e[512];
    uint32_t *e = stack_e;
    uint32_t *heap_e = nullptr;
    if (n > 512)
        e = heap_e = new uint32_t[n];
    for (size_t j = 0; j < n; ++j) {
        if (mask != nullptr && mask[j] == 0.0f) {
            e[j] = 0;
            continue;
        }
        const int64_t d = static_cast<int64_t>(max) - scores[j];
        const int64_t z = d * factor_q24_; // Q24, >= 0
        const int64_t shift = z >> 24;
        if (shift >= 31) {
            e[j] = 0; // underflows the Q15 grid entirely
            continue;
        }
        const int frac = static_cast<int>((z >> 16) & 0xff);
        e[j] = static_cast<uint32_t>(lut_[frac]) >>
               static_cast<int>(shift);
        sum += e[j];
    }

    // Renormalize onto [0, 127]: p = round(e * 127 / sum). Each e is a
    // term of sum, so p <= 127 by construction. sum > 0 because the max
    // coordinate contributes lut_[0] >> 0 = 32768.
    for (size_t j = 0; j < n; ++j)
        probs[j] = static_cast<uint8_t>(
            (static_cast<uint64_t>(e[j]) * 127 + sum / 2) / sum);

    delete[] heap_e;
}

} // namespace dota
