/**
 * @file
 * Implementation of the int8 tensor types and the threaded GEMM driver.
 */
#include "tensor/int8_gemm.hpp"

#include <cmath>

#include "common/thread_pool.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace dota {

namespace {

/** Saturating round onto [-qmax, qmax]; NaN -> 0 (see quant.cpp). */
inline int
roundCode(float x, float inv_scale, int qmax)
{
    const float v = x * inv_scale;
    if (std::isnan(v))
        return 0;
    if (v >= static_cast<float>(qmax))
        return qmax;
    if (v <= static_cast<float>(-qmax))
        return -qmax;
    return static_cast<int>(std::lround(v));
}

inline float
safeInvScale(float scale)
{
    return (std::isfinite(scale) && scale > 0.0f) ? 1.0f / scale : 1.0f;
}

} // namespace

void
Int8Tensor::appendRow(const float *x, size_t n)
{
    DOTA_ASSERT(k == 0 || n == k, "appendRow width {} != {}", n, k);
    k = n;
    const float inv = safeInvScale(scale);
    int32_t sum = 0;
    codes.reserve(codes.size() + n);
    for (size_t p = 0; p < n; ++p) {
        const int code = roundCode(x[p], inv, kS8Qmax);
        codes.push_back(static_cast<int8_t>(code));
        sum += code;
    }
    row_sums.push_back(sum);
    ++rows;
}

Int8Tensor
quantizeS8(const Matrix &m, float scale)
{
    Int8Tensor t;
    t.rows = m.rows();
    t.k = m.cols();
    t.scale = scale;
    t.codes.resize(t.rows * t.k);
    t.row_sums.resize(t.rows);
    const float inv = safeInvScale(scale);
    for (size_t r = 0; r < t.rows; ++r) {
        const float *src = m.row(r);
        int8_t *dst = t.codes.data() + r * t.k;
        int32_t sum = 0;
        for (size_t p = 0; p < t.k; ++p) {
            const int code = roundCode(src[p], inv, kS8Qmax);
            dst[p] = static_cast<int8_t>(code);
            sum += code;
        }
        t.row_sums[r] = sum;
    }
    return t;
}

Int8Tensor
quantizeS8Transposed(const Matrix &m, float scale)
{
    Int8Tensor t;
    t.rows = m.cols();
    t.k = m.rows();
    t.scale = scale;
    t.codes.resize(t.rows * t.k);
    t.row_sums.resize(t.rows);
    const float inv = safeInvScale(scale);
    for (size_t r = 0; r < t.rows; ++r) {
        int8_t *dst = t.codes.data() + r * t.k;
        int32_t sum = 0;
        for (size_t p = 0; p < t.k; ++p) {
            const int code = roundCode(m(p, r), inv, kS8Qmax);
            dst[p] = static_cast<int8_t>(code);
            sum += code;
        }
        t.row_sums[r] = sum;
    }
    return t;
}

U8Tensor
quantizeU8(const Matrix &m, float scale)
{
    U8Tensor t;
    t.rows = m.rows();
    t.k = m.cols();
    t.scale = scale;
    t.zero_point = kU8ZeroPoint;
    t.codes.resize(t.rows * t.k);
    const float inv = safeInvScale(scale);
    for (size_t i = 0; i < m.size(); ++i)
        t.codes[i] = static_cast<uint8_t>(
            roundCode(m.data()[i], inv, kU8ActQmax) + kU8ZeroPoint);
    return t;
}

Matrix
dequantize(const U8Tensor &a)
{
    Matrix m(a.rows, a.k);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(static_cast<int>(a.codes[i]) -
                                         a.zero_point) *
                      a.scale;
    return m;
}

Matrix
dequantize(const Int8Tensor &b)
{
    Matrix m(b.rows, b.k);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(b.codes[i]) * b.scale;
    return m;
}

void
int8GemmBT(const U8Tensor &a, const Int8Tensor &b, int32_t *c)
{
    DOTA_ASSERT(a.k == b.k, "int8GemmBT {}x{} * {}x{}^T", a.rows, a.k,
                b.rows, b.k);
    // s32 headroom: k products of magnitude <= 127*127 must fit.
    DOTA_ASSERT(a.k <= (1ull << 31) / (127ull * 127ull),
                "int8GemmBT: k = {} overflows s32 accumulation", a.k);
    const size_t m = a.rows, k = a.k, n = b.rows;
    const auto &kt = activeGemmKernels();
    const int zp = a.zero_point;
    auto rowBlock = [&](size_t i0, size_t i1) {
        kt.int8GemmBTRows(a.codes.data(), b.codes.data(), c, k, n, i0,
                          i1);
        if (zp != 0)
            for (size_t i = i0; i < i1; ++i) {
                int32_t *crow = c + i * n;
                for (size_t j = 0; j < n; ++j)
                    crow[j] -= zp * b.row_sums[j];
            }
    };
    // Same serial-below-threshold policy as the float GEMMs; each
    // output row is written by exactly one chunk, and s32 arithmetic is
    // exact, so any thread count produces identical bits.
    if (static_cast<uint64_t>(m) * k * n < gemmParallelMacThreshold())
        rowBlock(0, m);
    else
        parallelFor(0, m, std::max<size_t>(1, m / (4 * ThreadPool::globalConcurrency())),
                    rowBlock);
}

Matrix
int8MatmulBT(const U8Tensor &a, const Int8Tensor &b, const Matrix *bias)
{
    std::vector<int32_t> raw(a.rows * b.rows);
    int8GemmBT(a, b, raw.data());
    const float out_scale = a.scale * b.scale;
    Matrix c(a.rows, b.rows);
    if (bias != nullptr)
        DOTA_ASSERT(bias->rows() == 1 && bias->cols() == b.rows,
                    "int8MatmulBT bias {} for {} outputs",
                    bias->shapeStr(), b.rows);
    for (size_t i = 0; i < a.rows; ++i) {
        const int32_t *rrow = raw.data() + i * b.rows;
        float *crow = c.row(i);
        for (size_t j = 0; j < b.rows; ++j) {
            float v = static_cast<float>(rrow[j]) * out_scale;
            if (bias != nullptr)
                v += (*bias)(0, j);
            crow[j] = v;
        }
    }
    return c;
}

int32_t
int8DotCompensated(const uint8_t *a, int zero_point, const Int8Tensor &b,
                   size_t j, size_t k)
{
    DOTA_ASSERT(j < b.rows && k == b.k, "int8DotCompensated row {}", j);
    const int32_t raw = activeGemmKernels().int8Dot(a, b.row(j), k);
    return raw - zero_point * b.row_sums[j];
}

} // namespace dota
