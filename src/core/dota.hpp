/**
 * @file
 * Public API of the DOTA library.
 *
 * Umbrella header plus the System facade: configure a hardware fabric
 * once, then run any paper benchmark on DOTA (F/C/A), on the GPU
 * baseline, or on the reconstructed ELSA accelerator, and pull the
 * paper's comparison metrics (attention/end-to-end speedups,
 * energy-efficiency ratios, latency breakdowns).
 *
 * Quick start (see examples/quickstart.cpp):
 *
 *   dota::System system;                       // Table 2 fabric
 *   auto cmp = system.compare(dota::BenchmarkId::Text);
 *   std::cout << cmp.attention_speedup_c << "x attention speedup\n";
 *
 * The algorithmic side (training a Detector jointly with a model) lives
 * in detect/detector.hpp + detect/pipeline.hpp and is exercised by the
 * accuracy benches and examples.
 */
#pragma once

#include "baselines/elsa_sim.hpp"
#include "baselines/gpu_model.hpp"
#include "common/table.hpp"
#include "detect/detector.hpp"
#include "detect/a3_detector.hpp"
#include "detect/elsa_detector.hpp"
#include "detect/metrics.hpp"
#include "detect/oracle_detector.hpp"
#include "detect/static_pattern.hpp"
#include "detect/token_pruning.hpp"
#include "detect/pipeline.hpp"
#include "nn/decode.hpp"
#include "nn/serialize.hpp"
#include "sched/dataflow.hpp"
#include "sim/accelerator.hpp"
#include "sim/fleet.hpp"
#include "sim/pe_model.hpp"
#include "sim/trace.hpp"
#include "tensor/linalg.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/mask_synth.hpp"
#include "workloads/synthetic_task.hpp"
#include "workloads/trainer.hpp"

namespace dota {

/** Facade over the three simulated devices. */
class System
{
  public:
    /** System-level options. */
    struct Options
    {
        /**
         * Scale the DOTA/ELSA fabrics to GPU-comparable peak throughput
         * (12 TOPS, Section 5.1). Leave false for Table 2 scale.
         */
        bool scale_for_gpu = true;
        SimOptions sim;
        GpuConfig gpu = GpuConfig::v100();
        ElsaConfig elsa = ElsaConfig::iscaDefault();
        EnergyModel energy = EnergyModel::tsmc22();
    };

    System();
    explicit System(Options opt);

    /** Run @p id on the DOTA accelerator in @p mode. */
    RunReport run(BenchmarkId id, DotaMode mode) const;

    /** Run the dense GPU baseline. */
    GpuReport runGpu(BenchmarkId id) const;

    /** Run the reconstructed ELSA accelerator (attention block only). */
    RunReport runElsa(BenchmarkId id) const;

    /** The paper's headline comparison numbers for one benchmark. */
    struct Comparison
    {
        std::string benchmark;
        // Figure 12(a): attention-block speedup over the GPU.
        double attention_speedup_elsa = 0.0;
        double attention_speedup_c = 0.0;
        double attention_speedup_a = 0.0;
        // Figure 12(b): end-to-end speedup over the GPU + upper bound.
        double e2e_speedup_c = 0.0;
        double e2e_speedup_a = 0.0;
        double e2e_upper_bound = 0.0;
        // Figure 13: attention energy-efficiency over the GPU.
        double energy_eff_elsa = 0.0;
        double energy_eff_c = 0.0;
        double energy_eff_a = 0.0;
    };

    Comparison compare(BenchmarkId id) const;

    const DotaAccelerator &accelerator() const { return dota_; }
    const ElsaAccelerator &elsa() const { return elsa_; }
    const Options &options() const { return opt_; }

  private:
    Options opt_;
    DotaAccelerator dota_;
    ElsaAccelerator elsa_;
};

} // namespace dota
