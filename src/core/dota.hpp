/**
 * @file
 * Public API of the DOTA library.
 *
 * Umbrella header plus the System facade: configure a hardware fabric
 * once, then run any paper benchmark on any registered device — the
 * DOTA accelerator (F/C/A), the GPU baseline, the reconstructed ELSA
 * accelerator, or any backend added through DeviceRegistry — and pull
 * the paper's comparison metrics (attention/end-to-end speedups,
 * energy-efficiency ratios, latency breakdowns). Every device emits the
 * same RunReport type.
 *
 * Quick start (see examples/quickstart.cpp):
 *
 *   dota::System system;                       // Table 2 fabric
 *   auto cmp = system.compare(dota::BenchmarkId::Text);
 *   std::cout << cmp.attention_speedup_c << "x attention speedup\n";
 *
 *   auto gpu = system.run(dota::BenchmarkId::Text, "gpu-v100");
 *   auto dota = system.run(dota::BenchmarkId::Text, "dota-c");
 *   // gpu.timeMs() / dota.timeMs(), same report type everywhere
 *
 * The algorithmic side (training a Detector jointly with a model) lives
 * in detect/detector.hpp + detect/pipeline.hpp and is exercised by the
 * accuracy benches and examples.
 */
#pragma once

#include <map>
#include <mutex>

#include "baselines/elsa_sim.hpp"
#include "baselines/gpu_model.hpp"
#include "common/table.hpp"
#include "detect/detector.hpp"
#include "detect/a3_detector.hpp"
#include "detect/elsa_detector.hpp"
#include "detect/metrics.hpp"
#include "detect/oracle_detector.hpp"
#include "detect/static_pattern.hpp"
#include "detect/token_pruning.hpp"
#include "detect/pipeline.hpp"
#include "device/dota_device.hpp"
#include "device/elsa_device.hpp"
#include "device/fleet.hpp"
#include "device/gpu_device.hpp"
#include "device/registry.hpp"
#include "nn/attention_backend.hpp"
#include "nn/decode.hpp"
#include "nn/int8_infer.hpp"
#include "nn/serialize.hpp"
#include "tensor/int8_gemm.hpp"
#include "tensor/int_softmax.hpp"
#include "sched/dataflow.hpp"
#include "serve/dispatcher.hpp"
#include "serve/engine.hpp"
#include "serve/fault.hpp"
#include "serve/kv_cache.hpp"
#include "serve/report.hpp"
#include "serve/simulator.hpp"
#include "serve/trace.hpp"
#include "sim/accelerator.hpp"
#include "sim/pe_model.hpp"
#include "sim/trace.hpp"
#include "tensor/linalg.hpp"
#include "workloads/benchmark.hpp"
#include "workloads/long_retrieval.hpp"
#include "workloads/mask_synth.hpp"
#include "workloads/synthetic_task.hpp"
#include "workloads/trainer.hpp"

namespace dota {

/** Facade over the registered simulated devices. */
class System
{
  public:
    /** System-level options. */
    struct Options
    {
        /**
         * Scale the DOTA/ELSA fabrics to GPU-comparable peak throughput
         * (12 TOPS, Section 5.1). Leave false for Table 2 scale.
         */
        bool scale_for_gpu = true;
        SimOptions sim;
        GpuConfig gpu = GpuConfig::v100();
        ElsaConfig elsa = ElsaConfig::iscaDefault();
        EnergyModel energy = EnergyModel::tsmc22();
    };

    System();
    explicit System(Options opt);

    /** Run @p id on the device registered under @p device_key. */
    RunReport run(BenchmarkId id, const std::string &device_key) const;

    /** Run @p id on the DOTA accelerator in @p mode. */
    RunReport run(BenchmarkId id, DotaMode mode) const;

    /** Run the dense GPU baseline (key "gpu-v100"). */
    RunReport runGpu(BenchmarkId id) const;

    /** Run the reconstructed ELSA accelerator (key "elsa"). */
    RunReport runElsa(BenchmarkId id) const;

    /** The paper's headline comparison numbers for one benchmark. */
    struct Comparison
    {
        std::string benchmark;
        // Figure 12(a): attention-block speedup over the GPU.
        double attention_speedup_elsa = 0.0;
        double attention_speedup_c = 0.0;
        double attention_speedup_a = 0.0;
        // Figure 12(b): end-to-end speedup over the GPU + upper bound.
        double e2e_speedup_c = 0.0;
        double e2e_speedup_a = 0.0;
        double e2e_upper_bound = 0.0;
        // Figure 13: attention energy-efficiency over the GPU.
        double energy_eff_elsa = 0.0;
        double energy_eff_c = 0.0;
        double energy_eff_a = 0.0;
    };

    Comparison compare(BenchmarkId id) const;

    /** The device behind @p key, configured with this System's options
     * (created on first use, then cached). */
    const Device &device(const std::string &key) const;

    /** DeviceOptions equivalent to this System's Options. */
    DeviceOptions deviceOptions() const;

    const DotaAccelerator &accelerator() const;
    const ElsaAccelerator &elsa() const;
    const Options &options() const { return opt_; }

  private:
    Options opt_;
    mutable std::mutex mu_;
    mutable std::map<std::string, std::unique_ptr<Device>> devices_;
};

} // namespace dota
