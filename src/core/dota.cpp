/**
 * @file
 * Implementation of the System facade.
 */
#include "core/dota.hpp"

namespace dota {

namespace {

/** Attention-block energy (detection + attention + leakage share). */
double
attentionEnergyJ(const RunReport &r)
{
    const double dynamic =
        (r.per_layer.detection.energy_pj + r.per_layer.attention.energy_pj) *
        static_cast<double>(r.layers) * 1e-12;
    const double total_cycles =
        static_cast<double>(r.totalCycles());
    const double att_cycles = static_cast<double>(
        (r.per_layer.detection.cycles + r.per_layer.attention.cycles) *
        r.layers);
    const double leak_share =
        total_cycles > 0.0 ? r.leakage_j * att_cycles / total_cycles : 0.0;
    return dynamic + leak_share;
}

} // namespace

System::System() : System(Options{}) {}

System::System(Options opt) : opt_(opt) {}

DeviceOptions
System::deviceOptions() const
{
    DeviceOptions dev;
    dev.hw = opt_.scale_for_gpu ? HwConfig::dotaScaledForGpu()
                                : HwConfig::dota();
    dev.energy = opt_.energy;
    dev.sim = opt_.sim;
    dev.gpu = opt_.gpu;
    dev.elsa = opt_.elsa;
    return dev;
}

const Device &
System::device(const std::string &key) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = devices_.find(key);
    if (it == devices_.end())
        it = devices_
                 .emplace(key, DeviceRegistry::create(key,
                                                      deviceOptions()))
                 .first;
    return *it->second;
}

const DotaAccelerator &
System::accelerator() const
{
    return dynamic_cast<const DotaDevice &>(device("dota-c"))
        .accelerator();
}

const ElsaAccelerator &
System::elsa() const
{
    return dynamic_cast<const ElsaDevice &>(device("elsa"))
        .accelerator();
}

RunReport
System::run(BenchmarkId id, const std::string &device_key) const
{
    return device(device_key).simulate(benchmark(id));
}

RunReport
System::run(BenchmarkId id, DotaMode mode) const
{
    return run(id, dotaModeKey(mode));
}

RunReport
System::runGpu(BenchmarkId id) const
{
    return run(id, "gpu-v100");
}

RunReport
System::runElsa(BenchmarkId id) const
{
    return run(id, "elsa");
}

System::Comparison
System::compare(BenchmarkId id) const
{
    const Benchmark &bench = benchmark(id);
    const RunReport gpu = runGpu(id);
    const RunReport elsa = runElsa(id);
    const RunReport cons = run(id, "dota-c");
    const RunReport aggr = run(id, "dota-a");

    Comparison cmp;
    cmp.benchmark = bench.name;

    const double gpu_att_ms = gpu.attentionTimeMs();
    cmp.attention_speedup_elsa = gpu_att_ms / elsa.attentionTimeMs();
    cmp.attention_speedup_c = gpu_att_ms / cons.attentionTimeMs();
    cmp.attention_speedup_a = gpu_att_ms / aggr.attentionTimeMs();

    cmp.e2e_speedup_c = gpu.timeMs() / cons.timeMs();
    cmp.e2e_speedup_a = gpu.timeMs() / aggr.timeMs();
    // Amdahl upper bound: the accelerator at peak with free attention.
    cmp.e2e_upper_bound = gpu.timeMs() / cons.linearTimeMs();

    // The GPU report's attention energy is board power over the
    // attention phases' wall time, so one helper covers every device.
    const double gpu_att_j = attentionEnergyJ(gpu);
    cmp.energy_eff_elsa = gpu_att_j / attentionEnergyJ(elsa);
    cmp.energy_eff_c = gpu_att_j / attentionEnergyJ(cons);
    cmp.energy_eff_a = gpu_att_j / attentionEnergyJ(aggr);
    return cmp;
}

} // namespace dota
