/**
 * @file
 * Implementation of the System facade.
 */
#include "core/dota.hpp"

namespace dota {

namespace {

HwConfig
fabricFor(const System::Options &opt)
{
    return opt.scale_for_gpu ? HwConfig::dotaScaledForGpu()
                             : HwConfig::dota();
}

/** Attention-block energy (detection + attention + leakage share). */
double
attentionEnergyJ(const RunReport &r)
{
    const double dynamic =
        (r.per_layer.detection.energy_pj + r.per_layer.attention.energy_pj) *
        static_cast<double>(r.layers) * 1e-12;
    const double total_cycles =
        static_cast<double>(r.totalCycles());
    const double att_cycles = static_cast<double>(
        (r.per_layer.detection.cycles + r.per_layer.attention.cycles) *
        r.layers);
    const double leak_share =
        total_cycles > 0.0 ? r.leakage_j * att_cycles / total_cycles : 0.0;
    return dynamic + leak_share;
}

} // namespace

System::System() : System(Options{}) {}

System::System(Options opt)
    : opt_(opt), dota_(fabricFor(opt), opt.energy),
      elsa_(fabricFor(opt), opt.energy, opt.elsa)
{}

RunReport
System::run(BenchmarkId id, DotaMode mode) const
{
    SimOptions sim = opt_.sim;
    sim.mode = mode;
    return dota_.simulate(benchmark(id), sim);
}

GpuReport
System::runGpu(BenchmarkId id) const
{
    return simulateGpu(benchmark(id), opt_.gpu);
}

RunReport
System::runElsa(BenchmarkId id) const
{
    return elsa_.simulate(benchmark(id));
}

System::Comparison
System::compare(BenchmarkId id) const
{
    const Benchmark &bench = benchmark(id);
    const GpuReport gpu = runGpu(id);
    const RunReport elsa = runElsa(id);
    const RunReport cons = run(id, DotaMode::Conservative);
    const RunReport aggr = run(id, DotaMode::Aggressive);

    Comparison cmp;
    cmp.benchmark = bench.name;

    cmp.attention_speedup_elsa = gpu.attention_ms / elsa.attentionTimeMs();
    cmp.attention_speedup_c = gpu.attention_ms / cons.attentionTimeMs();
    cmp.attention_speedup_a = gpu.attention_ms / aggr.attentionTimeMs();

    cmp.e2e_speedup_c = gpu.totalMs() / cons.timeMs();
    cmp.e2e_speedup_a = gpu.totalMs() / aggr.timeMs();
    // Amdahl upper bound: the accelerator at peak with free attention.
    cmp.e2e_upper_bound = gpu.totalMs() / cons.linearTimeMs();

    const double gpu_att_j =
        opt_.gpu.board_power_w * gpu.attention_ms * 1e-3;
    cmp.energy_eff_elsa = gpu_att_j / attentionEnergyJ(elsa);
    cmp.energy_eff_c = gpu_att_j / attentionEnergyJ(cons);
    cmp.energy_eff_a = gpu_att_j / attentionEnergyJ(aggr);
    return cmp;
}

} // namespace dota
