/**
 * @file
 * The polymorphic device abstraction the serving layers program against.
 *
 * A Device is anything that can simulate a paper benchmark and emit a
 * RunReport: the DOTA accelerator in any of its three operating modes,
 * the reconstructed ELSA accelerator, the V100 roofline model, and any
 * future backend. Devices are created by string key through
 * DeviceRegistry (registry.hpp), so fleets, CLIs and comparison tables
 * can mix backends without compile-time knowledge of them; adding a new
 * device model is a one-file change (see DESIGN.md §8).
 */
#pragma once

#include <memory>
#include <string>

#include "baselines/elsa_sim.hpp"
#include "baselines/gpu_model.hpp"
#include "sim/accelerator.hpp"
#include "workloads/benchmark.hpp"

namespace dota {

/**
 * Options consumed by the device factories. Each backend reads the
 * slice it understands and ignores the rest, so one options object can
 * configure a whole heterogeneous fleet.
 */
struct DeviceOptions
{
    /**
     * Fabric for the DOTA/ELSA accelerators. Defaults to the
     * GPU-comparable 12 TOPS scale of Section 5.1 (the System facade's
     * historical default); use table2() for the 2 TOPS Table 2 part.
     */
    HwConfig hw = HwConfig::dotaScaledForGpu();
    EnergyModel energy = EnergyModel::tsmc22();
    /** DOTA simulation knobs. `sim.mode` is overridden by the key. */
    SimOptions sim;
    GpuConfig gpu = GpuConfig::v100();
    ElsaConfig elsa = ElsaConfig::iscaDefault();

    /** Options with the unscaled Table 2 (2 TOPS) fabric. */
    static DeviceOptions
    table2()
    {
        DeviceOptions opt;
        opt.hw = HwConfig::dota();
        return opt;
    }
};

/** Abstract simulated device. */
class Device
{
  public:
    virtual ~Device() = default;

    /** Simulate single-pass inference of @p bench. */
    virtual RunReport simulate(const Benchmark &bench) const = 0;

    /**
     * Simulate autoregressive generation of a causal benchmark.
     * Backends without a generation path fatal() (the default).
     */
    virtual RunReport simulateGeneration(const Benchmark &bench) const;

    /** Report label, e.g. "DOTA-C" / "ELSA" / "GPU-V100". */
    virtual std::string name() const = 0;

    /** Peak throughput in TOP/s (1 MAC = 1 op for the accelerators). */
    virtual double peakTopS() const = 0;

    /** Deep copy (fleets replicate a configured device by cloning). */
    virtual std::unique_ptr<Device> clone() const = 0;
};

} // namespace dota
