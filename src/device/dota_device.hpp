/**
 * @file
 * Device adapter for the DOTA accelerator (keys "dota-f" / "dota-c" /
 * "dota-a", one per operating mode of Section 5.3).
 */
#pragma once

#include "device/device.hpp"

namespace dota {

/** Registry key for a DOTA operating mode ("dota-f" / "dota-c" / ...). */
std::string dotaModeKey(DotaMode mode);

/** The DOTA accelerator in one fixed operating mode. */
class DotaDevice : public Device
{
  public:
    DotaDevice(DotaMode mode, const DeviceOptions &opt);

    RunReport simulate(const Benchmark &bench) const override;
    RunReport simulateGeneration(const Benchmark &bench) const override;
    std::string name() const override { return dotaModeName(mode_); }
    double peakTopS() const override { return accel_.hw().peakTops(); }
    std::unique_ptr<Device> clone() const override;

    DotaMode mode() const { return mode_; }
    const SimOptions &simOptions() const { return sim_; }
    const DotaAccelerator &accelerator() const { return accel_; }

  private:
    DotaMode mode_;
    SimOptions sim_;
    DotaAccelerator accel_;
};

} // namespace dota
