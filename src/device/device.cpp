/**
 * @file
 * Shared Device behavior.
 */
#include "device/device.hpp"

#include "common/logging.hpp"

namespace dota {

RunReport
Device::simulateGeneration(const Benchmark &bench) const
{
    DOTA_FATAL("device {} has no autoregressive generation path (benchmark "
          "{})",
          name(), bench.name);
}

} // namespace dota
