/**
 * @file
 * Device adapter for the reconstructed ELSA accelerator (key "elsa").
 */
#pragma once

#include "device/device.hpp"

namespace dota {

/** ELSA (Ham et al., ISCA'21), attention block only. */
class ElsaDevice : public Device
{
  public:
    explicit ElsaDevice(const DeviceOptions &opt)
        : accel_(opt.hw, opt.energy, opt.elsa)
    {}

    RunReport
    simulate(const Benchmark &bench) const override
    {
        return accel_.simulate(bench);
    }

    // No simulateGeneration override: ELSA has no end-to-end execution
    // path (Section 5.3), so the base-class fatal() is the right answer.

    std::string name() const override { return "ELSA"; }

    double peakTopS() const override { return accel_.hw().peakTops(); }

    std::unique_ptr<Device>
    clone() const override
    {
        return std::make_unique<ElsaDevice>(*this);
    }

    const ElsaAccelerator &accelerator() const { return accel_; }

  private:
    ElsaAccelerator accel_;
};

} // namespace dota
