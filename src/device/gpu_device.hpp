/**
 * @file
 * Device adapter for the V100 roofline model (key "gpu-v100").
 */
#pragma once

#include "device/device.hpp"

namespace dota {

/** Dense-attention GPU baseline. */
class GpuDevice : public Device
{
  public:
    explicit GpuDevice(const DeviceOptions &opt) : cfg_(opt.gpu) {}

    RunReport
    simulate(const Benchmark &bench) const override
    {
        return simulateGpu(bench, cfg_);
    }

    RunReport
    simulateGeneration(const Benchmark &bench) const override
    {
        return simulateGpuGeneration(bench, cfg_);
    }

    std::string name() const override { return "GPU-V100"; }

    /** TOPS-equivalent peak (the roofline's compute ceiling). */
    double peakTopS() const override { return cfg_.peak_tflops; }

    std::unique_ptr<Device>
    clone() const override
    {
        return std::make_unique<GpuDevice>(*this);
    }

    const GpuConfig &config() const { return cfg_; }

  private:
    GpuConfig cfg_;
};

} // namespace dota
