/**
 * @file
 * Scale-out (sequence-level parallel) simulation — Section 4.1:
 * "Different input sequences share the same weights while requiring
 * duplicated hardware resources to be processed in parallel. Therefore,
 * we can scale-out multiple DOTA accelerators to improve sequence-level
 * parallelism."
 *
 * The FleetSimulator dispatches a batch of variable-length sequences
 * onto a fleet of Devices — which may mix backends (DOTA modes, ELSA,
 * the GPU roofline, any registered key) and per-slot speed bins — with
 * greedy earliest-completion-time scheduling, and reports makespan,
 * latency distribution, energy and per-accelerator utilization.
 * Per-length single-sequence costs come from each device's own
 * simulate() (cached per distinct (device, length) pair).
 *
 * run() itself is parallel (common/thread_pool.hpp, DOTA_THREADS): the
 * per-(device, length) cost evaluations and the per-accelerator
 * completion timelines are computed concurrently, while job-to-device
 * assignment and the final statistics merge stay serial in a fixed
 * order, so a dispatch is bit-identical at every thread count.
 */
#pragma once

#include <map>
#include <mutex>

#include "common/stats.hpp"
#include "device/registry.hpp"

namespace dota {

/** One slot of a heterogeneous fleet: @p count clones of one device. */
struct DeviceSpec
{
    std::string key = "dota-c"; ///< DeviceRegistry key
    size_t count = 1;
    /**
     * Service-time divisor for this slot (clock binning / part speed):
     * a device with speed 2.0 finishes jobs in half the simulated time.
     * Per-job energy is not scaled (same work, different wall clock).
     */
    double speed = 1.0;
    DeviceOptions opts;
};

/** Fleet configuration. */
struct FleetConfig
{
    /**
     * Heterogeneous fleet description. When empty, a homogeneous DOTA
     * fleet of `accelerators` copies is built from the legacy fields
     * below and the SimOptions handed to the constructor.
     */
    std::vector<DeviceSpec> devices;

    // Legacy homogeneous-DOTA knobs.
    size_t accelerators = 4;
    HwConfig accelerator = HwConfig::dota();
    EnergyModel energy = EnergyModel::tsmc22();
};

/** Outcome of one batch dispatch. */
struct FleetReport
{
    double makespan_ms = 0.0;      ///< time until the last job finishes
    double total_work_ms = 0.0;    ///< sum of job service times
    double mean_latency_ms = 0.0;  ///< mean completion time
    double max_latency_ms = 0.0;
    double utilization = 0.0;      ///< total_work / (N * makespan)
    double throughput_seq_s = 0.0; ///< jobs / makespan
    double total_energy_j = 0.0;   ///< sum of per-job simulate() energy
    double energy_per_seq_j = 0.0; ///< total_energy_j / jobs
    std::vector<double> accel_busy_ms;     ///< per-accelerator busy time
    std::vector<std::string> accel_device; ///< per-accelerator name
    Distribution latency;          ///< completion-time distribution
};

/** Batch simulator over identical-model, variable-length sequences. */
class FleetSimulator
{
  public:
    /**
     * @param cfg    fleet composition (heterogeneous specs or the
     *               legacy homogeneous fields)
     * @param bench  model/benchmark every sequence runs
     * @param opt    DOTA simulation options, used by the legacy
     *               homogeneous path (cfg.devices empty); heterogeneous
     *               slots carry their own DeviceOptions
     */
    FleetSimulator(FleetConfig cfg, const Benchmark &bench,
                   SimOptions opt = SimOptions{});

    /** Fleet from pre-built devices (one accelerator each, speed 1). */
    FleetSimulator(std::vector<std::unique_ptr<Device>> devices,
                   const Benchmark &bench);

    /**
     * Single-sequence service time of @p seq_len tokens on accelerator
     * @p accel (cached per distinct (device, length); thread-safe).
     * Includes the slot's speed factor.
     */
    double sequenceLatencyMs(size_t seq_len, size_t accel = 0) const;

    /** Single-sequence energy on accelerator @p accel (not speed-scaled). */
    double sequenceEnergyJ(size_t seq_len, size_t accel = 0) const;

    /**
     * Evaluate (in parallel) and cache the cost of every distinct
     * (device, length) pair in @p seq_lens. run() calls this first;
     * exposed so callers can pre-warm the cache explicitly.
     */
    void warmLatencyCache(const std::vector<size_t> &seq_lens) const;

    /**
     * Dispatch @p seq_lens greedily: longest job first onto the
     * accelerator that completes it earliest (speed-aware LPT/ECT list
     * scheduling; collapses to classic LPT on a homogeneous fleet).
     */
    FleetReport run(const std::vector<size_t> &seq_lens) const;

    size_t size() const { return devices_.size(); }
    const Device &device(size_t accel) const { return *devices_[accel]; }
    double speed(size_t accel) const { return speed_[accel]; }

  private:
    /** Unscaled cost of one sequence on one cache group. */
    struct Cost
    {
        double ms = 0.0;
        double energy_j = 0.0;
    };

    Cost groupCost(size_t group, size_t seq_len) const;

    Benchmark bench_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::vector<double> speed_;
    /**
     * Accelerator -> latency-cache group. Clones of one DeviceSpec share
     * a group (identical device => identical per-length costs); devices
     * injected directly each get their own.
     */
    std::vector<size_t> group_of_;
    size_t groups_ = 0;
    mutable std::mutex cache_mu_;
    mutable std::map<std::pair<size_t, size_t>, Cost> cost_cache_;
};

} // namespace dota
