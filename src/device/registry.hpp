/**
 * @file
 * String-keyed factory registry for simulated devices.
 *
 * Built-in keys:
 *   dota-f    DOTA accelerator, full attention (no omission)
 *   dota-c    DOTA accelerator, conservative retention
 *   dota-a    DOTA accelerator, aggressive retention
 *   elsa      ELSA accelerator (attention block only)
 *   gpu-v100  dense V100 GPU roofline
 *
 * New backends register themselves with registerDevice() — typically
 * from a static initializer in their own translation unit — and become
 * available to the System facade, the fleet simulator and dota_cli
 * without further plumbing.
 */
#pragma once

#include <functional>
#include <vector>

#include "device/device.hpp"

namespace dota {

/** Factory registry; all members are static (process-wide registry). */
class DeviceRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<Device>(const DeviceOptions &)>;

    /** Instantiate the device registered under @p key; fatal() if
     * unknown. */
    static std::unique_ptr<Device>
    create(const std::string &key,
           const DeviceOptions &opt = DeviceOptions{});

    /** Whether @p key is registered. */
    static bool contains(const std::string &key);

    /** All registered keys, sorted. */
    static std::vector<std::string> keys();

    /** One-line description of the device behind @p key. */
    static std::string describe(const std::string &key);

    /**
     * Register a backend. Returns true (so it can initialize a static
     * bool); duplicate keys are a fatal() configuration error.
     */
    static bool registerDevice(const std::string &key,
                               const std::string &description,
                               Factory factory);
};

} // namespace dota
