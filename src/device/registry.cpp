/**
 * @file
 * Device registry implementation and built-in registrations.
 */
#include "device/registry.hpp"

#include <map>

#include "common/logging.hpp"
#include "common/strutil.hpp"
#include "device/dota_device.hpp"
#include "device/elsa_device.hpp"
#include "device/gpu_device.hpp"

namespace dota {

namespace {

struct Entry
{
    std::string description;
    DeviceRegistry::Factory factory;
};

std::map<std::string, Entry> &
table()
{
    static std::map<std::string, Entry> entries = [] {
        std::map<std::string, Entry> t;
        auto dotaFactory = [](DotaMode mode) {
            return [mode](const DeviceOptions &opt) {
                return std::unique_ptr<Device>(
                    std::make_unique<DotaDevice>(mode, opt));
            };
        };
        t["dota-f"] = {"DOTA accelerator, full attention (retention "
                       "1.0, no detection)",
                       dotaFactory(DotaMode::Full)};
        t["dota-c"] = {"DOTA accelerator, conservative retention "
                       "(<0.5% accuracy loss)",
                       dotaFactory(DotaMode::Conservative)};
        t["dota-a"] = {"DOTA accelerator, aggressive retention "
                       "(<1.5% accuracy loss)",
                       dotaFactory(DotaMode::Aggressive)};
        t["elsa"] = {"ELSA (ISCA'21) sign-random-projection "
                     "accelerator, attention block only",
                     [](const DeviceOptions &opt) {
                         return std::unique_ptr<Device>(
                             std::make_unique<ElsaDevice>(opt));
                     }};
        t["gpu-v100"] = {"NVIDIA V100 GPU, dense attention (calibrated "
                         "roofline)",
                         [](const DeviceOptions &opt) {
                             return std::unique_ptr<Device>(
                                 std::make_unique<GpuDevice>(opt));
                         }};
        return t;
    }();
    return entries;
}

const Entry &
lookup(const std::string &key)
{
    const auto it = table().find(key);
    if (it == table().end())
        DOTA_FATAL("unknown device key '{}' (available: {})", key,
              join(DeviceRegistry::keys(), ", "));
    return it->second;
}

} // namespace

std::unique_ptr<Device>
DeviceRegistry::create(const std::string &key, const DeviceOptions &opt)
{
    return lookup(key).factory(opt);
}

bool
DeviceRegistry::contains(const std::string &key)
{
    return table().count(key) != 0;
}

std::vector<std::string>
DeviceRegistry::keys()
{
    std::vector<std::string> out;
    out.reserve(table().size());
    for (const auto &[key, entry] : table())
        out.push_back(key);
    return out; // std::map iterates sorted
}

std::string
DeviceRegistry::describe(const std::string &key)
{
    return lookup(key).description;
}

bool
DeviceRegistry::registerDevice(const std::string &key,
                               const std::string &description,
                               Factory factory)
{
    const auto [it, inserted] =
        table().emplace(key, Entry{description, std::move(factory)});
    if (!inserted)
        DOTA_FATAL("device key '{}' registered twice", key);
    return true;
}

} // namespace dota
