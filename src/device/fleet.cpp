/**
 * @file
 * Implementation of the scale-out fleet simulator.
 */
#include "device/fleet.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "device/dota_device.hpp"

namespace dota {

FleetSimulator::FleetSimulator(FleetConfig cfg, const Benchmark &bench,
                               SimOptions opt)
    : bench_(bench)
{
    std::vector<DeviceSpec> specs = std::move(cfg.devices);
    if (specs.empty()) {
        // Legacy homogeneous path: N identical DOTA accelerators built
        // from the scalar FleetConfig fields and the SimOptions.
        DeviceSpec spec;
        spec.key = dotaModeKey(opt.mode);
        spec.count = cfg.accelerators;
        spec.opts.hw = cfg.accelerator;
        spec.opts.energy = cfg.energy;
        spec.opts.sim = opt;
        specs.push_back(std::move(spec));
    }
    for (const DeviceSpec &spec : specs) {
        DOTA_ASSERT(spec.count >= 1, "device spec needs count >= 1");
        DOTA_ASSERT(spec.speed > 0.0, "device speed must be positive");
        const std::unique_ptr<Device> proto =
            DeviceRegistry::create(spec.key, spec.opts);
        for (size_t i = 0; i < spec.count; ++i) {
            devices_.push_back(proto->clone());
            speed_.push_back(spec.speed);
            group_of_.push_back(groups_);
        }
        ++groups_;
    }
    DOTA_ASSERT(!devices_.empty(), "fleet needs at least one "
                                   "accelerator");
}

FleetSimulator::FleetSimulator(
    std::vector<std::unique_ptr<Device>> devices, const Benchmark &bench)
    : bench_(bench), devices_(std::move(devices))
{
    DOTA_ASSERT(!devices_.empty(), "fleet needs at least one "
                                   "accelerator");
    speed_.assign(devices_.size(), 1.0);
    for (size_t a = 0; a < devices_.size(); ++a)
        group_of_.push_back(a);
    groups_ = devices_.size();
}

FleetSimulator::Cost
FleetSimulator::groupCost(size_t group, size_t seq_len) const
{
    const std::pair<size_t, size_t> key{group, seq_len};
    {
        std::lock_guard<std::mutex> lk(cache_mu_);
        auto it = cost_cache_.find(key);
        if (it != cost_cache_.end())
            return it->second;
    }
    Benchmark b = bench_;
    b.paper_shape.seq_len = seq_len;
    // Any accelerator of the group computes the same cost.
    const auto rep = static_cast<size_t>(
        std::find(group_of_.begin(), group_of_.end(), group) -
        group_of_.begin());
    const RunReport r = devices_[rep]->simulate(b);
    const Cost cost{r.timeMs(), r.totalEnergyJ()};
    std::lock_guard<std::mutex> lk(cache_mu_);
    cost_cache_[key] = cost;
    return cost;
}

double
FleetSimulator::sequenceLatencyMs(size_t seq_len, size_t accel) const
{
    return groupCost(group_of_[accel], seq_len).ms / speed_[accel];
}

double
FleetSimulator::sequenceEnergyJ(size_t seq_len, size_t accel) const
{
    return groupCost(group_of_[accel], seq_len).energy_j;
}

void
FleetSimulator::warmLatencyCache(
    const std::vector<size_t> &seq_lens) const
{
    std::vector<std::pair<size_t, size_t>> missing;
    {
        const std::set<size_t> distinct(seq_lens.begin(),
                                        seq_lens.end());
        std::lock_guard<std::mutex> lk(cache_mu_);
        for (size_t g = 0; g < groups_; ++g)
            for (size_t n : distinct)
                if (!cost_cache_.count({g, n}))
                    missing.push_back({g, n});
    }
    if (missing.empty())
        return;
    // Each distinct (device, length) pair is an independent simulation;
    // results land in a fixed-index array, then merge under the lock in
    // deterministic order.
    std::vector<Cost> costs(missing.size());
    std::vector<size_t> rep_of(groups_);
    for (size_t a = devices_.size(); a-- > 0;)
        rep_of[group_of_[a]] = a;
    parallelFor(0, missing.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            Benchmark b = bench_;
            b.paper_shape.seq_len = missing[i].second;
            const RunReport r =
                devices_[rep_of[missing[i].first]]->simulate(b);
            costs[i] = Cost{r.timeMs(), r.totalEnergyJ()};
        }
    });
    std::lock_guard<std::mutex> lk(cache_mu_);
    for (size_t i = 0; i < missing.size(); ++i)
        cost_cache_[missing[i]] = costs[i];
}

FleetReport
FleetSimulator::run(const std::vector<size_t> &seq_lens) const
{
    const size_t n_accel = devices_.size();
    FleetReport report;
    report.accel_busy_ms.assign(n_accel, 0.0);
    report.accel_device.reserve(n_accel);
    for (const auto &dev : devices_)
        report.accel_device.push_back(dev->name());
    if (seq_lens.empty())
        return report;

    warmLatencyCache(seq_lens);

    // Per-job service time on every accelerator (speed-aware), plus the
    // unscaled energy per cache group.
    const size_t jobs = seq_lens.size();
    std::vector<std::vector<double>> service(jobs);
    std::vector<double> worst(jobs, 0.0);
    for (size_t j = 0; j < jobs; ++j) {
        service[j].reserve(n_accel);
        for (size_t a = 0; a < n_accel; ++a) {
            const double ms = sequenceLatencyMs(seq_lens[j], a);
            service[j].push_back(ms);
            worst[j] = std::max(worst[j], ms);
        }
    }

    // LPT order generalized to heterogeneous fleets: largest worst-case
    // service first (on a homogeneous fleet this is exactly classic
    // LPT); ties broken by length then index for determinism.
    std::vector<size_t> order(jobs);
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (worst[a] != worst[b])
            return worst[a] > worst[b];
        if (seq_lens[a] != seq_lens[b])
            return seq_lens[a] > seq_lens[b];
        return a < b;
    });

    // Phase 1 (serial): greedy earliest-completion-time assignment. The
    // running busy totals drive every target choice, so this stays
    // sequential. On identical devices this picks the least-busy
    // accelerator, i.e. the classic earliest-available rule.
    std::vector<std::vector<double>> assigned(n_accel);
    std::vector<double> busy(n_accel, 0.0);
    for (size_t idx : order) {
        size_t target = 0;
        double best = busy[0] + service[idx][0];
        for (size_t a = 1; a < n_accel; ++a) {
            const double done = busy[a] + service[idx][a];
            if (done < best) {
                best = done;
                target = a;
            }
        }
        busy[target] += service[idx][target];
        assigned[target].push_back(service[idx][target]);
        report.total_work_ms += service[idx][target];
        report.total_energy_j +=
            sequenceEnergyJ(seq_lens[idx], target);
    }

    // Phase 2 (parallel): per-accelerator completion timelines — once
    // jobs are assigned each accelerator's prefix sums are independent.
    std::vector<std::vector<double>> completion(n_accel);
    parallelFor(0, n_accel, 1, [&](size_t lo, size_t hi) {
        for (size_t a = lo; a < hi; ++a) {
            completion[a].reserve(assigned[a].size());
            double t = 0.0;
            for (double svc : assigned[a]) {
                t += svc;
                completion[a].push_back(t);
            }
        }
    });

    // Phase 3 (serial, fixed accelerator order): merge the statistics.
    double latency_sum = 0.0;
    for (size_t a = 0; a < n_accel; ++a) {
        report.accel_busy_ms[a] =
            completion[a].empty() ? 0.0 : completion[a].back();
        for (double done : completion[a]) {
            latency_sum += done;
            report.latency.sample(done);
            report.max_latency_ms = std::max(report.max_latency_ms, done);
        }
    }
    report.makespan_ms = *std::max_element(report.accel_busy_ms.begin(),
                                           report.accel_busy_ms.end());
    report.mean_latency_ms =
        latency_sum / static_cast<double>(jobs);
    // A zero makespan (every job had zero service time) must not turn
    // the rate metrics into inf/NaN.
    if (report.makespan_ms > 0.0) {
        report.utilization =
            report.total_work_ms /
            (report.makespan_ms * static_cast<double>(n_accel));
        report.throughput_seq_s =
            static_cast<double>(jobs) / (report.makespan_ms * 1e-3);
        report.energy_per_seq_j =
            report.total_energy_j / static_cast<double>(jobs);
    }
    return report;
}

} // namespace dota
