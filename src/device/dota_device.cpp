/**
 * @file
 * DOTA accelerator Device adapter.
 */
#include "device/dota_device.hpp"

#include "common/logging.hpp"

namespace dota {

std::string
dotaModeKey(DotaMode mode)
{
    switch (mode) {
      case DotaMode::Full:
        return "dota-f";
      case DotaMode::Conservative:
        return "dota-c";
      case DotaMode::Aggressive:
        return "dota-a";
    }
    DOTA_PANIC("unknown DotaMode {}", static_cast<int>(mode));
}

DotaDevice::DotaDevice(DotaMode mode, const DeviceOptions &opt)
    : mode_(mode), sim_(opt.sim), accel_(opt.hw, opt.energy)
{
    sim_.mode = mode;
}

RunReport
DotaDevice::simulate(const Benchmark &bench) const
{
    return accel_.simulate(bench, sim_);
}

RunReport
DotaDevice::simulateGeneration(const Benchmark &bench) const
{
    return accel_.simulateGeneration(bench, sim_);
}

std::unique_ptr<Device>
DotaDevice::clone() const
{
    return std::make_unique<DotaDevice>(*this);
}

} // namespace dota
