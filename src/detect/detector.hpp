/**
 * @file
 * The DOTA weak-attention Detector — the paper's core algorithmic
 * contribution (Section 3).
 *
 * The detector estimates raw attention scores with a pair of low-rank,
 * low-precision linear transformations:
 *
 *     Q~, K~ = (X P) W~Q, (X P) W~K            (Eq. 4)
 *     S~     = Q~ K~^T
 *
 * where P is a fixed Achlioptas sparse random projection (d x k) and
 * W~Q / W~K are trainable k x k matrices, k = floor(sigma * head_dim).
 * Connections are kept by row-balanced top-k on S~ (the balance constraint
 * of Section 4.3) or by a preset threshold (the hardware comparator path).
 *
 * Training follows the joint optimization of Section 3.2:
 * L = L_model + lambda * L_MSE with L_MSE = mean (S - S~)^2 (Eq. 5/6).
 * The detector is installed into attention layers as an AttentionHook;
 * during the model's backward pass it (a) injects lambda * dL_MSE/dS into
 * the attention gradient (adapting the model and making S easier to
 * estimate — Section 3.3) and (b) accumulates its own parameter gradients
 * through a straight-through estimator across the quantizers.
 */
#pragma once

#include <vector>

#include "nn/attention_hook.hpp"
#include "nn/param.hpp"
#include "nn/transformer.hpp"
#include "tensor/quant.hpp"
#include "tensor/random_projection.hpp"
#include "tensor/topk.hpp"

namespace dota {

/** Detector hyper-parameters. */
struct DetectorConfig
{
    double sigma = 0.25;   ///< rank reduction: k = floor(sigma * head_dim)
    int bits = 4;          ///< detection precision for X*P and W~ (INT4);
                           ///< products Q~/K~ carry 2x the width (Sec 5.5)
    bool quantize = true;  ///< false = FP32 detection (DSE upper bound)
    double retention = 0.1;///< per-row keep fraction
    double lambda = 1.0;   ///< weight of L_MSE in the joint loss
    bool train = true;     ///< accumulate detector gradients + inject dS
    bool inject_model_grad = true; ///< pass lambda*dL_MSE/dS to the model
                                   ///< (the "joint" in joint optimization)
    bool apply_mask = true;///< false = dense attention (detector warmup)
    bool use_threshold = false; ///< threshold comparator instead of top-k
    float threshold = 0.0f;     ///< preset comparator threshold
    uint64_t seed = 17;    ///< P initialization seed
};

/** Trainable weak-attention detector (installable AttentionHook). */
class DotaDetector : public AttentionHook, public Module
{
  public:
    /**
     * @param model_cfg  shape of the transformer being instrumented
     * @param cfg        detector hyper-parameters
     */
    DotaDetector(const TransformerConfig &model_cfg, DetectorConfig cfg);

    // AttentionHook interface -------------------------------------------
    void beginLayer(size_t layer, const Matrix &x) override;
    Matrix selectMask(size_t layer, size_t head, bool causal) override;
    void observeScores(size_t layer, size_t head,
                       const Matrix &s_true) override;
    Matrix scoreGradient(size_t layer, size_t head) override;

    /**
     * The full S is only needed while training (L_MSE and its gradients).
     * At inference the detector's decisions come entirely from the
     * low-rank estimate, so the attention layer may omit the weak scores
     * outright — the speedup the paper's accelerator realizes in
     * hardware. Measurement code that wants inference-time L_MSE or
     * detection-quality metrics forces the dense path explicitly
     * (MultiHeadAttention::setForceDense).
     */
    bool wantsFullScores() const override { return cfg_.train; }

    // Module interface ---------------------------------------------------
    void collectParams(std::vector<Parameter *> &out) override;

    /** Mean estimation loss accumulated since the last call, then reset. */
    double consumeMseLoss();

    /** Estimated score matrix S~ of the last forward for one head. */
    const Matrix &lastEstimate(size_t layer, size_t head) const;

    /** Keep-count used for an n-token sequence under this retention. */
    size_t keepCount(size_t n) const;

    /** Reduced rank k. */
    size_t rank() const { return k_; }

    DetectorConfig &config() { return cfg_; }
    const DetectorConfig &config() const { return cfg_; }

    /**
     * Estimate scores for an externally supplied feature matrix without
     * going through a model (used by the simulator's functional path and
     * by unit tests): returns S~ for the given layer/head.
     */
    Matrix estimateScores(size_t layer, size_t head, const Matrix &x);

  private:
    size_t headIndex(size_t layer, size_t head) const;
    Matrix quantizedProduct(const Matrix &xp, const Matrix &w) const;

    TransformerConfig model_cfg_;
    DetectorConfig cfg_;
    size_t k_;      ///< reduced rank
    Matrix p_;      ///< d x k sparse random projection (fixed)
    std::vector<Parameter> wq_; ///< per layer*head, k x k
    std::vector<Parameter> wk_;

    // Per-forward caches (indexed by layer*heads + head).
    Matrix xp_;              ///< X * P of the current layer
    Matrix xp_q_;            ///< quantized X * P
    size_t current_layer_ = 0;
    std::vector<Matrix> qt_;   ///< Q~ per head slot
    std::vector<Matrix> kt_;   ///< K~ per head slot
    std::vector<Matrix> est_;  ///< S~ per head slot
    std::vector<Matrix> diff_; ///< (S~ - S) per head slot

    double mse_sum_ = 0.0;
    uint64_t mse_count_ = 0;
};

} // namespace dota
