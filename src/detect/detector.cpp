/**
 * @file
 * Implementation of the DOTA detector.
 */
#include "detect/detector.hpp"

#include <cmath>

namespace dota {

DotaDetector::DotaDetector(const TransformerConfig &model_cfg,
                           DetectorConfig cfg)
    : model_cfg_(model_cfg), cfg_(cfg)
{
    const size_t head_dim = model_cfg_.headDim();
    k_ = std::max<size_t>(
        1, static_cast<size_t>(std::floor(
               cfg_.sigma * static_cast<double>(head_dim))));
    Rng rng(cfg_.seed);
    p_ = sparseRandomProjection(model_cfg_.dim, k_, rng);

    const size_t slots = model_cfg_.layers * model_cfg_.heads;
    wq_.reserve(slots);
    wk_.reserve(slots);
    for (size_t s = 0; s < slots; ++s) {
        // Near-identity init: the estimate starts as the projected inner
        // product, which is already correlated with S.
        Matrix init_q = Matrix::identity(k_);
        Matrix init_k = Matrix::identity(k_);
        Matrix noise_q = Matrix::randomNormal(k_, k_, rng, 0.0f, 0.05f);
        Matrix noise_k = Matrix::randomNormal(k_, k_, rng, 0.0f, 0.05f);
        wq_.emplace_back(format("det.wq{}", s), add(init_q, noise_q));
        wk_.emplace_back(format("det.wk{}", s), add(init_k, noise_k));
    }
    qt_.resize(slots);
    kt_.resize(slots);
    est_.resize(slots);
    diff_.resize(slots);
}

size_t
DotaDetector::headIndex(size_t layer, size_t head) const
{
    DOTA_ASSERT(layer < model_cfg_.layers && head < model_cfg_.heads,
                "detector slot ({}, {}) out of range", layer, head);
    return layer * model_cfg_.heads + head;
}

size_t
DotaDetector::keepCount(size_t n) const
{
    return std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               cfg_.retention * static_cast<double>(n))));
}

Matrix
DotaDetector::quantizedProduct(const Matrix &xp, const Matrix &w) const
{
    if (!cfg_.quantize)
        return matmul(xp, w);
    // Operands at cfg_.bits; the product is re-quantized at double width,
    // the representation the RMMU carries into the S~ GEMM (Section 5.5).
    const Matrix prod = matmul(xp, fakeQuant(w, cfg_.bits));
    return fakeQuant(prod, std::min(16, 2 * cfg_.bits));
}

void
DotaDetector::beginLayer(size_t layer, const Matrix &x)
{
    current_layer_ = layer;
    xp_ = matmul(x, p_);
    xp_q_ = cfg_.quantize ? fakeQuant(xp_, cfg_.bits) : xp_;
}

Matrix
DotaDetector::selectMask(size_t layer, size_t head, bool causal)
{
    const size_t slot = headIndex(layer, head);
    DOTA_ASSERT(layer == current_layer_,
                "selectMask for layer {} but beginLayer saw {}", layer,
                current_layer_);

    qt_[slot] = quantizedProduct(xp_q_, wq_[slot].value);
    kt_[slot] = quantizedProduct(xp_q_, wk_[slot].value);
    est_[slot] = matmulBT(qt_[slot], kt_[slot]);

    if (!cfg_.apply_mask)
        return {}; // warmup: estimate is trained but attention stays dense

    const size_t n = est_[slot].rows();
    if (cfg_.use_threshold) {
        Matrix mask = thresholdMask(est_[slot], cfg_.threshold);
        if (causal) {
            for (size_t i = 0; i < n; ++i)
                for (size_t j = i + 1; j < n; ++j)
                    mask(i, j) = 0.0f;
            // Guarantee progress: every row keeps its diagonal.
            for (size_t i = 0; i < n; ++i)
                mask(i, i) = 1.0f;
        }
        return mask;
    }
    const size_t keep = keepCount(n);
    return causal ? topkMaskCausal(est_[slot], keep)
                  : topkMask(est_[slot], keep);
}

void
DotaDetector::observeScores(size_t layer, size_t head,
                            const Matrix &s_true)
{
    const size_t slot = headIndex(layer, head);
    DOTA_ASSERT(!est_[slot].empty(), "observeScores before selectMask");
    diff_[slot] = sub(est_[slot], s_true); // S~ - S
    const double loss = mse(est_[slot], s_true);
    mse_sum_ += loss;
    ++mse_count_;

    if (!cfg_.train)
        return;

    // Detector parameter gradients (straight-through across quantizers):
    //   L = lambda * mean (S~ - S)^2,  S~ = Q~ K~^T
    //   dS~ = coef * (S~ - S); dQ~ = dS~ K~; dK~ = dS~^T Q~
    //   dW~q = (XP)^T dQ~;     dW~k = (XP)^T dK~
    // Computed here (forward time) so the detector can also be trained
    // without a model backward pass (warmup on a frozen model).
    const Matrix &d = diff_[slot];
    const float coef = static_cast<float>(
        2.0 * cfg_.lambda / static_cast<double>(d.size()));
    const Matrix ds_est = scale(d, coef);
    const Matrix dqt = matmul(ds_est, kt_[slot]);
    const Matrix dkt = matmulAT(ds_est, qt_[slot]);
    const Matrix dwq = matmulAT(xp_q_, dqt);
    const Matrix dwk = matmulAT(xp_q_, dkt);
    for (size_t i = 0; i < dwq.size(); ++i) {
        wq_[slot].grad.data()[i] += dwq.data()[i];
        wk_[slot].grad.data()[i] += dwk.data()[i];
    }
}

Matrix
DotaDetector::scoreGradient(size_t layer, size_t head)
{
    if (!cfg_.train || !cfg_.inject_model_grad)
        return {};
    const size_t slot = headIndex(layer, head);
    DOTA_ASSERT(!diff_[slot].empty(), "scoreGradient before observeScores");
    const Matrix &d = diff_[slot];
    const float coef = static_cast<float>(
        2.0 * cfg_.lambda / static_cast<double>(d.size()));
    // Gradient injected into the model: dL/dS = -coef * (S~ - S).
    return scale(d, -coef);
}

void
DotaDetector::collectParams(std::vector<Parameter *> &out)
{
    for (auto &p : wq_)
        out.push_back(&p);
    for (auto &p : wk_)
        out.push_back(&p);
}

double
DotaDetector::consumeMseLoss()
{
    const double mean =
        mse_count_ ? mse_sum_ / static_cast<double>(mse_count_) : 0.0;
    mse_sum_ = 0.0;
    mse_count_ = 0;
    return mean;
}

const Matrix &
DotaDetector::lastEstimate(size_t layer, size_t head) const
{
    return est_[layer * model_cfg_.heads + head];
}

Matrix
DotaDetector::estimateScores(size_t layer, size_t head, const Matrix &x)
{
    beginLayer(layer, x);
    const size_t slot = headIndex(layer, head);
    qt_[slot] = quantizedProduct(xp_q_, wq_[slot].value);
    kt_[slot] = quantizedProduct(xp_q_, wk_[slot].value);
    est_[slot] = matmulBT(qt_[slot], kt_[slot]);
    return est_[slot];
}

} // namespace dota
