/**
 * @file
 * Implementation of the ELSA detection baseline.
 */
#include "detect/elsa_detector.hpp"

#include <cmath>

namespace dota {

void
ElsaDetector::observeQK(size_t layer, size_t head, const Matrix &q,
                        const Matrix &k)
{
    (void)layer;
    (void)head;
    // Fresh hyperplanes per head, as ELSA draws them per-layer in
    // hardware ROM; the estimate only needs them to be shared between the
    // query and key hashing of the same head.
    const Matrix planes =
        Matrix::randomNormal(q.cols(), cfg_.hash_bits, rng_);
    const SignHashes qh(q, planes);
    const SignHashes kh(k, planes);

    std::vector<double> knorm(k.rows(), 1.0);
    std::vector<double> qnorm(q.rows(), 1.0);
    if (cfg_.use_norms) {
        for (size_t j = 0; j < k.rows(); ++j) {
            double acc = 0.0;
            for (size_t c = 0; c < k.cols(); ++c)
                acc += static_cast<double>(k(j, c)) * k(j, c);
            knorm[j] = std::sqrt(acc);
        }
        for (size_t i = 0; i < q.rows(); ++i) {
            double acc = 0.0;
            for (size_t c = 0; c < q.cols(); ++c)
                acc += static_cast<double>(q(i, c)) * q(i, c);
            qnorm[i] = std::sqrt(acc);
        }
    }

    est_ = Matrix(q.rows(), k.rows());
    for (size_t i = 0; i < q.rows(); ++i)
        for (size_t j = 0; j < k.rows(); ++j)
            est_(i, j) = static_cast<float>(
                qnorm[i] * knorm[j] * qh.crossSimilarity(i, kh, j));
}

Matrix
ElsaDetector::selectMask(size_t layer, size_t head, bool causal)
{
    (void)layer;
    (void)head;
    DOTA_ASSERT(!est_.empty(), "selectMask before observeQK");
    const size_t n = est_.rows();
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               cfg_.retention * static_cast<double>(n))));
    return causal ? topkMaskCausal(est_, keep) : topkMask(est_, keep);
}

} // namespace dota
