/**
 * @file
 * Oracle "detector": row-wise top-k on the *true* attention scores.
 *
 * This is the post-hoc omission experiment of Section 2.2 / Table 1: it
 * measures how much attention can be omitted if detection were perfect,
 * and serves as the upper bound every practical detector is compared
 * against in the test suite and benches.
 */
#pragma once

#include "nn/attention_hook.hpp"
#include "tensor/ops.hpp"
#include "tensor/topk.hpp"

namespace dota {

/** Perfect-information top-k selection hook. */
class OracleDetector : public AttentionHook
{
  public:
    explicit OracleDetector(double retention) : retention_(retention) {}

    void
    beginLayer(size_t, const Matrix &) override
    {}

    void
    observeQK(size_t, size_t, const Matrix &q, const Matrix &k) override
    {
        scores_ = matmulBT(q, k);
    }

    Matrix
    selectMask(size_t, size_t, bool causal) override
    {
        DOTA_ASSERT(!scores_.empty(), "selectMask before observeQK");
        const size_t n = scores_.rows();
        const size_t keep = std::max<size_t>(
            1, static_cast<size_t>(retention_ * static_cast<double>(n)));
        return causal ? topkMaskCausal(scores_, keep)
                      : topkMask(scores_, keep);
    }

    void
    observeScores(size_t, size_t, const Matrix &) override
    {}

    /** Training-free: never inspects S, so the sparse path is legal. */
    bool wantsFullScores() const override { return false; }

    Matrix
    scoreGradient(size_t, size_t) override
    {
        return {};
    }

    void setRetention(double r) { retention_ = r; }
    double retention() const { return retention_; }

  private:
    double retention_;
    Matrix scores_;
};

} // namespace dota
