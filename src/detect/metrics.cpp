/**
 * @file
 * Implementation of detection-quality metrics.
 */
#include "detect/metrics.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"

namespace dota {

DetectionQuality
evaluateDetection(TransformerClassifier &model, const SyntheticTask &task,
                  AttentionHook &hook, size_t samples, double retention,
                  uint64_t seed)
{
    model.setHook(&hook);
    // Quality metrics compare the mask against the full score matrix, so
    // the sparse inference path (which never materializes S) must be
    // disabled for these probe forwards.
    model.setForceDense(true);
    Rng rng(seed);
    DetectionQuality q;
    size_t measured = 0;
    for (size_t s = 0; s < samples; ++s) {
        const Sample smp = task.sample(rng);
        model.forward(smp.features);
        for (auto &blk : model.blocks()) {
            auto &attn = blk->attention();
            const auto &scores = attn.lastScores();
            const auto &masks = attn.lastMasks();
            for (size_t h = 0; h < scores.size(); ++h) {
                if (masks[h].empty())
                    continue; // dense head: nothing to measure
                const size_t n = scores[h].rows();
                const size_t k = std::max<size_t>(
                    1, static_cast<size_t>(
                           retention * static_cast<double>(n)));
                q.recall += topkRecall(scores[h], masks[h], k);
                const float inv_sqrt_dk =
                    1.0f / std::sqrt(static_cast<float>(attn.headDim()));
                q.mass_recall += attentionMassRecall(
                    scale(scores[h], inv_sqrt_dk), masks[h]);
                q.density += maskDensity(masks[h]);
                ++measured;
            }
        }
    }
    model.setForceDense(false);
    model.setHook(nullptr);
    if (measured) {
        q.recall /= static_cast<double>(measured);
        q.mass_recall /= static_cast<double>(measured);
        q.density /= static_cast<double>(measured);
    }
    return q;
}

std::vector<SparseMask>
harvestMasks(TransformerClassifier &model)
{
    std::vector<SparseMask> out;
    for (auto &blk : model.blocks()) {
        auto &attn = blk->attention();
        for (const Matrix &m : attn.lastMasks()) {
            if (m.empty()) {
                // Dense: every connection selected. Recover the sequence
                // length from any head that has data (sparse-path heads
                // leave their score matrix empty).
                size_t n = 0;
                for (const Matrix &mm : attn.lastMasks())
                    if (!mm.empty())
                        n = mm.rows();
                for (const Matrix &s : attn.lastScores())
                    if (!s.empty())
                        n = s.rows();
                SparseMask full(n, n);
                std::vector<uint32_t> all(n);
                for (size_t c = 0; c < n; ++c)
                    all[c] = static_cast<uint32_t>(c);
                for (size_t r = 0; r < n; ++r)
                    full.setRow(r, all);
                out.push_back(std::move(full));
            } else {
                out.push_back(SparseMask::fromDense(m));
            }
        }
    }
    return out;
}

} // namespace dota
