/**
 * @file
 * Implementation of the A^3-style candidate search.
 */
#include "detect/a3_detector.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"

namespace dota {

void
A3Detector::observeQK(size_t, size_t, const Matrix &q, const Matrix &k)
{
    const size_t n = q.rows(), m = k.rows(), d = q.cols();

    // Preprocessing (done outside the accelerator in real A^3): sort key
    // indices by component value for every dimension.
    std::vector<std::vector<uint32_t>> sorted(d);
    for (size_t c = 0; c < d; ++c) {
        sorted[c].resize(m);
        std::iota(sorted[c].begin(), sorted[c].end(), 0u);
        std::sort(sorted[c].begin(), sorted[c].end(),
                  [&k, c](uint32_t a, uint32_t b) {
                      return k(a, c) > k(b, c);
                  });
    }

    // Greedy accumulation: per query and dimension, walk the iterations
    // largest products and add the partial contributions.
    est_ = Matrix(n, m);
    const size_t iters = std::min(cfg_.iterations, m);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < d; ++c) {
            const float qv = q(i, c);
            if (qv == 0.0f)
                continue;
            if (qv > 0.0f) {
                for (size_t t = 0; t < iters; ++t) {
                    const uint32_t key = sorted[c][t];
                    est_(i, key) += qv * k(key, c);
                }
            } else {
                for (size_t t = 0; t < iters; ++t) {
                    const uint32_t key = sorted[c][m - 1 - t];
                    est_(i, key) += qv * k(key, c);
                }
            }
        }
    }
}

Matrix
A3Detector::selectMask(size_t, size_t, bool causal)
{
    DOTA_ASSERT(!est_.empty(), "selectMask before observeQK");
    const size_t n = est_.rows();
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               cfg_.retention * static_cast<double>(n))));
    return causal ? topkMaskCausal(est_, keep) : topkMask(est_, keep);
}

} // namespace dota
