/**
 * @file
 * End-to-end training recipes for DOTA models (the paper's software
 * experiment methodology, Section 5.1): pre-train a dense baseline, warm
 * up the detector against the frozen model's attention scores, then
 * jointly optimize model + detector with omission enabled ("model
 * adaptation", Section 3.2).
 */
#pragma once

#include <memory>

#include "detect/detector.hpp"
#include "workloads/trainer.hpp"

namespace dota {

/** Knobs of the three-phase recipe. */
struct PipelineConfig
{
    TrainConfig pretrain;       ///< dense pre-training
    size_t warmup_steps = 60;   ///< detector-only regression steps
    size_t warmup_batch = 4;
    double warmup_lr = 5e-3;
    TrainConfig adapt;          ///< joint adaptation (mask enabled)

    PipelineConfig()
    {
        pretrain.steps = 150;
        adapt.steps = 150;
        // A gentler rate keeps the adaptation stable while masks evolve.
        adapt.adam.lr = 3e-4;
    }
};

/** Outcome of the full recipe. */
struct PipelineResult
{
    EvalResult dense;   ///< dense model after pre-training
    EvalResult sparse;  ///< adapted model with omission enabled
    double detector_mse = 0.0; ///< estimation loss at the end of adaptation
};

/**
 * Train only the detector to regress the frozen model's attention scores
 * (masks disabled). Returns the final mean estimation loss.
 */
double warmupDetector(TransformerClassifier &model,
                      const SyntheticTask &task, DotaDetector &detector,
                      size_t steps, size_t batch, double lr,
                      uint64_t seed = 777);

/** LM variant of the warmup. */
double warmupDetectorLM(CausalLM &model, const SyntheticGrammar &grammar,
                        DotaDetector &detector, size_t steps, size_t batch,
                        double lr, uint64_t seed = 777);

/**
 * Run the full three-phase recipe on a classifier task. On return the
 * model has the detector installed with omission enabled and training
 * disabled (inference configuration).
 */
PipelineResult runPipeline(TransformerClassifier &model,
                           const SyntheticTask &task,
                           DotaDetector &detector,
                           const PipelineConfig &cfg);

/** LM variant; EvalResult.metric is perplexity. */
PipelineResult runPipelineLM(CausalLM &model,
                             const SyntheticGrammar &grammar,
                             DotaDetector &detector,
                             const PipelineConfig &cfg);

/**
 * Calibrate the hardware comparator's preset threshold (Section 3.1:
 * "tuning from the validation set"): run @p samples probe forwards with
 * masks disabled and pick the estimated-score threshold whose density
 * matches @p retention across all layers/heads. The detector is left in
 * threshold mode with the calibrated value installed.
 */
float calibrateThreshold(TransformerClassifier &model,
                         const SyntheticTask &task, DotaDetector &detector,
                         double retention, size_t samples = 4,
                         uint64_t seed = 555);

} // namespace dota
