/**
 * @file
 * Static sparse-attention baseline (Longformer/BigBird-style): a fixed
 * local window around the diagonal plus a set of global tokens that
 * everyone attends to (and that attend to everyone).
 *
 * The paper's Section 6.1 argues that static patterns "lack the
 * capability of capturing dynamic sparse attentions" — this hook exists
 * so that claim can be measured: at matched retention, the static
 * pattern misses the input-dependent strong connections a trained
 * detector finds.
 */
#pragma once

#include <algorithm>

#include "nn/attention_hook.hpp"

namespace dota {

/** Static window + global-token pattern configuration. */
struct StaticPatternConfig
{
    double retention = 0.1;  ///< total density target
    double global_fraction = 0.25; ///< share of the budget on globals
    /**
     * Global token placement: evenly spaced across the sequence
     * (sentence-leading tokens in Longformer correspond to position 0;
     * even spacing is the stronger variant).
     */
};

/** Input-independent window+global mask generator. */
class StaticPatternDetector : public AttentionHook
{
  public:
    explicit StaticPatternDetector(StaticPatternConfig cfg) : cfg_(cfg) {}

    void
    beginLayer(size_t, const Matrix &x) override
    {
        n_ = x.rows();
    }

    Matrix selectMask(size_t layer, size_t head, bool causal) override;

    void
    observeScores(size_t, size_t, const Matrix &) override
    {}

    /** Training-free: never inspects S, so the sparse path is legal. */
    bool wantsFullScores() const override { return false; }

    Matrix
    scoreGradient(size_t, size_t) override
    {
        return {};
    }

    StaticPatternConfig &config() { return cfg_; }

  private:
    StaticPatternConfig cfg_;
    size_t n_ = 0;
};

} // namespace dota
