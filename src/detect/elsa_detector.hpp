/**
 * @file
 * Reconstruction of ELSA's approximation scheme (Ham et al., ISCA'21) as
 * an AttentionHook, used as the paper's detection-quality baseline.
 *
 * ELSA estimates the angle between each query and key with sign random
 * projections: both vectors are hashed onto m hyperplanes, and the
 * Hamming distance h between the hashes estimates the angle
 * theta ~ pi * h / m, so the score estimate is |q||k| cos(theta).
 * Unlike DOTA's detector it is training-free — which is exactly why its
 * detection quality degrades on long sequences (Section 2.3 / 6.2).
 */
#pragma once

#include "nn/attention_hook.hpp"
#include "tensor/random_projection.hpp"
#include "tensor/topk.hpp"

namespace dota {

/** ELSA detection-baseline configuration (hook side). */
struct ElsaDetectorConfig
{
    size_t hash_bits = 16; ///< hyperplanes per head
    double retention = 0.2;///< per-row keep fraction (paper: 20%)
    bool use_norms = true; ///< scale cos estimate by |q||k| (full ELSA)
    uint64_t seed = 23;
};

/** Sign-random-projection detection baseline. */
class ElsaDetector : public AttentionHook
{
  public:
    explicit ElsaDetector(ElsaDetectorConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

    void
    beginLayer(size_t layer, const Matrix &x) override
    {
        (void)layer;
        (void)x; // ELSA works on projected Q/K, delivered via observeQK.
    }

    void observeQK(size_t layer, size_t head, const Matrix &q,
                   const Matrix &k) override;

    Matrix selectMask(size_t layer, size_t head, bool causal) override;

    void
    observeScores(size_t, size_t, const Matrix &) override
    {}

    /** Training-free: never inspects S, so the sparse path is legal. */
    bool wantsFullScores() const override { return false; }

    Matrix
    scoreGradient(size_t, size_t) override
    {
        return {}; // training-free
    }

    /** Estimated score matrix of the pending head (for tests/metrics). */
    const Matrix &lastEstimate() const { return est_; }

    ElsaDetectorConfig &config() { return cfg_; }

  private:
    ElsaDetectorConfig cfg_;
    Rng rng_;
    Matrix est_; ///< estimate for the head observed most recently
};

} // namespace dota
