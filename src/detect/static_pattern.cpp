/**
 * @file
 * Implementation of the static window+global pattern.
 */
#include "detect/static_pattern.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace dota {

Matrix
StaticPatternDetector::selectMask(size_t, size_t, bool causal)
{
    DOTA_ASSERT(n_ > 0, "selectMask before beginLayer");
    const size_t n = n_;
    const size_t budget = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               cfg_.retention * static_cast<double>(n))));
    const size_t globals = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               cfg_.global_fraction * static_cast<double>(budget))));
    const size_t half_window = std::max<size_t>(1, (budget - globals) / 2);

    // Evenly spaced global token positions.
    std::vector<size_t> global_pos;
    global_pos.reserve(globals);
    for (size_t g = 0; g < globals; ++g)
        global_pos.push_back(g * n / globals);

    Matrix mask(n, n);
    for (size_t r = 0; r < n; ++r) {
        // Local window (clamped at the edges).
        const size_t lo = r >= half_window ? r - half_window : 0;
        const size_t hi = std::min(n - 1, r + half_window);
        for (size_t c = lo; c <= hi; ++c)
            mask(r, c) = 1.0f;
        // Global columns: everyone attends to them.
        for (size_t g : global_pos)
            mask(r, g) = 1.0f;
    }
    // Global rows: they attend to everyone.
    for (size_t g : global_pos)
        for (size_t c = 0; c < n; ++c)
            mask(g, c) = 1.0f;

    if (causal) {
        for (size_t r = 0; r < n; ++r)
            for (size_t c = r + 1; c < n; ++c)
                mask(r, c) = 0.0f;
    }
    return mask;
}

} // namespace dota
