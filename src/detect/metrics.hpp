/**
 * @file
 * Detection-quality metrics: how well a hook's selected masks cover the
 * truly strong attention connections of a model.
 */
#pragma once

#include "nn/attention_hook.hpp"
#include "nn/transformer.hpp"
#include "tensor/sparse_mask.hpp"
#include "workloads/synthetic_task.hpp"

namespace dota {

/** Aggregate detection quality over samples, layers, and heads. */
struct DetectionQuality
{
    double recall = 0.0;      ///< mean fraction of true top-k recovered
    double mass_recall = 0.0; ///< mean softmax probability mass retained
    double density = 0.0;     ///< mean mask density actually selected
};

/**
 * Run @p samples sequences of @p task through @p model with @p hook
 * installed and measure how much of the true row-wise top-k (at
 * @p retention) the selected masks recover. The hook is uninstalled
 * afterwards.
 */
DetectionQuality evaluateDetection(TransformerClassifier &model,
                                   const SyntheticTask &task,
                                   AttentionHook &hook, size_t samples,
                                   double retention,
                                   uint64_t seed = 20240202);

/**
 * Harvest the per-head masks selected during the most recent forward of
 * @p model as SparseMasks (layer-major, head-minor order). Dense heads
 * yield full masks.
 */
std::vector<SparseMask> harvestMasks(TransformerClassifier &model);

} // namespace dota
