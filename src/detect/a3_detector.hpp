/**
 * @file
 * A^3-style approximation baseline (Ham et al., HPCA'20).
 *
 * A^3 estimates attention scores with a *greedy candidate search over
 * sorted key dimensions*: for each feature dimension, keys are pre-sorted
 * by their component value; for a given query, the search walks the
 * largest positive products first (largest key component for positive
 * query components, smallest for negative) and accumulates partial
 * scores for a bounded number of iterations. Keys touched often / with
 * large partial sums become candidates. The paper (Section 6.2) notes
 * the sort is preprocessing that must happen outside the accelerator —
 * this model charges that cost in the performance comparison; here we
 * reproduce the algorithmic quality side.
 */
#pragma once

#include "nn/attention_hook.hpp"
#include "tensor/topk.hpp"

namespace dota {

/** A^3 approximation configuration. */
struct A3Config
{
    double retention = 0.1; ///< per-row keep fraction after scoring
    size_t iterations = 16; ///< greedy walk steps per dimension
};

/** Greedy sorted-dimension candidate search. */
class A3Detector : public AttentionHook
{
  public:
    explicit A3Detector(A3Config cfg) : cfg_(cfg) {}

    void
    beginLayer(size_t, const Matrix &) override
    {}

    void observeQK(size_t layer, size_t head, const Matrix &q,
                   const Matrix &k) override;

    Matrix selectMask(size_t layer, size_t head, bool causal) override;

    void
    observeScores(size_t, size_t, const Matrix &) override
    {}

    /** Training-free: never inspects S, so the sparse path is legal. */
    bool wantsFullScores() const override { return false; }

    Matrix
    scoreGradient(size_t, size_t) override
    {
        return {};
    }

    /** Partial-score estimate of the pending head (for tests). */
    const Matrix &lastEstimate() const { return est_; }

    A3Config &config() { return cfg_; }

  private:
    A3Config cfg_;
    Matrix est_;
};

} // namespace dota
