/**
 * @file
 * Implementation of the training recipes.
 */
#include "detect/pipeline.hpp"

namespace dota {

namespace {

/** Adam over detector parameters only. */
Adam
detectorOptimizer(DotaDetector &detector, double lr)
{
    std::vector<Parameter *> params;
    detector.collectParams(params);
    AdamConfig cfg;
    cfg.lr = lr;
    return Adam(std::move(params), cfg);
}

} // namespace

double
warmupDetector(TransformerClassifier &model, const SyntheticTask &task,
               DotaDetector &detector, size_t steps, size_t batch,
               double lr, uint64_t seed)
{
    const bool saved_apply = detector.config().apply_mask;
    const bool saved_train = detector.config().train;
    detector.config().apply_mask = false;
    detector.config().train = true;
    model.setHook(&detector);

    Adam opt = detectorOptimizer(detector, lr);
    Rng rng(seed);
    double last = 0.0;
    for (size_t step = 0; step < steps; ++step) {
        opt.zeroGrad();
        detector.consumeMseLoss();
        for (size_t b = 0; b < batch; ++b)
            model.forward(task.sample(rng).features); // grads at forward
        opt.step();
        last = detector.consumeMseLoss();
    }

    detector.config().apply_mask = saved_apply;
    detector.config().train = saved_train;
    model.setHook(nullptr);
    return last;
}

double
warmupDetectorLM(CausalLM &model, const SyntheticGrammar &grammar,
                 DotaDetector &detector, size_t steps, size_t batch,
                 double lr, uint64_t seed)
{
    const bool saved_apply = detector.config().apply_mask;
    const bool saved_train = detector.config().train;
    detector.config().apply_mask = false;
    detector.config().train = true;
    model.setHook(&detector);

    Adam opt = detectorOptimizer(detector, lr);
    Rng rng(seed);
    double last = 0.0;
    for (size_t step = 0; step < steps; ++step) {
        opt.zeroGrad();
        detector.consumeMseLoss();
        for (size_t b = 0; b < batch; ++b)
            model.forward(grammar.sample(rng));
        opt.step();
        last = detector.consumeMseLoss();
    }

    detector.config().apply_mask = saved_apply;
    detector.config().train = saved_train;
    model.setHook(nullptr);
    return last;
}

float
calibrateThreshold(TransformerClassifier &model, const SyntheticTask &task,
                   DotaDetector &detector, double retention,
                   size_t samples, uint64_t seed)
{
    const bool saved_apply = detector.config().apply_mask;
    const bool saved_train = detector.config().train;
    detector.config().apply_mask = false;
    detector.config().train = false;
    model.setHook(&detector);

    // Pool estimated scores across probe forwards, layers and heads.
    Rng rng(seed);
    std::vector<float> pool;
    const TransformerConfig &cfg = model.config();
    for (size_t s = 0; s < samples; ++s) {
        model.forward(task.sample(rng).features);
        for (size_t l = 0; l < cfg.layers; ++l) {
            for (size_t h = 0; h < cfg.heads; ++h) {
                const Matrix &est = detector.lastEstimate(l, h);
                pool.insert(pool.end(), est.data(),
                            est.data() + est.size());
            }
        }
    }
    model.setHook(nullptr);
    DOTA_ASSERT(!pool.empty(), "no estimates pooled for calibration");

    const size_t pooled = pool.size();
    Matrix flat(1, pooled, std::move(pool));
    const float threshold = thresholdForRetention(flat, retention);

    detector.config().apply_mask = saved_apply;
    detector.config().train = saved_train;
    detector.config().use_threshold = true;
    detector.config().threshold = threshold;
    return threshold;
}

PipelineResult
runPipeline(TransformerClassifier &model, const SyntheticTask &task,
            DotaDetector &detector, const PipelineConfig &cfg)
{
    PipelineResult res;

    // Phase 1: dense pre-training.
    ClassifierTrainer pre(model, task, cfg.pretrain);
    pre.train();
    res.dense = pre.evaluate(200);

    // Phase 2: detector warmup against the frozen model.
    warmupDetector(model, task, detector, cfg.warmup_steps,
                   cfg.warmup_batch, cfg.warmup_lr);

    // Phase 3: joint adaptation with omission enabled.
    detector.config().apply_mask = true;
    detector.config().train = true;
    model.setHook(&detector);
    ClassifierTrainer joint(model, task, cfg.adapt);
    std::vector<Parameter *> det_params;
    detector.collectParams(det_params);
    joint.addExtraParams(det_params);
    joint.train();
    res.detector_mse = detector.consumeMseLoss();

    // Inference configuration: mask on, training off, hook installed.
    // With training off the detector reports wantsFullScores() == false,
    // so these evaluation forwards run the sparse attention kernels —
    // scores are computed only at detector-kept coordinates.
    detector.config().train = false;
    res.sparse = joint.evaluate(200);
    return res;
}

PipelineResult
runPipelineLM(CausalLM &model, const SyntheticGrammar &grammar,
              DotaDetector &detector, const PipelineConfig &cfg)
{
    PipelineResult res;

    LMTrainer pre(model, grammar, cfg.pretrain);
    pre.train();
    res.dense = pre.evaluate(50);

    warmupDetectorLM(model, grammar, detector, cfg.warmup_steps,
                     cfg.warmup_batch, cfg.warmup_lr);

    detector.config().apply_mask = true;
    detector.config().train = true;
    model.setHook(&detector);
    LMTrainer joint(model, grammar, cfg.adapt);
    std::vector<Parameter *> det_params;
    detector.collectParams(det_params);
    joint.addExtraParams(det_params);
    joint.train();
    res.detector_mse = detector.consumeMseLoss();

    // Sparse-kernel inference evaluation, as in runPipeline above.
    detector.config().train = false;
    res.sparse = joint.evaluate(50);
    return res;
}

} // namespace dota
