/**
 * @file
 * Implementation of the token-pruning baseline.
 */
#include "detect/token_pruning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace dota {

void
TokenPruningDetector::observeQK(size_t, size_t, const Matrix &q,
                                const Matrix &k)
{
    scores_ = matmulBT(q, k);
}

Matrix
TokenPruningDetector::selectMask(size_t, size_t, bool causal)
{
    DOTA_ASSERT(!scores_.empty(), "selectMask before observeQK");
    const size_t n = scores_.rows();
    // Match connection density: keeping t tokens gives ~t^2 connections.
    const size_t keep_tokens = std::min<size_t>(
        n, std::max<size_t>(
               2, static_cast<size_t>(std::llround(
                      static_cast<double>(n) *
                      std::sqrt(cfg_.retention)))));

    // Cumulative attention received per token (column softmax mass).
    const Matrix probs = rowSoftmax(scores_);
    std::vector<double> importance(n, 0.0);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            importance[c] += probs(r, c);

    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&importance](uint32_t a, uint32_t b) {
                  return importance[a] > importance[b];
              });
    kept_.assign(order.begin(),
                 order.begin() + static_cast<long>(keep_tokens));
    std::sort(kept_.begin(), kept_.end());

    // Structured mask: dense among kept tokens; pruned tokens keep only
    // their diagonal so every row still has an output.
    Matrix mask(n, n);
    for (uint32_t r : kept_)
        for (uint32_t c : kept_)
            mask(r, c) = 1.0f;
    for (size_t r = 0; r < n; ++r)
        mask(r, r) = 1.0f;
    if (causal)
        for (size_t r = 0; r < n; ++r)
            for (size_t c = r + 1; c < n; ++c)
                mask(r, c) = 0.0f;
    return mask;
}

} // namespace dota
