/**
 * @file
 * SpAtten-style cascade token pruning baseline (Wang et al., HPCA'21).
 *
 * SpAtten removes whole *tokens* (rows and columns of the attention
 * matrix) ranked by their cumulative attention importance — structured
 * sparsity rather than per-connection selection. The paper's Section 6.2
 * argues this "is not flexible enough to capture the irregularly
 * distributed attention connections"; this hook lets that be measured at
 * matched retention.
 *
 * Importance here is the column mass of the true scores (cumulative
 * attention received), mimicking SpAtten's cascade criterion with the
 * information available at this layer.
 */
#pragma once

#include "nn/attention_hook.hpp"
#include "tensor/ops.hpp"

namespace dota {

/** Token-pruning configuration. */
struct TokenPruningConfig
{
    double retention = 0.1; ///< matched *connection* density target:
                            ///< keeping t of n tokens yields density
                            ///< ~t^2/n^2, so t = n * sqrt(retention)
};

/** Structured (whole-token) pruning baseline. */
class TokenPruningDetector : public AttentionHook
{
  public:
    explicit TokenPruningDetector(TokenPruningConfig cfg) : cfg_(cfg) {}

    void
    beginLayer(size_t, const Matrix &) override
    {}

    void observeQK(size_t layer, size_t head, const Matrix &q,
                   const Matrix &k) override;

    Matrix selectMask(size_t layer, size_t head, bool causal) override;

    void
    observeScores(size_t, size_t, const Matrix &) override
    {}

    /** Training-free: never inspects S, so the sparse path is legal. */
    bool wantsFullScores() const override { return false; }

    Matrix
    scoreGradient(size_t, size_t) override
    {
        return {};
    }

    TokenPruningConfig &config() { return cfg_; }

    /** Tokens kept in the last selection (for tests). */
    const std::vector<uint32_t> &keptTokens() const { return kept_; }

  private:
    TokenPruningConfig cfg_;
    Matrix scores_;
    std::vector<uint32_t> kept_;
};

} // namespace dota
