/**
 * @file
 * Analytic model of the NVIDIA V100 GPU baseline (Section 5.1).
 *
 * A calibrated roofline: every kernel runs at
 * max(flops / (peak * efficiency), bytes / (bandwidth * efficiency)) plus
 * a fixed launch overhead. Efficiencies are per kernel class — large
 * weight GEMMs run near peak, but the attention batched GEMMs (tall-skinny
 * with tiny reduction dims per head) and the memory-bound softmax run far
 * below it, which is exactly where the paper's GPU gap comes from. The
 * GPU computes attention densely (no detection path exists for it).
 *
 * The model emits the same RunReport type as the cycle-level
 * accelerator simulators: kernel times are quantized onto a virtual
 * picosecond tick (freq_ghz = kGpuTickGhz), the dense attention kernels
 * fill the `attention` phase, and the `detection` phase is identically
 * zero — the report-level signature of a device with no detect-and-omit
 * hardware.
 */
#pragma once

#include "sim/report.hpp"
#include "workloads/benchmark.hpp"

namespace dota {

/** V100-class device description. */
struct GpuConfig
{
    double peak_tflops = 14.0;   ///< FP32/TensorCore-equivalent peak
    double mem_gb_per_s = 900.0; ///< HBM2 bandwidth
    double board_power_w = 250.0;

    // Achieved-efficiency factors (calibrated; see EXPERIMENTS.md).
    double gemm_eff = 0.55;      ///< large weight GEMMs / FFN
    double attention_eff = 0.08; ///< per-head batched QK^T / AV GEMMs
    double softmax_bw_eff = 0.5; ///< softmax/memory-bound kernels
    double gemv_bw_eff = 0.65;   ///< decoder GEMV streaming
    double kernel_launch_us = 4.0;

    static GpuConfig v100() { return GpuConfig{}; }
};

/**
 * The virtual tick the analytic GPU model reports cycles in:
 * 1000 GHz, i.e. one RunReport "cycle" = 1 ps. Fine enough that the
 * quantization error of the underlying double-precision roofline times
 * is below 1e-8 relative.
 */
inline constexpr double kGpuTickGhz = 1000.0;

/** Simulate dense single-pass inference of @p bench on the GPU. */
RunReport simulateGpu(const Benchmark &bench,
                      const GpuConfig &cfg = GpuConfig::v100());

/**
 * Simulate autoregressive *generation* of a causal benchmark on the GPU
 * with a KV cache: per-token weight-streaming GEMVs (memory-bound) and
 * per-step attention/softmax kernels whose launch overheads dominate at
 * small step sizes — the counterpart of
 * DotaAccelerator::simulateGeneration.
 */
RunReport simulateGpuGeneration(const Benchmark &bench,
                                const GpuConfig &cfg = GpuConfig::v100());

} // namespace dota
