/**
 * @file
 * Implementation of the ELSA baseline model.
 */
#include "baselines/elsa_sim.hpp"

#include <algorithm>
#include <cmath>

namespace dota {

namespace {

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

ElsaAccelerator::ElsaAccelerator(HwConfig hw, EnergyModel em,
                                 ElsaConfig cfg)
    : hw_(hw), em_(em), cfg_(cfg), rmmu_(hw.lane.rmmu, &em_)
{}

RunReport
ElsaAccelerator::simulate(const Benchmark &bench) const
{
    const ModelShape &s = bench.paper_shape;
    const uint64_t n = s.seq_len, h = s.heads, dh = s.headDim();
    const uint64_t m = cfg_.hash_bits;
    const uint64_t h_lane = ceilDiv(h, hw_.lanes);
    const uint64_t keep = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               cfg_.retention * static_cast<double>(n))));
    const uint64_t nnz = n * keep;

    RunReport report;
    report.device = "ELSA";
    report.benchmark = bench.name;
    report.freq_ghz = hw_.freq_ghz;
    report.layers = s.layers;
    report.per_layer.linear.name = "linear"; // not executed by ELSA

    // ---- Detection: sign-random-projection hashing + candidate search.
    PhaseCost &det = report.per_layer.detection;
    det.name = "detection";
    // Hash every query and key: 2n vectors x dh x m MACs per head, plus
    // key-norm computation (n x dh).
    const uint64_t hash_macs = h * (2 * n * dh * m + n * dh);
    uint64_t det_compute =
        h_lane * (2 * rmmu_.gemmCycles(n, dh, m, Precision::FX16) +
                  rmmu_.gemmCycles(n, dh, 1, Precision::FX16));
    // Hamming distance + norm-scaled comparison for all n^2 pairs; the
    // dedicated XOR/popcount units retire one candidate per PE per cycle.
    const uint64_t cand = h * n * n;
    det_compute += ceilDiv(h_lane * n * n, hw_.lane.rmmu.pes());
    det.macs = hash_macs;
    det.sram_bytes = h * (2 * n * (m / 8) /* hash bits */ + n * n / 8);
    det.energy_pj =
        static_cast<double>(hash_macs) * em_.macPj(Precision::FX16) +
        static_cast<double>(cand) * (em_.comparator_pj + 0.01 * m) +
        static_cast<double>(det.sram_bytes) * em_.sram_read_pj;
    const double det_sram_cycles =
        static_cast<double>(det.sram_bytes) /
        (static_cast<double>(hw_.lanes) * hw_.lane.sram_banks *
         hw_.lane.sram_bank_bytes_per_cycle);
    det.cycles = std::max<uint64_t>(
        det_compute, static_cast<uint64_t>(det_sram_cycles));

    // ---- Attention on candidates, query-serial (no K/V reuse).
    PhaseCost &att = report.per_layer.attention;
    att.name = "attention";
    att.macs = 2 * h * nnz * dh;
    const double util = cfg_.utilization;
    uint64_t att_compute = static_cast<uint64_t>(
        static_cast<double>(att.macs) /
        (static_cast<double>(hw_.fabricMacsPerCycle()) * util));
    att_compute += ceilDiv(h_lane * nnz, hw_.lane.mfu_exp_units) +
                   ceilDiv(h_lane * nnz, hw_.lane.mfu_div_units);

    // Every selected connection fetches its key and value vector: loads
    // scale with nnz, not with distinct keys (Figure 8, row-by-row).
    // K/V stream from DRAM once per layer when they exceed SRAM; the
    // per-connection traffic is then SRAM-served.
    const uint64_t kv_bytes = h * 2 * nnz * dh * 2;
    att.sram_bytes = kv_bytes + 2 * n * s.dim + 2 * h * nnz;
    const double kv_resident =
        static_cast<double>(n * dh * h_lane * 2 * 2);
    const double budget = 0.7 * static_cast<double>(hw_.lane.sramBytes());
    if (kv_resident > budget)
        att.dram_bytes = h * n * dh * 2 * 2;
    att.energy_pj =
        static_cast<double>(att.macs) * em_.macPj(Precision::FX16) +
        static_cast<double>(h * nnz) *
            (em_.mfu_exp_pj + em_.mfu_div_pj + 2.0 * em_.quant_pj) +
        static_cast<double>(att.sram_bytes) * em_.sram_read_pj +
        static_cast<double>(att.dram_bytes) * em_.dram_pj;

    const double att_sram_cycles =
        static_cast<double>(att.sram_bytes) /
        (static_cast<double>(hw_.lanes) * hw_.lane.sram_banks *
         hw_.lane.sram_bank_bytes_per_cycle);
    const double att_dram_cycles =
        static_cast<double>(att.dram_bytes) / hw_.dramBytesPerCycle();
    att.cycles = std::max<uint64_t>(
        att_compute, static_cast<uint64_t>(
                         std::max(att_sram_cycles, att_dram_cycles)));

    const double scale = static_cast<double>(hw_.lanes) / 4.0;
    report.leakage_j = em_.leakage_w * scale * report.timeMs() * 1e-3;
    return report;
}

} // namespace dota
