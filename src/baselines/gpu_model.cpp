/**
 * @file
 * Implementation of the GPU baseline model.
 */
#include "baselines/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace dota {

namespace {

/** Roofline time of one kernel in milliseconds. */
double
kernelMs(double flops, double bytes, double eff_compute, double eff_bw,
         const GpuConfig &cfg)
{
    const double compute_s =
        flops / (cfg.peak_tflops * 1e12 * eff_compute);
    const double mem_s = bytes / (cfg.mem_gb_per_s * 1e9 * eff_bw);
    return (std::max(compute_s, mem_s) + cfg.kernel_launch_us * 1e-6) *
           1e3;
}

/** Per-layer phase accumulator: time plus bookkeeping totals. */
struct GpuPhase
{
    double ms = 0.0;
    double flops = 0.0;
    double hbm_bytes = 0.0;

    void
    add(double kernel_flops, double kernel_bytes, double kernel_ms)
    {
        ms += kernel_ms;
        flops += kernel_flops;
        hbm_bytes += kernel_bytes;
    }
};

/** Quantize a per-layer phase onto the picosecond tick. */
PhaseCost
toPhaseCost(const char *name, const GpuPhase &p, const GpuConfig &cfg)
{
    PhaseCost cost;
    cost.name = name;
    cost.cycles = static_cast<uint64_t>(std::llround(p.ms * 1e9));
    cost.macs = static_cast<uint64_t>(p.flops / 2.0);
    cost.dram_bytes = static_cast<uint64_t>(p.hbm_bytes);
    // Board power over the phase's wall time: W x ps = pJ.
    cost.energy_pj =
        cfg.board_power_w * static_cast<double>(cost.cycles);
    return cost;
}

RunReport
makeReport(const Benchmark &bench, const GpuConfig &cfg,
           const GpuPhase &linear, const GpuPhase &attention)
{
    RunReport report;
    report.device = "GPU-V100";
    report.benchmark = bench.name;
    report.freq_ghz = kGpuTickGhz;
    report.layers = bench.paper_shape.layers;
    report.per_layer.linear = toPhaseCost("linear", linear, cfg);
    // Dense attention: the detection phase does not exist on the GPU.
    report.per_layer.detection.name = "detection";
    report.per_layer.attention = toPhaseCost("attention", attention, cfg);
    return report;
}

} // namespace

RunReport
simulateGpu(const Benchmark &bench, const GpuConfig &cfg)
{
    const ModelShape &s = bench.paper_shape;
    const double n = static_cast<double>(s.seq_len);
    const double d = static_cast<double>(s.dim);
    const double ffn = static_cast<double>(s.ffn_dim);
    const double h = static_cast<double>(s.heads);
    const double dh = static_cast<double>(s.headDim());

    GpuPhase linear, attention;
    // One dense forward pass per layer; causal benchmarks (perplexity
    // scoring) run the same kernels with an attention mask, which the
    // GPU computes densely anyway.
    // QKV, output projection, FC1, FC2 (2 flops per MAC).
    auto addKernel = [&](GpuPhase &phase, double flops, double bytes,
                         double eff_compute, double eff_bw) {
        phase.add(flops, bytes,
                  kernelMs(flops, bytes, eff_compute, eff_bw, cfg));
    };
    addKernel(linear, 2 * n * d * 3 * d, (n * d + 3 * d * d) * 2,
              cfg.gemm_eff, cfg.softmax_bw_eff);
    addKernel(linear, 2 * n * d * d, (n * d + d * d) * 2, cfg.gemm_eff,
              cfg.softmax_bw_eff);
    addKernel(linear, 2 * n * d * ffn, (n * d + d * ffn) * 2,
              cfg.gemm_eff, cfg.softmax_bw_eff);
    addKernel(linear, 2 * n * ffn * d, (n * ffn + d * ffn) * 2,
              cfg.gemm_eff, cfg.softmax_bw_eff);

    // Attention: S = QK^T and Z = A V (batched per head, low
    // efficiency), plus the memory-bound softmax pipeline (mask + max +
    // exp + sum + div elementwise passes over h * n^2).
    addKernel(attention, 2 * h * n * n * dh, h * (2 * n * dh + n * n) * 2,
              cfg.attention_eff, cfg.softmax_bw_eff);
    addKernel(attention, 2 * h * n * n * dh, h * (n * n + 2 * n * dh) * 2,
              cfg.attention_eff, cfg.softmax_bw_eff);
    addKernel(attention, 5 * h * n * n /* exp+sum+div */,
              5 * h * n * n * 4, cfg.gemm_eff, cfg.softmax_bw_eff);

    return makeReport(bench, cfg, linear, attention);
}

RunReport
simulateGpuGeneration(const Benchmark &bench, const GpuConfig &cfg)
{
    const ModelShape &s = bench.paper_shape;
    DOTA_ASSERT(s.decoder, "GPU generation needs a causal benchmark");
    const double n = static_cast<double>(s.seq_len);
    const double d = static_cast<double>(s.dim);
    const double ffn = static_cast<double>(s.ffn_dim);
    const double h = static_cast<double>(s.heads);
    const double dh = static_cast<double>(s.headDim());

    GpuPhase linear, attention;
    // Per-token GEMVs: weights re-stream from HBM every step.
    const double weight_flops = 2 * (4 * d * d + 2 * d * ffn);
    const double weight_bytes = (4 * d * d + 2 * d * ffn) * 2;
    linear.add(n * weight_flops, n * weight_bytes,
               n * kernelMs(weight_flops, weight_bytes, cfg.gemm_eff,
                            cfg.gemv_bw_eff, cfg));

    // Attention over the KV cache: token t touches t vectors; three
    // kernels (scores, softmax, output) launch per step.
    const double visible = n * (n + 1) / 2.0;
    attention.add(0.0, 0.0, n * 3.0 * cfg.kernel_launch_us * 1e-6 * 1e3);
    const double att_flops = 2 * h * visible * dh * 2;
    const double att_bytes = h * 2 * visible * dh * 2;
    attention.add(att_flops, att_bytes,
                  kernelMs(att_flops, att_bytes, cfg.attention_eff,
                           cfg.gemv_bw_eff, cfg));

    return makeReport(bench, cfg, linear, attention);
}

} // namespace dota
