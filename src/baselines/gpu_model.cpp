/**
 * @file
 * Implementation of the GPU baseline model.
 */
#include "baselines/gpu_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dota {

namespace {

/** Roofline time of one kernel in milliseconds. */
double
kernelMs(double flops, double bytes, double eff_compute, double eff_bw,
         const GpuConfig &cfg)
{
    const double compute_s =
        flops / (cfg.peak_tflops * 1e12 * eff_compute);
    const double mem_s = bytes / (cfg.mem_gb_per_s * 1e9 * eff_bw);
    return (std::max(compute_s, mem_s) + cfg.kernel_launch_us * 1e-6) *
           1e3;
}

} // namespace

GpuReport
simulateGpu(const Benchmark &bench, const GpuConfig &cfg)
{
    const ModelShape &s = bench.paper_shape;
    const double n = static_cast<double>(s.seq_len);
    const double d = static_cast<double>(s.dim);
    const double ffn = static_cast<double>(s.ffn_dim);
    const double h = static_cast<double>(s.heads);
    const double dh = static_cast<double>(s.headDim());

    GpuReport report;
    report.benchmark = bench.name;

    double linear_ms = 0.0, attention_ms = 0.0;
    // One dense forward pass per layer; causal benchmarks (perplexity
    // scoring) run the same kernels with an attention mask, which the
    // GPU computes densely anyway.
    // QKV, output projection, FC1, FC2 (2 flops per MAC).
    linear_ms += kernelMs(2 * n * d * 3 * d, (n * d + 3 * d * d) * 2,
                          cfg.gemm_eff, cfg.softmax_bw_eff, cfg);
    linear_ms += kernelMs(2 * n * d * d, (n * d + d * d) * 2,
                          cfg.gemm_eff, cfg.softmax_bw_eff, cfg);
    linear_ms += kernelMs(2 * n * d * ffn, (n * d + d * ffn) * 2,
                          cfg.gemm_eff, cfg.softmax_bw_eff, cfg);
    linear_ms += kernelMs(2 * n * ffn * d, (n * ffn + d * ffn) * 2,
                          cfg.gemm_eff, cfg.softmax_bw_eff, cfg);

    // Attention: S = QK^T and Z = A V (batched per head, low
    // efficiency), plus the memory-bound softmax pipeline (mask + max +
    // exp + sum + div elementwise passes over h * n^2).
    attention_ms += kernelMs(2 * h * n * n * dh,
                             h * (2 * n * dh + n * n) * 2,
                             cfg.attention_eff, cfg.softmax_bw_eff, cfg);
    attention_ms += kernelMs(2 * h * n * n * dh,
                             h * (n * n + 2 * n * dh) * 2,
                             cfg.attention_eff, cfg.softmax_bw_eff, cfg);
    attention_ms += kernelMs(5 * h * n * n /* exp+sum+div */,
                             5 * h * n * n * 4, cfg.gemm_eff,
                             cfg.softmax_bw_eff, cfg);

    report.linear_ms = linear_ms * static_cast<double>(s.layers);
    report.attention_ms = attention_ms * static_cast<double>(s.layers);
    report.energy_j = cfg.board_power_w * report.totalMs() * 1e-3;
    return report;
}

GpuReport
simulateGpuGeneration(const Benchmark &bench, const GpuConfig &cfg)
{
    const ModelShape &s = bench.paper_shape;
    DOTA_ASSERT(s.decoder, "GPU generation needs a causal benchmark");
    const double n = static_cast<double>(s.seq_len);
    const double d = static_cast<double>(s.dim);
    const double ffn = static_cast<double>(s.ffn_dim);
    const double h = static_cast<double>(s.heads);
    const double dh = static_cast<double>(s.headDim());

    GpuReport report;
    report.benchmark = bench.name;

    // Per-token GEMVs: weights re-stream from HBM every step.
    const double weight_bytes = (4 * d * d + 2 * d * ffn) * 2;
    const double linear_ms =
        n * kernelMs(2 * (4 * d * d + 2 * d * ffn), weight_bytes,
                     cfg.gemm_eff, cfg.gemv_bw_eff, cfg);

    // Attention over the KV cache: token t touches t vectors; three
    // kernels (scores, softmax, output) launch per step.
    const double visible = n * (n + 1) / 2.0;
    double attention_ms =
        n * 3.0 * cfg.kernel_launch_us * 1e-6 * 1e3;
    attention_ms += kernelMs(2 * h * visible * dh * 2,
                             h * 2 * visible * dh * 2, cfg.attention_eff,
                             cfg.gemv_bw_eff, cfg);

    report.linear_ms = linear_ms * static_cast<double>(s.layers);
    report.attention_ms = attention_ms * static_cast<double>(s.layers);
    report.energy_j = cfg.board_power_w * report.totalMs() * 1e-3;
    return report;
}

} // namespace dota
