/**
 * @file
 * Performance/energy model of the ELSA accelerator (Ham et al.,
 * ISCA'21), reconstructed as the paper does for its comparisons
 * (Section 5.1: "we extend and validate our simulator to support ELSA's
 * dataflow", with matched computation resources and technology).
 *
 * Differences from DOTA captured by this model:
 *  - detection by sign-random-projection hashing (per-head hash of every
 *    query/key + n^2 Hamming comparisons) instead of a trained low-rank
 *    estimate;
 *  - retention fixed at 20% (the paper's setting for ELSA, which it
 *    needs to stay near-accuracy-neutral);
 *  - query-serial attention: no token parallelism, so every selected key
 *    and value vector is fetched per query (no cross-query reuse);
 *  - thresholding without the row-balance constraint, so PE utilization
 *    suffers from row imbalance;
 *  - attention block only: no linear/FFN acceleration (end-to-end
 *    execution is not supported, Section 5.3).
 */
#pragma once

#include "sim/accelerator.hpp"

namespace dota {

/** ELSA configuration. */
struct ElsaConfig
{
    size_t hash_bits = 24;     ///< hyperplanes per head
    double retention = 0.20;   ///< the paper's ELSA operating point
    double utilization = 0.75; ///< PE utilization under row imbalance

    static ElsaConfig iscaDefault() { return ElsaConfig{}; }
};

/** ELSA attention-block simulation (same report type as DOTA). */
class ElsaAccelerator
{
  public:
    explicit ElsaAccelerator(HwConfig hw = HwConfig::dota(),
                             EnergyModel em = EnergyModel::tsmc22(),
                             ElsaConfig cfg = ElsaConfig::iscaDefault());

    /**
     * Simulate the attention block of @p bench (detection = hashing +
     * candidate search; attention = sparse score/softmax/output with
     * query-serial loads). The linear phase is reported as zero: ELSA
     * does not execute it.
     */
    RunReport simulate(const Benchmark &bench) const;

    const ElsaConfig &config() const { return cfg_; }
    const HwConfig &hw() const { return hw_; }

  private:
    HwConfig hw_;
    EnergyModel em_;
    ElsaConfig cfg_;
    Rmmu rmmu_;
};

} // namespace dota
