/**
 * @file
 * Tests for incremental (KV-cached) decoding: exact equivalence with
 * the full causal forward, retention behaviour, and generation.
 */
#include <gtest/gtest.h>

#include "nn/decode.hpp"
#include "workloads/synthetic_task.hpp"
#include "workloads/trainer.hpp"

namespace dota {
namespace {

TransformerConfig
lmCfg()
{
    TransformerConfig cfg;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.ffn_dim = 32;
    cfg.vocab = 20;
    cfg.max_seq = 40;
    cfg.seed = 5;
    return cfg;
}

TEST(KvCache, AppendGrows)
{
    KvCache cache;
    EXPECT_EQ(cache.length(), 0u);
    Matrix k(1, 4, 1.0f), v(1, 4, 2.0f);
    cache.append(k, v);
    cache.append(k, v);
    EXPECT_EQ(cache.length(), 2u);
    EXPECT_FLOAT_EQ(cache.k(1, 3), 1.0f);
    EXPECT_FLOAT_EQ(cache.v(0, 0), 2.0f);
}

TEST(Decode, MatchesFullForwardDense)
{
    CausalLM model(lmCfg());
    const std::vector<int> ids{3, 7, 1, 12, 5, 9, 0, 4};
    const Matrix full = model.forward(ids);

    DecodeState state;
    state.reset(model.config().layers);
    for (size_t t = 0; t < ids.size(); ++t) {
        const Matrix logits = decodeStep(model, state, ids[t]);
        ASSERT_EQ(logits.rows(), 1u);
        for (size_t c = 0; c < logits.cols(); ++c)
            EXPECT_NEAR(logits(0, c), full(t, c), 2e-4)
                << "position " << t << " class " << c;
    }
}

TEST(Decode, StateTracksPosition)
{
    CausalLM model(lmCfg());
    DecodeState state;
    state.reset(2);
    decodeStep(model, state, 1);
    decodeStep(model, state, 2);
    EXPECT_EQ(state.position, 2u);
    EXPECT_EQ(state.layers[0].length(), 2u);
    EXPECT_EQ(state.layers[1].length(), 2u);
}

TEST(Decode, RetentionLimitsConnections)
{
    // With retention well below 1, later tokens attend to fewer cached
    // keys; the output must still be finite and differ from dense.
    CausalLM model(lmCfg());
    const std::vector<int> ids{3, 7, 1, 12, 5, 9, 0, 4, 2, 6};
    DecodeState dense_state, sparse_state;
    dense_state.reset(2);
    sparse_state.reset(2);
    Matrix dense_logits, sparse_logits;
    for (int tok : ids) {
        dense_logits = decodeStep(model, dense_state, tok, 1.0);
        sparse_logits = decodeStep(model, sparse_state, tok, 0.2);
    }
    EXPECT_FALSE(
        Matrix::allClose(dense_logits, sparse_logits, 1e-6));
    for (size_t c = 0; c < sparse_logits.cols(); ++c)
        EXPECT_TRUE(std::isfinite(sparse_logits(0, c)));
}

TEST(Decode, OverflowFatal)
{
    TransformerConfig cfg = lmCfg();
    cfg.max_seq = 3;
    CausalLM model(cfg);
    DecodeState state;
    state.reset(cfg.layers);
    decodeStep(model, state, 1);
    decodeStep(model, state, 1);
    decodeStep(model, state, 1);
    EXPECT_DEATH(decodeStep(model, state, 1), "exceeds max_seq");
}

TEST(Generate, GreedyDeterministic)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7, 1};
    const auto a = generate(model, prefix, 6, 1.0, 0.0);
    const auto b = generate(model, prefix, 6, 1.0, 0.0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 6u);
    for (int t : a) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 20);
    }
}

TEST(Generate, GreedyMatchesFullForwardArgmax)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7, 1, 12};
    const auto gen = generate(model, prefix, 1, 1.0, 0.0);
    const Matrix full = model.forward(prefix);
    EXPECT_EQ(gen[0], rowArgmax(full)[prefix.size() - 1]);
}

TEST(Generate, SamplingSeedControlled)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7};
    const auto a = generate(model, prefix, 8, 1.0, 1.0, /*seed=*/42);
    const auto b = generate(model, prefix, 8, 1.0, 1.0, /*seed=*/42);
    const auto c = generate(model, prefix, 8, 1.0, 1.0, /*seed=*/43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c); // overwhelmingly likely for 8 near-uniform draws
}

TEST(Generate, StopsAtMaxSeq)
{
    TransformerConfig cfg = lmCfg();
    cfg.max_seq = 6;
    CausalLM model(cfg);
    const auto out = generate(model, {1, 2, 3}, 10);
    EXPECT_LE(out.size() + 3, 7u); // prefix + generated <= max_seq + 1
}

TEST(Generate, TrainedGrammarCopiesPayload)
{
    // Train briefly on the copy grammar and check KV-cached generation
    // honours the long-range dependency, as in the lm_generation
    // example but through the incremental path.
    TransformerConfig cfg = lmCfg();
    cfg.vocab = 64;
    cfg.max_seq = 80;
    cfg.dim = 32;
    cfg.ffn_dim = 64;
    CausalLM model(cfg);
    GrammarConfig gc;
    gc.seq_len = 64;
    gc.vocab = 64;
    gc.period = 6; // dense triggers: the copy rule dominates the loss
    SyntheticGrammar grammar(gc);
    LMTrainer trainer(model, grammar, [] {
        TrainConfig t;
        t.steps = 250;
        t.batch = 4;
        return t;
    }());
    trainer.train();

    // Robust statistical check: the probability the model assigns to
    // the copied payload right after a trigger must be far above the
    // ~1/47 uniform share over payload tokens (the tiny model's argmax
    // is not always right this early in training, but its probability
    // mass shifts decisively).
    Rng rng(7);
    double payload_prob = 0.0;
    int trials = 0;
    while (trials < 8) {
        auto prefix = grammar.sample(rng);
        prefix.resize(40);
        int payload = -1;
        for (size_t i = 0; i + 1 < prefix.size(); ++i)
            if (prefix[i] == grammar.triggerToken())
                payload = prefix[i + 1];
        if (payload < 0)
            continue; // no trigger landed in this prefix; redraw
        prefix.push_back(grammar.triggerToken());
        DecodeState state;
        state.reset(model.config().layers);
        Matrix logits;
        for (int tok : prefix)
            logits = decodeStep(model, state, tok);
        const Matrix probs = rowSoftmax(logits);
        payload_prob += probs(0, static_cast<size_t>(payload));
        ++trials;
    }
    payload_prob /= trials;
    EXPECT_GT(payload_prob, 2.0 / 47.0)
        << "no long-range copy signal learned";
}

} // namespace
} // namespace dota
