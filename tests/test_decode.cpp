/**
 * @file
 * Tests for incremental (KV-cached) decoding: exact equivalence with
 * the full causal forward, retention behaviour, and generation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention_backend.hpp"
#include "nn/decode.hpp"
#include "workloads/synthetic_task.hpp"
#include "workloads/trainer.hpp"

namespace dota {
namespace {

TransformerConfig
lmCfg()
{
    TransformerConfig cfg;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.ffn_dim = 32;
    cfg.vocab = 20;
    cfg.max_seq = 40;
    cfg.seed = 5;
    return cfg;
}

TEST(KvCache, AppendGrows)
{
    KvCache cache;
    EXPECT_EQ(cache.length(), 0u);
    Matrix k(1, 4, 1.0f), v(1, 4, 2.0f);
    cache.append(k, v);
    cache.append(k, v);
    EXPECT_EQ(cache.length(), 2u);
    EXPECT_FLOAT_EQ(cache.k(1, 3), 1.0f);
    EXPECT_FLOAT_EQ(cache.v(0, 0), 2.0f);
}

TEST(KvCache, MassTracksAttentionAndStaysInSync)
{
    CausalLM model(lmCfg());
    DecodeState state;
    state.reset(model.config().layers);
    const std::vector<int> ids{3, 7, 1, 12, 5};
    for (int tok : ids)
        decodeStep(model, state, tok);
    const size_t heads = lmCfg().heads;
    for (const KvCache &cache : state.layers) {
        ASSERT_EQ(cache.mass.size(), cache.length());
        // Each decode step distributes `heads` units of softmax mass
        // over the cached positions; 5 steps deposit 5 * heads total.
        double total = 0.0;
        for (double m : cache.mass) {
            EXPECT_GE(m, 0.0);
            total += m;
        }
        EXPECT_NEAR(total, double(ids.size() * heads), 1e-3);
    }
}

TEST(KvCache, EvictWeakKeepsStrongestInCausalOrder)
{
    KvCache cache;
    for (int i = 0; i < 5; ++i) {
        Matrix k(1, 4, float(i)), v(1, 4, float(10 + i));
        cache.append(k, v);
    }
    cache.mass = {0.9, 0.1, 0.5, 0.1, 0.7};
    EXPECT_EQ(evictWeak(cache, 3), 2u);
    ASSERT_EQ(cache.length(), 3u);
    // Survivors are rows 0, 2, 4 (top mass), compacted in causal order.
    EXPECT_FLOAT_EQ(cache.k(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(cache.k(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(cache.k(2, 0), 4.0f);
    EXPECT_FLOAT_EQ(cache.v(1, 0), 12.0f);
    EXPECT_EQ(cache.mass, (std::vector<double>{0.9, 0.5, 0.7}));
    // Ties keep the older position: 0.1 vs 0.1 would drop the newer.
    KvCache tied;
    for (int i = 0; i < 3; ++i) {
        Matrix k(1, 2, float(i)), v(1, 2, float(i));
        tied.append(k, v);
    }
    tied.mass = {0.1, 0.1, 0.1};
    EXPECT_EQ(evictWeak(tied, 2), 1u);
    EXPECT_FLOAT_EQ(tied.k(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(tied.k(1, 0), 1.0f);
    // keep >= length is a no-op.
    EXPECT_EQ(evictWeak(tied, 5), 0u);
}

TEST(KvCache, EvictWeakStateShrinksKvBytesAndDecodingContinues)
{
    CausalLM model(lmCfg());
    DecodeState state;
    state.reset(model.config().layers);
    for (int t = 0; t < 12; ++t)
        decodeStep(model, state, t % 20);
    const size_t before = kvBytes(state);
    EXPECT_GT(before, 0u);
    const size_t evicted = evictWeak(state, 0.5);
    // ceil(0.5 * 12) = 6 kept per layer, 6 evicted per layer.
    EXPECT_EQ(evicted, 6u * lmCfg().layers);
    for (const KvCache &cache : state.layers)
        EXPECT_EQ(cache.length(), 6u);
    EXPECT_EQ(kvBytes(state), before / 2);
    // The session keeps decoding on the compacted cache.
    const Matrix logits = decodeStep(model, state, 3);
    ASSERT_EQ(logits.rows(), 1u);
    for (size_t c = 0; c < logits.cols(); ++c)
        EXPECT_TRUE(std::isfinite(logits(0, c)));
}

TEST(Decode, MatchesFullForwardDense)
{
    CausalLM model(lmCfg());
    const std::vector<int> ids{3, 7, 1, 12, 5, 9, 0, 4};
    const Matrix full = model.forward(ids);

    DecodeState state;
    state.reset(model.config().layers);
    for (size_t t = 0; t < ids.size(); ++t) {
        const Matrix logits = decodeStep(model, state, ids[t]);
        ASSERT_EQ(logits.rows(), 1u);
        for (size_t c = 0; c < logits.cols(); ++c)
            EXPECT_NEAR(logits(0, c), full(t, c), 2e-4)
                << "position " << t << " class " << c;
    }
}

TEST(Decode, StreamingQueryPathMatchesDense)
{
    // Pinned streaming vs pinned dense decode of the same stream: the
    // single-query online-softmax recurrence reassociates the softmax,
    // so agreement is tolerance-level, not bitwise.
    CausalLM model(lmCfg());
    const std::vector<int> ids{3, 7, 1, 12, 5, 9, 0, 4};

    DecodeState dense_state, stream_state;
    dense_state.reset(model.config().layers);
    stream_state.reset(model.config().layers);
    for (size_t t = 0; t < ids.size(); ++t) {
        Matrix dense_logits, stream_logits;
        {
            ScopedAttnChoice pin(AttnChoice::Dense);
            dense_logits = decodeStep(model, dense_state, ids[t]);
        }
        {
            ScopedAttnChoice pin(AttnChoice::Streaming);
            stream_logits = decodeStep(model, stream_state, ids[t]);
        }
        EXPECT_TRUE(
            Matrix::allClose(stream_logits, dense_logits, 1e-4f))
            << "position " << t;
    }
    // The mass bookkeeping feeding DOTA eviction must agree too.
    for (size_t l = 0; l < model.config().layers; ++l) {
        const KvCache &a = dense_state.layers[l];
        const KvCache &b = stream_state.layers[l];
        ASSERT_EQ(a.mass.size(), b.mass.size());
        for (size_t j = 0; j < a.mass.size(); ++j)
            EXPECT_NEAR(a.mass[j], b.mass[j], 1e-5) << "key " << j;
    }
}

TEST(Decode, StateTracksPosition)
{
    CausalLM model(lmCfg());
    DecodeState state;
    state.reset(2);
    decodeStep(model, state, 1);
    decodeStep(model, state, 2);
    EXPECT_EQ(state.position, 2u);
    EXPECT_EQ(state.layers[0].length(), 2u);
    EXPECT_EQ(state.layers[1].length(), 2u);
}

TEST(Decode, RetentionLimitsConnections)
{
    // With retention well below 1, later tokens attend to fewer cached
    // keys; the output must still be finite and differ from dense.
    CausalLM model(lmCfg());
    const std::vector<int> ids{3, 7, 1, 12, 5, 9, 0, 4, 2, 6};
    DecodeState dense_state, sparse_state;
    dense_state.reset(2);
    sparse_state.reset(2);
    Matrix dense_logits, sparse_logits;
    for (int tok : ids) {
        dense_logits = decodeStep(model, dense_state, tok, 1.0);
        sparse_logits = decodeStep(model, sparse_state, tok, 0.2);
    }
    EXPECT_FALSE(
        Matrix::allClose(dense_logits, sparse_logits, 1e-6));
    for (size_t c = 0; c < sparse_logits.cols(); ++c)
        EXPECT_TRUE(std::isfinite(sparse_logits(0, c)));
}

TEST(Decode, OverflowFatal)
{
    TransformerConfig cfg = lmCfg();
    cfg.max_seq = 3;
    CausalLM model(cfg);
    DecodeState state;
    state.reset(cfg.layers);
    decodeStep(model, state, 1);
    decodeStep(model, state, 1);
    decodeStep(model, state, 1);
    EXPECT_DEATH(decodeStep(model, state, 1), "exceeds max_seq");
}

TEST(Generate, GreedyDeterministic)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7, 1};
    const auto a = generate(model, prefix, 6, 1.0, 0.0);
    const auto b = generate(model, prefix, 6, 1.0, 0.0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 6u);
    for (int t : a) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 20);
    }
}

TEST(Generate, GreedyMatchesFullForwardArgmax)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7, 1, 12};
    const auto gen = generate(model, prefix, 1, 1.0, 0.0);
    const Matrix full = model.forward(prefix);
    EXPECT_EQ(gen[0], rowArgmax(full)[prefix.size() - 1]);
}

TEST(Generate, SamplingSeedControlled)
{
    CausalLM model(lmCfg());
    const std::vector<int> prefix{3, 7};
    const auto a = generate(model, prefix, 8, 1.0, 1.0, /*seed=*/42);
    const auto b = generate(model, prefix, 8, 1.0, 1.0, /*seed=*/42);
    const auto c = generate(model, prefix, 8, 1.0, 1.0, /*seed=*/43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c); // overwhelmingly likely for 8 near-uniform draws
}

TEST(Generate, StopsAtMaxSeq)
{
    TransformerConfig cfg = lmCfg();
    cfg.max_seq = 6;
    CausalLM model(cfg);
    const auto out = generate(model, {1, 2, 3}, 10);
    EXPECT_LE(out.size() + 3, 7u); // prefix + generated <= max_seq + 1
}

TEST(Generate, TrainedGrammarCopiesPayload)
{
    // Train briefly on the copy grammar and check KV-cached generation
    // honours the long-range dependency, as in the lm_generation
    // example but through the incremental path.
    TransformerConfig cfg = lmCfg();
    cfg.vocab = 64;
    cfg.max_seq = 80;
    cfg.dim = 32;
    cfg.ffn_dim = 64;
    CausalLM model(cfg);
    GrammarConfig gc;
    gc.seq_len = 64;
    gc.vocab = 64;
    gc.period = 6; // dense triggers: the copy rule dominates the loss
    SyntheticGrammar grammar(gc);
    LMTrainer trainer(model, grammar, [] {
        TrainConfig t;
        t.steps = 250;
        t.batch = 4;
        return t;
    }());
    trainer.train();

    // Robust statistical check: the probability the model assigns to
    // the copied payload right after a trigger must be far above the
    // ~1/47 uniform share over payload tokens (the tiny model's argmax
    // is not always right this early in training, but its probability
    // mass shifts decisively).
    Rng rng(7);
    double payload_prob = 0.0;
    int trials = 0;
    while (trials < 8) {
        auto prefix = grammar.sample(rng);
        prefix.resize(40);
        int payload = -1;
        for (size_t i = 0; i + 1 < prefix.size(); ++i)
            if (prefix[i] == grammar.triggerToken())
                payload = prefix[i + 1];
        if (payload < 0)
            continue; // no trigger landed in this prefix; redraw
        prefix.push_back(grammar.triggerToken());
        DecodeState state;
        state.reset(model.config().layers);
        Matrix logits;
        for (int tok : prefix)
            logits = decodeStep(model, state, tok);
        const Matrix probs = rowSoftmax(logits);
        payload_prob += probs(0, static_cast<size_t>(payload));
        ++trials;
    }
    payload_prob /= trials;
    EXPECT_GT(payload_prob, 2.0 / 47.0)
        << "no long-range copy signal learned";
}

} // namespace
} // namespace dota
