/**
 * @file
 * Finite-difference verification of every hand-derived kernel backward.
 */
#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace dota {
namespace {

/** Numeric dL/dx for a scalar loss L(x) = sum(w .* f(x)). */
Matrix
numericGrad(const Matrix &x, const Matrix &w,
            const std::function<Matrix(const Matrix &)> &f,
            double eps = 1e-3)
{
    Matrix grad(x.rows(), x.cols());
    Matrix probe = x;
    for (size_t i = 0; i < x.size(); ++i) {
        const float saved = probe.data()[i];
        probe.data()[i] = saved + static_cast<float>(eps);
        const Matrix up = f(probe);
        probe.data()[i] = saved - static_cast<float>(eps);
        const Matrix down = f(probe);
        probe.data()[i] = saved;
        double acc = 0.0;
        for (size_t j = 0; j < up.size(); ++j)
            acc += static_cast<double>(w.data()[j]) *
                   (up.data()[j] - down.data()[j]);
        grad.data()[i] = static_cast<float>(acc / (2.0 * eps));
    }
    return grad;
}

TEST(OpsGrad, SoftmaxBackward)
{
    Rng rng(21);
    const Matrix x = Matrix::randomNormal(3, 6, rng);
    const Matrix w = Matrix::randomNormal(3, 6, rng); // upstream dL/dy
    const Matrix y = rowSoftmax(x);
    const Matrix analytic = rowSoftmaxBackward(y, w);
    const Matrix numeric =
        numericGrad(x, w, [](const Matrix &m) { return rowSoftmax(m); });
    EXPECT_LT(Matrix::maxAbsDiff(analytic, numeric), 2e-3);
}

TEST(OpsGrad, MaskedSoftmaxBackwardViaDenseFormula)
{
    Rng rng(22);
    const Matrix x = Matrix::randomNormal(2, 8, rng);
    Matrix mask(2, 8);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 8; c += 2)
            mask(r, c) = 1.0f;
    const Matrix w = Matrix::randomNormal(2, 8, rng);
    const Matrix y = rowSoftmaxMasked(x, mask);
    const Matrix analytic = rowSoftmaxBackward(y, w);
    const Matrix numeric = numericGrad(
        x, w,
        [&mask](const Matrix &m) { return rowSoftmaxMasked(m, mask); });
    EXPECT_LT(Matrix::maxAbsDiff(analytic, numeric), 2e-3);
}

TEST(OpsGrad, ReluBackward)
{
    Rng rng(23);
    const Matrix x = Matrix::randomNormal(4, 5, rng);
    const Matrix w = Matrix::randomNormal(4, 5, rng);
    const Matrix analytic = reluBackward(x, w);
    const Matrix numeric =
        numericGrad(x, w, [](const Matrix &m) { return relu(m); });
    EXPECT_LT(Matrix::maxAbsDiff(analytic, numeric), 5e-3);
}

TEST(OpsGrad, GeluBackward)
{
    Rng rng(24);
    const Matrix x = Matrix::randomNormal(4, 5, rng);
    const Matrix w = Matrix::randomNormal(4, 5, rng);
    const Matrix analytic = geluBackward(x, w);
    const Matrix numeric =
        numericGrad(x, w, [](const Matrix &m) { return gelu(m); });
    EXPECT_LT(Matrix::maxAbsDiff(analytic, numeric), 2e-3);
}

TEST(OpsGrad, LayerNormBackwardInput)
{
    Rng rng(25);
    const Matrix x = Matrix::randomNormal(3, 8, rng, 1.0f, 2.0f);
    Matrix gamma = Matrix::randomNormal(1, 8, rng, 1.0f, 0.2f);
    const Matrix beta(1, 8, 0.1f);
    const Matrix w = Matrix::randomNormal(3, 8, rng);

    Matrix mean, rstd;
    layerNorm(x, gamma, beta, mean, rstd);
    Matrix dgamma, dbeta;
    const Matrix analytic =
        layerNormBackward(x, gamma, mean, rstd, w, dgamma, dbeta);

    const Matrix numeric = numericGrad(
        x, w, [&gamma, &beta](const Matrix &m) {
            Matrix mu, rs;
            return layerNorm(m, gamma, beta, mu, rs);
        });
    EXPECT_LT(Matrix::maxAbsDiff(analytic, numeric), 5e-3);
}

TEST(OpsGrad, LayerNormBackwardParams)
{
    Rng rng(26);
    const Matrix x = Matrix::randomNormal(3, 6, rng, 0.5f, 1.5f);
    Matrix gamma = Matrix::randomNormal(1, 6, rng, 1.0f, 0.2f);
    const Matrix beta(1, 6, 0.0f);
    const Matrix w = Matrix::randomNormal(3, 6, rng);

    Matrix mean, rstd;
    layerNorm(x, gamma, beta, mean, rstd);
    Matrix dgamma, dbeta;
    layerNormBackward(x, gamma, mean, rstd, w, dgamma, dbeta);

    const Matrix num_gamma = numericGrad(
        gamma, w, [&x, &beta](const Matrix &g) {
            Matrix mu, rs;
            return layerNorm(x, g, beta, mu, rs);
        });
    EXPECT_LT(Matrix::maxAbsDiff(dgamma, num_gamma), 5e-3);

    const Matrix num_beta = numericGrad(
        beta, w, [&x, &gamma](const Matrix &b) {
            Matrix mu, rs;
            return layerNorm(x, gamma, b, mu, rs);
        });
    EXPECT_LT(Matrix::maxAbsDiff(dbeta, num_beta), 5e-3);
}

} // namespace
} // namespace dota
