/**
 * @file
 * Golden-trace regression for the generation engine: one fixed
 * (config, GenTrace) pair is served and the headline ServeReport
 * fields — TTFT/TPOT percentiles, eviction counters, KV high-water
 * marks, step and token counts — are pinned bit-exactly against
 * tests/data/golden_generation.txt, at DOTA_THREADS=1 and 8.
 *
 * Regenerate (after an intentional engine/cost-model change) with:
 *   DOTA_REGEN_GOLDEN=1 ./dota_serve_tests \
 *       --gtest_filter='GenerationGolden.*'
 * and commit the rewritten tests/data/golden_generation.txt.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "serve/engine.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

std::string
goldenPath()
{
    return std::string(DOTA_TEST_DATA_DIR) + "/golden_generation.txt";
}

ServeReport
goldenRun()
{
    GenTraceConfig tc = test::smallGenTrace(48, 400.0, 71);
    EngineConfig ec = test::smallEngine(3);
    ec.policy.degrade_depth_1 = 3.0; // make the ladder participate
    ec.policy.degrade_depth_2 = 6.0;
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    return engine.run(generateGenTrace(tc));
}

/**
 * The pinned fields, in a fixed serialization order. Doubles render as
 * C99 hex floats so the round trip is bit-exact; counters as decimals.
 */
std::vector<std::pair<std::string, std::string>>
pinnedFields(const ServeReport &rep)
{
    auto hex = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%a", v);
        return std::string(buf);
    };
    auto num = [](size_t v) { return std::to_string(v); };
    const GenMetrics &g = rep.gen;
    return {
        {"completed", num(rep.completed)},
        {"failed", num(rep.failed)},
        {"shed", num(rep.shed())},
        {"latency_p50_ms", hex(rep.p50_ms)},
        {"latency_p99_ms", hex(rep.p99_ms)},
        {"ttft_p50_ms", hex(g.ttft_p50_ms)},
        {"ttft_p95_ms", hex(g.ttft_p95_ms)},
        {"ttft_p99_ms", hex(g.ttft_p99_ms)},
        {"tpot_p50_ms", hex(g.tpot_p50_ms)},
        {"tpot_p95_ms", hex(g.tpot_p95_ms)},
        {"tpot_p99_ms", hex(g.tpot_p99_ms)},
        {"steps", num(g.steps)},
        {"prefill_steps", num(g.prefill_steps)},
        {"decode_steps", num(g.decode_steps)},
        {"prefill_tokens", num(g.prefill_tokens)},
        {"decode_tokens", num(g.decode_tokens)},
        {"output_tokens", num(g.output_tokens)},
        {"kv_peak_pages", num(g.kv_peak_pages)},
        {"kv_peak_bytes", num(g.kv_peak_bytes)},
        {"evictions", num(g.evictions)},
        {"evicted_tokens", num(g.evicted_tokens)},
        {"preemptions", num(g.preemptions)},
        {"kv_ooms", num(g.kv_ooms)},
        {"max_queue_wait_steps", num(g.max_queue_wait_steps)},
        {"horizon_ms", hex(rep.horizon_ms)},
        {"mean_retention", hex(rep.mean_retention)},
    };
}

std::map<std::string, std::string>
readGolden()
{
    std::ifstream in(goldenPath());
    std::map<std::string, std::string> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key, value;
        if (ls >> key >> value)
            out[key] = value;
    }
    return out;
}

void
writeGolden(const std::vector<std::pair<std::string, std::string>> &kv)
{
    std::ofstream out(goldenPath());
    out << "# GenerationEngine golden run (see "
           "test_generation_golden.cpp):\n"
        << "# 48 Text prompts, poisson 400 req/s seed 71, 3x DOTA-F,\n"
        << "# DOTA eviction on. Doubles are C99 hex floats.\n"
        << "# Regenerate with DOTA_REGEN_GOLDEN=1 after intentional\n"
        << "# engine or cost-model changes.\n";
    for (const auto &[key, value] : kv)
        out << key << " " << value << "\n";
}

void
expectMatchesGolden(const ServeReport &rep)
{
    const auto golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << goldenPath()
        << " — regenerate with DOTA_REGEN_GOLDEN=1";
    for (const auto &[key, value] : pinnedFields(rep)) {
        auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "field " << key;
        EXPECT_EQ(value, it->second) << "field " << key;
    }
}

TEST(GenerationGolden, SerialRunMatchesGoldenFile)
{
    test::ScopedThreads serial(1);
    const ServeReport rep = goldenRun();
    if (envFlag("DOTA_REGEN_GOLDEN")) {
        writeGolden(pinnedFields(rep));
        GTEST_SKIP() << "regenerated " << goldenPath();
    }
    expectMatchesGolden(rep);
}

TEST(GenerationGolden, ParallelRunMatchesGoldenExactly)
{
    if (envFlag("DOTA_REGEN_GOLDEN"))
        GTEST_SKIP() << "regeneration pass";
    test::ScopedThreads parallel(8);
    expectMatchesGolden(goldenRun());
}

} // namespace
} // namespace dota
