/**
 * @file
 * Tests for the random projections behind both detection mechanisms.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/random_projection.hpp"

namespace dota {
namespace {

TEST(SparseProjection, EntryDistribution)
{
    Rng rng(51);
    const size_t d = 256, k = 64;
    const Matrix p = sparseRandomProjection(d, k, rng);
    const float mag = std::sqrt(3.0f / static_cast<float>(k));
    size_t zeros = 0, pos = 0, neg = 0;
    for (size_t i = 0; i < p.size(); ++i) {
        const float v = p.data()[i];
        if (v == 0.0f)
            ++zeros;
        else if (std::abs(v - mag) < 1e-6)
            ++pos;
        else if (std::abs(v + mag) < 1e-6)
            ++neg;
        else
            FAIL() << "unexpected entry " << v;
    }
    const double total = static_cast<double>(p.size());
    EXPECT_NEAR(zeros / total, 2.0 / 3.0, 0.02);
    EXPECT_NEAR(pos / total, 1.0 / 6.0, 0.02);
    EXPECT_NEAR(neg / total, 1.0 / 6.0, 0.02);
}

TEST(SparseProjection, PreservesInnerProductsOnAverage)
{
    // Johnson-Lindenstrauss-style check: E[(Px)(Py)^T] = x y^T.
    Rng rng(52);
    const size_t d = 128, k = 64, trials = 200;
    const Matrix x = Matrix::randomNormal(1, d, rng);
    const Matrix y = Matrix::randomNormal(1, d, rng);
    const double exact = matmulBT(x, y)(0, 0);
    double acc = 0.0;
    for (size_t t = 0; t < trials; ++t) {
        const Matrix p = sparseRandomProjection(d, k, rng);
        acc += matmulBT(matmul(x, p), matmul(y, p))(0, 0);
    }
    // Estimator std per trial is ~|x||y|/sqrt(k) ~ 16; the mean of 200
    // trials has std ~1.1, so a 3.5-sigma band is ~4.
    EXPECT_NEAR(acc / trials, exact, 4.0);
}

TEST(SparseProjection, PreservesNormsApproximately)
{
    Rng rng(53);
    const size_t d = 256, k = 96;
    const Matrix x = Matrix::randomNormal(1, d, rng);
    const Matrix p = sparseRandomProjection(d, k, rng);
    const double orig = x.frobeniusNorm();
    const double proj = matmul(x, p).frobeniusNorm();
    EXPECT_NEAR(proj / orig, 1.0, 0.35);
}

TEST(GaussianProjection, Shape)
{
    Rng rng(54);
    const Matrix p = gaussianRandomProjection(32, 8, rng);
    EXPECT_EQ(p.rows(), 32u);
    EXPECT_EQ(p.cols(), 8u);
}

TEST(SignHashes, SelfSimilarityIsOne)
{
    Rng rng(55);
    const Matrix x = Matrix::randomNormal(6, 32, rng);
    const SignHashes h(x, 64, rng);
    for (size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(h.hamming(i, i), 0u);
        EXPECT_DOUBLE_EQ(h.similarity(i, i), 1.0);
    }
}

TEST(SignHashes, OppositeVectorsAntipodal)
{
    Rng rng(56);
    Matrix x(2, 16);
    for (size_t c = 0; c < 16; ++c) {
        x(0, c) = static_cast<float>(rng.normal());
        x(1, c) = -x(0, c);
    }
    const SignHashes h(x, 128, rng);
    EXPECT_LT(h.similarity(0, 1), -0.95);
}

TEST(SignHashes, EstimatesAngle)
{
    // Two vectors at a known 60-degree angle: cos = 0.5.
    Rng rng(57);
    Matrix x(2, 2);
    x(0, 0) = 1.0f;
    x(0, 1) = 0.0f;
    x(1, 0) = 0.5f;
    x(1, 1) = std::sqrt(3.0f) / 2.0f;
    const SignHashes h(x, 2048, rng);
    EXPECT_NEAR(h.similarity(0, 1), 0.5, 0.08);
}

class HashBits : public ::testing::TestWithParam<size_t>
{};

TEST_P(HashBits, MoreBitsTightenEstimate)
{
    const size_t m = GetParam();
    Rng rng(58);
    const size_t d = 24;
    const Matrix x = Matrix::randomNormal(12, d, rng);
    const SignHashes h(x, m, rng);
    // Average absolute error of the cosine estimate vs exact.
    double err = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < x.rows(); ++i) {
        for (size_t j = i + 1; j < x.rows(); ++j) {
            double dot = 0.0, ni = 0.0, nj = 0.0;
            for (size_t c = 0; c < d; ++c) {
                dot += static_cast<double>(x(i, c)) * x(j, c);
                ni += static_cast<double>(x(i, c)) * x(i, c);
                nj += static_cast<double>(x(j, c)) * x(j, c);
            }
            const double exact = dot / std::sqrt(ni * nj);
            err += std::abs(h.similarity(i, j) - exact);
            ++count;
        }
    }
    err /= static_cast<double>(count);
    // Loose monotone bound: error ~ pi/(2*sqrt(m)).
    EXPECT_LT(err, 2.5 / std::sqrt(static_cast<double>(m)));
}

INSTANTIATE_TEST_SUITE_P(Widths, HashBits,
                         ::testing::Values(16, 64, 256, 1024));

TEST(SignHashes, CrossSimilarityMatchesSharedPlanes)
{
    Rng rng(59);
    const Matrix q = Matrix::randomNormal(4, 16, rng);
    const Matrix k = Matrix::randomNormal(5, 16, rng);
    const Matrix planes = Matrix::randomNormal(16, 64, rng);
    const SignHashes hq(q, planes);
    const SignHashes hk(k, planes);
    // Hash of identical vectors across the two sets must agree.
    const SignHashes hq2(q, planes);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(hq.crossSimilarity(i, hq2, i), 1.0);
    // Cross similarities are bounded cosine estimates.
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 5; ++j) {
            const double s = hq.crossSimilarity(i, hk, j);
            EXPECT_GE(s, -1.0);
            EXPECT_LE(s, 1.0);
        }
}

} // namespace
} // namespace dota
