/**
 * @file
 * Unit tests for the NN layer modules, including finite-difference
 * verification through the Module interface.
 */
#include <gtest/gtest.h>

#include "nn/adam.hpp"
#include "nn/embedding.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layer_norm.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"

namespace dota {
namespace {

/** Scalar loss: sum of w .* layer(x). */
template <typename Layer>
double
weightedForward(Layer &layer, const Matrix &x, const Matrix &w)
{
    const Matrix y = layer.forward(x);
    double acc = 0.0;
    for (size_t i = 0; i < y.size(); ++i)
        acc += static_cast<double>(w.data()[i]) * y.data()[i];
    return acc;
}

TEST(Linear, ForwardKnown)
{
    Rng rng(71);
    LinearLayer lin("l", 2, 2, rng);
    lin.weight().value = Matrix(2, 2, std::vector<float>{1, 2, 3, 4});
    lin.bias().value = Matrix(1, 2, std::vector<float>{10, 20});
    const Matrix x(1, 2, std::vector<float>{1, 1});
    const Matrix y = lin.forward(x);
    EXPECT_FLOAT_EQ(y(0, 0), 14.0f);
    EXPECT_FLOAT_EQ(y(0, 1), 26.0f);
}

TEST(Linear, NoBias)
{
    Rng rng(72);
    LinearLayer lin("l", 3, 2, rng, /*bias=*/false);
    std::vector<Parameter *> ps;
    lin.collectParams(ps);
    EXPECT_EQ(ps.size(), 1u);
}

TEST(Linear, GradCheck)
{
    Rng rng(73);
    LinearLayer lin("l", 5, 4, rng);
    const Matrix x = Matrix::randomNormal(3, 5, rng);
    const Matrix w = Matrix::randomNormal(3, 4, rng);

    lin.zeroGrad();
    lin.forward(x);
    lin.backward(w);

    auto loss = [&]() { return weightedForward(lin, x, w); };
    Rng probe(1);
    auto res = checkGradient(loss, lin.weight(), 10, 1e-3, probe);
    EXPECT_LT(res.max_abs_err, 5e-2);
    EXPECT_LT(res.max_rel_err, 2e-2);
    res = checkGradient(loss, lin.bias(), 4, 1e-3, probe);
    EXPECT_LT(res.max_rel_err, 2e-2);
}

TEST(Linear, InputGradient)
{
    Rng rng(74);
    LinearLayer lin("l", 4, 3, rng);
    const Matrix x = Matrix::randomNormal(2, 4, rng);
    const Matrix w = Matrix::randomNormal(2, 3, rng);
    lin.forward(x);
    const Matrix dx = lin.backward(w);
    // dx = w W^T
    const Matrix expect = matmulBT(w, lin.weight().value);
    EXPECT_TRUE(Matrix::allClose(dx, expect, 1e-5));
}

TEST(LayerNormLayer, GradCheckParams)
{
    Rng rng(75);
    LayerNormLayer ln("ln", 6);
    const Matrix x = Matrix::randomNormal(3, 6, rng, 1.0f, 2.0f);
    const Matrix w = Matrix::randomNormal(3, 6, rng);
    ln.zeroGrad();
    ln.forward(x);
    ln.backward(w);

    std::vector<Parameter *> ps;
    ln.collectParams(ps);
    ASSERT_EQ(ps.size(), 2u);
    auto loss = [&]() { return weightedForward(ln, x, w); };
    Rng probe(2);
    for (Parameter *p : ps) {
        auto res = checkGradient(loss, *p, 6, 1e-3, probe);
        EXPECT_LT(res.max_rel_err, 3e-2) << p->name;
    }
}

TEST(Embedding, GatherAndScatter)
{
    Rng rng(76);
    EmbeddingLayer emb("e", 10, 4, rng);
    const std::vector<int> ids{2, 7, 2};
    const Matrix y = emb.forward(ids);
    EXPECT_EQ(y.rows(), 3u);
    for (size_t c = 0; c < 4; ++c) {
        EXPECT_FLOAT_EQ(y(0, c), emb.table().value(2, c));
        EXPECT_FLOAT_EQ(y(2, c), emb.table().value(2, c));
    }
    Matrix dy(3, 4, 1.0f);
    emb.zeroGrad();
    emb.backward(dy);
    // Token 2 appears twice: gradient accumulates.
    EXPECT_FLOAT_EQ(emb.table().grad(2, 0), 2.0f);
    EXPECT_FLOAT_EQ(emb.table().grad(7, 0), 1.0f);
    EXPECT_FLOAT_EQ(emb.table().grad(0, 0), 0.0f);
}

TEST(Loss, CrossEntropyKnown)
{
    // Uniform logits over 4 classes: loss = ln(4).
    Matrix logits(1, 4, 0.0f);
    Matrix dl;
    const double loss = softmaxCrossEntropy(logits, {1}, dl);
    EXPECT_NEAR(loss, std::log(4.0), 1e-6);
    EXPECT_NEAR(dl(0, 1), 0.25 - 1.0, 1e-6);
    EXPECT_NEAR(dl(0, 0), 0.25, 1e-6);
}

TEST(Loss, CrossEntropyIgnoresNegativeLabels)
{
    Matrix logits(3, 2, 0.0f);
    logits(0, 0) = 5.0f;
    Matrix dl;
    const double loss = softmaxCrossEntropy(logits, {0, -1, 1}, dl);
    EXPECT_GT(loss, 0.0);
    for (size_t c = 0; c < 2; ++c)
        EXPECT_FLOAT_EQ(dl(1, c), 0.0f); // ignored row has no gradient
}

TEST(Loss, GradientSumsToZeroPerRow)
{
    Rng rng(77);
    const Matrix logits = Matrix::randomNormal(4, 6, rng);
    Matrix dl;
    softmaxCrossEntropy(logits, {0, 1, 2, 3}, dl);
    for (size_t r = 0; r < 4; ++r) {
        double sum = 0.0;
        for (size_t c = 0; c < 6; ++c)
            sum += dl(r, c);
        EXPECT_NEAR(sum, 0.0, 1e-6);
    }
}

TEST(Loss, AccuracyAndArgmax)
{
    Matrix logits(2, 3, 0.0f);
    logits(0, 2) = 1.0f;
    logits(1, 0) = 1.0f;
    EXPECT_EQ(rowArgmax(logits), (std::vector<int>{2, 0}));
    EXPECT_DOUBLE_EQ(accuracy(logits, {2, 1}), 0.5);
    EXPECT_DOUBLE_EQ(accuracy(logits, {2, -1}), 1.0);
}

TEST(Loss, Perplexity)
{
    EXPECT_NEAR(perplexityFromLoss(std::log(32.0)), 32.0, 1e-9);
}

TEST(Adam, ReducesQuadraticLoss)
{
    // Minimize ||p - target||^2 with Adam.
    Parameter p("p", Matrix(1, 4, 5.0f));
    const Matrix target(1, 4, std::vector<float>{1, -2, 0, 3});
    AdamConfig cfg;
    cfg.lr = 0.1;
    Adam opt({&p}, cfg);
    double first_loss = 0.0, last_loss = 0.0;
    for (int step = 0; step < 200; ++step) {
        opt.zeroGrad();
        double loss = 0.0;
        for (size_t i = 0; i < 4; ++i) {
            const float diff = p.value.data()[i] - target.data()[i];
            loss += diff * diff;
            p.grad.data()[i] = 2.0f * diff;
        }
        if (step == 0)
            first_loss = loss;
        last_loss = loss;
        opt.step();
    }
    EXPECT_LT(last_loss, 1e-3 * first_loss);
}

TEST(Adam, ClipBoundsNorm)
{
    Parameter p("p", Matrix(1, 2, 0.0f));
    AdamConfig cfg;
    cfg.clip_norm = 1.0;
    Adam opt({&p}, cfg);
    p.grad(0, 0) = 30.0f;
    p.grad(0, 1) = 40.0f;
    opt.step();
    EXPECT_NEAR(opt.lastGradNorm(), 50.0, 1e-6);
    // Update magnitude behaves like a unit-norm gradient step.
    EXPECT_LT(std::abs(p.value(0, 0)), 0.1);
}

TEST(Adam, WeightDecayShrinks)
{
    Parameter p("p", Matrix(1, 1, 10.0f));
    AdamConfig cfg;
    cfg.lr = 0.01;
    cfg.weight_decay = 0.1;
    Adam opt({&p}, cfg);
    for (int i = 0; i < 50; ++i) {
        opt.zeroGrad(); // zero gradient: only decay acts
        opt.step();
    }
    EXPECT_LT(p.value(0, 0), 10.0f);
}

} // namespace
} // namespace dota
