/**
 * @file
 * Tests for the hardware model: RMMU cycle formulas, the energy/power/
 * area budget against Table 2, and the accelerator phase accounting.
 */
#include <gtest/gtest.h>

#include "sim/accelerator.hpp"

namespace dota {
namespace {

TEST(HwConfig, Table2Configuration)
{
    const HwConfig hw = HwConfig::dota();
    EXPECT_EQ(hw.lanes, 4u);
    EXPECT_EQ(hw.lane.rmmu.pes(), 512u);
    EXPECT_EQ(hw.lane.token_parallelism, 4u);
    EXPECT_EQ(hw.sramBytes(), 4u * 640 * 1024); // 2.5 MB total
    EXPECT_NEAR(hw.peakTops(), 2.048, 1e-9);    // Table 2: 2 TOPS
}

TEST(HwConfig, ScaledFabricNearGpuPeak)
{
    const HwConfig hw = HwConfig::dotaScaledForGpu();
    EXPECT_NEAR(hw.peakTops(), 12.3, 0.3); // Section 5.1: ~12 TOPS
}

TEST(Rmmu, GemmCyclesExact)
{
    const EnergyModel em = EnergyModel::tsmc22();
    Rmmu rmmu(RmmuConfig{32, 16}, &em);
    // Perfectly tiled GEMM: (64x128)*(128x32) -> 2x2 tiles x 128 cycles.
    EXPECT_EQ(rmmu.gemmCycles(64, 128, 32, Precision::FX16), 512u);
    // Edge tiles round up.
    EXPECT_EQ(rmmu.gemmCycles(33, 1, 17, Precision::FX16), 4u);
    EXPECT_EQ(rmmu.gemmCycles(0, 8, 8, Precision::FX16), 0u);
}

TEST(Rmmu, PrecisionScalesReduction)
{
    const EnergyModel em = EnergyModel::tsmc22();
    Rmmu rmmu(RmmuConfig{32, 16}, &em);
    const uint64_t fx16 = rmmu.gemmCycles(32, 256, 16, Precision::FX16);
    EXPECT_EQ(rmmu.gemmCycles(32, 256, 16, Precision::INT8), fx16 / 4);
    EXPECT_EQ(rmmu.gemmCycles(32, 256, 16, Precision::INT4), fx16 / 16);
    EXPECT_EQ(rmmu.gemmCycles(32, 256, 16, Precision::INT2), fx16 / 64);
}

TEST(Rmmu, MacsPerCycle)
{
    const EnergyModel em = EnergyModel::tsmc22();
    Rmmu rmmu(RmmuConfig{32, 16}, &em);
    EXPECT_EQ(rmmu.macsPerCycle(Precision::FX16), 512u);
    EXPECT_EQ(rmmu.macsPerCycle(Precision::INT2), 512u * 64);
}

TEST(Rmmu, SparseAttentionCycles)
{
    const EnergyModel em = EnergyModel::tsmc22();
    Rmmu rmmu(RmmuConfig{32, 16}, &em);
    // 100 rounds x 4 queries x 64-dim dot products = 25600 MAC slots.
    EXPECT_EQ(rmmu.sparseAttentionCycles(100, 4, 64), 50u);
}

TEST(Energy, MacEnergyOrdering)
{
    const EnergyModel em = EnergyModel::tsmc22();
    EXPECT_GT(em.macPj(Precision::FX16), em.macPj(Precision::INT8));
    EXPECT_GT(em.macPj(Precision::INT8), em.macPj(Precision::INT4));
    EXPECT_GT(em.macPj(Precision::INT4), em.macPj(Precision::INT2));
}

TEST(Energy, SchedulerEnergyGrowsWithParallelism)
{
    const EnergyModel em = EnergyModel::tsmc22();
    // Normalized at T = 4; 2^t - 1 buffer scaling (Figure 15).
    EXPECT_DOUBLE_EQ(em.schedulerIssuePj(4), em.scheduler_issue_pj);
    EXPECT_LT(em.schedulerIssuePj(2), em.schedulerIssuePj(4));
    EXPECT_GT(em.schedulerIssuePj(6), 4.0 * em.schedulerIssuePj(4));
}

TEST(Energy, BudgetReproducesTable2)
{
    const auto rows =
        powerAreaBudget(HwConfig::dota(), EnergyModel::tsmc22());
    auto find = [&rows](const std::string &name) {
        for (const auto &r : rows)
            if (r.module == name)
                return r;
        ADD_FAILURE() << "module " << name << " missing";
        return ModuleBudget{};
    };
    // Paper Table 2 values with a 15% modeling tolerance.
    EXPECT_NEAR(find("Lane.RMMU").power_mw, 645.98, 0.15 * 645.98);
    EXPECT_NEAR(find("Lane.MFU").power_mw, 60.73, 0.15 * 60.73);
    EXPECT_NEAR(find("Lane.Filter").power_mw, 9.13, 0.25 * 9.13);
    EXPECT_NEAR(find("Accumulator").power_mw, 139.21, 0.15 * 139.21);
    EXPECT_NEAR(find("Lane.RMMU").area_mm2, 0.609, 0.1 * 0.609);
    EXPECT_NEAR(find("Lane (all)").area_mm2, 2.701, 0.15 * 2.701);
    EXPECT_NEAR(find("SRAM").area_mm2, 1.69, 0.15 * 1.69);
    EXPECT_NEAR(find("DOTA (w/o SRAM)").power_mw, 3017.54,
                0.15 * 3017.54);
}

TEST(Report, PhaseArithmetic)
{
    PhaseCost a{"x", 10, 100, 1000, 10000, 5.0};
    PhaseCost b{"y", 1, 2, 3, 4, 0.5};
    a += b;
    EXPECT_EQ(a.cycles, 11u);
    EXPECT_EQ(a.macs, 102u);
    EXPECT_DOUBLE_EQ(a.energy_pj, 5.5);
}

TEST(Report, TimingRollups)
{
    RunReport r;
    r.freq_ghz = 1.0;
    r.layers = 2;
    r.per_layer.linear.cycles = 1000;
    r.per_layer.detection.cycles = 10;
    r.per_layer.attention.cycles = 200;
    EXPECT_EQ(r.totalCycles(), 2420u);
    EXPECT_DOUBLE_EQ(r.timeMs(), 2420.0 / 1e6);
    EXPECT_DOUBLE_EQ(r.attentionTimeMs(), 420.0 / 1e6);
    EXPECT_DOUBLE_EQ(r.linearTimeMs(), 2000.0 / 1e6);
}

TEST(Modes, NamesAndRetention)
{
    EXPECT_EQ(dotaModeName(DotaMode::Full), "DOTA-F");
    EXPECT_EQ(dotaModeName(DotaMode::Conservative), "DOTA-C");
    const Benchmark &qa = benchmark(BenchmarkId::QA);
    EXPECT_DOUBLE_EQ(modeRetention(qa, DotaMode::Full), 1.0);
    EXPECT_DOUBLE_EQ(modeRetention(qa, DotaMode::Conservative),
                     qa.retention_conservative);
    EXPECT_DOUBLE_EQ(modeRetention(qa, DotaMode::Aggressive),
                     qa.retention_aggressive);
}

TEST(Accelerator, DetectionSkippedInFullMode)
{
    DotaAccelerator acc;
    SimOptions opt;
    opt.mode = DotaMode::Full;
    const RunReport r = acc.simulate(benchmark(BenchmarkId::QA), opt);
    EXPECT_EQ(r.per_layer.detection.cycles, 0u);
    EXPECT_GT(r.per_layer.attention.cycles, 0u);
}

TEST(Accelerator, SparsityReducesAttentionCost)
{
    DotaAccelerator acc;
    SimOptions opt;
    opt.mode = DotaMode::Full;
    const RunReport full = acc.simulate(benchmark(BenchmarkId::Text), opt);
    opt.mode = DotaMode::Conservative;
    const RunReport cons = acc.simulate(benchmark(BenchmarkId::Text), opt);
    EXPECT_LT(cons.per_layer.attention.cycles,
              full.per_layer.attention.cycles / 3);
    EXPECT_LT(cons.totalEnergyJ(), full.totalEnergyJ());
}

TEST(Accelerator, DetectionIsSmallFractionOfLayer)
{
    // Figure 12(c): attention estimation latency is negligible.
    DotaAccelerator acc(HwConfig::dotaScaledForGpu());
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    for (const Benchmark &b : allBenchmarks()) {
        const RunReport r = acc.simulate(b, opt);
        const double det =
            static_cast<double>(r.per_layer.detection.cycles);
        const double total =
            static_cast<double>(r.per_layer.totalCycles());
        EXPECT_LT(det / total, 0.25) << b.name;
    }
}

TEST(Accelerator, AggressiveFasterThanConservative)
{
    DotaAccelerator acc;
    SimOptions opt;
    for (const Benchmark &b : allBenchmarks()) {
        opt.mode = DotaMode::Conservative;
        const double cons = acc.simulate(b, opt).timeMs();
        opt.mode = DotaMode::Aggressive;
        const double aggr = acc.simulate(b, opt).timeMs();
        EXPECT_LE(aggr, cons) << b.name;
    }
}

TEST(Accelerator, GenerationPathRuns)
{
    DotaAccelerator acc;
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    const RunReport gen =
        acc.simulateGeneration(benchmark(BenchmarkId::LM), opt);
    EXPECT_GT(gen.totalCycles(), 0u);
    EXPECT_GT(gen.per_layer.linear.dram_bytes, 0u);
    // Generation is memory-bound: much slower than single-pass scoring.
    opt.mode = DotaMode::Conservative;
    const RunReport scoring = acc.simulate(benchmark(BenchmarkId::LM), opt);
    EXPECT_GT(gen.timeMs(), scoring.timeMs());
}

TEST(Accelerator, GenerationSparsitySavesMemory)
{
    DotaAccelerator acc;
    SimOptions opt;
    opt.mode = DotaMode::Full;
    const RunReport dense =
        acc.simulateGeneration(benchmark(BenchmarkId::LM), opt);
    opt.mode = DotaMode::Conservative;
    const RunReport sparse =
        acc.simulateGeneration(benchmark(BenchmarkId::LM), opt);
    EXPECT_LT(sparse.per_layer.attention.dram_bytes,
              dense.per_layer.attention.dram_bytes / 2);
}

TEST(Accelerator, MaskShapeValidated)
{
    DotaAccelerator acc;
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    SparseMask wrong(10, 10);
    EXPECT_DEATH(
        acc.simulateWithMask(benchmark(BenchmarkId::QA), opt, wrong),
        "mask rows");
}

} // namespace
} // namespace dota
