/**
 * @file
 * Tests for the polymorphic Device interface and DeviceRegistry — in
 * particular the parity contract: every registry-created device must
 * reproduce the numbers the pre-refactor System facade produced (golden
 * values captured from the seed code paths, tests/data/
 * golden_device_parity.txt).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "core/dota.hpp"

namespace dota {
namespace {

// ------------------------------------------------------------- registry

TEST(DeviceRegistry, BuiltinKeys)
{
    const std::vector<std::string> keys = DeviceRegistry::keys();
    for (const char *key :
         {"dota-f", "dota-c", "dota-a", "elsa", "gpu-v100"}) {
        EXPECT_TRUE(DeviceRegistry::contains(key)) << key;
        EXPECT_NE(std::find(keys.begin(), keys.end(), key), keys.end());
        EXPECT_FALSE(DeviceRegistry::describe(key).empty());
    }
    EXPECT_FALSE(DeviceRegistry::contains("no-such-device"));
}

TEST(DeviceRegistry, UnknownKeyIsFatal)
{
    EXPECT_DEATH(DeviceRegistry::create("warp-drive"),
                 "unknown device key");
}

TEST(DeviceRegistry, CreatedDevicesAreLabeled)
{
    const std::map<std::string, std::string> expected{
        {"dota-f", "DOTA-F"}, {"dota-c", "DOTA-C"},
        {"dota-a", "DOTA-A"}, {"elsa", "ELSA"},
        {"gpu-v100", "GPU-V100"}};
    for (const auto &[key, name] : expected) {
        const auto dev = DeviceRegistry::create(key);
        EXPECT_EQ(dev->name(), name);
        EXPECT_GT(dev->peakTopS(), 0.0);
        const RunReport r = dev->simulate(benchmark(BenchmarkId::QA));
        EXPECT_EQ(r.device, name);
        EXPECT_EQ(r.benchmark, "QA");
    }
}

TEST(Device, CloneIsIndependentAndEquivalent)
{
    const auto dev = DeviceRegistry::create("dota-c");
    const auto copy = dev->clone();
    const Benchmark &b = benchmark(BenchmarkId::Image);
    const RunReport r1 = dev->simulate(b);
    const RunReport r2 = copy->simulate(b);
    EXPECT_EQ(r1.totalCycles(), r2.totalCycles());
    EXPECT_EQ(r1.timeMs(), r2.timeMs());
    EXPECT_EQ(r1.totalEnergyJ(), r2.totalEnergyJ());
    EXPECT_EQ(copy->name(), dev->name());
}

TEST(Device, GenerationUnsupportedIsFatal)
{
    const auto elsa = DeviceRegistry::create("elsa");
    EXPECT_DEATH(elsa->simulateGeneration(benchmark(BenchmarkId::LM)),
                 "generation");
}

// ------------------------------------------------- cross-device invariants

TEST(Device, GpuHasZeroDetectionEverywhere)
{
    const auto gpu = DeviceRegistry::create("gpu-v100");
    for (const Benchmark &b : allBenchmarks()) {
        const RunReport r = gpu->simulate(b);
        EXPECT_EQ(r.per_layer.detection.cycles, 0u) << b.name;
        EXPECT_EQ(r.per_layer.detection.macs, 0u) << b.name;
        EXPECT_EQ(r.per_layer.detection.energy_pj, 0.0) << b.name;
    }
}

TEST(Device, FullModeIsNeverFasterThanConservative)
{
    const auto full = DeviceRegistry::create("dota-f");
    const auto cons = DeviceRegistry::create("dota-c");
    for (const Benchmark &b : allBenchmarks()) {
        const RunReport rf = full->simulate(b);
        const RunReport rc = cons->simulate(b);
        // Retention 1.0 retires at least as many attention cycles.
        EXPECT_GE(rf.totalCycles(), rc.totalCycles()) << b.name;
        EXPECT_GE(rf.per_layer.attention.cycles,
                  rc.per_layer.attention.cycles)
            << b.name;
    }
}

TEST(Device, EveryDeviceEmitsUnifiedReports)
{
    const Benchmark &b = benchmark(BenchmarkId::Text);
    for (const std::string &key : DeviceRegistry::keys()) {
        const auto dev = DeviceRegistry::create(key);
        const RunReport r = dev->simulate(b);
        EXPECT_GT(r.timeMs(), 0.0) << key;
        EXPECT_GT(r.totalEnergyJ(), 0.0) << key;
        EXPECT_GT(r.attentionTimeMs(), 0.0) << key;
        EXPECT_EQ(r.layers, b.paper_shape.layers) << key;
    }
}

// ------------------------------------------------------- seed parity

/** golden_device_parity.txt: "<device> <benchmark> <field> <hex>". */
std::map<std::string, double>
loadGolden()
{
    const std::string path =
        std::string(DOTA_TEST_DATA_DIR) + "/golden_device_parity.txt";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::map<std::string, double> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string device, bench, field, hex;
        ls >> device >> bench >> field >> hex;
        golden[device + "/" + bench + "/" + field] =
            std::strtod(hex.c_str(), nullptr);
    }
    return golden;
}

class DeviceParity : public ::testing::Test
{
  protected:
    static const std::map<std::string, double> &
    golden()
    {
        static const std::map<std::string, double> g = loadGolden();
        return g;
    }

    static double
    want(const std::string &device, const std::string &bench,
         const std::string &field)
    {
        const auto it = golden().find(device + "/" + bench + "/" + field);
        EXPECT_NE(it, golden().end())
            << device << "/" << bench << "/" << field;
        return it == golden().end() ? 0.0 : it->second;
    }
};

TEST_F(DeviceParity, AcceleratorDevicesAreBitIdenticalToSeedFacade)
{
    // DOTA (all three modes) and ELSA route through the exact seed code
    // paths, so the refactor must preserve every double bit-for-bit.
    for (const Benchmark &b : allBenchmarks()) {
        for (const char *key : {"dota-f", "dota-c", "dota-a", "elsa"}) {
            const auto dev = DeviceRegistry::create(key);
            const RunReport r = dev->simulate(b);
            EXPECT_EQ(r.timeMs(), want(key, b.name, "time_ms"))
                << key << " " << b.name;
            EXPECT_EQ(r.attentionTimeMs(),
                      want(key, b.name, "attention_ms"))
                << key << " " << b.name;
            EXPECT_EQ(r.detectionTimeMs(),
                      want(key, b.name, "detection_ms"))
                << key << " " << b.name;
            EXPECT_EQ(r.linearTimeMs(), want(key, b.name, "linear_ms"))
                << key << " " << b.name;
            EXPECT_EQ(r.totalEnergyJ(), want(key, b.name, "energy_j"))
                << key << " " << b.name;
        }
    }
}

TEST_F(DeviceParity, SystemFacadeMatchesRegistryDevices)
{
    // The refactored System facade is a registry lookup: same numbers.
    System sys;
    for (const Benchmark &b : allBenchmarks()) {
        const auto dev = DeviceRegistry::create("dota-c");
        const RunReport direct = dev->simulate(b);
        const RunReport via = sys.run(b.id, "dota-c");
        EXPECT_EQ(direct.timeMs(), via.timeMs()) << b.name;
        EXPECT_EQ(direct.totalEnergyJ(), via.totalEnergyJ()) << b.name;
    }
}

TEST_F(DeviceParity, GpuMatchesSeedWithinTickQuantization)
{
    // The seed GpuReport carried unquantized double milliseconds; the
    // unified RunReport quantizes each per-layer phase onto a 1 ps tick
    // (kGpuTickGhz). Phase times are >= microseconds, so the relative
    // error is bounded by ~1e-6 and in practice ~1e-9.
    const auto gpu = DeviceRegistry::create("gpu-v100");
    for (const Benchmark &b : allBenchmarks()) {
        const RunReport r = gpu->simulate(b);
        const double att = want("gpu-v100", b.name, "attention_ms");
        const double lin = want("gpu-v100", b.name, "linear_ms");
        const double tot = want("gpu-v100", b.name, "time_ms");
        const double nrg = want("gpu-v100", b.name, "energy_j");
        EXPECT_NEAR(r.attentionTimeMs(), att, 1e-6 * att) << b.name;
        EXPECT_NEAR(r.linearTimeMs(), lin, 1e-6 * lin) << b.name;
        EXPECT_NEAR(r.timeMs(), tot, 1e-6 * tot) << b.name;
        EXPECT_NEAR(r.totalEnergyJ(), nrg, 1e-6 * nrg) << b.name;
    }
}

} // namespace
} // namespace dota
