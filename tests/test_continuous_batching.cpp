/**
 * @file
 * Invariant tests of the continuous-batching generation engine
 * (serve/engine.hpp): token conservation, no decode token before its
 * prefill completed, strict-FIFO fairness (no starvation beyond the
 * configured step budget), deterministic preemption under KV pressure,
 * the DOTA-eviction memory win at equal output tokens, and the
 * 1-vs-8-thread bit-identity contract.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "serve/engine.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

using test::atBothThreadCounts;
using test::expectIdentical;
using test::smallEngine;
using test::smallGenTrace;

ServeReport
runEngine(const EngineConfig &ec, const GenTraceConfig &tc)
{
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    return engine.run(generateGenTrace(tc));
}

// --------------------------------------------------------- conservation

TEST(ContinuousBatching, TokenAndRequestConservation)
{
    const GenTraceConfig tc = smallGenTrace(50, 300.0);
    const ServeReport rep = runEngine(smallEngine(3), tc);
    const GenTrace trace = generateGenTrace(tc);

    // Every request reaches exactly one terminal state.
    EXPECT_EQ(rep.requests, trace.requests.size());
    EXPECT_EQ(rep.completed + rep.shed() + rep.failed, rep.requests);
    EXPECT_GT(rep.completed, 0u);

    // Token conservation: each completed request emits exactly its
    // output_len tokens — one at prefill, the rest by decode steps.
    size_t expect_output = 0, expect_prompt = 0;
    for (const RequestOutcome &out : rep.outcomes) {
        if (out.status != RequestStatus::Completed)
            continue;
        const GenRequest &req = trace.requests[out.id];
        EXPECT_EQ(out.generated, req.output_len) << "request " << out.id;
        expect_output += req.output_len;
        expect_prompt += req.prompt_len;
    }
    EXPECT_EQ(rep.gen.output_tokens, expect_output);
    // No preemption in this roomy config: prefill work equals the
    // completed prompts and decode work the non-first output tokens.
    ASSERT_EQ(rep.gen.preemptions, 0u);
    EXPECT_EQ(rep.gen.prefill_tokens, expect_prompt);
    EXPECT_EQ(rep.gen.decode_tokens, expect_output - rep.completed);
    // A step can be both a prefill and a decode step (mixed batch), so
    // the phase counters bracket the total rather than partition it.
    EXPECT_GE(rep.gen.steps,
              std::max(rep.gen.prefill_steps, rep.gen.decode_steps));
    EXPECT_LE(rep.gen.steps,
              rep.gen.prefill_steps + rep.gen.decode_steps);
}

// ------------------------------------------------- prefill-before-decode

TEST(ContinuousBatching, NoDecodeBeforePrefillCompletes)
{
    const GenTraceConfig tc = smallGenTrace(40, 250.0);
    EngineConfig ec = smallEngine(2);
    const GenerationEngine engine(ec, benchmark(BenchmarkId::Text));
    const GenTrace trace = generateGenTrace(tc);
    const ServeReport rep = engine.run(trace);
    for (const RequestOutcome &out : rep.outcomes) {
        if (out.status != RequestStatus::Completed)
            continue;
        const GenRequest &req = trace.requests[out.id];
        // The first token cannot appear before the prompt's prefill has
        // run to completion: TTFT covers at least the full prefill cost
        // at the served ladder level (queue wait only adds to it).
        const double prefill_ms = engine.prefillMs(
            static_cast<size_t>(out.device), out.level, req.prompt_len);
        EXPECT_GE(out.ttft_ms + 1e-9, prefill_ms)
            << "request " << out.id << " decoded before prefill";
        // And decode tokens follow the first token, never precede it.
        if (req.output_len > 1)
            EXPECT_GT(out.tpot_ms, 0.0);
        EXPECT_GE(out.finish_ms - req.arrival_ms, out.ttft_ms);
    }
}

// ------------------------------------------------------------- fairness

TEST(ContinuousBatching, StrictFifoAdmissionNeverStarves)
{
    // Overload two devices so a real queue builds up.
    GenTraceConfig tc = smallGenTrace(80, 2000.0);
    EngineConfig ec = smallEngine(2);
    ec.batch.starve_step_budget = 10000; // asserts inside the engine
    const ServeReport rep = runEngine(ec, tc);
    EXPECT_EQ(rep.completed + rep.shed() + rep.failed, rep.requests);
    EXPECT_LE(rep.gen.max_queue_wait_steps, ec.batch.starve_step_budget);

    // Strict FIFO: among never-preempted completions, prefill start
    // order follows (arrival, id) order — nobody is overtaken.
    std::vector<const RequestOutcome *> done;
    for (const RequestOutcome &out : rep.outcomes)
        if (out.status == RequestStatus::Completed && out.attempts == 1)
            done.push_back(&out);
    std::sort(done.begin(), done.end(),
              [](const RequestOutcome *a, const RequestOutcome *b) {
                  if (a->arrival_ms != b->arrival_ms)
                      return a->arrival_ms < b->arrival_ms;
                  return a->id < b->id;
              });
    for (size_t i = 1; i < done.size(); ++i)
        EXPECT_GE(done[i]->dispatch_ms + 1e-9, done[i - 1]->dispatch_ms)
            << "request " << done[i]->id << " overtook "
            << done[i - 1]->id;
}

// ------------------------------------------------------------ preemption

TEST(ContinuousBatching, PreemptionUnderKvPressureIsDeterministic)
{
    // Starve the KV arena so decode growth must preempt: budget of a
    // few hundred tokens against prompts that fit individually (any
    // prompt that could never fit is now shed at arrival instead of
    // entering the preemption machinery — see the admission guard).
    GenTraceConfig tc = smallGenTrace(30, 500.0);
    tc.arrivals.len_min = 64;
    tc.arrivals.len_max = 200;
    EngineConfig ec = smallEngine(2);
    ec.kv.evict_after_prefill = false; // keep full prompts resident
    ec.kv.dynamic_topk = false;
    ec.kv.budget_bytes = 2ull << 20; // 2 MB / 8 KB = 256 tokens
    const ServeReport a = runEngine(ec, tc);
    const ServeReport b = runEngine(ec, tc);
    expectIdentical(a, b);
    // The squeeze must actually bite, and every preempted-then-failed
    // or OOM-failed request still reaches a terminal state.
    EXPECT_GT(a.gen.preemptions + a.gen.kv_ooms, 0u);
    EXPECT_EQ(a.shed_infeasible, 0u); // everything fits individually
    EXPECT_EQ(a.completed + a.shed() + a.failed, a.requests);
    EXPECT_LE(a.gen.kv_peak_bytes, a.gen.kv_budget_bytes);
}

// ----------------------------------------------------- eviction A/B win

TEST(ContinuousBatching, DotaEvictionReducesPeakKvAtEqualOutput)
{
    const GenTraceConfig tc = smallGenTrace(40, 300.0);
    EngineConfig evict = smallEngine(2);
    EngineConfig dense = evict;
    dense.kv.evict_after_prefill = false;
    dense.kv.dynamic_topk = false;

    const ServeReport with = runEngine(evict, tc);
    const ServeReport without = runEngine(dense, tc);

    // Same completions and output tokens on both sides: the comparison
    // is at equal work, not equal luck.
    ASSERT_EQ(with.completed, with.requests);
    ASSERT_EQ(without.completed, without.requests);
    ASSERT_EQ(with.gen.output_tokens, without.gen.output_tokens);

    // The DOTA policy evicts weak prompt entries after prefill, so the
    // paged arena's high-water mark must drop.
    EXPECT_GT(with.gen.evictions, 0u);
    EXPECT_GT(with.gen.evicted_tokens, 0u);
    EXPECT_LT(with.gen.kv_peak_pages, without.gen.kv_peak_pages);
    EXPECT_LT(with.gen.kv_peak_bytes, without.gen.kv_peak_bytes);
    EXPECT_EQ(without.gen.evictions, 0u);
}

// ---------------------------------------------------------- determinism

TEST(ContinuousBatching, ReportBitIdenticalAt1And8Threads)
{
    auto [serial, parallel] = atBothThreadCounts([] {
        GenTraceConfig tc = smallGenTrace(60, 800.0, 17);
        EngineConfig ec = smallEngine(3);
        ec.policy.degrade_depth_1 = 2.0; // exercise the ladder too
        ec.policy.degrade_depth_2 = 4.0;
        return runEngine(ec, tc);
    });
    expectIdentical(serial, parallel);
    EXPECT_TRUE(serial.gen.enabled);
    EXPECT_GT(serial.completed, 0u);
}

TEST(ContinuousBatching, SeedsActuallyMatter)
{
    EngineConfig ec = smallEngine(2);
    const ServeReport a = runEngine(ec, smallGenTrace(40, 300.0, 1));
    const ServeReport b = runEngine(ec, smallGenTrace(40, 300.0, 2));
    EXPECT_NE(a.gen.ttft_p50_ms, b.gen.ttft_p50_ms);
}

// ------------------------------------------------- streaming prefill

/** Long-prompt trace: every prompt exceeds a 256-token step budget. */
GenTraceConfig
longPromptTrace(size_t requests)
{
    GenTraceConfig tc = smallGenTrace(requests, 50.0);
    tc.arrivals.len_min = 1000;
    tc.arrivals.len_max = 1600;
    return tc;
}

EngineConfig
chunkedEngine()
{
    EngineConfig ec = smallEngine(2);
    ec.batch.max_step_tokens = 256;
    ec.batch.streaming_prefill = true;
    ec.kv.budget_bytes = 256ull << 20;
    return ec;
}

TEST(ContinuousBatching, StreamingPrefillAdmitsOverBudgetPrompts)
{
    // Without chunking a prompt longer than the step budget fails
    // deterministically at the FIFO head; streaming prefill admits it
    // and spreads the prefill across steps, conserving every token.
    const GenTraceConfig tc = longPromptTrace(6);
    EngineConfig ec = chunkedEngine();
    ec.batch.streaming_prefill = false;
    const ServeReport plain = runEngine(ec, tc);
    EXPECT_EQ(plain.completed, 0u);
    EXPECT_EQ(plain.failed, plain.requests);

    ec.batch.streaming_prefill = true;
    const ServeReport chunked = runEngine(ec, tc);
    EXPECT_EQ(chunked.completed, chunked.requests);
    EXPECT_EQ(chunked.failed, 0u);

    const GenTrace trace = generateGenTrace(tc);
    size_t prompt_tokens = 0;
    for (const GenRequest &req : trace.requests)
        prompt_tokens += req.prompt_len;
    EXPECT_EQ(chunked.gen.prefill_tokens, prompt_tokens);
    // Each ~1000-token prefill needs >= 4 steps of 256; a one-step-
    // per-prefill engine could never exceed one step per request.
    EXPECT_GT(chunked.gen.prefill_steps, chunked.requests);
    // Completed sequences still emit exactly their output budget.
    for (const RequestOutcome &out : chunked.outcomes)
        EXPECT_EQ(out.generated, trace.requests[out.id].output_len);
}

TEST(ContinuousBatching, StreamingPrefillNoOpForShortPrompts)
{
    // Prompts under the step budget take the exact legacy schedule:
    // the flag must not perturb a single bit of the report.
    const GenTraceConfig tc = smallGenTrace(40, 300.0);
    EngineConfig ec = smallEngine(2);
    const ServeReport plain = runEngine(ec, tc);
    ec.batch.streaming_prefill = true;
    const ServeReport chunked = runEngine(ec, tc);
    expectIdentical(plain, chunked);
    EXPECT_GT(plain.completed, 0u);
}

TEST(ContinuousBatching, ChunkedPrefillBitIdenticalAt1And8Threads)
{
    auto [serial, parallel] = atBothThreadCounts(
        [] { return runEngine(chunkedEngine(), longPromptTrace(10)); });
    expectIdentical(serial, parallel);
    EXPECT_GT(serial.completed, 0u);
}

} // namespace
} // namespace dota
