/**
 * @file
 * Tests for the DOTA detector: estimation, selection, quantization, and
 * the joint-optimization gradients.
 */
#include <gtest/gtest.h>

#include "detect/detector.hpp"
#include "detect/pipeline.hpp"
#include "nn/gradcheck.hpp"
#include "workloads/synthetic_task.hpp"

namespace dota {
namespace {

TransformerConfig
modelCfg()
{
    TransformerConfig cfg;
    cfg.in_dim = 8;
    cfg.dim = 32;
    cfg.heads = 2;
    cfg.layers = 2;
    cfg.ffn_dim = 64;
    cfg.classes = 2;
    cfg.seed = 3;
    return cfg;
}

TEST(Detector, RankFollowsSigma)
{
    DetectorConfig dc;
    dc.sigma = 0.25;
    DotaDetector det(modelCfg(), dc); // head_dim = 16
    EXPECT_EQ(det.rank(), 4u);
    dc.sigma = 0.5;
    DotaDetector det2(modelCfg(), dc);
    EXPECT_EQ(det2.rank(), 8u);
    dc.sigma = 0.001;
    DotaDetector det3(modelCfg(), dc);
    EXPECT_EQ(det3.rank(), 1u); // clamped to at least 1
}

TEST(Detector, KeepCount)
{
    DetectorConfig dc;
    dc.retention = 0.1;
    DotaDetector det(modelCfg(), dc);
    EXPECT_EQ(det.keepCount(100), 10u);
    EXPECT_EQ(det.keepCount(5), 1u); // at least one connection
}

TEST(Detector, MaskIsRowBalancedTopk)
{
    DetectorConfig dc;
    dc.retention = 0.25;
    DotaDetector det(modelCfg(), dc);
    Rng rng(131);
    const Matrix x = Matrix::randomNormal(16, 32, rng);
    det.beginLayer(0, x);
    const Matrix mask = det.selectMask(0, 0, /*causal=*/false);
    ASSERT_EQ(mask.rows(), 16u);
    for (size_t r = 0; r < 16; ++r)
        EXPECT_EQ(maskRowCount(mask, r), 4u);
}

TEST(Detector, CausalMask)
{
    DetectorConfig dc;
    dc.retention = 0.5;
    DotaDetector det(modelCfg(), dc);
    Rng rng(132);
    const Matrix x = Matrix::randomNormal(10, 32, rng);
    det.beginLayer(1, x);
    const Matrix mask = det.selectMask(1, 1, /*causal=*/true);
    for (size_t r = 0; r < 10; ++r)
        for (size_t c = r + 1; c < 10; ++c)
            EXPECT_FLOAT_EQ(mask(r, c), 0.0f);
}

TEST(Detector, ThresholdModeRespectsThreshold)
{
    DetectorConfig dc;
    dc.use_threshold = true;
    dc.threshold = 1e9f; // nothing passes
    DotaDetector det(modelCfg(), dc);
    Rng rng(133);
    const Matrix x = Matrix::randomNormal(8, 32, rng);
    det.beginLayer(0, x);
    const Matrix mask = det.selectMask(0, 0, false);
    EXPECT_DOUBLE_EQ(maskDensity(mask), 0.0);
}

TEST(Detector, WarmupModeReturnsEmptyMask)
{
    DetectorConfig dc;
    dc.apply_mask = false;
    DotaDetector det(modelCfg(), dc);
    Rng rng(134);
    const Matrix x = Matrix::randomNormal(8, 32, rng);
    det.beginLayer(0, x);
    EXPECT_TRUE(det.selectMask(0, 0, false).empty());
    // The estimate is still produced for training.
    EXPECT_FALSE(det.lastEstimate(0, 0).empty());
}

TEST(Detector, EstimateShapes)
{
    DotaDetector det(modelCfg(), DetectorConfig{});
    Rng rng(135);
    const Matrix x = Matrix::randomNormal(12, 32, rng);
    const Matrix est = det.estimateScores(0, 1, x);
    EXPECT_EQ(est.rows(), 12u);
    EXPECT_EQ(est.cols(), 12u);
}

TEST(Detector, QuantizedEstimateTracksFloat)
{
    DetectorConfig fp;
    fp.quantize = false;
    DetectorConfig q8;
    q8.quantize = true;
    q8.bits = 8;
    DotaDetector dfp(modelCfg(), fp), d8(modelCfg(), q8);
    Rng rng(136);
    const Matrix x = Matrix::randomNormal(10, 32, rng);
    const Matrix efp = dfp.estimateScores(0, 0, x);
    const Matrix e8 = d8.estimateScores(0, 0, x);
    // INT8 detection keeps the relative ordering close to float:
    // compare the selected masks rather than raw values.
    const Matrix mfp = topkMask(efp, 3);
    const Matrix m8 = topkMask(e8, 3);
    size_t agree = 0;
    for (size_t i = 0; i < mfp.size(); ++i)
        agree += mfp.data()[i] == m8.data()[i];
    EXPECT_GT(static_cast<double>(agree) / mfp.size(), 0.9);
}

TEST(Detector, MseLossAccumulatesAndResets)
{
    DotaDetector det(modelCfg(), DetectorConfig{});
    Rng rng(137);
    const Matrix x = Matrix::randomNormal(8, 32, rng);
    det.beginLayer(0, x);
    det.selectMask(0, 0, false);
    const Matrix s_true = Matrix::randomNormal(8, 8, rng);
    det.observeScores(0, 0, s_true);
    const double loss = det.consumeMseLoss();
    EXPECT_GT(loss, 0.0);
    EXPECT_DOUBLE_EQ(det.consumeMseLoss(), 0.0); // reset
}

TEST(Detector, ScoreGradientDirection)
{
    // dL/dS = -2 lambda (S~ - S)/N : pushes S toward S~.
    DetectorConfig dc;
    dc.lambda = 2.0;
    dc.quantize = false;
    DotaDetector det(modelCfg(), dc);
    Rng rng(138);
    const Matrix x = Matrix::randomNormal(6, 32, rng);
    det.beginLayer(0, x);
    det.selectMask(0, 0, false);
    const Matrix est = det.lastEstimate(0, 0);
    const Matrix s_true(6, 6, 0.0f);
    det.observeScores(0, 0, s_true);
    const Matrix g = det.scoreGradient(0, 0);
    ASSERT_EQ(g.rows(), 6u);
    const float coef = 2.0f * 2.0f / 36.0f;
    for (size_t i = 0; i < g.size(); ++i)
        EXPECT_NEAR(g.data()[i], -coef * est.data()[i], 1e-5);
}

TEST(Detector, NoGradientWhenTrainingDisabled)
{
    DetectorConfig dc;
    dc.train = false;
    DotaDetector det(modelCfg(), dc);
    Rng rng(139);
    const Matrix x = Matrix::randomNormal(6, 32, rng);
    det.beginLayer(0, x);
    det.selectMask(0, 0, false);
    det.observeScores(0, 0, Matrix(6, 6));
    EXPECT_TRUE(det.scoreGradient(0, 0).empty());
    std::vector<Parameter *> ps;
    det.collectParams(ps);
    for (Parameter *p : ps)
        EXPECT_DOUBLE_EQ(p->grad.frobeniusNorm(), 0.0);
}

TEST(Detector, ParamGradientFiniteDifference)
{
    DetectorConfig dc;
    dc.quantize = false; // smooth path for numeric differentiation
    dc.lambda = 1.0;
    DotaDetector det(modelCfg(), dc);
    Rng rng(140);
    const Matrix x = Matrix::randomNormal(5, 32, rng);
    const Matrix s_true = Matrix::randomNormal(5, 5, rng);

    std::vector<Parameter *> ps;
    det.collectParams(ps);
    Parameter *wq0 = ps[0];
    wq0->zeroGrad();
    det.beginLayer(0, x);
    det.selectMask(0, 0, false);
    det.observeScores(0, 0, s_true);

    auto loss = [&]() {
        const Matrix est = det.estimateScores(0, 0, x);
        return mse(est, s_true); // lambda = 1, mean-squared form
    };
    Rng probe(7);
    const auto res = checkGradient(loss, *wq0, 6, 1e-3, probe);
    EXPECT_LT(res.max_rel_err, 5e-2);
}

TEST(Detector, ParamCount)
{
    DetectorConfig dc;
    dc.sigma = 0.25; // k = 4
    DotaDetector det(modelCfg(), dc);
    std::vector<Parameter *> ps;
    det.collectParams(ps);
    // 2 layers x 2 heads x (W~Q + W~K) of 4x4 each.
    EXPECT_EQ(ps.size(), 8u);
    size_t total = 0;
    for (Parameter *p : ps)
        total += p->value.size();
    EXPECT_EQ(total, 8u * 16u);
}

TEST(DetectorPipeline, WarmupReducesEstimationLoss)
{
    TransformerConfig mc = modelCfg();
    TransformerClassifier model(mc);
    TaskConfig tc;
    tc.seq_len = 24;
    tc.in_dim = mc.in_dim;
    tc.classes = 2;
    SyntheticTask task(tc);

    DetectorConfig dc;
    dc.sigma = 0.5;
    DotaDetector det(mc, dc);

    // Measure initial loss with a single probe forward. Inference-time
    // L_MSE needs the true S, so the probe forces the dense path (the
    // wantsFullScores contract; any other backend skips observeScores).
    det.config().apply_mask = false;
    det.config().train = false;
    model.setHook(&det);
    model.setForceDense(true);
    Rng rng(141);
    det.consumeMseLoss();
    model.forward(task.sample(rng).features);
    const double before = det.consumeMseLoss();
    model.setHook(nullptr);
    model.setForceDense(false);

    warmupDetector(model, task, det, 30, 2, 5e-3);

    det.config().apply_mask = false;
    det.config().train = false;
    model.setHook(&det);
    model.setForceDense(true);
    model.forward(task.sample(rng).features);
    const double after = det.consumeMseLoss();
    model.setHook(nullptr);
    model.setForceDense(false);
    EXPECT_LT(after, 0.8 * before);
}

} // namespace
} // namespace dota
