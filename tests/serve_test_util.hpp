/**
 * @file
 * Shared fixtures of the serving test suite (test_serve*.cpp,
 * test_kv_cache.cpp, test_continuous_batching.cpp,
 * test_generation_golden.cpp): thread-count pinning, bitwise
 * ServeReport comparison, small trace/fleet/engine builders and the
 * seed-derivation idiom — factored here so every suite pins the same
 * determinism contract instead of re-implementing drifting copies.
 */
#pragma once

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "serve/engine.hpp"
#include "serve/simulator.hpp"

namespace dota {
namespace test {

/** Pin the global pool to @p n threads for one scope. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(size_t n)
        : prev_(ThreadPool::globalConcurrency())
    {
        ThreadPool::setGlobalConcurrency(n);
    }
    ~ScopedThreads() { ThreadPool::setGlobalConcurrency(prev_); }

  private:
    size_t prev_;
};

/** Run @p fn at 1 thread and at 8 threads; return both results. */
template <typename Fn>
auto
atBothThreadCounts(Fn fn)
{
    ScopedThreads serial(1);
    auto a = fn();
    ScopedThreads parallel(8);
    auto b = fn();
    return std::make_pair(std::move(a), std::move(b));
}

/**
 * Derive an independent sub-stream seed from @p seed and @p stream —
 * the forking idiom of serve/trace.cpp (xor a stream tag, then advance
 * once through SplitMix64 so related tags land far apart).
 */
inline uint64_t
deriveSeed(uint64_t seed, uint64_t stream)
{
    return Rng(seed ^ stream).next();
}

/** Exact (bitwise, via ==) equality of two full serve reports. */
inline void
expectIdentical(const ServeReport &a, const ServeReport &b)
{
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.shed_queue_full, b.shed_queue_full);
    EXPECT_EQ(a.shed_expired, b.shed_expired);
    EXPECT_EQ(a.shed_starved, b.shed_starved);
    EXPECT_EQ(a.shed_infeasible, b.shed_infeasible);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.transient_errors, b.transient_errors);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.breaker_trips, b.breaker_trips);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    // Floating-point fields compared with ==: bit-identical, not close.
    EXPECT_EQ(a.p50_ms, b.p50_ms);
    EXPECT_EQ(a.p95_ms, b.p95_ms);
    EXPECT_EQ(a.p99_ms, b.p99_ms);
    EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
    EXPECT_EQ(a.max_latency_ms, b.max_latency_ms);
    EXPECT_EQ(a.deadline_miss_rate, b.deadline_miss_rate);
    EXPECT_EQ(a.goodput_seq_s, b.goodput_seq_s);
    EXPECT_EQ(a.horizon_ms, b.horizon_ms);
    EXPECT_EQ(a.total_energy_j, b.total_energy_j);
    EXPECT_EQ(a.mean_retention, b.mean_retention);
    EXPECT_EQ(a.completed_by_level, b.completed_by_level);

    // Generation telemetry (all-zero for whole-request runs).
    EXPECT_EQ(a.gen.enabled, b.gen.enabled);
    EXPECT_EQ(a.gen.steps, b.gen.steps);
    EXPECT_EQ(a.gen.prefill_steps, b.gen.prefill_steps);
    EXPECT_EQ(a.gen.decode_steps, b.gen.decode_steps);
    EXPECT_EQ(a.gen.prefill_tokens, b.gen.prefill_tokens);
    EXPECT_EQ(a.gen.decode_tokens, b.gen.decode_tokens);
    EXPECT_EQ(a.gen.output_tokens, b.gen.output_tokens);
    EXPECT_EQ(a.gen.ttft_p50_ms, b.gen.ttft_p50_ms);
    EXPECT_EQ(a.gen.ttft_p95_ms, b.gen.ttft_p95_ms);
    EXPECT_EQ(a.gen.ttft_p99_ms, b.gen.ttft_p99_ms);
    EXPECT_EQ(a.gen.tpot_p50_ms, b.gen.tpot_p50_ms);
    EXPECT_EQ(a.gen.tpot_p95_ms, b.gen.tpot_p95_ms);
    EXPECT_EQ(a.gen.tpot_p99_ms, b.gen.tpot_p99_ms);
    EXPECT_EQ(a.gen.kv_page_tokens, b.gen.kv_page_tokens);
    EXPECT_EQ(a.gen.kv_pages_total, b.gen.kv_pages_total);
    EXPECT_EQ(a.gen.kv_budget_bytes, b.gen.kv_budget_bytes);
    EXPECT_EQ(a.gen.kv_peak_pages, b.gen.kv_peak_pages);
    EXPECT_EQ(a.gen.kv_peak_bytes, b.gen.kv_peak_bytes);
    EXPECT_EQ(a.gen.kv_peak_occupancy, b.gen.kv_peak_occupancy);
    EXPECT_EQ(a.gen.evictions, b.gen.evictions);
    EXPECT_EQ(a.gen.evicted_tokens, b.gen.evicted_tokens);
    EXPECT_EQ(a.gen.preemptions, b.gen.preemptions);
    EXPECT_EQ(a.gen.kv_ooms, b.gen.kv_ooms);
    EXPECT_EQ(a.gen.max_queue_wait_steps, b.gen.max_queue_wait_steps);

    // Chaos telemetry (all-zero for fault-free runs).
    EXPECT_EQ(a.gen.prefill_failovers, b.gen.prefill_failovers);
    EXPECT_EQ(a.gen.decode_failovers, b.gen.decode_failovers);
    EXPECT_EQ(a.gen.wasted_prefill_tokens, b.gen.wasted_prefill_tokens);
    EXPECT_EQ(a.gen.wasted_decode_tokens, b.gen.wasted_decode_tokens);
    EXPECT_EQ(a.gen.transient_steps, b.gen.transient_steps);
    EXPECT_EQ(a.gen.corrupted_pages_detected,
              b.gen.corrupted_pages_detected);
    EXPECT_EQ(a.gen.corruption_reprefills, b.gen.corruption_reprefills);
    EXPECT_EQ(a.gen.quarantined_pages, b.gen.quarantined_pages);
    EXPECT_EQ(a.gen.watchdog_migrations, b.gen.watchdog_migrations);
    EXPECT_EQ(a.gen.recoveries, b.gen.recoveries);
    EXPECT_EQ(a.gen.recovery_p50_ms, b.gen.recovery_p50_ms);
    EXPECT_EQ(a.gen.recovery_p95_ms, b.gen.recovery_p95_ms);
    EXPECT_EQ(a.gen.recovery_max_ms, b.gen.recovery_max_ms);

    // Migration + probation telemetry (DESIGN.md §15).
    EXPECT_EQ(a.gen.drains, b.gen.drains);
    EXPECT_EQ(a.gen.migrations, b.gen.migrations);
    EXPECT_EQ(a.gen.migrated_pages, b.gen.migrated_pages);
    EXPECT_EQ(a.gen.migrated_bytes, b.gen.migrated_bytes);
    EXPECT_EQ(a.gen.migration_no_target, b.gen.migration_no_target);
    EXPECT_EQ(a.gen.migration_poisoned, b.gen.migration_poisoned);
    EXPECT_EQ(a.gen.saved_prefill_tokens, b.gen.saved_prefill_tokens);
    EXPECT_EQ(a.gen.saved_decode_tokens, b.gen.saved_decode_tokens);
    EXPECT_EQ(a.gen.migration_p50_ms, b.gen.migration_p50_ms);
    EXPECT_EQ(a.gen.migration_p95_ms, b.gen.migration_p95_ms);
    EXPECT_EQ(a.gen.migration_max_ms, b.gen.migration_max_ms);
    EXPECT_EQ(a.gen.probation_promotions, b.gen.probation_promotions);
    EXPECT_EQ(a.gen.probation_demotions, b.gen.probation_demotions);

    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        const RequestOutcome &x = a.outcomes[i];
        const RequestOutcome &y = b.outcomes[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.status, y.status);
        EXPECT_EQ(x.device, y.device);
        EXPECT_EQ(x.dispatch_ms, y.dispatch_ms);
        EXPECT_EQ(x.finish_ms, y.finish_ms);
        EXPECT_EQ(x.attempts, y.attempts);
        EXPECT_EQ(x.level, y.level);
        EXPECT_EQ(x.retention, y.retention);
        EXPECT_EQ(x.deadline_missed, y.deadline_missed);
        EXPECT_EQ(x.generated, y.generated);
        EXPECT_EQ(x.ttft_ms, y.ttft_ms);
        EXPECT_EQ(x.tpot_ms, y.tpot_ms);
    }
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (size_t d = 0; d < a.devices.size(); ++d) {
        EXPECT_EQ(a.devices[d].name, b.devices[d].name);
        EXPECT_EQ(a.devices[d].busy_ms, b.devices[d].busy_ms);
        EXPECT_EQ(a.devices[d].completed, b.devices[d].completed);
        EXPECT_EQ(a.devices[d].failed_attempts,
                  b.devices[d].failed_attempts);
        EXPECT_EQ(a.devices[d].breaker_trips,
                  b.devices[d].breaker_trips);
        EXPECT_EQ(a.devices[d].down_intervals,
                  b.devices[d].down_intervals);
    }
}

/** Small whole-request arrival trace (few distinct lengths: fast warm). */
inline TraceConfig
smallTrace(size_t requests = 60, double rate = 400.0)
{
    TraceConfig tc;
    tc.rate_per_s = rate;
    tc.requests = requests;
    tc.seed = 11;
    tc.len_min = 128;
    tc.len_max = 1024;
    return tc;
}

/** Small homogeneous DOTA fleet. */
inline ServeConfig
smallFleet(size_t accelerators = 4)
{
    ServeConfig sc;
    sc.accelerators = accelerators;
    sc.mode = DotaMode::Full;
    return sc;
}

/** Small generation trace (short prompts and outputs: fast engine runs). */
inline GenTraceConfig
smallGenTrace(size_t requests = 40, double rate = 200.0,
              uint64_t seed = 11)
{
    GenTraceConfig gc;
    gc.arrivals = smallTrace(requests, rate);
    gc.arrivals.seed = seed;
    gc.out_min = 8;
    gc.out_max = 64;
    gc.out_round = 4;
    return gc;
}

/** Small engine config over a homogeneous DOTA fleet. */
inline EngineConfig
smallEngine(size_t accelerators = 2)
{
    EngineConfig ec;
    ec.accelerators = accelerators;
    ec.mode = DotaMode::Full;
    ec.batch.max_batch_seqs = 4;
    ec.batch.max_step_tokens = 4096;
    ec.kv.page_tokens = 16;
    ec.kv.budget_bytes = 32ull << 20;
    return ec;
}

} // namespace test
} // namespace dota
