/**
 * @file
 * Unit tests for the common runtime: formatting, RNG, statistics, tables.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strutil.hpp"
#include "common/table.hpp"

namespace dota {
namespace {

TEST(Format, SubstitutesPlaceholders)
{
    EXPECT_EQ(format("a {} b {}", 1, "x"), "a 1 b x");
    EXPECT_EQ(format("no args"), "no args");
    EXPECT_EQ(format("{} leading", 7), "7 leading");
}

TEST(Format, ExtraPlaceholdersLeftVerbatim)
{
    EXPECT_EQ(format("one {} two {}", 1), "one 1 two {}");
}

TEST(Format, ExtraArgumentsIgnored)
{
    EXPECT_EQ(format("just {}", 1, 2, 3), "just 1");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(13);
    auto picks = rng.sampleWithoutReplacement(50, 20);
    std::set<size_t> s(picks.begin(), picks.end());
    EXPECT_EQ(s.size(), 20u);
    for (size_t v : picks)
        EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementClampsK)
{
    Rng rng(13);
    auto picks = rng.sampleWithoutReplacement(5, 99);
    std::set<size_t> s(picks.begin(), picks.end());
    EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, ForkIndependent)
{
    Rng a(1);
    Rng b = a.fork();
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Stats, CounterAccumulates)
{
    Counter c("hits");
    c += 2.5;
    ++c;
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Stats, DistributionWelford)
{
    Distribution d("lat");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, DistributionEmpty)
{
    Distribution d("x");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h("h", 0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(5.5);
    h.sample(25.0);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[5], 1u);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h("h", 0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 2.0);
}

TEST(Stats, GroupDumpContainsNames)
{
    StatGroup g("lane0");
    Counter c("macs", "MACs retired");
    g.addCounter(&c);
    c += 42;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("lane0.macs"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Table, AlignsAndCounts)
{
    Table t("demo");
    t.header({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("333"), std::string::npos);
}

TEST(Table, Csv)
{
    Table t;
    t.header({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Fmt, Numbers)
{
    EXPECT_EQ(fmtNum(1.5), "1.5");
    EXPECT_EQ(fmtNum(2.0), "2");
    EXPECT_EQ(fmtNum(0.125, 2), "0.12"); // round-half-even
    EXPECT_EQ(fmtNum(0.126, 2), "0.13");
    EXPECT_EQ(fmtSpeedup(152.64), "152.6x");
    EXPECT_EQ(fmtPct(0.914), "91.4%");
}

TEST(Fmt, Bytes)
{
    EXPECT_EQ(fmtBytes(512), "512B");
    EXPECT_EQ(fmtBytes(2048), "2KB");
    EXPECT_EQ(fmtBytes(3.5 * 1024 * 1024), "3.5MB");
}

TEST(Strutil, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
    auto kept = split("a,b,,c", ',', true);
    EXPECT_EQ(kept.size(), 4u);
}

TEST(Strutil, TrimLowerStartsJoin)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(startsWith("detector", "det"));
    EXPECT_FALSE(startsWith("det", "detector"));
    EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
}

} // namespace
} // namespace dota
