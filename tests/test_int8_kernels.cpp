/**
 * @file
 * Unit tests for the u8 x s8 integer GEMM kernel family
 * (tensor/int8_gemm.hpp, tensor/gemm_kernels.hpp) and the ITA-style
 * integer softmax (tensor/int_softmax.hpp). The headline property under
 * test is exactness: every kernel instantiation computes the same s32
 * sums, so portable vs AVX2 vs naive reference agree bit-for-bit — no
 * tolerance, EXPECT_EQ throughout the integer sections.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/gemm_kernels.hpp"
#include "tensor/int8_gemm.hpp"
#include "tensor/int_softmax.hpp"
#include "tensor/ops.hpp"

namespace dota {
namespace {

/** Random quantized operand pair with realistic code distributions. */
struct OperandPair
{
    U8Tensor a;
    Int8Tensor b;
};

OperandPair
randomOperands(size_t m, size_t n, size_t k, uint64_t seed)
{
    Rng rng(seed);
    const Matrix fa = Matrix::randomNormal(m, k, rng);
    const Matrix fb = Matrix::randomNormal(n, k, rng);
    OperandPair p;
    p.a = quantizeU8(fa, 2.5f / kU8ActQmax);
    p.b = quantizeS8(fb, 2.5f / kS8Qmax);
    return p;
}

/** Naive reference of the raw (uncompensated) integer GEMM. */
std::vector<int32_t>
naiveRawGemm(const U8Tensor &a, const Int8Tensor &b)
{
    std::vector<int32_t> c(a.rows * b.rows, 0);
    for (size_t i = 0; i < a.rows; ++i)
        for (size_t j = 0; j < b.rows; ++j) {
            int32_t acc = 0;
            for (size_t p = 0; p < a.k; ++p)
                acc += static_cast<int32_t>(a.row(i)[p]) *
                       static_cast<int32_t>(b.row(j)[p]);
            c[i * b.rows + j] = acc;
        }
    return c;
}

TEST(Int8Kernels, ActiveMatchesPortableExactly)
{
    // Odd k exercises the AVX2 remainder loop; the saturation-free
    // operand ranges make the two instantiations identical by
    // arithmetic, so this is EXPECT_EQ, not EXPECT_NEAR.
    for (size_t k : {1u, 31u, 32u, 37u, 128u, 200u}) {
        const OperandPair p = randomOperands(5, 7, k, 100 + k);
        std::vector<int32_t> active(5 * 7), portable(5 * 7);
        activeGemmKernels().int8GemmBTRows(p.a.codes.data(),
                                           p.b.codes.data(), active.data(),
                                           k, 7, 0, 5);
        detail::portableGemmKernels().int8GemmBTRows(
            p.a.codes.data(), p.b.codes.data(), portable.data(), k, 7, 0, 5);
        EXPECT_EQ(active, portable) << "k=" << k;
        EXPECT_EQ(activeGemmKernels().int8Dot(p.a.row(2), p.b.row(3), k),
                  detail::portableGemmKernels().int8Dot(p.a.row(2),
                                                        p.b.row(3), k))
            << "k=" << k;
    }
}

TEST(Int8Kernels, MatchesNaiveReference)
{
    const OperandPair p = randomOperands(6, 9, 53, 41);
    const std::vector<int32_t> ref = naiveRawGemm(p.a, p.b);
    std::vector<int32_t> got(6 * 9);
    activeGemmKernels().int8GemmBTRows(p.a.codes.data(), p.b.codes.data(),
                                       got.data(), 53, 9, 0, 6);
    EXPECT_EQ(got, ref);
    // Row-range dispatch covers partial strips too.
    std::vector<int32_t> strip(6 * 9, -1);
    activeGemmKernels().int8GemmBTRows(p.a.codes.data(), p.b.codes.data(),
                                       strip.data(), 53, 9, 2, 4);
    for (size_t j = 0; j < 9; ++j)
        EXPECT_EQ(strip[2 * 9 + j], ref[2 * 9 + j]);
    EXPECT_EQ(strip[0], -1); // rows outside [i0, i1) untouched
}

TEST(Int8Kernels, ZeroPointCompensationIsExact)
{
    // int8GemmBT must equal the naive sum over *recentred* codes
    // (a_code - 64) * b_code — i.e. the raw GEMM minus zp * row_sums.
    const OperandPair p = randomOperands(4, 6, 24, 7);
    std::vector<int32_t> got(4 * 6);
    int8GemmBT(p.a, p.b, got.data());
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 6; ++j) {
            int32_t ref = 0;
            for (size_t q = 0; q < 24; ++q)
                ref += (static_cast<int32_t>(p.a.row(i)[q]) - kU8ZeroPoint) *
                       static_cast<int32_t>(p.b.row(j)[q]);
            EXPECT_EQ(got[i * 6 + j], ref) << i << "," << j;
        }
}

TEST(Int8Kernels, DotCompensatedMatchesGemmRow)
{
    const OperandPair p = randomOperands(3, 5, 40, 8);
    std::vector<int32_t> c(3 * 5);
    int8GemmBT(p.a, p.b, c.data());
    for (size_t j = 0; j < 5; ++j)
        EXPECT_EQ(int8DotCompensated(p.a.row(1), p.a.zero_point, p.b, j, 40),
                  c[1 * 5 + j]);
}

TEST(Int8Kernels, MatmulBTMatchesDequantizedFloatProduct)
{
    // The dequantized GEMM is scale_a * scale_b * exact-integer-sums, so
    // it matches the float product of the dequantized operands up to
    // fp32 rounding of the final multiply.
    const OperandPair p = randomOperands(5, 4, 32, 9);
    const Matrix ref = matmulBT(dequantize(p.a), dequantize(p.b));
    const Matrix got = int8MatmulBT(p.a, p.b);
    EXPECT_LE(Matrix::maxAbsDiff(ref, got), 1e-4);

    Rng rng(10);
    const Matrix bias = Matrix::randomNormal(1, 4, rng);
    const Matrix with_bias = int8MatmulBT(p.a, p.b, &bias);
    for (size_t i = 0; i < 5; ++i)
        for (size_t j = 0; j < 4; ++j)
            EXPECT_NEAR(with_bias(i, j), got(i, j) + bias(0, j),
                        1e-5);
}

TEST(Int8Kernels, AppendRowMatchesBatchQuantization)
{
    // Decode-time KV growth appends rows one at a time; the result must
    // be code-for-code identical to batch quantizeS8 of the full matrix
    // (that is what makes decode == full-sequence forward).
    Rng rng(11);
    const Matrix m = Matrix::randomNormal(6, 16, rng);
    const float scale = 2.5f / kS8Qmax;
    const Int8Tensor batch = quantizeS8(m, scale);
    Int8Tensor inc;
    inc.scale = scale;
    for (size_t r = 0; r < m.rows(); ++r)
        inc.appendRow(m.row(r), m.cols());
    EXPECT_EQ(inc.codes, batch.codes);
    EXPECT_EQ(inc.row_sums, batch.row_sums);
}

TEST(Int8Kernels, TransposedQuantizationEncodesColumns)
{
    Rng rng(12);
    const Matrix m = Matrix::randomNormal(5, 3, rng);
    const float scale = 2.5f / kS8Qmax;
    const Int8Tensor t = quantizeS8Transposed(m, scale);
    const Int8Tensor direct = quantizeS8(m, scale);
    ASSERT_EQ(t.rows, 3u);
    ASSERT_EQ(t.k, 5u);
    for (size_t c = 0; c < 3; ++c)
        for (size_t r = 0; r < 5; ++r)
            EXPECT_EQ(t.row(c)[r], direct.row(r)[c]);
}

// ---------------------------------------------------------------------
// Integer softmax
// ---------------------------------------------------------------------

TEST(IntSoftmax, ApproximatesFloatSoftmax)
{
    const float score_scale = 0.05f;
    IntSoftmaxLut lut(score_scale);
    Rng rng(20);
    std::vector<int32_t> scores(16);
    for (auto &s : scores)
        s = static_cast<int32_t>(rng.uniform(-400.0, 400.0));

    std::vector<uint8_t> probs(scores.size());
    lut.softmaxRow(scores.data(), scores.size(), nullptr, probs.data());

    // Float reference.
    double mx = -1e30;
    for (int32_t s : scores)
        mx = std::max(mx, double(s) * score_scale);
    double denom = 0.0;
    std::vector<double> ref(scores.size());
    for (size_t j = 0; j < scores.size(); ++j) {
        ref[j] = std::exp(double(scores[j]) * score_scale - mx);
        denom += ref[j];
    }
    for (size_t j = 0; j < scores.size(); ++j)
        EXPECT_NEAR(probs[j] * lut.probScale(), ref[j] / denom, 2.0 / 127.0)
            << "j=" << j;
}

TEST(IntSoftmax, ArgmaxPreservedAndRowSumNormalized)
{
    IntSoftmaxLut lut(0.1f);
    const std::vector<int32_t> scores{-50, 120, 30, 119, -200};
    std::vector<uint8_t> probs(scores.size());
    lut.softmaxRow(scores.data(), scores.size(), nullptr, probs.data());
    size_t arg = 0;
    int sum = 0;
    for (size_t j = 0; j < probs.size(); ++j) {
        if (probs[j] > probs[arg])
            arg = j;
        sum += probs[j];
    }
    EXPECT_EQ(arg, 1u);
    // Renormalization targets sum(probs) ~= 127 (probability mass 1);
    // per-element rounding can drift it by at most n/2 codes.
    EXPECT_NEAR(sum, 127, static_cast<int>(probs.size() + 1) / 2);
}

TEST(IntSoftmax, MaskRemovesEntriesFromNormalizer)
{
    IntSoftmaxLut lut(0.1f);
    const std::vector<int32_t> scores{100, 500, 100, 100};
    const std::vector<float> mask{1.0f, 0.0f, 1.0f, 1.0f};
    std::vector<uint8_t> probs(4);
    lut.softmaxRow(scores.data(), 4, mask.data(), probs.data());
    // The masked max (500) contributes nothing; the three kept equal
    // scores split the mass evenly.
    EXPECT_EQ(probs[1], 0);
    EXPECT_EQ(probs[0], probs[2]);
    EXPECT_EQ(probs[0], probs[3]);
    EXPECT_NEAR(probs[0] * lut.probScale(), 1.0 / 3.0, 2.0 / 127.0);
}

TEST(IntSoftmax, AllMaskedAndEmptyRowsAreZero)
{
    IntSoftmaxLut lut(0.1f);
    const std::vector<int32_t> scores{10, 20, 30};
    const std::vector<float> mask{0.0f, 0.0f, 0.0f};
    std::vector<uint8_t> probs{1, 2, 3};
    lut.softmaxRow(scores.data(), 3, mask.data(), probs.data());
    EXPECT_EQ(probs, (std::vector<uint8_t>{0, 0, 0}));
    lut.softmaxRow(scores.data(), 0, nullptr, probs.data()); // no crash
}

TEST(IntSoftmax, UniformScoresGiveUniformProbs)
{
    IntSoftmaxLut lut(0.02f);
    const std::vector<int32_t> scores(8, 42);
    std::vector<uint8_t> probs(8);
    lut.softmaxRow(scores.data(), 8, nullptr, probs.data());
    for (uint8_t p : probs)
        EXPECT_EQ(p, probs[0]);
    EXPECT_NEAR(probs[0] * lut.probScale(), 1.0 / 8.0, 1.5 / 127.0);
}

} // namespace
} // namespace dota
