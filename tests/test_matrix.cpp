/**
 * @file
 * Unit tests for the Matrix type.
 */
#include <gtest/gtest.h>

#include "tensor/matrix.hpp"

namespace dota {
namespace {

TEST(Matrix, ConstructAndFill)
{
    Matrix m(3, 4, 2.0f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_FLOAT_EQ(m(2, 3), 2.0f);
    m.zero();
    EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(Matrix, FromData)
{
    Matrix m(2, 2, std::vector<float>{1, 2, 3, 4});
    EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

TEST(Matrix, RowAccess)
{
    Matrix m(2, 3);
    m(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
    Matrix r = m.rowCopy(1);
    EXPECT_EQ(r.rows(), 1u);
    EXPECT_FLOAT_EQ(r(0, 2), 5.0f);
}

TEST(Matrix, Reshape)
{
    Matrix m(2, 6, 1.0f);
    m.reshape(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, Identity)
{
    Matrix id = Matrix::identity(3);
    EXPECT_FLOAT_EQ(id(1, 1), 1.0f);
    EXPECT_FLOAT_EQ(id(0, 1), 0.0f);
    EXPECT_DOUBLE_EQ(id.sum(), 3.0);
}

TEST(Matrix, RandomNormalMoments)
{
    Rng rng(5);
    Matrix m = Matrix::randomNormal(100, 100, rng, 1.0f, 2.0f);
    double mean = m.sum() / m.size();
    EXPECT_NEAR(mean, 1.0, 0.1);
}

TEST(Matrix, RandomUniformRange)
{
    Rng rng(5);
    Matrix m = Matrix::randomUniform(50, 50, rng, -2.0f, 3.0f);
    for (size_t i = 0; i < m.size(); ++i) {
        EXPECT_GE(m.data()[i], -2.0f);
        EXPECT_LT(m.data()[i], 3.0f);
    }
}

TEST(Matrix, XavierBounds)
{
    Rng rng(5);
    Matrix m = Matrix::xavier(64, 64, rng);
    const float limit = std::sqrt(6.0f / 128.0f);
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_LE(std::abs(m.data()[i]), limit);
}

TEST(Matrix, FrobeniusNorm)
{
    Matrix m(1, 2, std::vector<float>{3, 4});
    EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
}

TEST(Matrix, AllCloseAndMaxDiff)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
    EXPECT_TRUE(Matrix::allClose(a, b));
    b(1, 1) = 1.01f;
    EXPECT_NEAR(Matrix::maxAbsDiff(a, b), 0.01, 1e-6);
    EXPECT_FALSE(Matrix::allClose(a, b, 1e-5));
    EXPECT_FALSE(Matrix::allClose(a, Matrix(2, 3)));
}

TEST(Matrix, ShapeStr)
{
    EXPECT_EQ(Matrix(3, 7).shapeStr(), "Matrix(3x7)");
}

} // namespace
} // namespace dota
