/**
 * @file
 * Tests for benchmark definitions and the synthetic tasks.
 */
#include <gtest/gtest.h>

#include <set>

#include "workloads/benchmark.hpp"
#include "workloads/synthetic_task.hpp"

namespace dota {
namespace {

TEST(Benchmarks, FivePaperBenchmarks)
{
    const auto &all = allBenchmarks();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "QA");
    EXPECT_EQ(all[4].name, "LM");
    EXPECT_EQ(benchmarkByName("Retrieval").paper_shape.seq_len, 4096u);
}

TEST(Benchmarks, PaperShapes)
{
    const Benchmark &qa = benchmark(BenchmarkId::QA);
    EXPECT_EQ(qa.paper_shape.layers, 24u); // BERT-large
    EXPECT_EQ(qa.paper_shape.dim, 1024u);
    EXPECT_EQ(qa.paper_shape.heads, 16u);
    EXPECT_EQ(qa.paper_shape.seq_len, 384u);
    EXPECT_FALSE(qa.paper_shape.decoder);

    const Benchmark &lm = benchmark(BenchmarkId::LM);
    EXPECT_TRUE(lm.paper_shape.decoder);
    EXPECT_TRUE(lm.perplexity);
    EXPECT_EQ(lm.paper_shape.dim, 768u); // GPT-2
}

TEST(Benchmarks, RetentionOrdering)
{
    for (const Benchmark &b : allBenchmarks()) {
        EXPECT_GT(b.retention_conservative, 0.0);
        EXPECT_LE(b.retention_conservative, 0.25);
        EXPECT_LE(b.retention_aggressive, b.retention_conservative);
    }
}

TEST(Benchmarks, HeadsDivisibleByFourLanes)
{
    // Section 4.1: 4 is the least common multiple of head counts.
    for (const Benchmark &b : allBenchmarks())
        EXPECT_EQ(b.paper_shape.heads % 4, 0u) << b.name;
}

TEST(Benchmarks, MacCountsMatchFormulas)
{
    ModelShape s{2, 64, 4, 128, 32, false};
    EXPECT_EQ(s.linearMacs(), 4ull * 32 * 64 * 64);
    EXPECT_EQ(s.attentionMacs(), 2ull * 32 * 32 * 64);
    EXPECT_EQ(s.ffnMacs(), 2ull * 32 * 64 * 128);
    EXPECT_EQ(s.totalMacs(),
              2 * (s.linearMacs() + s.attentionMacs() + s.ffnMacs()));
}

TEST(Benchmarks, AttentionFractionGrowsWithSequence)
{
    // The Figure 3 trend: attention dominates FLOPs as n grows.
    double prev = 0.0;
    for (size_t n : {384u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
        ModelShape s{24, 1024, 16, 4096, n, false};
        const double frac =
            static_cast<double>(s.attentionMacs()) /
            static_cast<double>(s.linearMacs() + s.attentionMacs() +
                                s.ffnMacs());
        EXPECT_GT(frac, prev);
        prev = frac;
    }
    EXPECT_GT(prev, 0.5); // attention dominates at 16K
}

TEST(Benchmarks, UnknownNameFatal)
{
    EXPECT_DEATH(benchmarkByName("Nope"), "unknown benchmark");
}

TEST(SyntheticTask, ShapesAndLabels)
{
    TaskConfig cfg;
    cfg.seq_len = 64;
    cfg.in_dim = 12;
    cfg.classes = 4;
    SyntheticTask task(cfg);
    Rng rng(111);
    for (int i = 0; i < 20; ++i) {
        const Sample s = task.sample(rng);
        EXPECT_EQ(s.features.rows(), 64u);
        EXPECT_EQ(s.features.cols(), 12u);
        EXPECT_GE(s.label, 0);
        EXPECT_LT(s.label, 4);
    }
}

TEST(SyntheticTask, SignalTokensMarked)
{
    TaskConfig cfg;
    cfg.seq_len = 64;
    cfg.in_dim = 12;
    cfg.signal_count = 5;
    SyntheticTask task(cfg);
    Rng rng(112);
    const Sample s = task.sample(rng);
    const auto &sig = task.lastSignalPositions();
    ASSERT_EQ(sig.size(), 5u);
    for (size_t p : sig)
        EXPECT_GT(s.features(p, 0), 1.0f); // marker dimension set
    // Non-signal tokens have no marker.
    std::set<size_t> sigset(sig.begin(), sig.end());
    for (size_t i = 0; i < 64; ++i) {
        if (!sigset.count(i)) {
            EXPECT_FLOAT_EQ(s.features(i, 0), 0.0f);
        }
    }
}

TEST(SyntheticTask, LabelsBalanced)
{
    TaskConfig cfg;
    cfg.classes = 4;
    SyntheticTask task(cfg);
    Rng rng(113);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 400; ++i)
        counts[task.sample(rng).label]++;
    for (int c : counts)
        EXPECT_NEAR(c, 100, 40);
}

TEST(SyntheticTask, LocalityClustersSignals)
{
    TaskConfig spread;
    spread.seq_len = 256;
    spread.signal_count = 8;
    spread.locality = 0.0;
    TaskConfig local = spread;
    local.locality = 1.0;

    auto meanSpan = [](const TaskConfig &cfg, uint64_t seed) {
        SyntheticTask task(cfg);
        Rng rng(seed);
        double acc = 0.0;
        for (int i = 0; i < 50; ++i) {
            task.sample(rng);
            const auto &sig = task.lastSignalPositions();
            acc += static_cast<double>(sig.back() - sig.front());
        }
        return acc / 50.0;
    };
    EXPECT_LT(meanSpan(local, 114), 0.5 * meanSpan(spread, 114));
}

TEST(SyntheticTask, MatchKindTwoClasses)
{
    TaskConfig cfg;
    cfg.kind = TaskKind::Match;
    cfg.classes = 7; // forced to 2
    SyntheticTask task(cfg);
    EXPECT_EQ(task.numClasses(), 2u);
    Rng rng(115);
    std::set<int> labels;
    for (int i = 0; i < 50; ++i)
        labels.insert(task.sample(rng).label);
    EXPECT_EQ(labels.size(), 2u);
}

TEST(SyntheticTask, MatchSignalsInBothHalves)
{
    TaskConfig cfg;
    cfg.kind = TaskKind::Match;
    cfg.seq_len = 128;
    cfg.signal_count = 4;
    SyntheticTask task(cfg);
    Rng rng(116);
    task.sample(rng);
    const auto &sig = task.lastSignalPositions();
    ASSERT_EQ(sig.size(), 8u);
    size_t first_half = 0;
    for (size_t p : sig)
        first_half += p < 64;
    EXPECT_EQ(first_half, 4u);
}

TEST(Grammar, SequenceProperties)
{
    GrammarConfig cfg;
    cfg.seq_len = 200;
    SyntheticGrammar g(cfg);
    Rng rng(117);
    const auto seq = g.sample(rng);
    EXPECT_EQ(seq.size(), 200u);
    for (int t : seq) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, static_cast<int>(cfg.vocab));
    }
}

TEST(Grammar, CopyDependencyHolds)
{
    GrammarConfig cfg;
    cfg.seq_len = 400;
    cfg.period = 12;
    SyntheticGrammar g(cfg);
    Rng rng(118);
    const auto seq = g.sample(rng);
    // Every trigger is followed by the same payload as the previous one.
    int prev_payload = -1;
    int triggers = 0;
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
        if (seq[i] == g.triggerToken()) {
            ++triggers;
            if (prev_payload >= 0) {
                EXPECT_EQ(seq[i + 1], prev_payload) << "at " << i;
            }
            prev_payload = seq[i + 1];
        }
    }
    EXPECT_GT(triggers, 5); // the pattern actually occurs
}

TEST(Grammar, DeterministicGivenSeeds)
{
    GrammarConfig cfg;
    SyntheticGrammar a(cfg), b(cfg);
    Rng r1(9), r2(9);
    EXPECT_EQ(a.sample(r1), b.sample(r2));
}

} // namespace
} // namespace dota
