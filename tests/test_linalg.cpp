/**
 * @file
 * Tests for the spectral helpers (used by the Section 3.3 analysis).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/linalg.hpp"
#include "tensor/ops.hpp"

namespace dota {
namespace {

/** Build a matrix with a prescribed singular spectrum. */
Matrix
withSpectrum(const std::vector<double> &sv, size_t n, Rng &rng)
{
    // A = U diag(sv) V^T with random orthogonal-ish U, V from QR-free
    // Gram-Schmidt of Gaussian matrices.
    Matrix u = Matrix::randomNormal(n, sv.size(), rng);
    Matrix v = Matrix::randomNormal(n, sv.size(), rng);
    // Orthonormalize columns (Gram-Schmidt).
    auto orth = [](Matrix &m) {
        for (size_t j = 0; j < m.cols(); ++j) {
            for (size_t p = 0; p < j; ++p) {
                double dot = 0.0;
                for (size_t i = 0; i < m.rows(); ++i)
                    dot += double(m(i, p)) * m(i, j);
                for (size_t i = 0; i < m.rows(); ++i)
                    m(i, j) -= float(dot) * m(i, p);
            }
            double norm = 0.0;
            for (size_t i = 0; i < m.rows(); ++i)
                norm += double(m(i, j)) * m(i, j);
            norm = std::sqrt(norm);
            for (size_t i = 0; i < m.rows(); ++i)
                m(i, j) = float(m(i, j) / norm);
        }
    };
    orth(u);
    orth(v);
    Matrix a(n, n);
    for (size_t r = 0; r < sv.size(); ++r)
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j)
                a(i, j) += static_cast<float>(sv[r] * u(i, r) * v(j, r));
    return a;
}

TEST(Linalg, RecoversKnownSpectrum)
{
    Rng rng(61);
    const std::vector<double> sv{10.0, 5.0, 2.0};
    const Matrix a = withSpectrum(sv, 24, rng);
    const auto est = topSingularValues(a, 3, 50);
    ASSERT_EQ(est.size(), 3u);
    EXPECT_NEAR(est[0], 10.0, 0.2);
    EXPECT_NEAR(est[1], 5.0, 0.2);
    EXPECT_NEAR(est[2], 2.0, 0.2);
}

TEST(Linalg, IdentitySpectrum)
{
    const Matrix id = Matrix::identity(12);
    const auto sv = topSingularValues(id, 4, 40);
    for (double s : sv)
        EXPECT_NEAR(s, 1.0, 1e-3);
}

TEST(Linalg, RectangularMatrix)
{
    Rng rng(62);
    const Matrix a = Matrix::randomNormal(30, 8, rng);
    const auto sv = topSingularValues(a, 3, 40);
    EXPECT_GT(sv[0], sv[1]);
    EXPECT_GT(sv[1], sv[2]);
    EXPECT_GT(sv[2], 0.0);
}

TEST(Linalg, EffectiveRankOfEqualSpectrum)
{
    Rng rng(63);
    // r equal singular values -> effective rank r.
    const Matrix a = withSpectrum({3.0, 3.0, 3.0, 3.0}, 20, rng);
    EXPECT_NEAR(effectiveRank(a, 8, 50), 4.0, 0.2);
}

TEST(Linalg, EffectiveRankDominatedSpectrum)
{
    Rng rng(64);
    const Matrix a = withSpectrum({10.0, 0.1, 0.1}, 20, rng);
    EXPECT_LT(effectiveRank(a, 6, 50), 1.2);
}

TEST(Linalg, SpectralEnergyCaptureExactRank)
{
    Rng rng(65);
    const Matrix a = withSpectrum({4.0, 2.0}, 16, rng);
    EXPECT_NEAR(spectralEnergyTopK(a, 2, 50), 1.0, 1e-3);
    const double top1 = spectralEnergyTopK(a, 1, 50);
    EXPECT_NEAR(top1, 16.0 / 20.0, 0.02); // 4^2 / (4^2 + 2^2)
}

TEST(Linalg, EnergyMonotoneInK)
{
    Rng rng(66);
    const Matrix a = Matrix::randomNormal(20, 20, rng);
    double prev = 0.0;
    for (size_t k : {1u, 2u, 4u, 8u}) {
        const double e = spectralEnergyTopK(a, k, 40);
        EXPECT_GE(e, prev - 1e-6);
        prev = e;
    }
}

} // namespace
} // namespace dota
