/**
 * @file
 * Integration tests: the full algorithm-to-architecture chain — train a
 * tiny model with the detector, harvest its masks, schedule them, and
 * feed the dataflow statistics into the accelerator simulator.
 */
#include <gtest/gtest.h>

#include "core/dota.hpp"

namespace dota {
namespace {

TEST(Integration, TrainDetectScheduleSimulate)
{
    // 1. Train a tiny classifier on a synthetic task (short budget).
    TransformerConfig mc;
    mc.in_dim = 12;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 64;
    mc.classes = 2;
    mc.seed = 17;
    TransformerClassifier model(mc);

    TaskConfig tc;
    tc.seq_len = 32;
    tc.in_dim = 12;
    tc.classes = 2;
    tc.signal_count = 4;
    SyntheticTask task(tc);

    TrainConfig trc;
    trc.steps = 40;
    trc.batch = 4;
    ClassifierTrainer trainer(model, task, trc);
    trainer.train();

    // 2. Install a detector and select masks at 25% retention.
    DetectorConfig dc;
    dc.retention = 0.25;
    dc.sigma = 0.5;
    dc.train = false;
    DotaDetector det(mc, dc);
    model.setHook(&det);
    Rng rng(201);
    model.forward(task.sample(rng).features);
    const auto masks = harvestMasks(model);
    model.setHook(nullptr);
    ASSERT_EQ(masks.size(), 4u);
    for (const auto &m : masks) {
        EXPECT_TRUE(m.rowBalanced());
        EXPECT_NEAR(m.density(), 0.25, 0.01);
    }

    // 3. Schedule a harvested mask and check the dataflow ordering.
    const auto ooo =
        analyzeDataflow(masks[0], Dataflow::TokenParallelOoO, 4);
    const auto rbr = analyzeDataflow(masks[0], Dataflow::RowByRow);
    EXPECT_LT(ooo.key_loads, rbr.key_loads); // reuse on a real mask
    EXPECT_EQ(ooo.connections, masks[0].nnz());

    // 4. Feed the real mask into the accelerator simulator via a
    //    matching benchmark shape.
    Benchmark tiny = benchmark(BenchmarkId::Text);
    tiny.paper_shape = ModelShape{2, 32, 2, 64, 32, false};
    tiny.retention_conservative = 0.25;
    DotaAccelerator acc;
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    const RunReport sparse = acc.simulateWithMask(tiny, opt, masks[0]);
    opt.mode = DotaMode::Full;
    const RunReport full = acc.simulateWithMask(tiny, opt, SparseMask());
    EXPECT_LT(sparse.per_layer.attention.macs,
              full.per_layer.attention.macs);
    EXPECT_GT(sparse.totalCycles(), 0u);
}

TEST(Integration, JointTrainingKeepsAccuracyAtLowRetention)
{
    // A compressed version of the paper's core claim (Table 1 /
    // Figure 11): with detection + adaptation, 25% retention stays close
    // to the dense baseline on an easy task.
    TransformerConfig mc;
    mc.in_dim = 12;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 2;
    mc.ffn_dim = 64;
    mc.classes = 2;
    mc.seed = 23;
    TransformerClassifier model(mc);

    TaskConfig tc;
    tc.seq_len = 48;
    tc.in_dim = 12;
    tc.classes = 2;
    tc.signal_count = 5;
    tc.seed = 29;
    SyntheticTask task(tc);

    DetectorConfig dc;
    dc.retention = 0.25;
    dc.sigma = 0.5;
    dc.lambda = 1e-3;
    DotaDetector det(mc, dc);

    PipelineConfig pc;
    pc.pretrain.steps = 80;
    pc.warmup_steps = 30;
    pc.adapt.steps = 60;
    const PipelineResult res = runPipeline(model, task, det, pc);
    EXPECT_GT(res.dense.metric, 0.9);
    EXPECT_GT(res.sparse.metric, res.dense.metric - 0.15);
    model.setHook(nullptr);
}

TEST(Integration, OracleBeatsElsaBeatsRandomOnTrainedModel)
{
    TransformerConfig mc;
    mc.in_dim = 12;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 1;
    mc.ffn_dim = 64;
    mc.classes = 2;
    mc.seed = 31;
    TransformerClassifier model(mc);
    TaskConfig tc;
    tc.seq_len = 40;
    tc.in_dim = 12;
    tc.classes = 2;
    SyntheticTask task(tc);
    TrainConfig trc;
    trc.steps = 30;
    trc.batch = 4;
    ClassifierTrainer trainer(model, task, trc);
    trainer.train();

    OracleDetector oracle(0.2);
    const auto q_oracle = evaluateDetection(model, task, oracle, 3, 0.2);
    ElsaDetectorConfig ec;
    ec.retention = 0.2;
    ec.hash_bits = 64;
    ElsaDetector elsa(ec);
    const auto q_elsa = evaluateDetection(model, task, elsa, 3, 0.2);
    EXPECT_GT(q_oracle.recall, q_elsa.recall);
    EXPECT_GT(q_oracle.mass_recall, q_elsa.mass_recall);
    EXPECT_GT(q_elsa.mass_recall, 0.2); // better than uniform share
}

} // namespace
} // namespace dota
