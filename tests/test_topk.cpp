/**
 * @file
 * Unit and property tests for row-wise selection (the Detector's
 * selection step and the row-balance constraint).
 */
#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/topk.hpp"

namespace dota {
namespace {

TEST(TopK, RowTopKPicksLargest)
{
    Matrix s(1, 5, std::vector<float>{0.1f, 0.9f, 0.5f, 0.7f, 0.2f});
    auto ids = rowTopK(s, 0, 2);
    std::sort(ids.begin(), ids.end());
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 1u);
    EXPECT_EQ(ids[1], 3u);
}

TEST(TopK, DeterministicTieBreak)
{
    Matrix s(1, 4, 1.0f);
    auto a = rowTopK(s, 0, 2);
    auto b = rowTopK(s, 0, 2);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a[0], 0u); // lowest indices win ties
    EXPECT_EQ(a[1], 1u);
}

TEST(TopK, KLargerThanColsClamps)
{
    Matrix s(1, 3, 1.0f);
    EXPECT_EQ(rowTopK(s, 0, 10).size(), 3u);
}

class TopkMaskProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{};

TEST_P(TopkMaskProperty, ExactlyKPerRow)
{
    const auto [n, k] = GetParam();
    Rng rng(41);
    const Matrix s = Matrix::randomNormal(n, n, rng);
    const Matrix mask = topkMask(s, k);
    for (size_t r = 0; r < n; ++r)
        EXPECT_EQ(maskRowCount(mask, r), std::min(k, n))
            << "row " << r;
}

TEST_P(TopkMaskProperty, SelectedDominateOmitted)
{
    const auto [n, k] = GetParam();
    Rng rng(42);
    const Matrix s = Matrix::randomNormal(n, n, rng);
    const Matrix mask = topkMask(s, k);
    for (size_t r = 0; r < n; ++r) {
        float min_kept = 1e30f, max_omitted = -1e30f;
        for (size_t c = 0; c < n; ++c) {
            if (mask(r, c) != 0.0f)
                min_kept = std::min(min_kept, s(r, c));
            else
                max_omitted = std::max(max_omitted, s(r, c));
        }
        if (k < n) {
            EXPECT_GE(min_kept, max_omitted) << "row " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopkMaskProperty,
    ::testing::Values(std::make_tuple(8, 1), std::make_tuple(16, 3),
                      std::make_tuple(32, 8), std::make_tuple(17, 5),
                      std::make_tuple(10, 10)));

TEST(TopK, CausalMaskLowerTriangular)
{
    Rng rng(43);
    const Matrix s = Matrix::randomNormal(12, 12, rng);
    const Matrix mask = topkMaskCausal(s, 4);
    for (size_t r = 0; r < 12; ++r) {
        for (size_t c = r + 1; c < 12; ++c)
            EXPECT_FLOAT_EQ(mask(r, c), 0.0f);
        EXPECT_EQ(maskRowCount(mask, r), std::min<size_t>(4, r + 1));
    }
}

TEST(TopK, ThresholdMask)
{
    Matrix s(1, 4, std::vector<float>{-1, 0, 1, 2});
    const Matrix mask = thresholdMask(s, 0.5f);
    EXPECT_FLOAT_EQ(mask(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(mask(0, 2), 1.0f);
    EXPECT_FLOAT_EQ(mask(0, 3), 1.0f);
}

TEST(TopK, ThresholdForRetentionHitsTarget)
{
    Rng rng(44);
    const Matrix s = Matrix::randomNormal(64, 64, rng);
    for (double retention : {0.05, 0.1, 0.25, 0.5}) {
        const float thr = thresholdForRetention(s, retention);
        const Matrix mask = thresholdMask(s, thr);
        EXPECT_NEAR(maskDensity(mask), retention, 0.01);
    }
}

TEST(TopK, MaskDensity)
{
    Matrix mask(2, 4);
    mask(0, 0) = 1.0f;
    mask(1, 3) = 1.0f;
    EXPECT_DOUBLE_EQ(maskDensity(mask), 0.25);
    EXPECT_DOUBLE_EQ(maskDensity(Matrix()), 0.0);
}

TEST(TopK, RecallPerfectWhenMaskIsTopk)
{
    Rng rng(45);
    const Matrix s = Matrix::randomNormal(10, 10, rng);
    const Matrix mask = topkMask(s, 3);
    EXPECT_DOUBLE_EQ(topkRecall(s, mask, 3), 1.0);
}

TEST(TopK, RecallZeroWhenMaskIsBottomk)
{
    Rng rng(46);
    const Matrix s = Matrix::randomNormal(10, 10, rng);
    const Matrix inverted = scale(s, -1.0f);
    const Matrix mask = topkMask(inverted, 3);
    EXPECT_LT(topkRecall(s, mask, 3), 0.05);
}

TEST(TopK, MassRecallBounds)
{
    Rng rng(47);
    const Matrix s = Matrix::randomNormal(8, 8, rng);
    const Matrix full(8, 8, 1.0f);
    EXPECT_NEAR(attentionMassRecall(s, full), 1.0, 1e-6);
    const Matrix none(8, 8, 0.0f);
    EXPECT_NEAR(attentionMassRecall(s, none), 0.0, 1e-9);
    const Matrix top = topkMask(s, 2);
    const double mass = attentionMassRecall(s, top);
    EXPECT_GT(mass, 2.0 / 8.0); // top-k beats uniform share
    EXPECT_LE(mass, 1.0);
}

TEST(TopK, MassRecallMonotoneInK)
{
    Rng rng(48);
    const Matrix s = Matrix::randomNormal(16, 16, rng);
    double prev = 0.0;
    for (size_t k : {1u, 2u, 4u, 8u, 16u}) {
        const double mass = attentionMassRecall(s, topkMask(s, k));
        EXPECT_GE(mass, prev);
        prev = mass;
    }
}

} // namespace
} // namespace dota
