/**
 * @file
 * Tests for the extension set: checkpointing, the additional detection
 * baselines (static pattern, A^3, token pruning), gradient-injection
 * control, label noise, detection/attention overlap, GPU generation,
 * and the execution tracer.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "core/dota.hpp"
#include "nn/serialize.hpp"
#include "sim/trace.hpp"

namespace dota {
namespace {

TransformerConfig
tinyCfg()
{
    TransformerConfig cfg;
    cfg.in_dim = 8;
    cfg.dim = 16;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.ffn_dim = 32;
    cfg.classes = 2;
    cfg.seed = 5;
    return cfg;
}

// ---------------------------------------------------------------- save/load

TEST(Serialize, RoundTrip)
{
    const std::string path = "/tmp/dota_test_ckpt.bin";
    TransformerClassifier a(tinyCfg());
    saveCheckpoint(a, path);
    EXPECT_TRUE(isCheckpoint(path));

    TransformerConfig cfg2 = tinyCfg();
    cfg2.seed = 99; // different init
    TransformerClassifier b(cfg2);
    Rng rng(1);
    const Matrix x = Matrix::randomNormal(6, 8, rng);
    ASSERT_FALSE(Matrix::allClose(a.forward(x), b.forward(x), 1e-6));

    loadCheckpoint(b, path);
    EXPECT_TRUE(Matrix::allClose(a.forward(x), b.forward(x), 1e-6));
    std::remove(path.c_str());
}

TEST(Serialize, DetectorRoundTrip)
{
    const std::string path = "/tmp/dota_test_det_ckpt.bin";
    DetectorConfig dc;
    dc.sigma = 0.5;
    DotaDetector a(tinyCfg(), dc);
    saveCheckpoint(a, path);
    DetectorConfig dc2 = dc;
    dc2.seed = 77;
    DotaDetector b(tinyCfg(), dc2);
    loadCheckpoint(b, path);
    std::vector<Parameter *> pa, pb;
    a.collectParams(pa);
    b.collectParams(pb);
    for (size_t i = 0; i < pa.size(); ++i)
        EXPECT_TRUE(Matrix::allClose(pa[i]->value, pb[i]->value));
    std::remove(path.c_str());
}

TEST(Serialize, ArchitectureMismatchFatal)
{
    const std::string path = "/tmp/dota_test_bad_ckpt.bin";
    TransformerClassifier a(tinyCfg());
    saveCheckpoint(a, path);
    TransformerConfig other = tinyCfg();
    other.dim = 32;
    other.ffn_dim = 64;
    TransformerClassifier b(other);
    EXPECT_EXIT(loadCheckpoint(b, path),
                ::testing::ExitedWithCode(1), "module expects");
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileFatal)
{
    TransformerClassifier a(tinyCfg());
    EXPECT_EXIT(loadCheckpoint(a, "/tmp/definitely_missing_dota.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
    EXPECT_FALSE(isCheckpoint("/tmp/definitely_missing_dota.bin"));
}

TEST(CopyParams, CopiesValues)
{
    TransformerClassifier a(tinyCfg());
    TransformerConfig cfg2 = tinyCfg();
    cfg2.seed = 42;
    TransformerClassifier b(cfg2);
    copyParams(a, b);
    Rng rng(2);
    const Matrix x = Matrix::randomNormal(5, 8, rng);
    EXPECT_TRUE(Matrix::allClose(a.forward(x), b.forward(x), 1e-6));
}

// ------------------------------------------------------------- static mask

TEST(StaticPattern, WindowAndGlobals)
{
    StaticPatternConfig cfg;
    cfg.retention = 0.2;
    StaticPatternDetector det(cfg);
    Rng rng(3);
    const Matrix x = Matrix::randomNormal(40, 8, rng);
    det.beginLayer(0, x);
    const Matrix mask = det.selectMask(0, 0, false);
    // Diagonal band present.
    for (size_t r = 0; r < 40; ++r)
        EXPECT_FLOAT_EQ(mask(r, r), 1.0f);
    // Global column 0 attended by everyone, row 0 attends everyone.
    for (size_t r = 0; r < 40; ++r) {
        EXPECT_FLOAT_EQ(mask(r, 0), 1.0f);
        EXPECT_FLOAT_EQ(mask(0, r), 1.0f);
    }
    // Density in the right ballpark of the target.
    EXPECT_NEAR(maskDensity(mask), 0.2, 0.12);
}

TEST(StaticPattern, InputIndependent)
{
    StaticPatternConfig cfg;
    cfg.retention = 0.25;
    StaticPatternDetector det(cfg);
    Rng rng(4);
    det.beginLayer(0, Matrix::randomNormal(24, 8, rng));
    const Matrix m1 = det.selectMask(0, 0, false);
    det.beginLayer(0, Matrix::randomNormal(24, 8, rng));
    const Matrix m2 = det.selectMask(0, 0, false);
    EXPECT_TRUE(Matrix::allClose(m1, m2)); // the defining property
}

TEST(StaticPattern, CausalVariant)
{
    StaticPatternDetector det(StaticPatternConfig{});
    Rng rng(5);
    det.beginLayer(0, Matrix::randomNormal(20, 8, rng));
    const Matrix mask = det.selectMask(0, 0, true);
    for (size_t r = 0; r < 20; ++r)
        for (size_t c = r + 1; c < 20; ++c)
            EXPECT_FLOAT_EQ(mask(r, c), 0.0f);
}

// -------------------------------------------------------------------- A^3

TEST(A3, EstimateCorrelatesWithTrueScores)
{
    A3Config cfg;
    cfg.retention = 0.25;
    cfg.iterations = 12;
    A3Detector det(cfg);
    Rng rng(6);
    const Matrix q = Matrix::randomNormal(24, 12, rng);
    const Matrix k = Matrix::randomNormal(24, 12, rng);
    det.observeQK(0, 0, q, k);
    const Matrix mask = det.selectMask(0, 0, false);
    const Matrix exact = matmulBT(q, k);
    // A^3 candidates recover far more of the true top-k than chance.
    const double recall = topkRecall(exact, mask, 6);
    EXPECT_GT(recall, 0.5);
    EXPECT_NEAR(maskDensity(mask), 0.25, 1e-9);
}

TEST(A3, MoreIterationsBetter)
{
    Rng rng(7);
    const Matrix q = Matrix::randomNormal(32, 16, rng);
    const Matrix k = Matrix::randomNormal(32, 16, rng);
    const Matrix exact = matmulBT(q, k);
    double prev = -1.0;
    for (size_t iters : {2u, 8u, 32u}) {
        A3Config cfg;
        cfg.retention = 0.2;
        cfg.iterations = iters;
        A3Detector det(cfg);
        det.observeQK(0, 0, q, k);
        const double recall =
            topkRecall(exact, det.selectMask(0, 0, false), 6);
        EXPECT_GE(recall, prev - 0.05) << "iters " << iters;
        prev = recall;
    }
    EXPECT_GT(prev, 0.8); // near-exhaustive walk ~= exact
}

TEST(A3, FullIterationsExact)
{
    // Walking all m keys in every dimension reconstructs S exactly.
    Rng rng(8);
    const Matrix q = Matrix::randomNormal(10, 6, rng);
    const Matrix k = Matrix::randomNormal(10, 6, rng);
    A3Config cfg;
    cfg.iterations = 10;
    A3Detector det(cfg);
    det.observeQK(0, 0, q, k);
    EXPECT_TRUE(Matrix::allClose(det.lastEstimate(), matmulBT(q, k),
                                 1e-4));
}

// ----------------------------------------------------------- token pruning

TEST(TokenPruning, StructuredMask)
{
    TokenPruningConfig cfg;
    cfg.retention = 0.25; // -> keep ~sqrt(0.25) = half the tokens
    TokenPruningDetector det(cfg);
    Rng rng(9);
    const Matrix q = Matrix::randomNormal(16, 8, rng);
    const Matrix k = Matrix::randomNormal(16, 8, rng);
    det.observeQK(0, 0, q, k);
    const Matrix mask = det.selectMask(0, 0, false);
    const auto &kept = det.keptTokens();
    EXPECT_EQ(kept.size(), 8u);
    // Dense block among kept tokens.
    for (uint32_t r : kept)
        for (uint32_t c : kept)
            EXPECT_FLOAT_EQ(mask(r, c), 1.0f);
    // Pruned rows keep only their diagonal.
    for (size_t r = 0; r < 16; ++r) {
        EXPECT_FLOAT_EQ(mask(r, r), 1.0f);
        if (std::find(kept.begin(), kept.end(), r) == kept.end()) {
            EXPECT_EQ(maskRowCount(mask, r), 1u);
        }
    }
}

TEST(TokenPruning, KeepsImportantColumns)
{
    // Make one key dominate every row's attention; it must be kept.
    Matrix q(12, 4, 1.0f);
    Matrix k(12, 4, 0.0f);
    for (size_t c = 0; c < 4; ++c)
        k(5, c) = 3.0f;
    TokenPruningConfig cfg;
    cfg.retention = 0.1;
    TokenPruningDetector det(cfg);
    det.observeQK(0, 0, q, k);
    det.selectMask(0, 0, false);
    const auto &kept = det.keptTokens();
    EXPECT_NE(std::find(kept.begin(), kept.end(), 5u), kept.end());
}

// ------------------------------------------------- joint-injection control

TEST(Detector, InjectionFlagControlsModelGradient)
{
    DetectorConfig dc;
    dc.inject_model_grad = false;
    DotaDetector det(tinyCfg(), dc);
    Rng rng(10);
    const Matrix x = Matrix::randomNormal(8, 16, rng);
    det.beginLayer(0, x);
    det.selectMask(0, 0, false);
    det.observeScores(0, 0, Matrix(8, 8));
    EXPECT_TRUE(det.scoreGradient(0, 0).empty());
    // But the detector's own parameters still receive gradients.
    std::vector<Parameter *> ps;
    det.collectParams(ps);
    double total = 0.0;
    for (Parameter *p : ps)
        total += p->grad.frobeniusNorm();
    EXPECT_GT(total, 0.0);
}

// ------------------------------------------------------------- label noise

TEST(SyntheticTask, LabelNoiseKeepsBothClasses)
{
    TaskConfig noisy;
    noisy.seq_len = 32;
    noisy.classes = 2;
    noisy.label_noise = 1.0; // labels fully random
    SyntheticTask task(noisy);
    Rng rng(11);
    size_t ones = 0;
    const size_t samples = 400;
    for (size_t i = 0; i < samples; ++i)
        ones += task.sample(rng).label == 1;
    // Fully-noised labels are ~uniform.
    EXPECT_NEAR(static_cast<double>(ones) / samples, 0.5, 0.08);
}

TEST(SyntheticTask, LabelNoiseBoundsAccuracyCeiling)
{
    // A perfect classifier cannot exceed ~1 - p*(C-1)/C on noisy labels;
    // check that evaluation accuracy of a well-trained model lands near
    // that ceiling rather than at 1.0.
    TaskConfig tc;
    tc.seq_len = 32;
    tc.in_dim = 12;
    tc.classes = 2;
    tc.label_noise = 0.3;
    tc.signal_count = 5;
    SyntheticTask task(tc);
    TransformerConfig mc;
    mc.in_dim = 12;
    mc.dim = 32;
    mc.heads = 2;
    mc.layers = 1;
    mc.ffn_dim = 64;
    mc.classes = 2;
    TransformerClassifier model(mc);
    TrainConfig trc;
    trc.steps = 60;
    trc.batch = 6;
    ClassifierTrainer trainer(model, task, trc);
    trainer.train();
    const double acc = trainer.evaluate(300).metric;
    EXPECT_LT(acc, 0.95);  // ceiling ~0.85
    EXPECT_GT(acc, 0.65);  // but well above chance
}

// ------------------------------------------------------- overlap ablation

TEST(Overlap, HidesDetectionLatency)
{
    DotaAccelerator acc(HwConfig::dotaScaledForGpu());
    SimOptions opt;
    opt.mode = DotaMode::Conservative;
    const RunReport base = acc.simulate(benchmark(BenchmarkId::Text), opt);
    opt.overlap_detection = true;
    const RunReport ovl = acc.simulate(benchmark(BenchmarkId::Text), opt);
    EXPECT_EQ(ovl.per_layer.detection.cycles, 0u);
    EXPECT_GE(ovl.per_layer.attention.cycles,
              base.per_layer.attention.cycles);
    EXPECT_LE(ovl.totalCycles(), base.totalCycles());
    // Energy unchanged (same work, different timing).
    EXPECT_NEAR(ovl.per_layer.totalEnergyPj(),
                base.per_layer.totalEnergyPj(),
                1e-6 * base.per_layer.totalEnergyPj());
}

// ------------------------------------------------------------ GPU generation

TEST(GpuGeneration, MemoryBoundAndSlowerThanScoring)
{
    const Benchmark &lm = benchmark(BenchmarkId::LM);
    const RunReport scoring = simulateGpu(lm);
    const RunReport gen = simulateGpuGeneration(lm);
    EXPECT_GT(gen.timeMs(), scoring.timeMs());
    EXPECT_GT(gen.linearTimeMs(), 0.0);
}

TEST(GpuGeneration, RequiresCausalBenchmark)
{
    EXPECT_DEATH(simulateGpuGeneration(benchmark(BenchmarkId::QA)),
                 "causal");
}

// ------------------------------------------------------------------- trace

TEST(Trace, CoversAllConnections)
{
    LocalityAwareScheduler las(4);
    const SparseMask m = figure9Mask();
    const GroupSchedule gs = las.scheduleGroup(m, 0);
    const GroupTrace trace =
        traceAttentionGroup(gs, LaneConfig{}, /*head_dim=*/64);
    size_t dots = 0, fetches = 0;
    for (const TraceEvent &e : trace.events) {
        if (e.what.rfind("dot", 0) == 0)
            ++dots;
        else if (e.what.rfind("fetch", 0) == 0)
            ++fetches;
    }
    EXPECT_EQ(dots, m.nnz());
    EXPECT_EQ(fetches, gs.keyLoads());
    EXPECT_GT(trace.total_cycles, 0u);
}

TEST(Trace, BankConflictsSerialized)
{
    // Two keys in the same round mapping to the same bank must stall.
    SparseMask m(2, 32);
    m.setRow(0, {0});
    m.setRow(1, {10}); // 10 % 10 banks == bank 0 as well
    LocalityAwareScheduler las(2);
    const GroupSchedule gs = las.scheduleGroup(m, 0);
    LaneConfig lane;
    ASSERT_EQ(lane.sram_banks, 10u);
    const GroupTrace trace = traceAttentionGroup(gs, lane, 64);
    EXPECT_GT(trace.bank_conflict_cycles, 0u);
}

TEST(Trace, NoConflictDistinctBanks)
{
    SparseMask m(2, 32);
    m.setRow(0, {0});
    m.setRow(1, {3});
    LocalityAwareScheduler las(2);
    const GroupTrace trace =
        traceAttentionGroup(las.scheduleGroup(m, 0), LaneConfig{}, 64);
    EXPECT_EQ(trace.bank_conflict_cycles, 0u);
}

TEST(Trace, PrintsSummary)
{
    LocalityAwareScheduler las(4);
    const GroupTrace trace = traceAttentionGroup(
        las.scheduleGroup(figure9Mask(), 0), LaneConfig{}, 64);
    std::ostringstream os;
    trace.print(os);
    EXPECT_NE(os.str().find("total"), std::string::npos);
    EXPECT_NE(os.str().find("bank-conflict"), std::string::npos);
}

// ------------------------------------- baseline quality ordering (trained)

TEST(BaselineOrdering, OracleBeatsA3BeatsStaticOnRandomQK)
{
    Rng rng(13);
    double a3_recall = 0.0, static_recall = 0.0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
        const Matrix q = Matrix::randomNormal(32, 12, rng);
        const Matrix k = Matrix::randomNormal(32, 12, rng);
        const Matrix exact = matmulBT(q, k);

        A3Config a3c;
        a3c.retention = 0.25;
        a3c.iterations = 8;
        A3Detector a3(a3c);
        a3.observeQK(0, 0, q, k);
        a3_recall += topkRecall(exact, a3.selectMask(0, 0, false), 8);

        StaticPatternConfig spc;
        spc.retention = 0.25;
        StaticPatternDetector stat(spc);
        stat.beginLayer(0, q);
        static_recall +=
            topkRecall(exact, stat.selectMask(0, 0, false), 8);
    }
    // Content-based search beats input-independent patterns on
    // unstructured attention — the paper's Section 6.1 argument.
    EXPECT_GT(a3_recall, static_recall + 0.5);
}

} // namespace
} // namespace dota
