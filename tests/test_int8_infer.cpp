/**
 * @file
 * Tests for the integer-only inference path (nn/int8_infer.hpp): plan
 * quantization, full-sequence forward accuracy against the fp32 model,
 * the incremental-decode bit-identity contract, and the int8 attention
 * backend's legality rules and numerics.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "nn/attention_backend.hpp"
#include "nn/int8_infer.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"

namespace dota {
namespace {

TransformerConfig
classifierConfig()
{
    TransformerConfig cfg;
    cfg.in_dim = 12;
    cfg.dim = 32;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.ffn_dim = 64;
    cfg.classes = 5;
    cfg.max_seq = 32;
    cfg.seed = 3;
    return cfg;
}

TransformerConfig
lmConfig()
{
    TransformerConfig cfg;
    cfg.dim = 32;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.ffn_dim = 64;
    cfg.vocab = 48;
    cfg.max_seq = 64;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
randomIds(size_t n, int vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int> ids(n);
    for (auto &id : ids)
        id = static_cast<int>(rng.uniformInt(vocab));
    return ids;
}

/** Relative error of @p got against @p ref: mse / signal power. */
double
relMse(const Matrix &ref, const Matrix &got)
{
    return mse(ref, got) /
           (mse(ref, Matrix(ref.rows(), ref.cols())) + 1e-12);
}

TEST(Int8Infer, ClassifierTracksFp32Forward)
{
    TransformerClassifier model(classifierConfig());
    Rng rng(50);
    std::vector<Matrix> calib;
    for (int i = 0; i < 6; ++i)
        calib.push_back(Matrix::randomNormal(10, 12, rng));
    const Int8Plan plan =
        quantizeClassifier(model, calibrateClassifier(model, calib));
    ASSERT_EQ(plan.blocks.size(), 2u);
    ASSERT_FALSE(plan.input.empty());

    double worst = 0.0;
    for (int i = 0; i < 4; ++i) {
        const Matrix features = Matrix::randomNormal(10, 12, rng);
        const Matrix fp = model.forward(features);
        const Matrix i8 = int8Forward(model, plan, features);
        ASSERT_EQ(i8.rows(), fp.rows());
        ASSERT_EQ(i8.cols(), fp.cols());
        worst = std::max(worst, relMse(fp, i8));
    }
    // Int8 keeps the logits close to fp32 on calibrated inputs.
    EXPECT_LT(worst, 0.05);
}

TEST(Int8Infer, LmTracksFp32Forward)
{
    CausalLM model(lmConfig());
    std::vector<std::vector<int>> calib;
    for (int i = 0; i < 6; ++i)
        calib.push_back(randomIds(24, 48, 60 + i));
    const Int8Plan plan = quantizeLM(model, calibrateLM(model, calib));
    ASSERT_TRUE(plan.input.empty()); // LM embeds tokens, no input GEMM

    const std::vector<int> ids = randomIds(24, 48, 77);
    const Matrix fp = model.forward(ids);
    const Matrix i8 = int8Forward(model, plan, ids);
    ASSERT_EQ(i8.rows(), fp.rows());
    ASSERT_EQ(i8.cols(), fp.cols());
    EXPECT_LT(relMse(fp, i8), 0.05);
}

TEST(Int8Infer, DecodeStepBitIdenticalToFullSequence)
{
    // The determinism contract of DESIGN.md §16: static scales + exact
    // integer GEMMs make the incremental decode reproduce row t of the
    // full-sequence forward *bit for bit* — EXPECT_EQ on floats.
    CausalLM model(lmConfig());
    std::vector<std::vector<int>> calib;
    for (int i = 0; i < 4; ++i)
        calib.push_back(randomIds(20, 48, 80 + i));
    const Int8Plan plan = quantizeLM(model, calibrateLM(model, calib));

    const std::vector<int> ids = randomIds(10, 48, 90);
    const Matrix full = int8Forward(model, plan, ids);

    Int8DecodeState state;
    state.reset(plan.blocks.size());
    for (size_t t = 0; t < ids.size(); ++t) {
        const Matrix step = int8DecodeStep(model, plan, state, ids[t]);
        ASSERT_EQ(step.rows(), 1u);
        ASSERT_EQ(step.cols(), full.cols());
        for (size_t j = 0; j < full.cols(); ++j)
            EXPECT_EQ(step(0, j), full(t, j))
                << "t=" << t << " j=" << j;
    }
}

TEST(Int8Infer, GenerateIsDeterministic)
{
    CausalLM model(lmConfig());
    std::vector<std::vector<int>> calib;
    calib.push_back(randomIds(20, 48, 95));
    const Int8Plan plan = quantizeLM(model, calibrateLM(model, calib));

    const std::vector<int> prefix{1, 2, 3};
    const std::vector<int> greedy_a = int8Generate(model, plan, prefix, 8);
    const std::vector<int> greedy_b = int8Generate(model, plan, prefix, 8);
    EXPECT_EQ(greedy_a, greedy_b);
    EXPECT_GE(greedy_a.size(), prefix.size());

    const std::vector<int> sampled_a =
        int8Generate(model, plan, prefix, 8, 0.8, 42);
    const std::vector<int> sampled_b =
        int8Generate(model, plan, prefix, 8, 0.8, 42);
    EXPECT_EQ(sampled_a, sampled_b);
}

// ---------------------------------------------------------------------
// Attention backend dispatch and numerics
// ---------------------------------------------------------------------

TEST(Int8Backend, ResolveLegality)
{
    const auto resolve = [](AttnChoice c, bool hook, bool wants_full,
                            bool force, bool mask, size_t n) {
        return resolveAttnBackend(c, hook, wants_full, force, mask, n);
    };
    // With a hook (inference) the int8 choice applies at any length.
    EXPECT_EQ(resolve(AttnChoice::Int8, true, false, false, false, 16),
              AttnBackendKind::Int8);
    // Hook-free short forwards keep their dense probes and backward.
    EXPECT_EQ(resolve(AttnChoice::Int8, false, false, false, false, 16),
              AttnBackendKind::Dense);
    // Hook-free long sequences may run integer attention.
    EXPECT_EQ(resolve(AttnChoice::Int8, false, false, false, false,
                      kStreamingAutoSeqLen),
              AttnBackendKind::Int8);
    // Hard dense requirements always win.
    EXPECT_EQ(resolve(AttnChoice::Int8, true, true, false, false, 4096),
              AttnBackendKind::Dense);
    EXPECT_EQ(resolve(AttnChoice::Int8, true, false, true, false, 4096),
              AttnBackendKind::Dense);
}

TEST(Int8Backend, ParseAndName)
{
    AttnChoice c = AttnChoice::Auto;
    EXPECT_TRUE(parseAttnChoice("int8", c));
    EXPECT_EQ(c, AttnChoice::Int8);
    const AttentionBackend &b = attentionBackend(AttnBackendKind::Int8);
    EXPECT_EQ(b.kind(), AttnBackendKind::Int8);
    EXPECT_FALSE(b.capturesScores());
    EXPECT_STREQ(b.name(), "int8");
}

TEST(Int8Backend, HeadMatchesDenseWithinQuantTolerance)
{
    Rng rng(30);
    const size_t n = 20, dh = 16;
    const Matrix q = Matrix::randomNormal(n, dh, rng);
    const Matrix k = Matrix::randomNormal(n, dh, rng);
    const Matrix v = Matrix::randomNormal(n, dh, rng);
    Matrix causal(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j <= i; ++j)
            causal.row(i)[j] = 1.0f;

    AttnHeadProblem p;
    p.q = &q;
    p.k = &k;
    p.v = &v;
    p.scale = 1.0f / std::sqrt(static_cast<float>(dh));
    p.dense_mask = &causal;

    const AttnHeadResult dense =
        attentionBackend(AttnBackendKind::Dense).runHead(p);
    const AttnHeadResult i8 =
        attentionBackend(AttnBackendKind::Int8).runHead(p);
    ASSERT_EQ(i8.z.rows(), dense.z.rows());
    ASSERT_EQ(i8.z.cols(), dense.z.cols());
    EXPECT_LT(relMse(dense.z, i8.z), 0.01);
    EXPECT_LT(Matrix::maxAbsDiff(dense.z, i8.z), 0.2);
    // Masked (future) positions never leak: row 0 attends only to 0.
    for (size_t j = 0; j < dh; ++j)
        EXPECT_NEAR(i8.z(0, j), v(0, j), 0.05);
}

} // namespace
} // namespace dota
