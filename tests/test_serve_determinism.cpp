/**
 * @file
 * Determinism contract for the online serving simulator: the same
 * (arrival seed, fault seed) pair must produce a bit-identical
 * ServeReport at DOTA_THREADS=1 and DOTA_THREADS=8 — the event loop is
 * serial and only the cost-cache warmup is parallel, so every scalar,
 * every per-request outcome and every device health timeline must match
 * exactly.
 */
#include <gtest/gtest.h>

#include "serve/simulator.hpp"
#include "serve_test_util.hpp"

namespace dota {
namespace {

using test::ScopedThreads;
using test::atBothThreadCounts;
using test::expectIdentical;

ServeReport
chaosRun(uint64_t arrival_seed, uint64_t fault_seed)
{
    TraceConfig tc;
    tc.rate_per_s = 500.0;
    tc.requests = 160;
    tc.seed = arrival_seed;
    tc.deadline_ms = 130.0;
    tc.len_min = 256;
    tc.len_max = 2048;
    ServeConfig sc;
    sc.accelerators = 6;
    sc.mode = DotaMode::Full;
    sc.policy.timeout_ms = 70.0;
    sc.policy.max_retries = 3;
    sc.policy.queue_limit = 48;
    sc.policy.degrade_depth_1 = 2.0;
    sc.policy.degrade_depth_2 = 4.0;
    ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
    const FaultPlan plan = parseFaultPlan(
        "kill:0@50,kill:1@80,revive:0@250,slow:2@40-200x6,"
        "transient:0.05,mtbf:4000x200");
    return sim.run(generateTrace(tc), plan, fault_seed);
}

TEST(ServeDeterminism, ChaosReportBitIdenticalAt1And8Threads)
{
    auto [serial, parallel] =
        atBothThreadCounts([] { return chaosRun(42, 7); });
    expectIdentical(serial, parallel);
    // The chaos scenario actually exercises the robustness machinery —
    // otherwise the bit-identity claim is vacuous.
    EXPECT_GT(serial.retries + serial.failovers, 0u);
    EXPECT_GT(serial.completed, 0u);
    EXPECT_EQ(serial.completed + serial.shed() + serial.failed,
              serial.requests);
}

TEST(ServeDeterminism, SameSeedsSameReportAcrossRuns)
{
    ScopedThreads parallel(8);
    const ServeReport a = chaosRun(9, 17);
    const ServeReport b = chaosRun(9, 17);
    expectIdentical(a, b);
}

TEST(ServeDeterminism, SeedsActuallyMatter)
{
    ScopedThreads parallel(8);
    const ServeReport base = chaosRun(9, 17);
    const ServeReport other_arrivals = chaosRun(10, 17);
    const ServeReport other_faults = chaosRun(9, 18);
    EXPECT_NE(base.mean_latency_ms, other_arrivals.mean_latency_ms);
    // A different fault seed reshuffles the MTBF schedule and transient
    // draws; some observable statistic must move.
    const bool differs =
        base.mean_latency_ms != other_faults.mean_latency_ms ||
        base.retries != other_faults.retries ||
        base.completed != other_faults.completed ||
        base.total_energy_j != other_faults.total_energy_j;
    EXPECT_TRUE(differs);
}

TEST(ServeDeterminism, HealthyRunBitIdenticalAt1And8Threads)
{
    auto [serial, parallel] = atBothThreadCounts([] {
        TraceConfig tc;
        tc.rate_per_s = 300.0;
        tc.requests = 100;
        tc.seed = 3;
        tc.len_max = 1024; // few distinct lengths: fast serial warmup
        ServeConfig sc;
        sc.accelerators = 4;
        ServingSimulator sim(sc, benchmark(BenchmarkId::Text));
        return sim.run(generateTrace(tc));
    });
    expectIdentical(serial, parallel);
    EXPECT_EQ(serial.completed, serial.requests);
}

} // namespace
} // namespace dota
